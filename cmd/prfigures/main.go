// Command prfigures regenerates the paper's five figures on the real
// engine and prints them with the asserted paper facts.
//
// Usage:
//
//	prfigures [-figure N]
package main

import (
	"flag"
	"fmt"
	"log"

	"partialrollback/internal/experiments"
	"partialrollback/internal/figures"
	"partialrollback/internal/render"
	"partialrollback/internal/txn"
)

var figureFlag = flag.Int("figure", 0, "figure to print (1-5; 0 = all)")

func main() {
	log.SetFlags(0)
	flag.Parse()
	want := func(n int) bool { return *figureFlag == 0 || *figureFlag == n }
	if want(1) {
		figure1()
	}
	if want(2) {
		figure2()
	}
	if want(3) {
		figure3()
	}
	if want(4) {
		figure4()
	}
	if want(5) {
		figure5()
	}
}

func printTable(t *experiments.Table) {
	fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
	fmt.Print(render.Table(t.Header, t.Rows))
	for _, n := range t.Notes {
		fmt.Printf("  * %s\n", n)
	}
	fmt.Println()
}

func figure1() {
	res, table, err := experiments.E1Figure1()
	if err != nil {
		log.Fatal(err)
	}
	names := func(id txn.ID) string { return res.Sys.ProgramName(id) }
	fmt.Print(render.ConcurrencyGraph("Figure 1(a): concurrency graph before T4 requests c", res.ArcsBefore, names))
	fmt.Println()
	printTable(table)
	fmt.Print(render.ConcurrencyGraph("Figure 1(b): after rolling T2 back to its lock state for b", res.ArcsAfter, names))
	fmt.Println()
}

func figure2() {
	_, table, err := experiments.E2Figure2(10)
	if err != nil {
		log.Fatal(err)
	}
	printTable(table)
}

func figure3() {
	a, err := figures.RunFigure3a()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render.ConcurrencyGraph("Figure 3(a): shared locks make the deadlock-free graph a DAG, not a forest", a.AArcs, nil))
	fmt.Printf("  forest=%v, deadlock=%v\n\n", a.AForest, a.ADeadlock)
	table, err := experiments.E3Figure3()
	if err != nil {
		log.Fatal(err)
	}
	printTable(table)
}

func figure4() {
	res, table, err := experiments.E4Figure4()
	if err != nil {
		log.Fatal(err)
	}
	for _, variant := range []struct {
		title string
		prog  bool
		wd    []int
	}{
		{"Figure 4(a-c): T with scattered writes", true, res.WellDefinedT},
		{"Figure 4(d): T' with the D-write deleted", false, res.WellDefinedTPrime},
	} {
		p := figures.Figure4T(variant.prog)
		a := txn.Analyze(p)
		var ivs [][2]int
		for _, idxs := range a.WriteLockIndexes {
			if len(idxs) > 1 {
				ivs = append(ivs, [2]int{idxs[0], idxs[len(idxs)-1]})
			}
		}
		fmt.Print(render.StateDependencyGraph(variant.title, a.NumLocks(), ivs, variant.wd))
		fmt.Println()
	}
	printTable(table)
}

func figure5() {
	_, table, err := experiments.E5Figure5()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []struct {
		title string
		prog  *txn.Program
	}{
		{"Figure 5: clustered T2", figures.Figure5Clustered()},
		{"Figure 5 (variant): three-phase form", figures.Figure5ThreePhase()},
	} {
		a := txn.Analyze(v.prog)
		var wd []int
		for q, ok := range a.StaticWellDefined() {
			if ok {
				wd = append(wd, q)
			}
		}
		var ivs [][2]int
		for _, idxs := range a.WriteLockIndexes {
			if len(idxs) > 1 {
				ivs = append(ivs, [2]int{idxs[0], idxs[len(idxs)-1]})
			}
		}
		fmt.Print(render.StateDependencyGraph(v.title, a.NumLocks(), ivs, wd))
		fmt.Println()
	}
	printTable(table)
}
