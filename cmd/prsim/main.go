// Command prsim runs one generated workload under a chosen rollback
// strategy, victim policy, and scheduler, and prints the run metrics —
// the interactive companion to cmd/prbench's fixed suite.
//
// Usage:
//
//	prsim -txns 16 -db 24 -locks 5 -shape scattered -strategy mcs \
//	      -policy ordered-min-cost -scheduler round-robin -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/sim"
	"partialrollback/internal/trace"
)

var (
	txns      = flag.Int("txns", 16, "number of transactions")
	db        = flag.Int("db", 24, "number of entities")
	locks     = flag.Int("locks", 5, "locks per transaction")
	hotSet    = flag.Int("hotset", 8, "hot-set size (0 disables skew)")
	hotProb   = flag.Float64("hotprob", 0.8, "probability a lock hits the hot set")
	shared    = flag.Float64("shared", 0, "probability a lock is shared")
	rewrite   = flag.Float64("rewrite", 0.4, "rewrite probability (scattered shape)")
	pad       = flag.Int("pad", 3, "compute padding per lock interval")
	shape     = flag.String("shape", "scattered", "write shape: scattered|clustered|three-phase|mixed")
	strategy  = flag.String("strategy", "mcs", "rollback strategy: total|mcs|sdg|hybrid")
	policy    = flag.String("policy", "ordered-min-cost", "victim policy: min-cost|ordered-min-cost|requester|youngest-victim|greedy")
	sched     = flag.String("scheduler", "round-robin", "scheduler: round-robin|random")
	seed      = flag.Int64("seed", 42, "workload and scheduler seed")
	prevent   = flag.String("prevention", "", "prevention mode: wound-wait|wait-die (empty = detection)")
	events    = flag.Bool("events", false, "print deadlock and rollback events")
	check     = flag.Bool("check", false, "record history and verify serializability")
	traceFile = flag.String("trace", "", "write a JSON-lines event trace to this file")
	shards    = flag.Int("shards", 1, "engine shards (1 behaves exactly like the unsharded engine)")
	stripes   = flag.Int("stripes", 1, "lock-table stripes per shard (results are identical at any stripe count under the deterministic drivers)")
)

func parseShape(s string) (sim.WriteShape, error) {
	switch s {
	case "scattered":
		return sim.Scattered, nil
	case "clustered":
		return sim.Clustered, nil
	case "three-phase", "threephase":
		return sim.ThreePhase, nil
	case "mixed":
		return sim.Mixed, nil
	}
	return 0, fmt.Errorf("unknown shape %q", s)
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "total":
		return core.Total, nil
	case "mcs":
		return core.MCS, nil
	case "sdg":
		return core.SDG, nil
	case "hybrid":
		return core.Hybrid, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parsePolicy(s string) (deadlock.Policy, error) {
	switch s {
	case "min-cost":
		return deadlock.MinCost{}, nil
	case "ordered-min-cost":
		return deadlock.OrderedMinCost{}, nil
	case "requester":
		return deadlock.Requester{}, nil
	case "youngest-victim":
		return deadlock.Oldest{}, nil
	case "greedy":
		return deadlock.Greedy{}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", s)
}

func parsePrevention(s string) (core.Prevention, error) {
	switch s {
	case "":
		return core.NoPrevention, nil
	case "wound-wait":
		return core.WoundWait, nil
	case "wait-die":
		return core.WaitDie, nil
	}
	return 0, fmt.Errorf("unknown prevention %q", s)
}

func main() {
	log.SetFlags(0)
	flag.Parse()

	sh, err := parseShape(*shape)
	if err != nil {
		log.Fatal(err)
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	prev, err := parsePrevention(*prevent)
	if err != nil {
		log.Fatal(err)
	}
	scheduler := sim.RoundRobin
	if *sched == "random" {
		scheduler = sim.RandomPick
	}

	w := sim.Generate(sim.GenConfig{
		Txns: *txns, DBSize: *db, LocksPerTxn: *locks,
		HotSet: *hotSet, HotProb: *hotProb, SharedProb: *shared,
		RewriteProb: *rewrite, PadOps: *pad, Shape: sh, Seed: *seed,
	})
	fmt.Printf("workload: %s\n", w.Name)

	if *shards < 1 {
		log.Fatalf("-shards must be >= 1 (got %d)", *shards)
	}
	if *stripes < 1 {
		log.Fatalf("-stripes must be >= 1 (got %d)", *stripes)
	}
	rc := sim.RunConfig{
		Strategy: st, Policy: pol, Scheduler: scheduler,
		Seed: *seed, Prevention: prev, RecordHistory: *check,
		Shards: *shards, Stripes: *stripes,
	}
	var hooks []func(core.Event)
	if *events {
		hooks = append(hooks, func(e core.Event) {
			switch e.Kind {
			case core.EventDeadlock, core.EventRollback:
				fmt.Println("  " + e.String())
			}
		})
	}
	var rec *trace.Recorder
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		rec = trace.NewRecorder(f)
		hooks = append(hooks, rec.Hook())
	}
	if len(hooks) > 0 {
		rc.OnEvent = func(e core.Event) {
			for _, h := range hooks {
				h(e)
			}
		}
	}
	res, err := sim.Run(w, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", res)
	s := res.Stats
	fmt.Printf("steps=%d grants=%d waits=%d wounds=%d dies=%d victims=%d\n",
		res.Steps, s.Grants, s.Waits, s.Wounds, s.Dies, s.Victims)
	if rec != nil {
		sum := trace.Summarize(rec.Records())
		fmt.Printf("trace: %d events written to %s; rollback depth p50=%d p90=%d p100=%d\n",
			sum.Events, *traceFile, sum.Percentile(50), sum.Percentile(90), sum.Percentile(100))
		if rec.Err() != nil {
			log.Fatal(rec.Err())
		}
	}
	if *check {
		if _, err := res.System.Recorder().CheckSerializable(); err != nil {
			log.Fatalf("serializability check failed: %v", err)
		}
		order, err := res.System.Recorder().SerialOrder()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("conflict-serializable; equivalent serial order: %v\n", order)
	}
}
