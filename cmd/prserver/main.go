// Command prserver serves the partial-rollback engine over TCP using
// the wire protocol in internal/wire. Clients (cmd/prload, or any
// internal/client user) ship whole transaction programs; the server
// executes them with partial-rollback deadlock removal and streams
// every rollback back as a notification.
//
// The database is a uniform store of -entities entities "e0".."eN-1"
// initialized to -init, plus -accounts bank accounts "acct0".."acctM-1"
// initialized to -balance with a sum-invariant (so both prload
// workloads can run against one server).
//
// Usage:
//
//	prserver -addr :7415 -strategy sdg -policy ordered-min-cost \
//	         -entities 64 -accounts 16 -max-sessions 128
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight transactions
// get -drain-timeout to commit, the rest are rolled back to their
// initial states, and the final counter snapshot is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/server"
)

var (
	addr        = flag.String("addr", "127.0.0.1:7415", "listen address")
	strategy    = flag.String("strategy", "mcs", "rollback strategy: total|mcs|sdg|hybrid")
	policy      = flag.String("policy", "ordered-min-cost", "victim policy: min-cost|ordered-min-cost|requester|youngest-victim|greedy")
	entities    = flag.Int("entities", 64, "number of uniform entities e0..eN-1")
	initVal     = flag.Int64("init", 0, "initial value of each uniform entity")
	accounts    = flag.Int("accounts", 16, "number of bank accounts acct0..acctM-1 (0 disables)")
	balance     = flag.Int64("balance", 100, "initial balance per account")
	maxSessions = flag.Int("max-sessions", 256, "maximum concurrent sessions")
	backlog     = flag.Int("backlog", 32, "connections allowed to wait for a session slot")
	reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-transaction execution deadline")
	idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "per-message read deadline")
	drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	shards      = flag.Int("shards", 1, "engine shards (1 = single engine; >1 partitions the lock/wait-for/detection core)")
	verbose     = flag.Bool("v", false, "log per-session diagnostics")
)

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "total":
		return core.Total, nil
	case "mcs":
		return core.MCS, nil
	case "sdg":
		return core.SDG, nil
	case "hybrid":
		return core.Hybrid, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parsePolicy(s string) (deadlock.Policy, error) {
	switch s {
	case "min-cost":
		return deadlock.MinCost{}, nil
	case "ordered-min-cost":
		return deadlock.OrderedMinCost{}, nil
	case "requester":
		return deadlock.Requester{}, nil
	case "youngest-victim":
		return deadlock.Oldest{}, nil
	case "greedy":
		return deadlock.Greedy{}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", s)
}

func buildStore() *entity.Store {
	store := entity.NewUniformStore("e", *entities, *initVal)
	if *accounts > 0 {
		names := make([]string, *accounts)
		for i := range names {
			names[i] = fmt.Sprintf("acct%d", i)
			store.Define(names[i], *balance)
		}
		store.AddConstraint(entity.SumConstraint(
			"balance-sum", int64(*accounts)*(*balance), names...))
	}
	return store
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prserver: ")
	flag.Parse()

	st, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	if *shards < 1 {
		log.Fatalf("-shards must be >= 1 (got %d)", *shards)
	}
	cfg := server.Config{
		Store:          buildStore(),
		Strategy:       st,
		Policy:         pol,
		MaxSessions:    *maxSessions,
		Backlog:        *backlog,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idleTimeout,
		Shards:         *shards,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (strategy=%s policy=%s entities=%d accounts=%d shards=%d)",
		srv.Addr(), *strategy, *policy, *entities, *accounts, *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (drain %v)...", *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain deadline hit; in-flight transactions rolled back (%v)", err)
	}

	fmt.Println("final counters:")
	for _, c := range srv.Counters() {
		fmt.Printf("  %-18s %d\n", c.Name, c.Val)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		log.Fatalf("engine invariants violated: %v", err)
	}
	if err := cfg.Store.CheckConsistent(); err != nil {
		log.Fatalf("store inconsistent after shutdown: %v", err)
	}
	log.Printf("store consistent; bye")
}
