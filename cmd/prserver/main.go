// Command prserver serves the partial-rollback engine over TCP using
// the wire protocol in internal/wire. Clients (cmd/prload, or any
// internal/client user) ship whole transaction programs; the server
// executes them with partial-rollback deadlock removal and streams
// every rollback back as a notification.
//
// The database is a uniform store of -entities entities "e0".."eN-1"
// initialized to -init, plus -accounts bank accounts "acct0".."acctM-1"
// initialized to -balance with a sum-invariant (so both prload
// workloads can run against one server).
//
// Usage:
//
//	prserver -addr :7415 -strategy sdg -policy ordered-min-cost \
//	         -entities 64 -accounts 16 -max-sessions 128
//
// With -admin ADDR an HTTP admin endpoint additionally serves
// Prometheus/JSON metrics (/metrics), the live wait-for-graph inspector
// (/debug/waitfor, JSON or Graphviz DOT), the active-transaction table
// (/debug/txns), the transaction tracer (-trace N, /debug/trace), and
// net/http/pprof (/debug/pprof/).
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight transactions
// get -drain-timeout to commit, the rest are rolled back to their
// initial states, and the final counter snapshot is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/durable"
	"partialrollback/internal/entity"
	"partialrollback/internal/intern"
	"partialrollback/internal/obs"
	"partialrollback/internal/server"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
)

var (
	addr        = flag.String("addr", "127.0.0.1:7415", "listen address")
	strategy    = flag.String("strategy", "mcs", "rollback strategy: total|mcs|sdg|hybrid")
	policy      = flag.String("policy", "ordered-min-cost", "victim policy: min-cost|ordered-min-cost|requester|youngest-victim|greedy")
	entities    = flag.Int("entities", 64, "number of uniform entities e0..eN-1")
	initVal     = flag.Int64("init", 0, "initial value of each uniform entity")
	accounts    = flag.Int("accounts", 16, "number of bank accounts acct0..acctM-1 (0 disables)")
	balance     = flag.Int64("balance", 100, "initial balance per account")
	maxSessions = flag.Int("max-sessions", 256, "maximum concurrent sessions")
	backlog     = flag.Int("backlog", 32, "connections allowed to wait for a session slot")
	reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-transaction execution deadline")
	idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "per-message read deadline")
	drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	shards      = flag.Int("shards", 1, "engine shards (1 = single engine; >1 partitions the lock/wait-for/detection core)")
	burst       = flag.Int("burst", 1, "max consecutive steps per engine-lock acquisition (1 = classic step-at-a-time; -1 = adaptive: up to 64 while uncontended, 1 under contention)")
	stripes     = flag.Int("stripes", 1, "lock-table stripes per engine shard (1 = classic single-mutex engine; >1 lets uncontended operations of different transactions run in parallel inside a shard)")
	maxStreams  = flag.Int("max-streams", 4096, "maximum concurrently active v3 streams per connection (excess streams are refused with the retryable BUSY)")
	strmWorkers = flag.Int("stream-workers", 0, "per-connection worker pool bound for v3 streams (0 = max-streams)")
	walDir      = flag.String("wal", "", "write-ahead log directory: commits are durable and replayed on restart (empty = memory only)")
	fsyncMode   = flag.String("fsync", "group", "wal fsync discipline: always (fsync per commit) | group (batched fsync) | off (write-through, no fsync)")
	groupWindow = flag.Duration("group-window", 2*time.Millisecond, "group-commit collection window (-fsync group only)")
	groupMax    = flag.Int("group-max", 64, "flush a commit group early once this many commits are pending")
	fsyncDelay  = flag.Duration("fsync-delay", 0, "benchmark knob: artificial latency added after every fsync, modeling slower stable storage (0 disables)")
	ckptIval    = flag.Duration("checkpoint-interval", 0, "take a checkpoint (snapshot + log compaction) this often; 0 disables the time trigger (requires -wal)")
	ckptBytes   = flag.Int64("checkpoint-bytes", 0, "take a checkpoint once this many new log bytes accumulate; 0 disables the byte trigger (requires -wal)")
	ckptRetain  = flag.Int("retain", 2, "checkpoints kept on disk; sealed log segments are deleted only once the oldest retained checkpoint covers them")
	ckptDelay   = flag.Duration("checkpoint-phase-delay", 0, "test knob: sleep between checkpoint phases (rotation, temp fsync, publication, removals) so a kill can land inside any crash window (0 disables)")
	storeKind   = flag.String("store", "mem", "entity store backend: mem (dense in-RAM slices) | paged (heap file + bounded buffer pool; the entity set may exceed RAM)")
	poolPages   = flag.Int("pool-pages", 64, "buffer-pool capacity in pages (-store paged); RAM for entity values is bounded by about page-size*pool-pages plus pages pinned by active transactions")
	pageSize    = flag.Int("page-size", 4096, "heap-file page size in bytes (-store paged)")
	heapPath    = flag.String("heap", "", "heap file path (-store paged); default <wal-dir>/heap.dat, or a file under the OS temp dir without -wal. Truncated at startup: the heap is a spill area, state is rebuilt from checkpoint + WAL")
	admin       = flag.String("admin", "", "admin HTTP listen address serving /metrics, /debug/waitfor, /debug/txns and pprof (empty disables)")
	traceCap    = flag.Int("trace", 0, "enable transaction tracing, retaining the last N completed traces (0 disables; requires -admin)")
	verbose     = flag.Bool("v", false, "log per-session diagnostics")
)

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "total":
		return core.Total, nil
	case "mcs":
		return core.MCS, nil
	case "sdg":
		return core.SDG, nil
	case "hybrid":
		return core.Hybrid, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parsePolicy(s string) (deadlock.Policy, error) {
	switch s {
	case "min-cost":
		return deadlock.MinCost{}, nil
	case "ordered-min-cost":
		return deadlock.OrderedMinCost{}, nil
	case "requester":
		return deadlock.Requester{}, nil
	case "youngest-victim":
		return deadlock.Oldest{}, nil
	case "greedy":
		return deadlock.Greedy{}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", s)
}

func buildStore(onMiss func(ns int64)) (*entity.Store, error) {
	var store *entity.Store
	switch *storeKind {
	case "mem":
		store = entity.NewUniformStore("e", *entities, *initVal)
	case "paged":
		path := *heapPath
		if path == "" {
			if *walDir != "" {
				path = filepath.Join(*walDir, "heap.dat")
			} else {
				path = filepath.Join(os.TempDir(), fmt.Sprintf("prserver-heap-%d.dat", os.Getpid()))
			}
		}
		var err error
		store, err = entity.NewUniformPagedStore("e", *entities, *initVal, entity.PagedConfig{
			Path:      path,
			PageSize:  *pageSize,
			PoolPages: *poolPages,
			OnMiss:    onMiss,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("store: paged backend (heap=%s page-size=%d pool-pages=%d, ~%d entities/page)",
			path, *pageSize, *poolPages, *pageSize*8/65)
	default:
		return nil, fmt.Errorf("unknown -store %q (want mem or paged)", *storeKind)
	}
	if *accounts > 0 {
		names := make([]string, *accounts)
		for i := range names {
			names[i] = fmt.Sprintf("acct%d", i)
			store.Define(names[i], *balance)
		}
		store.AddConstraint(entity.SumConstraint(
			"balance-sum", int64(*accounts)*(*balance), names...))
	}
	return store, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prserver: ")
	flag.Parse()

	st, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	if *shards < 1 {
		log.Fatalf("-shards must be >= 1 (got %d)", *shards)
	}
	if *stripes < 1 {
		log.Fatalf("-stripes must be >= 1 (got %d)", *stripes)
	}

	// The metrics registry exists before the store so the paged
	// backend's read-miss histogram can observe faults from the first
	// recovery replay onward.
	var registry *obs.Registry
	var onMiss func(ns int64)
	if *admin != "" {
		registry = obs.NewRegistry()
		missDur := registry.NewDurationHistogram("pr_store_read_miss_seconds",
			"Wall time of each buffer-pool read miss (victim selection + flush-before-evict + page read).",
			[]time.Duration{
				time.Microsecond, 5 * time.Microsecond, 10 * time.Microsecond,
				25 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
				250 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
			})
		onMiss = func(ns int64) { missDur.Observe(time.Duration(ns)) }
	}
	store, err := buildStore(onMiss)
	if err != nil {
		log.Fatal(err)
	}
	cfg := server.Config{
		Store:          store,
		Strategy:       st,
		Policy:         pol,
		MaxSessions:    *maxSessions,
		Backlog:        *backlog,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idleTimeout,
		Shards:         *shards,
		Burst:          *burst,
		Stripes:        *stripes,
		MaxStreams:     *maxStreams,
		StreamWorkers:  *strmWorkers,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	// Observability: the collector and tracer are chained onto the
	// engine's event stream before the server is built, so every event
	// from the first registration onward is counted.
	var (
		collector *obs.Collector
		tracer    *obs.Tracer
	)
	if *admin != "" {
		collector = obs.NewCollector(registry)
		cfg.OnEvent = collector.OnEvent
		cfg.LockWait = collector.ObserveLockWait
		if *traceCap > 0 {
			tracer = obs.NewTracer(*traceCap)
			tracer.SetEnabled(true)
			cfg.OnEvent = func(e core.Event) {
				collector.OnEvent(e)
				tracer.OnEvent(e)
			}
		}
	}

	// Durability: recovery must run before the server is built so the
	// engine interns the recovered store, and the WAL metrics hook onto
	// the registry created above.
	var (
		walSet  *durable.Set
		recInfo *durable.RecoveryInfo
	)
	if *walDir != "" {
		mode, err := durable.ParseSyncMode(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		opts := durable.Options{Mode: mode, Window: *groupWindow, MaxBatch: *groupMax, SyncDelay: *fsyncDelay}
		if *groupWindow <= 0 {
			opts.Window = -1
		}
		if registry != nil {
			appends := registry.NewCounter("pr_wal_appends_total", "Log records made durable.")
			batches := registry.NewCounter("pr_wal_fsync_batches_total", "Durable flush batches (fsyncs, unless -fsync off).")
			groupSize := registry.NewHistogram("pr_wal_group_commit_size",
				"Write-commits per durable flush batch.",
				[]int64{1, 2, 4, 8, 16, 32, 64, 128})
			syncDur := registry.NewDurationHistogram("pr_wal_fsync_seconds",
				"Wall time of each batch fsync.",
				[]time.Duration{
					100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
					time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
					10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
				})
			opts.OnFlush = func(fi durable.FlushInfo) {
				appends.Add(int64(fi.Records))
				batches.Inc()
				groupSize.Observe(int64(fi.Commits))
				syncDur.Observe(fi.SyncDuration)
			}
		}
		set, rec, err := durable.Open(*walDir, *shards, cfg.Store, opts)
		if err != nil {
			log.Fatal(err)
		}
		walSet = set
		recInfo = rec
		log.Printf("wal: recovered %d records (%d entities) from %d file(s) in %s (max seq %d)",
			rec.Records, rec.Applied, rec.Files, *walDir, rec.MaxSeq)
		if rec.CheckpointFile != "" {
			log.Printf("wal: checkpoint base %s (frontier %d, %d entities); replayed tail of %d record(s)",
				rec.CheckpointFile, rec.CheckpointSeq, rec.CheckpointEntities, rec.TailRecords)
		}
		log.Printf("wal: recovery took %s", rec.Duration)
		if len(rec.SkippedCheckpoints) > 0 {
			log.Printf("wal: WARNING: skipped invalid checkpoint(s) %v (storage damage, not an ordinary crash)", rec.SkippedCheckpoints)
		}
		if rec.TornFiles > 0 || rec.TruncatedBytes > 0 {
			log.Printf("wal: truncated %d torn file tail(s), %d bytes discarded", rec.TornFiles, rec.TruncatedBytes)
		}
		if len(rec.CorruptFiles) > 0 {
			log.Printf("wal: WARNING: mid-log corruption (not a torn tail) in %v; later records were discarded", rec.CorruptFiles)
		}
		if err := cfg.Store.CheckConsistent(); err != nil {
			log.Fatalf("store inconsistent after recovery: %v", err)
		}
		cfg.Durable = walSet
	}
	if (*ckptIval > 0 || *ckptBytes > 0) && walSet == nil {
		log.Fatal("-checkpoint-interval/-checkpoint-bytes require -wal")
	}

	srv := server.New(cfg)

	// Checkpointing: bounded recovery over the WAL. The snapshot
	// adapter copies the store's slices (fast, under engine quiesce)
	// and resolves interned names; the runner handles triggers,
	// crash-safe writes, retention, and sealed-segment compaction.
	// With both triggers zero no checkpointer exists at all and the
	// durability layer behaves byte-identically to a plain -wal run.
	var cp *checkpoint.Checkpointer
	if *ckptIval > 0 || *ckptBytes > 0 {
		quiescer, ok := srv.System().(core.Quiescer)
		if !ok {
			log.Fatal("engine does not support quiesce; cannot checkpoint")
		}
		store := cfg.Store
		var snapVals []int64
		var snapDefined []bool
		snap := checkpoint.SnapshotFunc(func() []checkpoint.Entry {
			// Paged backend: flush the dirty set first (we're under the
			// engine quiesce, so nothing mutates) — the checkpoint is
			// flush-all + snapshot, keeping the heap file a faithful
			// mirror at every checkpoint boundary.
			if store.Paged() {
				if err := store.Flush(); err != nil {
					log.Printf("checkpoint: heap flush: %v", err)
				}
			}
			snapVals, snapDefined, _ = store.SnapshotSlices(snapVals, snapDefined)
			entries := make([]checkpoint.Entry, 0, len(snapVals))
			for i, ok := range snapDefined {
				if !ok {
					continue
				}
				entries = append(entries, checkpoint.Entry{Name: store.NameOf(intern.ID(i)), Val: snapVals[i]})
			}
			return entries
		})
		copts := checkpoint.Options{
			Interval:   *ckptIval,
			Bytes:      *ckptBytes,
			Retain:     *ckptRetain,
			PhaseDelay: *ckptDelay,
			Logf:       log.Printf,
		}
		if registry != nil {
			ckpts := registry.NewCounter("pr_checkpoint_total", "Completed checkpoints.")
			segsRemoved := registry.NewCounter("pr_checkpoint_segments_removed_total", "Sealed log segments compacted away.")
			segBytes := registry.NewCounter("pr_checkpoint_segment_bytes_removed_total", "Log bytes reclaimed by compaction.")
			quiesceDur := registry.NewDurationHistogram("pr_checkpoint_quiesce_seconds",
				"Engine stall per checkpoint (snapshot copy under quiesce).",
				[]time.Duration{
					10 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
					500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond,
					25 * time.Millisecond, 100 * time.Millisecond,
				})
			ckptDur := registry.NewDurationHistogram("pr_checkpoint_seconds",
				"End-to-end checkpoint wall time (rotation through compaction).",
				[]time.Duration{
					time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
					25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
					250 * time.Millisecond, time.Second,
				})
			copts.OnCheckpoint = func(ci checkpoint.Info) {
				ckpts.Inc()
				segsRemoved.Add(int64(ci.SegmentsRemoved))
				segBytes.Add(ci.SegmentBytesRemoved)
				quiesceDur.Observe(ci.QuiesceDuration)
				ckptDur.Observe(ci.Duration)
			}
		}
		cp = checkpoint.New(walSet, quiescer, snap, copts)
		cp.Start()
		log.Printf("checkpoint: enabled (interval=%v bytes=%d retain=%d)", *ckptIval, *ckptBytes, *ckptRetain)
	}

	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (strategy=%s policy=%s entities=%d accounts=%d shards=%d stripes=%d burst=%d wal=%s store=%s)",
		srv.Addr(), *strategy, *policy, *entities, *accounts, *shards, *stripes, *burst, walDesc(), *storeKind)

	var adminSrv *http.Server
	if *admin != "" {
		// The serving-layer counters (sessions, bytes, per-shard stats)
		// ride along as a gauge set read at scrape time.
		registry.NewGaugeSet("pr_server_", "Serving-layer counter snapshot.", func() []obs.KV {
			cs := srv.Counters()
			out := make([]obs.KV, len(cs))
			for i, c := range cs {
				out[i] = obs.KV{Name: c.Name, Val: c.Val}
			}
			return out
		})
		obs.RegisterStripeAcquires(registry, srv.System())
		registry.NewGauge("pr_runtime_heap_alloc_bytes",
			"Live Go heap bytes (runtime.ReadMemStats), sampled at scrape time.",
			func() int64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return int64(ms.HeapAlloc)
			})
		if cfg.Store.Paged() {
			registry.NewGaugeSet("pr_store_", "Paged entity-store buffer pool counters.", func() []obs.KV {
				ps := cfg.Store.PoolStats()
				return []obs.KV{
					{Name: "hits", Val: ps.Hits},
					{Name: "misses", Val: ps.Misses},
					{Name: "evictions", Val: ps.Evictions},
					{Name: "flushes", Val: ps.Flushes},
					{Name: "pinned_pages", Val: ps.PinnedPages},
					{Name: "pool_frames", Val: ps.Frames},
					{Name: "pool_overcap", Val: ps.OverCap},
					{Name: "heap_pages", Val: ps.HeapPages},
				}
			})
		}
		if walSet != nil {
			registry.NewGauge("pr_wal_recovery_duration_us",
				"Startup recovery wall time in microseconds (checkpoint load + tail replay).",
				func() int64 { return recInfo.Duration.Microseconds() })
			registry.NewGauge("pr_wal_sealed_segments",
				"Sealed log segments awaiting compaction.",
				func() int64 { return int64(len(walSet.SealedSegments())) })
		}
		if cp != nil {
			registry.NewGauge("pr_checkpoint_last_frontier",
				"WAL sequence frontier of the newest checkpoint.",
				func() int64 { return int64(cp.Status().LastFrontier) })
			registry.NewGauge("pr_checkpoint_age_seconds",
				"Seconds since the newest checkpoint (0 before the first).",
				func() int64 {
					st := cp.Status()
					if st.LastUnix == 0 {
						return 0
					}
					return int64(time.Since(time.Unix(st.LastUnix, 0)).Seconds())
				})
			registry.NewGauge("pr_checkpoint_errors",
				"Failed checkpoint attempts.",
				func() int64 { return cp.Status().Errors })
		}
		opts := obs.AdminOptions{Registry: registry, Engine: srv.System(), Tracer: tracer,
			Owners: func() map[txn.ID]obs.TxnOwner {
				owners := srv.Owners()
				out := make(map[txn.ID]obs.TxnOwner, len(owners))
				for id, o := range owners {
					out[id] = obs.TxnOwner{Conn: o.Conn, Addr: o.Addr, Stream: o.Stream, Tagged: o.Tagged}
				}
				return out
			}}
		if walSet != nil {
			opts.WAL = func() obs.WALStatus {
				ws := obs.WALStatus{Dir: walSet.Dir(), Frontier: walSet.Frontier()}
				for _, sh := range walSet.ShardStatus() {
					ws.Shards = append(ws.Shards, obs.WALShard{
						Shard:          sh.Shard,
						ActiveBytes:    sh.ActiveBytes,
						ActiveLastSeq:  sh.ActiveLastSeq,
						DurableSeq:     sh.DurableSeq,
						PendingRecords: sh.PendingRecords,
						SealedSegments: sh.SealedSegments,
						SealedBytes:    sh.SealedBytes,
					})
				}
				if cp != nil {
					st := cp.Status()
					wc := obs.WALCheckpoint{
						Checkpoints:  st.Checkpoints,
						LastFrontier: st.LastFrontier,
						LastEntities: st.LastEntities,
						LastBytes:    st.LastBytes,
						LastUnix:     st.LastUnix,
						Errors:       st.Errors,
					}
					if st.LastUnix > 0 {
						wc.AgeSeconds = time.Since(time.Unix(st.LastUnix, 0)).Seconds()
					}
					ws.Checkpoint = &wc
				}
				return ws
			}
		}
		if se, ok := srv.System().(*shard.Engine); ok {
			registry.NewGauge("pr_admission_queue_depth",
				"Cross-shard claims queued for placement.",
				func() int64 { return int64(se.QueueDepth()) })
			opts.Queued = func() []obs.KV {
				var out []obs.KV
				for _, q := range se.Queued() {
					out = append(out, obs.KV{Name: fmt.Sprintf("pos%d_%s_txn", q.Position, q.Program), Val: int64(q.Txn)})
				}
				return out
			}
		}
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		adminSrv = &http.Server{Handler: obs.NewAdminMux(opts)}
		go func() {
			if err := adminSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin: %v", err)
			}
		}()
		log.Printf("admin on http://%s (metrics, debug/waitfor, debug/txns, pprof; trace=%v)",
			ln.Addr(), *traceCap > 0)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (drain %v)...", *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain deadline hit; in-flight transactions rolled back (%v)", err)
	}
	if cp != nil {
		// Stop the trigger loop (waiting out any in-flight checkpoint)
		// before the log set closes underneath it.
		cp.Close()
	}
	if walSet != nil {
		// Final sync + close: under -fsync off this is the only fsync
		// the log ever gets, so a clean shutdown still persists tails.
		if err := walSet.Close(); err != nil {
			log.Printf("wal: close: %v", err)
		}
	}
	if adminSrv != nil {
		_ = adminSrv.Shutdown(context.Background())
	}

	fmt.Println("final counters:")
	for _, c := range srv.Counters() {
		fmt.Printf("  %-18s %d\n", c.Name, c.Val)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		log.Fatalf("engine invariants violated: %v", err)
	}
	if err := cfg.Store.CheckConsistent(); err != nil {
		log.Fatalf("store inconsistent after shutdown: %v", err)
	}
	if err := cfg.Store.Close(); err != nil {
		log.Printf("store: close: %v", err)
	}
	log.Printf("store consistent; bye")
}

func walDesc() string {
	if *walDir == "" {
		return "off"
	}
	return fmt.Sprintf("%s(fsync=%s)", *walDir, *fsyncMode)
}
