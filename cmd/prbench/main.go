// Command prbench runs the full reproduction suite E1-E16 (DESIGN.md
// §4) and prints every table recorded in EXPERIMENTS.md.
//
// Usage:
//
//	prbench [-exp E9] [-seed 42] [-rounds 10] [-json dir]
//
// With -json, each experiment's table is additionally written to
// <dir>/BENCH_<ID>.json (machine-readable: the table plus the run
// parameters), for diffing runs or feeding plots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"partialrollback/internal/experiments"
	"partialrollback/internal/render"
)

var (
	expFlag    = flag.String("exp", "", "comma-separated experiment IDs to run (e.g. E1,E9); empty = all")
	seedFlag   = flag.Int64("seed", 42, "base seed for randomized sweeps")
	roundsFlag = flag.Int("rounds", 10, "rounds for the Figure 2 preemption scenario")
	jsonDir    = flag.String("json", "", "directory to write BENCH_<ID>.json files to (empty = off)")
)

// benchJSON is the machine-readable form of one experiment run.
type benchJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Seed   int64      `json:"seed"`
	Rounds int        `json:"rounds"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

func writeJSON(t *experiments.Table) error {
	out := benchJSON{
		ID:     t.ID,
		Title:  t.Title,
		Seed:   *seedFlag,
		Rounds: *roundsFlag,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(*jsonDir, "BENCH_"+t.ID+".json")
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	log.SetFlags(0)
	flag.Parse()
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	type exp struct {
		id string
		fn func() (*experiments.Table, error)
	}
	suite := []exp{
		{"E1", func() (*experiments.Table, error) { _, t, err := experiments.E1Figure1(); return t, err }},
		{"E2", func() (*experiments.Table, error) { _, t, err := experiments.E2Figure2(*roundsFlag); return t, err }},
		{"E3", experiments.E3Figure3},
		{"E4", func() (*experiments.Table, error) { _, t, err := experiments.E4Figure4(); return t, err }},
		{"E5", func() (*experiments.Table, error) { _, t, err := experiments.E5Figure5(); return t, err }},
		{"E6", func() (*experiments.Table, error) { _, t, err := experiments.E6Forest(10); return t, err }},
		{"E7", func() (*experiments.Table, error) {
			_, t, err := experiments.E7MCSBound([]int{2, 4, 8, 16, 32, 64})
			return t, err
		}},
		{"E8", func() (*experiments.Table, error) {
			_, t, err := experiments.E8Cutset([]int{3, 5, 8, 12, 16}, 50, *seedFlag)
			return t, err
		}},
		{"E9", func() (*experiments.Table, error) { _, t, err := experiments.E9Strategies(*seedFlag); return t, err }},
		{"E10", func() (*experiments.Table, error) { _, t, err := experiments.E10Structure(*seedFlag); return t, err }},
		{"E11", func() (*experiments.Table, error) { _, t, err := experiments.E11Distributed(*seedFlag); return t, err }},
		{"E12", func() (*experiments.Table, error) { _, t, err := experiments.E12Avoidance(*seedFlag); return t, err }},
		{"E13", func() (*experiments.Table, error) { _, t, err := experiments.E13Hybrid(*seedFlag); return t, err }},
		{"E14", func() (*experiments.Table, error) { _, t, err := experiments.E14Optimizer(*seedFlag); return t, err }},
		{"E15", func() (*experiments.Table, error) {
			_, t, err := experiments.E15MessagePassing(*seedFlag)
			return t, err
		}},
		{"E16", func() (*experiments.Table, error) {
			_, t, err := experiments.E16Sharding(*seedFlag)
			return t, err
		}},
	}
	for _, e := range suite {
		if !run(e.id) {
			continue
		}
		t, err := e.fn()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
		fmt.Print(render.Table(t.Header, t.Rows))
		for _, n := range t.Notes {
			fmt.Printf("  * %s\n", n)
		}
		fmt.Println()
		if *jsonDir != "" {
			if err := writeJSON(t); err != nil {
				log.Fatalf("%s: write json: %v", t.ID, err)
			}
		}
	}
}
