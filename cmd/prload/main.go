// Command prload is a closed-loop load generator for cmd/prserver: N
// client goroutines each run a stream of transactions back-to-back over
// their own connection, retrying (with jittered backoff) whenever the
// server rolls their transaction back. It reports throughput, latency
// percentiles, and the engine-side cost of deadlock removal — lost
// operations, partial and total rollbacks — as observed over the wire.
//
// Workloads:
//
//	hotspot — sim.Generate over the server's uniform entities
//	          ("e0".."eN-1") with a skewed hot set, the contention
//	          pattern of the paper's §5 experiments;
//	banking — sim.BankingWorkload transfers over "acct0".."acctM-1"
//	          (the server guards these with a sum invariant);
//	counter — sim.CounterWorkload single-entity increments over
//	          "e0".."e{counters-1}", the crash-recovery harness's unit
//	          of account (one acknowledged commit = +1 to the sum).
//
// With -verify-sum-min N the load loop is replaced by a single
// shared-lock transaction summing the counter entities; the run fails
// unless the sum is at least N (see scripts/smoke_recovery.sh).
//
// Usage:
//
//	prload -addr 127.0.0.1:7415 -clients 8 -txns 50 -workload hotspot \
//	       -db 64 -hot 8 -hotprob 0.8 -locks 4 -seed 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"partialrollback/internal/client"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7415", "server address")
	clients  = flag.Int("clients", 8, "concurrent client connections")
	txnsPer  = flag.Int("txns", 50, "transactions per client")
	workload = flag.String("workload", "hotspot", "workload: hotspot|banking|counter")
	db       = flag.Int("db", 64, "hotspot: number of entities (must be <= server -entities)")
	hot      = flag.Int("hot", 8, "hotspot: hot-set size (0 disables skew)")
	hotProb  = flag.Float64("hotprob", 0.8, "hotspot: probability a lock hits the hot set")
	locks    = flag.Int("locks", 4, "hotspot: locks per transaction")
	pad      = flag.Int("pad", 2, "hotspot: compute padding per lock interval")
	shape    = flag.String("shape", "scattered", "hotspot: write shape: scattered|clustered|three-phase|mixed")
	rewrite  = flag.Float64("rewrite", 0.4, "hotspot: rewrite probability (scattered shape)")
	accounts = flag.Int("accounts", 16, "banking: accounts (must be <= server -accounts)")
	balance  = flag.Int64("balance", 100, "banking: unused by the client, kept for symmetry")
	counters = flag.Int("counters", 8, "counter: entities incremented (must be <= server -entities)")
	entities = flag.Int("entities", 0, "uniform-random entity count: overrides -db (hotspot) and -counters (counter) with one knob, for sweeps where the entity set is the variable — e.g. 10x the server's -pool-pages working set (0 = use -db/-counters)")
	bail     = flag.Bool("bail", false, "stop a client at its first failed transaction instead of moving on (crash-harness mode)")
	verify   = flag.Int64("verify-sum-min", -1, "instead of generating load, read e0..e{counters-1} in one transaction and fail unless their sum >= this (-1 disables)")
	seed     = flag.Int64("seed", 1, "workload seed (client i uses seed+i)")
	proto    = flag.Int("proto", 1, "wire protocol: 1 = one frame per operation, 2 = whole program in one BeginProgram frame, 3 = stream-multiplexed (-streams concurrent transactions share -conns sockets)")
	conns    = flag.Int("conns", 4, "proto 3: shared sockets the streams are multiplexed over")
	streams  = flag.Int("streams", 0, "proto 3: total concurrent streams across the -conns sockets (0 = -clients)")
	timeout  = flag.Duration("timeout", time.Minute, "per-attempt client deadline")
	attempts = flag.Int("attempts", 16, "max attempts per transaction")
	adminURL = flag.String("admin", "", "server admin endpoint (host:port or URL) to scrape /metrics from after the run")
	jsonOut  = flag.String("json", "", "write the run report (plus scraped admin metrics) as JSON to this file (\"-\" = stdout)")
)

func parseShape(s string) (sim.WriteShape, error) {
	switch s {
	case "scattered":
		return sim.Scattered, nil
	case "clustered":
		return sim.Clustered, nil
	case "three-phase", "threephase":
		return sim.ThreePhase, nil
	case "mixed":
		return sim.Mixed, nil
	}
	return 0, fmt.Errorf("unknown shape %q", s)
}

// clientStats accumulates one goroutine's observations.
type clientStats struct {
	committed  int
	failed     int
	latencies  []time.Duration
	opsLost    int64
	rollbacks  int64
	restarts   int64
	waits      int64
	netRetries int64
	lastErr    error
}

func programsFor(i int) []*txn.Program {
	switch *workload {
	case "hotspot":
		sh, err := parseShape(*shape)
		if err != nil {
			log.Fatal(err)
		}
		return sim.Generate(sim.GenConfig{
			Txns:        *txnsPer,
			DBSize:      *db,
			HotSet:      *hot,
			HotProb:     *hotProb,
			LocksPerTxn: *locks,
			PadOps:      *pad,
			RewriteProb: *rewrite,
			Shape:       sh,
			Seed:        *seed + int64(i),
		}).Programs
	case "banking":
		return sim.BankingWorkload(*accounts, *txnsPer, *balance, *seed+int64(i)).Programs
	case "counter":
		return sim.CounterWorkload(*counters, *txnsPer, *seed+int64(i)).Programs
	default:
		log.Fatalf("unknown workload %q", *workload)
		return nil
	}
}

// report is the machine-readable run summary written by -json, shaped
// for diffing against the committed BENCH_*.json snapshots: stable
// keys, seconds as floats, counters as integer maps.
type report struct {
	Workload      string  `json:"workload"`
	Clients       int     `json:"clients"`
	TxnsPerClient int     `json:"txnsPerClient"`
	Seed          int64   `json:"seed"`
	Proto         int     `json:"proto"`
	ElapsedSec    float64 `json:"elapsedSec"`
	// GOMAXPROCS and NumCPU pin the client-side parallelism available to
	// the run, so committed BENCH_*.json snapshots record whether a
	// scaling result was even possible on the machine that produced it.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numCPU"`
	// ServerShards / ServerStripes echo the engine partitioning the
	// server reported in its STATS snapshot (1 when the server predates
	// the counter or runs unpartitioned).
	ServerShards  int     `json:"serverShards"`
	ServerStripes int     `json:"serverStripes"`
	// Entities is the configured entity-set size the workload drew from
	// (-entities, falling back to -db/-counters per workload).
	Entities int `json:"entities"`
	// StoreBackend echoes the server's entity-store backend ("mem" or
	// "paged"), derived from the store_paged STATS counter.
	StoreBackend string `json:"storeBackend"`
	Committed     int     `json:"committed"`
	Failed        int     `json:"failed"`
	Throughput    float64 `json:"throughputTxnPerSec"`
	// OpenSockets is how many TCP connections carried the load: one per
	// client under proto 1/2, -conns shared sockets under proto 3.
	OpenSockets int `json:"openSockets"`
	// Streams is the concurrent-transaction count (= clients under
	// proto 1/2, -streams under proto 3).
	Streams int `json:"streams"`
	// TxnsPerSocket is throughput divided by open sockets — the ROADMAP
	// connection-efficiency metric (txn/s per open socket).
	TxnsPerSocket float64 `json:"txnsPerSocket"`
	LatencyP50Ms  float64 `json:"latencyP50Ms"`
	LatencyP90Ms  float64 `json:"latencyP90Ms"`
	LatencyP99Ms  float64 `json:"latencyP99Ms"`
	OpsLost       int64   `json:"opsLost"`
	PartialRB     int64   `json:"partialRollbacks"`
	TotalRB       int64   `json:"totalRollbacks"`
	Waits         int64   `json:"waits"`
	NetRetries    int64   `json:"netRetries"`
	// WireFramesPerTxn is the server-observed inbound frame count per
	// served transaction (frames_in / txns_served): ~ops+2 under v1,
	// ~1 under v2.
	WireFramesPerTxn float64 `json:"wireFramesPerTxn"`
	// WriterFlushes is the server's coalesced-write count — each flush
	// is one conn.Write, so this is the write-syscall proxy for the run.
	WriterFlushes int64 `json:"writerFlushes"`
	// ServerCounters is the wire STATS snapshot.
	ServerCounters map[string]int64 `json:"serverCounters,omitempty"`
	// AdminMetrics is the expvar-style JSON scraped from the admin
	// endpoint's /metrics (counters, gauges, histograms), when -admin
	// was given.
	AdminMetrics map[string]any `json:"adminMetrics,omitempty"`
}

// scrapeAdmin fetches the admin endpoint's /metrics as JSON. addr may
// be host:port or a full URL.
func scrapeAdmin(addr string) (map[string]any, error) {
	url := addr
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("admin endpoint returned %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func writeReport(r *report) error {
	out := os.Stdout
	if *jsonOut != "-" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// printShardBalance summarizes the per-shard counters a sharded server
// reports (shard<k>_grants, ...): grants per shard plus the max/min
// ratio, the client-side view of partition imbalance.
func printShardBalance(counters []wire.Counter) {
	var n int64
	for _, c := range counters {
		if c.Name == "shards" {
			n = c.Val
		}
	}
	if n < 2 {
		return
	}
	grants := make([]int64, n)
	for _, c := range counters {
		var k int64
		if _, err := fmt.Sscanf(c.Name, "shard%d_grants", &k); err == nil && k < n {
			grants[k] = c.Val
		}
	}
	min, max := grants[0], grants[0]
	for _, g := range grants[1:] {
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	ratio := "inf"
	if min > 0 {
		ratio = fmt.Sprintf("%.2f", float64(max)/float64(min))
	}
	fmt.Printf("shard balance: grants=%v max/min=%s\n", grants, ratio)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prload: ")
	flag.Parse()

	// -entities is the one-knob entity-set size: hotspot draws from a
	// db that large and counter spreads increments over that many
	// entities, so out-of-core sweeps don't have to know which workload
	// they drive.
	if *entities > 0 {
		*db = *entities
		*counters = *entities
	}

	if *verify >= 0 {
		verifySum()
		return
	}

	// Under proto 3 the unit of concurrency (a stream) is decoupled from
	// the socket: -streams workers share -conns multiplexed connections.
	// Under proto 1/2 each worker owns its connection, as before.
	workers := *clients
	var muxes []*client.Mux
	if *proto >= 3 {
		if *streams > 0 {
			workers = *streams
		}
		if *conns < 1 {
			log.Fatalf("-conns must be >= 1 (got %d)", *conns)
		}
		muxes = make([]*client.Mux, *conns)
		for k := range muxes {
			muxes[k] = client.NewMux(client.MuxConfig{
				Addr:           *addr,
				RequestTimeout: *timeout,
				MaxAttempts:    *attempts,
				Backoff:        exec.Backoff{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond},
			})
			defer muxes[k].Close()
		}
	}

	stats := make([]clientStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		progs := programsFor(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var run func(context.Context, *txn.Program) (*client.Result, error)
			if muxes != nil {
				run = muxes[i%len(muxes)].Run
			} else {
				c := client.New(client.Config{
					Addr:           *addr,
					RequestTimeout: *timeout,
					MaxAttempts:    *attempts,
					Backoff:        exec.Backoff{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond},
					Seed:           *seed + int64(i) + 1,
					Proto:          *proto,
				})
				defer c.Close()
				run = c.Run
			}
			st := &stats[i]
			for _, p := range progs {
				t0 := time.Now()
				res, err := run(context.Background(), p)
				if err != nil {
					st.failed++
					st.lastErr = err
					if *bail {
						return
					}
					continue
				}
				st.committed++
				st.latencies = append(st.latencies, time.Since(t0))
				st.opsLost += res.Outcome.OpsLost
				st.rollbacks += res.Outcome.Rollbacks
				st.restarts += res.Outcome.Restarts
				st.waits += res.Outcome.Waits
				st.netRetries += int64(res.Attempts - 1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total clientStats
	for i := range stats {
		st := &stats[i]
		total.committed += st.committed
		total.failed += st.failed
		total.latencies = append(total.latencies, st.latencies...)
		total.opsLost += st.opsLost
		total.rollbacks += st.rollbacks
		total.restarts += st.restarts
		total.waits += st.waits
		total.netRetries += st.netRetries
		if st.lastErr != nil {
			total.lastErr = st.lastErr
		}
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	openSockets := workers
	if muxes != nil {
		openSockets = len(muxes)
	}
	throughput := float64(total.committed) / elapsed.Seconds()

	fmt.Printf("workload=%s clients=%d txns/client=%d elapsed=%v\n",
		*workload, *clients, *txnsPer, elapsed.Round(time.Millisecond))
	fmt.Printf("committed=%d failed=%d throughput=%.1f txn/s\n",
		total.committed, total.failed, throughput)
	fmt.Printf("sockets=%d streams=%d txn/s-per-socket=%.1f\n",
		openSockets, workers, throughput/float64(openSockets))
	fmt.Printf("latency p50=%v p90=%v p99=%v\n",
		percentile(total.latencies, 0.50).Round(time.Microsecond),
		percentile(total.latencies, 0.90).Round(time.Microsecond),
		percentile(total.latencies, 0.99).Round(time.Microsecond))
	fmt.Printf("ops-lost=%d partial-rollbacks=%d total-rollbacks=%d waits=%d net-retries=%d\n",
		total.opsLost, total.rollbacks-total.restarts, total.restarts, total.waits, total.netRetries)

	rep := &report{
		Workload:      *workload,
		Clients:       *clients,
		TxnsPerClient: *txnsPer,
		Seed:          *seed,
		Proto:         *proto,
		ElapsedSec:    elapsed.Seconds(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		ServerShards:  1,
		ServerStripes: 1,
		Entities:      workloadEntities(),
		StoreBackend:  "mem",
		Committed:     total.committed,
		Failed:        total.failed,
		Throughput:    throughput,
		OpenSockets:   openSockets,
		Streams:       workers,
		TxnsPerSocket: throughput / float64(openSockets),
		LatencyP50Ms:  float64(percentile(total.latencies, 0.50)) / float64(time.Millisecond),
		LatencyP90Ms:  float64(percentile(total.latencies, 0.90)) / float64(time.Millisecond),
		LatencyP99Ms:  float64(percentile(total.latencies, 0.99)) / float64(time.Millisecond),
		OpsLost:       total.opsLost,
		PartialRB:     total.rollbacks - total.restarts,
		TotalRB:       total.restarts,
		Waits:         total.waits,
		NetRetries:    total.netRetries,
	}

	// One extra connection for the server's own view of the run.
	c := client.New(client.Config{Addr: *addr, RequestTimeout: *timeout})
	defer c.Close()
	if counters, err := c.Stats(); err == nil {
		fmt.Println("server counters:")
		rep.ServerCounters = make(map[string]int64, len(counters))
		for _, cn := range counters {
			fmt.Printf("  %-18s %d\n", cn.Name, cn.Val)
			rep.ServerCounters[cn.Name] = cn.Val
		}
		if served := rep.ServerCounters["txns_served"]; served > 0 {
			rep.WireFramesPerTxn = float64(rep.ServerCounters["frames_in"]) / float64(served)
		}
		rep.WriterFlushes = rep.ServerCounters["writer_flushes"]
		if v := rep.ServerCounters["shards"]; v > 1 {
			rep.ServerShards = int(v)
		}
		if v := rep.ServerCounters["stripes"]; v > 1 {
			rep.ServerStripes = int(v)
		}
		if rep.ServerCounters["store_paged"] == 1 {
			rep.StoreBackend = "paged"
			fmt.Printf("store: paged hits=%d misses=%d evictions=%d pinned=%d\n",
				rep.ServerCounters["store_hits"], rep.ServerCounters["store_misses"],
				rep.ServerCounters["store_evictions"], rep.ServerCounters["store_pinned_pages"])
		}
		fmt.Printf("wire: frames/txn=%.2f writer-flushes=%d (frames-out=%d)\n",
			rep.WireFramesPerTxn, rep.WriterFlushes, rep.ServerCounters["frames_out"])
		fmt.Printf("env: gomaxprocs=%d numcpu=%d server-shards=%d server-stripes=%d\n",
			rep.GOMAXPROCS, rep.NumCPU, rep.ServerShards, rep.ServerStripes)
		printShardBalance(counters)
	} else {
		log.Printf("stats request failed: %v", err)
	}

	// The admin endpoint's richer view: histograms (rollback depth,
	// wait durations, cycle lengths) the wire snapshot cannot carry.
	if *adminURL != "" {
		m, err := scrapeAdmin(*adminURL)
		if err != nil {
			log.Printf("admin scrape failed: %v", err)
		} else {
			rep.AdminMetrics = m
			printAdminSummary(m)
		}
	}
	if *jsonOut != "" {
		if err := writeReport(rep); err != nil {
			log.Fatalf("writing -json report: %v", err)
		}
	}
	if total.failed > 0 {
		log.Fatalf("%d transactions failed; last error: %v", total.failed, total.lastErr)
	}
}

// verifySum is the crash-harness check: shared-lock transactions read
// every counter entity, and the sum is compared against the
// acknowledged-commit count from before the crash. Each counter commit
// adds exactly one, retries and in-flight-but-unacknowledged commits
// can only push the sum higher, so sum >= acked is precisely "no
// acknowledged commit was lost".
//
// The read is chunked into transactions of at most verifyChunk
// entities: multi-million-entity sweeps would otherwise build one
// program with millions of operations. Verification runs after load
// has stopped, so the values are stable and the chunked sum is exact.
const verifyChunk = 512

func verifySum() {
	c := client.New(client.Config{
		Addr:           *addr,
		RequestTimeout: *timeout,
		MaxAttempts:    *attempts,
		Backoff:        exec.Backoff{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond},
		Seed:           *seed,
		Proto:          *proto,
	})
	defer c.Close()
	var sum int64
	for lo := 0; lo < *counters; lo += verifyChunk {
		hi := lo + verifyChunk
		if hi > *counters {
			hi = *counters
		}
		b := txn.NewProgram(fmt.Sprintf("verify-sum-%d", lo))
		for i := lo; i < hi; i++ {
			b.Local(fmt.Sprintf("c%d", i), 0)
		}
		for i := lo; i < hi; i++ {
			ent := fmt.Sprintf("e%d", i)
			b.LockS(ent).Read(ent, fmt.Sprintf("c%d", i))
		}
		p, err := b.Build()
		if err != nil {
			log.Fatalf("verify: building read transaction: %v", err)
		}
		res, err := c.Run(context.Background(), p)
		if err != nil {
			log.Fatalf("verify: read transaction e%d..e%d failed: %v", lo, hi-1, err)
		}
		for _, v := range res.Locals {
			sum += v
		}
	}
	fmt.Printf("verify: sum(e0..e%d)=%d acked=%d\n", *counters-1, sum, *verify)
	if sum < *verify {
		log.Fatalf("verify: DURABILITY VIOLATION: recovered sum %d < %d acknowledged commits", sum, *verify)
	}
	log.Printf("verify: ok (every acknowledged commit survived)")
}

// workloadEntities reports the entity-set size the run drew from, for
// the JSON report.
func workloadEntities() int {
	switch *workload {
	case "hotspot":
		return *db
	case "counter":
		return *counters
	case "banking":
		return *accounts
	}
	return 0
}

// printAdminSummary folds the scraped histograms into the human report:
// mean rollback depth and mean lock-wait duration, the two costs the
// paper's victim policies trade off.
func printAdminSummary(m map[string]any) {
	hist := func(name string) (sum float64, count float64, ok bool) {
		h, ok := m[name].(map[string]any)
		if !ok {
			return 0, 0, false
		}
		sum, _ = h["sum"].(float64)
		count, _ = h["count"].(float64)
		return sum, count, count > 0
	}
	if sum, n, ok := hist("pr_rollback_depth"); ok {
		fmt.Printf("admin: rollback depth mean=%.2f ops over %d rollbacks\n", sum/n, int64(n))
	}
	if sum, n, ok := hist("pr_wait_duration_seconds"); ok {
		fmt.Printf("admin: lock wait mean=%s over %d waits\n",
			time.Duration(sum/n*float64(time.Second)).Round(time.Microsecond), int64(n))
	}
}
