// Command prtrace inspects JSON-lines event traces written by prsim
// -trace (or any trace.Recorder): summary statistics, rollback-depth
// distribution, per-transaction preemption counts, and trace diffing
// for determinism checks.
//
// Usage:
//
//	prtrace summary run.jsonl
//	prtrace diff a.jsonl b.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"partialrollback/internal/render"
	"partialrollback/internal/trace"
	"partialrollback/internal/txn"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 3 {
		log.Fatalf("usage: prtrace summary FILE | prtrace diff FILE1 FILE2")
	}
	switch os.Args[1] {
	case "summary":
		summary(os.Args[2])
	case "diff":
		if len(os.Args) < 4 {
			log.Fatal("usage: prtrace diff FILE1 FILE2")
		}
		diff(os.Args[2], os.Args[3])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func readTrace(path string) []trace.Record {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return records
}

func summary(path string) {
	records := readTrace(path)
	s := trace.Summarize(records)
	fmt.Printf("%s: %d events\n\n", path, s.Events)
	fmt.Print(render.Table(
		[]string{"grants", "waits", "deadlocks", "rollbacks", "commits"},
		[][]string{{
			fmt.Sprint(s.Grants), fmt.Sprint(s.Waits), fmt.Sprint(s.Deadlocks),
			fmt.Sprint(s.Rollbacks), fmt.Sprint(s.Commits),
		}},
	))
	if s.Rollbacks == 0 {
		fmt.Println("\nno rollbacks recorded")
		return
	}
	fmt.Printf("\nrollback depth: p50=%d p90=%d p99=%d max=%d\n",
		s.Percentile(50), s.Percentile(90), s.Percentile(99), s.Percentile(100))
	bounds := []int64{2, 5, 10, 20, 50}
	hist := s.Histogram(bounds)
	fmt.Println("depth histogram:")
	labels := []string{"<=2", "3-5", "6-10", "11-20", "21-50", ">50"}
	for i, c := range hist {
		bar := ""
		for j := 0; j < c; j++ {
			bar += "#"
			if j > 60 {
				bar += "..."
				break
			}
		}
		fmt.Printf("  %-6s %4d %s\n", labels[i], c, bar)
	}

	type pair struct {
		id txn.ID
		n  int
	}
	var per []pair
	for id, n := range s.PerTxnRollbacks {
		per = append(per, pair{id, n})
	}
	sort.Slice(per, func(i, j int) bool {
		if per[i].n != per[j].n {
			return per[i].n > per[j].n
		}
		return per[i].id < per[j].id
	})
	fmt.Println("most-preempted transactions:")
	for i, p := range per {
		if i >= 5 {
			break
		}
		fmt.Printf("  %v: %d rollbacks\n", p.id, p.n)
	}
}

func diff(pathA, pathB string) {
	a := readTrace(pathA)
	b := readTrace(pathB)
	if d := trace.Diff(a, b); d != "" {
		fmt.Println(d)
		os.Exit(1)
	}
	fmt.Printf("traces identical (%d events)\n", len(a))
}
