package partialrollback_test

import (
	"bytes"
	"testing"

	pr "partialrollback"
)

// TestFacadeQuickstart exercises the public API end to end exactly as
// README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	store := pr.NewStore(map[string]int64{"checking": 100, "savings": 200})
	store.AddConstraint(pr.SumConstraint("total", 300, "checking", "savings"))
	sys := pr.New(pr.Config{
		Store:         store,
		Strategy:      pr.MCS,
		Policy:        pr.OrderedMinCost{},
		RecordHistory: true,
	})
	a := sys.MustRegister(pr.NewProgram("to-savings").
		Local("c", 0).Local("s", 0).
		LockX("checking").Read("checking", "c").
		LockX("savings").Read("savings", "s").
		Write("checking", pr.Sub(pr.L("c"), pr.C(25))).
		Write("savings", pr.Add(pr.L("s"), pr.C(25))).
		MustBuild())
	b := sys.MustRegister(pr.NewProgram("to-checking").
		Local("c", 0).Local("s", 0).
		LockX("savings").Read("savings", "s").
		LockX("checking").Read("checking", "c").
		Write("savings", pr.Sub(pr.L("s"), pr.C(10))).
		Write("checking", pr.Add(pr.L("c"), pr.C(10))).
		MustBuild())
	for !sys.AllCommitted() {
		for _, id := range []pr.TxnID{a, b} {
			if _, err := sys.Step(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := store.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if got := store.MustGet("checking"); got != 85 {
		t.Errorf("checking = %d", got)
	}
	if got := store.MustGet("savings"); got != 215 {
		t.Errorf("savings = %d", got)
	}
	if sys.Stats().Deadlocks == 0 {
		t.Error("round-robin opposite-order transfers must deadlock")
	}
	if _, err := sys.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
}

func TestFacadeConcurrentRun(t *testing.T) {
	store := pr.NewUniformStore("e", 6, 10)
	var progs []*pr.Program
	progs = append(progs,
		pr.NewProgram("P1").Local("v", 0).
			LockX("e0").Read("e0", "v").
			LockX("e1").Write("e1", pr.Add(pr.L("v"), pr.C(1))).MustBuild(),
		pr.NewProgram("P2").Local("v", 0).
			LockX("e1").Read("e1", "v").
			LockX("e0").Write("e0", pr.Add(pr.L("v"), pr.C(1))).MustBuild(),
		pr.NewProgram("P3").Local("v", 0).
			LockS("e2").Read("e2", "v").MustBuild(),
	)
	out, err := pr.RunConcurrent(store, progs, pr.RunOptions{
		Strategy: pr.SDG, Policy: pr.OrderedMinCost{}, RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Commits != 3 {
		t.Errorf("commits = %d", out.Stats.Commits)
	}
	if _, err := out.System.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	p := pr.NewProgram("T").Local("x", 0).
		LockX("a").
		DeclareLastLock().
		Write("a", pr.Max(pr.Min(pr.L("x"), pr.C(5)), pr.Div(pr.C(10), pr.C(2)))).
		MustBuild()
	if err := pr.Validate(p); err != nil {
		t.Fatal(err)
	}
	if !pr.IsThreePhase(p) {
		t.Error("three-phase")
	}
}

func TestFacadeWAL(t *testing.T) {
	var buf bytes.Buffer
	store := pr.NewStore(map[string]int64{"a": 1, "b": 2})
	w := pr.NewWALWriter(&buf, 1)
	w.Attach(store)
	sys := pr.New(pr.Config{Store: store, Strategy: pr.MCS})
	id := sys.MustRegister(pr.NewProgram("T").Local("x", 0).
		LockX("a").Read("a", "x").
		Write("a", pr.Add(pr.L("x"), pr.C(41))).
		MustBuild())
	for {
		res, err := sys.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == pr.Committed {
			break
		}
	}
	recovered := pr.NewStore(map[string]int64{"a": 1, "b": 2})
	applied, next, damage := pr.RecoverWAL(bytes.NewReader(buf.Bytes()), recovered)
	if damage != nil || applied != 1 || next != 2 {
		t.Fatalf("recover: applied=%d next=%d damage=%v", applied, next, damage)
	}
	if recovered.MustGet("a") != 42 {
		t.Errorf("a = %d", recovered.MustGet("a"))
	}
}
