package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// taggableMsgs is one instance of every message type that may travel
// stream-tagged.
func taggableMsgs() []Msg {
	return []Msg{
		BeginProgram{Name: "P"},
		BeginProgram{
			Name:   "xfer",
			Locals: []LocalDecl{{"t", 0}},
			Ops: []txn.Op{
				{Kind: txn.OpLockX, Entity: "e0"},
				{Kind: txn.OpRead, Entity: "e0", Local: "t"},
				{Kind: txn.OpCompute, Local: "t", Expr: value.Add(value.L("t"), value.C(1))},
				{Kind: txn.OpWrite, Entity: "e0", Expr: value.L("t")},
				{Kind: txn.OpCommit},
			},
		},
		Stats{},
		Committed{Txn: 42, Locals: []LocalDecl{{"a", 9}}, Stats: TxnOutcome{
			OpsExecuted: 10, OpsLost: 3, Rollbacks: 2, Restarts: 1, Waits: 4}},
		RolledBack{Txn: 7, ToLockState: 2, FromState: 19, ToState: 13, Lost: 6},
		Error{Code: CodeBusy, Msg: "full"},
		StatsReply{Counters: []Counter{{"grants", 12}, {"waits", -1}}},
	}
}

func TestTaggedRoundTrip(t *testing.T) {
	streams := []uint32{0, 1, 5, 1 << 20, MaxStream}
	for _, m := range taggableMsgs() {
		for _, stream := range streams {
			frame, err := EncodeTagged(stream, m)
			if err != nil {
				t.Fatalf("encode %T stream %d: %v", m, stream, err)
			}
			f, err := DecodeFrame(frame[4:])
			if err != nil {
				t.Fatalf("decode %T stream %d: %v", m, stream, err)
			}
			if !f.Tagged || f.Stream != stream {
				t.Fatalf("%T: got tagged=%v stream=%d, want tagged stream %d",
					m, f.Tagged, f.Stream, stream)
			}
			if !reflect.DeepEqual(f.Msg, m) {
				t.Fatalf("%T round trip: got %#v, want %#v", m, f.Msg, m)
			}
		}
	}
}

// TestTaggedBodyMatchesUntagged pins the v3 layout: after the version
// byte and stream tag, a tagged frame's body is byte-identical to the
// same message's untagged body. A v2-aware reader and a v3-aware reader
// therefore share one message codec.
func TestTaggedBodyMatchesUntagged(t *testing.T) {
	for _, m := range taggableMsgs() {
		plain, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		tagged, err := EncodeTagged(5, m)
		if err != nil {
			t.Fatalf("encode tagged %T: %v", m, err)
		}
		// plain: [len][ver][body...]; tagged: [len][3][0x05][body...].
		if !bytes.Equal(tagged[6:], plain[5:]) {
			t.Fatalf("%T: tagged body %x != untagged body %x", m, tagged[6:], plain[5:])
		}
		if tagged[4] != Version3 || tagged[5] != 5 {
			t.Fatalf("%T: tagged prefix %x, want version 3 stream 5", m, tagged[4:6])
		}
	}
}

func TestTaggedRejectsUntaggable(t *testing.T) {
	for _, m := range []Msg{
		Begin{Name: "T1"}, Lock{Entity: "e0"}, Unlock{Entity: "e0"},
		Read{Entity: "e0", Local: "a"}, LastLock{}, Commit{},
	} {
		if _, err := EncodeTagged(1, m); err == nil {
			t.Errorf("EncodeTagged accepted %T; the v1 stateful sequence must not be taggable", m)
		}
	}
}

// TestDecodeRejectsV3 pins the compatibility boundary: the v1/v2-only
// entry points must refuse tagged frames so a pre-v3 peer fails loudly
// instead of misparsing the stream tag.
func TestDecodeRejectsV3(t *testing.T) {
	frame, err := EncodeTagged(5, Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame[4:]); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Decode on a v3 payload: got %v, want ErrProtocol", err)
	}
	if _, _, err := ReadMsg(bytes.NewReader(frame)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("ReadMsg on a v3 frame: got %v, want ErrProtocol", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"truncated stream tag", []byte{Version3, 0xFF}},
		{"missing type", []byte{Version3, 0x01}},
		{"stream overflow", append([]byte{Version3, 0x80, 0x80, 0x80, 0x80, 0x10}, byte(TStats))},
		{"untaggable type", []byte{Version3, 0x01, byte(TLock), 0, 1, 'e'}},
		{"trailing garbage", append(mustTagged(t, 1, Stats{}), 0xAA)},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.payload); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: got %v, want ErrProtocol", tc.name, err)
		}
	}
}

// mustTagged returns the payload (no length prefix) of a tagged frame.
func mustTagged(t *testing.T, stream uint32, m Msg) []byte {
	t.Helper()
	frame, err := EncodeTagged(stream, m)
	if err != nil {
		t.Fatal(err)
	}
	return frame[4:]
}

// TestReadFrameMixedVersions drives ReadFrame over a stream
// interleaving all three protocol versions — the exact byte sequence a
// server sees when v1, v2, and v3 clients share its accept loop (here
// concatenated as one stream for the codec's sake).
func TestReadFrameMixedVersions(t *testing.T) {
	var stream []byte
	var err error
	stream, err = AppendMsg(stream, Lock{Entity: "e0", Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendMsg(stream, BeginProgram{Name: "P"})
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendTagged(stream, 7, Stats{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendTagged(stream, 3, Committed{Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream)
	want := []Frame{
		{Msg: Lock{Entity: "e0", Exclusive: true}},
		{Msg: BeginProgram{Name: "P"}},
		{Stream: 7, Tagged: true, Msg: Stats{}},
		{Stream: 3, Tagged: true, Msg: Committed{Txn: 1}},
	}
	read := 0
	for i, w := range want {
		f, n, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		read += n
		if !reflect.DeepEqual(f, w) {
			t.Fatalf("frame %d: got %#v, want %#v", i, f, w)
		}
	}
	if read != len(stream) {
		t.Fatalf("consumed %d bytes of %d", read, len(stream))
	}
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

// TestAppendTaggedBatches mirrors TestAppendMsgBatches for the v3
// framing: many tagged frames coalesced into one buffer decode back
// frame by frame.
func TestAppendTaggedBatches(t *testing.T) {
	var buf []byte
	var err error
	for stream := uint32(1); stream <= 40; stream++ {
		buf, err = AppendTagged(buf, stream, Committed{Txn: int64(stream)})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	for stream := uint32(1); stream <= 40; stream++ {
		f, _, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("stream %d: %v", stream, err)
		}
		if f.Stream != stream || !f.Tagged {
			t.Fatalf("got stream %d (tagged=%v), want %d", f.Stream, f.Tagged, stream)
		}
		if c, ok := f.Msg.(Committed); !ok || c.Txn != int64(stream) {
			t.Fatalf("stream %d: got %#v", stream, f.Msg)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}
