// Package wire defines the binary protocol spoken between the network
// transaction service (internal/server) and its clients
// (internal/client).
//
// Framing is length-prefixed: every frame is a 4-byte big-endian
// payload length followed by the payload. The payload starts with a
// protocol version byte and a message-type byte; the rest is the
// message body encoded with varints and length-prefixed strings.
//
// A transaction is shipped as a message sequence mirroring the paper's
// atomic operations: Begin (name + local declarations), then one
// message per operation (Lock/Unlock/Read/Write/Compute/LastLock), then
// Commit, which asks the server to register and execute the program to
// completion. The server replies with zero or more RolledBack
// notifications (one per §2 rollback the engine applied to the
// transaction while it ran) followed by exactly one Committed or Error
// frame. Stats may be sent between transactions and is answered with a
// StatsReply counter snapshot.
//
// Protocol v2 adds BeginProgram: the entire program (Begin + operations
// + Commit) in one frame, so a transaction costs one frame read and one
// decode instead of one per operation. Versioning is per-frame — the
// version byte of each frame declares what it carries — so v1 and v2
// clients coexist on one server with no handshake, and server replies
// are v1 either way.
//
// Protocol v3 adds stream multiplexing: a v3 frame carries a
// client-chosen stream ID between the version byte and the message, so
// one connection interleaves many concurrent transactions and the
// server routes each reply (and rollback notification) back to the
// stream that submitted the program. Only whole-program submissions and
// their replies may be tagged (BeginProgram, Stats client->server;
// Committed, RolledBack, Error, StatsReply server->client) — the
// stateful v1 per-operation sequence cannot interleave and stays
// untagged. As with v2, negotiation is per-frame: v1, v2 and v3 traffic
// coexist on one connection, and untagged frames keep their exact v1/v2
// byte encoding.
//
// Everything decoded from the network is bounds-checked: frame size,
// string length, op and local counts, and expression size/depth all
// have hard limits, so a malicious or corrupted peer cannot force large
// allocations or deep recursion (see the fuzz tests).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Version is the base protocol version. Every message defined by
// protocol v1 is framed with this version byte, and a v1 frame carrying
// any other version byte is rejected.
const Version byte = 1

// Version2 extends v1 with the BeginProgram frame, which ships a whole
// transaction program in one frame instead of one message per
// operation. Negotiation is per-frame: the version byte of each frame
// declares what it carries, so a v2 client needs no handshake and v1
// traffic (including every server reply) is unchanged. Only
// BeginProgram frames carry this version byte.
const Version2 byte = 2

// Version3 tags a frame with a stream ID so one connection carries many
// concurrent transactions. A v3 payload is the version byte, the stream
// ID as a uvarint, then the tagged message encoded exactly as its v1/v2
// body (type byte + fields). Only the multiplexable messages may be
// tagged — see TaggableType.
const Version3 byte = 3

// Limits enforced during decoding.
const (
	// MaxFrame is the largest accepted payload, in bytes.
	MaxFrame = 1 << 20
	// MaxStream bounds v3 stream IDs (fits uint32 with room to spare;
	// a malicious peer cannot force sparse-map blowups past it).
	MaxStream = 1<<32 - 1
	// MaxString bounds every decoded string (names, error messages).
	MaxString = 1 << 10
	// MaxLocals bounds local declarations per Begin/Committed message.
	MaxLocals = 1 << 10
	// MaxOps bounds operations per transaction program.
	MaxOps = 1 << 13
	// MaxExprNodes bounds nodes per expression.
	MaxExprNodes = 1 << 9
	// MaxExprDepth bounds expression nesting.
	MaxExprDepth = 64
	// MaxCounters bounds counters per StatsReply.
	MaxCounters = 1 << 10
)

// Type identifies a message.
type Type byte

// Message types. 1-15 are client->server, 16+ are server->client.
const (
	TBegin    Type = 1
	TLock     Type = 2
	TUnlock   Type = 3
	TRead     Type = 4
	TWrite    Type = 5
	TCompute  Type = 6
	TLastLock Type = 7
	TCommit   Type = 8
	TStats    Type = 9
	// TBeginProgram is the v2 whole-program frame (see BeginProgram).
	TBeginProgram Type = 10
	TCommitted    Type = 16
	TRolledBack   Type = 17
	TError        Type = 18
	TStatsReply   Type = 19
)

func (t Type) String() string {
	switch t {
	case TBegin:
		return "begin"
	case TLock:
		return "lock"
	case TUnlock:
		return "unlock"
	case TRead:
		return "read"
	case TWrite:
		return "write"
	case TCompute:
		return "compute"
	case TLastLock:
		return "last-lock"
	case TCommit:
		return "commit"
	case TStats:
		return "stats"
	case TBeginProgram:
		return "begin-program"
	case TCommitted:
		return "committed"
	case TRolledBack:
		return "rolled-back"
	case TError:
		return "error"
	case TStatsReply:
		return "stats-reply"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ErrCode classifies an Error frame.
type ErrCode byte

// Error codes. Retryable reports which ones a client may retry.
const (
	// CodeBadRequest: malformed frame, invalid program, or a message
	// arriving out of protocol order. Not retryable.
	CodeBadRequest ErrCode = 1
	// CodeRolledBack: the server rolled the transaction back to its
	// initial state and discarded it (request deadline expired, or the
	// engine could not run it to commit). Retryable: re-running the
	// program is exactly the §2 re-execution, performed by the client.
	CodeRolledBack ErrCode = 2
	// CodeShutdown: the server is draining; the transaction was rolled
	// back or refused. Retryable (possibly against a restarted server).
	CodeShutdown ErrCode = 3
	// CodeBusy: the session limit and accept backlog are full. Retryable.
	CodeBusy ErrCode = 4
	// CodeInternal: unexpected engine failure. Not retryable.
	CodeInternal ErrCode = 5
)

func (c ErrCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeRolledBack:
		return "rolled-back"
	case CodeShutdown:
		return "shutdown"
	case CodeBusy:
		return "busy"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("ErrCode(%d)", int(c))
	}
}

// Retryable reports whether a client may usefully retry after this code.
func (c ErrCode) Retryable() bool {
	return c == CodeRolledBack || c == CodeShutdown || c == CodeBusy
}

// Msg is one protocol message.
type Msg interface {
	Type() Type
}

// LocalDecl declares one local variable and its value.
type LocalDecl struct {
	Name string
	Val  int64
}

// Counter is one named counter in a StatsReply.
type Counter struct {
	Name string
	Val  int64
}

// Begin opens a transaction: program name plus local declarations.
type Begin struct {
	Name   string
	Locals []LocalDecl
}

// Lock requests a shared or exclusive lock on an entity.
type Lock struct {
	Entity    string
	Exclusive bool
}

// Unlock releases an entity (shrinking phase).
type Unlock struct{ Entity string }

// Read reads an entity into a local.
type Read struct{ Entity, Local string }

// Write writes an expression over locals to an entity.
type Write struct {
	Entity string
	Expr   value.Expr
}

// Compute assigns an expression over locals to a local.
type Compute struct {
	Local string
	Expr  value.Expr
}

// LastLock is the §5 declaration that no lock requests follow.
type LastLock struct{}

// BeginProgram is the v2 whole-transaction frame: name, local
// declarations and the complete operation list in one message, so a
// transaction costs one frame read and one decode instead of one per
// operation. It is framed with Version2; everything else on the
// connection (including replies) stays v1. Ops reuse the v1 message
// type bytes as operation tags, each followed by the same body encoding
// as the corresponding per-operation message.
type BeginProgram struct {
	Name   string
	Locals []LocalDecl
	Ops    []txn.Op
}

// Commit ends the program and asks the server to execute it.
type Commit struct{}

// Stats requests a counter snapshot.
type Stats struct{}

// TxnOutcome summarizes one executed transaction.
type TxnOutcome struct {
	OpsExecuted int64
	OpsLost     int64
	Rollbacks   int64
	Restarts    int64
	Waits       int64
}

// Committed reports a successful transaction: its server-side ID, final
// local values, and execution counters.
type Committed struct {
	Txn    int64
	Locals []LocalDecl
	Stats  TxnOutcome
}

// RolledBack notifies the client that the engine rolled its in-flight
// transaction back to lock state ToLockState (0 = total restart). The
// server re-executes automatically; the notification is informational.
type RolledBack struct {
	Txn         int64
	ToLockState int64
	FromState   int64
	ToState     int64
	Lost        int64
}

// Error reports a failed request.
type Error struct {
	Code ErrCode
	Msg  string
}

// StatsReply carries a counter snapshot.
type StatsReply struct{ Counters []Counter }

// Type implementations.

// Type implements Msg.
func (Begin) Type() Type { return TBegin }

// Type implements Msg.
func (Lock) Type() Type { return TLock }

// Type implements Msg.
func (Unlock) Type() Type { return TUnlock }

// Type implements Msg.
func (Read) Type() Type { return TRead }

// Type implements Msg.
func (Write) Type() Type { return TWrite }

// Type implements Msg.
func (Compute) Type() Type { return TCompute }

// Type implements Msg.
func (LastLock) Type() Type { return TLastLock }

// Type implements Msg.
func (Commit) Type() Type { return TCommit }

// Type implements Msg.
func (BeginProgram) Type() Type { return TBeginProgram }

// Type implements Msg.
func (Stats) Type() Type { return TStats }

// Type implements Msg.
func (Committed) Type() Type { return TCommitted }

// Type implements Msg.
func (RolledBack) Type() Type { return TRolledBack }

// Type implements Msg.
func (Error) Type() Type { return TError }

// Type implements Msg.
func (StatsReply) Type() Type { return TStatsReply }

// ErrProtocol wraps every decode failure, so transports can distinguish
// protocol corruption from I/O errors.
var ErrProtocol = errors.New("wire: protocol error")

func protoErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// --- encoding primitives ---

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendExpr(b []byte, e value.Expr) ([]byte, error) {
	switch x := e.(type) {
	case value.Const:
		b = append(b, 0)
		return appendVarint(b, int64(x)), nil
	case value.Local:
		b = append(b, 1)
		return appendString(b, string(x)), nil
	case value.Binary:
		b = append(b, 2, byte(x.Op))
		b, err := appendExpr(b, x.L)
		if err != nil {
			return nil, err
		}
		return appendExpr(b, x.R)
	default:
		return nil, fmt.Errorf("wire: cannot encode expression type %T", e)
	}
}

// decoder consumes a payload body with bounds checks.
type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, protoErr("truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, protoErr("truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.b) == 0 {
		return 0, protoErr("truncated byte")
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > MaxString {
		return "", protoErr("string length %d exceeds %d", n, MaxString)
	}
	if uint64(len(d.b)) < n {
		return "", protoErr("truncated string")
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decoder) expr(depth int, budget *int) (value.Expr, error) {
	if depth > MaxExprDepth {
		return nil, protoErr("expression deeper than %d", MaxExprDepth)
	}
	*budget--
	if *budget < 0 {
		return nil, protoErr("expression larger than %d nodes", MaxExprNodes)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return value.Const(v), nil
	case 1:
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		return value.Local(s), nil
	case 2:
		op, err := d.byte()
		if err != nil {
			return nil, err
		}
		if value.BinOp(op) > value.OpMax {
			return nil, protoErr("unknown operator %d", op)
		}
		l, err := d.expr(depth+1, budget)
		if err != nil {
			return nil, err
		}
		r, err := d.expr(depth+1, budget)
		if err != nil {
			return nil, err
		}
		return value.Binary{Op: value.BinOp(op), L: l, R: r}, nil
	default:
		return nil, protoErr("unknown expression tag %d", tag)
	}
}

func (d *decoder) locals(max int) ([]LocalDecl, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, protoErr("%d locals exceeds %d", n, max)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]LocalDecl, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, LocalDecl{Name: name, Val: v})
	}
	return out, nil
}

// ops decodes a BeginProgram operation list. Each operation gets the
// same expression budget a standalone v1 message would, so shipping a
// program in one frame does not tighten (or loosen) the per-operation
// limits.
func (d *decoder) ops(max int) ([]txn.Op, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, protoErr("%d ops exceeds %d", n, max)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]txn.Op, 0, n)
	for i := uint64(0); i < n; i++ {
		tag, err := d.byte()
		if err != nil {
			return nil, err
		}
		var op txn.Op
		switch Type(tag) {
		case TLock:
			mode, err := d.byte()
			if err != nil {
				return nil, err
			}
			if mode > 1 {
				return nil, protoErr("unknown lock mode %d", mode)
			}
			op.Kind = txn.OpLockS
			if mode == 1 {
				op.Kind = txn.OpLockX
			}
			if op.Entity, err = d.string(); err != nil {
				return nil, err
			}
		case TUnlock:
			op.Kind = txn.OpUnlock
			if op.Entity, err = d.string(); err != nil {
				return nil, err
			}
		case TRead:
			op.Kind = txn.OpRead
			if op.Entity, err = d.string(); err != nil {
				return nil, err
			}
			if op.Local, err = d.string(); err != nil {
				return nil, err
			}
		case TWrite:
			op.Kind = txn.OpWrite
			if op.Entity, err = d.string(); err != nil {
				return nil, err
			}
			budget := MaxExprNodes
			if op.Expr, err = d.expr(0, &budget); err != nil {
				return nil, err
			}
		case TCompute:
			op.Kind = txn.OpCompute
			if op.Local, err = d.string(); err != nil {
				return nil, err
			}
			budget := MaxExprNodes
			if op.Expr, err = d.expr(0, &budget); err != nil {
				return nil, err
			}
		case TLastLock:
			op.Kind = txn.OpDeclareLastLock
		case TCommit:
			op.Kind = txn.OpCommit
		default:
			return nil, protoErr("unknown op tag %d", tag)
		}
		out = append(out, op)
	}
	return out, nil
}

func (d *decoder) done() error {
	if len(d.b) != 0 {
		return protoErr("%d trailing bytes", len(d.b))
	}
	return nil
}

// --- message codec ---

// Encode serializes m into a complete frame (length prefix included).
func Encode(m Msg) ([]byte, error) {
	return AppendMsg(nil, m)
}

// AppendMsg appends m's complete frame (length prefix included) to dst
// and returns the extended slice. It is Encode without the allocation:
// a batching writer encodes many frames into one reused buffer and
// issues a single write.
func AppendMsg(dst []byte, m Msg) ([]byte, error) {
	ver := Version
	if m.Type() == TBeginProgram {
		ver = Version2
	}
	start := len(dst)
	body, err := appendMsgBody(append(dst, 0, 0, 0, 0, ver), m)
	if err != nil {
		return nil, err
	}
	return finishFrame(body, start)
}

// TaggableType reports whether t may travel inside a v3 stream-tagged
// frame: whole-program submissions and counter requests from the
// client, verdicts and notifications from the server. The stateful v1
// per-operation sequence (Begin..Commit) cannot interleave with other
// streams and is excluded.
func TaggableType(t Type) bool {
	switch t {
	case TBeginProgram, TStats, TCommitted, TRolledBack, TError, TStatsReply:
		return true
	}
	return false
}

// Frame is one decoded frame plus its stream routing: Tagged reports a
// v3 frame, in which case Stream carries the client-chosen stream ID.
// Untagged (v1/v2) frames decode with Stream zero.
type Frame struct {
	Stream uint32
	Tagged bool
	Msg    Msg
}

// AppendTagged appends a complete v3 frame tagging m with stream to dst
// and returns the extended slice — the multiplexed counterpart of
// AppendMsg. It fails for message types that may not be tagged.
func AppendTagged(dst []byte, stream uint32, m Msg) ([]byte, error) {
	if !TaggableType(m.Type()) {
		return nil, fmt.Errorf("wire: %s cannot be stream-tagged", m.Type())
	}
	start := len(dst)
	body := appendUvarint(append(dst, 0, 0, 0, 0, Version3), uint64(stream))
	body, err := appendMsgBody(body, m)
	if err != nil {
		return nil, err
	}
	return finishFrame(body, start)
}

// EncodeTagged serializes m into a complete v3 frame tagged with stream.
func EncodeTagged(stream uint32, m Msg) ([]byte, error) {
	return AppendTagged(nil, stream, m)
}

// finishFrame bounds-checks the payload appended since start and patches
// in its 4-byte length prefix.
func finishFrame(body []byte, start int) ([]byte, error) {
	payload := len(body) - start - 4
	if payload > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", payload)
	}
	binary.BigEndian.PutUint32(body[start:start+4], uint32(payload))
	return body, nil
}

// appendMsgBody appends m's type byte and field encoding (everything
// after the version prefix) to dst. Shared by the v1/v2 and v3 framings
// so a tagged message's body is byte-identical to its untagged one.
func appendMsgBody(dst []byte, m Msg) ([]byte, error) {
	body := append(dst, byte(m.Type()))
	var err error
	switch x := m.(type) {
	case Begin:
		body = appendString(body, x.Name)
		body = appendUvarint(body, uint64(len(x.Locals)))
		for _, l := range x.Locals {
			body = appendString(body, l.Name)
			body = appendVarint(body, l.Val)
		}
	case Lock:
		mode := byte(0)
		if x.Exclusive {
			mode = 1
		}
		body = append(body, mode)
		body = appendString(body, x.Entity)
	case Unlock:
		body = appendString(body, x.Entity)
	case Read:
		body = appendString(body, x.Entity)
		body = appendString(body, x.Local)
	case Write:
		body = appendString(body, x.Entity)
		if body, err = appendExpr(body, x.Expr); err != nil {
			return nil, err
		}
	case Compute:
		body = appendString(body, x.Local)
		if body, err = appendExpr(body, x.Expr); err != nil {
			return nil, err
		}
	case LastLock, Commit, Stats:
		// no body
	case BeginProgram:
		body = appendString(body, x.Name)
		body = appendUvarint(body, uint64(len(x.Locals)))
		for _, l := range x.Locals {
			body = appendString(body, l.Name)
			body = appendVarint(body, l.Val)
		}
		body = appendUvarint(body, uint64(len(x.Ops)))
		for _, op := range x.Ops {
			if body, err = appendOp(body, op); err != nil {
				return nil, err
			}
		}
	case Committed:
		body = appendVarint(body, x.Txn)
		body = appendUvarint(body, uint64(len(x.Locals)))
		for _, l := range x.Locals {
			body = appendString(body, l.Name)
			body = appendVarint(body, l.Val)
		}
		body = appendVarint(body, x.Stats.OpsExecuted)
		body = appendVarint(body, x.Stats.OpsLost)
		body = appendVarint(body, x.Stats.Rollbacks)
		body = appendVarint(body, x.Stats.Restarts)
		body = appendVarint(body, x.Stats.Waits)
	case RolledBack:
		body = appendVarint(body, x.Txn)
		body = appendVarint(body, x.ToLockState)
		body = appendVarint(body, x.FromState)
		body = appendVarint(body, x.ToState)
		body = appendVarint(body, x.Lost)
	case Error:
		body = append(body, byte(x.Code))
		body = appendString(body, x.Msg)
	case StatsReply:
		body = appendUvarint(body, uint64(len(x.Counters)))
		for _, c := range x.Counters {
			body = appendString(body, c.Name)
			body = appendVarint(body, c.Val)
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode message type %T", m)
	}
	return body, nil
}

// appendOp encodes one program operation for a BeginProgram body: the
// v1 message type byte as tag, then the same field encoding as the
// corresponding per-operation message.
func appendOp(b []byte, op txn.Op) ([]byte, error) {
	switch op.Kind {
	case txn.OpLockS:
		return appendString(append(b, byte(TLock), 0), op.Entity), nil
	case txn.OpLockX:
		return appendString(append(b, byte(TLock), 1), op.Entity), nil
	case txn.OpUnlock:
		return appendString(append(b, byte(TUnlock)), op.Entity), nil
	case txn.OpRead:
		return appendString(appendString(append(b, byte(TRead)), op.Entity), op.Local), nil
	case txn.OpWrite:
		return appendExpr(appendString(append(b, byte(TWrite)), op.Entity), op.Expr)
	case txn.OpCompute:
		return appendExpr(appendString(append(b, byte(TCompute)), op.Local), op.Expr)
	case txn.OpDeclareLastLock:
		return append(b, byte(TLastLock)), nil
	case txn.OpCommit:
		return append(b, byte(TCommit)), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode op kind %v", op.Kind)
	}
}

// WriteMsg frames and writes m, returning the bytes written.
func WriteMsg(w io.Writer, m Msg) (int, error) {
	frame, err := Encode(m)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// Decode parses one payload (the frame with its length prefix already
// stripped). It accepts only v1 and v2 frames; a transport that must
// also accept stream-tagged v3 frames uses DecodeFrame.
func Decode(payload []byte) (Msg, error) {
	if len(payload) < 2 {
		return nil, protoErr("payload of %d bytes", len(payload))
	}
	switch payload[0] {
	case Version:
		if Type(payload[1]) == TBeginProgram {
			return nil, protoErr("%s requires a version-%d frame", TBeginProgram, Version2)
		}
	case Version2:
		if Type(payload[1]) != TBeginProgram {
			return nil, protoErr("version-%d frame carries %s, only %s allowed", Version2, Type(payload[1]), TBeginProgram)
		}
	default:
		return nil, protoErr("version %d, want %d or %d", payload[0], Version, Version2)
	}
	d := &decoder{b: payload[2:]}
	m, err := decodeMsg(Type(payload[1]), d)
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeFrame parses one payload of any protocol version: v1/v2 frames
// decode exactly as Decode does (Tagged false, Stream zero), v3 frames
// additionally yield their stream tag.
func DecodeFrame(payload []byte) (Frame, error) {
	if len(payload) < 1 {
		return Frame{}, protoErr("payload of %d bytes", len(payload))
	}
	switch payload[0] {
	case Version, Version2:
		m, err := Decode(payload)
		if err != nil {
			return Frame{}, err
		}
		return Frame{Msg: m}, nil
	case Version3:
	default:
		return Frame{}, protoErr("version %d, want %d, %d or %d",
			payload[0], Version, Version2, Version3)
	}
	d := &decoder{b: payload[1:]}
	stream, err := d.uvarint()
	if err != nil {
		return Frame{}, err
	}
	if stream > MaxStream {
		return Frame{}, protoErr("stream %d exceeds %d", stream, uint64(MaxStream))
	}
	tag, err := d.byte()
	if err != nil {
		return Frame{}, err
	}
	if !TaggableType(Type(tag)) {
		return Frame{}, protoErr("%s cannot be stream-tagged", Type(tag))
	}
	m, err := decodeMsg(Type(tag), d)
	if err != nil {
		return Frame{}, err
	}
	if err := d.done(); err != nil {
		return Frame{}, err
	}
	return Frame{Stream: uint32(stream), Tagged: true, Msg: m}, nil
}

// decodeMsg decodes the fields of one message of type t from d (the
// version prefix and type byte already consumed). Shared by the v1/v2
// and v3 framings.
func decodeMsg(t Type, d *decoder) (Msg, error) {
	var m Msg
	var err error
	switch t {
	case TBegin:
		var x Begin
		if x.Name, err = d.string(); err != nil {
			return nil, err
		}
		if x.Locals, err = d.locals(MaxLocals); err != nil {
			return nil, err
		}
		m = x
	case TLock:
		var x Lock
		mode, err := d.byte()
		if err != nil {
			return nil, err
		}
		if mode > 1 {
			return nil, protoErr("unknown lock mode %d", mode)
		}
		x.Exclusive = mode == 1
		if x.Entity, err = d.string(); err != nil {
			return nil, err
		}
		m = x
	case TUnlock:
		var x Unlock
		if x.Entity, err = d.string(); err != nil {
			return nil, err
		}
		m = x
	case TRead:
		var x Read
		if x.Entity, err = d.string(); err != nil {
			return nil, err
		}
		if x.Local, err = d.string(); err != nil {
			return nil, err
		}
		m = x
	case TWrite:
		var x Write
		if x.Entity, err = d.string(); err != nil {
			return nil, err
		}
		budget := MaxExprNodes
		if x.Expr, err = d.expr(0, &budget); err != nil {
			return nil, err
		}
		m = x
	case TCompute:
		var x Compute
		if x.Local, err = d.string(); err != nil {
			return nil, err
		}
		budget := MaxExprNodes
		if x.Expr, err = d.expr(0, &budget); err != nil {
			return nil, err
		}
		m = x
	case TLastLock:
		m = LastLock{}
	case TCommit:
		m = Commit{}
	case TStats:
		m = Stats{}
	case TBeginProgram:
		var x BeginProgram
		if x.Name, err = d.string(); err != nil {
			return nil, err
		}
		if x.Locals, err = d.locals(MaxLocals); err != nil {
			return nil, err
		}
		if x.Ops, err = d.ops(MaxOps); err != nil {
			return nil, err
		}
		m = x
	case TCommitted:
		var x Committed
		if x.Txn, err = d.varint(); err != nil {
			return nil, err
		}
		if x.Locals, err = d.locals(MaxLocals); err != nil {
			return nil, err
		}
		for _, p := range []*int64{
			&x.Stats.OpsExecuted, &x.Stats.OpsLost, &x.Stats.Rollbacks,
			&x.Stats.Restarts, &x.Stats.Waits,
		} {
			if *p, err = d.varint(); err != nil {
				return nil, err
			}
		}
		m = x
	case TRolledBack:
		var x RolledBack
		for _, p := range []*int64{&x.Txn, &x.ToLockState, &x.FromState, &x.ToState, &x.Lost} {
			if *p, err = d.varint(); err != nil {
				return nil, err
			}
		}
		m = x
	case TError:
		var x Error
		code, err := d.byte()
		if err != nil {
			return nil, err
		}
		x.Code = ErrCode(code)
		if x.Msg, err = d.string(); err != nil {
			return nil, err
		}
		m = x
	case TStatsReply:
		var x StatsReply
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > MaxCounters {
			return nil, protoErr("%d counters exceeds %d", n, MaxCounters)
		}
		if n > 0 {
			x.Counters = make([]Counter, 0, n)
		}
		for i := uint64(0); i < n; i++ {
			var c Counter
			if c.Name, err = d.string(); err != nil {
				return nil, err
			}
			if c.Val, err = d.varint(); err != nil {
				return nil, err
			}
			x.Counters = append(x.Counters, c)
		}
		m = x
	default:
		return nil, protoErr("unknown message type %d", byte(t))
	}
	return m, nil
}

// ReadMsg reads one frame from r and decodes it, returning the message
// and the total bytes consumed. I/O failures are returned as-is;
// malformed content is reported wrapped in ErrProtocol.
func ReadMsg(r io.Reader) (Msg, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, 4, protoErr("frame of %d bytes exceeds %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	m, err := Decode(payload)
	return m, 4 + int(n), err
}

// ReadFrame reads one frame of any protocol version from r and decodes
// it — the demultiplexing transport's counterpart of ReadMsg. I/O
// failures are returned as-is; malformed content is reported wrapped in
// ErrProtocol.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, 4, protoErr("frame of %d bytes exceeds %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, 4, err
	}
	f, err := DecodeFrame(payload)
	return f, 4 + int(n), err
}

// --- program <-> message translation ---

// ProgramMsgs translates a transaction program into its protocol
// message sequence: Begin, one message per operation, Commit. Locals
// are emitted in sorted order so equal programs encode identically.
func ProgramMsgs(p *txn.Program) ([]Msg, error) {
	locals := make([]LocalDecl, 0, len(p.Locals))
	for name, v := range p.Locals {
		locals = append(locals, LocalDecl{Name: name, Val: v})
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].Name < locals[j].Name })
	out := []Msg{Begin{Name: p.Name, Locals: locals}}
	for _, op := range p.Ops {
		switch op.Kind {
		case txn.OpLockS:
			out = append(out, Lock{Entity: op.Entity})
		case txn.OpLockX:
			out = append(out, Lock{Entity: op.Entity, Exclusive: true})
		case txn.OpUnlock:
			out = append(out, Unlock{Entity: op.Entity})
		case txn.OpRead:
			out = append(out, Read{Entity: op.Entity, Local: op.Local})
		case txn.OpWrite:
			out = append(out, Write{Entity: op.Entity, Expr: op.Expr})
		case txn.OpCompute:
			out = append(out, Compute{Local: op.Local, Expr: op.Expr})
		case txn.OpDeclareLastLock:
			out = append(out, LastLock{})
		case txn.OpCommit:
			out = append(out, Commit{})
		default:
			return nil, fmt.Errorf("wire: cannot encode op kind %v", op.Kind)
		}
	}
	return out, nil
}

// ProgramFrame translates a transaction program into the single v2
// BeginProgram frame — the batched alternative to ProgramMsgs. Locals
// are emitted in sorted order so equal programs encode identically.
func ProgramFrame(p *txn.Program) (BeginProgram, error) {
	if len(p.Ops) > MaxOps {
		return BeginProgram{}, fmt.Errorf("wire: program of %d ops exceeds %d", len(p.Ops), MaxOps)
	}
	locals := make([]LocalDecl, 0, len(p.Locals))
	for name, v := range p.Locals {
		locals = append(locals, LocalDecl{Name: name, Val: v})
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].Name < locals[j].Name })
	for _, op := range p.Ops {
		switch op.Kind {
		case txn.OpLockS, txn.OpLockX, txn.OpUnlock, txn.OpRead, txn.OpWrite,
			txn.OpCompute, txn.OpDeclareLastLock, txn.OpCommit:
		default:
			return BeginProgram{}, fmt.Errorf("wire: cannot encode op kind %v", op.Kind)
		}
	}
	return BeginProgram{Name: p.Name, Locals: locals, Ops: p.Ops}, nil
}

// Program validates and returns the shipped program — the whole-frame
// equivalent of feeding an Assembler and calling its Program. The same
// §2 static rules apply; a missing trailing Commit is appended exactly
// as txn.Builder.Build would.
func (bp BeginProgram) Program() (*txn.Program, error) {
	if len(bp.Locals) > MaxLocals {
		return nil, protoErr("%d locals exceeds %d", len(bp.Locals), MaxLocals)
	}
	if len(bp.Ops) > MaxOps {
		return nil, protoErr("program exceeds %d operations", MaxOps)
	}
	p := &txn.Program{Name: bp.Name, Locals: make(map[string]int64, len(bp.Locals))}
	for _, l := range bp.Locals {
		if _, dup := p.Locals[l.Name]; dup {
			return nil, fmt.Errorf("txn %s: local %q declared twice", bp.Name, l.Name)
		}
		p.Locals[l.Name] = l.Val
	}
	p.Ops = make([]txn.Op, len(bp.Ops), len(bp.Ops)+1)
	copy(p.Ops, bp.Ops)
	if n := len(p.Ops); n == 0 || p.Ops[n-1].Kind != txn.OpCommit {
		p.Ops = append(p.Ops, txn.Op{Kind: txn.OpCommit})
	}
	if err := txn.Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Assembler rebuilds a transaction program from its protocol messages.
// Feed returns done=true when Commit arrives; Program then returns the
// validated program.
type Assembler struct {
	b    *txn.Builder
	ops  int
	done bool
	err  error
}

// NewAssembler starts assembling from a Begin message.
func NewAssembler(b Begin) *Assembler {
	a := &Assembler{b: txn.NewProgram(b.Name)}
	if len(b.Locals) > MaxLocals {
		a.err = protoErr("%d locals exceeds %d", len(b.Locals), MaxLocals)
		return a
	}
	for _, l := range b.Locals {
		a.b.Local(l.Name, l.Val)
	}
	return a
}

// Feed consumes one operation message. It reports done=true on Commit.
func (a *Assembler) Feed(m Msg) (done bool, err error) {
	if a.err != nil {
		return false, a.err
	}
	if a.done {
		return true, protoErr("operation after commit")
	}
	a.ops++
	if a.ops > MaxOps {
		a.err = protoErr("program exceeds %d operations", MaxOps)
		return false, a.err
	}
	switch x := m.(type) {
	case Lock:
		if x.Exclusive {
			a.b.LockX(x.Entity)
		} else {
			a.b.LockS(x.Entity)
		}
	case Unlock:
		a.b.Unlock(x.Entity)
	case Read:
		a.b.Read(x.Entity, x.Local)
	case Write:
		a.b.Write(x.Entity, x.Expr)
	case Compute:
		a.b.Compute(x.Local, x.Expr)
	case LastLock:
		a.b.DeclareLastLock()
	case Commit:
		a.done = true
		return true, nil
	default:
		a.err = protoErr("unexpected %s inside transaction", m.Type())
		return false, a.err
	}
	return false, nil
}

// Program validates and returns the assembled program. It fails before
// Commit has been fed or when the program violates the §2 static rules.
func (a *Assembler) Program() (*txn.Program, error) {
	if a.err != nil {
		return nil, a.err
	}
	if !a.done {
		return nil, protoErr("program not committed")
	}
	return a.b.Build()
}
