package wire

import (
	"bytes"
	"reflect"
	"testing"

	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// FuzzDecode throws arbitrary payloads at the decoder: it must never
// panic or over-allocate, and anything it accepts must re-encode and
// re-decode to the same message (the codec is canonical for everything
// it emits).
func FuzzDecode(f *testing.F) {
	seed := []Msg{
		Begin{Name: "T1", Locals: []LocalDecl{{"a", 1}}},
		Lock{Entity: "e0", Exclusive: true},
		Unlock{Entity: "e0"},
		Read{Entity: "e1", Local: "a"},
		Commit{},
		Committed{Txn: 3, Stats: TxnOutcome{OpsExecuted: 5}},
		RolledBack{Txn: 1, Lost: 4},
		Error{Code: CodeBusy, Msg: "full"},
		StatsReply{Counters: []Counter{{"grants", 2}}},
		BeginProgram{Name: "P"},
		BeginProgram{
			Name:   "xfer",
			Locals: []LocalDecl{{"t", 0}},
			Ops: []txn.Op{
				{Kind: txn.OpLockX, Entity: "e0"},
				{Kind: txn.OpRead, Entity: "e0", Local: "t"},
				{Kind: txn.OpCompute, Local: "t", Expr: value.Add(value.L("t"), value.C(1))},
				{Kind: txn.OpDeclareLastLock},
				{Kind: txn.OpWrite, Entity: "e0", Expr: value.L("t")},
				{Kind: txn.OpUnlock, Entity: "e0"},
				{Kind: txn.OpCommit},
			},
		},
	}
	for _, m := range seed {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{Version, byte(TWrite), 1, 'e', 2, 0, 1, 0, 1})
	// Hand-built v2 edges: an op list claiming more ops than present, a
	// v1 type under a v2 version byte, and a truncated op tag.
	f.Add([]byte{Version2, byte(TBeginProgram), 1, 'P', 0, 5, byte(TCommit)})
	f.Add([]byte{Version2, byte(TLock), 0, 'e'})
	f.Add([]byte{Version2, byte(TBeginProgram), 1, 'P', 0, 1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload)
		if err != nil {
			return
		}
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %#v: %v", m, err)
		}
		m2, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("re-decode failed: %#v: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-decode mismatch: %#v != %#v", m, m2)
		}
	})
}

// FuzzReadMsg exercises the framing layer with arbitrary streams,
// including short reads and garbage lengths.
func FuzzReadMsg(f *testing.F) {
	frame, err := Encode(Lock{Entity: "e0"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(append(frame, frame...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	v2, err := Encode(BeginProgram{Name: "P", Ops: []txn.Op{
		{Kind: txn.OpLockS, Entity: "e0"}, {Kind: txn.OpCommit}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(append(append([]byte{}, frame...), v2...)) // mixed v1+v2 stream
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			if _, _, err := ReadMsg(r); err != nil {
				return
			}
		}
	})
}
