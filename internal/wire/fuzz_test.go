package wire

import (
	"bytes"
	"reflect"
	"testing"

	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// FuzzDecode throws arbitrary payloads at the decoder: it must never
// panic or over-allocate, and anything it accepts must re-encode and
// re-decode to the same message (the codec is canonical for everything
// it emits).
func FuzzDecode(f *testing.F) {
	seed := []Msg{
		Begin{Name: "T1", Locals: []LocalDecl{{"a", 1}}},
		Lock{Entity: "e0", Exclusive: true},
		Unlock{Entity: "e0"},
		Read{Entity: "e1", Local: "a"},
		Commit{},
		Committed{Txn: 3, Stats: TxnOutcome{OpsExecuted: 5}},
		RolledBack{Txn: 1, Lost: 4},
		Error{Code: CodeBusy, Msg: "full"},
		StatsReply{Counters: []Counter{{"grants", 2}}},
		BeginProgram{Name: "P"},
		BeginProgram{
			Name:   "xfer",
			Locals: []LocalDecl{{"t", 0}},
			Ops: []txn.Op{
				{Kind: txn.OpLockX, Entity: "e0"},
				{Kind: txn.OpRead, Entity: "e0", Local: "t"},
				{Kind: txn.OpCompute, Local: "t", Expr: value.Add(value.L("t"), value.C(1))},
				{Kind: txn.OpDeclareLastLock},
				{Kind: txn.OpWrite, Entity: "e0", Expr: value.L("t")},
				{Kind: txn.OpUnlock, Entity: "e0"},
				{Kind: txn.OpCommit},
			},
		},
	}
	for _, m := range seed {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{Version, byte(TWrite), 1, 'e', 2, 0, 1, 0, 1})
	// Hand-built v2 edges: an op list claiming more ops than present, a
	// v1 type under a v2 version byte, and a truncated op tag.
	f.Add([]byte{Version2, byte(TBeginProgram), 1, 'P', 0, 5, byte(TCommit)})
	f.Add([]byte{Version2, byte(TLock), 0, 'e'})
	f.Add([]byte{Version2, byte(TBeginProgram), 1, 'P', 0, 1})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload)
		if err != nil {
			return
		}
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %#v: %v", m, err)
		}
		m2, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("re-decode failed: %#v: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-decode mismatch: %#v != %#v", m, m2)
		}
	})
}

// FuzzDecodeFrame throws arbitrary payloads at the version-dispatching
// frame decoder. Untagged frames must decode exactly as Decode does; a
// v3 payload must be refused by Decode; and anything DecodeFrame
// accepts must re-encode (EncodeTagged or Encode, by Tagged) and
// re-decode to the same frame — the stream tag round-trips alongside
// the message.
func FuzzDecodeFrame(f *testing.F) {
	tagged := []struct {
		stream uint32
		m      Msg
	}{
		{5, BeginProgram{Name: "P"}},
		{1, BeginProgram{
			Name:   "xfer",
			Locals: []LocalDecl{{"t", 0}},
			Ops: []txn.Op{
				{Kind: txn.OpLockX, Entity: "e0"},
				{Kind: txn.OpRead, Entity: "e0", Local: "t"},
				{Kind: txn.OpCompute, Local: "t", Expr: value.Add(value.L("t"), value.C(1))},
				{Kind: txn.OpWrite, Entity: "e0", Expr: value.L("t")},
				{Kind: txn.OpCommit},
			},
		}},
		{9, Stats{}},
		{7, Committed{Txn: 3, Stats: TxnOutcome{OpsExecuted: 5}}},
		{2, RolledBack{Txn: 1, Lost: 4}},
		{3, Error{Code: CodeBusy, Msg: "full"}},
		{MaxStream, StatsReply{Counters: []Counter{{"grants", 2}}}},
	}
	for _, s := range tagged {
		frame, err := EncodeTagged(s.stream, s.m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	// Untagged seeds keep the fuzzer exploring the v1/v2 dispatch arm.
	for _, m := range []Msg{Lock{Entity: "e0"}, Committed{Txn: 3}, BeginProgram{Name: "P"}} {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	// Hand-built v3 edges: a truncated stream varint, a stream tag past
	// MaxStream, and an untaggable v1 type under a v3 version byte.
	f.Add([]byte{Version3, 0xFF})
	f.Add([]byte{Version3, 0x80, 0x80, 0x80, 0x80, 0x10, byte(TStats)})
	f.Add([]byte{Version3, 0x01, byte(TLock), 0, 1, 'e'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrame(payload)
		if err != nil {
			return
		}
		if fr.Tagged {
			if _, err := Decode(payload); err == nil {
				t.Fatalf("Decode accepted a v3 payload: %#v", fr)
			}
		} else {
			m, err := Decode(payload)
			if err != nil {
				t.Fatalf("DecodeFrame accepted what Decode refuses: %#v: %v", fr, err)
			}
			if !reflect.DeepEqual(m, fr.Msg) {
				t.Fatalf("DecodeFrame and Decode disagree: %#v != %#v", fr.Msg, m)
			}
		}
		var frame []byte
		if fr.Tagged {
			frame, err = EncodeTagged(fr.Stream, fr.Msg)
		} else {
			frame, err = Encode(fr.Msg)
		}
		if err != nil {
			t.Fatalf("decoded frame failed to encode: %#v: %v", fr, err)
		}
		fr2, err := DecodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("re-decode failed: %#v: %v", fr, err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-decode mismatch: %#v != %#v", fr, fr2)
		}
	})
}

// FuzzReadMsg exercises the framing layer with arbitrary streams,
// including short reads and garbage lengths.
func FuzzReadMsg(f *testing.F) {
	frame, err := Encode(Lock{Entity: "e0"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(append(frame, frame...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	v2, err := Encode(BeginProgram{Name: "P", Ops: []txn.Op{
		{Kind: txn.OpLockS, Entity: "e0"}, {Kind: txn.OpCommit}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(append(append([]byte{}, frame...), v2...)) // mixed v1+v2 stream
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			if _, _, err := ReadMsg(r); err != nil {
				return
			}
		}
	})
}
