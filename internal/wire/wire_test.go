package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteMsg(&buf, m)
	if err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
	if n != buf.Len() {
		t.Fatalf("write %T reported %d bytes, buffered %d", m, n, buf.Len())
	}
	got, rn, err := ReadMsg(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", m, err)
	}
	if rn != n {
		t.Fatalf("read %T consumed %d bytes, wrote %d", m, rn, n)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Msg{
		Begin{Name: "T1", Locals: []LocalDecl{{"a", 1}, {"b", -7}}},
		Begin{Name: "empty"},
		Lock{Entity: "e0"},
		Lock{Entity: "e1", Exclusive: true},
		Unlock{Entity: "e0"},
		Read{Entity: "e1", Local: "a"},
		Write{Entity: "e1", Expr: value.Add(value.L("a"), value.C(3))},
		Compute{Local: "b", Expr: value.Mod(value.Mul(value.L("a"), value.C(-2)), value.C(7))},
		LastLock{},
		Commit{},
		Stats{},
		Committed{Txn: 42, Locals: []LocalDecl{{"a", 9}}, Stats: TxnOutcome{
			OpsExecuted: 10, OpsLost: 3, Rollbacks: 2, Restarts: 1, Waits: 4}},
		RolledBack{Txn: 7, ToLockState: 2, FromState: 19, ToState: 13, Lost: 6},
		Error{Code: CodeRolledBack, Msg: "deadline"},
		StatsReply{Counters: []Counter{{"grants", 12}, {"waits", -1}}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %#v, want %#v", m, got, m)
		}
	}
}

func TestProgramRoundTrip(t *testing.T) {
	progs := []*txn.Program{
		sim.TransferProgram("xfer", "e0", "e1", 5, 3),
		txn.NewProgram("mix").
			Local("x", 2).Local("y", 0).
			LockS("e0").Read("e0", "x").
			LockX("e1").Read("e1", "y").
			Compute("y", value.Max(value.L("x"), value.L("y"))).
			DeclareLastLock().
			Write("e1", value.Add(value.L("y"), value.C(1))).
			Unlock("e1").
			MustBuild(),
	}
	for _, w := range sim.Generate(sim.GenConfig{Txns: 6, Seed: 11, Shape: sim.Mixed, SharedProb: 0.3}).Programs {
		progs = append(progs, w)
	}
	for _, p := range progs {
		msgs, err := ProgramMsgs(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		begin, ok := msgs[0].(Begin)
		if !ok {
			t.Fatalf("%s: first message is %T", p.Name, msgs[0])
		}
		a := NewAssembler(begin)
		for i, m := range msgs[1:] {
			// Exercise the full codec: encode, decode, then feed.
			frame, err := Encode(m)
			if err != nil {
				t.Fatalf("%s msg %d: %v", p.Name, i, err)
			}
			dm, err := Decode(frame[4:])
			if err != nil {
				t.Fatalf("%s msg %d: %v", p.Name, i, err)
			}
			done, err := a.Feed(dm)
			if err != nil {
				t.Fatalf("%s msg %d: %v", p.Name, i, err)
			}
			if done != (i == len(msgs)-2) {
				t.Fatalf("%s msg %d: done=%v", p.Name, i, done)
			}
		}
		got, err := a.Program()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("%s: program round trip mismatch:\n got %v\nwant %v", p.Name, got, p)
		}
	}
}

// TestProgramFrameRoundTrip pins the v2 path end to end: ProgramFrame →
// encode → decode → Program must reproduce every program byte-for-byte,
// and agree exactly with what the v1 Assembler path reconstructs.
func TestProgramFrameRoundTrip(t *testing.T) {
	progs := []*txn.Program{
		sim.TransferProgram("xfer", "e0", "e1", 5, 3),
		txn.NewProgram("mix").
			Local("x", 2).Local("y", 0).
			LockS("e0").Read("e0", "x").
			LockX("e1").Read("e1", "y").
			Compute("y", value.Max(value.L("x"), value.L("y"))).
			DeclareLastLock().
			Write("e1", value.Add(value.L("y"), value.C(1))).
			Unlock("e1").
			MustBuild(),
	}
	progs = append(progs, sim.Generate(sim.GenConfig{Txns: 6, Seed: 11, Shape: sim.Mixed, SharedProb: 0.3}).Programs...)
	for _, p := range progs {
		frame, err := ProgramFrame(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := roundTrip(t, frame)
		bp, ok := got.(BeginProgram)
		if !ok {
			t.Fatalf("%s: round trip returned %T", p.Name, got)
		}
		if !reflect.DeepEqual(bp, frame) {
			t.Errorf("%s: frame round trip mismatch:\n got %#v\nwant %#v", p.Name, bp, frame)
		}
		rebuilt, err := bp.Program()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !reflect.DeepEqual(rebuilt, p) {
			t.Errorf("%s: program mismatch:\n got %v\nwant %v", p.Name, rebuilt, p)
		}
	}
}

// TestVersionNegotiation pins the per-frame version rules: BeginProgram
// only decodes under Version2, every other type only under Version, and
// unknown versions are rejected.
func TestVersionNegotiation(t *testing.T) {
	frame, err := Encode(BeginProgram{Name: "P", Ops: []txn.Op{{Kind: txn.OpCommit}}})
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != Version2 {
		t.Fatalf("BeginProgram frame carries version %d, want %d", frame[4], Version2)
	}
	// Same payload demoted to v1 must be rejected.
	demoted := append([]byte{}, frame[4:]...)
	demoted[0] = Version
	if _, err := Decode(demoted); err == nil {
		t.Error("v1-framed BeginProgram decoded; want rejection")
	}
	// A v1 message promoted to v2 must be rejected.
	lockFrame, err := Encode(Lock{Entity: "e0"})
	if err != nil {
		t.Fatal(err)
	}
	if lockFrame[4] != Version {
		t.Fatalf("Lock frame carries version %d, want %d", lockFrame[4], Version)
	}
	promoted := append([]byte{}, lockFrame[4:]...)
	promoted[0] = Version2
	if _, err := Decode(promoted); err == nil {
		t.Error("v2-framed Lock decoded; want rejection")
	}
	unknown := append([]byte{}, lockFrame[4:]...)
	unknown[0] = 9
	if _, err := Decode(unknown); err == nil {
		t.Error("version-9 frame decoded; want rejection")
	}
}

// TestAppendMsgBatches pins the batching encoder: frames appended to
// one buffer must byte-match their individual encodings and decode as a
// stream.
func TestAppendMsgBatches(t *testing.T) {
	msgs := []Msg{
		Committed{Txn: 1, Locals: []LocalDecl{{"a", 9}}},
		RolledBack{Txn: 1, Lost: 2},
		Error{Code: CodeBusy, Msg: "full"},
	}
	var batch, concat []byte
	for _, m := range msgs {
		var err error
		if batch, err = AppendMsg(batch, m); err != nil {
			t.Fatal(err)
		}
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		concat = append(concat, frame...)
	}
	if !bytes.Equal(batch, concat) {
		t.Fatalf("batched encoding diverges from per-frame encoding")
	}
	r := bytes.NewReader(batch)
	for i, want := range msgs {
		got, _, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %#v, want %#v", i, got, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after batch", r.Len())
	}
}

// TestBeginProgramRejectsInvalid mirrors TestAssemblerRejectsInvalid
// for the v2 path: a protocol-valid frame carrying an invalid program
// must fail at Program(), not decode.
func TestBeginProgramRejectsInvalid(t *testing.T) {
	bad := []BeginProgram{
		// Write without a lock.
		{Name: "bad", Locals: []LocalDecl{{"x", 0}},
			Ops: []txn.Op{{Kind: txn.OpWrite, Entity: "e0", Expr: value.C(1)}, {Kind: txn.OpCommit}}},
		// Duplicate local declaration.
		{Name: "dup", Locals: []LocalDecl{{"x", 0}, {"x", 1}}},
		// Mid-program commit.
		{Name: "mid", Ops: []txn.Op{{Kind: txn.OpCommit}, {Kind: txn.OpLockS, Entity: "e0"}}},
	}
	for _, bp := range bad {
		got := roundTrip(t, bp) // stays protocol-valid on the wire
		if _, err := got.(BeginProgram).Program(); err == nil {
			t.Errorf("%s: invalid program accepted", bp.Name)
		}
	}
}

func TestAssemblerRejectsInvalid(t *testing.T) {
	// Write without a lock: protocol-valid messages, invalid program.
	a := NewAssembler(Begin{Name: "bad", Locals: []LocalDecl{{"x", 0}}})
	for _, m := range []Msg{Write{Entity: "e0", Expr: value.C(1)}, Commit{}} {
		if _, err := a.Feed(m); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
	if _, err := a.Program(); err == nil {
		t.Error("invalid program assembled without error")
	}

	// Unexpected message kind inside a transaction.
	a = NewAssembler(Begin{Name: "bad2"})
	if _, err := a.Feed(Stats{}); !errors.Is(err, ErrProtocol) {
		t.Errorf("feeding Stats: got %v, want ErrProtocol", err)
	}

	// Incomplete program.
	a = NewAssembler(Begin{Name: "bad3"})
	if _, err := a.Program(); !errors.Is(err, ErrProtocol) {
		t.Error("assembling before Commit should fail")
	}
}

func TestReadMsgErrors(t *testing.T) {
	valid, err := Encode(Lock{Entity: "e0", Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated header", func(t *testing.T) {
		_, _, err := ReadMsg(bytes.NewReader(valid[:3]))
		if err == nil {
			t.Error("want error")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, _, err := ReadMsg(bytes.NewReader(valid[:len(valid)-2]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("got %v, want unexpected EOF", err)
		}
	})
	t.Run("oversize frame", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		_, _, err := ReadMsg(bytes.NewReader(hdr[:]))
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("got %v, want ErrProtocol", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		frame := append([]byte(nil), valid...)
		frame[4] = Version + 1
		_, _, err := ReadMsg(bytes.NewReader(frame))
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("got %v, want ErrProtocol", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		frame := append([]byte(nil), valid...)
		frame[5] = 0xEE
		_, _, err := ReadMsg(bytes.NewReader(frame))
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("got %v, want ErrProtocol", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		frame := append([]byte(nil), valid...)
		frame = append(frame, 0x01)
		binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
		_, _, err := ReadMsg(bytes.NewReader(frame))
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("got %v, want ErrProtocol", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		// Claimed string longer than the remaining payload.
		payload := []byte{Version, byte(TUnlock), 0x20, 'a'}
		if _, err := Decode(payload); !errors.Is(err, ErrProtocol) {
			t.Errorf("got %v, want ErrProtocol", err)
		}
	})
}

func TestExprLimits(t *testing.T) {
	deep := value.Expr(value.C(1))
	for i := 0; i < MaxExprDepth+2; i++ {
		deep = value.Add(deep, value.C(1))
	}
	frame, err := Encode(Write{Entity: "e0", Expr: deep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("deep expression: got %v, want ErrProtocol", err)
	}
}

func TestRetryable(t *testing.T) {
	for code, want := range map[ErrCode]bool{
		CodeBadRequest: false, CodeRolledBack: true, CodeShutdown: true,
		CodeBusy: true, CodeInternal: false,
	} {
		if got := code.Retryable(); got != want {
			t.Errorf("%v retryable = %v, want %v", code, got, want)
		}
	}
}
