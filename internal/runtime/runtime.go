// Package runtime drives a core.System with one goroutine per
// transaction — the "transactions are concurrently executing programs"
// view of the paper's model, realized with Go's native concurrency.
// Transactions step themselves; blocked ones park on a wakeup channel
// signalled when the engine grants their lock or rolls them back
// (either way they become runnable again). The park/step/re-execute
// loop itself lives in internal/exec and is shared with the network
// server (internal/server), which runs the same loop once per client
// session.
//
// The deterministic drivers in internal/sim are preferred for
// experiments; this driver exists to exercise the engine under real
// scheduler interleavings (tests run it with -race) and to serve as the
// template for embedding the library in a concurrent application.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
)

// Options configures a concurrent run.
type Options struct {
	Strategy core.Strategy
	Policy   deadlock.Policy
	// Prevention optionally enables §3.3 timestamp rules.
	Prevention core.Prevention
	// RecordHistory enables the serializability recorder.
	RecordHistory bool
	// HybridBudget / HybridAllocator configure the Hybrid strategy.
	HybridBudget    int
	HybridAllocator hybrid.Allocator
	// MaxStepsPerTxn bounds each transaction's total steps (0: 1M).
	MaxStepsPerTxn int
	// Burst is the maximum number of consecutive steps a transaction
	// runs per engine-lock acquisition (core.Engine.StepBurst); 0 or 1
	// is the classic one-step-per-acquisition loop, and
	// exec.BurstAdaptive (-1) adapts the burst to contention (grow to
	// 64 while uncontended, collapse to 1 when the engine has waiters).
	Burst int
	// Shards selects the engine: 0 or 1 runs a single core.System, a
	// larger value partitions the engine into that many shards
	// (internal/shard) so disjoint transactions execute in parallel.
	Shards int
	// Stripes forwards to core.Config.Stripes: > 1 stripes each engine's
	// (or each shard's) lock table so uncontended operations of
	// different transactions proceed under a shared engine lock instead
	// of serializing, with shared-lock grants a single CAS. 0 or 1 keeps
	// the classic single-mutex engine.
	Stripes int
	// LockWait forwards to core.Config.LockWait (engine-lock wait
	// observer, nanoseconds per step-path acquisition).
	LockWait func(ns int64)
	// CommitLog forwards to core.Config.CommitLog: every transaction's
	// acknowledgement (its StepToCommit returning) then waits for its
	// write-set to be durable.
	CommitLog core.CommitLogger
	// OnEvent, when non-nil, additionally receives every engine event
	// (after the driver's own wake notifier) — the hook the
	// observability collector and tracer chain onto.
	OnEvent func(core.Event)
}

// Outcome reports a completed concurrent run.
type Outcome struct {
	System core.Engine
	Stats  core.Stats
	IDs    []txn.ID
}

// Run executes all programs concurrently to commit and returns the
// engine for inspection. It fails if any transaction errors or exceeds
// its step bound.
func Run(store *entity.Store, programs []*txn.Program, opt Options) (*Outcome, error) {
	notif := exec.NewNotifier()
	onEvent := notif.OnEvent
	if opt.OnEvent != nil {
		tap := opt.OnEvent
		onEvent = func(e core.Event) {
			notif.OnEvent(e)
			tap(e)
		}
	}
	cfg := core.Config{
		Store:           store,
		Strategy:        opt.Strategy,
		Policy:          opt.Policy,
		Prevention:      opt.Prevention,
		HybridBudget:    opt.HybridBudget,
		HybridAllocator: opt.HybridAllocator,
		RecordHistory:   opt.RecordHistory,
		CommitLog:       opt.CommitLog,
		OnEvent:         onEvent,
		Stripes:         opt.Stripes,
		LockWait:        opt.LockWait,
	}
	var sys core.Engine
	if opt.Shards > 1 {
		sys = shard.New(opt.Shards, cfg)
	} else {
		sys = core.New(cfg)
	}

	ids := make([]txn.ID, 0, len(programs))
	for _, p := range programs {
		id, err := sys.Register(p)
		if err != nil {
			return nil, err
		}
		notif.Register(id)
		ids = append(ids, id)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id txn.ID) {
			defer wg.Done()
			wake := notif.Register(id)
			if err := exec.StepToCommitBurst(context.Background(), sys, id, wake, opt.MaxStepsPerTxn, opt.Burst); err != nil {
				errCh <- fmt.Errorf("runtime: %w", err)
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if !sys.AllCommitted() {
		return nil, fmt.Errorf("runtime: run finished with uncommitted transactions")
	}
	return &Outcome{System: sys, Stats: sys.Stats(), IDs: ids}, nil
}
