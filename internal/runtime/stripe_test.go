package runtime

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
)

// TestConcurrentStriped is the striping serializability property sweep
// (run with -race): at stripes 1, 2 and 8, classic and adaptive burst,
// a contended mixed workload driven by one goroutine per transaction
// must fully commit, keep the store consistent, pass the engine's
// invariant check (which cross-checks fast-path CAS holder counts
// against per-transaction lock slots), and stay conflict-serializable.
// This is the test that actually exercises Tier A/B concurrency: under
// -race it proves the read-lock fast paths never race the exclusive
// slow path.
func TestConcurrentStriped(t *testing.T) {
	for _, stripes := range []int{1, 2, 8} {
		for _, burst := range []int{1, exec.BurstAdaptive} {
			t.Run(fmt.Sprintf("stripes%d/burst%d", stripes, burst), func(t *testing.T) {
				w := sim.Generate(sim.GenConfig{
					Txns: 24, DBSize: 32, HotSet: 8, HotProb: 0.6,
					LocksPerTxn: 4, SharedProb: 0.3, RewriteProb: 0.5,
					PadOps: 2, Shape: sim.Mixed, Seed: int64(41 + stripes),
				})
				store := w.NewStore()
				out, err := Run(store, w.Programs, Options{
					Strategy: core.MCS, RecordHistory: true,
					Stripes: stripes, Burst: burst,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := store.CheckConsistent(); err != nil {
					t.Fatal(err)
				}
				if out.Stats.Commits != 24 {
					t.Errorf("commits = %d, want 24", out.Stats.Commits)
				}
				if err := out.System.CheckInvariants(); err != nil {
					t.Error(err)
				}
				if _, err := out.System.Recorder().CheckSerializable(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestConcurrentStripedSharded composes striping with sharding under
// the concurrent driver (run with -race): each shard's lock table is
// striped, so the fast paths run inside every shard simultaneously.
func TestConcurrentStripedSharded(t *testing.T) {
	for _, strat := range []core.Strategy{core.MCS, core.SDG} {
		t.Run(strat.String(), func(t *testing.T) {
			w := sim.Generate(sim.GenConfig{
				Txns: 24, DBSize: 32, HotSet: 8, HotProb: 0.6,
				LocksPerTxn: 4, SharedProb: 0.3, RewriteProb: 0.5,
				PadOps: 2, Shape: sim.Mixed, Seed: 53,
			})
			store := w.NewStore()
			out, err := Run(store, w.Programs, Options{
				Strategy: strat, RecordHistory: true,
				Shards: 2, Stripes: 4, Burst: exec.BurstAdaptive,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if out.Stats.Commits != 24 {
				t.Errorf("commits = %d, want 24", out.Stats.Commits)
			}
			if err := out.System.CheckInvariants(); err != nil {
				t.Error(err)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentStripedBank drives striped engines with the banking
// workload whose sum constraint the store checks after every commit —
// shared reads of hot accounts hit the CAS fast path while transfers
// contend for exclusive locks.
func TestConcurrentStripedBank(t *testing.T) {
	const accounts, transfers = 6, 40
	w := sim.BankingWorkload(accounts, transfers, 1000, 19)
	store := w.NewStore()
	out, err := Run(store, w.Programs, Options{
		Strategy: core.MCS, RecordHistory: true, Stripes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Commits != transfers {
		t.Errorf("commits = %d, want %d", out.Stats.Commits, transfers)
	}
	if err := out.System.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if _, err := out.System.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
}
