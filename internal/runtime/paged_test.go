package runtime

import (
	"fmt"
	"path/filepath"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
)

// TestConcurrentPagedBank runs the banking workload (run with -race)
// over a paged store whose pool is far smaller than the working set,
// so the run evicts and faults throughout, while concurrent clients
// drive transfers through the striped fast paths. The sum invariant
// must hold on the final state and the history must serialize — the
// eviction×pinning interplay must be invisible to correctness.
func TestConcurrentPagedBank(t *testing.T) {
	const (
		accounts  = 64
		transfers = 48
		balance   = 100
	)
	for _, stripes := range []int{1, 4} {
		t.Run(fmt.Sprintf("stripes%d", stripes), func(t *testing.T) {
			w := sim.BankingWorkload(accounts, transfers, balance, int64(61+stripes))
			// 64 accounts over 15-slot pages = 5 pages through a
			// 2-frame pool: every transaction's pins contend with
			// eviction pressure from every other.
			store, err := entity.NewUniformPagedStore("acct", accounts, balance, entity.PagedConfig{
				Path:      filepath.Join(t.TempDir(), "heap.dat"),
				PageSize:  128,
				PoolPages: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			names := make([]string, accounts)
			for i := range names {
				names[i] = fmt.Sprintf("acct%d", i)
			}
			store.AddConstraint(entity.SumConstraint("balance-sum", accounts*balance, names...))
			store.AddConstraint(entity.NonNegativeConstraint("no-overdraft", names...))

			out, err := Run(store, w.Programs, Options{
				Strategy: core.MCS, RecordHistory: true,
				Stripes: stripes, Burst: exec.BurstAdaptive,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if out.Stats.Commits != transfers {
				t.Errorf("commits = %d, want %d", out.Stats.Commits, transfers)
			}
			if err := out.System.CheckInvariants(); err != nil {
				t.Error(err)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
			st := store.PoolStats()
			if st.Evictions == 0 {
				t.Errorf("5-page working set through a 2-frame pool never evicted: %+v", st)
			}
			if st.PinnedPages != 0 {
				t.Errorf("%d pages still pinned after all transactions finished", st.PinnedPages)
			}
		})
	}
}
