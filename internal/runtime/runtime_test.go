package runtime

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
)

func bankStore(accounts int, balance int64) *entity.Store {
	s := entity.NewUniformStore("acct", accounts, balance)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	s.AddConstraint(entity.SumConstraint("sum", int64(accounts)*balance, names...))
	return s
}

func TestConcurrentBankTransfers(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		t.Run(strat.String(), func(t *testing.T) {
			const accounts, transfers = 6, 40
			w := sim.BankingWorkload(accounts, transfers, 1000, 7)
			store := w.NewStore()
			out, err := Run(store, w.Programs, Options{Strategy: strat, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if out.Stats.Commits != transfers {
				t.Errorf("commits = %d, want %d", out.Stats.Commits, transfers)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestConcurrentWithPrevention(t *testing.T) {
	for _, prev := range []core.Prevention{core.WoundWait, core.WaitDie} {
		t.Run(prev.String(), func(t *testing.T) {
			w := sim.BankingWorkload(5, 30, 1000, 11)
			store := w.NewStore()
			out, err := Run(store, w.Programs, Options{Strategy: core.MCS, Prevention: prev, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentBurst runs the concurrent driver with burst stepping
// (run with -race): at every burst level, including adaptive
// (exec.BurstAdaptive = -1), unsharded and sharded, a contended
// banking workload must fully commit, keep the store's sum
// constraint, and stay conflict-serializable — bursting amortizes
// engine-lock acquisitions but must not coarsen conflict resolution.
func TestConcurrentBurst(t *testing.T) {
	for _, burst := range []int{1, 4, 16, 64, exec.BurstAdaptive} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("burst%d/shards%d", burst, shards), func(t *testing.T) {
				const accounts, transfers = 6, 40
				w := sim.BankingWorkload(accounts, transfers, 1000, int64(17+burst))
				store := w.NewStore()
				out, err := Run(store, w.Programs, Options{
					Strategy: core.MCS, RecordHistory: true,
					Shards: shards, Burst: burst,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := store.CheckConsistent(); err != nil {
					t.Fatal(err)
				}
				if out.Stats.Commits != transfers {
					t.Errorf("commits = %d, want %d", out.Stats.Commits, transfers)
				}
				if err := out.System.CheckInvariants(); err != nil {
					t.Error(err)
				}
				if _, err := out.System.Recorder().CheckSerializable(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestConcurrentSharded runs the concurrent driver over multi-shard
// engines (run with -race): a mixed hotspot workload must fully commit,
// keep the store consistent, pass engine invariants, and stay
// conflict-serializable in the merged history.
func TestConcurrentSharded(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, strat := range []core.Strategy{core.MCS, core.SDG} {
			t.Run(fmt.Sprintf("shards%d/%v", shards, strat), func(t *testing.T) {
				w := sim.Generate(sim.GenConfig{
					Txns: 24, DBSize: 32, HotSet: 8, HotProb: 0.6,
					LocksPerTxn: 4, RewriteProb: 0.5, PadOps: 2,
					Shape: sim.Mixed, Seed: 13,
				})
				store := w.NewStore()
				out, err := Run(store, w.Programs, Options{
					Strategy: strat, RecordHistory: true, Shards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := store.CheckConsistent(); err != nil {
					t.Fatal(err)
				}
				if out.Stats.Commits != 24 {
					t.Errorf("commits = %d, want 24", out.Stats.Commits)
				}
				if err := out.System.CheckInvariants(); err != nil {
					t.Error(err)
				}
				if _, err := out.System.Recorder().CheckSerializable(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}
