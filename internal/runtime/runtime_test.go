package runtime

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
)

func bankStore(accounts int, balance int64) *entity.Store {
	s := entity.NewUniformStore("acct", accounts, balance)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	s.AddConstraint(entity.SumConstraint("sum", int64(accounts)*balance, names...))
	return s
}

func TestConcurrentBankTransfers(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		t.Run(strat.String(), func(t *testing.T) {
			const accounts, transfers = 6, 40
			w := sim.BankingWorkload(accounts, transfers, 1000, 7)
			store := w.NewStore()
			out, err := Run(store, w.Programs, Options{Strategy: strat, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if out.Stats.Commits != transfers {
				t.Errorf("commits = %d, want %d", out.Stats.Commits, transfers)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestConcurrentWithPrevention(t *testing.T) {
	for _, prev := range []core.Prevention{core.WoundWait, core.WaitDie} {
		t.Run(prev.String(), func(t *testing.T) {
			w := sim.BankingWorkload(5, 30, 1000, 11)
			store := w.NewStore()
			out, err := Run(store, w.Programs, Options{Strategy: core.MCS, Prevention: prev, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if _, err := out.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
		})
	}
}
