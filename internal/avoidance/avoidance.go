// Package avoidance implements the deadlock-*avoidance* baselines the
// paper's introduction contrasts with detection + rollback (§1):
//
//   - Banker: Dijkstra's banker's algorithm adapted to single-unit
//     lockable entities — every transaction declares its full lock set
//     (claim) up front, and a request is granted only if the resulting
//     state is safe (some completion order exists). Requires a-priori
//     information the paper's setting explicitly lacks.
//   - Tree (hierarchical) ordering: all transactions acquire locks in a
//     global entity order (Silberschatz & Kedem), making deadlock
//     impossible by construction. Realized as a workload transform plus
//     a run under the normal engine, asserting zero deadlocks.
//
// These never roll anything back; the price is admission delay (banker)
// or constrained program structure (ordering). Experiment E12 compares
// their makespan and waiting against detection + partial rollback.
package avoidance

import (
	"fmt"
	"sort"

	"partialrollback/internal/core"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

// BankerResult reports a banker's-algorithm run.
type BankerResult struct {
	// Makespan is the number of scheduler sweeps until all commit.
	Makespan int64
	// Waits counts request delays imposed by the safety check beyond
	// plain lock conflicts.
	SafetyWaits int64
	// ConflictWaits counts delays from ordinary lock conflicts.
	ConflictWaits int64
	Commits       int
}

// banker runs the claim-aware admission control. It reuses the real
// engine but gates every lock request through a safety check: the
// request may proceed only if, assuming it is granted, every
// transaction can still finish in some order given declared claims.
type banker struct {
	sys    *core.System
	claims map[txn.ID]map[string]bool // declared full lock sets
}

// safeToRequest simulates granting entity to id and checks whether a
// completion order exists: repeatedly retire any transaction whose
// remaining claim is free or held by itself.
func (b *banker) safeToRequest(id txn.ID, entityName string, exclusive bool) bool {
	// holders[e] = set of current holders (after hypothetical grant).
	type holdState struct {
		holders map[txn.ID]bool
		anyX    bool
	}
	hold := map[string]*holdState{}
	note := func(e string, t txn.ID, x bool) {
		h := hold[e]
		if h == nil {
			h = &holdState{holders: map[txn.ID]bool{}}
			hold[e] = h
		}
		h.holders[t] = true
		if x {
			h.anyX = true
		}
	}
	live := map[txn.ID]bool{}
	for _, t := range b.sys.IDs() {
		st, _ := b.sys.Status(t)
		if st == core.StatusCommitted {
			continue
		}
		live[t] = true
		for _, e := range b.sys.Held(t) {
			note(e, t, b.sys.HoldsExclusive(t, e))
		}
	}
	note(entityName, id, exclusive)

	// Retirement loop.
	for len(live) > 0 {
		retired := txn.None
		for t := range live {
			ok := true
			for e := range b.claims[t] {
				h := hold[e]
				if h == nil {
					continue
				}
				// t can finish if no OTHER transaction holds e in a
				// conflicting way. (Conservative: any other holder of a
				// claimed entity blocks retirement when either side
				// would need exclusivity; we treat claims as exclusive
				// needs, the classical single-unit banker.)
				for other := range h.holders {
					if other != t {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				retired = t
				break
			}
		}
		if retired == txn.None {
			return false
		}
		delete(live, retired)
		for e := range b.claims[retired] {
			if h := hold[e]; h != nil {
				delete(h.holders, retired)
			}
		}
	}
	return true
}

// RunBanker executes the workload under banker's-style avoidance.
func RunBanker(w sim.Workload, maxSweeps int64) (BankerResult, error) {
	if maxSweeps == 0 {
		maxSweeps = 1_000_000
	}
	store := w.NewStore()
	sys := core.New(core.Config{Store: store, Strategy: core.Total})
	bk := &banker{sys: sys, claims: map[txn.ID]map[string]bool{}}
	var res BankerResult

	type pending struct {
		id   txn.ID
		prog *txn.Program
	}
	var all []pending
	for _, p := range w.Programs {
		for _, op := range p.Ops {
			if op.Kind == txn.OpLockS {
				return res, fmt.Errorf("avoidance: banker baseline supports exclusive locks only (program %s)", p.Name)
			}
		}
		id, err := sys.Register(p)
		if err != nil {
			return res, err
		}
		claim := map[string]bool{}
		for _, e := range txn.Analyze(p).LockSet() {
			claim[e] = true
		}
		bk.claims[id] = claim
		all = append(all, pending{id, p})
	}

	for sweep := int64(0); ; sweep++ {
		if sweep >= maxSweeps {
			return res, fmt.Errorf("avoidance: banker exceeded %d sweeps", maxSweeps)
		}
		if sys.AllCommitted() {
			res.Makespan = sweep
			res.Commits = len(all)
			if err := store.CheckConsistent(); err != nil {
				return res, err
			}
			return res, nil
		}
		for _, p := range all {
			st, _ := sys.Status(p.id)
			switch st {
			case core.StatusCommitted:
				continue
			case core.StatusWaiting:
				res.ConflictWaits++
				continue
			}
			// Peek the next op; gate lock requests through safety.
			op, ok := nextOp(sys, p.id, p.prog)
			if ok && op.Kind.IsLockRequest() {
				if !bk.safeToRequest(p.id, op.Entity, op.Kind == txn.OpLockX) {
					res.SafetyWaits++
					continue
				}
			}
			if _, err := sys.Step(p.id); err != nil {
				return res, err
			}
		}
	}
}

// nextOp returns the operation id would execute next.
func nextOp(sys *core.System, id txn.ID, prog *txn.Program) (txn.Op, bool) {
	pc := sys.PC(id)
	if pc < 0 || pc >= len(prog.Ops) {
		return txn.Op{}, false
	}
	return prog.Ops[pc], true
}

// SortLockOrder rewrites a generated workload so every transaction
// acquires its locks in the global entity order — the tree/hierarchical
// protocol baseline. Only programs produced by sim.Generate (lock,
// read, pad, write groups) are supported; the transform rebuilds each
// program from its analysis.
func SortLockOrder(w sim.Workload) sim.Workload {
	progs := make([]*txn.Program, 0, len(w.Programs))
	for _, p := range w.Programs {
		progs = append(progs, sortProgramLocks(p))
	}
	return sim.Workload{Name: w.Name + "+sorted", NewStore: w.NewStore, Programs: progs}
}

// sortProgramLocks rebuilds p acquiring entities in sorted order,
// moving every write after the last lock (a DeclareLastLock three-phase
// form, which both sorts locks and clusters writes).
func sortProgramLocks(p *txn.Program) *txn.Program {
	a := txn.Analyze(p)
	reqs := append([]txn.LockRequest(nil), a.Requests...)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Entity < reqs[j].Entity })
	b := txn.NewProgram(p.Name + "-sorted")
	localNames := make([]string, 0, len(p.Locals))
	for name := range p.Locals {
		localNames = append(localNames, name)
	}
	sort.Strings(localNames)
	for _, name := range localNames {
		b.Local(name, p.Locals[name])
	}
	for _, r := range reqs {
		if r.Exclusive {
			b.LockX(r.Entity)
		} else {
			b.LockS(r.Entity)
		}
	}
	b.DeclareLastLock()
	// Replay the original non-lock operations in order; every entity is
	// now locked up front, so reads/writes/computes are legal as-is.
	for _, op := range p.Ops {
		switch op.Kind {
		case txn.OpRead:
			b.Read(op.Entity, op.Local)
		case txn.OpWrite:
			b.Write(op.Entity, op.Expr)
		case txn.OpCompute:
			b.Compute(op.Local, op.Expr)
		}
	}
	return b.MustBuild()
}
