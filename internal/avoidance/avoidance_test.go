package avoidance

import (
	"strings"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

func xOnlyWorkload(seed int64) sim.Workload {
	return sim.Generate(sim.GenConfig{
		Txns: 8, DBSize: 10, HotSet: 5, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.4, Shape: sim.Scattered, Seed: seed,
	})
}

func TestBankerCompletesWithoutDeadlock(t *testing.T) {
	w := xOnlyWorkload(1)
	res, err := RunBanker(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 8 {
		t.Errorf("commits = %d", res.Commits)
	}
	if res.Makespan == 0 {
		t.Error("makespan not recorded")
	}
}

func TestBankerMatchesSerialResult(t *testing.T) {
	// Avoidance never rolls back, so its final state must equal SOME
	// serializable outcome; check consistency by comparing with a
	// detection run's invariants (both must satisfy the store's
	// constraints).
	w := sim.BankingWorkload(5, 12, 300, 9)
	// Banker requires exclusive-only workloads; banking transfers are.
	res, err := RunBanker(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 12 {
		t.Errorf("commits = %d", res.Commits)
	}
}

func TestBankerRejectsSharedLocks(t *testing.T) {
	w := sim.Generate(sim.GenConfig{
		Txns: 4, DBSize: 8, LocksPerTxn: 3, SharedProb: 1.0, Seed: 1,
	})
	if _, err := RunBanker(w, 0); err == nil || !strings.Contains(err.Error(), "exclusive") {
		t.Errorf("want exclusive-only error, got %v", err)
	}
}

func TestSortLockOrderEliminatesDeadlocks(t *testing.T) {
	w := xOnlyWorkload(2)
	sorted := SortLockOrder(w)
	if len(sorted.Programs) != len(w.Programs) {
		t.Fatal("program count changed")
	}
	for _, p := range sorted.Programs {
		if err := txn.Validate(p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		a := txn.Analyze(p)
		reqs := a.Requests
		for i := 1; i < len(reqs); i++ {
			if reqs[i-1].Entity >= reqs[i].Entity {
				t.Fatalf("%s locks out of order: %v then %v", p.Name, reqs[i-1].Entity, reqs[i].Entity)
			}
		}
	}
	r, err := sim.Run(sorted, sim.RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Deadlocks != 0 {
		t.Errorf("ordered locking must be deadlock-free, got %d", r.Stats.Deadlocks)
	}
	if _, err := r.System.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
}

func TestSortPreservesSemantics(t *testing.T) {
	// A sorted program run alone must compute the same result as the
	// original run alone (operations are replayed in order, just with
	// all locks up front).
	w := xOnlyWorkload(3)
	sorted := SortLockOrder(w)
	for i := range w.Programs {
		s1 := runAlone(t, w, i)
		s2 := runAlone(t, sorted, i)
		for e, v := range s1 {
			if s2[e] != v {
				t.Errorf("program %d entity %q: original %d, sorted %d", i, e, v, s2[e])
			}
		}
	}
}

func runAlone(t *testing.T, w sim.Workload, i int) map[string]int64 {
	t.Helper()
	store := w.NewStore()
	s := core.New(core.Config{Store: store, Strategy: core.Total})
	id, err := s.Register(w.Programs[i].Clone())
	if err != nil {
		t.Fatal(err)
	}
	for {
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == core.Committed {
			break
		}
	}
	return store.Snapshot()
}
