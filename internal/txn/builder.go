package txn

import (
	"fmt"

	"partialrollback/internal/value"
)

// Builder assembles a Program with a fluent API and validates it on
// Build. The zero Builder is not usable; call NewProgram.
type Builder struct {
	p    *Program
	errs []error
}

// NewProgram starts building a program with the given display name.
func NewProgram(name string) *Builder {
	return &Builder{p: &Program{
		Name:   name,
		Locals: map[string]int64{},
	}}
}

// Local declares a local variable with an initial value. Declaring the
// same local twice is an error.
func (b *Builder) Local(name string, init int64) *Builder {
	if _, dup := b.p.Locals[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("txn %s: local %q declared twice", b.p.Name, name))
		return b
	}
	b.p.Locals[name] = init
	return b
}

// LockS appends a shared-lock request for entity.
func (b *Builder) LockS(entity string) *Builder {
	return b.op(Op{Kind: OpLockS, Entity: entity})
}

// LockX appends an exclusive-lock request for entity.
func (b *Builder) LockX(entity string) *Builder {
	return b.op(Op{Kind: OpLockX, Entity: entity})
}

// Unlock appends an unlock of entity. Per the two-phase rule, no lock
// request may follow any unlock.
func (b *Builder) Unlock(entity string) *Builder {
	return b.op(Op{Kind: OpUnlock, Entity: entity})
}

// Read appends a read of entity into local.
func (b *Builder) Read(entity, local string) *Builder {
	return b.op(Op{Kind: OpRead, Entity: entity, Local: local})
}

// Write appends a write of expr (over locals) to entity.
func (b *Builder) Write(entity string, expr value.Expr) *Builder {
	return b.op(Op{Kind: OpWrite, Entity: entity, Expr: expr})
}

// Compute appends local := expr.
func (b *Builder) Compute(local string, expr value.Expr) *Builder {
	return b.op(Op{Kind: OpCompute, Local: local, Expr: expr})
}

// DeclareLastLock appends the §5 declaration that no further lock
// requests follow. The system may stop monitoring the transaction for
// rollback after this point.
func (b *Builder) DeclareLastLock() *Builder {
	return b.op(Op{Kind: OpDeclareLastLock})
}

func (b *Builder) op(o Op) *Builder {
	b.p.Ops = append(b.p.Ops, o)
	return b
}

// Build validates and returns the program. A terminating Commit is
// appended if the program does not already end with one.
func (b *Builder) Build() (*Program, error) {
	p := b.p
	if n := len(p.Ops); n == 0 || p.Ops[n-1].Kind != OpCommit {
		p.Ops = append(p.Ops, Op{Kind: OpCommit})
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and fixed figures.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks the static well-formedness rules from the paper's
// model:
//
//   - two-phase: no lock request after any unlock;
//   - every Read/Write/Unlock names an entity currently locked (Write
//     and Unlock-after-write require an exclusive lock);
//   - no double-locking an entity already held (upgrades are modeled as
//     an error at the program level to keep the lock-state/entity
//     correspondence one-to-one, as §4 assumes);
//   - expressions reference only declared locals; Read destinations are
//     declared locals;
//   - Commit appears exactly once, last;
//   - no write (to entity or local) precedes the first lock request
//     (§4's simplifying assumption);
//   - nothing but Commit follows once DeclareLastLock is emitted except
//     reads, writes, computes and unlocks (no lock requests).
//
// Validate is a thin wrapper over ValidateAnalyze, which checks these
// rules and computes the program's static Analysis in one traversal.
func Validate(p *Program) error {
	_, err := ValidateAnalyze(p)
	return err
}

// checkRefs verifies an expression references only declared locals,
// walking the tree directly so well-formed expressions cost no
// allocation (Expr.Refs would materialize the reference list).
func checkRefs(p *Program, e value.Expr) error {
	switch x := e.(type) {
	case nil:
		return fmt.Errorf("missing expression")
	case value.Const:
		return nil
	case value.Local:
		if _, ok := p.Locals[string(x)]; !ok {
			return fmt.Errorf("expression references undeclared local %q", string(x))
		}
		return nil
	case value.Binary:
		if err := checkRefs(p, x.L); err != nil {
			return err
		}
		return checkRefs(p, x.R)
	default:
		for _, r := range e.Refs(nil) {
			if _, ok := p.Locals[r]; !ok {
				return fmt.Errorf("expression references undeclared local %q", r)
			}
		}
		return nil
	}
}
