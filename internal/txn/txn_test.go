package txn

import (
	"strings"
	"testing"

	"partialrollback/internal/value"
)

func validProgram() *Builder {
	return NewProgram("T").
		Local("x", 0).Local("y", 5).
		LockX("a").
		Read("a", "x").
		Compute("y", value.Add(value.L("x"), value.C(1))).
		Write("a", value.L("y")).
		LockS("b").
		Read("b", "x")
}

func TestBuildValid(t *testing.T) {
	p, err := validProgram().Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops[len(p.Ops)-1].Kind != OpCommit {
		t.Error("missing commit")
	}
	if err := Validate(p); err != nil {
		t.Error(err)
	}
}

func TestBuildAppendsCommitOnce(t *testing.T) {
	p := validProgram().MustBuild()
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpCommit {
			n++
		}
	}
	if n != 1 {
		t.Errorf("commits = %d", n)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
		want string
	}{
		{
			"lock after unlock",
			NewProgram("T").Local("x", 0).LockX("a").Unlock("a").LockX("b"),
			"two-phase",
		},
		{
			"double lock",
			NewProgram("T").Local("x", 0).LockX("a").LockX("a"),
			"already locked",
		},
		{
			"unlock not held",
			NewProgram("T").Local("x", 0).LockX("a").Unlock("b"),
			"not held",
		},
		{
			"read unlocked",
			NewProgram("T").Local("x", 0).Read("a", "x"),
			"unlocked entity",
		},
		{
			"read into undeclared local",
			NewProgram("T").LockX("a").Read("a", "x"),
			"undeclared local",
		},
		{
			"write without exclusive",
			NewProgram("T").Local("x", 0).LockS("a").Write("a", value.C(1)),
			"exclusive lock",
		},
		{
			"write unheld",
			NewProgram("T").Local("x", 0).LockX("a").Write("b", value.C(1)),
			"exclusive lock",
		},
		{
			"write after unlock of target",
			NewProgram("T").Local("x", 0).LockX("a").Unlock("a").Write("a", value.C(1)),
			"exclusive lock",
		},
		{
			"compute before first lock",
			NewProgram("T").Local("x", 0).Compute("x", value.C(1)).LockX("a"),
			"before first lock",
		},
		{
			"expr references undeclared",
			NewProgram("T").Local("x", 0).LockX("a").Write("a", value.L("nope")),
			"undeclared local",
		},
		{
			"compute undeclared dest",
			NewProgram("T").Local("x", 0).LockX("a").Compute("z", value.C(1)),
			"undeclared local",
		},
		{
			"lock after declare",
			NewProgram("T").Local("x", 0).LockX("a").DeclareLastLock().LockX("b"),
			"DeclareLastLock",
		},
		{
			"duplicate local",
			NewProgram("T").Local("x", 0).Local("x", 1).LockX("a"),
			"declared twice",
		},
		{
			"missing write expr",
			NewProgram("T").Local("x", 0).LockX("a").Write("a", nil),
			"missing expression",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.b.Build()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestUnnamedProgramInvalid(t *testing.T) {
	if _, err := NewProgram("").LockX("a").Build(); err == nil {
		t.Error("unnamed program should fail validation")
	}
}

func TestAnalyzeLockIndexes(t *testing.T) {
	p := NewProgram("T").
		Local("x", 0).
		LockX("a"). // request lock index 0
		Read("a", "x").
		Write("a", value.L("x")).
		LockX("b"). // request lock index 1
		Write("a", value.L("x")).
		LockS("c"). // request lock index 2
		Write("b", value.L("x")).
		MustBuild()
	a := Analyze(p)
	if a.NumLocks() != 3 {
		t.Fatalf("locks = %d", a.NumLocks())
	}
	wantReq := []struct {
		entity string
		x      bool
		li     int
	}{{"a", true, 0}, {"b", true, 1}, {"c", false, 2}}
	for i, w := range wantReq {
		r := a.Requests[i]
		if r.Entity != w.entity || r.Exclusive != w.x || r.LockIndex != w.li {
			t.Errorf("request %d = %+v", i, r)
		}
	}
	if a.EntityLockIndex["b"] != 1 {
		t.Errorf("EntityLockIndex[b] = %d", a.EntityLockIndex["b"])
	}
	// Writes: a at 1 (twice: read sets x at 1 too) and 2; b at 3.
	if got := a.WriteLockIndexes["a"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("writes to a at %v", got)
	}
	if got := a.WriteLockIndexes["b"]; len(got) != 1 || got[0] != 3 {
		t.Errorf("writes to b at %v", got)
	}
	if got := a.WriteLockIndexes["x"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("writes to local x at %v", got)
	}
	if u, ok := a.FirstWriteLockIndex["a"]; !ok || u != 1 {
		t.Errorf("first write of a = %d, %v", u, ok)
	}
	if rho, ok := a.RestorabilityIndex("a"); !ok || rho != 0 {
		t.Errorf("restorability of a = %d, %v", rho, ok)
	}
	if _, ok := a.RestorabilityIndex("never"); ok {
		t.Error("unwritten target should have no restorability index")
	}
}

func TestStaticWellDefined(t *testing.T) {
	// a written at lock indexes 1 and 3 -> destroys states 1, 2.
	p := NewProgram("T").
		Local("x", 0).
		LockX("a").
		Read("a", "x").
		Write("a", value.L("x")).
		LockX("b").
		LockX("c").
		Write("a", value.L("x")).
		LockX("d").
		MustBuild()
	a := Analyze(p)
	wd := a.StaticWellDefined()
	want := []bool{true, false, false, true, true} // states 0..4
	if len(wd) != len(want) {
		t.Fatalf("len = %d", len(wd))
	}
	for q := range want {
		if wd[q] != want[q] {
			t.Errorf("state %d: well-defined = %v, want %v", q, wd[q], want[q])
		}
	}
	if a.WellDefinedCount() != 3 {
		t.Errorf("count = %d", a.WellDefinedCount())
	}
	if a.ClusteringIndex() != 2 {
		t.Errorf("clustering = %d", a.ClusteringIndex())
	}
}

// bruteWellDefined recomputes well-definedness directly from op lock
// indexes: state q is destroyed iff some target has a write at lock
// index <= q and another at lock index > q.
func bruteWellDefined(p *Program) []bool {
	a := Analyze(p)
	n := a.NumLocks()
	wd := make([]bool, n+1)
	for q := 0; q <= n; q++ {
		wd[q] = true
		writes := map[string][]int{}
		li := 0
		for _, op := range p.Ops {
			switch op.Kind {
			case OpLockS, OpLockX:
				li++
			case OpWrite:
				writes[op.Entity] = append(writes[op.Entity], li)
			case OpRead:
				writes[op.Local] = append(writes[op.Local], li)
			case OpCompute:
				writes[op.Local] = append(writes[op.Local], li)
			}
		}
		for _, idxs := range writes {
			atOrBefore, after := false, false
			for _, j := range idxs {
				if j <= q {
					atOrBefore = true
				}
				if j > q {
					after = true
				}
			}
			if atOrBefore && after {
				wd[q] = false
			}
		}
	}
	return wd
}

func TestWellDefinedMatchesBruteForce(t *testing.T) {
	// Note Reads also write their destination local; Analyze must track
	// Read destinations exactly like Compute destinations.
	progs := []*Program{
		validProgram().MustBuild(),
		NewProgram("T2").Local("x", 0).
			LockX("a").Read("a", "x").
			LockX("b").Read("b", "x"). // x written at 1 and 2: destroys 1
			LockX("c").
			MustBuild(),
	}
	for _, p := range progs {
		got := Analyze(p).StaticWellDefined()
		want := bruteWellDefined(p)
		for q := range want {
			if got[q] != want[q] {
				t.Errorf("%s state %d: got %v want %v", p.Name, q, got[q], want[q])
			}
		}
	}
}

func TestIsThreePhase(t *testing.T) {
	three := NewProgram("T").
		Local("x", 0).
		LockX("a").Read("a", "x").
		LockX("b").
		DeclareLastLock().
		Write("a", value.L("x")).
		Write("b", value.L("x")).
		MustBuild()
	if !IsThreePhase(three) {
		t.Error("want three-phase")
	}
	noDecl := NewProgram("T").
		Local("x", 0).
		LockX("a").LockX("b").
		Write("a", value.C(1)).Write("b", value.C(1)).
		MustBuild()
	if IsThreePhase(noDecl) {
		t.Error("no DeclareLastLock: not three-phase")
	}
	earlyWrite := NewProgram("T").
		Local("x", 0).
		LockX("a").Write("a", value.C(1)).
		LockX("b").
		DeclareLastLock().
		Write("b", value.C(1)).
		MustBuild()
	if IsThreePhase(earlyWrite) {
		t.Error("write before last lock: not three-phase")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := validProgram().MustBuild()
	c := p.Clone()
	c.Locals["x"] = 99
	if p.Locals["x"] == 99 {
		t.Error("clone shares Locals")
	}
	if len(c.Ops) != len(p.Ops) {
		t.Error("ops differ")
	}
}

func TestLockSetSorted(t *testing.T) {
	p := NewProgram("T").Local("x", 0).
		LockX("zeta").LockX("alpha").LockS("mid").MustBuild()
	got := Analyze(p).LockSet()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Errorf("lock set = %v", got)
	}
}

func TestStrings(t *testing.T) {
	p := validProgram().MustBuild()
	s := p.String()
	for _, want := range []string{"LockX(a)", "Read(a -> x)", "Write(a <- y)", "Commit"} {
		if !strings.Contains(s, want) {
			t.Errorf("program string missing %q:\n%s", want, s)
		}
	}
	if ID(3).String() != "T3" || None.String() != "T?" {
		t.Error("ID string")
	}
	if OpLockS.String() != "LockS" || !OpLockX.IsLockRequest() || OpRead.IsLockRequest() {
		t.Error("kind helpers")
	}
}

func TestAnalysisExecutionPlan(t *testing.T) {
	p := NewProgram("plan").
		Local("b", 2).
		Local("a", 1).
		LockX("e1").
		Read("e1", "a").
		Compute("b", value.Add(value.L("a"), value.C(3))).
		Write("e1", value.L("b")).
		MustBuild()
	a := Analyze(p)
	if len(a.LocalNames) != 2 || a.LocalNames[0] != "a" || a.LocalNames[1] != "b" {
		t.Fatalf("LocalNames = %v, want [a b] (slot order sorted by name)", a.LocalNames)
	}
	if a.InitLocals[a.LocalSlot["a"]] != 1 || a.InitLocals[a.LocalSlot["b"]] != 2 {
		t.Fatalf("InitLocals = %v out of sync with slots %v", a.InitLocals, a.LocalSlot)
	}
	for i, o := range p.Ops {
		switch o.Kind {
		case OpRead, OpCompute:
			if a.OpLocalSlot[i] != a.LocalSlot[o.Local] {
				t.Errorf("op %d (%s): OpLocalSlot = %d, want %d", i, o, a.OpLocalSlot[i], a.LocalSlot[o.Local])
			}
			if want := "l:" + o.Local; a.OpTarget[i] != want {
				t.Errorf("op %d (%s): OpTarget = %q, want %q", i, o, a.OpTarget[i], want)
			}
		case OpWrite:
			if want := "e:" + o.Entity; a.OpTarget[i] != want {
				t.Errorf("op %d (%s): OpTarget = %q, want %q", i, o, a.OpTarget[i], want)
			}
		default:
			if a.OpTarget[i] != "" {
				t.Errorf("op %d (%s): OpTarget = %q, want empty", i, o, a.OpTarget[i])
			}
		}
	}
	// Slot evaluation over the plan computes what the tree walker does.
	locals := []int64{10, 0} // a=10, b=0
	for _, o := range p.Ops {
		if o.Kind == OpCompute {
			v, err := value.EvalSlots(o.Expr, a.LocalSlot, locals)
			if err != nil || v != 13 {
				t.Fatalf("slot compute = %d, %v; want 13", v, err)
			}
		}
	}
}
