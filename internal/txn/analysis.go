package txn

import (
	"fmt"
	"sort"
)

// LockRequest describes one lock request site in a program.
type LockRequest struct {
	// OpIndex is the position of the request in Program.Ops.
	OpIndex int
	// Entity is the requested entity.
	Entity string
	// Exclusive is true for LockX.
	Exclusive bool
	// LockIndex is the number of lock requests strictly before this
	// one; equivalently, the index of the lock state immediately
	// preceding the request (paper §4).
	LockIndex int
}

// Analysis holds static facts about a program used by the rollback
// machinery and by the §5 structure experiments.
type Analysis struct {
	// Requests lists the program's lock requests in order; the k-th
	// entry has LockIndex k.
	Requests []LockRequest
	// LockIndexOf[i] is the lock index of Ops[i]: the number of lock
	// requests strictly before op i.
	LockIndexOf []int
	// EntityLockIndex maps each locked entity to the LockIndex of its
	// request.
	EntityLockIndex map[string]int
	// FirstWriteLockIndex maps each written target (entity or local) to
	// the lock index of its first write; the paper's index of
	// restorability is this minus one.
	FirstWriteLockIndex map[string]int
	// WriteLockIndexes maps each written target to the sorted distinct
	// lock indexes at which it is written.
	WriteLockIndexes map[string][]int

	// The fields below are the execution plan for the allocation-free
	// hot path: locals resolved to dense slots at analysis time, so
	// Step indexes a slice instead of hashing strings. Expressions stay
	// in tree form — every driver registers a program exactly once, so
	// value.EvalSlots over the tree beats any per-Register compilation.

	// LocalNames lists the program's local variables in slot order
	// (sorted by name); LocalSlot is the inverse mapping.
	LocalNames []string
	LocalSlot  map[string]int
	// InitLocals[s] is the declared initial value of slot s.
	InitLocals []int64
	// OpLocalSlot[i] is the slot of Ops[i].Local, or -1 when op i has
	// no local operand.
	OpLocalSlot []int
	// OpTarget[i] is the state-dependency-graph write-target key of op
	// i ("e:<entity>" for entity writes, "l:<local>" for local writes,
	// "" when op i writes nothing) — precomputed so the hot path does
	// not concatenate strings per write.
	OpTarget []string
}

// Analyze computes the static Analysis for p. The program is assumed
// valid (see Validate); on an invalid program the returned analysis is
// best-effort. It is a thin wrapper over ValidateAnalyze.
func Analyze(p *Program) *Analysis {
	a, _ := ValidateAnalyze(p)
	return a
}

// ValidateAnalyze checks p against the §2 static rules (see Validate
// for the full list) and computes its Analysis in the same traversal of
// p.Ops — registration used to walk the program twice (validate, then
// analyze), now it walks once. Lock holdings are tracked in a small
// slice instead of a map, and expression references are checked by
// walking the tree directly instead of materializing a reference list,
// so validation itself stays off the allocator for typical programs.
//
// The analysis is always returned, complete to the extent the program
// allows; the error is the first rule violation, exactly as Validate
// reports it.
func ValidateAnalyze(p *Program) (*Analysis, error) {
	a := &Analysis{
		LockIndexOf:         make([]int, len(p.Ops)),
		EntityLockIndex:     map[string]int{},
		FirstWriteLockIndex: map[string]int{},
		WriteLockIndexes:    map[string][]int{},
		OpLocalSlot:         make([]int, len(p.Ops)),
		OpTarget:            make([]string, len(p.Ops)),
	}
	a.LocalNames = make([]string, 0, len(p.Locals))
	for name := range p.Locals {
		a.LocalNames = append(a.LocalNames, name)
	}
	sort.Strings(a.LocalNames)
	a.LocalSlot = make(map[string]int, len(a.LocalNames))
	a.InitLocals = make([]int64, len(a.LocalNames))
	for s, name := range a.LocalNames {
		a.LocalSlot[name] = s
		a.InitLocals[s] = p.Locals[name]
	}

	var firstErr error
	if p.Name == "" {
		firstErr = fmt.Errorf("txn: program must have a name")
	}
	// held tracks current lock holdings as a slice: programs lock a
	// handful of entities, so a linear scan beats a map and allocates
	// nothing beyond the one backing array.
	type heldLock struct {
		entity string
		kind   OpKind
	}
	held := make([]heldLock, 0, 8)
	findHeld := func(entity string) int {
		for k := range held {
			if held[k].entity == entity {
				return k
			}
		}
		return -1
	}
	unlocked := false
	declaredLast := false
	seenLock := false
	li := 0
	for i, o := range p.Ops {
		fail := func(format string, args ...any) {
			if firstErr == nil {
				firstErr = fmt.Errorf("txn %s: op %d (%s): %s", p.Name, i, o, fmt.Sprintf(format, args...))
			}
		}
		a.LockIndexOf[i] = li
		a.OpLocalSlot[i] = -1
		if o.Local != "" {
			if s, ok := a.LocalSlot[o.Local]; ok {
				a.OpLocalSlot[i] = s
			}
		}
		if i != len(p.Ops)-1 && o.Kind == OpCommit {
			fail("Commit before end of program")
		}
		switch o.Kind {
		case OpLockS, OpLockX:
			if unlocked {
				fail("lock request after unlock violates two-phase rule")
			}
			if _, clash := p.Locals[o.Entity]; clash {
				// Analysis tracks write targets by name; entity and
				// local namespaces must therefore be disjoint.
				fail("entity %q collides with a local variable name", o.Entity)
			}
			if declaredLast {
				fail("lock request after DeclareLastLock")
			}
			if findHeld(o.Entity) >= 0 {
				fail("entity %q already locked", o.Entity)
			}
			if o.Entity == "" {
				fail("lock request without entity")
			}
			held = append(held, heldLock{entity: o.Entity, kind: o.Kind})
			seenLock = true
			a.Requests = append(a.Requests, LockRequest{
				OpIndex:   i,
				Entity:    o.Entity,
				Exclusive: o.Kind == OpLockX,
				LockIndex: li,
			})
			a.EntityLockIndex[o.Entity] = li
			li++
		case OpUnlock:
			if k := findHeld(o.Entity); k < 0 {
				fail("unlock of entity %q not held", o.Entity)
			} else {
				held = append(held[:k], held[k+1:]...)
			}
			unlocked = true
		case OpRead:
			if findHeld(o.Entity) < 0 {
				fail("read of unlocked entity %q", o.Entity)
			}
			if _, ok := p.Locals[o.Local]; !ok {
				fail("read into undeclared local %q", o.Local)
			}
			// A read assigns its destination local: it is a local write
			// for rollback purposes.
			a.noteWrite(o.Local, li)
			a.OpTarget[i] = "l:" + o.Local
		case OpWrite:
			if !seenLock {
				fail("write before first lock request")
			}
			if k := findHeld(o.Entity); k < 0 || held[k].kind != OpLockX {
				fail("write to entity %q requires a held exclusive lock", o.Entity)
			}
			if err := checkRefs(p, o.Expr); err != nil {
				fail("%v", err)
			}
			a.noteWrite(o.Entity, li)
			a.OpTarget[i] = "e:" + o.Entity
		case OpCompute:
			if !seenLock {
				fail("compute before first lock request")
			}
			if _, ok := p.Locals[o.Local]; !ok {
				fail("compute into undeclared local %q", o.Local)
			}
			if err := checkRefs(p, o.Expr); err != nil {
				fail("%v", err)
			}
			a.noteWrite(o.Local, li)
			a.OpTarget[i] = "l:" + o.Local
		case OpDeclareLastLock:
			if declaredLast {
				fail("DeclareLastLock repeated")
			}
			declaredLast = true
		case OpCommit:
			// position checked above
		default:
			fail("unknown op kind")
		}
	}
	if firstErr == nil && (len(p.Ops) == 0 || p.Ops[len(p.Ops)-1].Kind != OpCommit) {
		firstErr = fmt.Errorf("txn %s: program must end with Commit", p.Name)
	}
	for _, idxs := range a.WriteLockIndexes {
		sort.Ints(idxs)
	}
	return a, firstErr
}

func (a *Analysis) noteWrite(target string, li int) {
	if _, ok := a.FirstWriteLockIndex[target]; !ok {
		a.FirstWriteLockIndex[target] = li
	}
	idxs := a.WriteLockIndexes[target]
	if n := len(idxs); n == 0 || idxs[n-1] != li {
		a.WriteLockIndexes[target] = append(idxs, li)
	}
}

// NumLocks returns the number of lock requests in the program.
func (a *Analysis) NumLocks() int { return len(a.Requests) }

// RestorabilityIndex returns the paper's index of restorability for the
// given write target: the lock index of the last lock state preceding
// its first write, i.e. FirstWriteLockIndex-1. The second result is
// false if the target is never written (every state is restorable for
// it).
func (a *Analysis) RestorabilityIndex(target string) (int, bool) {
	u, ok := a.FirstWriteLockIndex[target]
	if !ok {
		return 0, false
	}
	return u - 1, true
}

// StaticWellDefined reports, for the completed program (all n lock
// requests executed), which lock states q in [0, n] are well defined
// under the single-copy (state-dependency-graph) strategy: q is
// undefined iff some target has first write at lock index u <= q and a
// later write at lock index j > q (Theorem 4 with the half-open write
// intervals derived in DESIGN.md §2).
func (a *Analysis) StaticWellDefined() []bool {
	n := a.NumLocks()
	wd := make([]bool, n+1)
	for q := range wd {
		wd[q] = true
	}
	for _, idxs := range a.WriteLockIndexes {
		if len(idxs) == 0 {
			continue
		}
		u := idxs[0]
		j := idxs[len(idxs)-1]
		// States q with u <= q < j are destroyed.
		for q := u; q < j && q <= n; q++ {
			if q >= 0 {
				wd[q] = false
			}
		}
	}
	return wd
}

// WellDefinedCount returns how many of the n+1 lock states of the
// completed program are well defined (including the trivial state 0).
func (a *Analysis) WellDefinedCount() int {
	count := 0
	for _, ok := range a.StaticWellDefined() {
		if ok {
			count++
		}
	}
	return count
}

// ClusteringIndex measures how tightly a program clusters its writes
// per target (§5): it returns the total number of destroyed lock
// states, summed over write targets. Zero means perfectly clustered
// (every target's writes fall within one lock interval); larger values
// mean writes are scattered across lock states.
func (a *Analysis) ClusteringIndex() int {
	total := 0
	for _, idxs := range a.WriteLockIndexes {
		if len(idxs) > 1 {
			total += idxs[len(idxs)-1] - idxs[0]
		}
	}
	return total
}

// IsThreePhase reports whether the program has the §5 three-phase
// structure: an acquisition phase (lock requests, reads into locals),
// then DeclareLastLock, then an update phase in which every *entity*
// write occurs (§5: "waits to perform write operations to any entity
// until after it performs its last lock request"), then the release
// phase. Reads during acquisition assign locals and are permitted.
func IsThreePhase(p *Program) bool {
	a := Analyze(p)
	n := a.NumLocks()
	declared := false
	li := 0
	for _, o := range p.Ops {
		switch o.Kind {
		case OpDeclareLastLock:
			declared = true
		case OpLockS, OpLockX:
			li++
		case OpWrite:
			if li != n || !declared {
				return false
			}
		}
	}
	return declared
}

// LockSet returns the entities locked by the program, sorted.
func (a *Analysis) LockSet() []string {
	out := make([]string, 0, len(a.EntityLockIndex))
	for e := range a.EntityLockIndex {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}
