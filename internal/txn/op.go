// Package txn defines transaction programs for the partial-rollback
// concurrency control: sequences of atomic operations over global
// entities and local variables, as in §2 of Fussell, Kedem &
// Silberschatz (SIGMOD 1981).
//
// A program is static and re-executable: running the same prefix from
// the same starting state always produces the same values. That is what
// makes rollback (resetting the program counter and restoring state)
// well defined.
package txn

import (
	"fmt"

	"partialrollback/internal/value"
)

// ID identifies a transaction instance registered with a system.
// Programs are templates; an ID names one execution of a program.
type ID int

// None is the zero ID, never assigned to a real transaction.
const None ID = 0

func (id ID) String() string {
	if id == None {
		return "T?"
	}
	return fmt.Sprintf("T%d", int(id))
}

// OpKind enumerates the atomic operations a transaction may perform.
type OpKind int

// Operation kinds. LockS/LockX are the paper's LS/LX lock requests;
// Unlock begins (or continues) the shrinking phase; Read/Write access a
// locked entity through the transaction's local copy; Compute updates a
// local variable; DeclareLastLock is the §5 optimization telling the
// system no further lock requests will follow; Commit terminates the
// transaction, installing local copies as new global values and
// releasing all remaining locks.
const (
	OpLockS OpKind = iota
	OpLockX
	OpUnlock
	OpRead
	OpWrite
	OpCompute
	OpDeclareLastLock
	OpCommit
)

func (k OpKind) String() string {
	switch k {
	case OpLockS:
		return "LockS"
	case OpLockX:
		return "LockX"
	case OpUnlock:
		return "Unlock"
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpCompute:
		return "Compute"
	case OpDeclareLastLock:
		return "DeclareLastLock"
	case OpCommit:
		return "Commit"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsLockRequest reports whether the kind is LockS or LockX. Lock
// requests are the only operations that can block, and the only
// operations rollback targets sit immediately before.
func (k OpKind) IsLockRequest() bool { return k == OpLockS || k == OpLockX }

// Op is one atomic operation.
type Op struct {
	Kind   OpKind
	Entity string     // LockS, LockX, Unlock, Read, Write
	Local  string     // Read destination; Compute destination
	Expr   value.Expr // Write and Compute source expression
}

func (o Op) String() string {
	switch o.Kind {
	case OpLockS, OpLockX, OpUnlock:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Entity)
	case OpRead:
		return fmt.Sprintf("Read(%s -> %s)", o.Entity, o.Local)
	case OpWrite:
		return fmt.Sprintf("Write(%s <- %s)", o.Entity, o.Expr)
	case OpCompute:
		return fmt.Sprintf("Compute(%s <- %s)", o.Local, o.Expr)
	default:
		return o.Kind.String()
	}
}

// Program is an immutable transaction template.
type Program struct {
	// Name labels the program in traces and figures (e.g. "T2").
	Name string
	// Locals maps each local variable to its initial value.
	Locals map[string]int64
	// Ops is the operation sequence. The last operation is always
	// OpCommit (the builder appends one if missing).
	Ops []Op
}

// Clone returns a deep copy safe for independent mutation of Locals.
// Ops are shared (they are immutable by convention).
func (p *Program) Clone() *Program {
	locals := make(map[string]int64, len(p.Locals))
	for k, v := range p.Locals {
		locals[k] = v
	}
	ops := make([]Op, len(p.Ops))
	copy(ops, p.Ops)
	return &Program{Name: p.Name, Locals: locals, Ops: ops}
}

// String renders the program one operation per line.
func (p *Program) String() string {
	s := p.Name + ":\n"
	for i, op := range p.Ops {
		s += fmt.Sprintf("  %3d  %s\n", i, op)
	}
	return s
}
