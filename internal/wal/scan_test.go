package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScanGappedSequences: Scan accepts the multi-log shape (strictly
// increasing, gapped sequences) that ReadAll rejects, and reports the
// clean-prefix byte offset that recovery truncates to.
func TestScanGappedSequences(t *testing.T) {
	var buf []byte
	var offs []int // end offset of each record
	recs := []Record{
		{Name: "a", Value: 1, Seq: 3},
		{Name: "bb", Value: -2, Seq: 7},
		{Name: "ccc", Value: 3, Seq: 20},
	}
	for _, r := range recs {
		buf = AppendRecord(buf, r.Name, r.Value, r.Seq)
		offs = append(offs, len(buf))
	}
	// Records are self-sizing: 24 bytes of framing plus the name.
	if got, want := offs[0], 24+len("a"); got != want {
		t.Fatalf("record size = %d, want %d", got, want)
	}

	got, goodOff, err := Scan(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if goodOff != int64(len(buf)) {
		t.Fatalf("goodOff = %d, want %d", goodOff, len(buf))
	}
	if len(got) != 3 {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		if r != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}

	// The same bytes fail ReadAll's dense-sequence check.
	if _, err := ReadAll(bytes.NewReader(buf)); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll accepted gapped sequences: %v", err)
	}
}

// TestScanTornTailOffset: a torn final record leaves goodOff at the
// last whole record, for every cut position.
func TestScanTornTailOffset(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, "x", 10, 5)
	buf = AppendRecord(buf, "y", 20, 6)
	whole := int64(len(buf)) - int64(24+len("y"))
	for cut := 1; cut < 24+len("y"); cut++ {
		torn := buf[:len(buf)-cut]
		got, goodOff, err := Scan(bytes.NewReader(torn))
		if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
		if goodOff != whole {
			t.Fatalf("cut %d: goodOff = %d, want %d", cut, goodOff, whole)
		}
		if len(got) != 1 || got[0].Seq != 5 {
			t.Fatalf("cut %d: prefix = %+v", cut, got)
		}
	}
}

// TestScanNonIncreasingSequence: a sequence that stalls or reverses is
// corruption, and the prefix before it survives with its offset.
func TestScanNonIncreasingSequence(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, "a", 1, 9)
	prefix := int64(len(buf))
	buf = AppendRecord(buf, "b", 2, 9) // duplicate seq
	got, goodOff, err := Scan(bytes.NewReader(buf))
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate seq undetected: %v", err)
	}
	if goodOff != prefix || len(got) != 1 {
		t.Fatalf("goodOff = %d (want %d), records = %d", goodOff, prefix, len(got))
	}
}

// failingSyncer is an in-memory writer whose fsync always fails.
type failingSyncer struct {
	bytes.Buffer
}

func (f *failingSyncer) Sync() error { return errors.New("injected: device lost") }

func TestWriterSyncError(t *testing.T) {
	var fs failingSyncer
	w := NewWriter(&fs, 0)
	if _, err := w.Append("e", 1); err != nil {
		t.Fatal(err)
	}
	err := w.Sync()
	if err == nil {
		t.Fatal("Sync on a failing device returned nil")
	}
	if !strings.Contains(err.Error(), "wal: sync") {
		t.Fatalf("error not wrapped: %v", err)
	}
	// The appended record is still intact in the buffer — Sync failure
	// does not corrupt the stream.
	if recs, err := ReadAll(bytes.NewReader(fs.Bytes())); err != nil || len(recs) != 1 {
		t.Fatalf("stream damaged after failed sync: %v %v", recs, err)
	}
}

func TestWriterSyncNoopWithoutSyncer(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync over a plain writer: %v", err)
	}
}

// TestCreateAppendsAcrossReopen: Create opens for append (and fsyncs
// the parent directory); reopening the same path continues the file.
func TestCreateAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(AppendRecord(nil, "a", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(AppendRecord(nil, "b", 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, goodOff, err := Scan(bytes.NewReader(data))
	if err != nil || goodOff != int64(len(data)) || len(recs) != 2 {
		t.Fatalf("reopened log: recs=%v goodOff=%d err=%v", recs, goodOff, err)
	}
	if recs[1].Name != "b" || recs[1].Seq != 2 {
		t.Fatalf("append after reopen lost: %+v", recs)
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory returned nil")
	}
}
