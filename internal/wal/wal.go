// Package wal provides the durability substrate a deployed version of
// the concurrency control needs: an append-only, checksummed log of
// every value installation. The paper's deferred-update model (§4:
// global values change only when an entity is unlocked or its
// transaction commits) gives the log a particularly simple contract —
// one record per install, no undo information ever required, because
// uncommitted work lives in per-transaction copies that die with the
// process.
//
// Record format (little endian):
//
//	magic   uint16  0x5052 ("PR")
//	nameLen uint16
//	name    []byte
//	value   int64
//	seq     uint64  monotonically increasing
//	crc     uint32  IEEE CRC-32 of everything above
//
// Recovery replays records in order and stops cleanly at the first
// torn, corrupt, or out-of-sequence record (crash-truncation
// semantics).
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"partialrollback/internal/entity"
)

const magic uint16 = 0x5052

// Record is one logged installation.
type Record struct {
	Name  string
	Value int64
	Seq   uint64
}

// ErrCorrupt is wrapped by read errors caused by checksum or framing
// damage (as opposed to clean EOF).
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRecord encodes one record onto dst and returns the extended
// slice — the allocation-free encoder shared by Writer and the
// group-commit batcher in internal/durable. The caller guarantees
// len(name) <= 0xffff (Writer.Append validates; internal/durable's
// names come from the intern table and are engine-validated).
func AppendRecord(dst []byte, name string, value int64, seq uint64) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, magic)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(value))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// Writer appends records to an io.Writer. Safe for concurrent use.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
	n   int64
	buf []byte
}

// NewWriter creates a Writer starting at sequence nextSeq (1 for a
// fresh log; lastSeq+1 when appending after recovery).
func NewWriter(w io.Writer, nextSeq uint64) *Writer {
	if nextSeq == 0 {
		nextSeq = 1
	}
	return &Writer{w: w, seq: nextSeq}
}

// Append logs one installation and returns its sequence number.
func (w *Writer) Append(name string, value int64) (uint64, error) {
	if len(name) > 0xffff {
		return 0, fmt.Errorf("wal: entity name too long (%d bytes)", len(name))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.seq
	w.buf = AppendRecord(w.buf[:0], name, value, seq)
	n, err := w.w.Write(w.buf)
	w.n += int64(n)
	if err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.seq++
	return seq, nil
}

// Sync flushes the underlying writer to stable storage when it exposes
// a Sync method (os.File does); otherwise it is a no-op. Use it to
// force appended records durable outside the group-commit layer.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Seq returns the next sequence number to be written.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// BytesWritten returns the total bytes appended.
func (w *Writer) BytesWritten() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Attach registers the writer as the store's install hook so every
// committed/unlocked value is logged before it becomes visible. The
// returned error channel receives the first append failure, if any
// (the store's install path cannot return errors to the engine).
func (w *Writer) Attach(store *entity.Store) <-chan error {
	errc := make(chan error, 1)
	store.SetInstallHook(func(name string, value int64) {
		if _, err := w.Append(name, value); err != nil {
			select {
			case errc <- err:
			default:
			}
		}
	})
	return errc
}

// ReadAll decodes records until EOF or damage. It returns the cleanly
// read prefix; err is nil on clean EOF, io.ErrUnexpectedEOF for a torn
// tail, or wraps ErrCorrupt for checksum/framing/sequence damage. In
// every case the returned records are safe to replay. Sequence numbers
// must be dense from 1 (a single standalone log); use Scan for a log
// that is one member of a multi-file set.
func ReadAll(r io.Reader) ([]Record, error) {
	out, _, err := scan(r, true)
	return out, err
}

// Scan is ReadAll with the sequence check relaxed to strictly
// increasing from any start — the shape of one file in a multi-log set
// whose members draw from a shared sequence counter (each file then
// sees gaps where other files' records interleave). It additionally
// returns the byte offset of the end of the cleanly read prefix: the
// length to truncate a damaged file to so the torn or corrupt tail is
// removed and appending can resume.
func Scan(r io.Reader) (recs []Record, goodOff int64, err error) {
	return scan(r, false)
}

// scan is the shared decode loop behind ReadAll (dense sequences) and
// Scan (strictly increasing sequences).
func scan(r io.Reader, dense bool) ([]Record, int64, error) {
	br := newByteReader(r)
	var out []Record
	var goodOff int64
	var wantSeq uint64 = 1 // dense: next expected
	var lastSeq uint64     // loose: last accepted
	for {
		var m uint16
		if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
			if errors.Is(err, io.EOF) {
				return out, goodOff, nil
			}
			return out, goodOff, io.ErrUnexpectedEOF
		}
		if m != magic {
			return out, goodOff, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
		}
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return out, goodOff, io.ErrUnexpectedEOF
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return out, goodOff, io.ErrUnexpectedEOF
		}
		var value int64
		if err := binary.Read(br, binary.LittleEndian, &value); err != nil {
			return out, goodOff, io.ErrUnexpectedEOF
		}
		var seq uint64
		if err := binary.Read(br, binary.LittleEndian, &seq); err != nil {
			return out, goodOff, io.ErrUnexpectedEOF
		}
		var gotCRC uint32
		if err := binary.Read(br, binary.LittleEndian, &gotCRC); err != nil {
			return out, goodOff, io.ErrUnexpectedEOF
		}
		var check bytes.Buffer
		binary.Write(&check, binary.LittleEndian, magic)
		binary.Write(&check, binary.LittleEndian, nameLen)
		check.Write(name)
		binary.Write(&check, binary.LittleEndian, value)
		binary.Write(&check, binary.LittleEndian, seq)
		if crc32.ChecksumIEEE(check.Bytes()) != gotCRC {
			return out, goodOff, fmt.Errorf("%w: checksum mismatch at seq %d", ErrCorrupt, seq)
		}
		if dense {
			if seq != wantSeq {
				return out, goodOff, fmt.Errorf("%w: sequence gap (got %d, want %d)", ErrCorrupt, seq, wantSeq)
			}
			wantSeq++
		} else {
			if seq <= lastSeq {
				return out, goodOff, fmt.Errorf("%w: sequence not increasing (got %d after %d)", ErrCorrupt, seq, lastSeq)
			}
			lastSeq = seq
		}
		goodOff = br.sum
		out = append(out, Record{Name: string(name), Value: value, Seq: seq})
	}
}

// SyncDir fsyncs a directory, making entries created, truncated or
// renamed inside it crash-durable. Without it a freshly created log
// file's data can survive a crash while the file itself vanishes with
// the unsynced directory entry.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}

// Create opens path for appending, creating it if needed, and fsyncs
// the parent directory so the file entry itself survives a crash.
func Create(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Recover replays a log over a store holding the initial database
// state, returning the number of records applied and the next sequence
// number for an appending Writer. Damage truncates recovery at the last
// good record; the damage itself is reported so callers can decide
// whether a torn tail (expected after a crash) or mid-log corruption
// (not expected) occurred.
func Recover(r io.Reader, store *entity.Store) (applied int, nextSeq uint64, damage error) {
	records, err := ReadAll(r)
	for _, rec := range records {
		if !store.Exists(rec.Name) {
			store.Define(rec.Name, rec.Value)
		} else if ierr := store.Install(rec.Name, rec.Value); ierr != nil {
			return applied, uint64(applied) + 1, ierr
		}
		applied++
	}
	return applied, uint64(applied) + 1, err
}

// byteReader adds ReadByte (required by binary.Read to avoid
// over-reading) and a consumed-byte count.
type byteReader struct {
	r   io.Reader
	sum int64
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.sum += int64(n)
	return n, err
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	b.sum++
	return b.one[0], nil
}
