package wal

import (
	"bytes"
	"testing"
)

// TestScanResumesMidSequence: a post-rotation segment starts at
// whatever sequence number the global counter had reached — Scan must
// accept a file whose first record is deep into the sequence space,
// with gaps (other shards own the missing numbers).
func TestScanResumesMidSequence(t *testing.T) {
	var buf []byte
	seqs := []uint64{1000, 1001, 1005, 1100}
	for _, seq := range seqs {
		buf = AppendRecord(buf, "e0", int64(seq), seq)
	}
	recs, goodOff, err := Scan(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if goodOff != int64(len(buf)) {
		t.Fatalf("goodOff = %d, want %d", goodOff, len(buf))
	}
	if len(recs) != len(seqs) {
		t.Fatalf("records = %d, want %d", len(recs), len(seqs))
	}
	for i, r := range recs {
		if r.Seq != seqs[i] {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, seqs[i])
		}
	}
}

// TestScanMidSequenceTornTail: the torn-tail discipline holds for
// mid-sequence segments too — damage truncates to the clean prefix,
// it does not reject the whole file.
func TestScanMidSequenceTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, "e0", 1, 500)
	buf = AppendRecord(buf, "e1", 2, 501)
	clean := len(buf)
	buf = AppendRecord(buf, "e2", 3, 502)
	torn := buf[:len(buf)-5]

	recs, goodOff, err := Scan(bytes.NewReader(torn))
	if err == nil {
		t.Fatal("torn tail not reported")
	}
	if goodOff != int64(clean) {
		t.Fatalf("goodOff = %d, want %d", goodOff, clean)
	}
	if len(recs) != 2 || recs[1].Seq != 501 {
		t.Fatalf("clean prefix = %+v", recs)
	}
}
