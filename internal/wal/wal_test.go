package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	wants := []Record{
		{Name: "a", Value: 42, Seq: 1},
		{Name: "long-entity-name", Value: -7, Seq: 2},
		{Name: "", Value: 0, Seq: 3},
	}
	for _, r := range wants {
		seq, err := w.Append(r.Name, r.Value)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.Seq {
			t.Errorf("seq = %d, want %d", seq, r.Seq)
		}
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Error("byte accounting")
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wants) {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		if r != wants[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, wants[i])
		}
	}
}

func TestTornTailTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	for i := 0; i < 5; i++ {
		if _, err := w.Append("e", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	for cut := 1; cut < 20; cut++ {
		torn := full[:len(full)-cut]
		got, err := ReadAll(bytes.NewReader(torn))
		if err == nil {
			// A cut landing exactly on a record boundary reads clean.
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if len(got) > 4 {
			t.Fatalf("cut %d: kept %d records from a torn 5-record log", cut, len(got))
		}
		for i, r := range got {
			if r.Seq != uint64(i+1) {
				t.Fatalf("cut %d: bad prefix %+v", cut, got)
			}
		}
	}
}

func TestBitFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	for i := 0; i < 4; i++ {
		if _, err := w.Append("entity", int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		flipAt := rng.Intn(len(data))
		corrupted := append([]byte(nil), data...)
		corrupted[flipAt] ^= 1 << uint(rng.Intn(8))
		got, err := ReadAll(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("flip at %d undetected", flipAt)
		}
		// The prefix before the damaged record must be intact.
		for i, r := range got {
			if r.Seq != uint64(i+1) || r.Value != int64(100+i) {
				t.Fatalf("flip at %d: prefix damaged: %+v", flipAt, got)
			}
		}
	}
}

func TestSequenceGapDetected(t *testing.T) {
	var b1, b2 bytes.Buffer
	w1 := NewWriter(&b1, 1)
	if _, err := w1.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	w3 := NewWriter(&b2, 3) // skips seq 2
	if _, err := w3.Append("a", 3); err != nil {
		t.Fatal(err)
	}
	combined := append(b1.Bytes(), b2.Bytes()...)
	got, err := ReadAll(bytes.NewReader(combined))
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap undetected: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("prefix = %d records", len(got))
	}
}

// TestRecoveryMatchesFinalState: run a deadlocking workload with the
// WAL attached, then rebuild the database from the initial snapshot
// plus the log and compare — the durability contract.
func TestRecoveryMatchesFinalState(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		var buf bytes.Buffer
		w := sim.Generate(sim.GenConfig{
			Txns: 10, DBSize: 10, HotSet: 5, HotProb: 0.8,
			LocksPerTxn: 4, RewriteProb: 0.5, Shape: sim.Mixed, Seed: 6,
		})
		store := w.NewStore()
		writer := NewWriter(&buf, 1)
		errc := writer.Attach(store)

		sys := core.New(core.Config{Store: store, Strategy: strat, Policy: deadlock.OrderedMinCost{}})
		for _, p := range w.Programs {
			if _, err := sys.Register(p); err != nil {
				t.Fatal(err)
			}
		}
		for !sys.AllCommitted() {
			for _, id := range sys.Runnable() {
				if _, err := sys.Step(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
		}

		// Recover onto a fresh initial store.
		recovered := w.NewStore()
		applied, nextSeq, damage := Recover(bytes.NewReader(buf.Bytes()), recovered)
		if damage != nil {
			t.Fatalf("%v: clean log reported damage: %v", strat, damage)
		}
		if applied == 0 {
			t.Fatalf("%v: nothing logged", strat)
		}
		if nextSeq != uint64(applied)+1 {
			t.Errorf("next seq = %d", nextSeq)
		}
		want := store.Snapshot()
		got := recovered.Snapshot()
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%v: recovered %q = %d, want %d", strat, k, got[k], v)
			}
		}
	}
}

// TestCrashMidRunRecoversPrefix: stop the engine mid-flight, "crash"
// with a torn final record, and verify recovery reproduces a consistent
// prefix of installs.
func TestCrashMidRunRecoversPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := sim.BankingWorkload(6, 30, 500, 4)
	store := w.NewStore()
	writer := NewWriter(&buf, 1)
	writer.Attach(store)
	sys := core.New(core.Config{Store: store, Strategy: core.MCS})
	for _, p := range w.Programs {
		if _, err := sys.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	// Run roughly half way.
	for steps := 0; steps < 300 && !sys.AllCommitted(); steps++ {
		for _, id := range sys.Runnable() {
			if _, err := sys.Step(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	logBytes := buf.Bytes()
	if len(logBytes) == 0 {
		t.Skip("no installs before crash point")
	}
	torn := logBytes[:len(logBytes)-3] // tear the tail
	recovered := w.NewStore()
	applied, _, damage := Recover(bytes.NewReader(torn), recovered)
	if damage == nil {
		t.Log("tear landed on a record boundary; prefix is the whole log")
	}
	// Whatever was applied must be a prefix of the actual install
	// stream: re-read the intact log and compare the first `applied`.
	all, err := ReadAll(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if applied > len(all) {
		t.Fatalf("applied %d > logged %d", applied, len(all))
	}
	check := w.NewStore()
	for _, r := range all[:applied] {
		_ = check.Install(r.Name, r.Value)
	}
	for k, v := range check.Snapshot() {
		if got := recovered.MustGet(k); got != v {
			t.Errorf("recovered %q = %d, want %d", k, got, v)
		}
	}
}

func TestAttachHookOrder(t *testing.T) {
	var buf bytes.Buffer
	store := entity.NewStore(map[string]int64{"a": 1})
	writer := NewWriter(&buf, 1)
	writer.Attach(store)
	if err := store.Install("a", 9); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 1 || recs[0].Value != 9 {
		t.Fatalf("hook did not log: %v %v", recs, err)
	}
	store.SetInstallHook(nil)
	if err := store.Install("a", 10); err != nil {
		t.Fatal(err)
	}
	recs, _ = ReadAll(bytes.NewReader(buf.Bytes()))
	if len(recs) != 1 {
		t.Error("cleared hook still logging")
	}
}

// FuzzReadAllNeverPanics: arbitrary bytes must never panic the reader,
// and any records returned must be a valid in-sequence prefix.
func FuzzReadAllNeverPanics(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	_, _ = w.Append("a", 1)
	_, _ = w.Append("b", -2)
	f.Add(buf.Bytes())
	f.Add([]byte{0x52, 0x50, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := ReadAll(bytes.NewReader(data))
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("out-of-sequence prefix: %+v", recs)
			}
		}
	})
}
