// Package optimizer implements the compile-time transaction
// optimization §5 anticipates: "These relationships between the
// structure of transactions and their efficiency ... raise interesting
// possibilities for the optimization of transactions ... perhaps at the
// time of their compilation."
//
// ClusterWrites rewrites a program so its entity writes execute as late
// as data dependencies allow — after the final lock request when
// possible, yielding the three-phase acquire/update/release form whose
// lock states are all well-defined under the single-copy strategy. The
// transformation is conservative: a write moves only when doing so
// provably preserves the program's semantics when run alone (and hence,
// by serializability, in any execution).
package optimizer

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
)

// Result reports one transformation.
type Result struct {
	// Program is the rewritten program (the original if nothing moved).
	Program *txn.Program
	// MovedWrites counts entity writes relocated after the last lock;
	// MovedComputes counts relocated local assignments (rollback tracks
	// locals too, so a cross-interval accumulator is as damaging as a
	// scattered entity write).
	MovedWrites   int
	MovedComputes int
	// KeptWrites counts entity writes left in place (a later operation
	// depends on them or on their operands).
	KeptWrites int
}

// dest returns the op's assignment target ("e:" entity or "l:" local),
// or "" if it assigns nothing movable-relevant.
func dest(op txn.Op) string {
	switch op.Kind {
	case txn.OpWrite:
		return "e:" + op.Entity
	case txn.OpCompute, txn.OpRead:
		return "l:" + op.Local
	}
	return ""
}

// reads returns the set of targets the op reads.
func reads(op txn.Op) map[string]bool {
	out := map[string]bool{}
	switch op.Kind {
	case txn.OpWrite, txn.OpCompute:
		for _, r := range op.Expr.Refs(nil) {
			out["l:"+r] = true
		}
	case txn.OpRead:
		out["e:"+op.Entity] = true
	}
	return out
}

// ClusterWrites moves every eligible Write and Compute after the
// program's final lock request and inserts a DeclareLastLock before the
// moved block, preserving semantics:
//
//   - programs containing Unlock are left untouched (the installed
//     value must be final at unlock time, pinning write positions);
//   - Read operations never move (their value depends on global/copy
//     state at their position);
//   - an op may move only if every later reader and writer of its
//     destination also moves (otherwise they would observe or override
//     the wrong value), and no *kept* later op assigns one of its
//     operands (moved assigners retain their relative order in the
//     tail, so they are safe);
//   - all writers of a destination move together or not at all: a Read
//     pins every Compute into its local, and a kept early write pins
//     later ones. This keeps the transformation *monotone* — each
//     target's writes end up either unchanged or confined to the final
//     lock interval, so the set of destroyed lock states can only
//     shrink (a property the fuzzer checks).
//
// The rules form a shrinking fixed point: start with all Writes and
// Computes eligible and remove violators until stable.
func ClusterWrites(p *txn.Program) (Result, error) {
	if err := txn.Validate(p); err != nil {
		return Result{}, fmt.Errorf("optimizer: %w", err)
	}
	for _, op := range p.Ops {
		if op.Kind == txn.OpUnlock {
			return Result{Program: p, KeptWrites: countWrites(p)}, nil
		}
	}

	n := len(p.Ops)
	movable := make([]bool, n)
	for i, op := range p.Ops {
		movable[i] = op.Kind == txn.OpWrite || op.Kind == txn.OpCompute
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !movable[i] {
				continue
			}
			op := p.Ops[i]
			d := dest(op)
			operands := reads(op)
			ok := true
			for j := i + 1; j < n && ok; j++ {
				later := p.Ops[j]
				laterDest := dest(later)
				laterReads := reads(later)
				if !movable[j] {
					// A kept later op must not read or rewrite our
					// destination, nor assign our operands.
					if laterReads[d] || laterDest == d || operands[laterDest] {
						ok = false
					}
				}
			}
			if !ok {
				movable[i] = false
				changed = true
			}
		}
		// All-or-nothing per destination: if any writer of a target is
		// pinned (including Reads, which never move), pin them all.
		pinned := map[string]bool{}
		for i, op := range p.Ops {
			if d := dest(op); d != "" && !movable[i] {
				pinned[d] = true
			}
		}
		for i, op := range p.Ops {
			if d := dest(op); d != "" && movable[i] && pinned[d] {
				movable[i] = false
				changed = true
			}
		}
	}

	res := Result{}
	var kept, tail []txn.Op
	for i, op := range p.Ops {
		switch {
		case op.Kind == txn.OpCommit || op.Kind == txn.OpDeclareLastLock:
			// Re-appended below.
		case movable[i]:
			tail = append(tail, op)
			if op.Kind == txn.OpWrite {
				res.MovedWrites++
			} else {
				res.MovedComputes++
			}
		default:
			if op.Kind == txn.OpWrite {
				res.KeptWrites++
			}
			kept = append(kept, op)
		}
	}
	if res.MovedWrites == 0 && res.MovedComputes == 0 {
		res.Program = p
		return res, nil
	}
	out := &txn.Program{
		Name:   p.Name + "+clustered",
		Locals: map[string]int64{},
	}
	for k, v := range p.Locals {
		out.Locals[k] = v
	}
	out.Ops = append(out.Ops, kept...)
	out.Ops = append(out.Ops, txn.Op{Kind: txn.OpDeclareLastLock})
	out.Ops = append(out.Ops, tail...)
	out.Ops = append(out.Ops, txn.Op{Kind: txn.OpCommit})
	if err := txn.Validate(out); err != nil {
		return Result{}, fmt.Errorf("optimizer: transformed program invalid: %w", err)
	}
	res.Program = out
	return res, nil
}

func countWrites(p *txn.Program) int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == txn.OpWrite {
			n++
		}
	}
	return n
}

// Equivalent runs both programs alone on fresh stores (from newStore)
// and reports whether they leave identical database states — the
// single-transaction semantic-preservation check. By the engine's
// serializability guarantee, solo equivalence extends to every
// concurrent execution.
func Equivalent(a, b *txn.Program, newStore func() *entity.Store) (bool, error) {
	snapA, err := runAlone(a, newStore())
	if err != nil {
		return false, err
	}
	snapB, err := runAlone(b, newStore())
	if err != nil {
		return false, err
	}
	if len(snapA) != len(snapB) {
		return false, nil
	}
	for k, v := range snapA {
		if snapB[k] != v {
			return false, nil
		}
	}
	return true, nil
}

func runAlone(p *txn.Program, store *entity.Store) (map[string]int64, error) {
	s := core.New(core.Config{Store: store, Strategy: core.Total})
	id, err := s.Register(p.Clone())
	if err != nil {
		return nil, err
	}
	for i := 0; i < 1_000_000; i++ {
		res, err := s.Step(id)
		if err != nil {
			return nil, err
		}
		if res.Outcome == core.Committed {
			return store.Snapshot(), nil
		}
		if res.Outcome != core.Progressed {
			return nil, fmt.Errorf("optimizer: solo run blocked (%v)", res.Outcome)
		}
	}
	return nil, fmt.Errorf("optimizer: solo run did not terminate")
}
