package optimizer

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

func storeABC() func() *entity.Store {
	return func() *entity.Store {
		return entity.NewStore(map[string]int64{"A": 3, "B": 5, "C": 7})
	}
}

func TestMovesIndependentWrites(t *testing.T) {
	p := txn.NewProgram("T").
		Local("a", 0).Local("b", 0).
		LockX("A").Read("A", "a").
		Write("A", value.Add(value.L("a"), value.C(1))).
		LockX("B").Read("B", "b").
		Write("A", value.Add(value.L("a"), value.C(2))). // scatters A
		Write("B", value.Add(value.L("b"), value.C(1))).
		MustBuild()
	before := txn.Analyze(p).WellDefinedCount()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedWrites != 3 {
		t.Errorf("moved = %d, want 3", res.MovedWrites)
	}
	if !txn.IsThreePhase(res.Program) {
		t.Error("fully movable program should become three-phase")
	}
	after := txn.Analyze(res.Program).WellDefinedCount()
	if after <= before {
		t.Errorf("well-defined count %d -> %d", before, after)
	}
	ok, err := Equivalent(p, res.Program, storeABC())
	if err != nil || !ok {
		t.Errorf("not equivalent: %v", err)
	}
}

func TestKeepsWriteReadLater(t *testing.T) {
	// A is written, then re-read: the write must stay.
	p := txn.NewProgram("T").
		Local("a", 0).Local("b", 0).
		LockX("A").Read("A", "a").
		Write("A", value.Add(value.L("a"), value.C(1))).
		LockX("B").
		Read("A", "b"). // observes the write
		Write("B", value.L("b")).
		MustBuild()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptWrites != 1 {
		t.Errorf("kept = %d, want 1 (write to A)", res.KeptWrites)
	}
	if res.MovedWrites != 1 {
		t.Errorf("moved = %d, want 1 (write to B)", res.MovedWrites)
	}
	ok, err := Equivalent(p, res.Program, storeABC())
	if err != nil || !ok {
		t.Errorf("not equivalent: %v", err)
	}
}

func TestKeepsWriteWhoseOperandIsReassignedByKeptOp(t *testing.T) {
	// Write(A, a) followed by Read(C, a): the read reassigns the
	// write's operand and reads never move, so the write must stay.
	p := txn.NewProgram("T").
		Local("a", 0).
		LockX("A").Read("A", "a").
		LockX("C").
		Write("A", value.Add(value.L("a"), value.C(1))).
		Read("C", "a").
		Write("C", value.L("a")).
		MustBuild()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeptWrites != 1 {
		t.Errorf("kept = %d, want 1 (write to A)", res.KeptWrites)
	}
	ok, err := Equivalent(p, res.Program, storeABC())
	if err != nil || !ok {
		t.Errorf("not equivalent: %v", err)
	}
}

func TestSameEntityWriteOrderPreserved(t *testing.T) {
	// Both writes to A movable: relative order must survive so the
	// final value is the second write's.
	p := txn.NewProgram("T").
		Local("a", 0).
		LockX("A").Read("A", "a").
		Write("A", value.C(10)).
		LockX("B").
		Write("A", value.C(20)).
		MustBuild()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Equivalent(p, res.Program, storeABC())
	if err != nil || !ok {
		t.Error("order not preserved")
	}
}

func TestUnlockingProgramsUntouched(t *testing.T) {
	p := txn.NewProgram("T").
		Local("a", 0).
		LockX("A").Read("A", "a").
		Write("A", value.Add(value.L("a"), value.C(1))).
		Unlock("A").
		MustBuild()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != p || res.MovedWrites != 0 {
		t.Error("shrink-phase program must be left untouched")
	}
}

func TestComputeChainMoves(t *testing.T) {
	// A cross-interval accumulator (the §5 anti-pattern) moves wholesale.
	p := txn.NewProgram("T").
		Local("acc", 0).Local("a", 0).Local("b", 0).
		LockX("A").Read("A", "a").
		Compute("acc", value.Add(value.L("acc"), value.L("a"))).
		LockX("B").Read("B", "b").
		Compute("acc", value.Add(value.L("acc"), value.L("b"))).
		LockX("C").
		Write("C", value.L("acc")).
		MustBuild()
	if txn.Analyze(p).WellDefinedCount() == 4 {
		t.Fatal("test premise: accumulator should destroy states")
	}
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedComputes != 2 {
		t.Errorf("moved computes = %d, want 2", res.MovedComputes)
	}
	a := txn.Analyze(res.Program)
	if a.WellDefinedCount() != a.NumLocks()+1 {
		t.Errorf("optimized program still destroys states: %v", a.StaticWellDefined())
	}
	ok, err := Equivalent(p, res.Program, storeABC())
	if err != nil || !ok {
		t.Errorf("not equivalent: %v", err)
	}
}

func TestNothingToMoveReturnsOriginal(t *testing.T) {
	p := txn.NewProgram("T").
		Local("a", 0).
		LockX("A").Read("A", "a").
		MustBuild()
	res, err := ClusterWrites(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != p {
		t.Error("read-only program should be returned unchanged")
	}
}

// TestPropertyGeneratedWorkloadsEquivalent transforms every generated
// program across shapes and seeds and verifies solo-run equivalence —
// the optimizer's central safety property.
func TestPropertyGeneratedWorkloadsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, shape := range []sim.WriteShape{sim.Scattered, sim.Clustered, sim.Mixed} {
			w := sim.Generate(sim.GenConfig{
				Txns: 6, DBSize: 10, LocksPerTxn: 5,
				SharedProb: 0.2, RewriteProb: 0.7, PadOps: 2,
				Shape: shape, Seed: seed,
			})
			for _, p := range w.Programs {
				res, err := ClusterWrites(p)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, shape, p.Name, err)
				}
				ok, err := Equivalent(p, res.Program, w.NewStore)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, shape, p.Name, err)
				}
				if !ok {
					t.Errorf("seed %d %s: %s transformation changed semantics", seed, shape, p.Name)
				}
				after := txn.Analyze(res.Program)
				before := txn.Analyze(p)
				if after.WellDefinedCount() < before.WellDefinedCount() {
					t.Errorf("seed %d %s: %s lost well-defined states", seed, shape, p.Name)
				}
			}
		}
	}
}
