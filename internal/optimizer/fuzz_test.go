package optimizer

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// fuzzProgram decodes bytes into a valid program (mirrors the core
// fuzzer's encoding, without unlocks so more programs transform).
func fuzzProgram(data []byte) (*txn.Program, bool) {
	b := txn.NewProgram("F").
		Local("l0", 1).Local("l1", 2)
	entities := []string{"a", "b", "c", "d"}
	locals := []string{"l0", "l1"}
	locked := map[string]bool{}
	didLock := false
	for i := 0; i+1 < len(data); i += 2 {
		op := data[i] % 5
		arg := int(data[i+1])
		ent := entities[arg%len(entities)]
		loc := locals[arg%len(locals)]
		switch op {
		case 0:
			if locked[ent] {
				continue
			}
			b.LockX(ent)
			locked[ent] = true
			didLock = true
		case 1:
			if locked[ent] {
				continue
			}
			b.LockS(ent)
			locked[ent] = true
			didLock = true
		case 2:
			if !locked[ent] {
				continue
			}
			b.Read(ent, loc)
		case 3:
			if !locked[ent] || !didLock {
				continue
			}
			b.Write(ent, value.Add(value.L("l0"), value.Add(value.L("l1"), value.C(int64(arg)))))
		case 4:
			if !didLock {
				continue
			}
			b.Compute(loc, value.Add(value.L(loc), value.L(locals[(arg+1)%len(locals)])))
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, false
	}
	return p, true
}

// FuzzClusterWritesPreservesSemantics: for any valid program, the
// transformed program must validate, never lose well-defined states,
// and compute identical final database values when run alone.
func FuzzClusterWritesPreservesSemantics(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 1, 0, 1, 3, 0})
	f.Add([]byte{0, 0, 4, 0, 0, 1, 4, 1, 3, 0, 3, 1})
	f.Add([]byte{1, 0, 2, 0, 0, 1, 3, 1, 2, 1, 4, 0})
	newStore := func() *entity.Store {
		return entity.NewStore(map[string]int64{"a": 5, "b": 6, "c": 7, "d": 8})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := fuzzProgram(data)
		if !ok {
			t.Skip()
		}
		res, err := ClusterWrites(p)
		if err != nil {
			t.Fatalf("transform failed on valid program: %v\n%s", err, p)
		}
		if err := txn.Validate(res.Program); err != nil {
			t.Fatalf("transformed program invalid: %v", err)
		}
		before := txn.Analyze(p).WellDefinedCount()
		after := txn.Analyze(res.Program).WellDefinedCount()
		if after < before {
			t.Fatalf("well-defined count regressed %d -> %d\noriginal:\n%s\ntransformed:\n%s",
				before, after, p, res.Program)
		}
		equiv, err := Equivalent(p, res.Program, newStore)
		if err != nil {
			t.Fatal(err)
		}
		if !equiv {
			t.Fatalf("semantics changed\noriginal:\n%s\ntransformed:\n%s", p, res.Program)
		}
	})
}
