package mcs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"partialrollback/internal/intern"
)

func TestBasicStackLifecycle(t *testing.T) {
	c := New(map[string]int64{"l": 7})
	if v, ok := c.LocalValue("l"); !ok || v != 7 {
		t.Error("initial local")
	}
	c.OnLock("a", true, 100) // lock index 0 -> 1
	if v, ok := c.EntityValue("a"); !ok || v != 100 {
		t.Error("bottom element must be the global value")
	}
	if err := c.WriteEntity("a", 101); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteEntity("a", 102); err != nil {
		t.Fatal(err)
	}
	// Two writes in the same lock interval update in place.
	if e, _ := c.SpaceUsed(); e != 2 {
		t.Errorf("entity elems = %d, want 2 (bottom + one interval)", e)
	}
	c.OnLock("b", true, 200) // lock index 1 -> 2
	if err := c.WriteEntity("a", 103); err != nil {
		t.Fatal(err)
	}
	if e, _ := c.SpaceUsed(); e != 4 {
		t.Errorf("entity elems = %d, want 4", e)
	}
	if v, _ := c.EntityValue("a"); v != 103 {
		t.Error("current value")
	}
	// Rollback to lock state 1: b's stack dropped (index 1 >= 1), a's
	// write at lock index 2 popped; writes at lock index 1 survive.
	c.Rollback(1)
	if v, _ := c.EntityValue("a"); v != 102 {
		t.Errorf("a = %d, want 102 (last write at lock index 1)", v)
	}
	if _, ok := c.EntityValue("b"); ok {
		t.Error("b should be gone")
	}
	// Rollback to 0: a dropped too.
	c.Rollback(0)
	if _, ok := c.EntityValue("a"); ok {
		t.Error("a should be gone after rollback to 0")
	}
	if v, _ := c.LocalValue("l"); v != 7 {
		t.Error("local must return to initial")
	}
}

func TestSharedLocksCreateNoStack(t *testing.T) {
	c := New(nil)
	c.OnLock("s", false, 0)
	if _, ok := c.EntityValue("s"); ok {
		t.Error("shared entity should have no stack")
	}
	if c.LockIndex() != 1 {
		t.Error("lock index must advance for shared locks too")
	}
	if err := c.WriteEntity("s", 1); err == nil {
		t.Error("write to shared entity must fail")
	}
}

func TestLocalWrites(t *testing.T) {
	c := New(map[string]int64{"x": 0})
	c.OnLock("a", true, 0)
	if err := c.WriteLocal("x", 5); err != nil {
		t.Fatal(err)
	}
	c.OnLock("b", true, 0)
	if err := c.WriteLocal("x", 9); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteLocal("zz", 1); err == nil {
		t.Error("undeclared local must fail")
	}
	c.Rollback(1)
	if v, _ := c.LocalValue("x"); v != 5 {
		t.Errorf("x = %d, want 5", v)
	}
	locals := c.Locals()
	if locals["x"] != 5 {
		t.Error("Locals snapshot")
	}
}

func TestOnUnlockDiscards(t *testing.T) {
	c := New(nil)
	c.OnLock("a", true, 1)
	c.OnUnlock("a")
	if _, ok := c.EntityValue("a"); ok {
		t.Error("unlock should free the stack")
	}
}

func TestRollbackBoundsPanics(t *testing.T) {
	c := New(nil)
	c.OnLock("a", true, 0)
	for _, q := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rollback(%d) should panic", q)
				}
			}()
			c.Rollback(q)
		}()
	}
}

// oracle replays a trace prefix directly: opLock / opWriteE / opWriteL.
type traceOp struct {
	kind   int // 0 lock, 1 entity write, 2 local write
	target string
	val    int64
}

// replay computes entity local copies and locals after executing the
// prefix of ops up to (but not including) the first op with lock index
// > q... more precisely: state at lock state q = all ops before the
// (q+1)-th lock.
func replay(initLocals map[string]int64, globals map[string]int64, ops []traceOp, q int) (map[string]int64, map[string]int64) {
	locals := map[string]int64{}
	for k, v := range initLocals {
		locals[k] = v
	}
	copies := map[string]int64{}
	locks := 0
	for _, op := range ops {
		if op.kind == 0 {
			if locks == q {
				break
			}
			locks++
			copies[op.target] = globals[op.target]
			continue
		}
		if op.kind == 1 {
			copies[op.target] = op.val
		} else {
			locals[op.target] = op.val
		}
	}
	return copies, locals
}

// TestQuickRollbackMatchesReplay: after any random sequence of locks
// and writes, rolling back to any lock state q yields exactly the
// values a fresh execution of the prefix would produce — the paper's
// definition of a correct rollback.
func TestQuickRollbackMatchesReplay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		initLocals := map[string]int64{"u": int64(rng.Intn(10)), "w": int64(rng.Intn(10))}
		globals := map[string]int64{}
		c := New(initLocals)
		var ops []traceOp
		nLocks := 0
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				name := fmt.Sprintf("e%d", nLocks)
				globals[name] = int64(rng.Intn(100))
				c.OnLock(name, true, globals[name])
				ops = append(ops, traceOp{kind: 0, target: name})
				nLocks++
			case 1:
				if nLocks == 0 {
					continue
				}
				name := fmt.Sprintf("e%d", rng.Intn(nLocks))
				v := int64(rng.Intn(1000))
				if err := c.WriteEntity(name, v); err != nil {
					return false
				}
				ops = append(ops, traceOp{kind: 1, target: name, val: v})
			case 2:
				if nLocks == 0 {
					continue // no writes before first lock
				}
				name := "u"
				if rng.Intn(2) == 0 {
					name = "w"
				}
				v := int64(rng.Intn(1000))
				if err := c.WriteLocal(name, v); err != nil {
					return false
				}
				ops = append(ops, traceOp{kind: 2, target: name, val: v})
			}
		}
		if nLocks == 0 {
			return true
		}
		q := rng.Intn(nLocks + 1)
		c.Rollback(q)
		wantCopies, wantLocals := replay(initLocals, globals, ops, q)
		for name, want := range wantCopies {
			got, ok := c.EntityValue(name)
			if !ok || got != want {
				return false
			}
		}
		for name, want := range wantLocals {
			got, ok := c.LocalValue(name)
			if !ok || got != want {
				return false
			}
		}
		// No extra surviving entities.
		e, _ := c.SpaceUsed()
		total := 0
		for name := range wantCopies {
			_ = name
			total++
		}
		return c.LockIndex() == q && e >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpaceBound: Theorem 3's bound holds for arbitrary write
// patterns, not just the adversarial one. The theorem counts writes
// between lock requests; writes in the interval after the final lock
// request (which §5 notes need no monitoring at all) can add one more
// element per stack, hence the +n and +1-per-local slack here.
func TestQuickSpaceBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locals := map[string]int64{"l1": 0, "l2": 0}
		c := New(locals)
		n := 1 + rng.Intn(12)
		for k := 0; k < n; k++ {
			c.OnLock(fmt.Sprintf("e%d", k), true, 0)
			for w := 0; w < rng.Intn(5); w++ {
				_ = c.WriteEntity(fmt.Sprintf("e%d", rng.Intn(k+1)), int64(w))
				_ = c.WriteLocal("l1", int64(w))
				_ = c.WriteLocal("l2", int64(w))
			}
		}
		e, l := c.PeakSpace()
		return e <= n*(n+1)/2+n && l <= 2*(n+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleRollbacks(t *testing.T) {
	c := New(map[string]int64{"x": 0})
	c.OnLock("a", true, 10)
	_ = c.WriteEntity("a", 11)
	_ = c.WriteLocal("x", 1)
	c.OnLock("b", true, 20)
	_ = c.WriteEntity("a", 12)
	_ = c.WriteLocal("x", 2)
	c.Rollback(1)
	// Re-execute differently: lock c instead of b.
	c.OnLock("c", true, 30)
	_ = c.WriteEntity("c", 31)
	_ = c.WriteLocal("x", 3)
	if v, _ := c.EntityValue("a"); v != 11 {
		t.Errorf("a = %d", v)
	}
	c.Rollback(1)
	if v, _ := c.EntityValue("a"); v != 11 {
		t.Errorf("a after second rollback = %d", v)
	}
	if v, _ := c.LocalValue("x"); v != 1 {
		t.Errorf("x = %d", v)
	}
	if _, ok := c.EntityValue("c"); ok {
		t.Error("c must be dropped")
	}
}

func TestSlotAPIAndIncrementalPeaks(t *testing.T) {
	names := intern.NewTable()
	c := NewSlots(names, []string{"x", "y"}, []int64{5, 6})
	a := names.Intern("a")
	c.OnLockID(a, true, 100)
	if err := c.WriteEntityID(a, 101); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteLocalSlot(0, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.LocalValueSlot(0); !ok || v != 50 {
		t.Fatalf("LocalValueSlot(0) = %d,%v, want 50", v, ok)
	}
	if v, ok := c.LocalValue("x"); !ok || v != 50 {
		t.Fatalf("string view LocalValue(x) = %d,%v, want 50", v, ok)
	}
	if v, ok := c.EntityValueID(a); !ok || v != 101 {
		t.Fatalf("EntityValueID = %d,%v, want 101", v, ok)
	}
	// Incremental counters must agree with a by-hand count: entity
	// stack has bottom(100)+write(101)=2; locals x has init+write=2,
	// y has init=1.
	e, l := c.SpaceUsed()
	if e != 2 || l != 3 {
		t.Fatalf("SpaceUsed = %d,%d, want 2,3", e, l)
	}
	pe, pl := c.PeakSpace()
	if pe != 2 || pl != 3 {
		t.Fatalf("PeakSpace = %d,%d, want 2,3", pe, pl)
	}
	c.Rollback(0)
	if e, l := c.SpaceUsed(); e != 0 || l != 2 {
		t.Fatalf("after rollback SpaceUsed = %d,%d, want 0,2", e, l)
	}
	if pe, pl := c.PeakSpace(); pe != 2 || pl != 3 {
		t.Fatalf("peaks moved on rollback: %d,%d", pe, pl)
	}
	if got := c.CopyLocalsInto(nil); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("CopyLocalsInto after rollback = %v, want [5 6]", got)
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	names := intern.NewTable()
	c := NewSlots(names, []string{"x"}, []int64{0})
	a := names.Intern("a")
	if n := testing.AllocsPerRun(200, func() {
		c.OnLockID(a, true, 1)
		if err := c.WriteEntityID(a, 2); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteLocalSlot(0, 3); err != nil {
			t.Fatal(err)
		}
		c.Rollback(0)
	}); n != 0 {
		t.Fatalf("mcs lock/write/rollback cycle allocates %v per run, want 0", n)
	}
}
