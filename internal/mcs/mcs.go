// Package mcs implements the paper's multi-lock copy strategy (§4):
// the rollback bookkeeping that lets a transaction be rolled back to
// *any* of its lock states.
//
// For every exclusively locked entity the transaction keeps a stack of
// (value, lock index) elements; the bottom element is the entity's
// global value, pushed when the lock was granted. Each local variable
// likewise has a stack whose bottom is its initial value. A write at
// lock index j pushes a new element when the top's index is below j and
// overwrites the top's value otherwise, so the stack holds exactly one
// element per lock interval in which the target was written — the value
// the target had at each subsequent lock state.
//
// Rollback to lock state q deletes the stacks of entities locked after
// q and pops every element with lock index > q from the surviving
// stacks, leaving each top equal to the target's value at state q.
//
// Theorem 3: with n held locks there can be at most n(n+1)/2 stack
// elements for global entities and n per local variable. The package
// exposes exact space accounting so the bound is measurable (experiment
// E7).
package mcs

import (
	"fmt"
	"sort"
)

type elem struct {
	value     int64
	lockIndex int
}

type stack struct {
	// index is the stack's own index: the lock index of the lock state
	// the stack is associated with (entity stacks), or 0 (local
	// variable stacks).
	index int
	elems []elem
}

func (s *stack) top() *elem { return &s.elems[len(s.elems)-1] }

// Copies is the per-transaction MCS state. The zero value is not
// usable; call New.
type Copies struct {
	entities map[string]*stack
	locals   map[string]*stack
	// lockIndex is the number of lock requests the transaction has
	// executed; writes occurring now have this lock index.
	lockIndex int
	// peakElems tracks the high-water mark of total stack elements.
	peakEntityElems int
	peakLocalElems  int
}

// New returns MCS state for a transaction with the given local
// variables and initial values.
func New(locals map[string]int64) *Copies {
	c := &Copies{
		entities: map[string]*stack{},
		locals:   map[string]*stack{},
	}
	for name, init := range locals {
		c.locals[name] = &stack{index: 0, elems: []elem{{value: init, lockIndex: 0}}}
	}
	c.notePeak()
	return c
}

// OnLock records a granted lock request. For exclusive locks the
// entity's global value at grant time must be supplied so the new
// stack's bottom element can be created; shared locks create no stack
// (shared entities are never written). The lock index advances for both.
func (c *Copies) OnLock(entity string, exclusive bool, globalValue int64) {
	if exclusive {
		c.entities[entity] = &stack{
			index: c.lockIndex,
			elems: []elem{{value: globalValue, lockIndex: c.lockIndex}},
		}
	}
	c.lockIndex++
	c.notePeak()
}

// LockIndex returns the current lock index (number of lock requests
// executed).
func (c *Copies) LockIndex() int { return c.lockIndex }

// WriteEntity records a write of v to an exclusively locked entity.
func (c *Copies) WriteEntity(entity string, v int64) error {
	s := c.entities[entity]
	if s == nil {
		return fmt.Errorf("mcs: write to entity %q without an exclusive-lock stack", entity)
	}
	c.write(s, v)
	return nil
}

// WriteLocal records a write of v to a local variable.
func (c *Copies) WriteLocal(name string, v int64) error {
	s := c.locals[name]
	if s == nil {
		return fmt.Errorf("mcs: write to undeclared local %q", name)
	}
	c.write(s, v)
	return nil
}

func (c *Copies) write(s *stack, v int64) {
	if t := s.top(); t.lockIndex == c.lockIndex {
		t.value = v
	} else {
		s.elems = append(s.elems, elem{value: v, lockIndex: c.lockIndex})
	}
	c.notePeak()
}

// EntityValue returns the current local-copy value of an exclusively
// locked entity.
func (c *Copies) EntityValue(entity string) (int64, bool) {
	s := c.entities[entity]
	if s == nil {
		return 0, false
	}
	return s.top().value, true
}

// LocalValue returns the current value of a local variable.
func (c *Copies) LocalValue(name string) (int64, bool) {
	s := c.locals[name]
	if s == nil {
		return 0, false
	}
	return s.top().value, true
}

// Locals returns a snapshot of current local-variable values.
func (c *Copies) Locals() map[string]int64 {
	out := make(map[string]int64, len(c.locals))
	for name, s := range c.locals {
		out[name] = s.top().value
	}
	return out
}

// OnUnlock discards the stack for entity (its top value has been
// installed globally by the caller). Per the paper's model the
// transaction is never rolled back after its first unlock, so the
// stack is simply returned to free storage.
func (c *Copies) OnUnlock(entity string) {
	delete(c.entities, entity)
}

// Rollback restores the MCS state to lock state q: stacks of entities
// locked at or after q are deleted (the caller releases those locks),
// and elements with lock index > q are popped everywhere else. It
// returns the names of the entity stacks deleted, sorted.
func (c *Copies) Rollback(q int) []string {
	if q < 0 || q > c.lockIndex {
		panic(fmt.Sprintf("mcs: rollback to lock state %d outside [0, %d]", q, c.lockIndex))
	}
	var dropped []string
	for name, s := range c.entities {
		if s.index >= q {
			delete(c.entities, name)
			dropped = append(dropped, name)
		}
	}
	for _, s := range c.entities {
		c.pop(s, q)
	}
	for _, s := range c.locals {
		c.pop(s, q)
	}
	c.lockIndex = q
	sort.Strings(dropped)
	return dropped
}

func (c *Copies) pop(s *stack, q int) {
	for len(s.elems) > 1 && s.top().lockIndex > q {
		s.elems = s.elems[:len(s.elems)-1]
	}
}

// SpaceUsed returns the current number of stack elements held for
// global entities and for local variables.
func (c *Copies) SpaceUsed() (entityElems, localElems int) {
	for _, s := range c.entities {
		entityElems += len(s.elems)
	}
	for _, s := range c.locals {
		localElems += len(s.elems)
	}
	return entityElems, localElems
}

// PeakSpace returns the high-water marks of SpaceUsed over the
// transaction's lifetime, for checking Theorem 3's n(n+1)/2 and n·|L|
// bounds.
func (c *Copies) PeakSpace() (entityElems, localElems int) {
	return c.peakEntityElems, c.peakLocalElems
}

func (c *Copies) notePeak() {
	e, l := c.SpaceUsed()
	if e > c.peakEntityElems {
		c.peakEntityElems = e
	}
	if l > c.peakLocalElems {
		c.peakLocalElems = l
	}
}
