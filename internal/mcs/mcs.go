// Package mcs implements the paper's multi-lock copy strategy (§4):
// the rollback bookkeeping that lets a transaction be rolled back to
// *any* of its lock states.
//
// For every exclusively locked entity the transaction keeps a stack of
// (value, lock index) elements; the bottom element is the entity's
// global value, pushed when the lock was granted. Each local variable
// likewise has a stack whose bottom is its initial value. A write at
// lock index j pushes a new element when the top's index is below j and
// overwrites the top's value otherwise, so the stack holds exactly one
// element per lock interval in which the target was written — the value
// the target had at each subsequent lock state.
//
// Rollback to lock state q deletes the stacks of entities locked after
// q and pops every element with lock index > q from the surviving
// stacks, leaving each top equal to the target's value at state q.
//
// Theorem 3: with n held locks there can be at most n(n+1)/2 stack
// elements for global entities and n per local variable. The package
// exposes exact space accounting so the bound is measurable (experiment
// E7); element counts are maintained incrementally, so the accounting
// is O(1) per write instead of a scan of every stack.
//
// Entities are identified by intern.ID and locals by dense slot index
// on the hot path (the ...ID/...Slot methods, allocation-free in steady
// state thanks to pooled element slices); the string-keyed methods are
// boundary wrappers for callers that still speak names.
package mcs

import (
	"fmt"
	"sort"

	"partialrollback/internal/intern"
)

type elem struct {
	value     int64
	lockIndex int
}

// entStack is the copy stack of one exclusively locked entity.
type entStack struct {
	ent intern.ID
	// index is the lock index of the lock state the stack is associated
	// with (when the exclusive lock was granted).
	index int
	elems []elem
}

// Copies is the per-transaction MCS state. The zero value is not
// usable; call New or NewSlots.
type Copies struct {
	names *intern.Table
	// entStacks holds the active entity stacks, scanned linearly (a
	// transaction holds few locks). localStacks is indexed by slot.
	entStacks   []entStack
	localStacks [][]elem
	localNames  []string
	localSlot   map[string]int
	freeElems   [][]elem
	// lockIndex is the number of lock requests the transaction has
	// executed; writes occurring now have this lock index.
	lockIndex int
	// Incremental element counts and their high-water marks.
	entityElems     int
	localElems      int
	peakEntityElems int
	peakLocalElems  int
}

// New returns MCS state for a transaction with the given local
// variables and initial values, using a private entity interner. Slots
// are assigned in sorted-name order.
func New(locals map[string]int64) *Copies {
	names := make([]string, 0, len(locals))
	for n := range locals {
		names = append(names, n)
	}
	sort.Strings(names)
	inits := make([]int64, len(names))
	for i, n := range names {
		inits[i] = locals[n]
	}
	return NewSlots(intern.NewTable(), names, inits)
}

// NewSlots returns MCS state with entity names interned through names
// (normally the store's shared interner) and locals pre-resolved to
// slots: localNames[s] has initial value inits[s]. This is the
// constructor the engine's hot path uses.
func NewSlots(names *intern.Table, localNames []string, inits []int64) *Copies {
	c := &Copies{
		names:       names,
		localStacks: make([][]elem, len(localNames)),
		localNames:  localNames,
		localSlot:   make(map[string]int, len(localNames)),
	}
	for s, n := range localNames {
		c.localSlot[n] = s
		c.localStacks[s] = []elem{{value: inits[s], lockIndex: 0}}
		c.localElems++
	}
	c.notePeaks()
	return c
}

func (c *Copies) notePeaks() {
	if c.entityElems > c.peakEntityElems {
		c.peakEntityElems = c.entityElems
	}
	if c.localElems > c.peakLocalElems {
		c.peakLocalElems = c.localElems
	}
}

func (c *Copies) findEnt(ent intern.ID) *entStack {
	for i := range c.entStacks {
		if c.entStacks[i].ent == ent {
			return &c.entStacks[i]
		}
	}
	return nil
}

func (c *Copies) getElems() []elem {
	if k := len(c.freeElems); k > 0 {
		e := c.freeElems[k-1]
		c.freeElems = c.freeElems[:k-1]
		return e
	}
	return nil
}

func (c *Copies) putElems(e []elem) {
	if cap(e) > 0 {
		c.freeElems = append(c.freeElems, e[:0])
	}
}

// OnLock records a granted lock request. For exclusive locks the
// entity's global value at grant time must be supplied so the new
// stack's bottom element can be created; shared locks create no stack
// (shared entities are never written). The lock index advances for both.
func (c *Copies) OnLock(entity string, exclusive bool, globalValue int64) {
	c.OnLockID(c.names.Intern(entity), exclusive, globalValue)
}

// OnLockID is OnLock by intern ID.
func (c *Copies) OnLockID(ent intern.ID, exclusive bool, globalValue int64) {
	if exclusive {
		elems := append(c.getElems(), elem{value: globalValue, lockIndex: c.lockIndex})
		c.entStacks = append(c.entStacks, entStack{ent: ent, index: c.lockIndex, elems: elems})
		c.entityElems++
	}
	c.lockIndex++
	c.notePeaks()
}

// LockIndex returns the current lock index (number of lock requests
// executed).
func (c *Copies) LockIndex() int { return c.lockIndex }

// WriteEntity records a write of v to an exclusively locked entity.
func (c *Copies) WriteEntity(entity string, v int64) error {
	ent, ok := c.names.Lookup(entity)
	if !ok {
		return fmt.Errorf("mcs: write to entity %q without an exclusive-lock stack", entity)
	}
	return c.WriteEntityID(ent, v)
}

// WriteEntityID is WriteEntity by intern ID.
func (c *Copies) WriteEntityID(ent intern.ID, v int64) error {
	s := c.findEnt(ent)
	if s == nil {
		return fmt.Errorf("mcs: write to entity %q without an exclusive-lock stack", c.names.Name(ent))
	}
	if t := &s.elems[len(s.elems)-1]; t.lockIndex == c.lockIndex {
		t.value = v
	} else {
		s.elems = append(s.elems, elem{value: v, lockIndex: c.lockIndex})
		c.entityElems++
		c.notePeaks()
	}
	return nil
}

// WriteLocal records a write of v to a local variable.
func (c *Copies) WriteLocal(name string, v int64) error {
	s, ok := c.localSlot[name]
	if !ok {
		return fmt.Errorf("mcs: write to undeclared local %q", name)
	}
	return c.WriteLocalSlot(s, v)
}

// WriteLocalSlot is WriteLocal by slot index.
func (c *Copies) WriteLocalSlot(slot int, v int64) error {
	if slot < 0 || slot >= len(c.localStacks) {
		return fmt.Errorf("mcs: write to undeclared local slot %d", slot)
	}
	elems := c.localStacks[slot]
	if t := &elems[len(elems)-1]; t.lockIndex == c.lockIndex {
		t.value = v
	} else {
		c.localStacks[slot] = append(elems, elem{value: v, lockIndex: c.lockIndex})
		c.localElems++
		c.notePeaks()
	}
	return nil
}

// EntityValue returns the current local-copy value of an exclusively
// locked entity.
func (c *Copies) EntityValue(entity string) (int64, bool) {
	ent, ok := c.names.Lookup(entity)
	if !ok {
		return 0, false
	}
	return c.EntityValueID(ent)
}

// EntityValueID is EntityValue by intern ID.
func (c *Copies) EntityValueID(ent intern.ID) (int64, bool) {
	s := c.findEnt(ent)
	if s == nil {
		return 0, false
	}
	return s.elems[len(s.elems)-1].value, true
}

// LocalValue returns the current value of a local variable.
func (c *Copies) LocalValue(name string) (int64, bool) {
	s, ok := c.localSlot[name]
	if !ok {
		return 0, false
	}
	return c.LocalValueSlot(s)
}

// LocalValueSlot is LocalValue by slot index.
func (c *Copies) LocalValueSlot(slot int) (int64, bool) {
	if slot < 0 || slot >= len(c.localStacks) {
		return 0, false
	}
	elems := c.localStacks[slot]
	return elems[len(elems)-1].value, true
}

// Locals returns a snapshot of current local-variable values.
func (c *Copies) Locals() map[string]int64 {
	out := make(map[string]int64, len(c.localStacks))
	for s, name := range c.localNames {
		elems := c.localStacks[s]
		out[name] = elems[len(elems)-1].value
	}
	return out
}

// CopyLocalsInto appends the current local values in slot order to dst
// (allocation-free with a reused buffer).
func (c *Copies) CopyLocalsInto(dst []int64) []int64 {
	for _, elems := range c.localStacks {
		dst = append(dst, elems[len(elems)-1].value)
	}
	return dst
}

// OnUnlock discards the stack for entity (its top value has been
// installed globally by the caller). Per the paper's model the
// transaction is never rolled back after its first unlock, so the
// stack is simply returned to free storage.
func (c *Copies) OnUnlock(entity string) {
	ent, ok := c.names.Lookup(entity)
	if !ok {
		return
	}
	c.OnUnlockID(ent)
}

// OnUnlockID is OnUnlock by intern ID.
func (c *Copies) OnUnlockID(ent intern.ID) {
	for i := range c.entStacks {
		if c.entStacks[i].ent == ent {
			c.entityElems -= len(c.entStacks[i].elems)
			c.putElems(c.entStacks[i].elems)
			c.entStacks[i] = c.entStacks[len(c.entStacks)-1]
			c.entStacks[len(c.entStacks)-1].elems = nil
			c.entStacks = c.entStacks[:len(c.entStacks)-1]
			return
		}
	}
}

// Rollback restores the MCS state to lock state q: stacks of entities
// locked at or after q are deleted (the caller releases those locks),
// and elements with lock index > q are popped everywhere else.
func (c *Copies) Rollback(q int) {
	if q < 0 || q > c.lockIndex {
		panic(fmt.Sprintf("mcs: rollback to lock state %d outside [0, %d]", q, c.lockIndex))
	}
	for i := len(c.entStacks) - 1; i >= 0; i-- {
		if c.entStacks[i].index >= q {
			c.entityElems -= len(c.entStacks[i].elems)
			c.putElems(c.entStacks[i].elems)
			c.entStacks[i] = c.entStacks[len(c.entStacks)-1]
			c.entStacks[len(c.entStacks)-1].elems = nil
			c.entStacks = c.entStacks[:len(c.entStacks)-1]
		}
	}
	for i := range c.entStacks {
		s := &c.entStacks[i]
		for len(s.elems) > 1 && s.elems[len(s.elems)-1].lockIndex > q {
			s.elems = s.elems[:len(s.elems)-1]
			c.entityElems--
		}
	}
	for i, elems := range c.localStacks {
		for len(elems) > 1 && elems[len(elems)-1].lockIndex > q {
			elems = elems[:len(elems)-1]
			c.localElems--
		}
		c.localStacks[i] = elems
	}
	c.lockIndex = q
}

// SpaceUsed returns the current number of stack elements held for
// global entities and for local variables.
func (c *Copies) SpaceUsed() (entityElems, localElems int) {
	return c.entityElems, c.localElems
}

// PeakSpace returns the high-water marks of SpaceUsed over the
// transaction's lifetime, for checking Theorem 3's n(n+1)/2 and n·|L|
// bounds.
func (c *Copies) PeakSpace() (entityElems, localElems int) {
	return c.peakEntityElems, c.peakLocalElems
}
