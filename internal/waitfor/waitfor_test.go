package waitfor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
)

func TestArcsAndLabels(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(1, 2, "b")
	g.AddWait(3, 2, "a")
	arcs := g.Arcs()
	if len(arcs) != 3 {
		t.Fatalf("arcs = %v", arcs)
	}
	if got := g.Label(1, 2); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("labels = %v", got)
	}
	if got := g.WaitsFor(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("waits for = %v", got)
	}
	if got := g.WaitedOnBy(2); len(got) != 2 {
		t.Errorf("waited on by = %v", got)
	}
}

func TestRemoveWaitDropsArcWhenLabelsEmpty(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(1, 2, "b")
	g.RemoveWait(1, 2, "a")
	if len(g.Arcs()) != 1 {
		t.Error("label removal dropped arc early")
	}
	g.RemoveWait(1, 2, "b")
	if len(g.Arcs()) != 0 || len(g.WaitsFor(1)) != 0 {
		t.Error("arc should be gone")
	}
	g.RemoveWait(9, 9, "z") // no-op
}

func TestClearEntityWaits(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(1, 3, "a")
	g.AddWait(1, 3, "b")
	g.ClearEntityWaits(1, "a")
	arcs := g.Arcs()
	if len(arcs) != 1 || arcs[0].Entity != "b" {
		t.Errorf("arcs = %v", arcs)
	}
}

func TestRemoveAllWaitsBy(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(1, 3, "b")
	g.AddWait(4, 1, "c")
	g.RemoveAllWaitsBy(1)
	if len(g.WaitsFor(1)) != 0 {
		t.Error("outgoing arcs remain")
	}
	if len(g.WaitedOnBy(1)) != 1 {
		t.Error("incoming arcs must survive")
	}
}

func TestRemoveTxn(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(3, 1, "b")
	g.RemoveTxn(1)
	if len(g.Arcs()) != 0 {
		t.Errorf("arcs = %v", g.Arcs())
	}
}

func TestCyclesAndForest(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	g.AddWait(2, 3, "b")
	if g.HasCycle() || !g.IsForest() {
		t.Error("chain")
	}
	if g.WouldDeadlock(3, []txn.ID{4}) {
		t.Error("no path 4->3... wait direction: holder 4 unknown")
	}
	if !g.WouldDeadlock(3, []txn.ID{3}) {
		t.Error("self-wait is a deadlock")
	}
	// 3 waiting on 1 would close the cycle (path 1 -> 3 exists? we need
	// 3 -> ... -> 1... WouldDeadlock(waiter=3, holders=[1]): checks path
	// 1 ~> 3, which exists via 1->2->3.
	if !g.WouldDeadlock(3, []txn.ID{1}) {
		t.Error("cycle not predicted")
	}
	g.AddWait(3, 1, "c")
	if !g.HasCycle() || g.IsForest() {
		t.Error("cycle not detected")
	}
	cycles := g.CyclesThrough(3, 0)
	if len(cycles) != 1 || len(cycles[0]) != 3 || cycles[0][0] != 3 {
		t.Errorf("cycles = %v", cycles)
	}
}

func TestMultiCyclesThroughRequester(t *testing.T) {
	g := New()
	// Figure 3(c) shape: 2->1 (a), 3->1 (b), 1->2 (f), 1->3 (f).
	g.AddWait(2, 1, "a")
	g.AddWait(3, 1, "b")
	g.AddWait(1, 2, "f")
	g.AddWait(1, 3, "f")
	cycles := g.CyclesThrough(1, 0)
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	for _, c := range cycles {
		if c[0] != 1 {
			t.Errorf("cycle must start at requester: %v", c)
		}
	}
}

func TestString(t *testing.T) {
	g := New()
	g.AddWait(1, 2, "a")
	s := g.String()
	if !strings.Contains(s, "T2 -a-> T1") {
		t.Errorf("paper orientation missing: %q", s)
	}
	if fmt.Sprint(Arc{Waiter: 1, Holder: 2, Entity: "a"}) != "T1 -a-> T2" {
		t.Error("arc string")
	}
}

// TestRebuildMatchesIncremental drives a lock table with random
// operations and checks that incremental maintenance (as core would do
// it) matches the from-scratch rebuild.
func TestRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for rep := 0; rep < 30; rep++ {
		tab := lock.NewTable()
		g := New()
		ids := []txn.ID{1, 2, 3, 4, 5}
		for _, id := range ids {
			g.AddTxn(id)
		}
		ents := []string{"a", "b", "c"}
		refresh := func(name string) {
			holders := tab.Holders(name)
			for _, w := range tab.Queue(name) {
				g.ClearEntityWaits(w.Txn, name)
				for _, h := range holders {
					if h == w.Txn {
						continue
					}
					hm, _ := tab.ModeOf(h, name)
					if w.Mode == lock.Exclusive || hm == lock.Exclusive {
						g.AddWait(w.Txn, h, name)
					}
				}
			}
		}
		for step := 0; step < 200; step++ {
			id := ids[rng.Intn(len(ids))]
			name := ents[rng.Intn(len(ents))]
			switch rng.Intn(3) {
			case 0:
				if _, w := tab.WaitingOn(id); w {
					continue
				}
				if _, h := tab.ModeOf(id, name); h {
					continue
				}
				m := lock.Shared
				if rng.Intn(2) == 0 {
					m = lock.Exclusive
				}
				granted, blockers, err := tab.Acquire(id, name, m)
				if err != nil {
					t.Fatal(err)
				}
				if granted {
					refresh(name)
				} else {
					for _, b := range blockers {
						g.AddWait(id, b, name)
					}
				}
			case 1:
				if _, h := tab.ModeOf(id, name); h {
					grants, err := tab.Release(id, name)
					if err != nil {
						t.Fatal(err)
					}
					refresh(name)
					for _, gr := range grants {
						g.RemoveAllWaitsBy(gr.Txn)
						refresh(gr.Entity)
					}
				}
			case 2:
				if e, w := tab.WaitingOn(id); w {
					grants, _ := tab.RemoveWaiter(id, e)
					g.RemoveAllWaitsBy(id)
					refresh(e)
					for _, gr := range grants {
						g.RemoveAllWaitsBy(gr.Txn)
						refresh(gr.Entity)
					}
				}
			}
			want := Rebuild(tab, ids)
			if fmt.Sprint(g.Arcs()) != fmt.Sprint(want.Arcs()) {
				t.Fatalf("step %d diverged:\n got %v\nwant %v", step, g.Arcs(), want.Arcs())
			}
		}
	}
}
