package waitfor

import (
	"sort"
	"sync"
	"sync/atomic"

	"partialrollback/internal/intern"
	"partialrollback/internal/txn"
)

// Striped is the concurrency graph partitioned by arc label: the arcs
// whose entity is e live in stripe e % K, so wait bookkeeping on
// different entities touches independent stripes. Detection queries
// (CyclesThrough, HasCycle, IsForest, Arcs) merge the stripes into a
// snapshot graph validated by per-stripe epoch counters — a seqlock in
// spirit: each mutation bumps its stripe's epoch under the stripe
// mutex, and a snapshot whose epochs changed mid-copy is retried. After
// a bounded number of retries the possibly-stale snapshot is used
// anyway, which is safe for deadlock detection: a cycle, once formed,
// is stable — every participant is blocked, and un-blocking any of them
// (grant, rollback) happens through the engine's exclusive path, which
// re-runs detection for the waits it re-creates. A stale snapshot can
// therefore only delay detection by one round, never miss a deadlock
// forever, and partial-rollback victim selection runs on the engine's
// exclusive path where the snapshot is exact.
//
// A transaction waits on at most one entity at a time, so all of one
// waiter's outgoing arcs live in a single stripe; WaiterCount(h) sums
// per-stripe in-degrees without double-counting.
type Striped struct {
	names   *intern.Table
	k       int
	stripes []wfStripe
}

type wfStripe struct {
	mu    sync.Mutex
	epoch atomic.Uint64
	g     *Graph
}

// NewStriped returns an empty striped concurrency graph with k stripes
// sharing names. k < 1 is treated as 1.
func NewStriped(names *intern.Table, k int) *Striped {
	if k < 1 {
		k = 1
	}
	s := &Striped{names: names, k: k, stripes: make([]wfStripe, k)}
	for i := range s.stripes {
		s.stripes[i].g = NewInterned(names)
	}
	return s
}

// Names exposes the graph's interner.
func (s *Striped) Names() *intern.Table { return s.names }

// StripeCount returns the stripe count.
func (s *Striped) StripeCount() int { return s.k }

func (s *Striped) stripeOf(ent intern.ID) *wfStripe {
	return &s.stripes[int(ent)%s.k]
}

func (st *wfStripe) mutate(fn func(g *Graph)) {
	st.mu.Lock()
	st.epoch.Add(1)
	fn(st.g)
	st.mu.Unlock()
}

// AddTxn is a no-op: vertices materialize when arcs arrive, and every
// query treats absent nodes as isolated vertices (which affect no
// cycle, forest, or count answer).
func (s *Striped) AddTxn(id txn.ID) {}

// RemoveTxn deletes id and all incident arcs from every stripe.
func (s *Striped) RemoveTxn(id txn.ID) {
	for i := range s.stripes {
		s.stripes[i].mutate(func(g *Graph) { g.RemoveTxn(id) })
	}
}

// AddWaitID records that waiter now waits for holder over ent.
func (s *Striped) AddWaitID(waiter, holder txn.ID, ent intern.ID) {
	s.stripeOf(ent).mutate(func(g *Graph) { g.AddWaitID(waiter, holder, ent) })
}

// ClearEntityWaitsID drops the ent label from every outgoing arc of
// waiter (all such arcs live in ent's stripe).
func (s *Striped) ClearEntityWaitsID(waiter txn.ID, ent intern.ID) {
	s.stripeOf(ent).mutate(func(g *Graph) { g.ClearEntityWaitsID(waiter, ent) })
}

// RemoveAllWaitsBy drops every outgoing arc of waiter in every stripe.
func (s *Striped) RemoveAllWaitsBy(waiter txn.ID) {
	for i := range s.stripes {
		s.stripes[i].mutate(func(g *Graph) { g.RemoveAllWaitsBy(waiter) })
	}
}

// WaiterCount returns how many transactions are blocked on holder,
// summed across stripes (each waiter's arcs live in one stripe).
func (s *Striped) WaiterCount(holder txn.ID) int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.g.WaiterCount(holder)
		st.mu.Unlock()
	}
	return n
}

// Label returns the entities labeling the waiter->holder arc, merged
// across stripes and sorted.
func (s *Striped) Label(waiter, holder txn.ID) []string {
	out := make([]string, 0)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		out = append(out, st.g.Label(waiter, holder)...)
		st.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// snapshotRetries bounds epoch-validation retries before a
// possibly-stale snapshot is accepted (see the type comment for why
// staleness is safe).
const snapshotRetries = 3

// Snapshot merges the stripes into one Graph, epoch-validated with
// bounded retry. The result is private to the caller.
func (s *Striped) Snapshot() *Graph {
	epochs := make([]uint64, s.k)
	for attempt := 0; ; attempt++ {
		g := NewInterned(s.names)
		for i := range s.stripes {
			epochs[i] = s.stripes[i].epoch.Load()
		}
		for i := range s.stripes {
			st := &s.stripes[i]
			st.mu.Lock()
			copyArcs(st.g, g)
			st.mu.Unlock()
		}
		stable := true
		for i := range s.stripes {
			if s.stripes[i].epoch.Load() != epochs[i] {
				stable = false
				break
			}
		}
		if stable || attempt >= snapshotRetries {
			return g
		}
	}
}

// copyArcs adds every labeled arc of src to dst. Caller synchronizes
// src.
func copyArcs(src, dst *Graph) {
	for _, n := range src.nodes {
		for i := range n.out {
			for _, l := range n.out[i].labels {
				dst.AddWaitID(n.id, n.out[i].to, l)
			}
		}
	}
}

// Arcs returns all arcs of a merged snapshot, sorted by waiter, holder,
// entity.
func (s *Striped) Arcs() []Arc { return s.Snapshot().Arcs() }

// CyclesThrough enumerates the simple cycles containing id on a merged
// snapshot, up to limit (limit <= 0: unlimited). Successor order and
// cycle shape match Graph.CyclesThrough, so victim selection is
// unchanged by striping.
func (s *Striped) CyclesThrough(id txn.ID, limit int) [][]txn.ID {
	return s.Snapshot().CyclesThrough(id, limit)
}

// HasCycle reports whether any directed cycle exists on a merged
// snapshot.
func (s *Striped) HasCycle() bool { return s.Snapshot().HasCycle() }

// IsForest reports Theorem 1's condition on a merged snapshot.
func (s *Striped) IsForest() bool { return s.Snapshot().IsForest() }
