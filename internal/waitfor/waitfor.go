// Package waitfor maintains the paper's labeled concurrency graph G(T)
// (§3): an arc exists between T_j and T_i, labeled with entity A, when
// T_i is waiting to lock A and T_j holds a lock on A.
//
// Internally arcs are stored waiter -> holder (the direction a cycle
// search from the requester follows); the paper draws them holder ->
// waiter. Rendering code flips the direction and says so.
//
// Theorem 1: in an exclusive-lock-only system there is no deadlock at
// time t iff G(T) is a forest. For shared+exclusive systems the
// deadlock-free graph is a general acyclic digraph and one wait
// response may close several cycles at once, all through the requester
// (§3.2).
//
// Representation: per-node adjacency (out-edges carrying label sets of
// interned entity IDs, plus a reverse in-list), so RemoveTxn is
// O(degree) and the no-deadlock fast path — HasCycleThrough's stamped
// DFS over reachable nodes — allocates nothing. Simple-cycle
// enumeration (the rare deadlock path) still mirrors
// graph.Digraph.AllCyclesThrough exactly, successors in ascending ID
// order, so victim selection stays byte-identical.
package waitfor

import (
	"fmt"
	"sort"

	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
)

// Arc is one wait-for relationship.
type Arc struct {
	Waiter, Holder txn.ID
	Entity         string
}

func (a Arc) String() string {
	return fmt.Sprintf("%v -%s-> %v", a.Waiter, a.Entity, a.Holder)
}

// edge is one labeled arc waiter -> holder. Labels are a small set of
// interned entity IDs, scanned linearly (an arc rarely carries more
// than a couple of entities).
type edge struct {
	to     txn.ID
	labels []intern.ID
}

type node struct {
	id     txn.ID
	out    []edge
	in     []txn.ID // waiters with an arc to this node
	stamp  uint64   // visited mark for stamped traversals
	onPath bool     // cycle-enumeration path membership
}

// Graph is the concurrency graph. The zero value is not usable; call
// New or NewInterned.
type Graph struct {
	names *intern.Table
	nodes map[txn.ID]*node

	nodePool  []*node
	labelPool [][]intern.ID

	stamp uint64  // generation counter for node.stamp
	stack []*node // reusable DFS stack
	path  []txn.ID
}

// New returns an empty concurrency graph with a private interner
// (names are interned on first AddWait).
func New() *Graph {
	return NewInterned(intern.NewTable())
}

// NewInterned returns an empty concurrency graph sharing names —
// normally the entity store's interner, so graph labels and lock-table
// IDs agree.
func NewInterned(names *intern.Table) *Graph {
	return &Graph{names: names, nodes: map[txn.ID]*node{}}
}

// Names exposes the graph's interner.
func (g *Graph) Names() *intern.Table { return g.names }

func (g *Graph) node(id txn.ID) *node {
	n := g.nodes[id]
	if n == nil {
		if k := len(g.nodePool); k > 0 {
			n = g.nodePool[k-1]
			g.nodePool = g.nodePool[:k-1]
		} else {
			n = &node{}
		}
		n.id = id
		g.nodes[id] = n
	}
	return n
}

func (g *Graph) putLabels(ls []intern.ID) {
	if cap(ls) > 0 {
		g.labelPool = append(g.labelPool, ls[:0])
	}
}

func (g *Graph) getLabels() []intern.ID {
	if k := len(g.labelPool); k > 0 {
		ls := g.labelPool[k-1]
		g.labelPool = g.labelPool[:k-1]
		return ls
	}
	return nil
}

// AddTxn ensures the vertex for id exists.
func (g *Graph) AddTxn(id txn.ID) { g.node(id) }

// RemoveTxn deletes id and all incident arcs (commit or restart) in
// O(degree): out-edges detach from their targets' in-lists, and the
// reverse in-list locates each predecessor's edge directly — no global
// scan.
func (g *Graph) RemoveTxn(id txn.ID) {
	n := g.nodes[id]
	if n == nil {
		return
	}
	for i := range n.out {
		if t := g.nodes[n.out[i].to]; t != nil && t != n {
			removeID(&t.in, id)
		}
		g.putLabels(n.out[i].labels)
		n.out[i].labels = nil
	}
	for _, p := range n.in {
		pn := g.nodes[p]
		if pn == nil || pn == n {
			continue
		}
		for i := range pn.out {
			if pn.out[i].to == id {
				g.putLabels(pn.out[i].labels)
				pn.out[i] = pn.out[len(pn.out)-1]
				pn.out[len(pn.out)-1].labels = nil
				pn.out = pn.out[:len(pn.out)-1]
				break
			}
		}
	}
	n.out = n.out[:0]
	n.in = n.in[:0]
	n.onPath = false
	delete(g.nodes, id)
	g.nodePool = append(g.nodePool, n)
}

func removeID(s *[]txn.ID, id txn.ID) {
	for i, v := range *s {
		if v == id {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return
		}
	}
}

// AddWait records that waiter now waits for holder over entity.
func (g *Graph) AddWait(waiter, holder txn.ID, entity string) {
	g.AddWaitID(waiter, holder, g.names.Intern(entity))
}

// AddWaitID is AddWait by intern ID — the allocation-free hot path.
func (g *Graph) AddWaitID(waiter, holder txn.ID, ent intern.ID) {
	nw := g.node(waiter)
	nh := g.node(holder)
	for i := range nw.out {
		if nw.out[i].to == holder {
			for _, l := range nw.out[i].labels {
				if l == ent {
					return
				}
			}
			nw.out[i].labels = append(nw.out[i].labels, ent)
			return
		}
	}
	ls := append(g.getLabels(), ent)
	nw.out = append(nw.out, edge{to: holder, labels: ls})
	nh.in = append(nh.in, waiter)
}

// RemoveWait drops the entity label from the waiter->holder arc,
// removing the arc when no labels remain.
func (g *Graph) RemoveWait(waiter, holder txn.ID, entity string) {
	ent, ok := g.names.Lookup(entity)
	if !ok {
		return
	}
	g.RemoveWaitID(waiter, holder, ent)
}

// RemoveWaitID is RemoveWait by intern ID.
func (g *Graph) RemoveWaitID(waiter, holder txn.ID, ent intern.ID) {
	nw := g.nodes[waiter]
	if nw == nil {
		return
	}
	for i := range nw.out {
		if nw.out[i].to != holder {
			continue
		}
		ls := nw.out[i].labels
		for j, l := range ls {
			if l == ent {
				ls[j] = ls[len(ls)-1]
				nw.out[i].labels = ls[:len(ls)-1]
				break
			}
		}
		if len(nw.out[i].labels) == 0 {
			g.putLabels(nw.out[i].labels)
			nw.out[i] = nw.out[len(nw.out)-1]
			nw.out[len(nw.out)-1].labels = nil
			nw.out = nw.out[:len(nw.out)-1]
			if nh := g.nodes[holder]; nh != nil {
				removeID(&nh.in, waiter)
			}
		}
		return
	}
}

// ClearEntityWaits drops the entity label from every outgoing arc of
// waiter, removing arcs left with no labels. Used when the holder set
// of the awaited entity changes (release + promotion) and the waiter's
// arcs must be rebuilt.
func (g *Graph) ClearEntityWaits(waiter txn.ID, entity string) {
	ent, ok := g.names.Lookup(entity)
	if !ok {
		return
	}
	g.ClearEntityWaitsID(waiter, ent)
}

// ClearEntityWaitsID is ClearEntityWaits by intern ID.
func (g *Graph) ClearEntityWaitsID(waiter txn.ID, ent intern.ID) {
	nw := g.nodes[waiter]
	if nw == nil {
		return
	}
	for i := len(nw.out) - 1; i >= 0; i-- {
		ls := nw.out[i].labels
		for j, l := range ls {
			if l == ent {
				ls[j] = ls[len(ls)-1]
				nw.out[i].labels = ls[:len(ls)-1]
				break
			}
		}
		if len(nw.out[i].labels) == 0 {
			holder := nw.out[i].to
			g.putLabels(nw.out[i].labels)
			nw.out[i] = nw.out[len(nw.out)-1]
			nw.out[len(nw.out)-1].labels = nil
			nw.out = nw.out[:len(nw.out)-1]
			if nh := g.nodes[holder]; nh != nil {
				removeID(&nh.in, waiter)
			}
		}
	}
}

// RemoveAllWaitsBy drops every outgoing arc of waiter (its request was
// granted or retracted).
func (g *Graph) RemoveAllWaitsBy(waiter txn.ID) {
	nw := g.nodes[waiter]
	if nw == nil {
		return
	}
	for i := range nw.out {
		if nh := g.nodes[nw.out[i].to]; nh != nil {
			removeID(&nh.in, waiter)
		}
		g.putLabels(nw.out[i].labels)
		nw.out[i].labels = nil
	}
	nw.out = nw.out[:0]
}

// Arcs returns all arcs, sorted by waiter, holder, entity.
func (g *Graph) Arcs() []Arc {
	var out []Arc
	for _, n := range g.nodes {
		for i := range n.out {
			for _, l := range n.out[i].labels {
				out = append(out, Arc{Waiter: n.id, Holder: n.out[i].to, Entity: g.names.Name(l)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		if a.Holder != b.Holder {
			return a.Holder < b.Holder
		}
		return a.Entity < b.Entity
	})
	return out
}

// WaitsFor returns the holders waiter currently waits for, sorted.
func (g *Graph) WaitsFor(waiter txn.ID) []txn.ID {
	n := g.nodes[waiter]
	out := make([]txn.ID, 0, outDegree(n))
	if n != nil {
		for i := range n.out {
			out = append(out, n.out[i].to)
		}
	}
	sortTxnIDs(out)
	return out
}

// WaiterCount returns how many transactions are blocked on holder
// without allocating — the cheap contention probe behind adaptive
// burst sizing.
func (g *Graph) WaiterCount(holder txn.ID) int {
	n := g.nodes[holder]
	if n == nil {
		return 0
	}
	return len(n.in)
}

// WaitedOnBy returns the waiters blocked on holder, sorted.
func (g *Graph) WaitedOnBy(holder txn.ID) []txn.ID {
	n := g.nodes[holder]
	if n == nil {
		return make([]txn.ID, 0)
	}
	out := append(make([]txn.ID, 0, len(n.in)), n.in...)
	sortTxnIDs(out)
	return out
}

func outDegree(n *node) int {
	if n == nil {
		return 0
	}
	return len(n.out)
}

// Label returns the entities labeling the waiter->holder arc, sorted.
func (g *Graph) Label(waiter, holder txn.ID) []string {
	n := g.nodes[waiter]
	if n == nil {
		return make([]string, 0)
	}
	for i := range n.out {
		if n.out[i].to == holder {
			out := make([]string, 0, len(n.out[i].labels))
			for _, l := range n.out[i].labels {
				out = append(out, g.names.Name(l))
			}
			sort.Strings(out)
			return out
		}
	}
	return make([]string, 0)
}

// HasCycle reports whether any directed cycle (deadlock) exists.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[txn.ID]int, len(g.nodes))
	var visit func(n *node) bool
	visit = func(n *node) bool {
		color[n.id] = gray
		for i := range n.out {
			w := g.nodes[n.out[i].to]
			switch color[w.id] {
			case gray:
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		color[n.id] = black
		return false
	}
	for _, n := range g.nodes {
		if color[n.id] == white && visit(n) {
			return true
		}
	}
	return false
}

// IsForest reports Theorem 1's condition: the graph, viewed as
// undirected, is acyclic. Parallel arcs u->v and v->u count as a
// cycle, as do self loops.
func (g *Graph) IsForest() bool {
	seen := make(map[txn.ID]bool, len(g.nodes))
	for _, root := range g.nodes {
		if seen[root.id] {
			continue
		}
		type frame struct {
			v    txn.ID
			from txn.ID
		}
		// Transaction IDs are non-negative, so -1 is a safe
		// "no parent" sentinel.
		stack := []frame{{root.id, -1}}
		seen[root.id] = true
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := g.nodes[f.v]
			// Undirected neighbor multiset.
			nbrs := map[txn.ID]int{}
			for i := range n.out {
				nbrs[n.out[i].to]++
			}
			for _, p := range n.in {
				nbrs[p]++
			}
			if nbrs[f.v] > 0 {
				return false // self loop
			}
			usedParentEdge := false
			for w, mult := range nbrs {
				if w == f.from && !usedParentEdge {
					usedParentEdge = true
					if mult > 1 {
						return false // parallel arcs both ways
					}
					continue
				}
				if seen[w] {
					return false
				}
				seen[w] = true
				stack = append(stack, frame{w, f.v})
			}
		}
	}
	return true
}

// nextStamp starts a new traversal generation.
func (g *Graph) nextStamp() uint64 {
	g.stamp++
	return g.stamp
}

// HasCycleThrough reports whether at least one directed cycle passes
// through id — equivalently, whether id is reachable from any of its
// successors. This is the no-deadlock fast path: one stamped DFS over
// the reachable subgraph, zero allocations, no cycle materialized.
func (g *Graph) HasCycleThrough(id txn.ID) bool {
	n := g.nodes[id]
	if n == nil || len(n.out) == 0 {
		return false
	}
	s := g.nextStamp()
	g.stack = g.stack[:0]
	for i := range n.out {
		if n.out[i].to == id {
			return true // self loop
		}
		w := g.nodes[n.out[i].to]
		if w.stamp != s {
			w.stamp = s
			g.stack = append(g.stack, w)
		}
	}
	for len(g.stack) > 0 {
		x := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for i := range x.out {
			if x.out[i].to == id {
				return true
			}
			w := g.nodes[x.out[i].to]
			if w.stamp != s {
				w.stamp = s
				g.stack = append(g.stack, w)
			}
		}
	}
	return false
}

// CyclesThrough enumerates the simple cycles containing id, up to
// limit (limit <= 0: unlimited). Each cycle starts at id. The
// no-cycle case is answered by HasCycleThrough without allocating;
// enumeration itself (the actual-deadlock path) visits successors in
// ascending transaction-ID order, matching the historical
// graph.Digraph.AllCyclesThrough traversal exactly.
func (g *Graph) CyclesThrough(id txn.ID, limit int) [][]txn.ID {
	if !g.HasCycleThrough(id) {
		return nil
	}
	v := g.nodes[id]
	var cycles [][]txn.ID
	g.path = append(g.path[:0], id)
	v.onPath = true
	var dfs func(x *node) bool // true when limit reached
	dfs = func(x *node) bool {
		succ := make([]txn.ID, 0, len(x.out))
		for i := range x.out {
			succ = append(succ, x.out[i].to)
		}
		sortTxnIDs(succ)
		for _, w := range succ {
			if w == id {
				cycles = append(cycles, append([]txn.ID(nil), g.path...))
				if limit > 0 && len(cycles) >= limit {
					return true
				}
				continue
			}
			wn := g.nodes[w]
			if wn.onPath {
				continue
			}
			wn.onPath = true
			g.path = append(g.path, w)
			if dfs(wn) {
				return true
			}
			g.path = g.path[:len(g.path)-1]
			wn.onPath = false
		}
		return false
	}
	dfs(v)
	// On a limit-abort the path still holds the live DFS stack; clear
	// its onPath marks (covers the normal case too, where only id
	// remains).
	for _, pid := range g.path {
		g.nodes[pid].onPath = false
	}
	g.path = g.path[:0]
	return cycles
}

// WouldDeadlock reports whether making waiter wait for the given
// holders would close at least one cycle, i.e. whether waiter is
// reachable from any holder. Zero allocations (stamped DFS).
func (g *Graph) WouldDeadlock(waiter txn.ID, holders []txn.ID) bool {
	for _, h := range holders {
		if h == waiter || g.reachable(h, waiter) {
			return true
		}
	}
	return false
}

// reachable reports whether to is reachable from from (including
// from == to, matching the historical PathExists).
func (g *Graph) reachable(from, to txn.ID) bool {
	nf := g.nodes[from]
	nt := g.nodes[to]
	if nf == nil || nt == nil {
		return false
	}
	s := g.nextStamp()
	nf.stamp = s
	g.stack = append(g.stack[:0], nf)
	for len(g.stack) > 0 {
		x := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		if x == nt {
			return true
		}
		for i := range x.out {
			w := g.nodes[x.out[i].to]
			if w.stamp != s {
				w.stamp = s
				g.stack = append(g.stack, w)
			}
		}
	}
	return false
}

// Rebuild reconstructs the graph from a lock table: for every queued
// waiter, an arc to each conflicting holder of the awaited entity.
// Used by tests to cross-check incremental maintenance.
func Rebuild(t *lock.Table, ids []txn.ID) *Graph {
	g := New()
	for _, id := range ids {
		g.AddTxn(id)
	}
	for _, id := range ids {
		entityName, ok := t.WaitingOn(id)
		if !ok {
			continue
		}
		var mode lock.Mode = lock.Exclusive
		for _, w := range t.Queue(entityName) {
			if w.Txn == id {
				mode = w.Mode
			}
		}
		for _, h := range t.Holders(entityName) {
			if h == id {
				continue
			}
			hm, _ := t.ModeOf(h, entityName)
			if mode == lock.Exclusive || hm == lock.Exclusive {
				g.AddWait(id, h, entityName)
			}
		}
	}
	return g
}

// String renders the arcs one per line in the paper's holder->waiter
// orientation.
func (g *Graph) String() string {
	s := ""
	for _, a := range g.Arcs() {
		s += fmt.Sprintf("%v -%s-> %v (holds; waited on by)\n", a.Holder, a.Entity, a.Waiter)
	}
	return s
}

// sortTxnIDs sorts ascending in place without the sort.Slice closure
// allocation; the lists here are adjacency lists of a single node.
func sortTxnIDs(ids []txn.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
