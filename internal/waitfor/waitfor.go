// Package waitfor maintains the paper's labeled concurrency graph G(T)
// (§3): an arc exists between T_j and T_i, labeled with entity A, when
// T_i is waiting to lock A and T_j holds a lock on A.
//
// Internally arcs are stored waiter -> holder (the direction a cycle
// search from the requester follows); the paper draws them holder ->
// waiter. Rendering code flips the direction and says so.
//
// Theorem 1: in an exclusive-lock-only system there is no deadlock at
// time t iff G(T) is a forest. For shared+exclusive systems the
// deadlock-free graph is a general acyclic digraph and one wait
// response may close several cycles at once, all through the requester
// (§3.2).
package waitfor

import (
	"fmt"
	"sort"

	"partialrollback/internal/graph"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
)

// Arc is one wait-for relationship.
type Arc struct {
	Waiter, Holder txn.ID
	Entity         string
}

func (a Arc) String() string {
	return fmt.Sprintf("%v -%s-> %v", a.Waiter, a.Entity, a.Holder)
}

// Graph is the concurrency graph. The zero value is not usable; call
// New.
type Graph struct {
	d *graph.Digraph
	// labels maps (waiter, holder) to the entities labeling the arc.
	labels map[[2]txn.ID]map[string]bool
}

// New returns an empty concurrency graph.
func New() *Graph {
	return &Graph{
		d:      graph.NewDigraph(),
		labels: map[[2]txn.ID]map[string]bool{},
	}
}

// AddTxn ensures the vertex for id exists.
func (g *Graph) AddTxn(id txn.ID) { g.d.AddNode(int(id)) }

// RemoveTxn deletes id and all incident arcs (commit or restart).
func (g *Graph) RemoveTxn(id txn.ID) {
	g.d.RemoveNode(int(id))
	for key := range g.labels {
		if key[0] == id || key[1] == id {
			delete(g.labels, key)
		}
	}
}

// AddWait records that waiter now waits for holder over entity.
func (g *Graph) AddWait(waiter, holder txn.ID, entity string) {
	key := [2]txn.ID{waiter, holder}
	if g.labels[key] == nil {
		g.labels[key] = map[string]bool{}
		g.d.AddEdge(int(waiter), int(holder))
	}
	g.labels[key][entity] = true
}

// RemoveWait drops the entity label from the waiter->holder arc,
// removing the arc when no labels remain.
func (g *Graph) RemoveWait(waiter, holder txn.ID, entity string) {
	key := [2]txn.ID{waiter, holder}
	set := g.labels[key]
	if set == nil {
		return
	}
	delete(set, entity)
	if len(set) == 0 {
		delete(g.labels, key)
		g.d.RemoveEdge(int(waiter), int(holder))
	}
}

// ClearEntityWaits drops the entity label from every outgoing arc of
// waiter, removing arcs left with no labels. Used when the holder set
// of the awaited entity changes (release + promotion) and the waiter's
// arcs must be rebuilt.
func (g *Graph) ClearEntityWaits(waiter txn.ID, entity string) {
	for _, h := range g.d.Succ(int(waiter)) {
		g.RemoveWait(waiter, txn.ID(h), entity)
	}
}

// RemoveAllWaitsBy drops every outgoing arc of waiter (its request was
// granted or retracted).
func (g *Graph) RemoveAllWaitsBy(waiter txn.ID) {
	for _, h := range g.d.Succ(int(waiter)) {
		g.d.RemoveEdge(int(waiter), h)
		delete(g.labels, [2]txn.ID{waiter, txn.ID(h)})
	}
}

// Arcs returns all arcs, sorted by waiter, holder, entity.
func (g *Graph) Arcs() []Arc {
	var out []Arc
	for key, set := range g.labels {
		for e := range set {
			out = append(out, Arc{Waiter: key[0], Holder: key[1], Entity: e})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		if a.Holder != b.Holder {
			return a.Holder < b.Holder
		}
		return a.Entity < b.Entity
	})
	return out
}

// WaitsFor returns the holders waiter currently waits for, sorted.
func (g *Graph) WaitsFor(waiter txn.ID) []txn.ID {
	succ := g.d.Succ(int(waiter))
	out := make([]txn.ID, len(succ))
	for i, v := range succ {
		out[i] = txn.ID(v)
	}
	return out
}

// WaitedOnBy returns the waiters blocked on holder, sorted.
func (g *Graph) WaitedOnBy(holder txn.ID) []txn.ID {
	pred := g.d.Pred(int(holder))
	out := make([]txn.ID, len(pred))
	for i, v := range pred {
		out[i] = txn.ID(v)
	}
	return out
}

// Label returns the entities labeling the waiter->holder arc, sorted.
func (g *Graph) Label(waiter, holder txn.ID) []string {
	set := g.labels[[2]txn.ID{waiter, holder}]
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// HasCycle reports whether any directed cycle (deadlock) exists.
func (g *Graph) HasCycle() bool { return g.d.HasCycle() }

// IsForest reports Theorem 1's condition: the graph, viewed as
// undirected, is acyclic.
func (g *Graph) IsForest() bool { return g.d.IsForest() }

// CyclesThrough enumerates the simple cycles containing id, up to
// limit (limit <= 0: unlimited). Each cycle starts at id.
func (g *Graph) CyclesThrough(id txn.ID, limit int) [][]txn.ID {
	raw := g.d.AllCyclesThrough(int(id), limit)
	out := make([][]txn.ID, len(raw))
	for i, c := range raw {
		ids := make([]txn.ID, len(c))
		for j, v := range c {
			ids[j] = txn.ID(v)
		}
		out[i] = ids
	}
	return out
}

// WouldDeadlock reports whether making waiter wait for the given
// holders would close at least one cycle, i.e. whether waiter is
// reachable from any holder.
func (g *Graph) WouldDeadlock(waiter txn.ID, holders []txn.ID) bool {
	for _, h := range holders {
		if h == waiter || g.d.PathExists(int(h), int(waiter)) {
			return true
		}
	}
	return false
}

// Rebuild reconstructs the graph from a lock table: for every queued
// waiter, an arc to each conflicting holder of the awaited entity.
// Used by tests to cross-check incremental maintenance.
func Rebuild(t *lock.Table, ids []txn.ID) *Graph {
	g := New()
	for _, id := range ids {
		g.AddTxn(id)
	}
	for _, id := range ids {
		entityName, ok := t.WaitingOn(id)
		if !ok {
			continue
		}
		var mode lock.Mode = lock.Exclusive
		for _, w := range t.Queue(entityName) {
			if w.Txn == id {
				mode = w.Mode
			}
		}
		for _, h := range t.Holders(entityName) {
			if h == id {
				continue
			}
			hm, _ := t.ModeOf(h, entityName)
			if mode == lock.Exclusive || hm == lock.Exclusive {
				g.AddWait(id, h, entityName)
			}
		}
	}
	return g
}

// String renders the arcs one per line in the paper's holder->waiter
// orientation.
func (g *Graph) String() string {
	s := ""
	for _, a := range g.Arcs() {
		s += fmt.Sprintf("%v -%s-> %v (holds; waited on by)\n", a.Holder, a.Entity, a.Waiter)
	}
	return s
}
