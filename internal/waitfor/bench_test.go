package waitfor

import (
	"fmt"
	"testing"

	"partialrollback/internal/txn"
)

// TestRemoveTxnDropsOnlyIncidentArcs pins the O(degree) RemoveTxn
// rework: removing one transaction drops exactly its incident arcs
// (both directions, all labels) and leaves every other arc — including
// arcs whose label sets share entities with the removed node — intact.
func TestRemoveTxnDropsOnlyIncidentArcs(t *testing.T) {
	g := New()
	// 1 waits for 2 (a,b); 2 waits for 3 (c); 3 waits for 1 (d);
	// 4 waits for 2 (a); 5 waits for 6 (a) — disjoint from 2.
	g.AddWait(1, 2, "a")
	g.AddWait(1, 2, "b")
	g.AddWait(2, 3, "c")
	g.AddWait(3, 1, "d")
	g.AddWait(4, 2, "a")
	g.AddWait(5, 6, "a")

	g.RemoveTxn(2)

	if got := g.Arcs(); len(got) != 2 {
		t.Fatalf("after RemoveTxn(2): arcs = %v, want 3->1 and 5->6 only", got)
	}
	if l := g.Label(3, 1); len(l) != 1 || l[0] != "d" {
		t.Errorf("label 3->1 = %v, want [d]", l)
	}
	if l := g.Label(5, 6); len(l) != 1 || l[0] != "a" {
		t.Errorf("label 5->6 = %v, want [a]", l)
	}
	if w := g.WaitsFor(1); len(w) != 0 {
		t.Errorf("1 still waits for %v after its holder was removed", w)
	}
	if w := g.WaitedOnBy(1); len(w) != 1 || w[0] != 3 {
		t.Errorf("WaitedOnBy(1) = %v, want [3]", w)
	}
	// The removed vertex is really gone: re-adding starts clean.
	g.AddWait(2, 5, "z")
	if l := g.Label(2, 5); len(l) != 1 || l[0] != "z" {
		t.Errorf("re-added node 2 has stale state: label = %v", l)
	}
	if l := g.Label(2, 3); len(l) != 0 {
		t.Errorf("re-added node 2 kept old arc labels %v", l)
	}
}

// TestNoDeadlockCheckZeroAlloc pins the acceptance criterion: the
// no-deadlock wait check (HasCycleThrough / CyclesThrough returning
// nothing, and WouldDeadlock) allocates nothing on a live graph.
func TestNoDeadlockCheckZeroAlloc(t *testing.T) {
	g := New()
	// A chain with branches; no cycle anywhere.
	for i := 0; i < 32; i++ {
		g.AddWait(txn.ID(i), txn.ID(i+1), fmt.Sprintf("e%d", i))
		g.AddWait(txn.ID(i), txn.ID(i+2), fmt.Sprintf("e%d", i+1))
	}
	holders := []txn.ID{33, 34}
	if n := testing.AllocsPerRun(200, func() {
		if g.HasCycleThrough(0) {
			t.Fatal("unexpected cycle")
		}
		if got := g.CyclesThrough(0, 1); got != nil {
			t.Fatalf("unexpected cycles %v", got)
		}
		if g.WouldDeadlock(0, holders) {
			t.Fatal("unexpected WouldDeadlock")
		}
	}); n != 0 {
		t.Fatalf("no-deadlock check allocates %v per run, want 0", n)
	}
}

// benchChain builds a wait-for chain of n transactions with no cycle.
func benchChain(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddWait(txn.ID(i), txn.ID(i+1), fmt.Sprintf("e%d", i))
	}
	return g
}

// BenchmarkWaitNoDeadlock measures the per-wait deadlock check on a
// graph with no cycle — the common case every blocked request pays.
func BenchmarkWaitNoDeadlock(b *testing.B) {
	g := benchChain(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.HasCycleThrough(0) {
			b.Fatal("unexpected cycle")
		}
	}
}

// BenchmarkCyclesThrough measures full cycle enumeration on a graph
// that actually deadlocks (a ring with chords), the rare slow path.
func BenchmarkCyclesThrough(b *testing.B) {
	g := New()
	const ring = 8
	for i := 0; i < ring; i++ {
		g.AddWait(txn.ID(i), txn.ID((i+1)%ring), fmt.Sprintf("e%d", i))
	}
	g.AddWait(2, 5, "chord1")
	g.AddWait(4, 1, "chord2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.CyclesThrough(0, 0); len(got) == 0 {
			b.Fatal("expected cycles")
		}
	}
}
