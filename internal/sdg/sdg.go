// Package sdg implements the paper's state-dependency graph (§4): the
// bookkeeping for the single-copy rollback strategy, which keeps only
// one local copy per entity and therefore can restore only the
// *well-defined* lock states.
//
// Numbering (see DESIGN.md §2 for the derivation): lock state q is the
// transaction state immediately before its (q+1)-th lock request; an
// operation's lock index is the number of lock requests strictly before
// it, so the value of a target at lock state q reflects exactly the
// writes with lock index <= q. For a write target (entity or local
// variable) first written at lock index u, the paper's *index of
// restorability* is u-1; a later write at lock index j destroys the
// lock states q with u <= q < j — equivalently u-1 < q < j, the
// condition of Theorem 4 on the edge {u-1, j}.
//
// A lock state q is well-defined at the current point iff no write
// interval [u, j) contains it. Lock state 0 is always well-defined
// (total rollback); the current state is trivially well-defined.
package sdg

import (
	"fmt"
	"sort"

	"partialrollback/internal/graph"
)

// Interval records the destruction interval of one write: states q
// with First <= q < Last are not restorable for Target.
type Interval struct {
	Target      string
	First, Last int // first-write lock index u, this-write lock index j
}

// Graph is the per-transaction state-dependency bookkeeping. The zero
// value is not usable; call New.
type Graph struct {
	// n is the number of lock requests executed so far, i.e. the
	// current lock index. Lock states 0..n exist.
	n int
	// firstWrite maps each written target to the lock index of its
	// first (surviving) write.
	firstWrite map[string]int
	// lastWrite maps each written target to the lock index of its most
	// recent (surviving) write.
	lastWrite map[string]int
	// writes holds the full sorted distinct write lock indexes per
	// target — needed for precise pruning when a checkpointed (hybrid)
	// rollback lands inside a destruction interval.
	writes map[string][]int
	// monitoring is cleared once the transaction declares its last
	// lock request (§5); afterwards writes are no longer tracked.
	monitoring bool
}

// New returns an empty state-dependency graph (no locks, no writes).
func New() *Graph {
	return &Graph{
		firstWrite: map[string]int{},
		lastWrite:  map[string]int{},
		writes:     map[string][]int{},
		monitoring: true,
	}
}

// OnLock records a granted lock request; the current lock index
// advances.
func (g *Graph) OnLock() { g.n++ }

// LockIndex returns the current lock index n (states 0..n exist).
func (g *Graph) LockIndex() int { return g.n }

// OnWrite records a write to target (entity or local variable) at the
// current lock index.
func (g *Graph) OnWrite(target string) {
	if !g.monitoring {
		return
	}
	if _, ok := g.firstWrite[target]; !ok {
		g.firstWrite[target] = g.n
	}
	g.lastWrite[target] = g.n
	if ws := g.writes[target]; len(ws) == 0 || ws[len(ws)-1] != g.n {
		g.writes[target] = append(ws, g.n)
	}
}

// StopMonitoring implements the §5 declared-last-lock optimization: the
// transaction can no longer deadlock, so further writes need not be
// tracked.
func (g *Graph) StopMonitoring() { g.monitoring = false }

// Monitoring reports whether writes are still tracked.
func (g *Graph) Monitoring() bool { return g.monitoring }

// WellDefined reports whether lock state q is currently restorable:
// 0 <= q <= n and no write interval [u, j) contains q.
func (g *Graph) WellDefined(q int) bool {
	if q < 0 || q > g.n {
		return false
	}
	for target, u := range g.firstWrite {
		if u <= q && q < g.lastWrite[target] {
			return false
		}
	}
	return true
}

// LatestWellDefinedAtOrBelow returns the largest well-defined lock
// state <= q. State 0 is always well-defined, so the result is always
// >= 0 (q is clamped into [0, n]).
func (g *Graph) LatestWellDefinedAtOrBelow(q int) int {
	if q > g.n {
		q = g.n
	}
	for ; q > 0; q-- {
		if g.WellDefined(q) {
			return q
		}
	}
	return 0
}

// WellDefinedStates returns all currently well-defined lock states in
// increasing order.
func (g *Graph) WellDefinedStates() []int {
	var out []int
	for q := 0; q <= g.n; q++ {
		if g.WellDefined(q) {
			out = append(out, q)
		}
	}
	return out
}

// Intervals returns the active destruction intervals, sorted by target
// name. Targets whose writes all share one lock index produce an empty
// interval and are omitted.
func (g *Graph) Intervals() []Interval {
	var out []Interval
	for target, u := range g.firstWrite {
		if j := g.lastWrite[target]; j > u {
			out = append(out, Interval{Target: target, First: u, Last: j})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// RestorabilityIndex returns the paper's index of restorability for
// target (first-write lock index minus one) and whether target has been
// written.
func (g *Graph) RestorabilityIndex(target string) (int, bool) {
	u, ok := g.firstWrite[target]
	return u - 1, ok
}

// FirstWrite returns the lock index of target's first surviving write.
func (g *Graph) FirstWrite(target string) (int, bool) {
	u, ok := g.firstWrite[target]
	return u, ok
}

// Rollback restores the bookkeeping to lock state q, which must be
// well-defined. Write records at lock indexes > q are undone: a target
// first written after q is forgotten entirely; a target first written
// at or before q keeps its record, clamped to q. (Well-definedness
// guarantees no target has writes on both sides of q, so clamping never
// actually fires for surviving targets; it is kept as a defensive
// invariant.)
func (g *Graph) Rollback(q int) error {
	if !g.WellDefined(q) {
		return fmt.Errorf("sdg: rollback to lock state %d which is not well-defined", q)
	}
	g.prune(q)
	return nil
}

// ForceRollback restores the bookkeeping to lock state q without
// requiring well-definedness — used by the hybrid (bounded-extra-copy)
// strategy when a checkpoint makes q restorable despite spanning write
// intervals. Write records above q are pruned precisely using the full
// write lists.
func (g *Graph) ForceRollback(q int) error {
	if q < 0 || q > g.n {
		return fmt.Errorf("sdg: rollback to lock state %d outside [0, %d]", q, g.n)
	}
	g.prune(q)
	return nil
}

// prune drops write records with lock index > q and resets the lock
// index.
func (g *Graph) prune(q int) {
	for target, ws := range g.writes {
		keep := ws[:0]
		for _, j := range ws {
			if j <= q {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			delete(g.writes, target)
			delete(g.firstWrite, target)
			delete(g.lastWrite, target)
			continue
		}
		g.writes[target] = keep
		g.firstWrite[target] = keep[0]
		g.lastWrite[target] = keep[len(keep)-1]
	}
	g.n = q
}

// RestoreAction says how the engine must restore one target when
// rolling back to a given state.
type RestoreAction int

// Restore actions: keep the current single copy (all its writes are at
// or before the target state) or reset to the pristine value (global
// value for entities, initial value for locals; no surviving write).
const (
	KeepCurrent RestoreAction = iota
	ResetPristine
)

// RestoreActionFor returns how to restore target when rolling back to
// well-defined state q.
func (g *Graph) RestoreActionFor(target string, q int) RestoreAction {
	u, written := g.firstWrite[target]
	if !written || u > q {
		return ResetPristine
	}
	return KeepCurrent
}

// Export renders the state-dependency graph in the paper's Figure 4
// form: vertices are lock states 0..n, chained by consecutive edges,
// with an extra edge {u-1, j} for each written target's destruction
// interval (u = first-write index, j = last-write index, j > u). The
// articulation points of this graph that are interior vertices
// correspond to the well-defined states (Corollary 1).
func (g *Graph) Export() *graph.Undirected {
	u := graph.NewUndirected()
	for q := 0; q <= g.n; q++ {
		u.AddNode(q)
		if q > 0 {
			u.AddEdge(q-1, q)
		}
	}
	for _, iv := range g.Intervals() {
		lo := iv.First - 1
		if lo < 0 {
			lo = 0
		}
		u.AddEdge(lo, iv.Last)
	}
	return u
}
