package sdg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyGraphAllWellDefined(t *testing.T) {
	g := New()
	if !g.WellDefined(0) {
		t.Error("state 0")
	}
	g.OnLock()
	g.OnLock()
	for q := 0; q <= 2; q++ {
		if !g.WellDefined(q) {
			t.Errorf("state %d with no writes", q)
		}
	}
	if g.WellDefined(-1) || g.WellDefined(3) {
		t.Error("out of range states are not well-defined")
	}
}

func TestIntervalDestruction(t *testing.T) {
	g := New()
	g.OnLock() // lock index 1
	g.OnWrite("A")
	g.OnLock()     // 2
	g.OnLock()     // 3
	g.OnWrite("A") // interval [1,3): destroys 1,2
	g.OnLock()     // 4
	want := []int{0, 3, 4}
	if got := g.WellDefinedStates(); !reflect.DeepEqual(got, want) {
		t.Errorf("well-defined = %v, want %v", got, want)
	}
	if g.LatestWellDefinedAtOrBelow(2) != 0 {
		t.Errorf("latest <= 2 = %d", g.LatestWellDefinedAtOrBelow(2))
	}
	if g.LatestWellDefinedAtOrBelow(3) != 3 {
		t.Error("latest <= 3")
	}
	if g.LatestWellDefinedAtOrBelow(99) != 4 {
		t.Error("clamping")
	}
	ivs := g.Intervals()
	if len(ivs) != 1 || ivs[0].Target != "A" || ivs[0].First != 1 || ivs[0].Last != 3 {
		t.Errorf("intervals = %v", ivs)
	}
	if rho, ok := g.RestorabilityIndex("A"); !ok || rho != 0 {
		t.Errorf("restorability = %d %v", rho, ok)
	}
	if u, ok := g.FirstWrite("A"); !ok || u != 1 {
		t.Errorf("first write = %d %v", u, ok)
	}
}

func TestSingleWriteTargetsDestroyNothing(t *testing.T) {
	g := New()
	g.OnLock()
	g.OnWrite("A")
	g.OnWrite("A") // same interval
	g.OnLock()
	for q := 0; q <= 2; q++ {
		if !g.WellDefined(q) {
			t.Errorf("state %d", q)
		}
	}
	if len(g.Intervals()) != 0 {
		t.Error("no interval expected")
	}
}

func TestRestoreActions(t *testing.T) {
	g := New()
	g.OnLock() // 1
	g.OnWrite("A")
	g.OnLock() // 2
	g.OnWrite("B")
	// Rolling to state 1: A first written at 1 <= 1 -> keep; B first
	// written at 2 > 1 -> pristine.
	if g.RestoreActionFor("A", 1) != KeepCurrent {
		t.Error("A should keep")
	}
	if g.RestoreActionFor("B", 1) != ResetPristine {
		t.Error("B should reset")
	}
	if g.RestoreActionFor("never", 1) != ResetPristine {
		t.Error("unwritten targets reset (no-op)")
	}
}

func TestRollback(t *testing.T) {
	g := New()
	g.OnLock() // 1
	g.OnWrite("A")
	g.OnLock() // 2
	g.OnWrite("B")
	g.OnLock()     // 3
	g.OnWrite("A") // destroys 1,2
	if err := g.Rollback(2); err == nil {
		t.Error("rollback to destroyed state must fail")
	}
	if err := g.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if g.LockIndex() != 0 {
		t.Error("lock index not reset")
	}
	if _, ok := g.FirstWrite("A"); ok {
		t.Error("A record should be gone")
	}
	// Graph is reusable after rollback.
	g.OnLock()
	g.OnWrite("A")
	if !g.WellDefined(1) {
		t.Error("fresh writes after rollback")
	}
}

func TestRollbackKeepsEarlierRecords(t *testing.T) {
	g := New()
	g.OnLock() // 1
	g.OnWrite("A")
	g.OnLock() // 2
	g.OnLock() // 3
	g.OnWrite("B")
	// State 2: A kept (first write 1 <= 2, last 1 <= 2), B dropped.
	if err := g.Rollback(2); err != nil {
		t.Fatal(err)
	}
	if u, ok := g.FirstWrite("A"); !ok || u != 1 {
		t.Error("A record lost")
	}
	if _, ok := g.FirstWrite("B"); ok {
		t.Error("B record should be dropped")
	}
}

func TestStopMonitoring(t *testing.T) {
	g := New()
	g.OnLock()
	g.StopMonitoring()
	g.OnWrite("A")
	g.OnLock()
	g.OnWrite("A")
	if len(g.Intervals()) != 0 {
		t.Error("writes after StopMonitoring must not be tracked")
	}
	if g.Monitoring() {
		t.Error("monitoring flag")
	}
}

func TestExportArticulationCorrespondence(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.OnLock()
	}
	// Figure 4 pattern: A@[1,4], D@[4,5], B@[5,6].
	sim := func(target string, idxs ...int) {
		// Directly install intervals via first/last manipulation: write
		// at each index is simulated by temporary lock-index override.
		for _, j := range idxs {
			g.firstWrite[target] = min(idxs...)
			if j > g.lastWrite[target] {
				g.lastWrite[target] = j
			}
		}
	}
	sim("A", 1, 4)
	sim("D", 4, 5)
	sim("B", 5, 6)
	u := g.Export()
	arts := map[int]bool{}
	for _, v := range u.ArticulationPoints() {
		arts[v] = true
	}
	for q := 1; q < 6; q++ {
		if g.WellDefined(q) != arts[q] {
			t.Errorf("state %d: well-defined %v, articulation %v", q, g.WellDefined(q), arts[q])
		}
	}
}

func min(xs ...int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// oracle recomputes well-definedness from a raw write log.
type wlog struct {
	target string
	li     int
}

func oracleWellDefined(n int, log []wlog, q int) bool {
	if q < 0 || q > n {
		return false
	}
	first := map[string]int{}
	last := map[string]int{}
	for _, w := range log {
		if _, ok := first[w.target]; !ok {
			first[w.target] = w.li
		}
		last[w.target] = w.li
	}
	for tgt, u := range first {
		if u <= q && q < last[tgt] {
			return false
		}
	}
	return true
}

func TestQuickWellDefinedMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var log []wlog
		n := 0
		targets := []string{"A", "B", "C", "l1"}
		for step := 0; step < 30; step++ {
			if rng.Intn(2) == 0 {
				g.OnLock()
				n++
			} else if n > 0 {
				tgt := targets[rng.Intn(len(targets))]
				g.OnWrite(tgt)
				log = append(log, wlog{tgt, n})
			}
		}
		for q := -1; q <= n+1; q++ {
			if g.WellDefined(q) != oracleWellDefined(n, log, q) {
				return false
			}
		}
		// LatestWellDefinedAtOrBelow is the max well-defined <= q.
		for q := 0; q <= n; q++ {
			got := g.LatestWellDefinedAtOrBelow(q)
			if !g.WellDefined(got) || got > q {
				return false
			}
			for r := got + 1; r <= q; r++ {
				if g.WellDefined(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRollbackConsistent: rolling back to a well-defined state
// leaves a graph equivalent to replaying the write log prefix.
func TestQuickRollbackConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var log []wlog
		n := 0
		targets := []string{"A", "B", "l"}
		for step := 0; step < 25; step++ {
			if rng.Intn(2) == 0 {
				g.OnLock()
				n++
			} else if n > 0 {
				tgt := targets[rng.Intn(len(targets))]
				g.OnWrite(tgt)
				log = append(log, wlog{tgt, n})
			}
		}
		if n == 0 {
			return true
		}
		q := g.LatestWellDefinedAtOrBelow(rng.Intn(n + 1))
		if err := g.Rollback(q); err != nil {
			return false
		}
		// Replay prefix into a fresh graph.
		fresh := New()
		for i := 0; i < q; i++ {
			fresh.OnLock()
		}
		for _, w := range log {
			if w.li <= q {
				// Writes with lock index <= q survive... but OnWrite
				// records at the *current* lock index; emulate by
				// setting counters directly through the public API is
				// impossible, so compare observable behavior instead.
				_ = w
			}
		}
		// Observable equivalence: every state 0..q has the same
		// well-definedness as the oracle over the surviving prefix.
		prefix := []wlog{}
		for _, w := range log {
			if w.li <= q {
				prefix = append(prefix, w)
			}
		}
		for r := 0; r <= q; r++ {
			if g.WellDefined(r) != oracleWellDefined(q, prefix, r) {
				return false
			}
		}
		return g.LockIndex() == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderableIntervalString(t *testing.T) {
	iv := Interval{Target: "A", First: 1, Last: 3}
	if fmt.Sprint(iv) == "" {
		t.Error("interval should print")
	}
}
