package lock

import (
	"sync"
	"testing"

	"partialrollback/internal/intern"
	"partialrollback/internal/txn"
)

// stripedTable builds a k-striped table with n interned entities
// ("e0".."eN-1") and the word table grown to cover them.
func stripedTable(t testing.TB, k, n int) (*Table, []intern.ID) {
	t.Helper()
	names := intern.NewTable()
	tab := NewTableStriped(names, k)
	ids := make([]intern.ID, n)
	for i := range ids {
		ids[i] = names.Intern("e" + string(rune('0'+i%10)) + string(rune('a'+i/10)))
	}
	tab.EnsureEntities(names.Len())
	return tab, ids
}

func TestFastSharedCAS(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[0]
	if !tab.TryFastSharedID(e) || !tab.TryFastSharedID(e) {
		t.Fatal("fast shared grant on idle entity failed")
	}
	if got := tab.FastSharedCountID(e); got != 2 {
		t.Fatalf("fast count = %d, want 2", got)
	}
	// Anonymous holders block an exclusive claim of the word...
	if tab.TryAcquireExclusiveIdleID(9, e) {
		t.Fatal("exclusive idle claim succeeded over fast shared holders")
	}
	tab.DropFastSharedID(e)
	tab.DropFastSharedID(e)
	if got := tab.FastSharedCountID(e); got != 0 {
		t.Fatalf("fast count after drops = %d, want 0", got)
	}
	// ...and a drained word is claimable again.
	if !tab.TryAcquireExclusiveIdleID(9, e) {
		t.Fatal("exclusive idle claim failed on drained entity")
	}
	if !tab.TryReleaseUncontendedID(9, e) {
		t.Fatal("uncontended release failed")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastSharedFailsWhenTableOwned(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[1]
	if granted, _, err := tab.AcquireID(1, e, Exclusive, nil); err != nil || !granted {
		t.Fatalf("exclusive acquire: granted=%v err=%v", granted, err)
	}
	if tab.TryFastSharedID(e) {
		t.Fatal("fast shared grant succeeded on a table-owned entity")
	}
	if tab.TryAcquireExclusiveIdleID(2, e) {
		t.Fatal("second exclusive idle claim succeeded")
	}
	if _, err := tab.ReleaseID(1, e, nil); err != nil {
		t.Fatal(err)
	}
	// ReleaseID drains the entry, un-owning the word (unownIfEmpty): the
	// CAS fast path must resume.
	if !tab.TryFastSharedID(e) {
		t.Fatal("fast shared grant failed after entity drained")
	}
	tab.DropFastSharedID(e)
}

func TestSharedOwnedGrant(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[2]
	if granted, _, err := tab.AcquireID(1, e, Shared, nil); err != nil || !granted {
		t.Fatalf("table shared acquire: granted=%v err=%v", granted, err)
	}
	// Entity is table-owned with an all-shared holder set: the owned
	// shared fast path grants, the CAS path must refuse.
	if tab.TryFastSharedID(e) {
		t.Fatal("CAS fast path granted on a table-owned entity")
	}
	if !tab.TryAcquireSharedOwnedID(2, e) {
		t.Fatal("shared grant into owned compatible entry failed")
	}
	if got := tab.HoldersAppend(e, nil); len(got) != 2 {
		t.Fatalf("holders = %v, want 2", got)
	}
	// An exclusive holder makes the entry incompatible.
	if !tab.TryReleaseUncontendedID(2, e) || !tab.TryReleaseUncontendedID(1, e) {
		t.Fatal("uncontended releases failed")
	}
	if granted, _, err := tab.AcquireID(3, e, Exclusive, nil); err != nil || !granted {
		t.Fatalf("exclusive acquire: granted=%v err=%v", granted, err)
	}
	if tab.TryAcquireSharedOwnedID(4, e) {
		t.Fatal("shared grant succeeded over an exclusive holder")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateFastShared(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[3]
	if !tab.TryFastSharedID(e) || !tab.TryFastSharedID(e) {
		t.Fatal("fast shared grants failed")
	}
	if err := tab.MigrateFastSharedID(e, []txn.ID{1}); err == nil {
		t.Fatal("migrate with mismatched holder count succeeded")
	}
	if err := tab.MigrateFastSharedID(e, []txn.ID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := tab.FastSharedCountID(e); got != 0 {
		t.Fatalf("fast count after migration = %d, want 0", got)
	}
	if got := tab.HoldersAppend(e, nil); len(got) != 2 {
		t.Fatalf("table holders after migration = %v, want [1 2]", got)
	}
	if err := tab.MigrateFastSharedID(e, nil); err == nil {
		t.Fatal("migrating an already-owned entity succeeded")
	}
	// A conflicting exclusive request now sees both holders as blockers.
	granted, blockers, err := tab.AcquireID(3, e, Exclusive, nil)
	if err != nil || granted || len(blockers) != 2 {
		t.Fatalf("post-migration acquire: granted=%v blockers=%v err=%v", granted, blockers, err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStripeAcquireCounters pins that every grant path — CAS fast
// shared, stripe-mutex owned-shared and idle-exclusive, and the
// exclusive-access AcquireID — ticks the per-stripe counters, and that
// migration does not (it re-homes existing holds).
func TestStripeAcquireCounters(t *testing.T) {
	tab, ents := stripedTable(t, 2, 4)
	sum := func() (s int64) {
		for _, v := range tab.StripeAcquires() {
			s += v
		}
		return
	}
	if sum() != 0 {
		t.Fatalf("initial acquires = %d", sum())
	}
	tab.TryFastSharedID(ents[0])
	tab.TryFastSharedID(ents[0])
	if got := sum(); got != 2 {
		t.Fatalf("after CAS grants: acquires = %d, want 2", got)
	}
	if err := tab.MigrateFastSharedID(ents[0], []txn.ID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := sum(); got != 2 {
		t.Fatalf("migration must not count as a grant: acquires = %d, want 2", got)
	}
	tab.TryAcquireSharedOwnedID(3, ents[0])
	tab.TryAcquireExclusiveIdleID(4, ents[1])
	if granted, _, err := tab.AcquireID(5, ents[2], Exclusive, nil); err != nil || !granted {
		t.Fatalf("acquire: granted=%v err=%v", granted, err)
	}
	if got := sum(); got != 5 {
		t.Fatalf("acquires = %d, want 5", got)
	}
	if got := len(tab.StripeAcquires()); got != 2 {
		t.Fatalf("stripe counter width = %d, want 2", got)
	}
}

// TestStripedFastPathsConcurrent hammers the lock-free CAS path and the
// stripe-mutex paths from many goroutines at once (run with -race):
// readers cycle fast shared holds while writers cycle idle exclusive
// claims on the same entities, so the CAS vs CAS-claim race happens
// constantly. Afterwards every entity must be idle again and the
// invariant sweep clean.
func TestStripedFastPathsConcurrent(t *testing.T) {
	tab, ents := stripedTable(t, 4, 8)
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := txn.ID(g + 1)
			for i := 0; i < iters; i++ {
				e := ents[(g+i)%len(ents)]
				if g%2 == 0 {
					if tab.TryFastSharedID(e) {
						tab.DropFastSharedID(e)
					}
				} else {
					if tab.TryAcquireExclusiveIdleID(id, e) {
						if !tab.TryReleaseUncontendedID(id, e) {
							panic("claimed exclusive hold vanished")
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, e := range ents {
		if got := tab.FastSharedCountID(e); got != 0 {
			t.Errorf("entity %d: leaked fast count %d", e, got)
		}
		if got := tab.HoldersAppend(e, nil); len(got) != 0 {
			t.Errorf("entity %d: leaked holders %v", e, got)
		}
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFastSharedZeroAlloc pins the tentpole hot path: a CAS shared
// grant/release cycle allocates nothing.
func TestFastSharedZeroAlloc(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[0]
	n := testing.AllocsPerRun(200, func() {
		if !tab.TryFastSharedID(e) {
			t.Fatal("fast shared grant failed")
		}
		tab.DropFastSharedID(e)
	})
	if n != 0 {
		t.Fatalf("CAS shared grant/release allocates %v per op, want 0", n)
	}
}

// TestStripedGrantReleaseZeroAlloc pins the stripe-mutex grant paths at
// zero allocations in steady state (after one warm-up cycle grows the
// stripe's entry and held-list storage).
func TestStripedGrantReleaseZeroAlloc(t *testing.T) {
	tab, ents := stripedTable(t, 4, 4)
	e := ents[1]
	id := txn.ID(7)
	if !tab.TryAcquireExclusiveIdleID(id, e) || !tab.TryReleaseUncontendedID(id, e) {
		t.Fatal("warm-up cycle failed")
	}
	n := testing.AllocsPerRun(200, func() {
		if !tab.TryAcquireExclusiveIdleID(id, e) {
			t.Fatal("exclusive idle claim failed")
		}
		if !tab.TryReleaseUncontendedID(id, e) {
			t.Fatal("uncontended release failed")
		}
	})
	if n != 0 {
		t.Fatalf("striped grant/release allocates %v per op, want 0", n)
	}
}

// BenchmarkUncontendedSharedLock is the tentpole acceptance benchmark:
// an uncontended shared grant/release through the CAS fast path versus
// the mutex-table acquire it replaces. The table side is measured the
// way the classic engine pays for it — under the single mutex that
// serializes every step — because that is exactly the path a striped
// engine's CAS grant bypasses: mutex, waiting-map check, holder-list
// and held-index bookkeeping, versus one CAS each way on a per-entity
// word. The CAS path is expected to be at least 3x faster
// single-threaded, and unlike the mutex path it also scales with cores
// (cas-parallel).
func BenchmarkUncontendedSharedLock(b *testing.B) {
	b.Run("cas", func(b *testing.B) {
		tab, ents := stripedTable(b, 8, 1)
		e := ents[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !tab.TryFastSharedID(e) {
				b.Fatal("fast shared grant failed")
			}
			tab.DropFastSharedID(e)
		}
	})
	b.Run("table", func(b *testing.B) {
		names := intern.NewTable()
		tab := NewTableInterned(names)
		e := names.Intern("hot")
		id := txn.ID(1)
		var mu sync.Mutex
		var gbuf []GrantID
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			granted, _, err := tab.AcquireID(id, e, Shared, nil)
			mu.Unlock()
			if err != nil || !granted {
				b.Fatalf("acquire: granted=%v err=%v", granted, err)
			}
			mu.Lock()
			gbuf, err = tab.ReleaseID(id, e, gbuf[:0])
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	// The scaling story: CAS grants on distinct entities from all procs.
	b.Run("cas-parallel", func(b *testing.B) {
		tab, ents := stripedTable(b, 8, 64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				e := ents[i%len(ents)]
				i++
				if !tab.TryFastSharedID(e) {
					b.Fatal("fast shared grant failed")
				}
				tab.DropFastSharedID(e)
			}
		})
	})
}
