package lock

// This file holds the striped table's concurrent fast paths. The
// concurrency protocol, shared with internal/core (see DESIGN.md,
// "Intra-shard striping"):
//
//   - The engine guards every structural operation (waits, promotions,
//     deadlock handling, rollback, commit, registration) with a write
//     lock that excludes all fast paths, and runs fast paths under the
//     matching read lock. Methods here therefore only ever race with
//     each other, never with the exclusive-access methods in table.go.
//
//   - Each entity e has an atomic word words[e]. Bit 31 (ownedBit) set
//     means the entity's state lives in its table entry ("table-owned":
//     holders, queue). Otherwise the low 31 bits count anonymous
//     CAS-granted shared holders; count > 0 implies the entry is empty.
//     The two regimes are mutually exclusive by construction.
//
//   - TryFastSharedID / DropFastSharedID run lock-free: a single CAS
//     increments or decrements the count while the owned bit is clear.
//     The CAS orders the grant against a concurrent exclusive claim of
//     the same word (TryAcquireExclusiveIdleID's CAS 0 -> ownedBit):
//     whichever lands first wins, the loser falls back.
//
//   - TryAcquireSharedOwnedID / TryAcquireExclusiveIdleID /
//     TryReleaseUncontendedID take only the entity's stripe mutex, so
//     uncontended table grants on different stripes proceed in
//     parallel. They mutate holders and the per-stripe held index —
//     never queues or waiting, which belong to the exclusive paths.
//
//   - When an exclusive-access path needs holder identities (a
//     conflicting request must know whom it waits for), the engine
//     first calls MigrateFastSharedID under its write lock, converting
//     the anonymous count into ordinary table holders and setting the
//     owned bit. From then on the entity is table-owned until its entry
//     drains (unownIfEmpty), at which point the CAS fast path resumes.
//
// Memory ordering: all cross-goroutine handoffs go through one of (a)
// the engine RWMutex, (b) a stripe mutex, or (c) a successful CAS /
// atomic load-store pair on an entity word — each of which establishes
// happens-before. A reader that fast-grants S and then reads the global
// store value is ordered after the writer that installed it because the
// install happened under a lock (engine write lock or the same stripe
// mutex) released before the entity became grantable again.

import (
	"fmt"
	"sync/atomic"

	"partialrollback/internal/intern"
	"partialrollback/internal/txn"
)

// ownedBit flags an entity word as table-owned; the low 31 bits then
// must be zero. With the bit clear they count anonymous fast shared
// holders.
const ownedBit uint32 = 1 << 31

// EnsureEntities grows the fast-word table to cover entity IDs
// [0, n). Exclusive access required (the engine calls it from Register
// under its write lock); no-op on single-stripe tables.
func (t *Table) EnsureEntities(n int) {
	if t.k <= 1 || n <= len(t.words) {
		return
	}
	t.words = append(t.words, make([]uint32, n-len(t.words))...)
}

// TryFastSharedID attempts the uncontended shared-lock fast path: one
// CAS incrementing ent's anonymous shared count. It fails (false) when
// the entity is table-owned or the word table does not cover ent; the
// caller falls back to the table. Safe under the engine read lock.
func (t *Table) TryFastSharedID(ent intern.ID) bool {
	if int(ent) >= len(t.words) {
		return false
	}
	w := &t.words[ent]
	for {
		v := atomic.LoadUint32(w)
		if v&ownedBit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, v, v+1) {
			t.countAcquire(ent)
			return true
		}
	}
}

// DropFastSharedID releases one anonymous fast shared hold of ent. The
// caller must actually hold one (the engine's lock slot records it), so
// the word is un-owned with a positive count — while any fast hold
// exists nothing can set the owned bit or store zero, which makes a
// single atomic decrement sufficient (no CAS loop). Both fast-path
// (read lock) and exclusive-path callers use this.
func (t *Table) DropFastSharedID(ent intern.ID) {
	nv := atomic.AddUint32(&t.words[ent], ^uint32(0))
	if nv&ownedBit != 0 || nv == ownedBit-1 {
		panic("lock: DropFastSharedID without a fast shared hold")
	}
}

// FastSharedCountID returns ent's anonymous fast shared-holder count
// (0 when table-owned). Exclusive access required for a stable answer.
func (t *Table) FastSharedCountID(ent intern.ID) int {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return 0
	}
	v := atomic.LoadUint32(&t.words[ent])
	if v&ownedBit != 0 {
		return 0
	}
	return int(v)
}

// MigrateFastSharedID converts ent's anonymous fast shared holders into
// ordinary table holders (the given ids, which the engine collected
// from its transaction slots) and marks the entity table-owned.
// Exclusive access required. The count must match len(ids) exactly.
func (t *Table) MigrateFastSharedID(ent intern.ID, ids []txn.ID) error {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return errMigrate(t, ent, "no fast word")
	}
	w := &t.words[ent]
	v := atomic.LoadUint32(w)
	if v&ownedBit != 0 {
		return errMigrate(t, ent, "already table-owned")
	}
	if int(v) != len(ids) {
		return errMigrate(t, ent, "fast count does not match holder slots")
	}
	st := t.stripeOf(ent)
	e := t.entryForStripe(st, ent)
	for _, id := range ids {
		// Direct grant without countAcquire: migration re-homes existing
		// holds, it does not grant new ones. grantTo sets the owned bit.
		e.holders = append(e.holders, holderRec{txn: id, mode: Shared})
		hl := st.held[id]
		if hl == nil {
			hl = st.newHeldList()
			st.held[id] = hl
		}
		hl.recs = append(hl.recs, heldRec{ent: ent, mode: Shared})
	}
	atomic.StoreUint32(w, ownedBit)
	return nil
}

func errMigrate(t *Table, ent intern.ID, why string) error {
	return fmt.Errorf("lock: migrate fast holders of %q: %s", t.names.Name(ent), why)
}

// TryAcquireSharedOwnedID attempts an uncontended shared grant on a
// table-owned entity: under the stripe mutex, grant when every holder
// is shared and nothing is queued. The caller (engine read lock held)
// guarantees id is running, not waiting, and does not hold ent.
func (t *Table) TryAcquireSharedOwnedID(id txn.ID, ent intern.ID) bool {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return false
	}
	st := t.stripeOf(ent)
	st.mu.Lock()
	defer st.mu.Unlock()
	if atomic.LoadUint32(&t.words[ent])&ownedBit == 0 {
		return false // un-owned: the CAS path is the right one
	}
	i := int(ent) / t.k
	if i >= len(st.entries) {
		return false
	}
	e := &st.entries[i]
	if len(e.holders) == 0 || e.numX != 0 || len(e.queue) > 0 {
		return false
	}
	t.grantTo(st, e, id, ent, Shared)
	t.countAcquire(ent)
	return true
}

// TryAcquireExclusiveIdleID attempts an uncontended exclusive grant on
// an idle entity: claim the word (CAS 0 -> ownedBit, which excludes
// both fast shared holders and other claimants) and grant into the
// empty entry under the stripe mutex. The caller (engine read lock
// held) guarantees id is running, not waiting, and does not hold ent.
func (t *Table) TryAcquireExclusiveIdleID(id txn.ID, ent intern.ID) bool {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return false
	}
	st := t.stripeOf(ent)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !atomic.CompareAndSwapUint32(&t.words[ent], 0, ownedBit) {
		return false // fast shared holders, or already table-owned
	}
	e := t.entryForStripe(st, ent)
	// The word was zero, so the entry must be empty; grant.
	t.grantTo(st, e, id, ent, Exclusive)
	t.countAcquire(ent)
	return true
}

// HasWaitersStriped is the read-lock-safe HasWaiters: it reads the
// queue length under the stripe mutex, so it never races with a
// concurrent fast path growing the stripe's entries slice. Queues
// themselves mutate only under the engine write lock, so the answer is
// stable for the remainder of the caller's read-side critical section.
func (t *Table) HasWaitersStriped(ent intern.ID) bool {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return t.HasWaiters(ent)
	}
	st := t.stripeOf(ent)
	st.mu.Lock()
	defer st.mu.Unlock()
	i := int(ent) / t.k
	if i >= len(st.entries) {
		return false
	}
	return len(st.entries[i].queue) > 0
}

// TryReleaseUncontendedID drops id's table hold on ent when nothing is
// queued, un-owning the word if the entry drains. The caller (engine
// read lock held) must have checked HasWaitersStriped(ent) == false —
// queues cannot change under the read lock — and that id's slot is a
// table hold. False means the hold was not found (caller falls back to
// the exclusive path for the standard error).
func (t *Table) TryReleaseUncontendedID(id txn.ID, ent intern.ID) bool {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return false
	}
	st := t.stripeOf(ent)
	st.mu.Lock()
	defer st.mu.Unlock()
	i := int(ent) / t.k
	if i >= len(st.entries) {
		return false
	}
	e := &st.entries[i]
	found := false
	for j := range e.holders {
		if e.holders[j].txn == id {
			if e.holders[j].mode == Exclusive {
				e.numX--
			}
			e.holders[j] = e.holders[len(e.holders)-1]
			e.holders = e.holders[:len(e.holders)-1]
			found = true
			break
		}
	}
	if !found {
		return false
	}
	t.dropHeldRec(id, ent)
	if len(e.holders) == 0 && len(e.queue) == 0 {
		atomic.StoreUint32(&t.words[ent], 0)
	}
	return true
}

// unownIfEmpty clears ent's owned bit when its entry has fully drained
// (no holders, no queue), handing the entity back to the CAS fast
// path. Exclusive access required (called from ReleaseID /
// RemoveWaiterID).
func (t *Table) unownIfEmpty(ent intern.ID, e *entry) {
	if t.k <= 1 || int(ent) >= len(t.words) {
		return
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		atomic.StoreUint32(&t.words[ent], 0)
	}
}
