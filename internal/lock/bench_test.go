package lock

import (
	"testing"

	"partialrollback/internal/intern"
	"partialrollback/internal/txn"
)

// benchTable builds a table over n interned entities and returns the
// table plus the IDs, with one warm-up acquire/release per entity so
// every internal slice has reached steady-state capacity.
func benchTable(n int) (*Table, []intern.ID) {
	names := intern.NewTable()
	t := NewTableInterned(names)
	ids := make([]intern.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = names.Intern(string(rune('a'+i%26)) + "ent")
	}
	return t, ids
}

// BenchmarkGrantRelease measures the uncontended hot path: one
// transaction acquiring and releasing an exclusive lock through the
// interned API. This is the per-operation cost every Step pays.
func BenchmarkGrantRelease(b *testing.B) {
	t, _ := benchTable(0)
	names := t.Names()
	ent := names.Intern("hot")
	id := txn.ID(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		granted, _, err := t.AcquireID(id, ent, Exclusive, nil)
		if err != nil || !granted {
			b.Fatalf("acquire: granted=%v err=%v", granted, err)
		}
		if _, err := t.ReleaseID(id, ent, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGrantReleaseZeroAlloc pins the acceptance criterion: the
// uncontended grant/release cycle allocates nothing in steady state.
func TestGrantReleaseZeroAlloc(t *testing.T) {
	tab, _ := benchTable(0)
	ent := tab.Names().Intern("hot")
	id := txn.ID(1)
	var gbuf []GrantID
	n := testing.AllocsPerRun(200, func() {
		granted, _, err := tab.AcquireID(id, ent, Exclusive, nil)
		if err != nil || !granted {
			t.Fatalf("acquire: granted=%v err=%v", granted, err)
		}
		gbuf, err = tab.ReleaseID(id, ent, gbuf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("grant/release allocates %v per op, want 0", n)
	}
}

// TestWaitAndPromoteZeroAlloc covers the contended path with buffer
// reuse: queue a conflicting waiter (append-into-caller blockers),
// retract it, release. Steady state allocates nothing.
func TestWaitAndPromoteZeroAlloc(t *testing.T) {
	tab, _ := benchTable(0)
	ent := tab.Names().Intern("hot")
	holder, waiter := txn.ID(1), txn.ID(2)
	var blockers []txn.ID
	var gbuf []GrantID
	n := testing.AllocsPerRun(200, func() {
		if granted, _, err := tab.AcquireID(holder, ent, Exclusive, nil); err != nil || !granted {
			t.Fatalf("holder acquire: granted=%v err=%v", granted, err)
		}
		var err error
		granted := false
		granted, blockers, err = tab.AcquireID(waiter, ent, Exclusive, blockers[:0])
		if err != nil || granted || len(blockers) != 1 || blockers[0] != holder {
			t.Fatalf("waiter acquire: granted=%v blockers=%v err=%v", granted, blockers, err)
		}
		gbuf, err = tab.ReleaseID(holder, ent, gbuf[:0])
		if err != nil || len(gbuf) != 1 || gbuf[0].Txn != waiter {
			t.Fatalf("release: grants=%v err=%v", gbuf, err)
		}
		gbuf, err = tab.ReleaseID(waiter, ent, gbuf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("wait/promote cycle allocates %v per op, want 0", n)
	}
}
