// Package lock implements the lock table for the two-phase locking
// system of §2: shared and exclusive locks on named entities, with FIFO
// wait queues. Grant rules follow the paper's database-management
// responses:
//
//  1. a request is granted when no conflicting transaction holds a
//     lock on the entity (shared requests conflict only with exclusive
//     holders; exclusive requests conflict with any holder);
//  2. otherwise the requester waits.
//
// Deadlock detection and rollback (response 3) live above this package,
// in internal/deadlock and internal/core.
//
// The table is not safe for concurrent use; the owning System
// serializes access.
package lock

import (
	"fmt"
	"sort"

	"partialrollback/internal/txn"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Compatible reports whether a lock of mode m may coexist with a held
// lock of mode held.
func Compatible(m, held Mode) bool {
	return m == Shared && held == Shared
}

// Grant records a lock grant, returned by Release when queued waiters
// are promoted.
type Grant struct {
	Txn    txn.ID
	Entity string
	Mode   Mode
}

// Waiter is one queued request.
type Waiter struct {
	Txn  txn.ID
	Mode Mode
}

type entry struct {
	holders map[txn.ID]Mode
	queue   []Waiter
}

// Table is the lock table.
type Table struct {
	entries map[string]*entry
	// held indexes the entities each transaction holds.
	held map[txn.ID]map[string]Mode
	// waiting maps each waiting transaction to the entity it waits on.
	// A transaction waits on at most one entity at a time.
	waiting map[txn.ID]string
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{
		entries: map[string]*entry{},
		held:    map[txn.ID]map[string]Mode{},
		waiting: map[txn.ID]string{},
	}
}

func (t *Table) entryFor(name string) *entry {
	e := t.entries[name]
	if e == nil {
		e = &entry{holders: map[txn.ID]Mode{}}
		t.entries[name] = e
	}
	return e
}

// Acquire requests a lock. If grantable it is granted immediately and
// Acquire returns granted=true. Otherwise the request is queued FIFO
// and blockers lists the conflicting holders (the transactions the
// requester now waits for, i.e. the arcs added to the concurrency
// graph).
//
// Re-requesting an entity already held, or requesting while already
// waiting, is a programming error and returns a non-nil error.
func (t *Table) Acquire(id txn.ID, name string, m Mode) (granted bool, blockers []txn.ID, err error) {
	if ent, isWaiting := t.waiting[id]; isWaiting {
		return false, nil, fmt.Errorf("lock: %v requested %q while waiting on %q", id, name, ent)
	}
	if _, holds := t.held[id][name]; holds {
		return false, nil, fmt.Errorf("lock: %v re-requested held entity %q", id, name)
	}
	e := t.entryFor(name)
	if t.grantable(e, m) {
		t.grant(id, name, m)
		return true, nil, nil
	}
	e.queue = append(e.queue, Waiter{Txn: id, Mode: m})
	t.waiting[id] = name
	for h := range e.holders {
		if h != id {
			blockers = append(blockers, h)
		}
	}
	sortIDs(blockers)
	return false, blockers, nil
}

func (t *Table) grantable(e *entry, m Mode) bool {
	if len(e.holders) == 0 {
		return true
	}
	if m == Exclusive {
		return false
	}
	for _, hm := range e.holders {
		if hm == Exclusive {
			return false
		}
	}
	return true
}

func (t *Table) grant(id txn.ID, name string, m Mode) {
	e := t.entryFor(name)
	e.holders[id] = m
	if t.held[id] == nil {
		t.held[id] = map[string]Mode{}
	}
	t.held[id][name] = m
}

// Release drops id's lock on name and promotes queued waiters FIFO:
// consecutive grantable requests at the head of the queue are granted
// and returned. Releasing an entity not held returns an error.
func (t *Table) Release(id txn.ID, name string) ([]Grant, error) {
	e := t.entries[name]
	if e == nil {
		return nil, fmt.Errorf("lock: release of unknown entity %q", name)
	}
	if _, ok := e.holders[id]; !ok {
		return nil, fmt.Errorf("lock: %v released %q it does not hold", id, name)
	}
	delete(e.holders, id)
	delete(t.held[id], name)
	return t.promote(name), nil
}

// promote grants queued requests in *age* order (ascending transaction
// ID; the engine assigns IDs in entry order), repeatedly granting the
// oldest grantable waiter until none remains. Two properties matter:
//
//   - every waiter left queued conflicts with at least one *current
//     holder*, so the wait-for graph always has an arc for every waiter
//     and deadlock detection stays sound;
//   - the oldest waiting transaction wins the entity as soon as it is
//     compatible. Combined with victim policies that never preempt the
//     oldest active transaction, this gives the wound-wait liveness
//     argument: the oldest transaction's progress is monotone, so
//     preemption rings cannot run forever (a failure mode the
//     randomized soak test exhibited under plain FIFO promotion).
func (t *Table) promote(name string) []Grant {
	e := t.entries[name]
	if e == nil {
		return nil
	}
	var grants []Grant
	for {
		best := -1
		for i, w := range e.queue {
			if !t.grantable(e, w.Mode) {
				continue
			}
			if best == -1 || w.Txn < e.queue[best].Txn {
				best = i
			}
		}
		if best == -1 {
			return grants
		}
		w := e.queue[best]
		e.queue = append(e.queue[:best], e.queue[best+1:]...)
		delete(t.waiting, w.Txn)
		t.grant(w.Txn, name, w.Mode)
		grants = append(grants, Grant{Txn: w.Txn, Entity: name, Mode: w.Mode})
	}
}

// RemoveWaiter retracts id's queued request (used when a waiting
// transaction is chosen as a rollback victim). It returns any grants
// promoted as a result (a retracted head request can unblock others),
// and reports whether id was actually waiting on name.
func (t *Table) RemoveWaiter(id txn.ID, name string) ([]Grant, bool) {
	e := t.entries[name]
	if e == nil {
		return nil, false
	}
	for i, w := range e.queue {
		if w.Txn == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			delete(t.waiting, id)
			return t.promote(name), true
		}
	}
	return nil, false
}

// ReleaseAll drops every lock id holds and retracts its queued request
// if any, returning all resulting grants. Used by commit and by total
// restart.
func (t *Table) ReleaseAll(id txn.ID) []Grant {
	var grants []Grant
	if ent, ok := t.waiting[id]; ok {
		g, _ := t.RemoveWaiter(id, ent)
		grants = append(grants, g...)
	}
	names := make([]string, 0, len(t.held[id]))
	for name := range t.held[id] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, err := t.Release(id, name)
		if err == nil {
			grants = append(grants, g...)
		}
	}
	delete(t.held, id)
	return grants
}

// Holders returns the transactions holding name, sorted.
func (t *Table) Holders(name string) []txn.ID {
	e := t.entries[name]
	if e == nil {
		return nil
	}
	out := make([]txn.ID, 0, len(e.holders))
	for id := range e.holders {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// ModeOf returns the mode id holds on name, if any.
func (t *Table) ModeOf(id txn.ID, name string) (Mode, bool) {
	m, ok := t.held[id][name]
	return m, ok
}

// HeldBy returns the entities id holds, sorted.
func (t *Table) HeldBy(id txn.ID) []string {
	out := make([]string, 0, len(t.held[id]))
	for name := range t.held[id] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WaitingOn returns the entity id is queued for, if any.
func (t *Table) WaitingOn(id txn.ID) (string, bool) {
	name, ok := t.waiting[id]
	return name, ok
}

// Queue returns the waiters queued on name, in order.
func (t *Table) Queue(name string) []Waiter {
	e := t.entries[name]
	if e == nil {
		return nil
	}
	return append([]Waiter(nil), e.queue...)
}

// CheckInvariants validates internal consistency (used by tests):
// holder sets respect compatibility, indexes agree with entries, and
// every waiter's queued request is recorded in waiting.
func (t *Table) CheckInvariants() error {
	for name, e := range t.entries {
		x := 0
		for _, m := range e.holders {
			if m == Exclusive {
				x++
			}
		}
		if x > 1 || (x == 1 && len(e.holders) > 1) {
			return fmt.Errorf("lock: entity %q held incompatibly (%d holders, %d exclusive)", name, len(e.holders), x)
		}
		for id, m := range e.holders {
			if got, ok := t.held[id][name]; !ok || got != m {
				return fmt.Errorf("lock: held index out of sync for %v on %q", id, name)
			}
		}
		for _, w := range e.queue {
			if got, ok := t.waiting[w.Txn]; !ok || got != name {
				return fmt.Errorf("lock: waiting index out of sync for %v on %q", w.Txn, name)
			}
			if t.grantable(e, w.Mode) {
				return fmt.Errorf("lock: waiter %v on %q is grantable but still queued", w.Txn, name)
			}
		}
	}
	for id, names := range t.held {
		for name, m := range names {
			e := t.entries[name]
			if e == nil || e.holders[id] != m {
				return fmt.Errorf("lock: reverse held index stale for %v on %q", id, name)
			}
		}
	}
	for id, name := range t.waiting {
		found := false
		for _, w := range t.entries[name].queue {
			if w.Txn == id {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("lock: %v marked waiting on %q but not queued", id, name)
		}
	}
	return nil
}

func sortIDs(ids []txn.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
