// Package lock implements the lock table for the two-phase locking
// system of §2: shared and exclusive locks on named entities, with FIFO
// wait queues. Grant rules follow the paper's database-management
// responses:
//
//  1. a request is granted when no conflicting transaction holds a
//     lock on the entity (shared requests conflict only with exclusive
//     holders; exclusive requests conflict with any holder);
//  2. otherwise the requester waits.
//
// Deadlock detection and rollback (response 3) live above this package,
// in internal/deadlock and internal/core.
//
// Entities are identified by dense intern.IDs internally: the entry
// table is striped over the ID space (the entry for entity e lives in
// stripe e % K at index e / K), holder sets are small slices with a
// cached exclusive count, and per-transaction held lists are pooled per
// stripe. The ...ID methods (AcquireID, ReleaseID, ...) are the
// allocation-free hot path used by internal/core; the string-keyed
// methods are boundary wrappers that intern/resolve names and keep the
// original public behavior for callers that still speak names (msgsim,
// tests).
//
// Concurrency contract (see striped.go for the fast-path methods):
// every method in this file requires exclusive access to the whole
// table — the owning System calls them under its engine write lock.
// Only the TryFast*/TryAcquire*/TryRelease* methods in striped.go may
// run concurrently (under the engine's read lock); they confine
// themselves to one stripe's mutex and the per-entity atomic words, and
// never touch the queue or waiting structures that the exclusive
// methods own.
package lock

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"partialrollback/internal/intern"
	"partialrollback/internal/txn"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Compatible reports whether a lock of mode m may coexist with a held
// lock of mode held.
func Compatible(m, held Mode) bool {
	return m == Shared && held == Shared
}

// Grant records a lock grant, returned by Release when queued waiters
// are promoted.
type Grant struct {
	Txn    txn.ID
	Entity string
	Mode   Mode
}

// GrantID is a Grant on the interned hot path: the entity travels as
// its dense ID and is resolved to a name only at the boundary.
type GrantID struct {
	Txn  txn.ID
	Ent  intern.ID
	Mode Mode
}

// Waiter is one queued request.
type Waiter struct {
	Txn  txn.ID
	Mode Mode
}

type holderRec struct {
	txn  txn.ID
	mode Mode
}

type entry struct {
	holders []holderRec
	numX    int // exclusive holders in holders (0 or 1)
	queue   []Waiter
	touched bool // some Acquire has referenced this entity
}

type heldRec struct {
	ent  intern.ID
	mode Mode
}

// heldList is one transaction's held-lock index within one stripe; the
// backing slices are pooled so a full grant/release cycle allocates
// nothing in steady state.
type heldList struct {
	recs []heldRec
}

// tableStripe owns the entries whose entity ID is congruent to its
// index mod K, plus the held index and pool for locks living in those
// entries. Its mutex is taken only by the uncontended fast-path methods
// (striped.go); the exclusive-access methods never need it because the
// engine write lock already excludes all fast-path readers. The
// trailing pad keeps two stripes' hot fields off one cache line.
type tableStripe struct {
	mu       sync.Mutex
	entries  []entry
	held     map[txn.ID]*heldList
	heldPool []*heldList
	_        [64]byte
}

// stripeCounter is a padded per-stripe grant counter (false-sharing
// avoidance: adjacent stripes are bumped from different cores).
type stripeCounter struct {
	v atomic.Int64
	_ [56]byte
}

// Table is the lock table.
type Table struct {
	names *intern.Table
	// k is the stripe count; 1 for the classic single-stripe table.
	k       int
	stripes []tableStripe
	// words is the per-entity fast shared-lock word (striped tables
	// only), accessed with sync/atomic functions: bit 31 flags the
	// entity as table-owned, the low 31 bits count anonymous
	// CAS-granted shared holders. Grown only by EnsureEntities under
	// exclusive access (plain uint32, not atomic.Uint32, so growth can
	// copy the backing array without tripping vet's copylocks).
	words []uint32
	// waiting maps each waiting transaction to the entity it waits on.
	// A transaction waits on at most one entity at a time. Mutated only
	// under exclusive access (fast paths never enqueue).
	waiting map[txn.ID]intern.ID
	// acquires counts grants per stripe (observability).
	acquires []stripeCounter
}

// NewTable returns an empty single-stripe lock table with a private
// interner. Names are interned on first Acquire.
func NewTable() *Table {
	return NewTableInterned(intern.NewTable())
}

// NewTableInterned returns an empty single-stripe lock table sharing
// names — normally the entity store's interner, so lock-table IDs and
// store IDs agree.
func NewTableInterned(names *intern.Table) *Table {
	return NewTableStriped(names, 1)
}

// NewTableStriped returns an empty lock table with k stripes (k <= 1
// means the classic single-stripe table: no per-entity words, no fast
// paths). Callers that use the fast-path methods must size the word
// table with EnsureEntities before any concurrent use.
func NewTableStriped(names *intern.Table, k int) *Table {
	if k < 1 {
		k = 1
	}
	t := &Table{
		names:    names,
		k:        k,
		stripes:  make([]tableStripe, k),
		waiting:  map[txn.ID]intern.ID{},
		acquires: make([]stripeCounter, k),
	}
	for i := range t.stripes {
		t.stripes[i].held = map[txn.ID]*heldList{}
	}
	return t
}

// Names exposes the table's interner (shared with the store when built
// via NewTableInterned).
func (t *Table) Names() *intern.Table { return t.names }

// Stripes returns the stripe count.
func (t *Table) Stripes() int { return t.k }

// StripeOf returns the stripe owning ent.
func (t *Table) StripeOf(ent intern.ID) int { return int(ent) % t.k }

// StripeAcquires returns a snapshot of the per-stripe grant counters.
func (t *Table) StripeAcquires() []int64 {
	out := make([]int64, t.k)
	for i := range out {
		out[i] = t.acquires[i].v.Load()
	}
	return out
}

func (t *Table) countAcquire(ent intern.ID) {
	t.acquires[int(ent)%t.k].v.Add(1)
}

func (t *Table) stripeOf(ent intern.ID) *tableStripe {
	return &t.stripes[int(ent)%t.k]
}

// entryFor returns ent's entry, growing its stripe as needed.
func (t *Table) entryFor(ent intern.ID) *entry {
	st := t.stripeOf(ent)
	return t.entryForStripe(st, ent)
}

func (t *Table) entryForStripe(st *tableStripe, ent intern.ID) *entry {
	i := int(ent) / t.k
	for i >= len(st.entries) {
		st.entries = append(st.entries, entry{})
	}
	e := &st.entries[i]
	e.touched = true
	return e
}

// peek returns ent's entry if it exists and has been touched, else nil.
func (t *Table) peek(ent intern.ID) *entry {
	st := t.stripeOf(ent)
	i := int(ent) / t.k
	if i >= len(st.entries) || !st.entries[i].touched {
		return nil
	}
	return &st.entries[i]
}

func (st *tableStripe) newHeldList() *heldList {
	if n := len(st.heldPool); n > 0 {
		hl := st.heldPool[n-1]
		st.heldPool = st.heldPool[:n-1]
		return hl
	}
	return &heldList{}
}

// Acquire requests a lock. If grantable it is granted immediately and
// Acquire returns granted=true. Otherwise the request is queued FIFO
// and blockers lists the conflicting holders (the transactions the
// requester now waits for, i.e. the arcs added to the concurrency
// graph).
//
// Re-requesting an entity already held, or requesting while already
// waiting, is a programming error and returns a non-nil error.
func (t *Table) Acquire(id txn.ID, name string, m Mode) (granted bool, blockers []txn.ID, err error) {
	return t.AcquireID(id, t.names.Intern(name), m, nil)
}

// AcquireID is Acquire by intern ID. Blockers are appended to buf (the
// appended region arrives sorted ascending), so a caller that reuses
// its buffer pays no allocation.
//
// On a striped table the caller must have migrated any anonymous fast
// shared holders of ent into the table first (MigrateFastSharedID):
// AcquireID trusts the entry's holder set to be complete.
func (t *Table) AcquireID(id txn.ID, ent intern.ID, m Mode, buf []txn.ID) (granted bool, blockers []txn.ID, err error) {
	if went, isWaiting := t.waiting[id]; isWaiting {
		return false, buf, fmt.Errorf("lock: %v requested %q while waiting on %q", id, t.names.Name(ent), t.names.Name(went))
	}
	if _, holds := t.ModeOfID(id, ent); holds {
		return false, buf, fmt.Errorf("lock: %v re-requested held entity %q", id, t.names.Name(ent))
	}
	st := t.stripeOf(ent)
	e := t.entryForStripe(st, ent)
	if grantable(e, m) {
		t.grantTo(st, e, id, ent, m)
		t.countAcquire(ent)
		return true, buf, nil
	}
	e.queue = append(e.queue, Waiter{Txn: id, Mode: m})
	t.waiting[id] = ent
	start := len(buf)
	for i := range e.holders {
		if e.holders[i].txn != id {
			buf = append(buf, e.holders[i].txn)
		}
	}
	sortIDs(buf[start:])
	return false, buf, nil
}

func grantable(e *entry, m Mode) bool {
	if len(e.holders) == 0 {
		return true
	}
	if m == Exclusive {
		return false
	}
	return e.numX == 0
}

// grantTo records a table grant. On a striped table it also marks the
// entity's word table-owned so the CAS fast path stands down; the fast
// shared count is zero whenever grantTo runs (anonymous holders are
// migrated before any exclusive-access grant can touch their entity).
func (t *Table) grantTo(st *tableStripe, e *entry, id txn.ID, ent intern.ID, m Mode) {
	e.holders = append(e.holders, holderRec{txn: id, mode: m})
	if m == Exclusive {
		e.numX++
	}
	hl := st.held[id]
	if hl == nil {
		hl = st.newHeldList()
		st.held[id] = hl
	}
	hl.recs = append(hl.recs, heldRec{ent: ent, mode: m})
	if t.k > 1 && int(ent) < len(t.words) {
		atomic.StoreUint32(&t.words[ent], ownedBit)
	}
}

// Release drops id's lock on name and promotes queued waiters FIFO:
// consecutive grantable requests at the head of the queue are granted
// and returned. Releasing an entity not held returns an error.
func (t *Table) Release(id txn.ID, name string) ([]Grant, error) {
	ent, ok := t.names.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("lock: release of unknown entity %q", name)
	}
	gids, err := t.ReleaseID(id, ent, nil)
	return t.grantsFromIDs(gids), err
}

// ReleaseID is Release by intern ID, appending promoted grants to
// grants and returning the extended slice.
func (t *Table) ReleaseID(id txn.ID, ent intern.ID, grants []GrantID) ([]GrantID, error) {
	e := t.peek(ent)
	if e == nil {
		return grants, fmt.Errorf("lock: release of unknown entity %q", t.names.Name(ent))
	}
	found := false
	for i := range e.holders {
		if e.holders[i].txn == id {
			if e.holders[i].mode == Exclusive {
				e.numX--
			}
			e.holders[i] = e.holders[len(e.holders)-1]
			e.holders = e.holders[:len(e.holders)-1]
			found = true
			break
		}
	}
	if !found {
		return grants, fmt.Errorf("lock: %v released %q it does not hold", id, t.names.Name(ent))
	}
	t.dropHeldRec(id, ent)
	grants = t.promoteInto(ent, grants)
	t.unownIfEmpty(ent, e)
	return grants, nil
}

func (t *Table) dropHeldRec(id txn.ID, ent intern.ID) {
	st := t.stripeOf(ent)
	hl := st.held[id]
	if hl == nil {
		return
	}
	for i := range hl.recs {
		if hl.recs[i].ent == ent {
			hl.recs[i] = hl.recs[len(hl.recs)-1]
			hl.recs = hl.recs[:len(hl.recs)-1]
			break
		}
	}
	if len(hl.recs) == 0 {
		delete(st.held, id)
		st.heldPool = append(st.heldPool, hl)
	}
}

// promoteInto grants queued requests in *age* order (ascending
// transaction ID; the engine assigns IDs in entry order), repeatedly
// granting the oldest grantable waiter until none remains, appending
// each grant to grants. Two properties matter:
//
//   - every waiter left queued conflicts with at least one *current
//     holder*, so the wait-for graph always has an arc for every waiter
//     and deadlock detection stays sound;
//   - the oldest waiting transaction wins the entity as soon as it is
//     compatible. Combined with victim policies that never preempt the
//     oldest active transaction, this gives the wound-wait liveness
//     argument: the oldest transaction's progress is monotone, so
//     preemption rings cannot run forever (a failure mode the
//     randomized soak test exhibited under plain FIFO promotion).
func (t *Table) promoteInto(ent intern.ID, grants []GrantID) []GrantID {
	e := t.peek(ent)
	if e == nil {
		return grants
	}
	st := t.stripeOf(ent)
	for {
		best := -1
		for i := range e.queue {
			if !grantable(e, e.queue[i].Mode) {
				continue
			}
			if best == -1 || e.queue[i].Txn < e.queue[best].Txn {
				best = i
			}
		}
		if best == -1 {
			return grants
		}
		w := e.queue[best]
		copy(e.queue[best:], e.queue[best+1:])
		e.queue = e.queue[:len(e.queue)-1]
		delete(t.waiting, w.Txn)
		t.grantTo(st, e, w.Txn, ent, w.Mode)
		t.countAcquire(ent)
		grants = append(grants, GrantID{Txn: w.Txn, Ent: ent, Mode: w.Mode})
	}
}

// RemoveWaiter retracts id's queued request (used when a waiting
// transaction is chosen as a rollback victim). It returns any grants
// promoted as a result (a retracted head request can unblock others),
// and reports whether id was actually waiting on name.
func (t *Table) RemoveWaiter(id txn.ID, name string) ([]Grant, bool) {
	ent, ok := t.names.Lookup(name)
	if !ok {
		return nil, false
	}
	gids, removed := t.RemoveWaiterID(id, ent, nil)
	return t.grantsFromIDs(gids), removed
}

// RemoveWaiterID is RemoveWaiter by intern ID, appending promoted
// grants to grants.
func (t *Table) RemoveWaiterID(id txn.ID, ent intern.ID, grants []GrantID) ([]GrantID, bool) {
	e := t.peek(ent)
	if e == nil {
		return grants, false
	}
	for i := range e.queue {
		if e.queue[i].Txn == id {
			copy(e.queue[i:], e.queue[i+1:])
			e.queue = e.queue[:len(e.queue)-1]
			delete(t.waiting, id)
			grants = t.promoteInto(ent, grants)
			t.unownIfEmpty(ent, e)
			return grants, true
		}
	}
	return grants, false
}

// ReleaseAll drops every lock id holds and retracts its queued request
// if any, returning all resulting grants. Entities are released in
// sorted-name order (deterministic event streams). Used by commit and
// by total restart.
func (t *Table) ReleaseAll(id txn.ID) []Grant {
	var gids []GrantID
	if ent, ok := t.waiting[id]; ok {
		gids, _ = t.RemoveWaiterID(id, ent, gids)
	}
	var names []string
	for si := range t.stripes {
		if hl := t.stripes[si].held[id]; hl != nil {
			for _, r := range hl.recs {
				names = append(names, t.names.Name(r.ent))
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ent, _ := t.names.Lookup(name)
		gids, _ = t.ReleaseID(id, ent, gids)
	}
	return t.grantsFromIDs(gids)
}

func (t *Table) grantsFromIDs(gids []GrantID) []Grant {
	if len(gids) == 0 {
		return nil
	}
	out := make([]Grant, len(gids))
	for i, g := range gids {
		out[i] = Grant{Txn: g.Txn, Entity: t.names.Name(g.Ent), Mode: g.Mode}
	}
	return out
}

// Holders returns the transactions holding name, sorted. Anonymous fast
// shared holders (striped tables) are not listed — migrate them first
// if identities are needed.
func (t *Table) Holders(name string) []txn.ID {
	ent, ok := t.names.Lookup(name)
	if !ok {
		return nil
	}
	out := t.HoldersAppend(ent, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// HoldersAppend appends the transactions holding ent to buf, sorted
// ascending (within the appended region), and returns the extended
// slice.
func (t *Table) HoldersAppend(ent intern.ID, buf []txn.ID) []txn.ID {
	e := t.peek(ent)
	if e == nil {
		return buf
	}
	start := len(buf)
	for i := range e.holders {
		buf = append(buf, e.holders[i].txn)
	}
	sortIDs(buf[start:])
	return buf
}

// ModeOf returns the mode id holds on name, if any.
func (t *Table) ModeOf(id txn.ID, name string) (Mode, bool) {
	ent, ok := t.names.Lookup(name)
	if !ok {
		return Shared, false
	}
	return t.ModeOfID(id, ent)
}

// ModeOfID is ModeOf by intern ID.
func (t *Table) ModeOfID(id txn.ID, ent intern.ID) (Mode, bool) {
	hl := t.stripeOf(ent).held[id]
	if hl == nil {
		return Shared, false
	}
	for i := range hl.recs {
		if hl.recs[i].ent == ent {
			return hl.recs[i].mode, true
		}
	}
	return Shared, false
}

// HeldBy returns the entities id holds in the table, sorted.
func (t *Table) HeldBy(id txn.ID) []string {
	var out []string
	for si := range t.stripes {
		if hl := t.stripes[si].held[id]; hl != nil {
			for _, r := range hl.recs {
				out = append(out, t.names.Name(r.ent))
			}
		}
	}
	sort.Strings(out)
	return out
}

// HeldCount returns how many entities id holds in the table.
func (t *Table) HeldCount(id txn.ID) int {
	n := 0
	for si := range t.stripes {
		if hl := t.stripes[si].held[id]; hl != nil {
			n += len(hl.recs)
		}
	}
	return n
}

// WaitingOn returns the entity id is queued for, if any.
func (t *Table) WaitingOn(id txn.ID) (string, bool) {
	ent, ok := t.waiting[id]
	if !ok {
		return "", false
	}
	return t.names.Name(ent), true
}

// WaitingOnID is WaitingOn by intern ID.
func (t *Table) WaitingOnID(id txn.ID) (intern.ID, bool) {
	ent, ok := t.waiting[id]
	return ent, ok
}

// HasWaiters reports whether any request is queued on ent — the O(1)
// fast exit for waiter refresh after a grant. Exclusive access
// required (the entries slice may be grown concurrently by stripe
// fast paths); the read-lock precheck is HasWaitersStriped.
func (t *Table) HasWaiters(ent intern.ID) bool {
	e := t.peek(ent)
	return e != nil && len(e.queue) > 0
}

// Queue returns the waiters queued on name, in order.
func (t *Table) Queue(name string) []Waiter {
	ent, ok := t.names.Lookup(name)
	if !ok {
		return nil
	}
	e := t.peek(ent)
	if e == nil || len(e.queue) == 0 {
		return nil
	}
	return append([]Waiter(nil), e.queue...)
}

// QueueAppend appends the waiters queued on ent, in order, to buf and
// returns the extended slice.
func (t *Table) QueueAppend(ent intern.ID, buf []Waiter) []Waiter {
	e := t.peek(ent)
	if e == nil {
		return buf
	}
	return append(buf, e.queue...)
}

// CheckInvariants validates internal consistency (used by tests):
// holder sets respect compatibility, indexes agree with entries, every
// waiter's queued request is recorded in waiting, and the per-entity
// fast words agree with the entries (anonymous shared counts only on
// empty entries; table-owned bit exactly on non-empty ones).
func (t *Table) CheckInvariants() error {
	for si := range t.stripes {
		st := &t.stripes[si]
		for ei := range st.entries {
			e := &st.entries[ei]
			ent := intern.ID(ei*t.k + si)
			name := t.names.Name(ent)
			x := 0
			for _, h := range e.holders {
				if h.mode == Exclusive {
					x++
				}
			}
			if x != e.numX {
				return fmt.Errorf("lock: entity %q exclusive count %d != cached %d", name, x, e.numX)
			}
			if x > 1 || (x == 1 && len(e.holders) > 1) {
				return fmt.Errorf("lock: entity %q held incompatibly (%d holders, %d exclusive)", name, len(e.holders), x)
			}
			for _, h := range e.holders {
				if got, ok := t.ModeOfID(h.txn, ent); !ok || got != h.mode {
					return fmt.Errorf("lock: held index out of sync for %v on %q", h.txn, name)
				}
			}
			for _, w := range e.queue {
				if got, ok := t.waiting[w.Txn]; !ok || got != ent {
					return fmt.Errorf("lock: waiting index out of sync for %v on %q", w.Txn, name)
				}
				if grantable(e, w.Mode) {
					return fmt.Errorf("lock: waiter %v on %q is grantable but still queued", w.Txn, name)
				}
			}
			if t.k > 1 && int(ent) < len(t.words) {
				v := atomic.LoadUint32(&t.words[ent])
				owned := v&ownedBit != 0
				count := v &^ ownedBit
				if owned && count != 0 {
					return fmt.Errorf("lock: entity %q word both owned and fast-counted (%#x)", name, v)
				}
				if count > 0 && (len(e.holders) > 0 || len(e.queue) > 0) {
					return fmt.Errorf("lock: entity %q has %d fast holders but a live entry", name, count)
				}
				if (len(e.holders) > 0 || len(e.queue) > 0) && !owned {
					return fmt.Errorf("lock: entity %q has a live entry but is not word-owned", name)
				}
			}
		}
		for id, hl := range st.held {
			if len(hl.recs) == 0 {
				return fmt.Errorf("lock: empty held list retained for %v", id)
			}
			for _, r := range hl.recs {
				e := t.peek(r.ent)
				found := false
				if e != nil {
					for _, h := range e.holders {
						if h.txn == id && h.mode == r.mode {
							found = true
						}
					}
				}
				if !found {
					return fmt.Errorf("lock: reverse held index stale for %v on %q", id, t.names.Name(r.ent))
				}
			}
		}
	}
	for id, ent := range t.waiting {
		found := false
		if e := t.peek(ent); e != nil {
			for _, w := range e.queue {
				if w.Txn == id {
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("lock: %v marked waiting on %q but not queued", id, t.names.Name(ent))
		}
	}
	return nil
}

// sortIDs sorts ascending in place. Insertion sort: the slices here are
// blocker/holder lists of a single entity (a handful of elements), and
// unlike sort.Slice this compiles without a closure allocation.
func sortIDs(ids []txn.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
