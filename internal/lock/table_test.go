package lock

import (
	"math/rand"
	"reflect"
	"testing"

	"partialrollback/internal/txn"
)

func TestExclusiveConflict(t *testing.T) {
	tab := NewTable()
	granted, _, err := tab.Acquire(1, "a", Exclusive)
	if err != nil || !granted {
		t.Fatalf("first X: %v %v", granted, err)
	}
	granted, blockers, err := tab.Acquire(2, "a", Exclusive)
	if err != nil || granted {
		t.Fatalf("second X should wait")
	}
	if !reflect.DeepEqual(blockers, []txn.ID{1}) {
		t.Errorf("blockers = %v", blockers)
	}
	if e, ok := tab.WaitingOn(2); !ok || e != "a" {
		t.Error("waiting index")
	}
	grants, err := tab.Release(1, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].Txn != 2 || grants[0].Mode != Exclusive {
		t.Errorf("grants = %v", grants)
	}
	if _, ok := tab.WaitingOn(2); ok {
		t.Error("2 should no longer wait")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSharedCompatibility(t *testing.T) {
	tab := NewTable()
	for id := txn.ID(1); id <= 3; id++ {
		granted, _, err := tab.Acquire(id, "a", Shared)
		if err != nil || !granted {
			t.Fatalf("shared %v: %v %v", id, granted, err)
		}
	}
	granted, blockers, err := tab.Acquire(4, "a", Exclusive)
	if err != nil || granted {
		t.Fatal("X against 3 S holders should wait")
	}
	if len(blockers) != 3 {
		t.Errorf("blockers = %v", blockers)
	}
	// Releasing two of three S holders does not grant the X.
	for id := txn.ID(1); id <= 2; id++ {
		grants, err := tab.Release(id, "a")
		if err != nil || len(grants) != 0 {
			t.Fatalf("premature grant: %v %v", grants, err)
		}
	}
	grants, err := tab.Release(3, "a")
	if err != nil || len(grants) != 1 || grants[0].Txn != 4 {
		t.Fatalf("final release grants = %v, %v", grants, err)
	}
}

func TestSharedGrantsBatchOnRelease(t *testing.T) {
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	for id := txn.ID(2); id <= 4; id++ {
		if g, _, _ := tab.Acquire(id, "a", Shared); g {
			t.Fatal("S against X should wait")
		}
	}
	grants, err := tab.Release(1, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 {
		t.Errorf("all shared waiters should be granted together: %v", grants)
	}
}

func TestSharedJumpsQueue(t *testing.T) {
	// Holders {S}, queue [X]: a new S is granted immediately (grant
	// decisions consult holders only), keeping the invariant that every
	// queued waiter conflicts with a current holder.
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Shared)
	if g, _, _ := tab.Acquire(2, "a", Exclusive); g {
		t.Fatal("X should wait")
	}
	g, _, err := tab.Acquire(3, "a", Shared)
	if err != nil || !g {
		t.Fatal("S should jump the queued X")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPromoteSkipsIncompatible(t *testing.T) {
	// queue [X2, S3]: after the X holder releases, X2 is granted and S3
	// keeps waiting on X2.
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	if g, _, _ := tab.Acquire(2, "a", Exclusive); g {
		t.Fatal()
	}
	if g, _, _ := tab.Acquire(3, "a", Shared); g {
		t.Fatal()
	}
	grants, err := tab.Release(1, "a")
	if err != nil || len(grants) != 1 || grants[0].Txn != 2 {
		t.Fatalf("grants = %v", grants)
	}
	if e, ok := tab.WaitingOn(3); !ok || e != "a" {
		t.Error("S3 must still wait")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAcquireErrors(t *testing.T) {
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	if _, _, err := tab.Acquire(1, "a", Shared); err == nil {
		t.Error("re-request of held entity must error")
	}
	if g, _, _ := tab.Acquire(2, "a", Shared); g {
		t.Fatal()
	}
	if _, _, err := tab.Acquire(2, "b", Shared); err == nil {
		t.Error("request while waiting must error")
	}
	if _, err := tab.Release(3, "a"); err == nil {
		t.Error("release of entity not held must error")
	}
	if _, err := tab.Release(1, "zzz"); err == nil {
		t.Error("release of unknown entity must error")
	}
}

func TestRemoveWaiter(t *testing.T) {
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	if g, _, _ := tab.Acquire(2, "a", Exclusive); g {
		t.Fatal()
	}
	grants, removed := tab.RemoveWaiter(2, "a")
	if !removed || len(grants) != 0 {
		t.Errorf("remove waiter: %v %v", grants, removed)
	}
	if _, ok := tab.WaitingOn(2); ok {
		t.Error("still marked waiting")
	}
	if _, removed := tab.RemoveWaiter(2, "a"); removed {
		t.Error("double removal")
	}
}

func TestReleaseAll(t *testing.T) {
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	mustAcquire(t, tab, 1, "b", Shared)
	if g, _, _ := tab.Acquire(2, "a", Exclusive); g {
		t.Fatal()
	}
	grants := tab.ReleaseAll(1)
	if len(grants) != 1 || grants[0].Txn != 2 {
		t.Errorf("grants = %v", grants)
	}
	if len(tab.HeldBy(1)) != 0 {
		t.Error("locks remain")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQueueAndHolders(t *testing.T) {
	tab := NewTable()
	mustAcquire(t, tab, 1, "a", Exclusive)
	_, _, _ = tab.Acquire(2, "a", Shared)
	_, _, _ = tab.Acquire(3, "a", Exclusive)
	q := tab.Queue("a")
	if len(q) != 2 || q[0].Txn != 2 || q[1].Txn != 3 {
		t.Errorf("queue = %v", q)
	}
	if h := tab.Holders("a"); len(h) != 1 || h[0] != 1 {
		t.Errorf("holders = %v", h)
	}
	if m, ok := tab.ModeOf(1, "a"); !ok || m != Exclusive {
		t.Error("mode")
	}
	if got := tab.HeldBy(1); len(got) != 1 || got[0] != "a" {
		t.Errorf("held = %v", got)
	}
	if tab.Queue("nope") != nil || tab.Holders("nope") != nil {
		t.Error("unknown entity")
	}
}

func TestCompatibleAndStrings(t *testing.T) {
	if !Compatible(Shared, Shared) || Compatible(Shared, Exclusive) ||
		Compatible(Exclusive, Shared) || Compatible(Exclusive, Exclusive) {
		t.Error("compatibility matrix")
	}
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
}

// TestQuickRandomOpsKeepInvariants drives the table with random
// acquire/release/remove operations and checks invariants throughout.
func TestQuickRandomOpsKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for rep := 0; rep < 50; rep++ {
		tab := NewTable()
		const txns, ents = 6, 4
		for step := 0; step < 300; step++ {
			id := txn.ID(1 + rng.Intn(txns))
			name := string(rune('a' + rng.Intn(ents)))
			switch rng.Intn(4) {
			case 0, 1:
				if _, waiting := tab.WaitingOn(id); waiting {
					continue
				}
				if _, held := tab.ModeOf(id, name); held {
					continue
				}
				m := Shared
				if rng.Intn(2) == 0 {
					m = Exclusive
				}
				if _, _, err := tab.Acquire(id, name, m); err != nil {
					t.Fatalf("step %d acquire: %v", step, err)
				}
			case 2:
				if _, held := tab.ModeOf(id, name); held {
					if _, err := tab.Release(id, name); err != nil {
						t.Fatalf("step %d release: %v", step, err)
					}
				}
			case 3:
				if e, waiting := tab.WaitingOn(id); waiting {
					tab.RemoveWaiter(id, e)
				}
			}
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func mustAcquire(t *testing.T, tab *Table, id txn.ID, name string, m Mode) {
	t.Helper()
	granted, _, err := tab.Acquire(id, name, m)
	if err != nil || !granted {
		t.Fatalf("acquire %v %s %v: granted=%v err=%v", id, name, m, granted, err)
	}
}
