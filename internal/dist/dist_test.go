package dist

import (
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/sim"
)

func workload(seed int64) sim.Workload {
	return sim.Generate(sim.GenConfig{
		Txns: 10, DBSize: 16, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.4, Shape: sim.Mixed, Seed: seed,
	})
}

func TestSiteAssignmentStable(t *testing.T) {
	tp := Topology{Sites: 4}
	if tp.SiteOf("e1") != tp.SiteOf("e1") {
		t.Error("hash placement must be stable")
	}
	tp2 := Topology{Sites: 4, EntitySite: map[string]int{"e1": 3}}
	if tp2.SiteOf("e1") != 3 {
		t.Error("override ignored")
	}
	spread := map[int]bool{}
	for _, e := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		s := tp.SiteOf(e)
		if s < 0 || s >= 4 {
			t.Fatalf("site %d out of range", s)
		}
		spread[s] = true
	}
	if len(spread) < 2 {
		t.Error("hash should spread entities over sites")
	}
}

func TestRunValidation(t *testing.T) {
	w := workload(1)
	if _, err := Run(w, Config{Topology: Topology{Sites: 0}, Mode: core.WoundWait}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := Run(w, Config{Topology: Topology{Sites: 2}, Mode: core.NoPrevention}); err == nil {
		t.Error("detection mode accepted")
	}
}

func TestWoundWaitCompletesAndCounts(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		r, err := Run(workload(2), Config{
			Topology:  Topology{Sites: 4},
			Strategy:  strat,
			Mode:      core.WoundWait,
			Scheduler: sim.RoundRobin,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if r.Sim.Committed != 10 {
			t.Errorf("%v: commits %d", strat, r.Sim.Committed)
		}
		if r.Messages.Total() == 0 {
			t.Errorf("%v: no messages counted", strat)
		}
		if r.Messages.Wounds != r.Stats.Wounds {
			t.Errorf("wound accounting mismatch: %d vs %d", r.Messages.Wounds, r.Stats.Wounds)
		}
	}
}

func TestWaitDieCompletes(t *testing.T) {
	r, err := Run(workload(3), Config{
		Topology:  Topology{Sites: 2},
		Strategy:  core.Total,
		Mode:      core.WaitDie,
		Scheduler: sim.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sim.Committed != 10 {
		t.Errorf("commits %d", r.Sim.Committed)
	}
	if r.Stats.Dies == 0 {
		t.Error("contended wait-die run should record dies")
	}
}

func TestSingleSiteHasNoRemoteTraffic(t *testing.T) {
	r, err := Run(workload(4), Config{
		Topology:  Topology{Sites: 1},
		Strategy:  core.MCS,
		Mode:      core.WoundWait,
		Scheduler: sim.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages.LockRequests != 0 {
		t.Errorf("single site should have no remote lock requests, got %d", r.Messages.LockRequests)
	}
}

func TestMoreSitesMoreMessages(t *testing.T) {
	prev := int64(-1)
	for _, sites := range []int{1, 2, 8} {
		r, err := Run(workload(5), Config{
			Topology:  Topology{Sites: sites},
			Strategy:  core.MCS,
			Mode:      core.WoundWait,
			Scheduler: sim.RoundRobin,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := r.Messages.LockRequests
		if total < prev {
			t.Errorf("sites=%d remote lock traffic %d decreased from %d", sites, total, prev)
		}
		prev = total
	}
}
