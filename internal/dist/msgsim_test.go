package dist

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

func msgWorkload(seed int64, tp Topology) sim.Workload {
	w := sim.Generate(sim.GenConfig{
		Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.5, Shape: sim.Mixed, Seed: seed,
	})
	return SiteOrder(w, tp)
}

// replaySerial runs the workload's programs sequentially in the given
// order and returns the final snapshot.
func replaySerial(t *testing.T, w sim.Workload, order []txn.ID) map[string]int64 {
	t.Helper()
	store := w.NewStore()
	s := core.New(core.Config{Store: store, Strategy: core.Total})
	for _, id := range order {
		nid, err := s.Register(w.Programs[int(id)-1].Clone())
		if err != nil {
			t.Fatal(err)
		}
		for {
			res, err := s.Step(nid)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == core.Committed {
				break
			}
			if res.Outcome != core.Progressed {
				t.Fatalf("serial replay blocked: %v", res.Outcome)
			}
		}
	}
	return store.Snapshot()
}

func TestMsgRunSerializableAcrossMatrix(t *testing.T) {
	for _, sites := range []int{1, 2, 4} {
		for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
			for _, latency := range []int64{1, 10} {
				name := fmt.Sprintf("sites%d/%v/lat%d", sites, strat, latency)
				t.Run(name, func(t *testing.T) {
					tp := Topology{Sites: sites}
					w := msgWorkload(3, tp)
					res, err := MsgRun(w, MsgConfig{
						Topology: tp, Strategy: strat,
						Latency: latency, RecordHistory: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Metrics.Commits != int64(len(w.Programs)) {
						t.Fatalf("commits = %d", res.Metrics.Commits)
					}
					if _, err := res.Recorder.CheckSerializable(); err != nil {
						t.Fatal(err)
					}
					order, err := res.Recorder.SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					want := replaySerial(t, w, order)
					for e, wv := range want {
						if got := res.Store.MustGet(e); got != wv {
							t.Errorf("entity %q = %d, serial oracle %d", e, got, wv)
						}
					}
				})
			}
		}
	}
}

func TestMsgRunProvokesLocalDeadlocks(t *testing.T) {
	tp := Topology{Sites: 2}
	w := msgWorkload(5, tp)
	res, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.MCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Deadlocks == 0 {
		t.Skip("no deadlock on this seed")
	}
	var sum int64
	for _, d := range res.Metrics.PerSiteDeadlocks {
		sum += d
	}
	if sum != res.Metrics.Deadlocks {
		t.Errorf("per-site deadlocks %d != total %d", sum, res.Metrics.Deadlocks)
	}
}

func TestMsgRunPartialBeatsTotal(t *testing.T) {
	tp := Topology{Sites: 3}
	var sumTotal, sumMCS int64
	var rolledBack bool
	for seed := int64(1); seed <= 8; seed++ {
		w := msgWorkload(seed, tp)
		lost := map[core.Strategy]int64{}
		for _, strat := range []core.Strategy{core.Total, core.MCS} {
			res, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			lost[strat] = res.Metrics.LostOps
		}
		if lost[core.Total] > 0 {
			rolledBack = true
		}
		sumTotal += lost[core.Total]
		sumMCS += lost[core.MCS]
	}
	if !rolledBack {
		t.Fatal("eight seeds produced no rollbacks; workload too tame")
	}
	if sumMCS >= sumTotal {
		t.Errorf("MCS lost %d >= Total %d over 8 seeds", sumMCS, sumTotal)
	}
}

func TestMsgRunSingleSiteNoRemoteTraffic(t *testing.T) {
	tp := Topology{Sites: 1}
	w := msgWorkload(2, tp)
	res, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.MCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Total() != 0 {
		t.Errorf("single site produced %d inter-site messages", res.Metrics.Total())
	}
}

func TestMsgRunRejectsUnorderedPrograms(t *testing.T) {
	tp := Topology{Sites: 4, EntitySite: map[string]int{"a": 3, "b": 0}}
	store := func() *entity.Store { return entity.NewStore(map[string]int64{"a": 0, "b": 0}) }
	p := txn.NewProgram("bad").Local("x", 0).LockX("a").LockX("b").MustBuild()
	w := sim.Workload{Name: "bad", NewStore: store, Programs: []*txn.Program{p}}
	if _, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.MCS}); err == nil {
		t.Fatal("site-order violation accepted")
	}
	fixed := SiteOrder(w, tp)
	if _, err := MsgRun(fixed, MsgConfig{Topology: tp, Strategy: core.MCS}); err != nil {
		t.Fatalf("SiteOrder did not fix it: %v", err)
	}
}

func TestSiteOrderPreservesSemantics(t *testing.T) {
	tp := Topology{Sites: 3}
	w := sim.Generate(sim.GenConfig{
		Txns: 6, DBSize: 10, LocksPerTxn: 4, RewriteProb: 0.6,
		SharedProb: 0.2, Shape: sim.Scattered, Seed: 9,
	})
	sited := SiteOrder(w, tp)
	for i := range w.Programs {
		a := snapshotAlone(t, w, i)
		b := snapshotAlone(t, sited, i)
		for e, v := range a {
			if b[e] != v {
				t.Errorf("program %d entity %q: %d vs %d", i, e, v, b[e])
			}
		}
	}
}

func snapshotAlone(t *testing.T, w sim.Workload, i int) map[string]int64 {
	t.Helper()
	store := w.NewStore()
	s := core.New(core.Config{Store: store, Strategy: core.Total})
	id, err := s.Register(w.Programs[i].Clone())
	if err != nil {
		t.Fatal(err)
	}
	for {
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == core.Committed {
			break
		}
	}
	return store.Snapshot()
}

func TestMsgRunDeterministic(t *testing.T) {
	tp := Topology{Sites: 2}
	w := msgWorkload(11, tp)
	r1, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.SDG})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.SDG})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Metrics) != fmt.Sprint(r2.Metrics) {
		t.Errorf("metrics differ:\n%+v\n%+v", r1.Metrics, r2.Metrics)
	}
	if fmt.Sprint(r1.Store.Snapshot()) != fmt.Sprint(r2.Store.Snapshot()) {
		t.Error("final states differ")
	}
}
