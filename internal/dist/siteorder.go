package dist

import (
	"sort"

	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

// SiteOrder rewrites a workload so every program acquires its locks in
// non-decreasing site order — the a-priori site ordering §3.3 proposes,
// which makes cross-site deadlock cycles impossible while leaving
// intra-site orders (and therefore intra-site deadlocks) intact.
//
// The transform hoists all lock requests to the front of the program,
// stably sorted by owning site, and replays the remaining operations in
// their original order. Hoisting locks earlier never changes computed
// values (every read still sees the same state; writes keep their
// order), it only lengthens hold times.
func SiteOrder(w sim.Workload, tp Topology) sim.Workload {
	out := sim.Workload{Name: w.Name + "+site-ordered", NewStore: w.NewStore}
	for _, p := range w.Programs {
		out.Programs = append(out.Programs, siteOrderProgram(p, tp))
	}
	return out
}

func siteOrderProgram(p *txn.Program, tp Topology) *txn.Program {
	a := txn.Analyze(p)
	reqs := append([]txn.LockRequest(nil), a.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool {
		return tp.SiteOf(reqs[i].Entity) < tp.SiteOf(reqs[j].Entity)
	})
	out := &txn.Program{
		Name:   p.Name + "-sited",
		Locals: map[string]int64{},
	}
	for k, v := range p.Locals {
		out.Locals[k] = v
	}
	for _, r := range reqs {
		kind := txn.OpLockS
		if r.Exclusive {
			kind = txn.OpLockX
		}
		out.Ops = append(out.Ops, txn.Op{Kind: kind, Entity: r.Entity})
	}
	for _, op := range p.Ops {
		switch op.Kind {
		case txn.OpLockS, txn.OpLockX, txn.OpCommit:
			// Locks already emitted; Commit re-appended below.
		case txn.OpUnlock:
			// Dropping an unlock is safe (commit releases everything);
			// keeping it could violate two-phase relative to the moved
			// locks.
		default:
			out.Ops = append(out.Ops, op)
		}
	}
	out.Ops = append(out.Ops, txn.Op{Kind: txn.OpCommit})
	return out
}
