package dist

import (
	"container/heap"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// newTestEngine builds a two-site engine with one registered agent for
// direct message-handler testing.
func newTestEngine(t *testing.T) (*msgEngine, *msgAgent, *msgSite) {
	t.Helper()
	tp := Topology{Sites: 2, EntitySite: map[string]int{"x": 0, "y": 1}}
	e := &msgEngine{
		cfg:    MsgConfig{Topology: tp, Strategy: core.MCS, Latency: 5, MaxTime: 1000},
		agents: map[txn.ID]*msgAgent{},
	}
	e.metrics.PerSiteDeadlocks = make([]int64, 2)
	for s := 0; s < 2; s++ {
		e.sites = append(e.sites, &msgSite{
			id: s, locks: lock.NewTable(), wf: waitfor.New(),
			global: map[string]int64{}, epochOf: map[txn.ID]int{},
		})
	}
	e.sites[0].global["x"] = 7
	e.sites[1].global["y"] = 9
	prog := txn.NewProgram("A").Local("l", 0).LockX("x").LockX("y").MustBuild()
	a := &msgAgent{
		id: 1, home: 0, prog: prog, analysis: txn.Analyze(prog), entry: 1,
		locals: map[string]int64{"l": 0}, copies: map[string]int64{},
		heldAt: map[string]int{}, modes: map[string]lock.Mode{},
		grantVals: map[string]int64{},
	}
	e.agents[1] = a
	return e, a, e.sites[1]
}

func drain(t *testing.T, e *msgEngine) {
	t.Helper()
	for len(e.queue) > 0 {
		m := heap.Pop(&e.queue).(*message)
		e.now = m.at
		if err := e.dispatch(m); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaleGrantReturnsLock: a grant carrying an old epoch (the agent
// rolled back while the grant was in flight) must be returned to the
// owning site as a release, not installed.
func TestStaleGrantReturnsLock(t *testing.T) {
	e, a, siteY := newTestEngine(t)
	// The site granted y under epoch 0; meanwhile the agent's epoch
	// advanced to 1 (a rollback cancelled the request).
	if granted, _, err := siteY.locks.Acquire(a.id, "y", lock.Exclusive); err != nil || !granted {
		t.Fatal("setup: site-side grant failed")
	}
	a.epoch = 1
	a.waiting = false
	if err := e.agentGranted(a, &message{kind: msgGrant, to: 0, txn: 1, entity: "y", mode: lock.Exclusive, epoch: 0, value: 9}); err != nil {
		t.Fatal(err)
	}
	if _, held := a.heldAt["y"]; held {
		t.Fatal("stale grant must not be installed at the agent")
	}
	drain(t, e) // delivers the release back to site 1
	if holders := siteY.locks.Holders("y"); len(holders) != 0 {
		t.Fatalf("site still records holders %v after stale-grant return", holders)
	}
	if e.metrics.Releases != 1 {
		t.Errorf("expected one inter-site release, got %d", e.metrics.Releases)
	}
}

// TestStaleCancelIgnored: a cancel carrying an old epoch (the agent
// re-requested afterwards) must not retract the new request.
func TestStaleCancelIgnored(t *testing.T) {
	e, a, siteY := newTestEngine(t)
	// Another holder keeps y so the agent's request queues.
	if granted, _, err := siteY.locks.Acquire(99, "y", lock.Exclusive); err != nil || !granted {
		t.Fatal("setup")
	}
	a.epoch = 2
	if err := e.siteLockRequest(siteY, &message{kind: msgLockReq, to: 1, txn: 1, entity: "y", mode: lock.Exclusive, epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if _, waiting := siteY.locks.WaitingOn(a.id); !waiting {
		t.Fatal("request should be queued")
	}
	// A cancel from epoch 1 arrives late.
	if err := e.siteCancel(siteY, &message{kind: msgCancel, to: 1, txn: 1, entity: "y", epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if _, waiting := siteY.locks.WaitingOn(a.id); !waiting {
		t.Fatal("stale cancel retracted a live request")
	}
	// The matching-epoch cancel works.
	if err := e.siteCancel(siteY, &message{kind: msgCancel, to: 1, txn: 1, entity: "y", epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if _, waiting := siteY.locks.WaitingOn(a.id); waiting {
		t.Fatal("matching cancel ignored")
	}
}

// TestStaleLockRequestDropped: a request from a pre-rollback epoch must
// be dropped by the site.
func TestStaleLockRequestDropped(t *testing.T) {
	e, a, siteY := newTestEngine(t)
	a.epoch = 3
	if err := e.siteLockRequest(siteY, &message{kind: msgLockReq, to: 1, txn: 1, entity: "y", mode: lock.Exclusive, epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if holders := siteY.locks.Holders("y"); len(holders) != 0 {
		t.Fatal("stale request granted")
	}
	if _, waiting := siteY.locks.WaitingOn(a.id); waiting {
		t.Fatal("stale request queued")
	}
}

// TestMsgLatencyScalesMakespan: higher latency means later completion
// for the same cross-site workload.
func TestMsgLatencyScalesMakespan(t *testing.T) {
	tp := Topology{Sites: 2}
	w := msgWorkload(9, tp)
	var prev int64
	for i, lat := range []int64{1, 10, 40} {
		res, err := MsgRun(w, MsgConfig{Topology: tp, Strategy: core.MCS, Latency: lat})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Metrics.Makespan <= prev {
			t.Errorf("latency %d makespan %d did not grow past %d", lat, res.Metrics.Makespan, prev)
		}
		prev = res.Metrics.Makespan
	}
}
