// Message-passing multi-site engine for §3.3.
//
// Unlike Run (which reuses the centralized engine and accounts costs),
// MsgRun actually distributes the system: every site owns a partition
// of the entities, runs its own lock table and its own concurrency
// graph, and communicates only by messages over a simulated network
// with configurable latency. No component ever reads another site's
// state directly.
//
// Deadlock handling realizes the paper's "a priori ordering of the
// sites" alternative: transactions acquire entities in non-decreasing
// site order, which makes cross-site cycles impossible (the standard
// resource-ordering argument applied to sites), so *every* deadlock is
// local to one site and "may be treated using the above means" — local
// detection plus partial rollback. Victims are rolled back at their
// home sites via rollback-request messages; in-flight grant/cancel
// races are resolved with per-transaction request epochs.
package dist

import (
	"container/heap"
	"fmt"
	"sort"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/history"
	"partialrollback/internal/lock"
	"partialrollback/internal/mcs"
	"partialrollback/internal/sdg"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
	"partialrollback/internal/waitfor"
)

// MsgConfig configures a message-passing run.
type MsgConfig struct {
	Topology Topology
	Strategy core.Strategy // Total, MCS or SDG
	// Latency is the virtual-time cost of one inter-site message.
	// Default 10 (a local step costs 1).
	Latency int64
	// MaxTime bounds virtual time (default 10M) to catch livelock.
	MaxTime int64
	// RecordHistory enables the serializability recorder.
	RecordHistory bool
	// DebugVictims prints each rollback request's victim, its lock
	// index for the contested entity, and the adjusted target.
	DebugVictims bool
}

// MsgMetrics accounts the distributed run.
type MsgMetrics struct {
	// Makespan is the virtual time at which the last transaction
	// committed.
	Makespan int64
	// Messages by kind (inter-site only; same-site interactions are
	// direct calls).
	LockRequests int64
	Grants       int64
	Releases     int64
	Cancels      int64
	Rollbacks    int64 // rollback-request messages
	// CopyShips counts entity values carried by messages (X grants and
	// installing releases between sites).
	CopyShips int64
	// Deadlocks and LostOps as in the centralized engine.
	Deadlocks int64
	LostOps   int64
	Commits   int64
	// PerSiteDeadlocks records where cycles were detected.
	PerSiteDeadlocks []int64
}

// Total returns all inter-site messages.
func (m MsgMetrics) Total() int64 {
	return m.LockRequests + m.Grants + m.Releases + m.Cancels + m.Rollbacks
}

// MsgResult is the outcome of a message-passing run.
type MsgResult struct {
	Metrics MsgMetrics
	// Recorder is non-nil when history recording was enabled.
	Recorder *history.Recorder
	// Store holds the final global values (merged from all sites).
	Store *entity.Store
}

// ---- network ----

type msgKind int

const (
	msgLockReq msgKind = iota
	msgGrant
	msgRelease  // release one entity (optionally installing a value)
	msgCancel   // retract a queued request
	msgRollback // ask a home site to roll a transaction back past an entity
	msgStep     // internal: schedule a transaction step at its home site
)

type message struct {
	at      int64
	seq     int64
	kind    msgKind
	to      int // destination site
	txn     txn.ID
	entity  string
	mode    lock.Mode
	epoch   int
	value   int64
	install bool
}

type msgQueue []*message

func (q msgQueue) Len() int { return len(q) }
func (q msgQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q msgQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *msgQueue) Push(x any)   { *q = append(*q, x.(*message)) }
func (q *msgQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	*q = old[:n-1]
	return m
}

// ---- engine ----

type msgAgent struct {
	id       txn.ID
	home     int
	prog     *txn.Program
	analysis *txn.Analysis
	entry    int64

	pc         int
	stateIndex int64
	lockIndex  int
	locals     map[string]int64
	copies     map[string]int64
	heldAt     map[string]int
	modes      map[string]lock.Mode
	lockStates []struct {
		opIndex    int
		stateIndex int64
	}

	waiting    bool // a lock request is outstanding (queued or in flight)
	waitEntity string
	epoch      int
	committed  bool
	unlocked   bool
	declared   bool

	mcs  *mcs.Copies
	sdgG *sdg.Graph
	// grantVals caches each held entity's value as shipped at grant
	// time — the "global value" the single-copy strategy restores to,
	// kept locally so a rollback needs no extra round trip.
	grantVals map[string]int64
}

type msgSite struct {
	id     int
	locks  *lock.Table
	wf     *waitfor.Graph
	global map[string]int64
	// epochOf tracks the epoch of each queued request so stale cancels
	// and grants can be told apart.
	epochOf map[txn.ID]int
}

type msgEngine struct {
	cfg     MsgConfig
	sites   []*msgSite
	agents  map[txn.ID]*msgAgent
	order   []txn.ID
	queue   msgQueue
	now     int64
	seq     int64
	metrics MsgMetrics
	rec     *history.Recorder
}

// MsgRun executes the workload on the message-passing multi-site
// system. Programs must acquire entities in non-decreasing site order
// (use SiteOrder to transform arbitrary workloads).
func MsgRun(w sim.Workload, cfg MsgConfig) (MsgResult, error) {
	if cfg.Topology.Sites < 1 {
		return MsgResult{}, fmt.Errorf("dist: need at least one site")
	}
	switch cfg.Strategy {
	case core.Total, core.MCS, core.SDG:
	default:
		return MsgResult{}, fmt.Errorf("dist: unsupported strategy %v", cfg.Strategy)
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 10
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 10_000_000
	}
	e := &msgEngine{cfg: cfg, agents: map[txn.ID]*msgAgent{}}
	e.metrics.PerSiteDeadlocks = make([]int64, cfg.Topology.Sites)
	if cfg.RecordHistory {
		e.rec = history.NewRecorder()
	}
	for s := 0; s < cfg.Topology.Sites; s++ {
		e.sites = append(e.sites, &msgSite{
			id:      s,
			locks:   lock.NewTable(),
			wf:      waitfor.New(),
			global:  map[string]int64{},
			epochOf: map[txn.ID]int{},
		})
	}
	// Partition the initial store.
	init := w.NewStore()
	for _, name := range init.Names() {
		site := cfg.Topology.SiteOf(name)
		e.sites[site].global[name] = init.MustGet(name)
	}
	// Register agents.
	for i, p := range w.Programs {
		analysis, err := txn.ValidateAnalyze(p)
		if err != nil {
			return MsgResult{}, err
		}
		a := &msgAgent{
			id:        txn.ID(i + 1),
			prog:      p,
			analysis:  analysis,
			entry:     int64(i + 1),
			locals:    map[string]int64{},
			copies:    map[string]int64{},
			heldAt:    map[string]int{},
			modes:     map[string]lock.Mode{},
			grantVals: map[string]int64{},
		}
		for k, v := range p.Locals {
			a.locals[k] = v
		}
		prev := -1
		for _, r := range a.analysis.Requests {
			s := cfg.Topology.SiteOf(r.Entity)
			if s < prev {
				return MsgResult{}, fmt.Errorf("dist: program %s violates site order (use SiteOrder)", p.Name)
			}
			prev = s
		}
		a.home = homeSite(cfg.Topology, p)
		switch cfg.Strategy {
		case core.MCS:
			a.mcs = mcs.New(p.Locals)
		case core.SDG:
			a.sdgG = sdg.New()
		}
		e.agents[a.id] = a
		e.order = append(e.order, a.id)
		e.sites[a.home].wf.AddTxn(a.id)
		e.send(&message{kind: msgStep, to: a.home, txn: a.id, at: 1})
	}
	// Event loop.
	for len(e.queue) > 0 {
		m := heap.Pop(&e.queue).(*message)
		if m.at > cfg.MaxTime {
			return MsgResult{}, fmt.Errorf("dist: exceeded virtual time %d", cfg.MaxTime)
		}
		e.now = m.at
		if err := e.dispatch(m); err != nil {
			return MsgResult{}, err
		}
	}
	for _, a := range e.agents {
		if !a.committed {
			return MsgResult{}, fmt.Errorf("dist: %v never committed (stuck at pc %d)", a.id, a.pc)
		}
	}
	e.metrics.Makespan = e.now
	// Merge final global values.
	final := map[string]int64{}
	for _, s := range e.sites {
		for k, v := range s.global {
			final[k] = v
		}
	}
	return MsgResult{Metrics: e.metrics, Recorder: e.rec, Store: entity.NewStore(final)}, nil
}

// send enqueues a message; inter-site messages pay latency and are
// counted, same-site ones are immediate direct calls.
func (e *msgEngine) send(m *message) {
	e.seq++
	m.seq = e.seq
	if m.at == 0 {
		m.at = e.now + 1
	}
	heap.Push(&e.queue, m)
}

// sendRemote sends m between fromSite and m.to, applying latency and
// accounting when they differ.
func (e *msgEngine) sendRemote(fromSite int, m *message) {
	if fromSite != m.to {
		m.at = e.now + e.cfg.Latency
		switch m.kind {
		case msgLockReq:
			e.metrics.LockRequests++
		case msgGrant:
			e.metrics.Grants++
			if m.mode == lock.Exclusive {
				e.metrics.CopyShips++
			}
		case msgRelease:
			e.metrics.Releases++
			if m.install {
				e.metrics.CopyShips++
			}
		case msgCancel:
			e.metrics.Cancels++
		case msgRollback:
			e.metrics.Rollbacks++
		}
	}
	e.send(m)
}

func (e *msgEngine) dispatch(m *message) error {
	switch m.kind {
	case msgStep:
		return e.stepAgent(e.agents[m.txn])
	case msgLockReq:
		return e.siteLockRequest(e.sites[m.to], m)
	case msgGrant:
		return e.agentGranted(e.agents[m.txn], m)
	case msgRelease:
		return e.siteRelease(e.sites[m.to], m)
	case msgCancel:
		return e.siteCancel(e.sites[m.to], m)
	case msgRollback:
		return e.agentRollbackRequest(e.agents[m.txn], m)
	}
	return fmt.Errorf("dist: unknown message kind %d", m.kind)
}

// scheduleStep queues the agent's next step one tick out.
func (e *msgEngine) scheduleStep(a *msgAgent) {
	e.send(&message{kind: msgStep, to: a.home, txn: a.id, at: e.now + 1})
}

// stepAgent executes one operation of a at its home site.
func (e *msgEngine) stepAgent(a *msgAgent) error {
	if a.committed || a.waiting {
		return nil
	}
	op := a.prog.Ops[a.pc]
	switch op.Kind {
	case txn.OpLockS, txn.OpLockX:
		return e.agentLockRequest(a, op)
	case txn.OpRead:
		v, err := e.agentRead(a, op.Entity)
		if err != nil {
			return err
		}
		e.assign(a, op.Local, v)
		e.advance(a)
	case txn.OpWrite:
		v, err := op.Expr.Eval(value.MapEnv(a.locals))
		if err != nil {
			return err
		}
		a.copies[op.Entity] = v
		if a.mcs != nil {
			if err := a.mcs.WriteEntity(op.Entity, v); err != nil {
				return err
			}
		}
		if a.sdgG != nil {
			a.sdgG.OnWrite("e:" + op.Entity)
		}
		e.advance(a)
	case txn.OpCompute:
		v, err := op.Expr.Eval(value.MapEnv(a.locals))
		if err != nil {
			return err
		}
		e.assign(a, op.Local, v)
		e.advance(a)
	case txn.OpUnlock:
		a.unlocked = true
		e.releaseEntity(a, op.Entity, true)
		e.advance(a)
	case txn.OpDeclareLastLock:
		a.declared = true
		if a.sdgG != nil {
			a.sdgG.StopMonitoring()
		}
		e.advance(a)
	case txn.OpCommit:
		held := make([]string, 0, len(a.heldAt))
		for ent := range a.heldAt {
			held = append(held, ent)
		}
		sort.Strings(held)
		for _, ent := range held {
			e.releaseEntity(a, ent, true)
		}
		a.committed = true
		e.metrics.Commits++
		if e.rec != nil {
			e.rec.OnCommit(a.id)
		}
		return nil
	}
	e.scheduleStep(a)
	return nil
}

func (e *msgEngine) advance(a *msgAgent) {
	a.pc++
	a.stateIndex++
}

func (e *msgEngine) assign(a *msgAgent, local string, v int64) {
	a.locals[local] = v
	if a.mcs != nil {
		_ = a.mcs.WriteLocal(local, v)
	}
	if a.sdgG != nil {
		a.sdgG.OnWrite("l:" + local)
	}
}

func (e *msgEngine) agentRead(a *msgAgent, ent string) (int64, error) {
	mode, held := a.modes[ent]
	if !held {
		return 0, fmt.Errorf("dist: %v read of unheld %q", a.id, ent)
	}
	if mode == lock.Exclusive {
		return a.copies[ent], nil
	}
	// Shared: the global value was shipped at grant time and cached as
	// a copy too (it cannot change while the shared lock is held).
	return a.copies[ent], nil
}

// agentLockRequest records the lock state and routes the request to the
// owning site.
func (e *msgEngine) agentLockRequest(a *msgAgent, op txn.Op) error {
	mode := lock.Shared
	if op.Kind == txn.OpLockX {
		mode = lock.Exclusive
	}
	if len(a.lockStates) != a.lockIndex {
		return fmt.Errorf("dist: %v lock-state records out of sync", a.id)
	}
	a.lockStates = append(a.lockStates, struct {
		opIndex    int
		stateIndex int64
	}{a.pc, a.stateIndex})
	a.waiting = true
	a.waitEntity = op.Entity
	site := e.cfg.Topology.SiteOf(op.Entity)
	m := &message{kind: msgLockReq, to: site, txn: a.id, entity: op.Entity, mode: mode, epoch: a.epoch}
	if site == a.home {
		m.at = e.now // direct call
		e.send(m)
		return nil
	}
	e.sendRemote(a.home, m)
	return nil
}

// siteLockRequest handles a lock request at the entity's site.
func (e *msgEngine) siteLockRequest(s *msgSite, m *message) error {
	a := e.agents[m.txn]
	if m.epoch != a.epoch {
		return nil // stale request from before a rollback; drop
	}
	granted, blockers, err := s.locks.Acquire(m.txn, m.entity, m.mode)
	if err != nil {
		return err
	}
	if granted {
		e.grantFrom(s, m.txn, m.entity, m.mode, m.epoch)
		return nil
	}
	s.epochOf[m.txn] = m.epoch
	s.wf.AddTxn(m.txn)
	for _, b := range blockers {
		s.wf.AddWait(m.txn, b, m.entity)
	}
	// Site-ordered acquisition makes every cycle local to this site.
	cycles := s.wf.CyclesThrough(m.txn, 16)
	if len(cycles) == 0 {
		return nil
	}
	e.metrics.Deadlocks++
	e.metrics.PerSiteDeadlocks[s.id]++
	return e.resolveLocalDeadlock(s, m.txn, m.entity, cycles)
}

// grantFrom completes a grant at site s and notifies the requester.
func (e *msgEngine) grantFrom(s *msgSite, id txn.ID, ent string, mode lock.Mode, epoch int) {
	delete(s.epochOf, id)
	a := e.agents[id]
	gm := &message{kind: msgGrant, to: a.home, txn: id, entity: ent, mode: mode, epoch: epoch}
	gm.value = s.global[ent] // ship the value (shared reads need it too)
	if s.id == a.home {
		gm.at = e.now
		e.send(gm)
		return
	}
	e.sendRemote(s.id, gm)
}

// agentGranted completes the lock at the requester's home.
func (e *msgEngine) agentGranted(a *msgAgent, m *message) error {
	if m.epoch != a.epoch || a.committed {
		// Stale grant: the agent rolled back past this request. Return
		// the lock without installing.
		site := e.cfg.Topology.SiteOf(m.entity)
		rm := &message{kind: msgRelease, to: site, txn: a.id, entity: m.entity}
		if site == a.home {
			rm.at = e.now
			e.send(rm)
		} else {
			e.sendRemote(a.home, rm)
		}
		return nil
	}
	a.heldAt[m.entity] = a.lockIndex
	a.modes[m.entity] = m.mode
	a.copies[m.entity] = m.value
	a.grantVals[m.entity] = m.value
	if a.mcs != nil {
		a.mcs.OnLock(m.entity, m.mode == lock.Exclusive, m.value)
	}
	if a.sdgG != nil {
		a.sdgG.OnLock()
	}
	a.lockIndex++
	a.waiting = false
	a.waitEntity = ""
	if e.rec != nil {
		hm := history.Read
		if m.mode == lock.Exclusive {
			hm = history.Write
		}
		e.rec.OnGrant(a.id, m.entity, hm)
	}
	e.advance(a)
	e.scheduleStep(a)
	return nil
}

// releaseEntity releases one held entity, installing the local copy
// when install is true and the lock was exclusive.
func (e *msgEngine) releaseEntity(a *msgAgent, ent string, install bool) {
	mode := a.modes[ent]
	site := e.cfg.Topology.SiteOf(ent)
	m := &message{kind: msgRelease, to: site, txn: a.id, entity: ent}
	if install && mode == lock.Exclusive {
		m.install = true
		m.value = a.copies[ent]
	}
	if e.rec != nil {
		if install {
			e.rec.OnRelease(a.id, ent)
		} else {
			e.rec.OnRetract(a.id, ent)
		}
	}
	delete(a.heldAt, ent)
	delete(a.modes, ent)
	delete(a.copies, ent)
	delete(a.grantVals, ent)
	if a.mcs != nil {
		a.mcs.OnUnlock(ent)
	}
	if site == a.home {
		m.at = e.now
		e.send(m)
		return
	}
	e.sendRemote(a.home, m)
}

// siteRelease applies a release at the owning site and promotes
// waiters.
func (e *msgEngine) siteRelease(s *msgSite, m *message) error {
	if m.install {
		s.global[m.entity] = m.value
	}
	grants, err := s.locks.Release(m.txn, m.entity)
	if err != nil {
		return err
	}
	e.refreshSiteWaiters(s, m.entity)
	for _, g := range grants {
		s.wf.RemoveAllWaitsBy(g.Txn)
		e.grantFrom(s, g.Txn, g.Entity, g.Mode, s.epochOf[g.Txn])
	}
	return nil
}

// siteCancel retracts a queued request (the requester rolled back).
func (e *msgEngine) siteCancel(s *msgSite, m *message) error {
	if s.epochOf[m.txn] != m.epoch {
		return nil // already granted or already cancelled
	}
	grants, removed := s.locks.RemoveWaiter(m.txn, m.entity)
	if removed {
		delete(s.epochOf, m.txn)
		s.wf.RemoveAllWaitsBy(m.txn)
		e.refreshSiteWaiters(s, m.entity)
		for _, g := range grants {
			s.wf.RemoveAllWaitsBy(g.Txn)
			e.grantFrom(s, g.Txn, g.Entity, g.Mode, s.epochOf[g.Txn])
		}
	}
	return nil
}

// refreshSiteWaiters rebuilds the site graph arcs for an entity's
// remaining waiters (as core does).
func (e *msgEngine) refreshSiteWaiters(s *msgSite, ent string) {
	holders := s.locks.Holders(ent)
	for _, w := range s.locks.Queue(ent) {
		s.wf.ClearEntityWaits(w.Txn, ent)
		for _, h := range holders {
			if h == w.Txn {
				continue
			}
			hm, _ := s.locks.ModeOf(h, ent)
			if w.Mode == lock.Exclusive || hm == lock.Exclusive {
				s.wf.AddWait(w.Txn, h, ent)
			}
		}
	}
}

// resolveLocalDeadlock picks the youngest participant holding a
// contested entity and asks its home site to roll it back past that
// entity. The youngest-victim rule is Theorem 2-compatible (the oldest
// transaction in the system is never preempted).
func (e *msgEngine) resolveLocalDeadlock(s *msgSite, requester txn.ID, reqEntity string, cycles [][]txn.ID) error {
	// Contested entities per participant, from the cycle arcs.
	contested := map[txn.ID]map[string]bool{}
	for _, c := range cycles {
		for i := range c {
			waiter := c[i]
			holder := c[(i+1)%len(c)]
			for _, ent := range s.wf.Label(waiter, holder) {
				if contested[holder] == nil {
					contested[holder] = map[string]bool{}
				}
				contested[holder][ent] = true
			}
		}
	}
	// Participants sorted youngest first.
	var parts []txn.ID
	for id := range contested {
		parts = append(parts, id)
	}
	sort.Slice(parts, func(i, j int) bool {
		ei, ej := e.agents[parts[i]].entry, e.agents[parts[j]].entry
		if ei != ej {
			return ei > ej
		}
		return parts[i] < parts[j]
	})
	remaining := cycles
	for _, id := range parts {
		if len(remaining) == 0 {
			break
		}
		var kept [][]txn.ID
		covers := false
		for _, c := range remaining {
			hit := false
			for _, member := range c {
				if member == id {
					hit = true
					break
				}
			}
			if hit {
				covers = true
			} else {
				kept = append(kept, c)
			}
		}
		if !covers {
			continue
		}
		a := e.agents[id]
		if a.unlocked || a.declared {
			continue
		}
		// One contested entity suffices to name the rollback point; the
		// home computes the strategy-adjusted target over all of them.
		var ent string
		for ce := range contested[id] {
			if ent == "" || ce < ent {
				ent = ce
			}
		}
		rm := &message{kind: msgRollback, to: a.home, txn: id, entity: ent}
		if s.id == a.home {
			rm.at = e.now
			e.send(rm)
		} else {
			e.sendRemote(s.id, rm)
		}
		remaining = kept
	}
	if len(remaining) > 0 {
		return fmt.Errorf("dist: site %d could not cover all cycles (requester %v)", s.id, requester)
	}
	return nil
}

// agentRollbackRequest performs the partial rollback at the victim's
// home: back to the lock state before it locked the named entity
// (strategy-adjusted), releasing every lock acquired since and
// cancelling its outstanding request.
func (e *msgEngine) agentRollbackRequest(a *msgAgent, m *message) error {
	if a.committed || a.unlocked {
		return nil // too late to roll back; it will release soon anyway
	}
	li, held := a.heldAt[m.entity]
	if !held {
		return nil // already rolled back past it (duplicate request)
	}
	target := li
	switch e.cfg.Strategy {
	case core.Total:
		target = 0
	case core.SDG:
		target = a.sdgG.LatestWellDefinedAtOrBelow(target)
	}
	if e.cfg.DebugVictims {
		fmt.Printf("  victim %v: entity %s heldAt=%d target=%d lockIndex=%d\n", a.id, m.entity, li, target, a.lockIndex)
	}
	rec := a.lockStates[target]
	lost := a.stateIndex - rec.stateIndex
	e.metrics.LostOps += lost

	// Cancel an outstanding request (new epoch invalidates in-flight
	// grants).
	if a.waiting {
		site := e.cfg.Topology.SiteOf(a.waitEntity)
		cm := &message{kind: msgCancel, to: site, txn: a.id, entity: a.waitEntity, epoch: a.epoch}
		if site == a.home {
			cm.at = e.now
			e.send(cm)
		} else {
			e.sendRemote(a.home, cm)
		}
		a.waiting = false
		a.waitEntity = ""
	}
	a.epoch++

	// Release locks acquired at or after the target state.
	var released []string
	for ent, idx := range a.heldAt {
		if idx >= target {
			released = append(released, ent)
		}
	}
	sort.Strings(released)
	for _, ent := range released {
		e.releaseEntity(a, ent, false)
	}

	// Restore per strategy.
	switch e.cfg.Strategy {
	case core.Total:
		for k, v := range a.prog.Locals {
			a.locals[k] = v
		}
	case core.MCS:
		a.mcs.Rollback(target)
		for k, v := range a.mcs.Locals() {
			a.locals[k] = v
		}
		for ent := range a.heldAt {
			if a.modes[ent] == lock.Exclusive {
				if v, ok := a.mcs.EntityValue(ent); ok {
					a.copies[ent] = v
				}
			}
		}
	case core.SDG:
		for ent := range a.heldAt {
			if a.sdgG.RestoreActionFor("e:"+ent, target) == sdg.ResetPristine {
				// Pristine = the grant-time value cached locally; the
				// site's global value cannot change while we hold the
				// lock, so no round trip is needed.
				a.copies[ent] = a.grantVals[ent]
			}
		}
		for l := range a.locals {
			if a.sdgG.RestoreActionFor("l:"+l, target) == sdg.ResetPristine {
				a.locals[l] = a.prog.Locals[l]
			}
		}
		if err := a.sdgG.Rollback(target); err != nil {
			return err
		}
	}
	a.pc = rec.opIndex
	a.stateIndex = rec.stateIndex
	a.lockStates = a.lockStates[:target]
	a.lockIndex = target
	e.scheduleStep(a)
	return nil
}
