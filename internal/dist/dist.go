// Package dist simulates the paper's §3.3 distributed setting:
// entities are partitioned across sites, transactions run from a home
// site, and the concurrency control cannot afford a global concurrency
// graph. Conflicts whose waiter and holder-entity live at the same site
// are handled by local detection with partial rollback; conflicts that
// would require cross-site graph maintenance are resolved by a
// timestamp rule (wound-wait), with the wounded holder *partially*
// rolled back per the configured strategy — the paper's observation
// that timestamp mechanisms "in no way invalidate the advantages" of
// partial rollback.
//
// The simulation reuses the real engine (semantics are identical to a
// centralized system; distribution changes *costs*, not outcomes) and
// accounts messages: remote lock/unlock round trips, and the extra
// database shipping that partial rollback requires when a transaction
// moves between sites (§3.3's caveat).
package dist

import (
	"fmt"
	"hash/fnv"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

// Topology assigns entities and transactions to sites.
type Topology struct {
	// Sites is the number of sites (>= 1).
	Sites int
	// EntitySite overrides the default hash placement for specific
	// entities.
	EntitySite map[string]int
}

// SiteOf returns the owning site of an entity.
func (tp Topology) SiteOf(entityName string) int {
	if s, ok := tp.EntitySite[entityName]; ok {
		return s
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(entityName))
	return int(h.Sum32() % uint32(tp.Sites))
}

// Config configures a distributed run.
type Config struct {
	Topology Topology
	Strategy core.Strategy
	// Mode selects the conflict response: core.WoundWait or
	// core.WaitDie for pure timestamp operation. (Pure detection is the
	// centralized baseline; run it via internal/sim instead.)
	Mode core.Prevention
	// Scheduler / Seed as in sim.RunConfig.
	Scheduler sim.Scheduler
	Seed      int64
	MaxSteps  int64
}

// Messages accounts simulated network traffic.
type Messages struct {
	// LockRequests counts remote lock request round trips (request +
	// grant/deny).
	LockRequests int64
	// Releases counts remote unlock/rollback-release notifications.
	Releases int64
	// CopyShips counts entity values shipped between sites: the global
	// value shipped to the requester's site on a remote exclusive
	// grant, and §3.3's extra state shipping when a partial rollback
	// restores copies held at remote sites.
	CopyShips int64
	// Wounds counts cross-site preemptions.
	Wounds int64
}

// Total returns the total message count.
func (m Messages) Total() int64 {
	return m.LockRequests + m.Releases + m.CopyShips + m.Wounds
}

// Result reports one distributed run.
type Result struct {
	Stats    core.Stats
	Messages Messages
	Sim      sim.Result
}

// homeSite derives a transaction's home site from the first entity it
// locks (it "enters" the system where its data lives).
func homeSite(tp Topology, p *txn.Program) int {
	a := txn.Analyze(p)
	if len(a.Requests) == 0 {
		return 0
	}
	return tp.SiteOf(a.Requests[0].Entity)
}

// Run executes the workload on the simulated multi-site system.
func Run(w sim.Workload, cfg Config) (Result, error) {
	if cfg.Topology.Sites < 1 {
		return Result{}, fmt.Errorf("dist: need at least one site")
	}
	if cfg.Mode != core.WoundWait && cfg.Mode != core.WaitDie {
		return Result{}, fmt.Errorf("dist: Mode must be WoundWait or WaitDie (got %v)", cfg.Mode)
	}
	homes := map[string]int{} // program name -> home site
	for _, p := range w.Programs {
		homes[p.Name] = homeSite(cfg.Topology, p)
	}

	var msgs Messages
	sysHome := map[txn.ID]int{}
	names := map[txn.ID]string{}

	onEvent := func(e core.Event) {
		switch e.Kind {
		case core.EventRegister:
			names[e.Txn] = e.Detail
			sysHome[e.Txn] = homes[e.Detail]
		case core.EventGrant:
			if cfg.Topology.SiteOf(e.Entity) != sysHome[e.Txn] {
				msgs.LockRequests += 2
				if e.Detail == "X" {
					msgs.CopyShips++ // ship the global value to the home site
				}
			}
		case core.EventWait:
			if cfg.Topology.SiteOf(e.Entity) != sysHome[e.Txn] {
				msgs.LockRequests += 2
			}
		case core.EventUnlock:
			if cfg.Topology.SiteOf(e.Entity) != sysHome[e.Txn] {
				msgs.Releases++
			}
		case core.EventRollback:
			// §3.3: restoring a transaction's surviving remote copies
			// requires shipping database information between sites.
			// Approximate: one copy ship per lock state retained beyond
			// zero when any remote entity is involved, plus one release
			// notification per remote site (bounded by sites-1).
			if e.ToLockState > 0 {
				msgs.CopyShips += int64(cfg.Topology.Sites - 1)
			}
			msgs.Releases += int64(cfg.Topology.Sites - 1)
		}
	}

	res, err := sim.Run(w, sim.RunConfig{
		Strategy:   cfg.Strategy,
		Policy:     deadlock.OrderedMinCost{},
		Scheduler:  cfg.Scheduler,
		Seed:       cfg.Seed,
		MaxSteps:   cfg.MaxSteps,
		Prevention: cfg.Mode,
		OnEvent:    onEvent,
	})
	if err != nil {
		return Result{}, err
	}
	msgs.Wounds = res.Stats.Wounds
	return Result{Stats: res.Stats, Messages: msgs, Sim: res}, nil
}
