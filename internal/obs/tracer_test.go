package obs

import (
	"strings"
	"testing"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

func traceEvents(tr *Tracer, id txn.ID, kinds ...core.EventKind) {
	for _, k := range kinds {
		tr.OnEvent(core.Event{Kind: k, Txn: id, Entity: "e"})
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(4)
	if tr.Enabled() {
		t.Fatal("tracer enabled at construction")
	}
	traceEvents(tr, 1, core.EventRegister, core.EventGrant, core.EventCommit)
	active, completed := tr.Snapshot()
	if len(active) != 0 || len(completed) != 0 {
		t.Fatalf("disabled tracer recorded %d active, %d completed", len(active), len(completed))
	}
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	tr.OnEvent(core.Event{Kind: core.EventRegister, Txn: 1, Detail: "transfer"})
	tr.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "a"})
	tr.OnEvent(core.Event{Kind: core.EventWait, Txn: 1, Entity: "b"})
	tr.OnEvent(core.Event{Kind: core.EventRollback, Txn: 1, Lost: 2, ToLockState: 1})
	tr.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "b"})

	active, completed := tr.Snapshot()
	if len(active) != 1 || len(completed) != 0 {
		t.Fatalf("mid-flight: %d active, %d completed", len(active), len(completed))
	}
	got := active[0]
	if got.Program != "transfer" || got.Outcome != "" {
		t.Fatalf("active trace = %+v", got)
	}
	if len(got.Events) != 5 {
		t.Fatalf("events = %d, want 5", len(got.Events))
	}
	rb := got.Events[3]
	if rb.Kind != "rollback" || rb.Lost != 2 || !strings.Contains(rb.Detail, "lock state 1") {
		t.Fatalf("rollback span = %+v", rb)
	}

	tr.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})
	active, completed = tr.Snapshot()
	if len(active) != 0 || len(completed) != 1 {
		t.Fatalf("after commit: %d active, %d completed", len(active), len(completed))
	}
	if completed[0].Outcome != "commit" {
		t.Fatalf("outcome = %q", completed[0].Outcome)
	}
	if completed[0].Dur() < 0 {
		t.Fatalf("duration negative")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.SetEnabled(true)
	for id := txn.ID(1); id <= 4; id++ {
		traceEvents(tr, id, core.EventRegister, core.EventCommit)
	}
	_, completed := tr.Snapshot()
	if len(completed) != 2 {
		t.Fatalf("ring holds %d, want 2", len(completed))
	}
	// Oldest first: 1 and 2 were evicted, 3 and 4 remain.
	if completed[0].Txn != 3 || completed[1].Txn != 4 {
		t.Fatalf("ring = [%v %v], want [3 4]", completed[0].Txn, completed[1].Txn)
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer(2)
	tr.SetEnabled(true)
	tr.OnEvent(core.Event{Kind: core.EventRegister, Txn: 1})
	for i := 0; i < maxTraceEvents+10; i++ {
		tr.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "e"})
	}
	tr.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})
	_, completed := tr.Snapshot()
	if len(completed) != 1 {
		t.Fatalf("completed = %d", len(completed))
	}
	got := completed[0]
	if !got.Truncated {
		t.Fatal("trace not marked truncated")
	}
	if len(got.Events) != maxTraceEvents {
		t.Fatalf("events = %d, want cap %d", len(got.Events), maxTraceEvents)
	}
	// The commit still completed the trace despite the full event list.
	if got.Outcome != "commit" {
		t.Fatalf("outcome = %q", got.Outcome)
	}
}

func TestTracerDisableDropsActive(t *testing.T) {
	tr := NewTracer(2)
	tr.SetEnabled(true)
	traceEvents(tr, 1, core.EventRegister, core.EventGrant)
	tr.SetEnabled(false)
	active, _ := tr.Snapshot()
	if len(active) != 0 {
		t.Fatalf("disable left %d active traces", len(active))
	}
	// Events for unknown transactions are ignored after re-enable.
	tr.SetEnabled(true)
	tr.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})
	_, completed := tr.Snapshot()
	if len(completed) != 0 {
		t.Fatalf("orphan commit completed a trace")
	}
}

func TestTracerDumps(t *testing.T) {
	tr := NewTracer(2)
	tr.SetEnabled(true)
	clock := &fakeClock{t: time.Unix(1000, 0), tick: time.Millisecond}
	tr.now = clock.now
	tr.OnEvent(core.Event{Kind: core.EventRegister, Txn: 1, Detail: "transfer"})
	tr.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "a"})
	tr.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})
	traceEvents(tr, 2, core.EventRegister, core.EventWait)

	var text strings.Builder
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tracer enabled=true active=1 completed=1", "transfer", "commit in", "active T2"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
	}

	var js strings.Builder
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"enabled": true`, `"program": "transfer"`, `"outcome": "commit"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json dump missing %q:\n%s", want, js.String())
		}
	}
}
