package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
)

// blockedSystem builds a System with T1 holding X(a) and T2 blocked on
// it — a one-arc wait-for graph for the inspector endpoints.
func blockedSystem(t *testing.T) *core.System {
	t.Helper()
	store := entity.NewUniformStore("e", 0, 0)
	store.Define("a", 0)
	sys := core.New(core.Config{Store: store, Strategy: core.MCS})
	p1 := txn.NewProgram("holder").LockX("a").MustBuild()
	p2 := txn.NewProgram("waiter").LockX("a").MustBuild()
	id1, err := sys.Register(p1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := sys.Register(p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(id1); err != nil { // T1 takes X(a)
		t.Fatal(err)
	}
	res, err := sys.Step(id2) // T2 blocks on a
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.Blocked {
		t.Fatalf("T2 step outcome = %v, want Blocked", res.Outcome)
	}
	return sys
}

func newTestMux(t *testing.T, eng core.Engine) *http.ServeMux {
	t.Helper()
	reg := NewRegistry()
	reg.NewCounter("pr_grants_total", "").Add(3)
	tr := NewTracer(4)
	return NewAdminMux(AdminOptions{Registry: reg, Engine: eng, Tracer: tr})
}

func get(t *testing.T, mux *http.ServeMux, url string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestMetricsEndpoint(t *testing.T) {
	mux := newTestMux(t, nil)

	code, body, hdr := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(body, "pr_grants_total 3") {
		t.Errorf("prometheus body missing counter:\n%s", body)
	}

	code, body, hdr = get(t, mux, "/metrics?format=json")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("json: status=%d content-type=%q", code, hdr.Get("Content-Type"))
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out["pr_grants_total"].(float64) != 3 {
		t.Errorf("json counter = %v", out["pr_grants_total"])
	}

	// Accept-header negotiation also selects JSON.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if !strings.Contains(rec.Header().Get("Content-Type"), "json") {
		t.Errorf("Accept negotiation ignored: %q", rec.Header().Get("Content-Type"))
	}
}

func TestWaitForEndpoint(t *testing.T) {
	sys := blockedSystem(t)
	mux := newTestMux(t, sys)

	code, body, _ := get(t, mux, "/debug/waitfor")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Shards []struct {
			Shard int            `json:"shard"`
			Arcs  []core.WaitArc `json:"arcs"`
		} `json:"shards"`
		Merged []core.WaitArc `json:"merged"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(out.Shards) != 1 || len(out.Merged) != 1 {
		t.Fatalf("shards=%d merged=%d, want 1/1", len(out.Shards), len(out.Merged))
	}
	arc := out.Merged[0]
	if arc.Waiter != 2 || arc.Holder != 1 || arc.Entity != "a" {
		t.Fatalf("arc = %+v, want T2 waits for T1 over a", arc)
	}

	code, body, hdr := get(t, mux, "/debug/waitfor?format=dot")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "graphviz") {
		t.Fatalf("dot: status=%d content-type=%q", code, hdr.Get("Content-Type"))
	}
	// Paper orientation: holder -> waiter.
	for _, want := range []string{"digraph waitfor", `"T1" -> "T2" [label="a"]`, "shape=box"} {
		if !strings.Contains(body, want) {
			t.Errorf("dot output missing %q:\n%s", want, body)
		}
	}

	// Shard filter: 0 is the only shard; out of range is a 400.
	if code, _, _ := get(t, mux, "/debug/waitfor?shard=0"); code != http.StatusOK {
		t.Errorf("shard=0 status = %d", code)
	}
	if code, _, _ := get(t, mux, "/debug/waitfor?shard=1"); code != http.StatusBadRequest {
		t.Errorf("shard=1 status = %d, want 400", code)
	}
	if code, _, _ := get(t, mux, "/debug/waitfor?shard=x"); code != http.StatusBadRequest {
		t.Errorf("shard=x status = %d, want 400", code)
	}
}

func TestTxnsEndpoint(t *testing.T) {
	sys := blockedSystem(t)
	mux := newTestMux(t, sys)

	code, body, _ := get(t, mux, "/debug/txns")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Txns []core.TxnSnapshot `json:"txns"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(out.Txns) != 2 {
		t.Fatalf("txns = %d, want 2", len(out.Txns))
	}
	holder, waiter := out.Txns[0], out.Txns[1]
	if holder.Program != "holder" || len(holder.Held) != 1 || holder.Held[0].Entity != "a" || holder.Held[0].Mode != "X" {
		t.Errorf("holder snapshot = %+v", holder)
	}
	if waiter.Program != "waiter" || waiter.WaitingOn != "a" || waiter.Status != "waiting" {
		t.Errorf("waiter snapshot = %+v", waiter)
	}

	code, body, _ = get(t, mux, "/debug/txns?format=text")
	if code != http.StatusOK {
		t.Fatalf("text status = %d", code)
	}
	for _, want := range []string{"shard 0: 2 txn(s)", "held=a:X", "waiting-on=a"} {
		if !strings.Contains(body, want) {
			t.Errorf("text table missing %q:\n%s", want, body)
		}
	}
}

func TestInspectorWithoutEngine(t *testing.T) {
	mux := newTestMux(t, nil)
	if code, _, _ := get(t, mux, "/debug/waitfor"); code != http.StatusNotFound {
		t.Errorf("waitfor without engine = %d, want 404", code)
	}
	if code, _, _ := get(t, mux, "/debug/txns"); code != http.StatusNotFound {
		t.Errorf("txns without engine = %d, want 404", code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	mux := newTestMux(t, nil)

	// Toggle on, then dump.
	code, body, _ := get(t, mux, "/debug/trace?enable=true")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": true`) {
		t.Fatalf("enable: status=%d body=%s", code, body)
	}
	code, body, _ = get(t, mux, "/debug/trace?format=text")
	if code != http.StatusOK || !strings.Contains(body, "tracer enabled=true") {
		t.Fatalf("text: status=%d body=%s", code, body)
	}
	if code, _, _ := get(t, mux, "/debug/trace?enable=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus enable = %d, want 400", code)
	}
}

func TestPprofMounted(t *testing.T) {
	mux := newTestMux(t, nil)
	code, body, _ := get(t, mux, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profiles") {
		t.Fatalf("pprof index: status=%d", code)
	}
}

func TestSnapshotsOf(t *testing.T) {
	if _, ok := SnapshotsOf(nil); ok {
		t.Error("nil engine reported snapshots")
	}
	sys := blockedSystem(t)
	snaps, ok := SnapshotsOf(sys)
	if !ok || len(snaps) != 1 {
		t.Fatalf("System snapshots: ok=%v n=%d", ok, len(snaps))
	}
}
