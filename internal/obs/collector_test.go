package obs

import (
	"testing"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/txn"
)

// fakeClock steps a synthetic time by a fixed tick per reading, so wait
// durations are deterministic.
type fakeClock struct {
	t    time.Time
	tick time.Duration
}

func (f *fakeClock) now() time.Time {
	f.t = f.t.Add(f.tick)
	return f.t
}

func TestCollectorCounters(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)

	c.OnEvent(core.Event{Kind: core.EventRegister, Txn: 1})
	c.OnEvent(core.Event{Kind: core.EventRegister, Txn: 2})
	c.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventWait, Txn: 2, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventUnlock, Txn: 1, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventGrant, Txn: 2, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})
	c.OnEvent(core.Event{Kind: core.EventCommit, Txn: 2})
	c.OnEvent(core.Event{Kind: core.EventAdmit, Txn: 3})

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"registers", c.Registers.Value(), 2},
		{"grants", c.Grants.Value(), 2},
		{"waits", c.Waits.Value(), 1},
		{"unlocks", c.Unlocks.Value(), 1},
		{"commits", c.Commits.Value(), 2},
		{"admits", c.Admits.Value(), 1},
		{"wait durations", c.WaitDur.Count(), 1},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
}

func TestCollectorRollbackAndDeadlock(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)

	report := &core.DeadlockReport{
		Requester: 1, Entity: "a",
		Cycles:  [][]txn.ID{{1, 2}, {1, 2, 3}},
		Victims: []deadlock.Victim{{Txn: 2}, {Txn: 3}},
	}
	c.OnEvent(core.Event{Kind: core.EventDeadlock, Txn: 1, Deadlock: report})
	// Partial rollback: 3 states undone, landing on lock state 2.
	c.OnEvent(core.Event{Kind: core.EventRollback, Txn: 2, Lost: 3, ToLockState: 2})
	// Total rollback (restart): back to lock state 0.
	c.OnEvent(core.Event{Kind: core.EventRollback, Txn: 3, Lost: 7, ToLockState: 0})

	if got := c.Deadlocks.Value(); got != 1 {
		t.Errorf("deadlocks = %d, want 1", got)
	}
	if got := c.Victims.Value(); got != 2 {
		t.Errorf("victims = %d, want 2", got)
	}
	if got := c.Rollbacks.Value(); got != 2 {
		t.Errorf("rollbacks = %d, want 2", got)
	}
	if got := c.Restarts.Value(); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
	if got := c.OpsLost.Value(); got != 10 {
		t.Errorf("ops lost = %d, want 10", got)
	}
	if got := c.RollbackDepth.Count(); got != 2 {
		t.Errorf("rollback depth count = %d, want 2", got)
	}
	if got := c.RollbackDepth.Sum(); got != 10 {
		t.Errorf("rollback depth sum = %d, want 10", got)
	}
	if got := c.CycleLen.Count(); got != 2 {
		t.Errorf("cycle lengths = %d, want 2", got)
	}
	if got := c.CycleLen.Sum(); got != 5 {
		t.Errorf("cycle length sum = %d, want 5", got)
	}
	if got := c.VictimsPerDL.Sum(); got != 2 {
		t.Errorf("victims per deadlock sum = %d, want 2", got)
	}
}

func TestCollectorWaitDurations(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	clock := &fakeClock{t: time.Unix(0, 0), tick: 10 * time.Millisecond}
	c.now = clock.now

	// T1 waits then is granted: one 10ms wait (one tick between the
	// stamps).
	c.OnEvent(core.Event{Kind: core.EventWait, Txn: 1, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1, Entity: "a"})
	// T2 waits then is rolled back: the rollback closes the interval.
	c.OnEvent(core.Event{Kind: core.EventWait, Txn: 2, Entity: "a"})
	c.OnEvent(core.Event{Kind: core.EventRollback, Txn: 2, Lost: 1, ToLockState: 0})
	// A grant with no recorded wait start (immediate grant) observes
	// nothing.
	c.OnEvent(core.Event{Kind: core.EventGrant, Txn: 3, Entity: "b"})

	if got := c.WaitDur.Count(); got != 2 {
		t.Fatalf("wait count = %d, want 2", got)
	}
	if got := c.WaitDur.Sum(); got != 20*time.Millisecond {
		t.Fatalf("wait sum = %v, want 20ms", got)
	}
}

func TestCollectorGauges(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)

	c.OnEvent(core.Event{Kind: core.EventRegister, Txn: 1})
	c.OnEvent(core.Event{Kind: core.EventRegister, Txn: 2})
	c.OnEvent(core.Event{Kind: core.EventWait, Txn: 2, Entity: "a"})

	active, waiting := gaugeValues(t, reg)
	if active != 2 {
		t.Errorf("active = %d, want 2", active)
	}
	if waiting != 1 {
		t.Errorf("waiting = %d, want 1", waiting)
	}

	// An abort while waiting ends both the wait and the activity.
	c.OnEvent(core.Event{Kind: core.EventRollback, Txn: 2, Lost: 2, ToLockState: 0})
	c.OnEvent(core.Event{Kind: core.EventAbort, Txn: 2})
	c.OnEvent(core.Event{Kind: core.EventCommit, Txn: 1})

	active, waiting = gaugeValues(t, reg)
	if active != 0 {
		t.Errorf("active after completion = %d, want 0", active)
	}
	if waiting != 0 {
		t.Errorf("waiting after completion = %d, want 0", waiting)
	}
	if got := c.Aborts.Value(); got != 1 {
		t.Errorf("aborts = %d, want 1", got)
	}
	// The abort's second endWait is a no-op: only one wait was recorded.
	if got := c.WaitDur.Count(); got != 1 {
		t.Errorf("wait count = %d, want 1", got)
	}
}

// gaugeValues scrapes pr_txns_active and pr_txns_waiting from the
// registry's JSON view, exercising the render path as a scrape would.
func gaugeValues(t *testing.T, reg *Registry) (active, waiting int64) {
	t.Helper()
	for _, m := range reg.snapshot() {
		switch m.name() {
		case "pr_txns_active":
			active = m.jsonValue().(int64)
		case "pr_txns_waiting":
			waiting = m.jsonValue().(int64)
		}
	}
	return active, waiting
}
