package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

// SpanEvent is one timestamped lifecycle step inside a transaction
// trace.
type SpanEvent struct {
	T      time.Time `json:"t"`
	Kind   string    `json:"kind"`
	Entity string    `json:"entity,omitempty"`
	Detail string    `json:"detail,omitempty"`
	// Lost is the rollback depth for "rollback" events.
	Lost int64 `json:"lost,omitempty"`
}

// TxnTrace is one transaction's recorded lifecycle: register, each
// claim, wait, grant, rollback, and finally commit or abort.
type TxnTrace struct {
	Txn     txn.ID      `json:"txn"`
	Program string      `json:"program"`
	Start   time.Time   `json:"start"`
	End     time.Time   `json:"end"`
	Outcome string      `json:"outcome,omitempty"` // "commit" or "abort"; empty while active
	Events  []SpanEvent `json:"events"`
	// Truncated reports that the per-transaction event cap was hit and
	// later events were dropped.
	Truncated bool `json:"truncated,omitempty"`
}

// Dur returns the trace's end-to-end duration (zero while active).
func (t *TxnTrace) Dur() time.Duration {
	if t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// maxTraceEvents bounds one transaction's recorded events so a
// pathological retry loop cannot grow a trace without bound.
const maxTraceEvents = 512

// Tracer records opt-in per-transaction lifecycle traces from the
// engine event stream. It is off by default: while disabled, OnEvent
// returns after a single atomic load, so chaining a Tracer into a
// production event path is near-free. Completed traces are retained in
// a fixed-size ring (oldest evicted first).
//
// Chain OnEvent onto core.Config.OnEvent; all methods are safe for
// concurrent use.
type Tracer struct {
	enabled atomic.Bool
	cap     int

	now func() time.Time

	mu     sync.Mutex
	active map[txn.ID]*TxnTrace
	ring   []*TxnTrace
	next   int
	dropped int64
}

// NewTracer returns a disabled tracer retaining up to capacity
// completed traces (capacity <= 0 means 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		cap:    capacity,
		now:    time.Now,
		active: map[txn.ID]*TxnTrace{},
	}
}

// SetEnabled turns tracing on or off. Turning it off drops in-flight
// traces (completed ones stay in the ring).
func (tr *Tracer) SetEnabled(on bool) {
	tr.enabled.Store(on)
	if !on {
		tr.mu.Lock()
		tr.active = map[txn.ID]*TxnTrace{}
		tr.mu.Unlock()
	}
}

// Enabled reports whether the tracer is recording.
func (tr *Tracer) Enabled() bool { return tr.enabled.Load() }

// OnEvent consumes one engine event.
func (tr *Tracer) OnEvent(e core.Event) {
	if !tr.enabled.Load() {
		return
	}
	now := tr.now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if e.Kind == core.EventRegister {
		tr.active[e.Txn] = &TxnTrace{
			Txn: e.Txn, Program: e.Detail, Start: now,
			Events: []SpanEvent{{T: now, Kind: e.Kind.String(), Detail: e.Detail}},
		}
		return
	}
	t := tr.active[e.Txn]
	if t == nil {
		return // registered before tracing was enabled
	}
	if len(t.Events) < maxTraceEvents {
		se := SpanEvent{T: now, Kind: e.Kind.String(), Entity: e.Entity, Detail: e.Detail}
		if e.Kind == core.EventRollback {
			se.Lost = e.Lost
			se.Detail = fmt.Sprintf("to lock state %d", e.ToLockState)
		}
		t.Events = append(t.Events, se)
	} else {
		t.Truncated = true
		tr.dropped++
	}
	switch e.Kind {
	case core.EventCommit, core.EventAbort:
		t.End = now
		t.Outcome = e.Kind.String()
		delete(tr.active, e.Txn)
		tr.retain(t)
	}
}

// retain stores a completed trace in the ring. Caller holds mu.
func (tr *Tracer) retain(t *TxnTrace) {
	if len(tr.ring) < tr.cap {
		tr.ring = append(tr.ring, t)
		return
	}
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % tr.cap
}

// Snapshot returns copies of the currently active traces and the
// retained completed ones, oldest completed first.
func (tr *Tracer) Snapshot() (active, completed []TxnTrace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, t := range tr.active {
		active = append(active, cloneTrace(t))
	}
	sort.Slice(active, func(i, j int) bool { return active[i].Txn < active[j].Txn })
	n := len(tr.ring)
	for i := 0; i < n; i++ {
		idx := i
		if n == tr.cap {
			idx = (tr.next + i) % n
		}
		completed = append(completed, cloneTrace(tr.ring[idx]))
	}
	return active, completed
}

func cloneTrace(t *TxnTrace) TxnTrace {
	c := *t
	c.Events = append([]SpanEvent(nil), t.Events...)
	return c
}

// WriteJSON dumps the snapshot as one JSON object.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	active, completed := tr.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"enabled":   tr.Enabled(),
		"active":    active,
		"completed": completed,
	})
}

// WriteText dumps the snapshot as an indented human-readable listing.
func (tr *Tracer) WriteText(w io.Writer) error {
	active, completed := tr.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "tracer enabled=%v active=%d completed=%d\n", tr.Enabled(), len(active), len(completed))
	dump := func(label string, ts []TxnTrace) {
		for i := range ts {
			t := &ts[i]
			fmt.Fprintf(&b, "%s %v %s", label, t.Txn, t.Program)
			if t.Outcome != "" {
				fmt.Fprintf(&b, " %s in %v", t.Outcome, t.Dur().Round(time.Microsecond))
			}
			b.WriteByte('\n')
			for _, e := range t.Events {
				fmt.Fprintf(&b, "  %s %-10s", e.T.Format("15:04:05.000000"), e.Kind)
				if e.Entity != "" {
					fmt.Fprintf(&b, " %s", e.Entity)
				}
				if e.Detail != "" {
					fmt.Fprintf(&b, " (%s)", e.Detail)
				}
				if e.Lost != 0 {
					fmt.Fprintf(&b, " lost=%d", e.Lost)
				}
				b.WriteByte('\n')
			}
			if t.Truncated {
				b.WriteString("  ... truncated\n")
			}
		}
	}
	dump("active", active)
	dump("done", completed)
	_, err := io.WriteString(w, b.String())
	return err
}
