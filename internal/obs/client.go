package obs

import (
	"sync/atomic"
	"time"
)

// ClientMetrics accumulates a network client's view of the service:
// attempts, retries after server-side rollbacks or transport failures,
// terminal failures, rollback notifications observed, and end-to-end
// commit latency. One ClientMetrics may be shared by many
// internal/client.Client instances (all fields are atomic); pass it via
// client.Config.Metrics.
type ClientMetrics struct {
	// Attempts counts transaction submissions (first tries and retries).
	Attempts atomic.Int64
	// Retries counts re-submissions after a retryable failure.
	Retries atomic.Int64
	// Commits counts transactions that ended committed.
	Commits atomic.Int64
	// Failures counts transactions that ended in a terminal error.
	Failures atomic.Int64
	// RollbacksObserved counts partial-rollback notifications streamed
	// by the server while our transactions executed.
	RollbacksObserved atomic.Int64

	// latency is nil unless the metrics were built by NewClientMetrics.
	latency *Histogram
}

// ClientLatencyBuckets bounds the commit-latency histogram
// (milliseconds).
var ClientLatencyBuckets = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// NewClientMetrics registers client counters and the commit-latency
// histogram on reg under the "pr_client_" prefix and returns the
// ClientMetrics feeding them.
func NewClientMetrics(reg *Registry) *ClientMetrics {
	m := &ClientMetrics{}
	reg.NewGauge("pr_client_attempts_total", "Transaction submissions (first tries and retries).", m.Attempts.Load)
	reg.NewGauge("pr_client_retries_total", "Re-submissions after retryable failures.", m.Retries.Load)
	reg.NewGauge("pr_client_commits_total", "Transactions committed.", m.Commits.Load)
	reg.NewGauge("pr_client_failures_total", "Transactions that failed terminally.", m.Failures.Load)
	reg.NewGauge("pr_client_rollbacks_observed_total", "Partial-rollback notifications received.", m.RollbacksObserved.Load)
	m.latency = reg.NewHistogram("pr_client_commit_latency_ms",
		"End-to-end transaction latency across attempts, milliseconds.", ClientLatencyBuckets)
	return m
}

// ObserveCommit records one committed transaction's end-to-end latency.
func (m *ClientMetrics) ObserveCommit(d time.Duration) {
	m.Commits.Add(1)
	if m.latency != nil {
		m.latency.Observe(d.Milliseconds())
	}
}

// Latency returns the commit-latency histogram (nil unless built by
// NewClientMetrics).
func (m *ClientMetrics) Latency() *Histogram { return m.latency }
