package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("t_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var live int64 = 7
	g := reg.NewGauge("t_live", "live", func() int64 { return live })
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	live = 9

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP t_ops_total ops",
		"# TYPE t_ops_total counter",
		"t_ops_total 5",
		"# TYPE t_live gauge",
		"t_live 9",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Sorted by name: t_live before t_ops_total.
	if strings.Index(text, "t_live") > strings.Index(text, "t_ops_total 5") {
		t.Errorf("metrics not sorted by name:\n%s", text)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	reg.NewCounter("dup", "")
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("t_depth", "depth", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 111 {
		t.Fatalf("sum = %d, want 111", got)
	}
	// Bounds inclusive: le=1 gets {0,1}, le=2 adds {2}, le=4 adds {3},
	// le=8 adds {5}, and 100 lands in +Inf only.
	want := []int64{2, 3, 4, 5}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative buckets = %v, want %v", got, want)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, wantLine := range []string{
		"# TYPE t_depth histogram",
		`t_depth_bucket{le="1"} 2`,
		`t_depth_bucket{le="8"} 5`,
		`t_depth_bucket{le="+Inf"} 6`,
		"t_depth_sum 111",
		"t_depth_count 6",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("prometheus output missing %q:\n%s", wantLine, text)
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {2, 2}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewRegistry().NewHistogram("bad", "", bounds)
		}()
	}
}

func TestDurationHistogramRendersSeconds(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewDurationHistogram("t_wait_seconds", "wait",
		[]time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(250 * time.Millisecond)
	if got := h.Sum(); got != 250*time.Millisecond+500*time.Microsecond {
		t.Fatalf("sum = %v", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`t_wait_seconds_bucket{le="0.001"} 1`,
		`t_wait_seconds_bucket{le="1"} 2`,
		"t_wait_seconds_sum 0.2505",
		"t_wait_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestGaugeSet(t *testing.T) {
	reg := NewRegistry()
	reg.NewGaugeSet("srv_", "server counters", func() []KV {
		return []KV{{Name: "shard1 grants", Val: 3}, {Name: "accepted", Val: 11}}
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "srv_accepted 11") {
		t.Errorf("gauge set missing accepted:\n%s", text)
	}
	// The space is sanitized into the metric-name alphabet.
	if !strings.Contains(text, "srv_shard1_grants 3") {
		t.Errorf("gauge set name not sanitized:\n%s", text)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("j_ops_total", "").Add(5)
	h := reg.NewHistogram("j_depth", "", []int64{1, 10})
	h.Observe(3)
	reg.NewGaugeSet("j_set_", "", func() []KV { return []KV{{Name: "a", Val: 1}} })

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if got := out["j_ops_total"].(float64); got != 5 {
		t.Errorf("j_ops_total = %v, want 5", got)
	}
	hv := out["j_depth"].(map[string]any)
	if hv["count"].(float64) != 1 || hv["sum"].(float64) != 3 {
		t.Errorf("j_depth = %v", hv)
	}
	buckets := hv["buckets"].([]any)
	if len(buckets) != 3 { // le=1, le=10, +Inf
		t.Errorf("j_depth buckets = %v", buckets)
	}
	set := out["j_set_"].(map[string]any)
	if set["a"].(float64) != 1 {
		t.Errorf("j_set_ = %v", set)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "")
	h := reg.NewHistogram("h", "", []int64{10, 100})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				if i%100 == 0 {
					var b strings.Builder
					_ = reg.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}
