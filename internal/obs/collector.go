package obs

import (
	"fmt"
	"sync"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

// Default bucket layouts. Rollback depth and cycle length are small
// integers in practice (the paper's §5 experiments rarely exceed a few
// dozen lost operations per rollback); wait durations span micro- to
// multi-second scales under load.
var (
	// DepthBuckets bounds the rollback-depth histogram (states undone
	// per victim — the paper's cost metric).
	DepthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	// CycleBuckets bounds the deadlock cycle-length histogram.
	CycleBuckets = []int64{2, 3, 4, 6, 8, 12, 16}
	// VictimBuckets bounds the victims-per-deadlock histogram.
	VictimBuckets = []int64{1, 2, 3, 4, 6, 8}
	// WaitBuckets bounds the lock wait-duration histogram.
	WaitBuckets = []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		100 * time.Millisecond, 500 * time.Millisecond,
		2 * time.Second, 10 * time.Second,
	}
	// EngineLockWaitBuckets bounds the engine-lock wait histogram:
	// nanoseconds a step-path acquisition blocked before entering the
	// engine's critical section. Uncontended acquisitions land in the
	// lowest buckets; a fat tail here means the engine lock itself (not
	// entity conflicts) throttles throughput — the signal striping is
	// meant to remove.
	EngineLockWaitBuckets = []int64{
		100, 500, 1_000, 5_000, 20_000, 100_000,
		500_000, 2_000_000, 10_000_000, 100_000_000,
	}
)

// Collector turns the engine's event stream into metrics. Chain
// Collector.OnEvent onto core.Config.OnEvent (composing with other
// sinks as needed); it is safe to call concurrently and from under the
// engine mutex — it never calls back into the engine.
type Collector struct {
	// Event counters.
	Registers, Grants, Waits, Unlocks, Commits, Aborts, Admits *Counter
	Deadlocks, Rollbacks, Restarts, OpsLost, Victims           *Counter

	// Histograms.
	WaitDur        *DurationHistogram
	RollbackDepth  *Histogram
	CycleLen       *Histogram
	VictimsPerDL   *Histogram
	EngineLockWait *Histogram

	now func() time.Time

	// waitStart tracks when each currently-waiting transaction started
	// its wait; its size is the waiting-transactions gauge.
	mu        sync.Mutex
	waitStart map[txn.ID]time.Time
	active    int64
}

// NewCollector registers the engine metrics on reg and returns the
// collector feeding them.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{
		Registers: reg.NewCounter("pr_registers_total", "Transactions registered."),
		Grants:    reg.NewCounter("pr_grants_total", "Lock requests granted."),
		Waits:     reg.NewCounter("pr_waits_total", "Lock requests that had to wait."),
		Unlocks:   reg.NewCounter("pr_unlocks_total", "Early (shrinking-phase) unlocks."),
		Commits:   reg.NewCounter("pr_commits_total", "Transactions committed."),
		Aborts:    reg.NewCounter("pr_aborts_total", "Transactions aborted (rolled back to initial state and removed)."),
		Admits:    reg.NewCounter("pr_admissions_total", "Queued cross-shard claims admitted to a shard."),
		Deadlocks: reg.NewCounter("pr_deadlocks_total", "Deadlocks detected and resolved."),
		Rollbacks: reg.NewCounter("pr_rollbacks_total", "Rollback events (partial and total)."),
		Restarts:  reg.NewCounter("pr_restarts_total", "Rollbacks that went all the way to the initial state."),
		OpsLost:   reg.NewCounter("pr_ops_lost_total", "Atomic operations discarded by rollbacks (summed rollback cost)."),
		Victims:   reg.NewCounter("pr_victims_total", "Victims rolled back across all deadlocks."),
		WaitDur: reg.NewDurationHistogram("pr_wait_duration_seconds",
			"Time from a lock wait to its grant or to the waiter's rollback.", WaitBuckets),
		RollbackDepth: reg.NewHistogram("pr_rollback_depth",
			"States undone per rollback victim (the paper's rollback-cost metric).", DepthBuckets),
		CycleLen: reg.NewHistogram("pr_cycle_length",
			"Length of each deadlock cycle resolved.", CycleBuckets),
		VictimsPerDL: reg.NewHistogram("pr_victims_per_deadlock",
			"Victims rolled back per deadlock.", VictimBuckets),
		EngineLockWait: reg.NewHistogram("pr_engine_lock_wait_ns",
			"Nanoseconds each step-path engine-lock acquisition blocked before entering.", EngineLockWaitBuckets),
		now:       time.Now,
		waitStart: map[txn.ID]time.Time{},
	}
	reg.NewGauge("pr_txns_active", "Transactions registered and not yet committed, aborted or forgotten.",
		func() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.active })
	reg.NewGauge("pr_txns_waiting", "Transactions currently blocked on a lock.",
		func() int64 { c.mu.Lock(); defer c.mu.Unlock(); return int64(len(c.waitStart)) })
	return c
}

// OnEvent consumes one engine event.
func (c *Collector) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EventRegister:
		c.Registers.Inc()
		c.mu.Lock()
		c.active++
		c.mu.Unlock()
	case core.EventGrant:
		c.Grants.Inc()
		c.endWait(e.Txn)
	case core.EventWait:
		c.Waits.Inc()
		c.mu.Lock()
		c.waitStart[e.Txn] = c.now()
		c.mu.Unlock()
	case core.EventUnlock:
		c.Unlocks.Inc()
	case core.EventCommit:
		c.Commits.Inc()
		c.mu.Lock()
		c.active--
		c.mu.Unlock()
	case core.EventAbort:
		c.Aborts.Inc()
		c.endWait(e.Txn)
		c.mu.Lock()
		c.active--
		c.mu.Unlock()
	case core.EventAdmit:
		c.Admits.Inc()
	case core.EventDeadlock:
		c.Deadlocks.Inc()
		if r := e.Deadlock; r != nil {
			for _, cyc := range r.Cycles {
				c.CycleLen.Observe(int64(len(cyc)))
			}
			c.VictimsPerDL.Observe(int64(len(r.Victims)))
			c.Victims.Add(int64(len(r.Victims)))
		}
	case core.EventRollback:
		c.Rollbacks.Inc()
		if e.ToLockState == 0 {
			c.Restarts.Inc()
		}
		c.OpsLost.Add(e.Lost)
		c.RollbackDepth.Observe(e.Lost)
		// A rolled-back waiter is runnable again; its wait is over.
		c.endWait(e.Txn)
	}
}

// ObserveLockWait records one engine-lock acquisition's blocked time in
// nanoseconds. Wire core.Config.LockWait (or runtime.Options.LockWait /
// server.Config) to this; safe for concurrent use.
func (c *Collector) ObserveLockWait(ns int64) { c.EngineLockWait.Observe(ns) }

// stripeAcquirer is any engine exposing per-stripe lock-acquire
// counters (a striped core.System, or a shard.Engine whose shards are
// striped).
type stripeAcquirer interface{ StripeAcquires() []int64 }

// RegisterStripeAcquires exposes eng's per-stripe lock-acquire counters
// as pr_engine_stripe_acquires_stripe<k> gauges on reg. No-op for
// engines without striping, so callers can wire it unconditionally.
func RegisterStripeAcquires(reg *Registry, eng core.Engine) {
	sa, ok := eng.(stripeAcquirer)
	if !ok || sa.StripeAcquires() == nil {
		return
	}
	reg.NewGaugeSet("pr_engine_stripe_acquires_",
		"Cumulative lock grants per lock-table stripe (summed across shards).",
		func() []KV {
			counts := sa.StripeAcquires()
			out := make([]KV, len(counts))
			for i, v := range counts {
				out[i] = KV{Name: fmt.Sprintf("stripe%d", i), Val: v}
			}
			return out
		})
}

// endWait closes a transaction's open wait interval, if any, and
// observes its duration.
func (c *Collector) endWait(id txn.ID) {
	c.mu.Lock()
	start, ok := c.waitStart[id]
	if ok {
		delete(c.waitStart, id)
	}
	c.mu.Unlock()
	if ok {
		c.WaitDur.Observe(c.now().Sub(start))
	}
}
