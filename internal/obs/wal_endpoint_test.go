package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestWALEndpoint(t *testing.T) {
	want := WALStatus{
		Dir:      "/tmp/wal",
		Frontier: 42,
		Shards: []WALShard{
			{Shard: 0, ActiveBytes: 128, ActiveLastSeq: 40, DurableSeq: 40, SealedSegments: 2, SealedBytes: 512},
			{Shard: 1, ActiveBytes: 64, ActiveLastSeq: 42, DurableSeq: 42, PendingRecords: 3},
		},
		Checkpoint: &WALCheckpoint{Checkpoints: 5, LastFrontier: 37, LastEntities: 80, LastBytes: 2048, AgeSeconds: 1.5},
	}
	mux := NewAdminMux(AdminOptions{
		Registry: NewRegistry(),
		WAL:      func() WALStatus { return want },
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/wal", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var got WALStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Dir != want.Dir || got.Frontier != want.Frontier || len(got.Shards) != 2 {
		t.Fatalf("reply = %+v", got)
	}
	if got.Shards[0] != want.Shards[0] || got.Shards[1] != want.Shards[1] {
		t.Fatalf("shards = %+v", got.Shards)
	}
	if got.Checkpoint == nil || *got.Checkpoint != *want.Checkpoint {
		t.Fatalf("checkpoint = %+v", got.Checkpoint)
	}
}

func TestWALEndpointAbsentWithoutSource(t *testing.T) {
	mux := NewAdminMux(AdminOptions{Registry: NewRegistry()})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/wal", nil))
	if rec.Code != 404 {
		t.Fatalf("status without WAL source = %d, want 404", rec.Code)
	}
}
