// Package obs is the engine's observability subsystem: a low-overhead
// metrics registry, a per-transaction lifecycle tracer, and an HTTP
// admin surface (Prometheus/JSON metrics, a live wait-for-graph
// inspector, an active-transaction table, pprof).
//
// Everything is fed by the structured core.Event stream the engine
// already emits — the collector and tracer are just event sinks chained
// onto core.Config.OnEvent — plus the point-in-time snapshot hooks
// (core.Snapshotter / core.ShardSnapshotter) for the live inspector.
// The hot path costs a handful of atomic increments per event; tracing
// is off by default and short-circuits on one atomic load.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metric is anything the registry can expose.
type metric interface {
	name() string
	// writeProm appends the Prometheus text exposition of the metric.
	writeProm(b *strings.Builder)
	// jsonValue returns the expvar-style JSON value of the metric.
	jsonValue() any
}

// Registry holds named metrics and renders them as Prometheus text or
// expvar-style JSON. All methods are safe for concurrent use; metric
// updates are atomic and never block on the registry.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name()] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name()))
	}
	r.byName[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// snapshot returns the metric list sorted by name.
func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	out := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name() < out[j].name() })
	return out
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range r.snapshot() {
		m.writeProm(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every metric as one JSON object keyed by metric
// name (expvar style): counters and gauges map to numbers, histograms
// to {buckets, sum, count} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	for _, m := range r.snapshot() {
		out[m.name()] = m.jsonValue()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	nm, help string
	v        atomic.Int64
}

// NewCounter registers and returns a counter. Counter names should end
// in "_total" by Prometheus convention.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.add(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) writeProm(b *strings.Builder) {
	writeHeader(b, c.nm, c.help, "counter")
	fmt.Fprintf(b, "%s %d\n", c.nm, c.v.Load())
}

func (c *Counter) jsonValue() any { return c.v.Load() }

// Gauge is an instantaneous value, read from a function at collection
// time (so it can expose state owned elsewhere — queue depths, active
// sessions — without copying it on every update).
type Gauge struct {
	nm, help string
	f        func() int64
}

// NewGauge registers a function gauge. f is called at collection time
// and must be safe for concurrent use.
func (r *Registry) NewGauge(name, help string, f func() int64) *Gauge {
	g := &Gauge{nm: name, help: help, f: f}
	r.add(g)
	return g
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.f() }

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) writeProm(b *strings.Builder) {
	writeHeader(b, g.nm, g.help, "gauge")
	fmt.Fprintf(b, "%s %d\n", g.nm, g.f())
}

func (g *Gauge) jsonValue() any { return g.f() }

// GaugeSet exposes a dynamic set of named values read from one function
// at collection time — e.g. a server's whole counter snapshot, or
// per-shard stats whose cardinality depends on configuration. Each pair
// is rendered as "<prefix><name>".
type GaugeSet struct {
	prefix, help string
	f            func() []KV
}

// KV is one name/value pair of a GaugeSet.
type KV struct {
	Name string
	Val  int64
}

// NewGaugeSet registers a gauge set. f is called at collection time and
// must be safe for concurrent use; names it returns must be stable and
// must not collide with other metrics.
func (r *Registry) NewGaugeSet(prefix, help string, f func() []KV) *GaugeSet {
	g := &GaugeSet{prefix: prefix, help: help, f: f}
	r.add(g)
	return g
}

func (g *GaugeSet) name() string { return g.prefix }

func (g *GaugeSet) writeProm(b *strings.Builder) {
	kvs := g.f()
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Name < kvs[j].Name })
	for _, kv := range kvs {
		n := g.prefix + sanitize(kv.Name)
		writeHeader(b, n, g.help, "gauge")
		fmt.Fprintf(b, "%s %d\n", n, kv.Val)
	}
}

func (g *GaugeSet) jsonValue() any {
	out := map[string]int64{}
	for _, kv := range g.f() {
		out[sanitize(kv.Name)] = kv.Val
	}
	return out
}

// Histogram is a fixed-bucket histogram of int64 observations with
// atomic counts. Buckets are cumulative in the Prometheus exposition.
// An optional render scale lets durations be recorded in nanoseconds
// but exposed in seconds (see NewDurationHistogram).
type Histogram struct {
	nm, help string
	// bounds are inclusive upper bounds, strictly increasing; the
	// implicit final bucket is +Inf.
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
	scale  float64 // multiplier applied to bounds and sum when rendering
}

// NewHistogram registers a histogram over the given inclusive upper
// bounds (must be strictly increasing and non-empty).
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	h := newHistogram(name, help, bounds, 1)
	r.add(h)
	return h
}

// NewDurationHistogram registers a histogram observed in
// time.Duration but exposed in seconds (Prometheus convention); name
// it accordingly (e.g. "..._seconds").
func (r *Registry) NewDurationHistogram(name, help string, bounds []time.Duration) *DurationHistogram {
	bs := make([]int64, len(bounds))
	for i, d := range bounds {
		bs[i] = int64(d)
	}
	h := newHistogram(name, help, bs, 1e-9)
	r.add(h)
	return &DurationHistogram{h: h}
}

func newHistogram(name, help string, bounds []int64, scale float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not increasing", name))
		}
	}
	return &Histogram{
		nm: name, help: help,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		scale:  scale,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values (in the observation unit).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the cumulative counts per bound (the +Inf bucket is
// Count()).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.bounds))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) name() string { return h.nm }

// renderBound formats a bucket bound in the exposition unit.
func (h *Histogram) renderBound(b int64) string {
	if h.scale == 1 {
		return fmt.Sprintf("%d", b)
	}
	return trimFloat(float64(b) * h.scale)
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func (h *Histogram) writeProm(b *strings.Builder) {
	writeHeader(b, h.nm, h.help, "histogram")
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.nm, h.renderBound(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, h.n.Load())
	if h.scale == 1 {
		fmt.Fprintf(b, "%s_sum %d\n", h.nm, h.sum.Load())
	} else {
		fmt.Fprintf(b, "%s_sum %s\n", h.nm, trimFloat(float64(h.sum.Load())*h.scale))
	}
	fmt.Fprintf(b, "%s_count %d\n", h.nm, h.n.Load())
}

// histJSON is the JSON shape of a histogram.
type histJSON struct {
	Buckets []histBucket `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   int64        `json:"count"`
}

type histBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

func (h *Histogram) jsonValue() any {
	out := histJSON{Count: h.n.Load()}
	if h.scale == 1 {
		out.Sum = float64(h.sum.Load())
	} else {
		out.Sum = float64(h.sum.Load()) * h.scale
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		out.Buckets = append(out.Buckets, histBucket{LE: h.renderBound(bound), Count: cum})
	}
	out.Buckets = append(out.Buckets, histBucket{LE: "+Inf", Count: h.n.Load()})
	return out
}

// DurationHistogram wraps a Histogram whose observations are durations
// (stored in nanoseconds, exposed in seconds).
type DurationHistogram struct {
	h *Histogram
}

// Observe records one duration.
func (d *DurationHistogram) Observe(v time.Duration) { d.h.Observe(int64(v)) }

// Count returns the number of observations.
func (d *DurationHistogram) Count() int64 { return d.h.Count() }

// Sum returns the total observed duration.
func (d *DurationHistogram) Sum() time.Duration { return time.Duration(d.h.Sum()) }

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// sanitize maps arbitrary counter names onto the Prometheus metric
// name alphabet ([a-zA-Z0-9_:]).
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
