package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

// AdminOptions wires an admin mux to a running engine.
type AdminOptions struct {
	// Registry serves /metrics. Required.
	Registry *Registry
	// Engine provides the live snapshots behind /debug/waitfor and
	// /debug/txns. Either core.Snapshotter (unsharded System) or
	// core.ShardSnapshotter (sharded engine) is honored; nil or any
	// other engine disables the inspector endpoints with 404s.
	Engine core.Engine
	// Tracer, when non-nil, serves /debug/trace.
	Tracer *Tracer
	// Queued, when non-nil, is appended to /debug/txns output (the
	// sharded engine's admission queue).
	Queued func() []KV
	// Owners, when non-nil, annotates each /debug/txns entry with the
	// connection and stream currently driving that transaction (wire it
	// to the network server's Owners method) — the tool for finding
	// which socket a stuck stream belongs to.
	Owners func() map[txn.ID]TxnOwner
	// WAL, when non-nil, serves /debug/wal: per-shard log accounting
	// and checkpoint status. Wire it to the durability layer; nil
	// disables the endpoint with a 404.
	WAL func() WALStatus
}

// WALShard is one shard log's accounting in /debug/wal. It mirrors
// durable.ShardLogStatus; obs keeps its own copy so the admin surface
// does not depend on the durability layer.
type WALShard struct {
	Shard          int    `json:"shard"`
	ActiveBytes    int64  `json:"activeBytes"`
	ActiveLastSeq  uint64 `json:"activeLastSeq"`
	DurableSeq     uint64 `json:"durableSeq"`
	PendingRecords int    `json:"pendingRecords"`
	SealedSegments int    `json:"sealedSegments"`
	SealedBytes    int64  `json:"sealedBytes"`
}

// WALCheckpoint is /debug/wal's checkpoint section, mirroring
// checkpoint.Status with a derived age.
type WALCheckpoint struct {
	Checkpoints  int64   `json:"checkpoints"`
	LastFrontier uint64  `json:"lastFrontier"`
	LastEntities int     `json:"lastEntities"`
	LastBytes    int64   `json:"lastBytes"`
	LastUnix     int64   `json:"lastUnix"`
	AgeSeconds   float64 `json:"ageSeconds"`
	Errors       int64   `json:"errors"`
}

// WALStatus is /debug/wal's reply: where the logs live, the global
// sequence frontier, per-shard segment accounting, and — when a
// checkpointer is running — its status.
type WALStatus struct {
	Dir        string         `json:"dir"`
	Frontier   uint64         `json:"frontier"`
	Shards     []WALShard     `json:"shards"`
	Checkpoint *WALCheckpoint `json:"checkpoint,omitempty"`
}

// TxnOwner identifies the connection (and, on multiplexed
// connections, the v3 stream) driving a transaction. It mirrors the
// server package's TxnOwner; obs keeps its own copy so the admin
// surface does not depend on the server.
type TxnOwner struct {
	// Conn is the connection's serial number (1-based accept order).
	Conn int64 `json:"conn"`
	// Addr is the connection's remote address.
	Addr string `json:"addr"`
	// Stream is the v3 stream ID; meaningful only when Tagged.
	Stream uint32 `json:"stream"`
	// Tagged reports whether the transaction arrived on a v3 stream.
	Tagged bool `json:"tagged"`
}

// SnapshotsOf extracts per-shard debug snapshots from any engine that
// supports them: a sharded engine yields one per shard, an unsharded
// System yields a single snapshot at shard 0.
func SnapshotsOf(eng core.Engine) ([]core.DebugSnapshot, bool) {
	switch e := eng.(type) {
	case core.ShardSnapshotter:
		return e.DebugSnapshots(), true
	case core.Snapshotter:
		return []core.DebugSnapshot{e.DebugSnapshot()}, true
	default:
		return nil, false
	}
}

// NewAdminMux builds the admin HTTP surface:
//
//	/metrics         Prometheus text (or expvar-style JSON with
//	                 ?format=json / Accept: application/json)
//	/debug/waitfor   live wait-for graph, JSON (default) or Graphviz
//	                 DOT (?format=dot); ?shard=k selects one shard,
//	                 default is all shards merged
//	/debug/txns      active transaction table with held/awaited locks
//	                 and current rollback cost, JSON or ?format=text
//	/debug/trace     transaction tracer dump (when a Tracer is wired);
//	                 ?enable=true / ?enable=false toggles recording
//	/debug/wal       per-shard log bytes/sequences and checkpoint
//	                 status, JSON (when a WAL source is wired)
//	/debug/pprof/*   the standard net/http/pprof handlers
//
// It panics if Registry is nil.
func NewAdminMux(o AdminOptions) *http.ServeMux {
	if o.Registry == nil {
		panic("obs: AdminOptions.Registry is required")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			_ = o.Registry.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/waitfor", func(w http.ResponseWriter, r *http.Request) {
		snaps, ok := selectSnapshots(w, r, o.Engine)
		if !ok {
			return
		}
		if r.URL.Query().Get("format") == "dot" {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			fmt.Fprint(w, WaitForDOT(snaps))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, waitforJSON(snaps))
	})
	mux.HandleFunc("/debug/txns", func(w http.ResponseWriter, r *http.Request) {
		snaps, ok := selectSnapshots(w, r, o.Engine)
		if !ok {
			return
		}
		var queued []KV
		if o.Queued != nil {
			queued = o.Queued()
		}
		var owners map[txn.ID]TxnOwner
		if o.Owners != nil {
			owners = o.Owners()
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, txnsText(snaps, queued, owners))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, txnsJSON(snaps, queued, owners))
	})
	if o.Tracer != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			if v := r.URL.Query().Get("enable"); v != "" {
				on, err := strconv.ParseBool(v)
				if err != nil {
					http.Error(w, "enable must be a boolean", http.StatusBadRequest)
					return
				}
				o.Tracer.SetEnabled(on)
			}
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_ = o.Tracer.WriteText(w)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = o.Tracer.WriteJSON(w)
		})
	}
	if o.WAL != nil {
		mux.HandleFunc("/debug/wal", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, o.WAL())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// selectSnapshots takes the engine snapshots and applies the ?shard=k
// filter; it writes the HTTP error itself when it returns !ok.
func selectSnapshots(w http.ResponseWriter, r *http.Request, eng core.Engine) ([]core.DebugSnapshot, bool) {
	snaps, ok := SnapshotsOf(eng)
	if !ok {
		http.Error(w, "engine does not support snapshots", http.StatusNotFound)
		return nil, false
	}
	if v := r.URL.Query().Get("shard"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 || k >= len(snaps) {
			http.Error(w, fmt.Sprintf("shard must be in [0, %d)", len(snaps)), http.StatusBadRequest)
			return nil, false
		}
		snaps = snaps[k : k+1]
	}
	return snaps, true
}

// WaitForDOT renders the wait-for arcs of the given snapshots as one
// Graphviz digraph, arcs drawn in the paper's holder -> waiter
// orientation (the holder blocks the waiter) and labeled with the
// contested entity. Each shard becomes a cluster when more than one
// snapshot is given.
func WaitForDOT(snaps []core.DebugSnapshot) string {
	var b strings.Builder
	b.WriteString("digraph waitfor {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	cluster := len(snaps) > 1
	for _, s := range snaps {
		indent := "  "
		if cluster {
			fmt.Fprintf(&b, "  subgraph cluster_shard%d {\n    label=\"shard %d\";\n", s.Shard, s.Shard)
			indent = "    "
		}
		for _, t := range s.Txns {
			if t.Status == core.StatusCommitted.String() {
				continue
			}
			shape := "ellipse"
			if t.WaitingOn != "" {
				shape = "box"
			}
			fmt.Fprintf(&b, "%s\"T%d\" [label=\"T%d %s\\nstate %d\", shape=%s];\n",
				indent, t.ID, t.ID, t.Program, t.StateIndex, shape)
		}
		for _, a := range s.Arcs {
			// Flip waiter->holder storage into the paper's holder->waiter
			// drawing.
			fmt.Fprintf(&b, "%s\"T%d\" -> \"T%d\" [label=%q];\n", indent, a.Holder, a.Waiter, a.Entity)
		}
		if cluster {
			b.WriteString("  }\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// waitforJSON shapes /debug/waitfor's JSON reply: per-shard snapshots
// plus a merged arc list.
func waitforJSON(snaps []core.DebugSnapshot) map[string]any {
	type shardView struct {
		Shard int            `json:"shard"`
		Arcs  []core.WaitArc `json:"arcs"`
	}
	views := make([]shardView, 0, len(snaps))
	var merged []core.WaitArc
	for _, s := range snaps {
		arcs := s.Arcs
		if arcs == nil {
			arcs = []core.WaitArc{}
		}
		views = append(views, shardView{Shard: s.Shard, Arcs: arcs})
		merged = append(merged, arcs...)
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		if a.Holder != b.Holder {
			return a.Holder < b.Holder
		}
		return a.Entity < b.Entity
	})
	if merged == nil {
		merged = []core.WaitArc{}
	}
	return map[string]any{"shards": views, "merged": merged}
}

// txnsJSON shapes /debug/txns's JSON reply.
func txnsJSON(snaps []core.DebugSnapshot, queued []KV, owners map[txn.ID]TxnOwner) map[string]any {
	type txnView struct {
		core.TxnSnapshot
		Shard int       `json:"shard"`
		Owner *TxnOwner `json:"owner,omitempty"`
	}
	txns := []txnView{}
	for _, s := range snaps {
		for _, t := range s.Txns {
			v := txnView{TxnSnapshot: t, Shard: s.Shard}
			if o, ok := owners[t.ID]; ok {
				o := o
				v.Owner = &o
			}
			txns = append(txns, v)
		}
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i].ID < txns[j].ID })
	out := map[string]any{"txns": txns}
	if queued != nil {
		q := map[string]int64{}
		for _, kv := range queued {
			q[kv.Name] = kv.Val
		}
		out["admissionQueue"] = q
	}
	return out
}

// txnsText renders the transaction table for humans.
func txnsText(snaps []core.DebugSnapshot, queued []KV, owners map[txn.ID]TxnOwner) string {
	var b strings.Builder
	for _, s := range snaps {
		fmt.Fprintf(&b, "shard %d: %d txn(s)\n", s.Shard, len(s.Txns))
		for _, t := range s.Txns {
			fmt.Fprintf(&b, "  T%-5d %-16s %-9s state=%d locks=%d restart-cost=%d",
				t.ID, t.Program, t.Status, t.StateIndex, t.LockIndex, t.RestartCost)
			if len(t.Held) > 0 {
				held := make([]string, len(t.Held))
				for i, h := range t.Held {
					held[i] = h.Entity + ":" + h.Mode
				}
				fmt.Fprintf(&b, " held=%s", strings.Join(held, ","))
			}
			if t.WaitingOn != "" {
				fmt.Fprintf(&b, " waiting-on=%s", t.WaitingOn)
			}
			if o, ok := owners[t.ID]; ok {
				fmt.Fprintf(&b, " conn=%d(%s)", o.Conn, o.Addr)
				if o.Tagged {
					fmt.Fprintf(&b, " stream=%d", o.Stream)
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, kv := range queued {
		fmt.Fprintf(&b, "queued %s = %d\n", kv.Name, kv.Val)
	}
	return b.String()
}
