package obs_test

import (
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/obs"
	"partialrollback/internal/runtime"
	"partialrollback/internal/sim"
)

// TestCollectorMatchesEngineStats drives a contended hotspot workload
// through the concurrent runtime with the collector chained onto the
// event stream and checks that the metrics agree with the engine's own
// Stats() — in particular that the rollback-depth histogram's count and
// sum equal the engine's rollback and ops-lost totals (the paper's cost
// metric, derived independently from the same events).
func TestCollectorMatchesEngineStats(t *testing.T) {
	for _, shards := range []int{1, 4} {
		w := sim.Generate(sim.GenConfig{
			Txns: 24, DBSize: 8, LocksPerTxn: 4,
			HotSet: 3, HotProb: 0.8, Seed: 7,
		})
		reg := obs.NewRegistry()
		c := obs.NewCollector(reg)
		out, err := runtime.Run(w.NewStore(), w.Programs, runtime.Options{
			Strategy: core.MCS,
			Policy:   deadlock.OrderedMinCost{},
			Shards:   shards,
			OnEvent:  c.OnEvent,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		st := out.Stats

		checks := []struct {
			name      string
			got, want int64
		}{
			{"grants", c.Grants.Value(), st.Grants},
			{"waits", c.Waits.Value(), st.Waits},
			{"commits", c.Commits.Value(), st.Commits},
			{"deadlocks", c.Deadlocks.Value(), st.Deadlocks},
			{"victims", c.Victims.Value(), st.Victims},
			{"rollbacks", c.Rollbacks.Value(), st.Rollbacks},
			{"restarts", c.Restarts.Value(), st.Restarts},
			{"ops lost", c.OpsLost.Value(), st.OpsLost},
			{"registers", c.Registers.Value(), int64(len(w.Programs))},
			// Acceptance: the histogram is the same totals, bucketed.
			{"rollback-depth count", c.RollbackDepth.Count(), st.Rollbacks},
			{"rollback-depth sum", c.RollbackDepth.Sum(), st.OpsLost},
		}
		for _, ck := range checks {
			if ck.got != ck.want {
				t.Errorf("shards=%d: collector %s = %d, engine says %d", shards, ck.name, ck.got, ck.want)
			}
		}
		if st.Rollbacks == 0 {
			t.Errorf("shards=%d: workload produced no rollbacks; increase contention", shards)
		}
		// Every wait interval was closed by a grant or rollback.
		if got, want := c.WaitDur.Count(), st.Waits; got != want {
			t.Errorf("shards=%d: wait durations = %d, waits = %d", shards, got, want)
		}
	}
}
