package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/client"
	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
	"partialrollback/internal/wire"
)

// muxClient returns a multiplexed client whose dials are served by srv
// over net.Pipe.
func muxClient(srv *Server, cfg client.MuxConfig) *client.Mux {
	cfg.Dial = func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Backoff.Base == 0 && cfg.Backoff.Cap == 0 && cfg.Backoff.Jitter == nil {
		cfg.Backoff = exec.Backoff{Base: 100 * time.Microsecond, Cap: 2 * time.Millisecond}
	}
	return client.NewMux(cfg)
}

// TestMuxE2EBanking runs many concurrent streams over a handful of
// shared sockets (run with -race): every transfer must commit, with
// zero protocol errors, every accepted stream accounted for, and a
// consistent store.
func TestMuxE2EBanking(t *testing.T) {
	const muxCount, streamsPer, perStream, accounts = 2, 16, 4, 6
	const total = muxCount * streamsPer * perStream
	w := sim.BankingWorkload(accounts, total, 100, 7)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.SDG,
		RequestTimeout: 15 * time.Second,
		Burst:          exec.BurstAdaptive, // the adaptive path under real concurrency
	})
	base := runtime.NumGoroutine()

	muxes := make([]*client.Mux, muxCount)
	for i := range muxes {
		muxes[i] = muxClient(srv, client.MuxConfig{MaxAttempts: 8})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, muxCount*streamsPer)
	for i := 0; i < muxCount*streamsPer; i++ {
		progs := w.Programs[i*perStream : (i+1)*perStream]
		m := muxes[i%muxCount]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range progs {
				if _, err := m.Run(context.Background(), p); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0", got)
	}
	if got := counter(t, srv, "commits"); got != total {
		t.Errorf("commits = %d, want %d", got, total)
	}
	// Every transaction traveled as a stream; retries open fresh ones.
	if got := counter(t, srv, "streams_total"); got < total {
		t.Errorf("streams_total = %d, want >= %d", got, total)
	}
	if got := counter(t, srv, "streams_active"); got != 0 {
		t.Errorf("streams_active = %d, want 0 after the run", got)
	}
	// The whole load rode muxCount sockets (plus nothing else).
	if got := counter(t, srv, "sessions_total"); got != muxCount {
		t.Errorf("sessions_total = %d, want %d", got, muxCount)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	for _, m := range muxes {
		m.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestMixedProtocolAllVersions runs v1 (per-operation), v2
// (whole-program) and v3 (stream-multiplexed) clients concurrently
// against one server (run with -race): the per-frame version byte is
// the whole negotiation, so all three populations must commit
// everything with zero protocol errors.
func TestMixedProtocolAllVersions(t *testing.T) {
	const workers, perWorker, accounts = 9, 8, 6
	w := sim.BankingWorkload(accounts, workers*perWorker, 100, 99)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.MCS,
		RequestTimeout: 15 * time.Second,
		Burst:          16,
	})
	base := runtime.NumGoroutine()

	mux := muxClient(srv, client.MuxConfig{MaxAttempts: 8})

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		progs := w.Programs[i*perWorker : (i+1)*perWorker]
		wg.Add(1)
		switch i % 3 {
		case 2: // v3: all these workers share the one mux
			go func() {
				defer wg.Done()
				for _, p := range progs {
					if _, err := mux.Run(context.Background(), p); err != nil {
						errCh <- err
						return
					}
				}
			}()
		default: // v1 and v2: a connection per worker, as before
			c := pipeClient(srv, client.Config{Seed: int64(i + 1), MaxAttempts: 8, Proto: 1 + i%3})
			go func() {
				defer wg.Done()
				defer c.Close()
				for _, p := range progs {
					if _, err := c.Run(context.Background(), p); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0", got)
	}
	if got := counter(t, srv, "commits"); got != workers*perWorker {
		t.Errorf("commits = %d, want %d", got, workers*perWorker)
	}
	// A third of the transactions rode v3 streams.
	if got := counter(t, srv, "streams_total"); got < workers/3*perWorker {
		t.Errorf("streams_total = %d, want >= %d", got, workers/3*perWorker)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	mux.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestMuxGracefulShutdownDrainsStreams parks several streams of one
// connection on an engine-held lock, starts a graceful Shutdown, then
// releases the lock: every stream must commit (not be cut off), and
// Shutdown must return nil.
func TestMuxGracefulShutdownDrainsStreams(t *testing.T) {
	const blocked = 4
	store := entity.NewUniformStore("e", 8, 100)
	srv := New(Config{Store: store})
	base := runtime.NumGoroutine()

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil { // holder takes e0
		t.Fatal(err)
	}

	m := muxClient(srv, client.MuxConfig{})
	resCh := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func() {
			_, err := m.RunOnce(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
			resCh <- err
		}()
	}
	waitFor(t, func() bool { return counter(t, srv, "streams_active") == blocked })
	waitFor(t, func() bool { return srv.System().Stats().Waits >= blocked })

	shutCh := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutCh <- srv.Shutdown(ctx) }()

	// The drain must not finish while streams are blocked.
	select {
	case err := <-shutCh:
		t.Fatalf("shutdown returned %v with %d streams in flight", err, blocked)
	case <-time.After(100 * time.Millisecond):
	}

	driveToCommit(t, srv, holder)
	for i := 0; i < blocked; i++ {
		if err := <-resCh; err != nil {
			t.Errorf("in-flight stream: %v", err)
		}
	}
	if err := <-shutCh; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if v := store.MustGet("e2"); v != 100+5*blocked {
		t.Errorf("e2 = %d, want %d (all in-flight transfers applied)", v, 100+5*blocked)
	}
	m.Close()
	waitGoroutines(t, base)
}

// TestMuxForcedShutdownTerminalReplies keeps the blocking lock held so
// the drain deadline expires: every accepted stream must still receive
// a terminal reply — the retryable CodeShutdown — never silence.
func TestMuxForcedShutdownTerminalReplies(t *testing.T) {
	const blocked = 4
	store := entity.NewUniformStore("e", 8, 100)
	srv := New(Config{Store: store})
	base := runtime.NumGoroutine()

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil {
		t.Fatal(err)
	}

	m := muxClient(srv, client.MuxConfig{})
	resCh := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func() {
			_, err := m.RunOnce(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
			resCh <- err
		}()
	}
	waitFor(t, func() bool { return counter(t, srv, "streams_active") == blocked })
	waitFor(t, func() bool { return srv.System().Stats().Waits >= blocked })

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want DeadlineExceeded (forced)", err)
	}

	for i := 0; i < blocked; i++ {
		err := <-resCh
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("in-flight stream err = %v, want ServerError", err)
		}
		if se.Code != wire.CodeShutdown || !errors.Is(err, client.ErrRolledBack) {
			t.Errorf("code = %s, want shutdown (retryable)", se.Code)
		}
	}
	// The store shows no trace of the rolled-back transfers.
	if v := store.MustGet("e2"); v != 100 {
		t.Errorf("e2 = %d, want 100", v)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	m.Close()
	waitGoroutines(t, base)
}

// TestMuxStreamLimitBusy caps MaxStreams and overflows it: the excess
// stream is refused with the retryable CodeBusy while the connection —
// and the streams already admitted — live on.
func TestMuxStreamLimitBusy(t *testing.T) {
	store := entity.NewUniformStore("e", 8, 100)
	srv := New(Config{Store: store, MaxStreams: 2})

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil {
		t.Fatal(err)
	}

	m := muxClient(srv, client.MuxConfig{})
	defer m.Close()
	resCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := m.RunOnce(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
			resCh <- err
		}()
	}
	waitFor(t, func() bool { return counter(t, srv, "streams_active") == 2 })

	// The connection is at its stream limit: the third stream is busy.
	_, err := m.RunOnce(sim.TransferProgram("extra", "e0", "e2", 5, 0))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBusy {
		t.Fatalf("overflow stream err = %v, want CodeBusy", err)
	}
	if !client.Retryable(err) {
		t.Error("stream-limit refusal must be retryable")
	}

	// Release the lock: the admitted streams commit, freeing capacity,
	// and the refused stream succeeds on retry.
	driveToCommit(t, srv, holder)
	for i := 0; i < 2; i++ {
		if err := <-resCh; err != nil {
			t.Fatalf("admitted stream: %v", err)
		}
	}
	if _, err := m.Run(context.Background(), sim.TransferProgram("retry", "e3", "e4", 5, 0)); err != nil {
		t.Fatalf("retry after busy: %v", err)
	}
	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0 (busy is load, not confusion)", got)
	}
	shutdownNow(t, srv)
}

// TestMuxDuplicateStreamDesync replays an already-active stream ID: the
// server must answer CodeBadRequest and close the connection (the two
// sides disagree about stream state), while the stream already in
// flight still receives its terminal reply before the socket dies.
func TestMuxDuplicateStreamDesync(t *testing.T) {
	store := entity.NewUniformStore("e", 8, 100)
	srv := New(Config{Store: store, RequestTimeout: 200 * time.Millisecond})

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil {
		t.Fatal(err)
	}

	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	cc.SetDeadline(time.Now().Add(10 * time.Second))

	bp, err := wire.ProgramFrame(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.EncodeTagged(7, bp)
	if err != nil {
		t.Fatal(err)
	}
	// Open stream 7 (it parks on e0), then open it again.
	if _, err := cc.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return counter(t, srv, "streams_active") == 1 })
	if _, err := cc.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Until EOF the connection must deliver: the duplicate's
	// CodeBadRequest, and the original stream's own terminal reply
	// (rolled back at the request deadline) — both tagged stream 7.
	var badRequests, terminals int
	for {
		f, _, err := wire.ReadFrame(cc)
		if err != nil {
			break // connection closed by the server
		}
		if !f.Tagged || f.Stream != 7 {
			t.Fatalf("reply %#v, want a frame tagged stream 7", f)
		}
		switch x := f.Msg.(type) {
		case wire.Error:
			if x.Code == wire.CodeBadRequest {
				badRequests++
			} else {
				terminals++
			}
		case wire.Committed:
			terminals++
		case wire.RolledBack:
			// notification, not terminal
		default:
			t.Fatalf("unexpected reply %#v", f.Msg)
		}
	}
	if badRequests != 1 {
		t.Errorf("CodeBadRequest replies = %d, want 1 (the duplicate)", badRequests)
	}
	if terminals != 1 {
		t.Errorf("terminal replies = %d, want 1 (the original stream)", terminals)
	}
	if got := counter(t, srv, "proto_errors"); got != 1 {
		t.Errorf("proto_errors = %d, want 1", got)
	}
	cc.Close()
	waitFor(t, func() bool { return counter(t, srv, "sessions_active") == 0 })
	driveToCommit(t, srv, holder)
	shutdownNow(t, srv)
}

// TestMuxRollbackNotifications forces a deadlock between two streams of
// one connection: the victim's partial-rollback notification must be
// routed to the stream that owns the transaction, and both streams must
// still commit.
func TestMuxRollbackNotifications(t *testing.T) {
	store := entity.NewUniformStore("e", 4, 100)
	srv := New(Config{Store: store, Strategy: core.SDG})

	m := muxClient(srv, client.MuxConfig{MaxAttempts: 8})
	defer m.Close()

	// Two transfers in opposite directions over the same pair collide
	// reliably under enough repetition.
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	var notes int64
	var mu sync.Mutex
	for i := 0; i < 2; i++ {
		from, to := "e0", "e1"
		if i == 1 {
			from, to = "e1", "e0"
		}
		prog := sim.TransferProgram("xfer", from, to, 1, 3)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				res, err := m.Run(context.Background(), prog)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				notes += int64(len(res.RolledBack))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := counter(t, srv, "commits"); got != 40 {
		t.Errorf("commits = %d, want 40", got)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	// Deadlocks between the two streams are probabilistic; only insist
	// the plumbing carried notifications when rollbacks happened.
	if rb := counter(t, srv, "rollbacks_partial") + counter(t, srv, "rollbacks_total"); rb > 0 {
		t.Logf("observed %d rollbacks, %d notifications routed to streams", rb, notes)
	}
	shutdownNow(t, srv)
}
