// Package server exposes a core.System over TCP: the network
// transaction service of the partial-rollback engine.
//
// Each connection is served by a connection object with exactly one
// reader and one writer goroutine. A client ships a whole transaction
// program (Begin, operations, Commit — see internal/wire), the server
// registers it and drives it to commit with the shared re-execution
// loop from internal/exec: when the engine picks the transaction as a
// deadlock victim it is partially rolled back and the loop
// transparently re-executes it from the rollback point, exactly as the
// in-process runtime does. Each §2 rollback is streamed to the client
// as a RolledBack notification; the final reply is Committed (with the
// transaction's outcome counters) or an Error frame.
//
// Protocols v1 (per-operation frames) and v2 (whole-program frames)
// run one transaction at a time per connection, handled inline by the
// reader exactly as previous releases did. Protocol v3 multiplexes: a
// tagged BeginProgram frame opens a stream, the reader dispatches it
// to a bounded per-connection worker pool, and thousands of streams
// execute concurrently over the one socket. Replies carry the stream
// tag back, and the writer coalesces frames across all streams into
// single writes. Every accepted stream is guaranteed a terminal reply
// (Committed or Error), shutdown included.
//
// The server bounds everything: concurrent sessions (with a bounded
// accept backlog beyond which connections are refused with CodeBusy),
// streams per connection (past MaxStreams new streams get the
// retryable CodeBusy), per-message read deadlines, and a
// per-transaction execution deadline after which the transaction is
// rolled back to its initial state and the client told to retry
// (CodeRolledBack). Shutdown drains in-flight transactions until the
// caller's context expires, then rolls back the rest, so the store is
// always left consistent and no goroutine outlives the server.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/durable"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Store is the global database served. Required.
	Store *entity.Store
	// Strategy, Policy, Prevention, HybridBudget and HybridAllocator
	// configure the engine exactly as core.Config does.
	Strategy        core.Strategy
	Policy          deadlock.Policy
	Prevention      core.Prevention
	HybridBudget    int
	HybridAllocator hybrid.Allocator
	// MaxSessions bounds concurrently served connections. Default 256.
	MaxSessions int
	// Backlog bounds connections allowed to wait for a session slot;
	// beyond it connections are refused with CodeBusy. Default 32.
	Backlog int
	// IdleTimeout is the per-message read deadline. Default 2m.
	IdleTimeout time.Duration
	// RequestTimeout bounds one transaction's execution, queueing
	// included; past it the transaction is rolled back to its initial
	// state and the client told to retry. Default 30s.
	RequestTimeout time.Duration
	// MaxStepsPerTxn bounds engine steps per transaction (0: 1M).
	MaxStepsPerTxn int
	// Burst is the maximum number of consecutive steps one transaction
	// runs per engine-lock acquisition (core.Engine.StepBurst); 0 or 1
	// is the classic one-step-per-acquisition loop. Larger bursts
	// amortize engine mutex handoffs across operations; conflicts still
	// resolve at operation granularity and the burst bound keeps
	// scheduling fair. Negative selects exec.BurstAdaptive: bursts up
	// to exec.AdaptiveMaxBurst while a transaction is uncontended,
	// collapsing to 1 the moment it blocks, is rolled back, or has
	// waiters on its locks.
	Burst int
	// MaxStreams bounds concurrently active v3 streams per connection;
	// past it new streams are refused with the retryable CodeBusy.
	// Default 4096.
	MaxStreams int
	// StreamWorkers bounds each connection's worker pool executing
	// tagged streams. Default: MaxStreams — a worker per active stream
	// at peak, so a blocked transaction never queues behind the lock
	// holder it is waiting for. Lower values bound per-connection
	// engine concurrency at the cost of such queueing (resolved by the
	// request timeout and client retry).
	StreamWorkers int
	// StarvationLimit forwards to core.Config.StarvationLimit.
	StarvationLimit int
	// Shards selects the engine: 0 or 1 serves a single core.System, a
	// larger value partitions the engine into that many shards
	// (internal/shard) so sessions touching disjoint entities execute
	// in parallel. The counter snapshot then carries per-shard
	// counters (shard<k>_grants, ...) for imbalance diagnostics.
	Shards int
	// Stripes forwards to core.Config.Stripes: > 1 stripes each engine's
	// lock table so uncontended operations of concurrent sessions run
	// under a shared engine lock (shared grants are a single CAS)
	// instead of serializing on the engine mutex. 0 or 1 keeps the
	// classic single-lock engine.
	Stripes int
	// LockWait forwards to core.Config.LockWait — wire it to
	// obs.Collector.ObserveLockWait to populate pr_engine_lock_wait_ns.
	LockWait func(ns int64)
	// Durable, when non-nil, is the write-ahead log set commits are
	// recorded to: the engine logs every install through it, and a
	// transaction is acknowledged as committed only after its write-set
	// is durable per the set's sync mode. The caller opens the set
	// (running recovery) and closes it after Shutdown; the set must
	// have been opened with (at least) Shards logs. Nil serves
	// memory-only with an unchanged commit path.
	Durable *durable.Set
	// OnEvent, when non-nil, additionally receives every engine event.
	OnEvent func(core.Event)
	// Logf, when non-nil, receives serving diagnostics.
	Logf func(format string, args ...any)
}

// Server is the network transaction service. Create with New, start
// with Listen (or serve individual connections with ServeConn), stop
// with Shutdown.
type Server struct {
	cfg Config
	sys core.Engine
	// sharded is non-nil when the engine is a shard.Engine; it exposes
	// the per-shard counter snapshots.
	sharded *shard.Engine
	notif   *exec.Notifier

	baseCtx context.Context
	cancel  context.CancelFunc
	drainCh chan struct{}

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	routes   map[txn.ID]sender
	draining bool

	sem     chan struct{}
	backlog chan struct{}
	wg      sync.WaitGroup

	sessionsTotal  atomic.Int64
	sessionsActive atomic.Int64
	streamsTotal   atomic.Int64
	streamsActive  atomic.Int64
	txnsServed     atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
	framesIn       atomic.Int64
	framesOut      atomic.Int64
	writerFlushes  atomic.Int64
	busyRejected   atomic.Int64
	protoErrors    atomic.Int64
	notifyDropped  atomic.Int64
}

// New creates a Server around a fresh engine. It panics if cfg.Store is
// nil (matching core.New).
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 32
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 4096
	}
	if cfg.StreamWorkers <= 0 {
		cfg.StreamWorkers = cfg.MaxStreams
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		notif:   exec.NewNotifier(),
		drainCh: make(chan struct{}),
		conns:   map[net.Conn]bool{},
		routes:  map[txn.ID]sender{},
		sem:     make(chan struct{}, cfg.MaxSessions),
		backlog: make(chan struct{}, cfg.Backlog),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	ecfg := core.Config{
		Store:           cfg.Store,
		Strategy:        cfg.Strategy,
		Policy:          cfg.Policy,
		Prevention:      cfg.Prevention,
		HybridBudget:    cfg.HybridBudget,
		HybridAllocator: cfg.HybridAllocator,
		StarvationLimit: cfg.StarvationLimit,
		OnEvent:         s.onEvent,
		Stripes:         cfg.Stripes,
		LockWait:        cfg.LockWait,
	}
	if cfg.Durable != nil {
		ecfg.CommitLog = cfg.Durable
	}
	if cfg.Shards > 1 {
		s.sharded = shard.New(cfg.Shards, ecfg)
		s.sys = s.sharded
	} else {
		s.sys = core.New(ecfg)
	}
	return s
}

// System exposes the underlying engine (inspection, embedding, tests).
func (s *Server) System() core.Engine { return s.sys }

// onEvent fans engine events out to the wake notifier, the owning
// connection's rollback-notification stream (tagged with the owning
// stream ID on multiplexed connections), and the configured tap.
func (s *Server) onEvent(e core.Event) {
	s.notif.OnEvent(e)
	if e.Kind == core.EventRollback {
		s.mu.Lock()
		sn, routed := s.routes[e.Txn]
		s.mu.Unlock()
		if routed {
			sn.trySend(wire.RolledBack{
				Txn:         int64(e.Txn),
				ToLockState: int64(e.ToLockState),
				FromState:   e.FromState,
				ToState:     e.ToState,
				Lost:        e.Lost,
			})
		}
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(e)
	}
}

// Listen binds addr and starts accepting connections.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			s.cfg.Logf("server: accept: %v", err)
			return
		}
		if s.isDraining() {
			conn.Close()
			continue
		}
		select {
		case s.sem <- struct{}{}:
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-s.sem }()
				s.runSession(conn)
			}()
		default:
			select {
			case s.backlog <- struct{}{}:
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					select {
					case s.sem <- struct{}{}:
						<-s.backlog
						defer func() { <-s.sem }()
						s.runSession(conn)
					case <-s.drainCh:
						<-s.backlog
						conn.Close()
					}
				}()
			default:
				s.busyRejected.Add(1)
				_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				_, _ = wire.WriteMsg(conn, wire.Error{Code: wire.CodeBusy, Msg: "session limit and backlog full"})
				conn.Close()
			}
		}
	}
}

// ServeConn serves a single connection in the calling goroutine,
// returning when the session ends. It blocks while the session limit is
// reached. Intended for tests (net.Pipe) and embedding.
func (s *Server) ServeConn(conn net.Conn) {
	s.wg.Add(1)
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-s.drainCh:
		conn.Close()
		return
	}
	defer func() { <-s.sem }()
	s.runSession(conn)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops accepting, lets in-flight transactions finish until
// ctx expires, then rolls back the rest and closes every connection. It
// returns once every session goroutine has exited; the returned error
// is ctx.Err() when the drain deadline forced rollbacks, nil otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if !already {
		close(s.drainCh)
	}
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	// Drain: poke blocked readers so idle sessions notice; sessions
	// mid-transaction keep executing.
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.pokeConns()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			goto force
		case <-ticker.C:
		}
	}

force:
	// Force: cancel the base context so every in-flight transaction's
	// StepToCommit returns and the session rolls it back. Sessions get
	// a short grace period to deliver that verdict before their
	// connections are closed outright.
	s.cancel()
	graceUntil := time.Now().Add(500 * time.Millisecond)
	for {
		s.pokeConns()
		if time.Now().After(graceUntil) {
			s.closeConns()
		}
		select {
		case <-done:
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (s *Server) pokeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// Counters returns the serving and engine counter snapshot reported to
// STATS requests, sorted by name.
func (s *Server) Counters() []wire.Counter {
	st := s.sys.Stats()
	out := []wire.Counter{
		{Name: "aborts", Val: st.Aborts},
		{Name: "bytes_in", Val: s.bytesIn.Load()},
		{Name: "bytes_out", Val: s.bytesOut.Load()},
		{Name: "busy_rejected", Val: s.busyRejected.Load()},
		{Name: "frames_in", Val: s.framesIn.Load()},
		{Name: "frames_out", Val: s.framesOut.Load()},
		{Name: "commits", Val: st.Commits},
		{Name: "deadlocks", Val: st.Deadlocks},
		{Name: "grants", Val: st.Grants},
		{Name: "notify_dropped", Val: s.notifyDropped.Load()},
		{Name: "ops_lost", Val: st.OpsLost},
		{Name: "proto_errors", Val: s.protoErrors.Load()},
		{Name: "rollbacks_partial", Val: st.Rollbacks - st.Restarts},
		{Name: "rollbacks_total", Val: st.Restarts},
		{Name: "sessions_active", Val: s.sessionsActive.Load()},
		{Name: "sessions_total", Val: s.sessionsTotal.Load()},
		{Name: "steps", Val: st.Steps},
		{Name: "streams_active", Val: s.streamsActive.Load()},
		{Name: "streams_total", Val: s.streamsTotal.Load()},
		{Name: "txns_served", Val: s.txnsServed.Load()},
		{Name: "waits", Val: st.Waits},
		{Name: "writer_flushes", Val: s.writerFlushes.Load()},
	}
	if s.cfg.Durable != nil {
		ws := s.cfg.Durable.Stats()
		out = append(out,
			wire.Counter{Name: "wal_appends", Val: ws.Appends},
			wire.Counter{Name: "wal_commits", Val: ws.Commits},
			wire.Counter{Name: "wal_flushes", Val: ws.Flushes},
			wire.Counter{Name: "wal_fsync_batches", Val: ws.Fsyncs},
			wire.Counter{Name: "wal_bytes", Val: ws.Bytes},
			wire.Counter{Name: "wal_max_group", Val: ws.MaxCommitsPerFlush},
		)
	}
	if s.cfg.Stripes > 1 {
		out = append(out, wire.Counter{Name: "stripes", Val: int64(s.cfg.Stripes)})
	}
	if s.cfg.Store.Paged() {
		ps := s.cfg.Store.PoolStats()
		out = append(out,
			wire.Counter{Name: "store_paged", Val: 1},
			wire.Counter{Name: "store_pool_pages", Val: ps.Frames},
			wire.Counter{Name: "store_hits", Val: ps.Hits},
			wire.Counter{Name: "store_misses", Val: ps.Misses},
			wire.Counter{Name: "store_evictions", Val: ps.Evictions},
			wire.Counter{Name: "store_flushes", Val: ps.Flushes},
			wire.Counter{Name: "store_pinned_pages", Val: ps.PinnedPages},
		)
	}
	if s.sharded != nil {
		out = append(out, wire.Counter{Name: "shards", Val: int64(s.sharded.Shards())})
		for k, sh := range s.sharded.ShardStats() {
			prefix := fmt.Sprintf("shard%d_", k)
			out = append(out,
				wire.Counter{Name: prefix + "grants", Val: sh.Grants},
				wire.Counter{Name: prefix + "waits", Val: sh.Waits},
				wire.Counter{Name: prefix + "deadlocks", Val: sh.Deadlocks},
				wire.Counter{Name: prefix + "rollbacks", Val: sh.Rollbacks},
				wire.Counter{Name: prefix + "aborts", Val: sh.Aborts},
			)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TxnOwner identifies the connection (and, on multiplexed
// connections, the v3 stream) currently driving a transaction.
type TxnOwner struct {
	// Conn is the connection's serial number (1-based accept order).
	Conn int64
	// Addr is the connection's remote address.
	Addr string
	// Stream is the v3 stream ID; meaningful only when Tagged.
	Stream uint32
	// Tagged reports whether the transaction arrived on a v3 stream.
	Tagged bool
}

// Owners snapshots, for every transaction currently being driven by a
// connection, which connection and stream owns it — the admin
// /debug/txns annotation for finding stuck streams.
func (s *Server) Owners() map[txn.ID]TxnOwner {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[txn.ID]TxnOwner, len(s.routes))
	for id, sn := range s.routes {
		out[id] = TxnOwner{Conn: sn.c.id, Addr: sn.c.addr, Stream: sn.stream, Tagged: sn.tagged}
	}
	return out
}

// conn serves one connection: one reader goroutine (the connection's
// main loop), one writer goroutine coalescing replies across every
// stream, and — once the peer opens v3 tagged streams — a lazily grown,
// bounded pool of worker goroutines each driving one stream's
// transaction at a time.
type conn struct {
	srv *Server
	nc  net.Conn
	// id is the connection's serial number (1-based accept order).
	id int64
	// addr is the remote address, captured at accept time.
	addr string
	// br buffers the connection's read side. Clients flush a whole
	// transaction's message sequence in one write, so buffering turns
	// the ~2 read syscalls per message into ~2 per transaction; all
	// reads must go through br (buffered bytes are invisible to nc).
	br *bufio.Reader

	outMu     sync.Mutex
	out       chan outFrame
	outClosed bool

	// tasks feeds accepted streams to the workers; only the reader
	// sends and closes, so no send can race the close. Its capacity
	// only bounds the reader's headroom over the pool — active streams
	// are bounded by MaxStreams, not by this.
	tasks chan streamTask
	// muxWG counts live workers; runConn waits for it before closing
	// the writer so every accepted stream can deliver its terminal
	// reply.
	muxWG sync.WaitGroup

	// streamMu guards the stream table and worker count.
	streamMu sync.Mutex
	streams  map[uint32]bool
	workers  int
}

// outFrame is one queued reply: a message addressed to a stream
// (tagged, v3) or to the connection itself (untagged, v1/v2).
type outFrame struct {
	stream uint32
	tagged bool
	m      wire.Msg
}

// streamTask is one accepted stream awaiting a worker.
type streamTask struct {
	sn sender
	bp wire.BeginProgram
}

// sender addresses replies: the untagged v1/v2 reply path (zero
// stream, tagged=false) or one v3 stream of a multiplexed connection.
// It is the value stored in Server.routes so rollback notifications
// reach the right stream.
type sender struct {
	c      *conn
	stream uint32
	tagged bool
}

// send enqueues a reply, blocking until the writer drains it. The
// writer never stops consuming before the channel closes, so this
// cannot deadlock.
func (sn sender) send(m wire.Msg) { sn.c.send(outFrame{sn.stream, sn.tagged, m}) }

// trySend enqueues a message without blocking (notifications are
// droppable; the engine mutex may be held by the caller).
func (sn sender) trySend(m wire.Msg) { sn.c.trySend(outFrame{sn.stream, sn.tagged, m}) }

func (c *conn) trySend(f outFrame) {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.outClosed {
		return
	}
	select {
	case c.out <- f:
	default:
		c.srv.notifyDropped.Add(1)
	}
}

func (c *conn) send(f outFrame) {
	c.outMu.Lock()
	if c.outClosed {
		c.outMu.Unlock()
		return
	}
	c.outMu.Unlock()
	c.out <- f
}

func (c *conn) closeOut() {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if !c.outClosed {
		c.outClosed = true
		close(c.out)
	}
}

// streamTaskBuf is the tasks-channel capacity: the reader's headroom
// over the worker pool before dispatching applies backpressure.
const streamTaskBuf = 256

func (s *Server) runSession(nc net.Conn) {
	connID := s.sessionsTotal.Add(1)
	s.sessionsActive.Add(1)
	defer s.sessionsActive.Add(-1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[nc] = true
	s.mu.Unlock()

	c := &conn{
		srv:     s,
		nc:      nc,
		id:      connID,
		addr:    nc.RemoteAddr().String(),
		br:      bufio.NewReader(nc),
		out:     make(chan outFrame, 128),
		tasks:   make(chan streamTask, streamTaskBuf),
		streams: map[uint32]bool{},
	}
	un := sender{c: c} // the untagged v1/v2 reply path

	// Writer: the single goroutine that touches the connection's write
	// side. It coalesces across streams: every frame already queued
	// behind the one just received — terminal replies and notifications
	// of any stream, in any order — is encoded into the same buffer and
	// the batch goes out in one nc.Write, so a burst of replies costs
	// one write syscall instead of one each. On write failure it keeps
	// draining so senders never block.
	const writerSoftCap = 64 << 10 // flush once a batch passes 64 KiB
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		failed := false
		var buf []byte
		encode := func(f outFrame) {
			if failed {
				return
			}
			var nb []byte
			var err error
			if f.tagged {
				nb, err = wire.AppendTagged(buf, f.stream, f.m)
			} else {
				nb, err = wire.AppendMsg(buf, f.m)
			}
			if err != nil {
				s.cfg.Logf("server: encode %s: %v", f.m.Type(), err)
				return
			}
			buf = nb
			s.framesOut.Add(1)
		}
		for f := range c.out {
			encode(f)
		drain:
			for len(buf) < writerSoftCap {
				select {
				case queued, ok := <-c.out:
					if !ok {
						break drain
					}
					encode(queued)
				default:
					break drain
				}
			}
			if failed || len(buf) == 0 {
				buf = buf[:0]
				continue
			}
			// Count before the write: a pipe write unblocks the peer,
			// who may immediately request a counter snapshot.
			s.bytesOut.Add(int64(len(buf)))
			s.writerFlushes.Add(1)
			_ = nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if _, err := nc.Write(buf); err != nil {
				failed = true
			}
			buf = buf[:0]
		}
	}()

	defer func() {
		// Reader is done: no new streams. Let the workers finish every
		// accepted stream (each delivers a terminal reply) before the
		// writer is told no more frames are coming; only then close the
		// socket.
		close(c.tasks)
		c.muxWG.Wait()
		c.closeOut()
		<-writerDone
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()

	for {
		if s.isDraining() {
			return
		}
		_ = nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, n, err := wire.ReadFrame(c.br)
		s.bytesIn.Add(int64(n))
		if err != nil {
			// Idle sessions (between transactions) are closed without
			// ceremony — notably when the shutdown drain pokes their
			// read deadline; a notice nobody is reading for would only
			// stall the drain on the write.
			if errors.Is(err, wire.ErrProtocol) {
				s.protoErrors.Add(1)
				un.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			}
			return
		}
		s.framesIn.Add(1)
		if f.Tagged {
			if closeConn := s.handleTagged(c, f); closeConn {
				return
			}
			continue
		}
		switch x := f.Msg.(type) {
		case wire.Stats:
			un.send(wire.StatsReply{Counters: s.Counters()})
		case wire.Begin:
			if closeConn := s.handleTxn(c, x); closeConn {
				return
			}
		case wire.BeginProgram:
			if closeConn := s.handleProgram(un, x); closeConn {
				return
			}
		default:
			s.protoErrors.Add(1)
			un.send(wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected %s outside transaction", f.Msg.Type())})
			return
		}
	}
}

// handleTagged routes one v3 frame: Stats is answered inline on its
// stream, BeginProgram opens a stream and is dispatched to the worker
// pool. It reports whether the connection must be closed.
func (s *Server) handleTagged(c *conn, f wire.Frame) (closeConn bool) {
	sn := sender{c: c, stream: f.Stream, tagged: true}
	switch x := f.Msg.(type) {
	case wire.Stats:
		sn.send(wire.StatsReply{Counters: s.Counters()})
		return false
	case wire.BeginProgram:
		return s.dispatchStream(c, sn, x)
	default:
		// Taggable but server-bound only (Committed, RolledBack, ...):
		// the peer is confused; desync.
		s.protoErrors.Add(1)
		sn.send(wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected %s on stream %d", f.Msg.Type(), f.Stream)})
		return true
	}
}

// dispatchStream admits one stream against the per-connection limits
// and hands it to the worker pool, growing the pool if it is below its
// bound. A duplicate active stream ID means the two sides disagree
// about stream state — a desync, so the connection is closed. Hitting
// MaxStreams is load, not confusion: the stream is refused with the
// retryable CodeBusy and the connection lives on.
func (s *Server) dispatchStream(c *conn, sn sender, bp wire.BeginProgram) (closeConn bool) {
	c.streamMu.Lock()
	if c.streams[sn.stream] {
		c.streamMu.Unlock()
		s.protoErrors.Add(1)
		sn.send(wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("stream %d already active", sn.stream)})
		return true
	}
	if len(c.streams) >= s.cfg.MaxStreams {
		c.streamMu.Unlock()
		sn.send(wire.Error{Code: wire.CodeBusy, Msg: "per-connection stream limit reached"})
		return false
	}
	c.streams[sn.stream] = true
	spawn := c.workers < s.cfg.StreamWorkers
	if spawn {
		c.workers++
	}
	c.streamMu.Unlock()
	s.streamsTotal.Add(1)
	s.streamsActive.Add(1)
	if spawn {
		c.muxWG.Add(1)
		go c.worker()
	}
	c.tasks <- streamTask{sn: sn, bp: bp}
	return false
}

func (c *conn) worker() {
	defer c.muxWG.Done()
	for t := range c.tasks {
		c.srv.serveStream(t.sn, t.bp)
	}
}

// serveStream drives one stream's transaction to its terminal reply.
// Unlike the single-transaction paths, a stream-level failure ends only
// the stream: thousands of healthy streams may share the connection,
// so the conn is never closed from here.
func (s *Server) serveStream(sn sender, bp wire.BeginProgram) {
	defer func() {
		sn.c.streamMu.Lock()
		delete(sn.c.streams, sn.stream)
		sn.c.streamMu.Unlock()
		s.streamsActive.Add(-1)
	}()
	if s.isDraining() {
		sn.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
		return
	}
	prog, err := bp.Program()
	if err != nil {
		sn.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return
	}
	s.execTxn(sn, prog)
}

// handleTxn consumes the rest of one v1 transaction's message sequence
// (one frame per operation), executes it, and replies. It runs in the
// reader goroutine (the stateful v1 sequence owns the connection until
// its Commit frame). It reports whether the connection must be closed
// (protocol desync or shutdown).
func (s *Server) handleTxn(c *conn, begin wire.Begin) (closeConn bool) {
	un := sender{c: c}
	asm := wire.NewAssembler(begin)
	for {
		_ = c.nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		m, n, err := wire.ReadMsg(c.br)
		s.bytesIn.Add(int64(n))
		if err != nil {
			if errors.Is(err, wire.ErrProtocol) {
				s.protoErrors.Add(1)
				un.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			} else if s.isDraining() {
				un.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
			} else {
				un.send(wire.Error{Code: wire.CodeBadRequest, Msg: "connection error mid-transaction"})
			}
			return true
		}
		s.framesIn.Add(1)
		done, err := asm.Feed(m)
		if err != nil {
			s.protoErrors.Add(1)
			un.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			return true
		}
		if done {
			break
		}
	}
	if s.isDraining() {
		un.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
		return true
	}
	prog, err := asm.Program()
	if err != nil {
		// The message stream was well-formed; only the program was
		// invalid. The session may submit further transactions.
		un.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	return s.execTxn(un, prog)
}

// handleProgram executes a v2 whole-program frame — the single-frame
// equivalent of handleTxn with nothing left to read off the wire.
func (s *Server) handleProgram(sn sender, bp wire.BeginProgram) (closeConn bool) {
	if s.isDraining() {
		sn.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
		return true
	}
	prog, err := bp.Program()
	if err != nil {
		// The frame was well-formed; only the program was invalid. The
		// session may submit further transactions.
		sn.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	return s.execTxn(sn, prog)
}

// execTxn registers prog, drives it to commit with the shared
// re-execution loop, and sends the verdict to sn. Shared by the v1
// per-message, v2 whole-frame, and v3 stream paths.
func (s *Server) execTxn(sn sender, prog *txn.Program) (closeConn bool) {
	id, err := s.sys.Register(prog)
	if err != nil {
		sn.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	s.txnsServed.Add(1)
	wake := s.notif.Register(id)
	s.mu.Lock()
	s.routes[id] = sn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.routes, id)
		s.mu.Unlock()
		s.notif.Unregister(id)
	}()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	err = exec.StepToCommitBurst(ctx, s.sys, id, wake, s.cfg.MaxStepsPerTxn, s.cfg.Burst)
	cancel()
	switch {
	case err == nil:
		sn.send(s.committedReply(id))
		return false
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return s.abortAndReply(sn, id)
	default:
		s.cfg.Logf("server: txn %v: %v", id, err)
		if aerr := s.sys.Abort(id); aerr != nil && !errors.Is(aerr, core.ErrCommitted) {
			if errors.Is(aerr, core.ErrShrinking) {
				_ = s.drainShrinking(id)
			} else {
				s.cfg.Logf("server: abort %v: %v", id, aerr)
			}
		}
		sn.send(wire.Error{Code: wire.CodeInternal, Msg: err.Error()})
		return true
	}
}

// abortAndReply rolls a deadline- or shutdown-interrupted transaction
// back. Races with completion are benign: a transaction that committed
// first is reported as committed; one already in its shrinking phase
// can never block again and is stepped to commit synchronously.
func (s *Server) abortAndReply(sn sender, id txn.ID) (closeConn bool) {
	err := s.sys.Abort(id)
	switch {
	case err == nil:
		code, msg := wire.CodeRolledBack, "request deadline exceeded; transaction rolled back"
		if s.isDraining() {
			code, msg = wire.CodeShutdown, "server shutting down; transaction rolled back"
		}
		sn.send(wire.Error{Code: code, Msg: msg})
		return s.isDraining()
	case errors.Is(err, core.ErrCommitted):
		// The commit raced the deadline, so the interrupted exec loop
		// never waited on the commit's durability ticket. Don't
		// acknowledge until the log catches up.
		if s.cfg.Durable != nil {
			if derr := s.cfg.Durable.Barrier(); derr != nil {
				s.cfg.Logf("server: txn %v: commit not durable: %v", id, derr)
				sn.send(wire.Error{Code: wire.CodeInternal, Msg: derr.Error()})
				return true
			}
		}
		sn.send(s.committedReply(id))
		return false
	case errors.Is(err, core.ErrShrinking):
		if derr := s.drainShrinking(id); derr != nil {
			s.cfg.Logf("server: drain %v: %v", id, derr)
			sn.send(wire.Error{Code: wire.CodeInternal, Msg: derr.Error()})
			return true
		}
		sn.send(s.committedReply(id))
		return false
	default:
		sn.send(wire.Error{Code: wire.CodeInternal, Msg: err.Error()})
		return true
	}
}

// drainShrinking steps a transaction that has entered its shrinking
// phase to commit. No remaining operation can block (no lock requests
// follow an unlock), so this terminates within the program's length.
func (s *Server) drainShrinking(id txn.ID) error {
	for i := 0; i < wire.MaxOps+2; i++ {
		res, err := s.sys.Step(id)
		if err != nil {
			return err
		}
		if res.Outcome == core.Committed || res.Outcome == core.AlreadyCommitted {
			if res.Durable != nil {
				return res.Durable.Wait()
			}
			if res.Outcome == core.AlreadyCommitted && s.cfg.Durable != nil {
				// Someone else drove the commit step; its ticket is not
				// ours to wait on, so take the conservative barrier.
				return s.cfg.Durable.Barrier()
			}
			return nil
		}
	}
	return fmt.Errorf("server: %v did not commit while draining", id)
}

// committedReply snapshots a committed transaction's outcome and
// retires its engine state.
func (s *Server) committedReply(id txn.ID) wire.Committed {
	st := s.sys.TxnStatsOf(id)
	locals, _ := s.sys.Locals(id)
	decls := make([]wire.LocalDecl, 0, len(locals))
	for name, v := range locals {
		decls = append(decls, wire.LocalDecl{Name: name, Val: v})
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Name < decls[j].Name })
	_ = s.sys.Forget(id)
	return wire.Committed{
		Txn:    int64(id),
		Locals: decls,
		Stats: wire.TxnOutcome{
			OpsExecuted: st.OpsExecuted,
			OpsLost:     st.OpsLost,
			Rollbacks:   st.Rollbacks,
			Restarts:    st.Restarts,
			Waits:       st.Waits,
		},
	}
}
