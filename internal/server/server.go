// Package server exposes a core.System over TCP: the network
// transaction service of the partial-rollback engine.
//
// One session goroutine serves each connection. A client ships a whole
// transaction program (Begin, operations, Commit — see internal/wire),
// the session registers it and drives it to commit with the shared
// re-execution loop from internal/exec: when the engine picks the
// transaction as a deadlock victim it is partially rolled back and the
// loop transparently re-executes it from the rollback point, exactly as
// the in-process runtime does. Each §2 rollback is streamed to the
// client as a RolledBack notification; the final reply is Committed
// (with the transaction's outcome counters) or an Error frame.
//
// The server bounds everything: concurrent sessions (with a bounded
// accept backlog beyond which connections are refused with CodeBusy),
// per-message read deadlines, and a per-transaction execution deadline
// after which the transaction is rolled back to its initial state and
// the client told to retry (CodeRolledBack). Shutdown drains in-flight
// transactions until the caller's context expires, then rolls back the
// rest, so the store is always left consistent and no goroutine
// outlives the server.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/durable"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Store is the global database served. Required.
	Store *entity.Store
	// Strategy, Policy, Prevention, HybridBudget and HybridAllocator
	// configure the engine exactly as core.Config does.
	Strategy        core.Strategy
	Policy          deadlock.Policy
	Prevention      core.Prevention
	HybridBudget    int
	HybridAllocator hybrid.Allocator
	// MaxSessions bounds concurrently served connections. Default 256.
	MaxSessions int
	// Backlog bounds connections allowed to wait for a session slot;
	// beyond it connections are refused with CodeBusy. Default 32.
	Backlog int
	// IdleTimeout is the per-message read deadline. Default 2m.
	IdleTimeout time.Duration
	// RequestTimeout bounds one transaction's execution, queueing
	// included; past it the transaction is rolled back to its initial
	// state and the client told to retry. Default 30s.
	RequestTimeout time.Duration
	// MaxStepsPerTxn bounds engine steps per transaction (0: 1M).
	MaxStepsPerTxn int
	// Burst is the maximum number of consecutive steps one transaction
	// runs per engine-lock acquisition (core.Engine.StepBurst); 0 or 1
	// is the classic one-step-per-acquisition loop. Larger bursts
	// amortize engine mutex handoffs across operations; conflicts still
	// resolve at operation granularity and the burst bound keeps
	// scheduling fair.
	Burst int
	// StarvationLimit forwards to core.Config.StarvationLimit.
	StarvationLimit int
	// Shards selects the engine: 0 or 1 serves a single core.System, a
	// larger value partitions the engine into that many shards
	// (internal/shard) so sessions touching disjoint entities execute
	// in parallel. The counter snapshot then carries per-shard
	// counters (shard<k>_grants, ...) for imbalance diagnostics.
	Shards int
	// Durable, when non-nil, is the write-ahead log set commits are
	// recorded to: the engine logs every install through it, and a
	// transaction is acknowledged as committed only after its write-set
	// is durable per the set's sync mode. The caller opens the set
	// (running recovery) and closes it after Shutdown; the set must
	// have been opened with (at least) Shards logs. Nil serves
	// memory-only with an unchanged commit path.
	Durable *durable.Set
	// OnEvent, when non-nil, additionally receives every engine event.
	OnEvent func(core.Event)
	// Logf, when non-nil, receives serving diagnostics.
	Logf func(format string, args ...any)
}

// Server is the network transaction service. Create with New, start
// with Listen (or serve individual connections with ServeConn), stop
// with Shutdown.
type Server struct {
	cfg   Config
	sys   core.Engine
	// sharded is non-nil when the engine is a shard.Engine; it exposes
	// the per-shard counter snapshots.
	sharded *shard.Engine
	notif   *exec.Notifier

	baseCtx context.Context
	cancel  context.CancelFunc
	drainCh chan struct{}

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	routes   map[txn.ID]*session
	draining bool

	sem     chan struct{}
	backlog chan struct{}
	wg      sync.WaitGroup

	sessionsTotal  atomic.Int64
	sessionsActive atomic.Int64
	txnsServed     atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64
	framesIn       atomic.Int64
	framesOut      atomic.Int64
	writerFlushes  atomic.Int64
	busyRejected   atomic.Int64
	protoErrors    atomic.Int64
	notifyDropped  atomic.Int64
}

// New creates a Server around a fresh engine. It panics if cfg.Store is
// nil (matching core.New).
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 32
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		notif:   exec.NewNotifier(),
		drainCh: make(chan struct{}),
		conns:   map[net.Conn]bool{},
		routes:  map[txn.ID]*session{},
		sem:     make(chan struct{}, cfg.MaxSessions),
		backlog: make(chan struct{}, cfg.Backlog),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	ecfg := core.Config{
		Store:           cfg.Store,
		Strategy:        cfg.Strategy,
		Policy:          cfg.Policy,
		Prevention:      cfg.Prevention,
		HybridBudget:    cfg.HybridBudget,
		HybridAllocator: cfg.HybridAllocator,
		StarvationLimit: cfg.StarvationLimit,
		OnEvent:         s.onEvent,
	}
	if cfg.Durable != nil {
		ecfg.CommitLog = cfg.Durable
	}
	if cfg.Shards > 1 {
		s.sharded = shard.New(cfg.Shards, ecfg)
		s.sys = s.sharded
	} else {
		s.sys = core.New(ecfg)
	}
	return s
}

// System exposes the underlying engine (inspection, embedding, tests).
func (s *Server) System() core.Engine { return s.sys }

// onEvent fans engine events out to the wake notifier, the owning
// session's rollback-notification stream, and the configured tap.
func (s *Server) onEvent(e core.Event) {
	s.notif.OnEvent(e)
	if e.Kind == core.EventRollback {
		s.mu.Lock()
		sess := s.routes[e.Txn]
		s.mu.Unlock()
		if sess != nil {
			sess.trySend(wire.RolledBack{
				Txn:         int64(e.Txn),
				ToLockState: int64(e.ToLockState),
				FromState:   e.FromState,
				ToState:     e.ToState,
				Lost:        e.Lost,
			})
		}
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(e)
	}
}

// Listen binds addr and starts accepting connections.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			s.cfg.Logf("server: accept: %v", err)
			return
		}
		if s.isDraining() {
			conn.Close()
			continue
		}
		select {
		case s.sem <- struct{}{}:
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-s.sem }()
				s.runSession(conn)
			}()
		default:
			select {
			case s.backlog <- struct{}{}:
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					select {
					case s.sem <- struct{}{}:
						<-s.backlog
						defer func() { <-s.sem }()
						s.runSession(conn)
					case <-s.drainCh:
						<-s.backlog
						conn.Close()
					}
				}()
			default:
				s.busyRejected.Add(1)
				_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				_, _ = wire.WriteMsg(conn, wire.Error{Code: wire.CodeBusy, Msg: "session limit and backlog full"})
				conn.Close()
			}
		}
	}
}

// ServeConn serves a single connection in the calling goroutine,
// returning when the session ends. It blocks while the session limit is
// reached. Intended for tests (net.Pipe) and embedding.
func (s *Server) ServeConn(conn net.Conn) {
	s.wg.Add(1)
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-s.drainCh:
		conn.Close()
		return
	}
	defer func() { <-s.sem }()
	s.runSession(conn)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops accepting, lets in-flight transactions finish until
// ctx expires, then rolls back the rest and closes every connection. It
// returns once every session goroutine has exited; the returned error
// is ctx.Err() when the drain deadline forced rollbacks, nil otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if !already {
		close(s.drainCh)
	}
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	// Drain: poke blocked readers so idle sessions notice; sessions
	// mid-transaction keep executing.
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.pokeConns()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			goto force
		case <-ticker.C:
		}
	}

force:
	// Force: cancel the base context so every in-flight transaction's
	// StepToCommit returns and the session rolls it back. Sessions get
	// a short grace period to deliver that verdict before their
	// connections are closed outright.
	s.cancel()
	graceUntil := time.Now().Add(500 * time.Millisecond)
	for {
		s.pokeConns()
		if time.Now().After(graceUntil) {
			s.closeConns()
		}
		select {
		case <-done:
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (s *Server) pokeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// Counters returns the serving and engine counter snapshot reported to
// STATS requests, sorted by name.
func (s *Server) Counters() []wire.Counter {
	st := s.sys.Stats()
	out := []wire.Counter{
		{Name: "aborts", Val: st.Aborts},
		{Name: "bytes_in", Val: s.bytesIn.Load()},
		{Name: "bytes_out", Val: s.bytesOut.Load()},
		{Name: "busy_rejected", Val: s.busyRejected.Load()},
		{Name: "frames_in", Val: s.framesIn.Load()},
		{Name: "frames_out", Val: s.framesOut.Load()},
		{Name: "commits", Val: st.Commits},
		{Name: "deadlocks", Val: st.Deadlocks},
		{Name: "grants", Val: st.Grants},
		{Name: "notify_dropped", Val: s.notifyDropped.Load()},
		{Name: "ops_lost", Val: st.OpsLost},
		{Name: "proto_errors", Val: s.protoErrors.Load()},
		{Name: "rollbacks_partial", Val: st.Rollbacks - st.Restarts},
		{Name: "rollbacks_total", Val: st.Restarts},
		{Name: "sessions_active", Val: s.sessionsActive.Load()},
		{Name: "sessions_total", Val: s.sessionsTotal.Load()},
		{Name: "steps", Val: st.Steps},
		{Name: "txns_served", Val: s.txnsServed.Load()},
		{Name: "waits", Val: st.Waits},
		{Name: "writer_flushes", Val: s.writerFlushes.Load()},
	}
	if s.cfg.Durable != nil {
		ws := s.cfg.Durable.Stats()
		out = append(out,
			wire.Counter{Name: "wal_appends", Val: ws.Appends},
			wire.Counter{Name: "wal_commits", Val: ws.Commits},
			wire.Counter{Name: "wal_flushes", Val: ws.Flushes},
			wire.Counter{Name: "wal_fsync_batches", Val: ws.Fsyncs},
			wire.Counter{Name: "wal_bytes", Val: ws.Bytes},
			wire.Counter{Name: "wal_max_group", Val: ws.MaxCommitsPerFlush},
		)
	}
	if s.sharded != nil {
		out = append(out, wire.Counter{Name: "shards", Val: int64(s.sharded.Shards())})
		for k, sh := range s.sharded.ShardStats() {
			prefix := fmt.Sprintf("shard%d_", k)
			out = append(out,
				wire.Counter{Name: prefix + "grants", Val: sh.Grants},
				wire.Counter{Name: prefix + "waits", Val: sh.Waits},
				wire.Counter{Name: prefix + "deadlocks", Val: sh.Deadlocks},
				wire.Counter{Name: prefix + "rollbacks", Val: sh.Rollbacks},
				wire.Counter{Name: prefix + "aborts", Val: sh.Aborts},
			)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// session serves one connection.
type session struct {
	srv  *Server
	conn net.Conn
	// br buffers the connection's read side. Clients flush a whole
	// transaction's message sequence in one write, so buffering turns
	// the ~2 read syscalls per message into ~2 per transaction; all
	// reads must go through br (buffered bytes are invisible to conn).
	br *bufio.Reader

	outMu     sync.Mutex
	out       chan wire.Msg
	outClosed bool
}

// trySend enqueues a message without blocking (notifications are
// droppable; the engine mutex may be held by the caller).
func (ss *session) trySend(m wire.Msg) {
	ss.outMu.Lock()
	defer ss.outMu.Unlock()
	if ss.outClosed {
		return
	}
	select {
	case ss.out <- m:
	default:
		ss.srv.notifyDropped.Add(1)
	}
}

// send enqueues a reply, blocking until the writer drains it. The
// writer never stops consuming before the channel closes, so this
// cannot deadlock.
func (ss *session) send(m wire.Msg) {
	ss.outMu.Lock()
	if ss.outClosed {
		ss.outMu.Unlock()
		return
	}
	ss.outMu.Unlock()
	ss.out <- m
}

func (ss *session) closeOut() {
	ss.outMu.Lock()
	defer ss.outMu.Unlock()
	if !ss.outClosed {
		ss.outClosed = true
		close(ss.out)
	}
}

func (s *Server) runSession(conn net.Conn) {
	s.sessionsTotal.Add(1)
	s.sessionsActive.Add(1)
	defer s.sessionsActive.Add(-1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()

	ss := &session{srv: s, conn: conn, br: bufio.NewReader(conn), out: make(chan wire.Msg, 128)}

	// Writer: the single goroutine that touches the connection's write
	// side. It coalesces: every frame already queued behind the one just
	// received is encoded into the same buffer and the batch goes out in
	// one conn.Write, so a burst of notifications plus the final reply
	// costs one write syscall instead of one each. On write failure it
	// keeps draining so senders never block.
	const writerSoftCap = 64 << 10 // flush once a batch passes 64 KiB
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		failed := false
		var buf []byte
		encode := func(m wire.Msg) {
			if failed {
				return
			}
			nb, err := wire.AppendMsg(buf, m)
			if err != nil {
				s.cfg.Logf("server: encode %s: %v", m.Type(), err)
				return
			}
			buf = nb
			s.framesOut.Add(1)
		}
		for m := range ss.out {
			encode(m)
		drain:
			for len(buf) < writerSoftCap {
				select {
				case queued, ok := <-ss.out:
					if !ok {
						break drain
					}
					encode(queued)
				default:
					break drain
				}
			}
			if failed || len(buf) == 0 {
				buf = buf[:0]
				continue
			}
			// Count before the write: a pipe write unblocks the peer,
			// who may immediately request a counter snapshot.
			s.bytesOut.Add(int64(len(buf)))
			s.writerFlushes.Add(1)
			_ = conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if _, err := conn.Write(buf); err != nil {
				failed = true
			}
			buf = buf[:0]
		}
	}()

	defer func() {
		ss.closeOut()
		<-writerDone
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		if s.isDraining() {
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		m, n, err := wire.ReadMsg(ss.br)
		s.bytesIn.Add(int64(n))
		if err != nil {
			// Idle sessions (between transactions) are closed without
			// ceremony — notably when the shutdown drain pokes their
			// read deadline; a notice nobody is reading for would only
			// stall the drain on the write.
			if errors.Is(err, wire.ErrProtocol) {
				s.protoErrors.Add(1)
				ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			}
			return
		}
		s.framesIn.Add(1)
		switch x := m.(type) {
		case wire.Stats:
			ss.send(wire.StatsReply{Counters: s.Counters()})
		case wire.Begin:
			if closeConn := s.handleTxn(ss, x); closeConn {
				return
			}
		case wire.BeginProgram:
			if closeConn := s.handleProgram(ss, x); closeConn {
				return
			}
		default:
			s.protoErrors.Add(1)
			ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected %s outside transaction", m.Type())})
			return
		}
	}
}

// handleTxn consumes the rest of one v1 transaction's message sequence
// (one frame per operation), executes it, and replies. It reports
// whether the connection must be closed (protocol desync or shutdown).
func (s *Server) handleTxn(ss *session, begin wire.Begin) (closeConn bool) {
	asm := wire.NewAssembler(begin)
	for {
		_ = ss.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		m, n, err := wire.ReadMsg(ss.br)
		s.bytesIn.Add(int64(n))
		if err != nil {
			if errors.Is(err, wire.ErrProtocol) {
				s.protoErrors.Add(1)
				ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			} else if s.isDraining() {
				ss.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
			} else {
				ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: "connection error mid-transaction"})
			}
			return true
		}
		s.framesIn.Add(1)
		done, err := asm.Feed(m)
		if err != nil {
			s.protoErrors.Add(1)
			ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
			return true
		}
		if done {
			break
		}
	}
	if s.isDraining() {
		ss.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
		return true
	}
	prog, err := asm.Program()
	if err != nil {
		// The message stream was well-formed; only the program was
		// invalid. The session may submit further transactions.
		ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	return s.execTxn(ss, prog)
}

// handleProgram executes a v2 whole-program frame — the single-frame
// equivalent of handleTxn with nothing left to read off the wire.
func (s *Server) handleProgram(ss *session, bp wire.BeginProgram) (closeConn bool) {
	if s.isDraining() {
		ss.send(wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"})
		return true
	}
	prog, err := bp.Program()
	if err != nil {
		// The frame was well-formed; only the program was invalid. The
		// session may submit further transactions.
		ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	return s.execTxn(ss, prog)
}

// execTxn registers prog, drives it to commit with the shared
// re-execution loop, and sends the verdict. Shared by the v1 per-message
// and v2 whole-frame paths.
func (s *Server) execTxn(ss *session, prog *txn.Program) (closeConn bool) {
	id, err := s.sys.Register(prog)
	if err != nil {
		ss.send(wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
		return false
	}
	s.txnsServed.Add(1)
	wake := s.notif.Register(id)
	s.mu.Lock()
	s.routes[id] = ss
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.routes, id)
		s.mu.Unlock()
		s.notif.Unregister(id)
	}()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	err = exec.StepToCommitBurst(ctx, s.sys, id, wake, s.cfg.MaxStepsPerTxn, s.cfg.Burst)
	cancel()
	switch {
	case err == nil:
		ss.send(s.committedReply(id))
		return false
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return s.abortAndReply(ss, id)
	default:
		s.cfg.Logf("server: txn %v: %v", id, err)
		if aerr := s.sys.Abort(id); aerr != nil && !errors.Is(aerr, core.ErrCommitted) {
			if errors.Is(aerr, core.ErrShrinking) {
				_ = s.drainShrinking(id)
			} else {
				s.cfg.Logf("server: abort %v: %v", id, aerr)
			}
		}
		ss.send(wire.Error{Code: wire.CodeInternal, Msg: err.Error()})
		return true
	}
}

// abortAndReply rolls a deadline- or shutdown-interrupted transaction
// back. Races with completion are benign: a transaction that committed
// first is reported as committed; one already in its shrinking phase
// can never block again and is stepped to commit synchronously.
func (s *Server) abortAndReply(ss *session, id txn.ID) (closeConn bool) {
	err := s.sys.Abort(id)
	switch {
	case err == nil:
		code, msg := wire.CodeRolledBack, "request deadline exceeded; transaction rolled back"
		if s.isDraining() {
			code, msg = wire.CodeShutdown, "server shutting down; transaction rolled back"
		}
		ss.send(wire.Error{Code: code, Msg: msg})
		return s.isDraining()
	case errors.Is(err, core.ErrCommitted):
		// The commit raced the deadline, so the interrupted exec loop
		// never waited on the commit's durability ticket. Don't
		// acknowledge until the log catches up.
		if s.cfg.Durable != nil {
			if derr := s.cfg.Durable.Barrier(); derr != nil {
				s.cfg.Logf("server: txn %v: commit not durable: %v", id, derr)
				ss.send(wire.Error{Code: wire.CodeInternal, Msg: derr.Error()})
				return true
			}
		}
		ss.send(s.committedReply(id))
		return false
	case errors.Is(err, core.ErrShrinking):
		if derr := s.drainShrinking(id); derr != nil {
			s.cfg.Logf("server: drain %v: %v", id, derr)
			ss.send(wire.Error{Code: wire.CodeInternal, Msg: derr.Error()})
			return true
		}
		ss.send(s.committedReply(id))
		return false
	default:
		ss.send(wire.Error{Code: wire.CodeInternal, Msg: err.Error()})
		return true
	}
}

// drainShrinking steps a transaction that has entered its shrinking
// phase to commit. No remaining operation can block (no lock requests
// follow an unlock), so this terminates within the program's length.
func (s *Server) drainShrinking(id txn.ID) error {
	for i := 0; i < wire.MaxOps+2; i++ {
		res, err := s.sys.Step(id)
		if err != nil {
			return err
		}
		if res.Outcome == core.Committed || res.Outcome == core.AlreadyCommitted {
			if res.Durable != nil {
				return res.Durable.Wait()
			}
			if res.Outcome == core.AlreadyCommitted && s.cfg.Durable != nil {
				// Someone else drove the commit step; its ticket is not
				// ours to wait on, so take the conservative barrier.
				return s.cfg.Durable.Barrier()
			}
			return nil
		}
	}
	return fmt.Errorf("server: %v did not commit while draining", id)
}

// committedReply snapshots a committed transaction's outcome and
// retires its engine state.
func (s *Server) committedReply(id txn.ID) wire.Committed {
	st := s.sys.TxnStatsOf(id)
	locals, _ := s.sys.Locals(id)
	decls := make([]wire.LocalDecl, 0, len(locals))
	for name, v := range locals {
		decls = append(decls, wire.LocalDecl{Name: name, Val: v})
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Name < decls[j].Name })
	_ = s.sys.Forget(id)
	return wire.Committed{
		Txn:    int64(id),
		Locals: decls,
		Stats: wire.TxnOutcome{
			OpsExecuted: st.OpsExecuted,
			OpsLost:     st.OpsLost,
			Rollbacks:   st.Rollbacks,
			Restarts:    st.Restarts,
			Waits:       st.Waits,
		},
	}
}
