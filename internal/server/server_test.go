package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/client"
	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

// pipeClient returns a client whose dials are served by srv over
// net.Pipe — a full end-to-end path with no sockets.
func pipeClient(srv *Server, cfg client.Config) *client.Client {
	cfg.Dial = func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Backoff.Base == 0 && cfg.Backoff.Cap == 0 && cfg.Backoff.Jitter == nil {
		cfg.Backoff = exec.Backoff{Base: 100 * time.Microsecond, Cap: 2 * time.Millisecond}
	}
	return client.New(cfg)
}

// mustRegister registers prog on the server's engine (which exposes the
// core.Engine surface, without core.System's MustRegister helper).
func mustRegister(t *testing.T, srv *Server, prog *txn.Program) txn.ID {
	t.Helper()
	id, err := srv.System().Register(prog)
	if err != nil {
		t.Fatalf("register %s: %v", prog.Name, err)
	}
	return id
}

func counter(t *testing.T, srv *Server, name string) int64 {
	t.Helper()
	for _, c := range srv.Counters() {
		if c.Name == name {
			return c.Val
		}
	}
	t.Fatalf("no counter %q", name)
	return 0
}

// waitGoroutines polls until the goroutine count returns to at most
// base (new runs of the GC or test framework may add their own, so a
// small slack is allowed before failing).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipeE2EBanking runs 8 concurrent clients of banking transfers
// through the full wire/server/client path (run with -race). Every
// transfer must commit, with zero protocol errors and a consistent
// store.
func TestPipeE2EBanking(t *testing.T) {
	const clients, perClient, accounts = 8, 12, 6
	w := sim.BankingWorkload(accounts, clients*perClient, 100, 42)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.SDG,
		RequestTimeout: 15 * time.Second,
	})
	base := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		progs := w.Programs[i*perClient : (i+1)*perClient]
		c := pipeClient(srv, client.Config{Seed: int64(i + 1), MaxAttempts: 8})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for _, p := range progs {
				if _, err := c.Run(context.Background(), p); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0", got)
	}
	if got := counter(t, srv, "commits"); got != clients*perClient {
		t.Errorf("commits = %d, want %d", got, clients*perClient)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestMixedProtocolClients runs v1 (per-operation frames) and v2
// (whole-program frames) clients concurrently against one server with
// burst stepping enabled (run with -race): the per-frame version byte
// is the whole negotiation, so both populations must commit everything
// with zero protocol errors, and the v2 population must show up in the
// inbound frame counter as roughly one frame per transaction.
func TestMixedProtocolClients(t *testing.T) {
	const clients, perClient, accounts = 8, 10, 6
	w := sim.BankingWorkload(accounts, clients*perClient, 100, 77)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.MCS,
		RequestTimeout: 15 * time.Second,
		Burst:          16,
	})
	base := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		progs := w.Programs[i*perClient : (i+1)*perClient]
		proto := 1 + i%2 // alternate v1 / v2 clients
		c := pipeClient(srv, client.Config{Seed: int64(i + 1), MaxAttempts: 8, Proto: proto})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for _, p := range progs {
				if _, err := c.Run(context.Background(), p); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0", got)
	}
	if got := counter(t, srv, "commits"); got != clients*perClient {
		t.Errorf("commits = %d, want %d", got, clients*perClient)
	}
	// Half the transactions arrived as single v2 frames, half as v1
	// sequences of ops+2 frames each; the blended frames/txn average
	// must sit strictly between the two pure rates.
	framesIn := counter(t, srv, "frames_in")
	served := counter(t, srv, "txns_served")
	if served != clients*perClient {
		t.Errorf("txns_served = %d, want %d", served, clients*perClient)
	}
	perTxn := float64(framesIn) / float64(served)
	if perTxn <= 1.0 || perTxn >= 10 {
		t.Errorf("frames_in/txn = %.2f, want a v1/v2 blend in (1, 10)", perTxn)
	}
	if got := counter(t, srv, "writer_flushes"); got <= 0 {
		t.Errorf("writer_flushes = %d, want > 0", got)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestGracefulShutdownDrainsInFlight blocks a client transaction on a
// lock held directly through the engine, starts Shutdown, then releases
// the lock: the in-flight transaction must commit, Shutdown must return
// nil, and no goroutine may outlive the server.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	store := entity.NewUniformStore("e", 4, 100)
	srv := New(Config{Store: store})
	base := runtime.NumGoroutine()

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil { // holder takes e0
		t.Fatal(err)
	}

	c := pipeClient(srv, client.Config{Seed: 1})
	defer c.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := c.RunOnce(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
		resCh <- err
	}()

	// Wait until the client transaction is registered and parked.
	waitFor(t, func() bool { return srv.System().Stats().Waits > 0 })

	shutCh := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutCh <- srv.Shutdown(ctx) }()

	// The drain must not finish while the transaction is blocked.
	select {
	case err := <-shutCh:
		t.Fatalf("shutdown returned %v with a transaction in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the lock: the in-flight transaction commits, the drain
	// completes.
	driveToCommit(t, srv, holder)
	if err := <-resCh; err != nil {
		t.Fatalf("in-flight transaction: %v", err)
	}
	if err := <-shutCh; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if v := store.MustGet("e2"); v != 105 {
		t.Errorf("e2 = %d, want 105 (in-flight transfer applied)", v)
	}
	waitGoroutines(t, base)
}

// TestForcedShutdownRollsBackInFlight keeps the blocking lock held so
// the drain deadline expires: the in-flight transaction must be rolled
// back to its initial state, the client told CodeShutdown, and the
// store left untouched by it.
func TestForcedShutdownRollsBackInFlight(t *testing.T) {
	store := entity.NewUniformStore("e", 4, 100)
	srv := New(Config{Store: store})
	base := runtime.NumGoroutine()

	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil {
		t.Fatal(err)
	}

	c := pipeClient(srv, client.Config{Seed: 1})
	defer c.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := c.RunOnce(sim.TransferProgram("inflight", "e0", "e2", 5, 0))
		resCh <- err
	}()
	waitFor(t, func() bool { return srv.System().Stats().Waits > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want DeadlineExceeded (forced)", err)
	}

	err = <-resCh
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("in-flight err = %v, want ServerError", err)
	}
	if se.Code != wire.CodeShutdown || !errors.Is(err, client.ErrRolledBack) {
		t.Errorf("code = %s, want shutdown (retryable)", se.Code)
	}
	if got := srv.System().Stats().Aborts; got != 1 {
		t.Errorf("aborts = %d, want 1", got)
	}
	// Only the untouched holder remains; the store shows no trace of
	// the aborted transfer.
	if v := store.MustGet("e2"); v != 100 {
		t.Errorf("e2 = %d, want 100", v)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	waitGoroutines(t, base)
}

// TestRequestDeadlineExpiry submits a transaction that blocks past the
// server's RequestTimeout: the server rolls it back and tells the
// client to retry; after the lock is released the retry commits.
func TestRequestDeadlineExpiry(t *testing.T) {
	store := entity.NewUniformStore("e", 4, 100)
	srv := New(Config{Store: store, RequestTimeout: 100 * time.Millisecond})
	holder := mustRegister(t, srv, sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := srv.System().Step(holder); err != nil {
		t.Fatal(err)
	}

	c := pipeClient(srv, client.Config{Seed: 1})
	defer c.Close()
	prog := sim.TransferProgram("deadline", "e0", "e2", 5, 0)
	_, err := c.RunOnce(prog)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeRolledBack {
		t.Fatalf("err = %v, want CodeRolledBack", err)
	}
	if !errors.Is(err, client.ErrRolledBack) {
		t.Error("deadline refusal must match ErrRolledBack")
	}

	// Release the lock; the same connection retries and commits.
	driveToCommit(t, srv, holder)
	res, err := c.RunOnce(prog)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if res.Outcome.OpsExecuted == 0 {
		t.Error("committed transaction reports no executed operations")
	}
	if v := store.MustGet("e2"); v != 105 {
		t.Errorf("e2 = %d, want 105", v)
	}
	shutdownNow(t, srv)
}

// TestMalformedFrames sends garbage and truncated frames: the session
// must answer CodeBadRequest (when a reply is possible), close the
// connection, and count a protocol error — without disturbing the
// engine.
func TestMalformedFrames(t *testing.T) {
	store := entity.NewUniformStore("e", 4, 100)
	srv := New(Config{Store: store})

	t.Run("garbage", func(t *testing.T) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		// Valid length prefix, bad version.
		cc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := cc.Write([]byte{0, 0, 0, 2, 99, 99}); err != nil {
			t.Fatal(err)
		}
		m, _, err := wire.ReadMsg(cc)
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		e, ok := m.(wire.Error)
		if !ok || e.Code != wire.CodeBadRequest {
			t.Fatalf("reply %+v, want CodeBadRequest", m)
		}
		// The server must close the connection after a protocol error.
		if _, _, err := wire.ReadMsg(cc); err == nil {
			t.Error("connection still open after protocol error")
		}
		cc.Close()
	})

	t.Run("truncated mid-transaction", func(t *testing.T) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		cc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := wire.WriteMsg(cc, wire.Begin{Name: "t", Locals: []wire.LocalDecl{{Name: "x"}}}); err != nil {
			t.Fatal(err)
		}
		cc.Close() // connection dies mid-upload
	})

	t.Run("op outside transaction", func(t *testing.T) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		cc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := wire.WriteMsg(cc, wire.Lock{Entity: "e0", Exclusive: true}); err != nil {
			t.Fatal(err)
		}
		m, _, err := wire.ReadMsg(cc)
		if err != nil {
			t.Fatal(err)
		}
		if e, ok := m.(wire.Error); !ok || e.Code != wire.CodeBadRequest {
			t.Fatalf("reply %+v, want CodeBadRequest", m)
		}
		cc.Close()
	})

	waitFor(t, func() bool { return counter(t, srv, "sessions_active") == 0 })
	if got := counter(t, srv, "proto_errors"); got < 2 {
		t.Errorf("proto_errors = %d, want >= 2", got)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	shutdownNow(t, srv)
}

// TestBadProgramKeepsSession verifies that a well-framed but invalid
// program (unknown entity) yields CodeBadRequest while the session
// stays usable.
func TestBadProgramKeepsSession(t *testing.T) {
	store := entity.NewUniformStore("e", 2, 0)
	srv := New(Config{Store: store})
	c := pipeClient(srv, client.Config{Seed: 1})
	defer c.Close()

	_, err := c.RunOnce(sim.TransferProgram("bad", "nosuch", "e0", 1, 0))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want CodeBadRequest", err)
	}
	// Same connection, valid program: must commit.
	if _, err := c.RunOnce(sim.TransferProgram("good", "e0", "e1", 1, 0)); err != nil {
		t.Fatalf("after bad program: %v", err)
	}
	shutdownNow(t, srv)
}

// TestStatsOverWire asks for the counter snapshot after a commit.
func TestStatsOverWire(t *testing.T) {
	store := entity.NewUniformStore("e", 2, 0)
	srv := New(Config{Store: store})
	c := pipeClient(srv, client.Config{Seed: 1})
	defer c.Close()
	if _, err := c.RunOnce(sim.TransferProgram("t", "e0", "e1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	counters, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, cn := range counters {
		byName[cn.Name] = cn.Val
	}
	if byName["commits"] != 1 || byName["txns_served"] != 1 || byName["sessions_total"] != 1 {
		t.Errorf("counters = %v", byName)
	}
	if byName["bytes_in"] == 0 || byName["bytes_out"] == 0 {
		t.Errorf("byte counters not advancing: %v", byName)
	}
	shutdownNow(t, srv)
}

// TestListenBusyReject fills the session limit and backlog over real
// TCP and verifies the next connection is refused with CodeBusy.
func TestListenBusyReject(t *testing.T) {
	store := entity.NewUniformStore("e", 2, 0)
	srv := New(Config{Store: store, MaxSessions: 1, Backlog: 1})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		return conn
	}

	// Occupy the one session slot (round-trip proves it is serving).
	c1 := dial()
	defer c1.Close()
	if _, err := wire.WriteMsg(c1, wire.Stats{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadMsg(c1); err != nil {
		t.Fatal(err)
	}
	// Fill the backlog.
	c2 := dial()
	defer c2.Close()
	waitFor(t, func() bool { return len(srv.backlog) == 1 })

	// The next connection must be refused.
	c3 := dial()
	defer c3.Close()
	m, _, err := wire.ReadMsg(c3)
	if err != nil {
		t.Fatalf("read busy reply: %v", err)
	}
	if e, ok := m.(wire.Error); !ok || e.Code != wire.CodeBusy {
		t.Fatalf("reply %+v, want CodeBusy", m)
	}
	if got := counter(t, srv, "busy_rejected"); got != 1 {
		t.Errorf("busy_rejected = %d, want 1", got)
	}
	shutdownNow(t, srv)
}

// TestSessionLimitOverTCP drives several clients through a real
// listener with a small session limit; backlogged connections are
// served as slots free.
func TestSessionLimitOverTCP(t *testing.T) {
	store := entity.NewUniformStore("e", 8, 100)
	srv := New(Config{Store: store, MaxSessions: 2, Backlog: 8, Strategy: core.MCS})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for i := 0; i < 6; i++ {
		c := client.New(client.Config{Addr: addr, Seed: int64(i + 1), RequestTimeout: 10 * time.Second,
			Backoff: exec.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond}})
		from, to := i%8, (i+3)%8
		prog := sim.TransferProgram("t", entName(from), entName(to), 1, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			if _, err := c.Run(context.Background(), prog); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := counter(t, srv, "commits"); got != 6 {
		t.Errorf("commits = %d, want 6", got)
	}
	shutdownNow(t, srv)
}

func entName(i int) string { return "e" + string(rune('0'+i)) }

// driveToCommit steps a directly-registered transaction to commit.
func driveToCommit(t *testing.T, srv *Server, id txn.ID) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		res, err := srv.System().Step(id)
		if err != nil {
			t.Fatalf("step %v: %v", id, err)
		}
		if res.Outcome == core.Committed || res.Outcome == core.AlreadyCommitted {
			return
		}
	}
	t.Fatalf("%v did not commit in 1000 steps", id)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdownNow(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestPipeE2EBankingSharded is TestPipeE2EBanking over a 4-shard
// engine: every transfer commits with zero protocol errors and a
// consistent store, and the counter snapshot carries the per-shard
// split (summing to the global grant count).
func TestPipeE2EBankingSharded(t *testing.T) {
	const clients, perClient, accounts = 8, 12, 6
	w := sim.BankingWorkload(accounts, clients*perClient, 100, 42)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.SDG,
		RequestTimeout: 15 * time.Second,
		Shards:         4,
	})
	base := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		progs := w.Programs[i*perClient : (i+1)*perClient]
		c := pipeClient(srv, client.Config{Seed: int64(i + 1), MaxAttempts: 8})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for _, p := range progs {
				if _, err := c.Run(context.Background(), p); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "proto_errors"); got != 0 {
		t.Errorf("proto_errors = %d, want 0", got)
	}
	if got := counter(t, srv, "commits"); got != clients*perClient {
		t.Errorf("commits = %d, want %d", got, clients*perClient)
	}
	if got := counter(t, srv, "shards"); got != 4 {
		t.Errorf("shards counter = %d, want 4", got)
	}
	var shardGrants int64
	for k := 0; k < 4; k++ {
		shardGrants += counter(t, srv, fmt.Sprintf("shard%d_grants", k))
	}
	if global := counter(t, srv, "grants"); shardGrants != global {
		t.Errorf("per-shard grants sum %d != global grants %d", shardGrants, global)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	if err := srv.System().CheckInvariants(); err != nil {
		t.Error(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base)
}

// TestCountersConcurrentWithSessions hammers Counters() and wire Stats
// requests while transaction sessions run, so -race can see any unsynced
// access to the serving-layer counters or the engine stats they fold in.
func TestCountersConcurrentWithSessions(t *testing.T) {
	const clients, perClient = 4, 8
	w := sim.BankingWorkload(4, clients*perClient, 100, 7)
	store := w.NewStore()
	srv := New(Config{
		Store:          store,
		Strategy:       core.MCS,
		RequestTimeout: 15 * time.Second,
		Shards:         2,
	})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	// In-process scraper: Server.Counters directly.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, c := range srv.Counters() {
				if c.Name == "" {
					t.Error("counter with empty name")
					return
				}
			}
		}
	}()
	// Wire scraper: Stats requests over their own session.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		c := pipeClient(srv, client.Config{Seed: 99})
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Stats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		progs := w.Programs[i*perClient : (i+1)*perClient]
		c := pipeClient(srv, client.Config{Seed: int64(i + 1), MaxAttempts: 8})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for _, p := range progs {
				if _, err := c.Run(context.Background(), p); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := counter(t, srv, "commits"); got != clients*perClient {
		t.Errorf("commits = %d, want %d", got, clients*perClient)
	}
	if err := store.CheckConsistent(); err != nil {
		t.Error(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
