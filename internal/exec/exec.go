// Package exec holds the shared transaction-execution machinery used
// by every driver of a core.System: the re-execute-after-rollback step
// loop (extracted from internal/runtime so the in-process runtime and
// the network server run one implementation) and the jittered
// exponential backoff used by network clients to re-run transactions
// the server rolled back — the same §2 re-execution semantics, applied
// one level up.
package exec

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
)

// Notifier routes engine events to per-transaction wake channels so a
// goroutine parked on a blocked transaction resumes when the engine
// grants its lock or rolls it back (either way it is runnable again).
// Pass OnEvent to core.Config.OnEvent (or call it from a composite
// event handler). All methods are safe for concurrent use and OnEvent
// never blocks, so it is safe to invoke under the engine mutex.
type Notifier struct {
	mu   sync.Mutex
	wake map[txn.ID]chan struct{}
}

// NewNotifier returns an empty Notifier.
func NewNotifier() *Notifier {
	return &Notifier{wake: map[txn.ID]chan struct{}{}}
}

// Register creates (or returns) the wake channel for id.
func (n *Notifier) Register(id txn.ID) chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.wake[id]
	if !ok {
		ch = make(chan struct{}, 1)
		n.wake[id] = ch
	}
	return ch
}

// Unregister drops id's wake channel.
func (n *Notifier) Unregister(id txn.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.wake, id)
}

// Wake kicks id's wake channel, if registered (non-blocking).
func (n *Notifier) Wake(id txn.ID) {
	n.mu.Lock()
	ch := n.wake[id]
	n.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// OnEvent forwards grant/rollback/abort/admit events as wakeups (admit:
// a sharded engine placed a queued registration, making it runnable).
func (n *Notifier) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EventGrant, core.EventRollback, core.EventAbort, core.EventAdmit:
		n.Wake(e.Txn)
	}
}

// ctxCheckInterval bounds how many uninterrupted steps StepToCommit
// executes between context checks.
const ctxCheckInterval = 256

// BurstAdaptive, passed as the burst argument of StepToCommitBurst,
// selects contention-adaptive burst sizing instead of a fixed size: an
// unblocked transaction with no waiters runs bursts up to
// AdaptiveMaxBurst, and the size collapses to 1 the moment the
// transaction blocks, is rolled back, or other transactions are found
// waiting on its locks (probed via core.Engine.Waiters every
// adaptiveProbeInterval attempted steps), then doubles back up on each
// full burst of uncontended progress. Burst=1 semantics are exactly the
// classic loop, so conflicts still resolve at operation granularity.
const BurstAdaptive = -1

// AdaptiveMaxBurst is the burst ceiling in adaptive mode — the size an
// uncontended transaction converges to.
const AdaptiveMaxBurst = 64

// adaptiveProbeInterval is how many attempted steps may pass between
// Waiters probes in adaptive mode. Probing costs one engine-mutex
// acquisition, so it is throttled rather than per-burst.
const adaptiveProbeInterval = 64

// StepToCommit drives one transaction to commit: it steps the
// transaction while it progresses and parks on wake while it waits.
// When the engine rolls the transaction back (deadlock victim, wound,
// starvation escalation), its program counter has been reset and the
// loop simply keeps stepping — re-executing from the rollback point.
// That loop is the paper's re-execution semantics and is shared by
// internal/runtime (in-process) and internal/server (per network
// session).
//
// It returns nil once the transaction commits, ctx.Err() if the
// context ends first (the transaction is left registered; callers
// abort or drain it), and an engine error otherwise. maxSteps <= 0
// means 1,000,000.
func StepToCommit(ctx context.Context, sys core.Engine, id txn.ID, wake <-chan struct{}, maxSteps int) error {
	return StepToCommitBurst(ctx, sys, id, wake, maxSteps, 1)
}

// StepToCommitBurst is StepToCommit with a burst knob: each engine
// acquisition runs up to burst consecutive steps (core.Engine.StepBurst)
// instead of one, cutting mutex handoffs per transaction by up to the
// burst factor. Conflicts still resolve at operation granularity — a
// step that must wait ends the burst — and the scheduler still yields
// between bursts, so concurrent transactions interleave at burst
// boundaries. burst <= 1 is byte-identical to the classic
// one-step-per-acquisition loop (pinned by a regression test).
//
// maxSteps bounds attempted engine operations (waiting polls count one
// so a livelocked transaction cannot spin forever against a zero
// budget); burst is clamped so one burst never overruns the remaining
// budget. burst < 0 (BurstAdaptive) sizes bursts adaptively from the
// transaction's observed contention — see BurstAdaptive.
func StepToCommitBurst(ctx context.Context, sys core.Engine, id txn.ID, wake <-chan struct{}, maxSteps, burst int) error {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	adaptive := burst < 0
	if adaptive {
		burst = AdaptiveMaxBurst
	}
	if burst < 1 {
		burst = 1
	}
	nextCheck, nextProbe := 0, 0
	for steps := 0; steps < maxSteps; {
		if steps >= nextCheck {
			if err := ctx.Err(); err != nil {
				return err
			}
			nextCheck = steps + ctxCheckInterval
		}
		if adaptive && steps >= nextProbe {
			// Holding the engine for a long burst while others wait on
			// our locks stretches their wait; collapse to
			// operation-granular stepping until the waiters clear.
			if sys.Waiters(id) > 0 {
				burst = 1
			}
			nextProbe = steps + adaptiveProbeInterval
		}
		b := burst
		if rem := maxSteps - steps; b > rem {
			b = rem
		}
		res, n, err := sys.StepBurst(id, b)
		if n < 1 {
			n = 1 // polls of a waiting transaction still consume budget
		}
		steps += n
		if err != nil {
			return fmt.Errorf("exec: %v: %w", id, err)
		}
		switch res.Outcome {
		case core.Committed, core.AlreadyCommitted:
			// With a durability layer configured the commit is not
			// acknowledgeable until its log batch is fsynced; the wait
			// happens here, outside the engine mutex, so the engine keeps
			// committing other transactions into the same batch.
			if res.Durable != nil {
				if err := res.Durable.Wait(); err != nil {
					return fmt.Errorf("exec: %v: commit not durable: %w", id, err)
				}
			}
			return nil
		case core.Progressed, core.SelfRolledBack:
			if adaptive {
				if res.Outcome == core.SelfRolledBack {
					burst = 1 // we just lost work to contention
				} else if n >= b && burst < AdaptiveMaxBurst {
					burst *= 2 // a full uncontended burst: grow back
					if burst > AdaptiveMaxBurst {
						burst = AdaptiveMaxBurst
					}
				}
			}
			// Yield between bursts so concurrent transactions interleave
			// — the paper's model of interleaved atomic operations.
			// Without this a driver on GOMAXPROCS=1 runs every
			// transaction to commit in one go and no two ever contend
			// for a lock.
			runtime.Gosched()
			continue
		case core.Blocked, core.BlockedDeadlock, core.StillWaiting:
			if adaptive {
				burst = 1 // contended: step operation-granular on resume
			}
			if st, err := sys.Status(id); err == nil && st == core.StatusRunning {
				continue // rolled back or granted during the same step
			}
			select {
			case <-wake:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return fmt.Errorf("exec: %v exceeded %d steps", id, maxSteps)
}

// Backoff computes jittered exponential retry delays: attempt k (from
// 0) sleeps a uniformly random duration in (0, min(Base·2^k, Cap)].
// Full jitter keeps retrying clients from re-colliding in lockstep —
// the network analogue of Theorem 2's concern that uncoordinated
// re-execution can preempt forever.
type Backoff struct {
	// Base is the first attempt's maximum delay. Default 2ms.
	Base time.Duration
	// Cap bounds the delay. Default 250ms.
	Cap time.Duration
	// Jitter, when non-nil, supplies the jitter fraction in [0, 1) and
	// supersedes both the rng argument and the global source. Inject a
	// seeded (or constant) function to make retry timing deterministic
	// in tests.
	Jitter func() float64
}

// Delay returns the sleep before retry attempt k (0-based), drawing
// jitter from b.Jitter if set, else from rng (which must not be shared
// between goroutines without locking; pass nil to use the global
// source).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	// base·2^attempt by bit-shift, saturating at cap: O(1) for any
	// attempt count, where the old doubling loop was O(attempt). The
	// shift is guarded against overflow — at 63+ bits, or when shifting
	// back does not restore base, the doubling has certainly passed any
	// positive cap.
	d := cap
	if attempt <= 0 {
		d = base
	} else if attempt < 63 {
		if shifted := base << attempt; shifted>>attempt == base && shifted < cap {
			d = shifted
		}
	}
	if d > cap {
		d = cap // a Base above Cap still clamps, as the loop did
	}
	var f float64
	switch {
	case b.Jitter != nil:
		f = b.Jitter()
	case rng != nil:
		f = rng.Float64()
	default:
		f = rand.Float64()
	}
	jittered := time.Duration(f * float64(d))
	if jittered <= 0 {
		jittered = time.Nanosecond
	}
	return jittered
}

// Sleep blocks for the attempt's jittered backoff delay, returning
// early with ctx.Err() if the context ends first. It never uses a bare
// time.Sleep, so a canceled client stops backing off immediately.
func (b Backoff) Sleep(ctx context.Context, attempt int, rng *rand.Rand) error {
	t := time.NewTimer(b.Delay(attempt, rng))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs attempt until it succeeds, fails terminally, or the
// context ends. retryable classifies errors; attempts <= 0 means 16.
// It returns the number of attempts made alongside the final error
// (nil on success). Backoff sleeps respect context cancellation (see
// Backoff.Sleep).
func Retry(ctx context.Context, attempts int, b Backoff, rng *rand.Rand,
	attempt func(context.Context) error, retryable func(error) bool) (int, error) {
	if attempts <= 0 {
		attempts = 16
	}
	var err error
	for k := 0; k < attempts; k++ {
		if cerr := ctx.Err(); cerr != nil {
			return k, cerr
		}
		err = attempt(ctx)
		if err == nil {
			return k + 1, nil
		}
		if !retryable(err) || k == attempts-1 {
			return k + 1, err
		}
		if serr := b.Sleep(ctx, k, rng); serr != nil {
			return k + 1, serr
		}
	}
	return attempts, err
}
