package exec

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
	"partialrollback/internal/sim"
)

// TestStepToCommitDeadlock runs two transactions that deadlock (a->b,
// b->a) concurrently; the engine must roll one back and both must
// commit through the shared loop.
func TestStepToCommitDeadlock(t *testing.T) {
	for _, strategy := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		notif := NewNotifier()
		store := entity.NewUniformStore("e", 4, 100)
		sys := core.New(core.Config{Store: store, Strategy: strategy, OnEvent: notif.OnEvent})
		progs := []struct{ from, to string }{{"e0", "e1"}, {"e1", "e0"}}
		var wg sync.WaitGroup
		errCh := make(chan error, len(progs))
		for i, p := range progs {
			id := sys.MustRegister(sim.TransferProgram("t", p.from, p.to, 1, 3))
			wake := notif.Register(id)
			wg.Add(1)
			go func() {
				defer wg.Done()
				errCh <- StepToCommit(context.Background(), sys, id, wake, 0)
			}()
			_ = i
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				t.Fatalf("%v: %v", strategy, err)
			}
		}
		if !sys.AllCommitted() {
			t.Fatalf("%v: not all committed", strategy)
		}
		if err := store.CheckConsistent(); err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
	}
}

// TestStepToCommitContextCancel parks a transaction on a held lock and
// cancels the context: the loop must return ctx.Err() promptly, leaving
// the transaction registered for the caller to abort.
func TestStepToCommitContextCancel(t *testing.T) {
	notif := NewNotifier()
	store := entity.NewUniformStore("e", 4, 100)
	sys := core.New(core.Config{Store: store, OnEvent: notif.OnEvent})
	holder := sys.MustRegister(sim.TransferProgram("holder", "e0", "e1", 1, 0))
	if _, err := sys.Step(holder); err != nil { // holder takes e0
		t.Fatal(err)
	}
	waiter := sys.MustRegister(sim.TransferProgram("waiter", "e0", "e2", 1, 0))
	wake := notif.Register(waiter)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := StepToCommit(ctx, sys, waiter, wake, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if err := sys.Abort(waiter); err != nil {
		t.Fatalf("abort after cancel: %v", err)
	}
	// The holder must still be able to commit.
	wakeH := notif.Register(holder)
	if err := StepToCommit(context.Background(), sys, holder, wakeH, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		max := time.Millisecond << attempt
		if max > 8*time.Millisecond {
			max = 8 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			d := b.Delay(attempt, rng)
			if d <= 0 || d > max {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, max)
			}
		}
	}
	// Defaults apply for the zero value.
	if d := (Backoff{}).Delay(0, rng); d <= 0 || d > 2*time.Millisecond {
		t.Errorf("zero-value delay %v", d)
	}
}

// TestBackoffDelayExtremeAttempts pins the O(1) shift computation at
// the edges the old doubling loop never hit in practice: attempt counts
// far past the overflow point (a retry loop left running for days),
// negative attempts, and a Base above Cap must all clamp to Cap (or
// Base-capped-to-Cap) instantly, never overflow into a negative or
// zero-length delay, and never spin O(attempt).
func TestBackoffDelayExtremeAttempts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := Backoff{Base: time.Millisecond, Cap: 250 * time.Millisecond}
	for _, attempt := range []int{62, 63, 64, 1 << 20, 1 << 30, int(^uint(0) >> 1)} {
		start := time.Now()
		for i := 0; i < 100; i++ {
			d := b.Delay(attempt, rng)
			if d <= 0 || d > b.Cap {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, b.Cap)
			}
		}
		// The old loop doubled attempt times; at 2^30 attempts that is
		// visible wall-clock. The shift must be effectively free.
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("attempt %d: 100 delays took %v; computation is not O(1)", attempt, elapsed)
		}
	}
	for _, attempt := range []int{-1, -63, -(1 << 40)} {
		if d := b.Delay(attempt, rng); d <= 0 || d > b.Base {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, b.Base)
		}
	}
	// A Base above Cap clamps to Cap at every attempt, as the loop did.
	inv := Backoff{Base: time.Second, Cap: 100 * time.Millisecond}
	for _, attempt := range []int{0, 1, 5, 64, 1 << 30} {
		if d := inv.Delay(attempt, rng); d <= 0 || d > inv.Cap {
			t.Fatalf("base>cap attempt %d: delay %v outside (0, %v]", attempt, d, inv.Cap)
		}
	}
	// Exact saturation point: with Base 1ms and Cap 250ms the shift
	// passes the cap at attempt 8 (256ms); from there every delay draws
	// from the full (0, Cap] range.
	b.Jitter = func() float64 { return 0.999999 }
	for _, attempt := range []int{8, 9, 63, 1 << 30} {
		d := b.Delay(attempt, nil)
		if d < 249*time.Millisecond || d > b.Cap {
			t.Fatalf("attempt %d: near-1 jitter delay %v, want ~%v", attempt, d, b.Cap)
		}
	}
}

func TestBackoffSleep(t *testing.T) {
	t.Run("completes", func(t *testing.T) {
		b := Backoff{Base: time.Microsecond, Cap: time.Microsecond}
		if err := b.Sleep(context.Background(), 0, nil); err != nil {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("cancel interrupts", func(t *testing.T) {
		b := Backoff{Base: time.Hour, Cap: time.Hour}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- b.Sleep(ctx, 0, nil) }()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Sleep ignored cancellation")
		}
	})
	t.Run("deadline interrupts", func(t *testing.T) {
		b := Backoff{Base: time.Hour, Cap: time.Hour}
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		start := time.Now()
		err := b.Sleep(ctx, 0, nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("Sleep overshot the deadline")
		}
	})
}

// TestRetrySleepCancel cancels mid-backoff (after a failed attempt,
// before the next) and checks Retry returns the context error promptly.
func TestRetrySleepCancel(t *testing.T) {
	fail := errors.New("transient")
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{Base: time.Hour, Cap: time.Hour}
	done := make(chan error, 1)
	attempted := make(chan struct{}, 1)
	go func() {
		_, err := Retry(ctx, 10, b, nil, func(context.Context) error {
			select {
			case attempted <- struct{}{}:
			default:
			}
			return fail
		}, func(error) bool { return true })
		done <- err
	}()
	<-attempted
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return after cancel during backoff")
	}
}

func TestRetry(t *testing.T) {
	fail := errors.New("transient")
	fatal := errors.New("fatal")
	isTransient := func(err error) bool { return errors.Is(err, fail) }
	b := Backoff{Base: time.Microsecond, Cap: time.Microsecond}

	t.Run("succeeds after transient failures", func(t *testing.T) {
		n := 0
		attempts, err := Retry(context.Background(), 10, b, nil, func(context.Context) error {
			n++
			if n < 3 {
				return fail
			}
			return nil
		}, isTransient)
		if err != nil || attempts != 3 {
			t.Fatalf("attempts=%d err=%v", attempts, err)
		}
	})
	t.Run("stops on terminal error", func(t *testing.T) {
		attempts, err := Retry(context.Background(), 10, b, nil, func(context.Context) error {
			return fatal
		}, isTransient)
		if !errors.Is(err, fatal) || attempts != 1 {
			t.Fatalf("attempts=%d err=%v", attempts, err)
		}
	})
	t.Run("exhausts attempts", func(t *testing.T) {
		attempts, err := Retry(context.Background(), 4, b, nil, func(context.Context) error {
			return fail
		}, isTransient)
		if !errors.Is(err, fail) || attempts != 4 {
			t.Fatalf("attempts=%d err=%v", attempts, err)
		}
	})
	t.Run("honors context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Retry(ctx, 10, b, nil, func(context.Context) error {
			return fail
		}, isTransient)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestNotifierWakeUnknown(t *testing.T) {
	n := NewNotifier()
	n.Wake(99) // must not panic
	ch := n.Register(1)
	n.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1})
	n.OnEvent(core.Event{Kind: core.EventGrant, Txn: 1}) // non-blocking when full
	select {
	case <-ch:
	default:
		t.Fatal("no wakeup delivered")
	}
	n.Unregister(1)
	n.Wake(1) // no-op after unregister
}

// TestBackoffJitterDeterminism: an injected Jitter source supersedes
// both the rng argument and the global source, making retry timing
// fully reproducible.
func TestBackoffJitterDeterminism(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		src := rand.New(rand.NewSource(seed))
		b := Backoff{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond,
			Jitter: src.Float64}
		// A deliberately different rng argument must be ignored.
		decoy := rand.New(rand.NewSource(seed + 1000))
		out := make([]time.Duration, 8)
		for k := range out {
			out[k] = b.Delay(k, decoy)
		}
		return out
	}
	a, b2 := delays(7), delays(7)
	for k := range a {
		if a[k] != b2[k] {
			t.Fatalf("attempt %d: %v != %v with identical jitter seeds", k, a[k], b2[k])
		}
	}
	c := delays(8)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Error("different jitter seeds produced identical delay sequences")
	}

	// A constant jitter fraction gives exact, closed-form delays.
	half := Backoff{Base: 2 * time.Millisecond, Cap: 16 * time.Millisecond,
		Jitter: func() float64 { return 0.5 }}
	want := []time.Duration{
		1 * time.Millisecond, // 2ms * 0.5
		2 * time.Millisecond, // 4ms * 0.5
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped at 16ms
	}
	for k, w := range want {
		if got := half.Delay(k, nil); got != w {
			t.Errorf("attempt %d: delay %v, want %v", k, got, w)
		}
	}
}
