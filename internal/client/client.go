// Package client is the network counterpart of internal/server: it
// ships whole transaction programs over the wire protocol and re-runs
// them with jittered exponential backoff when the server reports a
// retryable failure (the transaction was rolled back to its initial
// state by a request deadline, or refused during shutdown or overload).
// That retry loop is the client-side analogue of the engine's
// re-execution after rollback — the same §2 semantics applied one level
// up, using the shared internal/exec machinery.
//
// A Client owns one connection, reused across transactions and redialed
// transparently after transport failures. It is NOT safe for concurrent
// use; run one Client per goroutine (they are cheap — one TCP
// connection and a small buffer each).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"partialrollback/internal/exec"
	"partialrollback/internal/obs"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

// Config configures a Client.
type Config struct {
	// Addr is the server address for the default dialer.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer (tests,
	// custom transports).
	Dial func() (net.Conn, error)
	// RequestTimeout bounds one attempt end to end (write, execute,
	// read reply). Default 1m — deliberately above the server's own
	// request deadline so the server, not the transport, decides.
	RequestTimeout time.Duration
	// MaxAttempts bounds Run's attempts per transaction. Default 16.
	MaxAttempts int
	// Backoff shapes the inter-attempt delay.
	Backoff exec.Backoff
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	Seed int64
	// OnRollback, when non-nil, receives every partial-rollback
	// notification the server streams while executing our transaction.
	OnRollback func(wire.RolledBack)
	// Metrics, when non-nil, accumulates this client's attempt/retry
	// counters and commit latencies. Share one instance across clients
	// (all fields are atomic) to observe a whole load-generating fleet.
	Metrics *obs.ClientMetrics
	// Proto selects the wire encoding for submitted programs: 0 or 1
	// sends the v1 sequence (one frame per operation), 2 sends the whole
	// program as a single v2 BeginProgram frame. Negotiation is
	// per-frame, so either works against the same server.
	Proto int
}

// ServerError is an Error frame returned by the server.
type ServerError struct {
	Code wire.ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Msg)
}

// Retryable reports whether re-running the transaction can succeed.
func (e *ServerError) Retryable() bool { return e.Code.Retryable() }

// ErrRolledBack tags retryable server failures: errors.Is(err,
// ErrRolledBack) holds for any ServerError whose code is retryable.
var ErrRolledBack = errors.New("client: transaction rolled back by server")

// Is makes retryable server errors match ErrRolledBack.
func (e *ServerError) Is(target error) bool {
	return target == ErrRolledBack && e.Retryable()
}

// Retryable classifies an error from RunOnce: terminal server verdicts
// (bad request, internal error) and protocol violations are final;
// retryable server codes and transport failures (the connection is
// redialed) are worth another attempt.
func Retryable(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	if errors.Is(err, wire.ErrProtocol) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport errors: dial failures, resets, timeouts.
	return true
}

// Result reports a transaction the server committed.
type Result struct {
	// Txn is the server-side transaction ID of the committing run.
	Txn int64
	// Locals holds the program's local variables at commit.
	Locals map[string]int64
	// Outcome carries the engine's per-transaction counters for the
	// committing run (partial rollbacks, lost operations, waits).
	Outcome wire.TxnOutcome
	// RolledBack collects every rollback notification received, across
	// all attempts when returned by Run.
	RolledBack []wire.RolledBack
	// Attempts is how many runs Run needed (always 1 from RunOnce).
	Attempts int
}

// Client submits transactions to one server. Not safe for concurrent
// use.
type Client struct {
	cfg  Config
	rng  *rand.Rand
	conn net.Conn
	br   *bufio.Reader
}

// New creates a Client. No connection is made until the first request.
func New(cfg Config) *Client {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Close closes the connection, if open.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br = nil, nil
	return err
}

func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	dial := c.cfg.Dial
	if dial == nil {
		addr := c.cfg.Addr
		dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 5*time.Second) }
	}
	conn, err := dial()
	if err != nil {
		return fmt.Errorf("client: dial: %w", err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

// dropConn discards the connection after a transport or protocol
// failure; the next attempt redials.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}

// RunOnce submits prog and waits for its verdict: a Result when the
// server committed it, a *ServerError when the server refused or rolled
// it back (check Retryable), a transport error otherwise.
func (c *Client) RunOnce(prog *txn.Program) (*Result, error) {
	var msgs []wire.Msg
	if c.cfg.Proto >= 2 {
		frame, err := wire.ProgramFrame(prog)
		if err != nil {
			return nil, err
		}
		msgs = []wire.Msg{frame}
	} else {
		var err error
		if msgs, err = wire.ProgramMsgs(prog); err != nil {
			return nil, err
		}
	}
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	bw := bufio.NewWriter(c.conn)
	for _, m := range msgs {
		if _, err := wire.WriteMsg(bw, m); err != nil {
			c.dropConn()
			return nil, fmt.Errorf("client: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("client: write: %w", err)
	}
	res := &Result{Attempts: 1}
	for {
		m, _, err := wire.ReadMsg(c.br)
		if err != nil {
			c.dropConn()
			return nil, fmt.Errorf("client: read: %w", err)
		}
		switch x := m.(type) {
		case wire.RolledBack:
			res.RolledBack = append(res.RolledBack, x)
			if c.cfg.OnRollback != nil {
				c.cfg.OnRollback(x)
			}
		case wire.Committed:
			res.Txn = x.Txn
			res.Outcome = x.Stats
			res.Locals = make(map[string]int64, len(x.Locals))
			for _, d := range x.Locals {
				res.Locals[d.Name] = d.Val
			}
			return res, nil
		case wire.Error:
			// Retryable refusals end the exchange but leave the stream
			// aligned; terminal ones may follow a desync, drop the conn.
			if !x.Code.Retryable() || x.Code == wire.CodeShutdown {
				c.dropConn()
			}
			// Return the partial result so Run can aggregate rollback
			// notifications received before the refusal.
			return res, &ServerError{Code: x.Code, Msg: x.Msg}
		default:
			c.dropConn()
			return nil, fmt.Errorf("client: %w: unexpected %s reply", wire.ErrProtocol, m.Type())
		}
	}
}

// Run submits prog and re-runs it on retryable failures with jittered
// exponential backoff, until it commits, fails terminally, attempts run
// out, or ctx ends. Backoff sleeps respect ctx cancellation (see
// exec.Backoff.Sleep), so a canceled caller returns without finishing
// the current delay. The Result aggregates rollback notifications and
// attempts across runs.
func (c *Client) Run(ctx context.Context, prog *txn.Program) (*Result, error) {
	var (
		last     *Result
		rollback []wire.RolledBack
	)
	start := time.Now()
	attempts, err := exec.Retry(ctx, c.cfg.MaxAttempts, c.cfg.Backoff, c.rng,
		func(context.Context) error {
			if m := c.cfg.Metrics; m != nil {
				m.Attempts.Add(1)
			}
			r, err := c.RunOnce(prog)
			if r != nil {
				rollback = append(rollback, r.RolledBack...)
				if m := c.cfg.Metrics; m != nil {
					m.RollbacksObserved.Add(int64(len(r.RolledBack)))
				}
			}
			last = r
			return err
		}, Retryable)
	if m := c.cfg.Metrics; m != nil && attempts > 1 {
		m.Retries.Add(int64(attempts - 1))
	}
	if err != nil {
		if m := c.cfg.Metrics; m != nil {
			m.Failures.Add(1)
		}
		return nil, err
	}
	if m := c.cfg.Metrics; m != nil {
		m.ObserveCommit(time.Since(start))
	}
	last.Attempts = attempts
	last.RolledBack = rollback
	return last, nil
}

// Stats requests the server's counter snapshot.
func (c *Client) Stats() ([]wire.Counter, error) {
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := wire.WriteMsg(c.conn, wire.Stats{}); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("client: write: %w", err)
	}
	m, _, err := wire.ReadMsg(c.br)
	if err != nil {
		c.dropConn()
		return nil, fmt.Errorf("client: read: %w", err)
	}
	switch x := m.(type) {
	case wire.StatsReply:
		return x.Counters, nil
	case wire.Error:
		return nil, &ServerError{Code: x.Code, Msg: x.Msg}
	default:
		c.dropConn()
		return nil, fmt.Errorf("client: %w: unexpected %s reply", wire.ErrProtocol, m.Type())
	}
}
