package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"partialrollback/internal/exec"
	"partialrollback/internal/obs"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

// MuxConfig configures a Mux.
type MuxConfig struct {
	// Addr is the server address for the default dialer.
	Addr string
	// Dial, when non-nil, replaces the default TCP dialer.
	Dial func() (net.Conn, error)
	// RequestTimeout bounds one attempt end to end. Default 1m —
	// deliberately above the server's own request deadline so the
	// server, not the transport, decides.
	RequestTimeout time.Duration
	// MaxAttempts bounds Run's attempts per transaction. Default 16.
	MaxAttempts int
	// Backoff shapes the per-stream inter-attempt delay. Jitter is
	// drawn per attempt from the process-global source (goroutine-safe)
	// unless Backoff.Jitter is set.
	Backoff exec.Backoff
	// OnRollback, when non-nil, receives every partial-rollback
	// notification routed to any of this Mux's streams. It must be
	// safe for concurrent use.
	OnRollback func(wire.RolledBack)
	// Metrics, when non-nil, accumulates attempt/retry counters and
	// commit latencies across every stream.
	Metrics *obs.ClientMetrics
}

// Mux is a multiplexed client: one shared socket carrying many
// concurrent transactions, each on its own v3 stream. Unlike Client it
// IS safe for concurrent use — call Run from as many goroutines as you
// like; each call allocates a stream, ships the program as one tagged
// BeginProgram frame, and waits for the verdict tagged back to it,
// while a single reader goroutine demultiplexes replies. Transport
// failures fail every in-flight stream with a retryable error and the
// next attempt redials transparently.
type Mux struct {
	cfg MuxConfig

	// wmu serializes writes to the shared socket; wbuf is the reused
	// encode buffer.
	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	conn    net.Conn
	epoch   int64 // increments per successful dial; guards stale readers
	next    uint32
	pending map[uint32]*muxStream
	closed  bool
}

// muxStream is the demux endpoint of one in-flight request.
type muxStream struct {
	// term receives the single terminal verdict (cap 1, never blocks
	// the reader: the server sends exactly one terminal per stream and
	// connection teardown only fires once).
	term chan muxVerdict
	// notes receives rollback notifications; droppable, like the
	// server's own notification path.
	notes chan wire.RolledBack
}

type muxVerdict struct {
	m   wire.Msg
	err error
}

// errMuxClosed is returned by calls on a closed Mux.
var errMuxClosed = errors.New("client: mux closed")

// NewMux creates a Mux. No connection is made until the first request.
func NewMux(cfg MuxConfig) *Mux {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	return &Mux{cfg: cfg, pending: map[uint32]*muxStream{}}
}

// Close closes the socket and fails every in-flight stream.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	nc := m.conn
	m.conn = nil
	failed := m.pending
	m.pending = map[uint32]*muxStream{}
	m.mu.Unlock()
	var err error
	if nc != nil {
		err = nc.Close()
	}
	deliverLost(failed, errMuxClosed)
	return err
}

// ensure returns the live connection, dialing (and starting that
// connection's reader) if needed.
func (m *Mux) ensure() (net.Conn, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, errMuxClosed
	}
	if m.conn != nil {
		return m.conn, m.epoch, nil
	}
	dial := m.cfg.Dial
	if dial == nil {
		addr := m.cfg.Addr
		dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 5*time.Second) }
	}
	nc, err := dial()
	if err != nil {
		return nil, 0, fmt.Errorf("client: dial: %w", err)
	}
	m.conn = nc
	m.epoch++
	go m.readLoop(nc, m.epoch)
	return nc, m.epoch, nil
}

// readLoop is one connection epoch's demultiplexer: the only goroutine
// reading the socket. Replies are routed to their stream's endpoint;
// a read failure fails every stream of this epoch.
func (m *Mux) readLoop(nc net.Conn, ep int64) {
	br := bufio.NewReader(nc)
	for {
		f, _, err := wire.ReadFrame(br)
		if err != nil {
			m.teardown(nc, ep, err)
			return
		}
		if !f.Tagged {
			continue // not ours; a multiplexed client only sends tagged frames
		}
		m.mu.Lock()
		st := m.pending[f.Stream]
		m.mu.Unlock()
		if st == nil {
			continue // stream gave up (timeout) before the verdict arrived
		}
		switch x := f.Msg.(type) {
		case wire.RolledBack:
			select {
			case st.notes <- x:
			default:
			}
		default:
			select {
			case st.term <- muxVerdict{m: f.Msg}:
			default:
			}
		}
	}
}

// teardown retires a failed connection epoch: in-flight streams get a
// retryable transport error and the next attempt redials.
func (m *Mux) teardown(nc net.Conn, ep int64, cause error) {
	m.mu.Lock()
	if m.epoch != ep || m.conn != nc {
		m.mu.Unlock() // a newer epoch owns the state
		return
	}
	m.conn = nil
	failed := m.pending
	m.pending = map[uint32]*muxStream{}
	m.mu.Unlock()
	nc.Close()
	deliverLost(failed, cause)
}

func deliverLost(failed map[uint32]*muxStream, cause error) {
	for _, st := range failed {
		select {
		case st.term <- muxVerdict{err: fmt.Errorf("client: connection lost: %w", cause)}:
		default:
		}
	}
}

// openStream allocates a stream ID on epoch ep and registers its demux
// endpoint. It fails if the epoch died between ensure and here (the
// caller retries).
func (m *Mux) openStream(ep int64) (uint32, *muxStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, nil, errMuxClosed
	}
	if m.epoch != ep || m.conn == nil {
		return 0, nil, errors.New("client: connection lost while opening stream")
	}
	for {
		m.next++
		if _, taken := m.pending[m.next]; !taken {
			break
		}
	}
	st := &muxStream{term: make(chan muxVerdict, 1), notes: make(chan wire.RolledBack, 32)}
	m.pending[m.next] = st
	return m.next, st, nil
}

func (m *Mux) closeStream(stream uint32) {
	m.mu.Lock()
	delete(m.pending, stream)
	m.mu.Unlock()
}

// writeTagged encodes one tagged frame and writes it; writes from
// concurrent streams are serialized on the shared socket.
func (m *Mux) writeTagged(nc net.Conn, stream uint32, msg wire.Msg) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	buf, err := wire.AppendTagged(m.wbuf[:0], stream, msg)
	if err != nil {
		return err
	}
	m.wbuf = buf
	_ = nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, err = nc.Write(buf)
	return err
}

// RunOnce submits prog on a fresh stream and waits for its verdict: a
// Result when the server committed it, a *ServerError when the server
// refused or rolled it back (check Retryable), a transport or timeout
// error otherwise. Safe for concurrent use.
func (m *Mux) RunOnce(prog *txn.Program) (*Result, error) {
	frame, err := wire.ProgramFrame(prog)
	if err != nil {
		return nil, err
	}
	nc, ep, err := m.ensure()
	if err != nil {
		return nil, err
	}
	stream, st, err := m.openStream(ep)
	if err != nil {
		return nil, err
	}
	defer m.closeStream(stream)
	if err := m.writeTagged(nc, stream, frame); err != nil {
		m.teardown(nc, ep, err)
		return nil, fmt.Errorf("client: write: %w", err)
	}
	res := &Result{Attempts: 1}
	timeout := time.NewTimer(m.cfg.RequestTimeout)
	defer timeout.Stop()
	for {
		select {
		case x := <-st.notes:
			res.RolledBack = append(res.RolledBack, x)
			if m.cfg.OnRollback != nil {
				m.cfg.OnRollback(x)
			}
		case v := <-st.term:
			// Collect notifications that raced the verdict.
			for {
				select {
				case x := <-st.notes:
					res.RolledBack = append(res.RolledBack, x)
					if m.cfg.OnRollback != nil {
						m.cfg.OnRollback(x)
					}
					continue
				default:
				}
				break
			}
			if v.err != nil {
				return nil, v.err
			}
			switch x := v.m.(type) {
			case wire.Committed:
				res.Txn = x.Txn
				res.Outcome = x.Stats
				res.Locals = make(map[string]int64, len(x.Locals))
				for _, d := range x.Locals {
					res.Locals[d.Name] = d.Val
				}
				return res, nil
			case wire.Error:
				// Stream-level refusals never desync the shared socket;
				// the connection stays up for every other stream.
				return res, &ServerError{Code: x.Code, Msg: x.Msg}
			default:
				return nil, fmt.Errorf("client: %w: unexpected %s reply", wire.ErrProtocol, v.m.Type())
			}
		case <-timeout.C:
			// The server may still deliver a verdict later; it is
			// dropped by the reader once the stream deregisters.
			return res, fmt.Errorf("client: stream %d: no verdict within %v", stream, m.cfg.RequestTimeout)
		}
	}
}

// Run submits prog and re-runs it on retryable failures with jittered
// exponential backoff — each concurrent stream backs off independently
// — until it commits, fails terminally, attempts run out, or ctx ends.
func (m *Mux) Run(ctx context.Context, prog *txn.Program) (*Result, error) {
	var (
		last     *Result
		rollback []wire.RolledBack
	)
	start := time.Now()
	attempts, err := exec.Retry(ctx, m.cfg.MaxAttempts, m.cfg.Backoff, nil,
		func(context.Context) error {
			if mt := m.cfg.Metrics; mt != nil {
				mt.Attempts.Add(1)
			}
			r, err := m.RunOnce(prog)
			if r != nil {
				rollback = append(rollback, r.RolledBack...)
				if mt := m.cfg.Metrics; mt != nil {
					mt.RollbacksObserved.Add(int64(len(r.RolledBack)))
				}
			}
			last = r
			return err
		}, Retryable)
	if mt := m.cfg.Metrics; mt != nil && attempts > 1 {
		mt.Retries.Add(int64(attempts - 1))
	}
	if err != nil {
		if mt := m.cfg.Metrics; mt != nil {
			mt.Failures.Add(1)
		}
		return nil, err
	}
	if mt := m.cfg.Metrics; mt != nil {
		mt.ObserveCommit(time.Since(start))
	}
	last.Attempts = attempts
	last.RolledBack = rollback
	return last, nil
}

// Stats requests the server's counter snapshot over its own stream,
// without disturbing in-flight transactions.
func (m *Mux) Stats() ([]wire.Counter, error) {
	nc, ep, err := m.ensure()
	if err != nil {
		return nil, err
	}
	stream, st, err := m.openStream(ep)
	if err != nil {
		return nil, err
	}
	defer m.closeStream(stream)
	if err := m.writeTagged(nc, stream, wire.Stats{}); err != nil {
		m.teardown(nc, ep, err)
		return nil, fmt.Errorf("client: write: %w", err)
	}
	timeout := time.NewTimer(m.cfg.RequestTimeout)
	defer timeout.Stop()
	select {
	case v := <-st.term:
		if v.err != nil {
			return nil, v.err
		}
		switch x := v.m.(type) {
		case wire.StatsReply:
			return x.Counters, nil
		case wire.Error:
			return nil, &ServerError{Code: x.Code, Msg: x.Msg}
		default:
			return nil, fmt.Errorf("client: %w: unexpected %s reply", wire.ErrProtocol, v.m.Type())
		}
	case <-timeout.C:
		return nil, fmt.Errorf("client: stream %d: no stats reply within %v", stream, m.cfg.RequestTimeout)
	}
}
