package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"partialrollback/internal/exec"
	"partialrollback/internal/obs"
	"partialrollback/internal/sim"
	"partialrollback/internal/wire"
)

// serveScript consumes one transaction message sequence per reply set
// from conn (validating each assembles into a valid program) and
// answers with the set's messages, then closes the connection.
func serveScript(t *testing.T, conn net.Conn, replySets ...[]wire.Msg) {
	t.Helper()
	defer conn.Close()
	for _, replies := range replySets {
		m, _, err := wire.ReadMsg(conn)
		if err != nil {
			return
		}
		begin, ok := m.(wire.Begin)
		if !ok {
			t.Errorf("first message %T, want Begin", m)
			return
		}
		asm := wire.NewAssembler(begin)
		for {
			m, _, err := wire.ReadMsg(conn)
			if err != nil {
				return
			}
			done, err := asm.Feed(m)
			if err != nil {
				t.Errorf("feed: %v", err)
				return
			}
			if done {
				break
			}
		}
		if _, err := asm.Program(); err != nil {
			t.Errorf("assembled program invalid: %v", err)
		}
		for _, r := range replies {
			if _, err := wire.WriteMsg(conn, r); err != nil {
				return
			}
		}
	}
}

func committedReply() wire.Committed {
	return wire.Committed{
		Txn:    7,
		Locals: []wire.LocalDecl{{Name: "x", Val: 41}},
		Stats:  wire.TxnOutcome{OpsExecuted: 5},
	}
}

// pipeDialer returns a Dial hook whose nth call is wired to the nth
// script.
func pipeDialer(t *testing.T, scripts ...func(net.Conn)) func() (net.Conn, error) {
	n := 0
	return func() (net.Conn, error) {
		if n >= len(scripts) {
			t.Fatalf("unexpected dial #%d", n+1)
		}
		cc, sc := net.Pipe()
		go scripts[n](sc)
		n++
		return cc, nil
	}
}

func testConfig(dial func() (net.Conn, error)) Config {
	return Config{
		Dial:           dial,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    8,
		Backoff:        exec.Backoff{Base: time.Microsecond, Cap: time.Microsecond},
		Seed:           1,
	}
}

func TestRunRetriesRolledBack(t *testing.T) {
	prog := sim.TransferProgram("t", "e0", "e1", 1, 0)
	var notified int
	// Retryable refusals keep the connection, so one dial serves all
	// three attempts — this also covers connection reuse.
	cfg := testConfig(pipeDialer(t, func(conn net.Conn) {
		serveScript(t, conn,
			[]wire.Msg{
				wire.RolledBack{Txn: 7, FromState: 2, ToState: 0, Lost: 2},
				wire.Error{Code: wire.CodeRolledBack, Msg: "deadline"},
			},
			[]wire.Msg{
				wire.RolledBack{Txn: 9, FromState: 1, ToState: 0, Lost: 1},
				wire.Error{Code: wire.CodeRolledBack, Msg: "deadline"},
			},
			[]wire.Msg{committedReply()},
		)
	}))
	cfg.OnRollback = func(wire.RolledBack) { notified++ }
	c := New(cfg)
	defer c.Close()
	res, err := c.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", res.Attempts)
	}
	if len(res.RolledBack) != 2 || notified != 2 {
		t.Errorf("rollback notifications = %d (callback %d), want 2", len(res.RolledBack), notified)
	}
	if res.Locals["x"] != 41 || res.Outcome.OpsExecuted != 5 {
		t.Errorf("result %+v", res)
	}
}

func TestRunRedialsAfterTransportFailure(t *testing.T) {
	prog := sim.TransferProgram("t", "e0", "e1", 1, 0)
	cfg := testConfig(pipeDialer(t,
		func(conn net.Conn) { conn.Close() }, // dies immediately
		func(conn net.Conn) { serveScript(t, conn, []wire.Msg{committedReply()}) },
	))
	c := New(cfg)
	defer c.Close()
	res, err := c.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
}

func TestRunStopsOnTerminalError(t *testing.T) {
	prog := sim.TransferProgram("t", "e0", "e1", 1, 0)
	dials := 0
	cfg := testConfig(func() (net.Conn, error) {
		dials++
		cc, sc := net.Pipe()
		go serveScript(t, sc, []wire.Msg{wire.Error{Code: wire.CodeBadRequest, Msg: "no such entity"}})
		return cc, nil
	})
	c := New(cfg)
	defer c.Close()
	_, err := c.Run(context.Background(), prog)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBadRequest {
		t.Fatalf("err = %v, want BadRequest ServerError", err)
	}
	if errors.Is(err, ErrRolledBack) {
		t.Error("terminal error must not match ErrRolledBack")
	}
	if dials != 1 {
		t.Errorf("dials = %d, want 1 (no retry)", dials)
	}
}

func TestErrRolledBackMatching(t *testing.T) {
	for _, tc := range []struct {
		code wire.ErrCode
		want bool
	}{
		{wire.CodeRolledBack, true},
		{wire.CodeShutdown, true},
		{wire.CodeBusy, true},
		{wire.CodeBadRequest, false},
		{wire.CodeInternal, false},
	} {
		err := error(&ServerError{Code: tc.code})
		if got := errors.Is(err, ErrRolledBack); got != tc.want {
			t.Errorf("errors.Is(%s, ErrRolledBack) = %v, want %v", tc.code, got, tc.want)
		}
		if got := Retryable(err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.code, got, tc.want)
		}
	}
	if !Retryable(errors.New("some transport failure")) {
		t.Error("transport errors must be retryable")
	}
	if Retryable(wire.ErrProtocol) {
		t.Error("protocol violations must not be retryable")
	}
}

// TestRunCancelDuringBackoff cancels the context while Run sleeps
// between attempts and checks it returns promptly with the context
// error instead of finishing the (enormous) backoff delay.
func TestRunCancelDuringBackoff(t *testing.T) {
	prog := sim.TransferProgram("t", "e0", "e1", 1, 0)
	dialed := make(chan struct{}, 1)
	cfg := Config{
		Dial: func() (net.Conn, error) {
			select {
			case dialed <- struct{}{}:
			default:
			}
			return nil, errors.New("refused") // retryable transport failure
		},
		MaxAttempts: 8,
		// A delay far beyond the test's patience: only ctx can end it.
		Backoff: exec.Backoff{Base: time.Hour, Cap: time.Hour},
		Seed:    1,
	}
	c := New(cfg)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, prog)
		done <- err
	}()
	<-dialed // first attempt failed; Run is now inside the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel; backoff sleep ignores ctx")
	}
}

func TestRunMetrics(t *testing.T) {
	prog := sim.TransferProgram("t", "e0", "e1", 1, 0)
	m := &obs.ClientMetrics{}
	cfg := testConfig(pipeDialer(t, func(conn net.Conn) {
		serveScript(t, conn,
			[]wire.Msg{
				wire.RolledBack{Txn: 7, FromState: 2, ToState: 0, Lost: 2},
				wire.Error{Code: wire.CodeRolledBack, Msg: "deadline"},
			},
			[]wire.Msg{committedReply()},
		)
	}))
	cfg.Metrics = m
	c := New(cfg)
	defer c.Close()
	if _, err := c.Run(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if got := m.Attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	if got := m.Retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := m.Commits.Load(); got != 1 {
		t.Errorf("commits = %d, want 1", got)
	}
	if got := m.RollbacksObserved.Load(); got != 1 {
		t.Errorf("rollbacks observed = %d, want 1", got)
	}
	if got := m.Failures.Load(); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}

	// A terminal failure counts once and does not count a commit.
	cfg2 := testConfig(pipeDialer(t, func(conn net.Conn) {
		serveScript(t, conn, []wire.Msg{wire.Error{Code: wire.CodeBadRequest, Msg: "bad"}})
	}))
	cfg2.Metrics = m
	c2 := New(cfg2)
	defer c2.Close()
	if _, err := c2.Run(context.Background(), prog); err == nil {
		t.Fatal("want terminal error")
	}
	if got := m.Failures.Load(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
	if got := m.Commits.Load(); got != 1 {
		t.Errorf("commits after failure = %d, want 1", got)
	}
}

func TestStats(t *testing.T) {
	cfg := testConfig(func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go func() {
			defer sc.Close()
			m, _, err := wire.ReadMsg(sc)
			if err != nil {
				return
			}
			if _, ok := m.(wire.Stats); !ok {
				t.Errorf("got %T, want Stats", m)
				return
			}
			wire.WriteMsg(sc, wire.StatsReply{Counters: []wire.Counter{{Name: "commits", Val: 3}}})
		}()
		return cc, nil
	})
	c := New(cfg)
	defer c.Close()
	counters, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(counters) != 1 || counters[0].Name != "commits" || counters[0].Val != 3 {
		t.Errorf("counters = %+v", counters)
	}
}
