package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/exec"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/wire"
)

func testMuxConfig(dial func() (net.Conn, error)) MuxConfig {
	return MuxConfig{
		Dial:           dial,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    8,
		Backoff:        exec.Backoff{Base: time.Microsecond, Cap: time.Microsecond},
	}
}

// muxPeer is a scripted v3 server end: tests read tagged frames off
// incoming and reply with reply (concurrency-safe, each frame tagged).
type muxPeer struct {
	conn net.Conn
	wmu  sync.Mutex
}

// incoming yields each tagged BeginProgram as (stream, program name),
// until the connection dies.
func (p *muxPeer) incoming(t *testing.T, out chan<- [2]uint64) {
	t.Helper()
	br := bufio.NewReader(p.conn)
	for {
		f, _, err := wire.ReadFrame(br)
		if err != nil {
			close(out)
			return
		}
		bp, ok := f.Msg.(wire.BeginProgram)
		if !ok || !f.Tagged {
			t.Errorf("peer got %#v, want a tagged BeginProgram", f)
			close(out)
			return
		}
		// Program names are "p<i>"; carry i next to the stream tag.
		idx, err := strconv.Atoi(bp.Name[1:])
		if err != nil {
			t.Errorf("program name %q, want p<i>", bp.Name)
		}
		out <- [2]uint64{uint64(f.Stream), uint64(idx)}
	}
}

func (p *muxPeer) reply(t *testing.T, stream uint32, m wire.Msg) {
	t.Helper()
	frame, err := wire.EncodeTagged(stream, m)
	if err != nil {
		t.Errorf("peer encode: %v", err)
		return
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if _, err := p.conn.Write(frame); err != nil {
		t.Logf("peer write: %v", err)
	}
}

// numberedProgram builds the trivial program "p<i>" whose commit the
// scripted peer can attribute.
func numberedProgram(t *testing.T, i int) *txn.Program {
	t.Helper()
	return sim.TransferProgram(fmt.Sprintf("p%d", i), "e0", "e1", 1, 0)
}

// TestMuxDemuxOutOfOrder runs several concurrent RunOnce calls over ONE
// connection and has the peer answer them in reverse arrival order:
// each caller must receive exactly its own verdict, proving the stream
// tags — not arrival order — route replies.
func TestMuxDemuxOutOfOrder(t *testing.T) {
	const streams = 3
	dials := 0
	var peer *muxPeer
	arrivals := make(chan [2]uint64, streams)
	m := NewMux(testMuxConfig(func() (net.Conn, error) {
		dials++
		if dials > 1 {
			t.Fatalf("unexpected dial #%d", dials)
		}
		cc, sc := net.Pipe()
		peer = &muxPeer{conn: sc}
		go peer.incoming(t, arrivals)
		return cc, nil
	}))
	defer m.Close()

	// The peer waits for all three submissions, then verdicts them
	// newest-first, tagging each Committed with the program index it
	// belongs to.
	go func() {
		var got [][2]uint64
		for a := range arrivals {
			got = append(got, a)
			if len(got) == streams {
				for i := len(got) - 1; i >= 0; i-- {
					peer.reply(t, uint32(got[i][0]), wire.Committed{
						Txn:    int64(got[i][1]),
						Locals: []wire.LocalDecl{{Name: "n", Val: int64(got[i][1])}},
					})
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := m.RunOnce(numberedProgram(t, i))
			if err != nil {
				errs[i] = err
				return
			}
			if res.Locals["n"] != int64(i) {
				errs[i] = fmt.Errorf("stream %d got verdict for program %d", i, res.Locals["n"])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
}

// TestMuxRollbackNotificationPerStream delivers a rollback notification
// to one of two in-flight streams: only that stream's result may carry
// it.
func TestMuxRollbackNotificationPerStream(t *testing.T) {
	arrivals := make(chan [2]uint64, 2)
	var peer *muxPeer
	m := NewMux(testMuxConfig(func() (net.Conn, error) {
		cc, sc := net.Pipe()
		peer = &muxPeer{conn: sc}
		go peer.incoming(t, arrivals)
		return cc, nil
	}))
	defer m.Close()

	go func() {
		var got [][2]uint64
		for a := range arrivals {
			got = append(got, a)
			if len(got) == 2 {
				for _, g := range got {
					stream, idx := uint32(g[0]), int64(g[1])
					if idx == 0 { // only program p0 is rolled back first
						peer.reply(t, stream, wire.RolledBack{Txn: idx, Lost: 2})
					}
					peer.reply(t, stream, wire.Committed{Txn: idx})
				}
			}
		}
	}()

	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = m.RunOnce(numberedProgram(t, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	if n := len(results[0].RolledBack); n != 1 {
		t.Errorf("rolled-back stream carries %d notifications, want 1", n)
	}
	if n := len(results[1].RolledBack); n != 0 {
		t.Errorf("clean stream carries %d notifications, want 0", n)
	}
}

// TestMuxRunRedialsAfterTransportFailure kills the first connection
// mid-request: Run must fail every pending stream with a retryable
// error, redial, and commit on the second attempt.
func TestMuxRunRedialsAfterTransportFailure(t *testing.T) {
	dials := 0
	arrivals := make(chan [2]uint64, 1)
	m := NewMux(testMuxConfig(func() (net.Conn, error) {
		dials++
		cc, sc := net.Pipe()
		switch dials {
		case 1:
			go func() {
				// Swallow the submission, then die without a verdict.
				br := bufio.NewReader(sc)
				_, _, _ = wire.ReadFrame(br)
				sc.Close()
			}()
		default:
			peer := &muxPeer{conn: sc}
			go peer.incoming(t, arrivals)
			go func() {
				for a := range arrivals {
					peer.reply(t, uint32(a[0]), wire.Committed{Txn: int64(a[1])})
				}
			}()
		}
		return cc, nil
	}))
	defer m.Close()

	res, err := m.Run(context.Background(), numberedProgram(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	if dials != 2 {
		t.Errorf("dials = %d, want 2", dials)
	}
}

// TestMuxCloseFailsPending closes the Mux with a request in flight: the
// blocked RunOnce must fail promptly instead of hanging on its verdict.
func TestMuxCloseFailsPending(t *testing.T) {
	started := make(chan struct{})
	m := NewMux(testMuxConfig(func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go func() {
			br := bufio.NewReader(sc)
			_, _, _ = wire.ReadFrame(br) // swallow the submission, never reply
			close(started)
			for { // keep the conn open until the client closes it
				if _, _, err := wire.ReadFrame(br); err != nil {
					return
				}
			}
		}()
		return cc, nil
	}))

	errCh := make(chan error, 1)
	go func() {
		_, err := m.RunOnce(numberedProgram(t, 0))
		errCh <- err
	}()
	<-started
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("pending RunOnce returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending RunOnce still blocked after Close")
	}
	if _, err := m.RunOnce(numberedProgram(t, 1)); !errors.Is(err, errMuxClosed) {
		t.Errorf("RunOnce after Close = %v, want errMuxClosed", err)
	}
}
