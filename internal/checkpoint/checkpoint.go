// Package checkpoint bounds recovery over the write-ahead log: it
// periodically persists a consistent snapshot of the committed entity
// state together with the WAL sequence frontier it covers, so startup
// can load the newest valid checkpoint and replay only the log tail
// behind it — recovery time tracks the tail length, not total history,
// and redo logs can be compacted (sealed segments wholly covered by a
// retained checkpoint are deleted).
//
// The paper's deferred-update discipline (§4) is what makes a
// checkpoint this cheap: the global store only ever holds
// committed-or-unlocked values — uncommitted work lives in
// per-transaction copies — so a snapshot of the store is automatically
// transaction-consistent. No undo bookkeeping, no dirty-page table,
// no log anchoring beyond one frontier number. The only atomicity the
// snapshot needs is against a commit's multi-entity install sequence,
// which the engine's Quiesce hook provides for the microseconds two
// slice copies take.
//
// # File format
//
// A checkpoint file (ckpt-<frontier>.ckpt, frontier zero-padded so
// lexicographic order is numeric order) is:
//
//	magic    uint32  0x5052434b ("PRCK")
//	version  uint16  1
//	frontier uint64  WAL sequence frontier the snapshot covers
//	count    uint64  number of entries
//	entry*   nameLen uint16, name []byte, value int64
//	crc      uint32  IEEE CRC-32 of everything above
//
// Files are written crash-safely: temp file, fsync, rename, parent
// directory fsync — the same discipline as internal/wal. A reader
// therefore never sees a half-written checkpoint under a named path;
// the CRC is defense in depth (a torn or bit-rotted file is skipped
// and recovery falls back to the next older valid checkpoint, paying
// with a longer tail replay).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"partialrollback/internal/wal"
)

const (
	magic   uint32 = 0x5052434b // "PRCK"
	version uint16 = 1
)

// ErrInvalid is wrapped by Load errors caused by framing, version, or
// checksum damage — a torn or corrupt checkpoint. Callers fall back to
// an older checkpoint (or full log replay) rather than failing.
var ErrInvalid = errors.New("checkpoint: invalid or torn checkpoint")

// Entry is one entity's checkpointed value.
type Entry struct {
	Name string
	Val  int64
}

// State is a decoded checkpoint: the committed entity values as of the
// moment every WAL record with sequence number <= Frontier was
// reflected in the store. Recovery loads Entries and then replays only
// log records with sequence numbers beyond Frontier.
type State struct {
	Frontier uint64
	Entries  []Entry
}

// Segment describes one sealed (rotated-away, immutable) WAL segment.
// Every record in it has sequence number <= MaxSeq, so the segment is
// garbage once a retained checkpoint's frontier reaches MaxSeq.
type Segment struct {
	Shard  int
	Path   string
	MaxSeq uint64
	Bytes  int64
}

// FileName returns the checkpoint file name for a frontier. The
// frontier is zero-padded to 20 digits (the full uint64 range) so the
// lexicographic order of names is the numeric order of frontiers.
func FileName(frontier uint64) string {
	return fmt.Sprintf("ckpt-%020d.ckpt", frontier)
}

// ParseFileName extracts the frontier from a checkpoint file name (the
// base name, not a path).
func ParseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Append encodes st onto dst and returns the extended slice.
func Append(dst []byte, st State) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, magic)
	dst = binary.LittleEndian.AppendUint16(dst, version)
	dst = binary.LittleEndian.AppendUint64(dst, st.Frontier)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(st.Entries)))
	for _, e := range st.Entries {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Val))
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// Decode parses a checkpoint image. Any damage — short file, bad
// magic/version, count mismatch, checksum failure — wraps ErrInvalid.
func Decode(data []byte) (State, error) {
	var st State
	if len(data) < 4+2+8+8+4 {
		return st, fmt.Errorf("%w: short file (%d bytes)", ErrInvalid, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return st, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	if m := binary.LittleEndian.Uint32(body); m != magic {
		return st, fmt.Errorf("%w: bad magic %#x", ErrInvalid, m)
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != version {
		return st, fmt.Errorf("%w: unsupported version %d", ErrInvalid, v)
	}
	st.Frontier = binary.LittleEndian.Uint64(body[6:])
	count := binary.LittleEndian.Uint64(body[14:])
	off := 22
	st.Entries = make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		if off+2 > len(body) {
			return State{}, fmt.Errorf("%w: truncated entry %d", ErrInvalid, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+8 > len(body) {
			return State{}, fmt.Errorf("%w: truncated entry %d", ErrInvalid, i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		val := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		st.Entries = append(st.Entries, Entry{Name: name, Val: val})
	}
	if off != len(body) {
		return State{}, fmt.Errorf("%w: %d trailing bytes", ErrInvalid, len(body)-off)
	}
	return st, nil
}

// WriteOptions tunes Write.
type WriteOptions struct {
	// TempDelay sleeps between the temp file's fsync and the rename
	// that publishes it — widening the crash window in which a
	// checkpoint exists only as a .tmp file. Kill -9 harness only
	// (scripts/smoke_recovery.sh); zero in production.
	TempDelay time.Duration
}

// Write persists st into dir crash-safely (temp + fsync + rename +
// parent-dir fsync) and returns the final path and encoded size. After
// a crash at any point, dir holds either the complete new checkpoint
// or no trace of it beyond a stale temp file (see RemoveTemps).
func Write(dir string, st State, opt WriteOptions) (string, int64, error) {
	buf := Append(nil, st)
	final := filepath.Join(dir, FileName(st.Frontier))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", 0, fmt.Errorf("checkpoint: write: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return "", 0, fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", 0, fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return "", 0, fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if opt.TempDelay > 0 {
		time.Sleep(opt.TempDelay)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", 0, fmt.Errorf("checkpoint: publish %s: %w", final, err)
	}
	if err := wal.SyncDir(dir); err != nil {
		return "", 0, err
	}
	return final, int64(len(buf)), nil
}

// Load reads and decodes one checkpoint file.
func Load(path string) (State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return State{}, fmt.Errorf("checkpoint: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return State{}, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return st, nil
}

// File is one checkpoint file found in a directory.
type File struct {
	Path     string
	Frontier uint64
	Bytes    int64
}

// List returns the checkpoint files in dir, newest frontier first.
// Temp files and unparsable names are ignored.
func List(dir string) ([]File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []File
	for _, p := range paths {
		fr, ok := ParseFileName(filepath.Base(p))
		if !ok {
			continue
		}
		var size int64
		if st, err := os.Stat(p); err == nil {
			size = st.Size()
		}
		out = append(out, File{Path: p, Frontier: fr, Bytes: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frontier > out[j].Frontier })
	return out, nil
}

// LoadLatest returns the newest checkpoint in dir that decodes
// cleanly, preferring an older valid checkpoint over a newer torn one
// (the fallback just replays a longer log tail). Invalid files are
// reported by base name so callers can log them loudly — with the
// crash-safe Write discipline they indicate storage damage, not an
// ordinary crash. A nil state with nil error means no checkpoint
// exists (full log replay).
func LoadLatest(dir string) (*State, string, []string, error) {
	files, err := List(dir)
	if err != nil {
		return nil, "", nil, err
	}
	var invalid []string
	for _, f := range files {
		st, err := Load(f.Path)
		if err != nil {
			invalid = append(invalid, filepath.Base(f.Path))
			continue
		}
		return &st, f.Path, invalid, nil
	}
	return nil, "", invalid, nil
}

// RemoveTemps deletes stale checkpoint temp files (a crash between a
// temp write and its rename leaves one behind). Called once at open.
func RemoveTemps(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt.tmp"))
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	n := 0
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return n, fmt.Errorf("checkpoint: remove %s: %w", p, err)
		}
		n++
	}
	return n, nil
}
