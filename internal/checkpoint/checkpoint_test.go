package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	st := State{Frontier: 42, Entries: []Entry{
		{Name: "acct0", Val: 100},
		{Name: "acct1", Val: -3},
		{Name: "e0", Val: 1 << 40},
	}}
	got, err := Decode(Append(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Frontier != st.Frontier || len(got.Entries) != len(st.Entries) {
		t.Fatalf("round trip = %+v", got)
	}
	for i, e := range got.Entries {
		if e != st.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, e, st.Entries[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	got, err := Decode(Append(nil, State{Frontier: 7}))
	if err != nil || got.Frontier != 7 || len(got.Entries) != 0 {
		t.Fatalf("empty round trip = %+v, %v", got, err)
	}
}

func TestCodecDamageDetected(t *testing.T) {
	buf := Append(nil, State{Frontier: 9, Entries: []Entry{{Name: "x", Val: 1}}})
	cases := map[string][]byte{
		"truncated": buf[:len(buf)-3],
		"short":     buf[:5],
		"empty":     nil,
	}
	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)/2] ^= 0x01
	cases["bitflip"] = flipped
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	for _, fr := range []uint64{0, 1, 42, 1 << 50} {
		fr2, ok := ParseFileName(FileName(fr))
		if !ok || fr2 != fr {
			t.Errorf("ParseFileName(FileName(%d)) = %d, %v", fr, fr2, ok)
		}
	}
	for _, bad := range []string{"ckpt-.ckpt", "ckpt-x.ckpt", "wal-0.log", "ckpt-5.ckpt.tmp"} {
		if _, ok := ParseFileName(bad); ok {
			t.Errorf("ParseFileName(%s) accepted", bad)
		}
	}
}

func TestWriteLoadLatest(t *testing.T) {
	dir := t.TempDir()
	if st, path, _, err := LoadLatest(dir); err != nil || st != nil || path != "" {
		t.Fatalf("empty dir LoadLatest = %v, %q, %v", st, path, err)
	}
	for _, fr := range []uint64{3, 10, 7} {
		if _, _, err := Write(dir, State{Frontier: fr, Entries: []Entry{{Name: "e", Val: int64(fr)}}}, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	files, err := List(dir)
	if err != nil || len(files) != 3 {
		t.Fatalf("List = %v, %v", files, err)
	}
	if files[0].Frontier != 10 || files[2].Frontier != 3 {
		t.Fatalf("List order = %+v, want newest first", files)
	}
	st, path, invalid, err := LoadLatest(dir)
	if err != nil || len(invalid) != 0 {
		t.Fatal(err, invalid)
	}
	if st.Frontier != 10 || filepath.Base(path) != FileName(10) {
		t.Fatalf("LoadLatest = %+v, %s", st, path)
	}

	// Corrupt the newest: LoadLatest falls back to the next older one
	// and names the skipped file.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, path2, invalid, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frontier != 7 || len(invalid) != 1 || invalid[0] != FileName(10) {
		t.Fatalf("fallback = frontier %d, invalid %v", st.Frontier, invalid)
	}
	if filepath.Base(path2) != FileName(7) {
		t.Fatalf("fallback path = %s", path2)
	}
}

func TestRemoveTemps(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, FileName(5)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := RemoveTemps(dir)
	if err != nil || n != 1 {
		t.Fatalf("RemoveTemps = %d, %v", n, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file survived")
	}
}

// fakeSource is a Source whose frontier and segments the test controls.
type fakeSource struct {
	mu       sync.Mutex
	dir      string
	frontier uint64
	bytes    int64
	segs     []Segment
	rotates  int
}

func (f *fakeSource) Dir() string { return f.dir }
func (f *fakeSource) Frontier() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frontier
}
func (f *fakeSource) AppendedBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}
func (f *fakeSource) Rotate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rotates++
	return nil
}
func (f *fakeSource) SealedSegments() []Segment {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Segment(nil), f.segs...)
}
func (f *fakeSource) RemoveSealed(seg Segment) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.segs {
		if f.segs[i].Path == seg.Path {
			f.segs = append(f.segs[:i], f.segs[i+1:]...)
			break
		}
	}
	return nil
}

type fakeQuiescer struct{ quiesces int }

func (q *fakeQuiescer) Quiesce(fn func()) { q.quiesces++; fn() }

// TestCheckpointerRetentionAndCompaction: segments are deleted only
// once the OLDEST retained checkpoint covers them, and checkpoints
// are pruned to Retain.
func TestCheckpointerRetentionAndCompaction(t *testing.T) {
	dir := t.TempDir()
	src := &fakeSource{dir: dir, frontier: 10, segs: []Segment{
		{Shard: 0, Path: "seg-a", MaxSeq: 5, Bytes: 100},
		{Shard: 0, Path: "seg-b", MaxSeq: 15, Bytes: 200},
	}}
	q := &fakeQuiescer{}
	entries := []Entry{{Name: "e0", Val: 1}}
	cp := New(src, q, SnapshotFunc(func() []Entry { return entries }), Options{Retain: 2})

	if err := cp.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if q.quiesces != 1 || src.rotates != 1 {
		t.Fatalf("quiesces=%d rotates=%d", q.quiesces, src.rotates)
	}
	// One checkpoint at frontier 10: seg-a (MaxSeq 5) is covered,
	// seg-b (15) is not.
	if got := src.SealedSegments(); len(got) != 1 || got[0].Path != "seg-b" {
		t.Fatalf("segments after first checkpoint = %+v", got)
	}

	// Second checkpoint at frontier 20. Retained: {20, 10}; oldest
	// retained frontier is 10, so seg-b (15) must STILL survive —
	// recovery falling back to ckpt-10 needs it.
	src.mu.Lock()
	src.frontier = 20
	src.mu.Unlock()
	if err := cp.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if got := src.SealedSegments(); len(got) != 1 || got[0].Path != "seg-b" {
		t.Fatalf("oldest-retained rule violated: segments = %+v", got)
	}

	// Third at frontier 30: retained {30, 20}, ckpt-10 pruned, oldest
	// retained is now 20 >= 15, so seg-b goes.
	src.mu.Lock()
	src.frontier = 30
	src.mu.Unlock()
	if err := cp.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if got := src.SealedSegments(); len(got) != 0 {
		t.Fatalf("covered segment survived: %+v", got)
	}
	files, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Frontier != 30 || files[1].Frontier != 20 {
		t.Fatalf("retained checkpoints = %+v, want frontiers 30, 20", files)
	}
	st := cp.Status()
	if st.Checkpoints != 3 || st.LastFrontier != 30 || st.Errors != 0 {
		t.Fatalf("status = %+v", st)
	}
	cp.Close()
	if err := cp.CheckpointNow(); !errors.Is(err, ErrClosed) {
		t.Fatalf("CheckpointNow after Close = %v", err)
	}
}

// TestCheckpointerIntervalTrigger: the background loop fires on its
// own.
func TestCheckpointerIntervalTrigger(t *testing.T) {
	dir := t.TempDir()
	src := &fakeSource{dir: dir, frontier: 1}
	cp := New(src, &fakeQuiescer{}, SnapshotFunc(func() []Entry { return nil }), Options{
		Interval: 2 * time.Millisecond,
	})
	cp.Start()
	deadline := time.Now().Add(2 * time.Second)
	for cp.Status().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cp.Close()
	if cp.Status().Checkpoints == 0 {
		t.Fatal("interval trigger never fired")
	}
}

// TestCheckpointerByteTrigger: appended bytes past the threshold
// trigger a checkpoint without any interval.
func TestCheckpointerByteTrigger(t *testing.T) {
	dir := t.TempDir()
	src := &fakeSource{dir: dir, frontier: 1}
	cp := New(src, &fakeQuiescer{}, SnapshotFunc(func() []Entry { return nil }), Options{
		Bytes: 1000,
	})
	cp.Start()
	defer cp.Close()
	time.Sleep(120 * time.Millisecond)
	if n := cp.Status().Checkpoints; n != 0 {
		t.Fatalf("checkpoint fired below the byte threshold (%d)", n)
	}
	src.mu.Lock()
	src.bytes = 5000
	src.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for cp.Status().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cp.Status().Checkpoints == 0 {
		t.Fatal("byte trigger never fired")
	}
}
