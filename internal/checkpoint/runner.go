package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"partialrollback/internal/wal"
)

// Source is the durability layer a Checkpointer drains — implemented
// by durable.Set. (checkpoint sits below durable in the import graph,
// so the dependency points this way.)
type Source interface {
	// Dir is the directory holding the logs; checkpoints live beside
	// them.
	Dir() string
	// Frontier returns the global sequence number; read inside the
	// Snapshot callback's quiesce it exactly covers the installed
	// state.
	Frontier() uint64
	// AppendedBytes is the monotonic count of log bytes written by
	// this process (the byte-trigger's input).
	AppendedBytes() int64
	// Rotate seals every shard's non-empty active segment.
	Rotate() error
	// SealedSegments lists sealed segments still on disk.
	SealedSegments() []Segment
	// RemoveSealed deletes one sealed segment (disk + bookkeeping).
	RemoveSealed(Segment) error
}

// Quiescer matches core.Quiescer without importing core: fn runs with
// every engine mutex held, excluding all installs and log appends.
type Quiescer interface {
	Quiesce(fn func())
}

// Snapshotter captures the committed entity state. Implemented by a
// small adapter over entity.Store in the caller (cmd/prserver and the
// tests), keeping this package free of an entity dependency.
type Snapshotter interface {
	// Snapshot returns the current entries. Called inside Quiesce, so
	// it must be fast and must not block on the engine.
	Snapshot() []Entry
}

// SnapshotFunc adapts a function to Snapshotter.
type SnapshotFunc func() []Entry

// Snapshot implements Snapshotter.
func (f SnapshotFunc) Snapshot() []Entry { return f() }

// Options tunes a Checkpointer.
type Options struct {
	// Interval triggers a checkpoint this long after the previous one
	// (or after Start). Zero or negative disables the time trigger.
	Interval time.Duration
	// Bytes triggers a checkpoint once this many new log bytes have
	// been appended since the previous one. Zero or negative disables
	// the byte trigger.
	Bytes int64
	// Retain keeps this many newest checkpoints on disk (minimum 1;
	// default 2, so one freshly-written checkpoint being invalid — a
	// storage fault — still leaves a valid base). Sealed log segments
	// are deleted only once the OLDEST retained checkpoint covers
	// them, so every retained checkpoint remains a usable recovery
	// base.
	Retain int
	// PhaseDelay sleeps between checkpoint phases (after rotation,
	// between the temp file's fsync and its rename, after publication,
	// and between retention removals), widening each crash window so
	// the kill -9 harness (scripts/smoke_recovery.sh) can land a kill
	// inside any of them deterministically. Zero in production.
	PhaseDelay time.Duration
	// OnCheckpoint, when non-nil, is called after every completed
	// checkpoint, outside all locks (metrics export).
	OnCheckpoint func(Info)
	// Logf, when non-nil, receives one line per checkpoint and any
	// background errors (e.g. log.Printf).
	Logf func(format string, args ...any)
}

// Info describes one completed checkpoint.
type Info struct {
	// Frontier is the WAL sequence frontier the checkpoint covers.
	Frontier uint64
	// Entities and Bytes are the snapshot's entry count and encoded
	// file size.
	Entities int
	Bytes    int64
	// SegmentsRemoved and SegmentBytesRemoved count the sealed log
	// segments (and their bytes) compacted away by this checkpoint's
	// retention pass.
	SegmentsRemoved     int
	SegmentBytesRemoved int64
	// CheckpointsRemoved counts old checkpoint files pruned.
	CheckpointsRemoved int
	// Duration is the end-to-end wall time (rotation through
	// compaction); QuiesceDuration is the engine-stalling part — the
	// snapshot copy under Quiesce, microseconds for in-memory stores.
	Duration        time.Duration
	QuiesceDuration time.Duration
}

// Status is a Checkpointer's point-in-time accounting, served by the
// /debug/wal admin endpoint.
type Status struct {
	// Checkpoints counts completed checkpoints this process.
	Checkpoints int64 `json:"checkpoints"`
	// LastFrontier, LastEntities, LastBytes, and LastUnix describe the
	// most recent checkpoint this process wrote (zero before the
	// first).
	LastFrontier uint64 `json:"lastFrontier"`
	LastEntities int    `json:"lastEntities"`
	LastBytes    int64  `json:"lastBytes"`
	LastUnix     int64  `json:"lastUnix"`
	// Errors counts failed checkpoint attempts (the runner keeps
	// going; the next trigger retries).
	Errors int64 `json:"errors"`
}

// Checkpointer runs the fuzzy-checkpoint procedure: rotate the active
// segments, capture a commit-consistent snapshot plus frontier under
// engine quiesce, write it crash-safely, prune old checkpoints to
// Retain, and delete sealed segments wholly covered by the oldest
// retained checkpoint. A background goroutine triggers it by interval
// and/or appended-bytes; CheckpointNow triggers it synchronously.
type Checkpointer struct {
	src  Source
	eng  Quiescer
	snap Snapshotter
	opts Options

	mu         sync.Mutex
	status     Status
	lastBytes  int64 // Source.AppendedBytes at the previous checkpoint
	running    bool  // a checkpoint is in progress (CheckpointNow vs ticker)
	started    bool  // Start launched the trigger loop
	closed     bool
	wakeClosed chan struct{}
	done       chan struct{}
}

// New prepares a Checkpointer; Start launches its background trigger
// loop. src, eng, and snap must be non-nil.
func New(src Source, eng Quiescer, snap Snapshotter, opts Options) *Checkpointer {
	if opts.Retain < 1 {
		opts.Retain = 2
	}
	return &Checkpointer{
		src: src, eng: eng, snap: snap, opts: opts,
		wakeClosed: make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the background trigger loop. With both triggers
// disabled it still starts (CheckpointNow keeps working) but the loop
// only waits for Close. Start is idempotent and a no-op after Close.
func (c *Checkpointer) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.closed {
		return
	}
	c.started = true
	go c.loop()
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	// The byte trigger is polled: cheap (two atomic loads) and avoids
	// threading a notification channel through the append hot path.
	poll := 50 * time.Millisecond
	var timer *time.Timer
	var timerC <-chan time.Time
	if c.opts.Interval > 0 {
		timer = time.NewTimer(c.opts.Interval)
		timerC = timer.C
		defer timer.Stop()
	}
	var pollT *time.Ticker
	var pollC <-chan time.Time
	if c.opts.Bytes > 0 {
		pollT = time.NewTicker(poll)
		pollC = pollT.C
		defer pollT.Stop()
	}
	for {
		select {
		case <-c.wakeClosed:
			return
		case <-timerC:
			if err := c.CheckpointNow(); err != nil && !errors.Is(err, ErrClosed) {
				c.logf("checkpoint: %v", err)
			}
			timer.Reset(c.opts.Interval)
		case <-pollC:
			c.mu.Lock()
			due := c.src.AppendedBytes()-c.lastBytes >= c.opts.Bytes
			c.mu.Unlock()
			if !due {
				continue
			}
			if err := c.CheckpointNow(); err != nil && !errors.Is(err, ErrClosed) {
				c.logf("checkpoint: %v", err)
			}
			if timer != nil { // a byte-triggered checkpoint resets the clock
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(c.opts.Interval)
			}
		}
	}
}

// ErrClosed is returned by CheckpointNow after Close.
var ErrClosed = errors.New("checkpoint: closed")

// errBusy is returned when another checkpoint is already in flight;
// callers treat it as success (the in-flight one covers them).
var errBusy = errors.New("checkpoint: already in progress")

// CheckpointNow runs one full checkpoint synchronously. Concurrent
// calls coalesce: if a checkpoint is already in flight the call
// returns nil without taking another.
func (c *Checkpointer) CheckpointNow() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.running {
		c.mu.Unlock()
		return nil
	}
	c.running = true
	c.mu.Unlock()

	info, err := c.checkpoint()

	c.mu.Lock()
	c.running = false
	if err != nil {
		c.status.Errors++
	} else {
		c.status.Checkpoints++
		c.status.LastFrontier = info.Frontier
		c.status.LastEntities = info.Entities
		c.status.LastBytes = info.Bytes
		c.status.LastUnix = time.Now().Unix()
		c.lastBytes = c.src.AppendedBytes()
	}
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.opts.OnCheckpoint != nil {
		c.opts.OnCheckpoint(info)
	}
	c.logf("checkpoint: wrote %s (%d entities, %d bytes) in %s (quiesce %s), removed %d segment(s) (%d bytes), pruned %d checkpoint(s)",
		FileName(info.Frontier), info.Entities, info.Bytes, info.Duration.Round(time.Microsecond),
		info.QuiesceDuration.Round(time.Microsecond), info.SegmentsRemoved, info.SegmentBytesRemoved, info.CheckpointsRemoved)
	return nil
}

// checkpoint is the procedure body. Crash analysis, phase by phase:
//
//  1. Rotate: seals active segments. A crash after leaves extra sealed
//     files — recovery scans them like any log file.
//  2. Quiesce + snapshot: reads frontier G and copies the store while
//     every engine mutex is held. Installs happen before sequence
//     assignment, both under the engine mutex, so the snapshot
//     reflects exactly the records with seq <= G: commit-consistent,
//     no half-applied multi-entity commit. Rotation happened BEFORE
//     the snapshot, so every sealed segment's MaxSeq <= G.
//  3. Write: temp + fsync + rename + dir fsync. A crash before the
//     rename leaves only a temp file (removed at next open); after,
//     the checkpoint is durable and complete.
//  4. Prune checkpoints to Retain newest; then delete sealed segments
//     with MaxSeq <= the OLDEST retained checkpoint's frontier. A
//     crash anywhere here leaves extra files, never missing state:
//     recovery tolerates both surplus checkpoints and surplus
//     segments (replaying a covered segment re-installs values the
//     checkpoint already holds — records are absolute, so idempotent).
func (c *Checkpointer) checkpoint() (Info, error) {
	var info Info
	start := time.Now()

	if err := c.src.Rotate(); err != nil {
		return info, fmt.Errorf("rotate: %w", err)
	}
	c.phaseDelay()

	var st State
	qStart := time.Now()
	c.eng.Quiesce(func() {
		st.Frontier = c.src.Frontier()
		st.Entries = c.snap.Snapshot()
	})
	info.QuiesceDuration = time.Since(qStart)
	info.Frontier = st.Frontier
	info.Entities = len(st.Entries)
	// Sorting happens outside the quiesce (it stalls the engine) but
	// before the write: name order keeps recovery's intern-ID
	// assignment for new names deterministic, matching the log-replay
	// path.
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].Name < st.Entries[j].Name })

	_, size, err := Write(c.src.Dir(), st, WriteOptions{TempDelay: c.opts.PhaseDelay})
	if err != nil {
		return info, err
	}
	info.Bytes = size
	c.phaseDelay()

	files, err := List(c.src.Dir())
	if err != nil {
		return info, err
	}
	for _, f := range files[min(len(files), c.opts.Retain):] {
		if err := os.Remove(f.Path); err != nil && !os.IsNotExist(err) {
			return info, fmt.Errorf("checkpoint: prune %s: %w", f.Path, err)
		}
		info.CheckpointsRemoved++
		c.phaseDelay()
	}
	if info.CheckpointsRemoved > 0 {
		if err := wal.SyncDir(c.src.Dir()); err != nil {
			return info, err
		}
	}

	// Compaction: a segment is garbage only when the OLDEST retained
	// checkpoint already covers it, so falling back to any retained
	// checkpoint still finds every record it needs.
	retained := files[:min(len(files), c.opts.Retain)]
	safeSeq := uint64(0)
	if len(retained) > 0 {
		safeSeq = retained[len(retained)-1].Frontier
	}
	for _, seg := range c.src.SealedSegments() {
		if seg.MaxSeq > safeSeq {
			continue
		}
		if err := c.src.RemoveSealed(seg); err != nil {
			return info, err
		}
		info.SegmentsRemoved++
		info.SegmentBytesRemoved += seg.Bytes
		c.phaseDelay()
	}

	info.Duration = time.Since(start)
	return info, nil
}

func (c *Checkpointer) phaseDelay() {
	if c.opts.PhaseDelay > 0 {
		time.Sleep(c.opts.PhaseDelay)
	}
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Status returns the runner's accounting.
func (c *Checkpointer) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// Close stops the background loop and waits for any in-flight
// checkpoint to finish. Call after draining the engine and before
// closing the log set, so a final CheckpointNow (if desired) still has
// a live Source.
func (c *Checkpointer) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.wakeClosed)
	}
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
	// The loop is gone, but a CheckpointNow caller may still be in
	// checkpoint(); running flips false only under mu, so waiting for
	// it here makes Close a full barrier.
	for {
		c.mu.Lock()
		r := c.running
		c.mu.Unlock()
		if !r {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
