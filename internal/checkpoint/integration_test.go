package checkpoint_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"partialrollback/internal/checkpoint"
	"partialrollback/internal/core"
	"partialrollback/internal/durable"
	"partialrollback/internal/entity"
	"partialrollback/internal/exec"
	"partialrollback/internal/intern"
	"partialrollback/internal/shard"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

// storeSnapshotter is the same adapter cmd/prserver wires: copy the
// store's slices under quiesce and resolve interned names.
func storeSnapshotter(store *entity.Store) checkpoint.SnapshotFunc {
	var vals []int64
	var defined []bool
	return func() []checkpoint.Entry {
		vals, defined, _ = store.SnapshotSlices(vals, defined)
		entries := make([]checkpoint.Entry, 0, len(vals))
		for i, ok := range defined {
			if !ok {
				continue
			}
			entries = append(entries, checkpoint.Entry{Name: store.NameOf(intern.ID(i)), Val: vals[i]})
		}
		return entries
	}
}

// TestConcurrentCheckpointsAreCommitConsistent runs a contended
// banking workload on the sharded engine while a checkpointer fires
// every couple of milliseconds, then asserts the fuzzy-snapshot
// correctness claim directly: EVERY checkpoint written during the run
// must satisfy the balance-sum invariant (a snapshot catching a
// half-installed transfer would be off by the transfer amount), and
// recovery from the newest checkpoint plus log tail must reproduce
// the engine's exact final state.
func TestConcurrentCheckpointsAreCommitConsistent(t *testing.T) {
	const accounts, transfers, balance = 8, 150, 100
	dir := t.TempDir()
	w := sim.BankingWorkload(accounts, transfers, balance, 3)
	store := w.NewStore()
	set, _, err := durable.Open(dir, 2, store, durable.Options{Mode: durable.SyncOff})
	if err != nil {
		t.Fatal(err)
	}

	notif := exec.NewNotifier()
	eng := shard.New(2, core.Config{
		Store:     store,
		Strategy:  core.MCS,
		CommitLog: set,
		OnEvent:   notif.OnEvent,
	})
	cp := checkpoint.New(set, eng, storeSnapshotter(store), checkpoint.Options{
		Interval: 2 * time.Millisecond,
		Retain:   2,
	})
	cp.Start()

	ids := make([]txn.ID, 0, len(w.Programs))
	for _, p := range w.Programs {
		id, err := eng.Register(p)
		if err != nil {
			t.Fatal(err)
		}
		notif.Register(id)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id txn.ID) {
			defer wg.Done()
			wake := notif.Register(id)
			if err := exec.StepToCommitBurst(context.Background(), eng, id, wake, 0, 4); err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := cp.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	files, err := checkpoint.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checkpoints written during the run")
	}
	for _, f := range files {
		st, err := checkpoint.Load(f.Path)
		if err != nil {
			t.Fatalf("%s: %v", f.Path, err)
		}
		var sum int64
		n := 0
		for _, e := range st.Entries {
			if strings.HasPrefix(e.Name, "acct") {
				sum += e.Val
				n++
			}
		}
		if n != accounts || sum != int64(accounts)*balance {
			t.Errorf("%s: %d accounts sum to %d, want %d of them summing to %d — snapshot not commit-consistent",
				f.Path, n, sum, accounts, int64(accounts)*balance)
		}
	}

	final := store.Snapshot()
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := w.NewStore()
	set2, info, err := durable.Open(dir, 2, fresh, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if info.CheckpointFile == "" {
		t.Error("recovery did not use a checkpoint base")
	}
	for name, want := range final {
		if got := fresh.MustGet(name); got != want {
			t.Errorf("%s: recovered %d, final %d", name, got, want)
		}
	}
	if err := fresh.CheckConsistent(); err != nil {
		t.Errorf("recovered store violates invariant: %v", err)
	}
}
