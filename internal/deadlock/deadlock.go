// Package deadlock implements victim selection for deadlock removal
// (§3). Detection itself is a cycle search in the concurrency graph
// (internal/waitfor); this package decides *who* to roll back and *how
// far*, given the cycles closed by one lock request and per-victim
// rollback plans computed by the engine.
//
// All cycles closed by a single wait response pass through the
// requesting transaction (§3.2), so rolling back the requester always
// suffices; the policies below trade optimality (minimum summed
// rollback cost, an NP-complete vertex-cut problem in general) against
// the potentially-infinite-mutual-preemption hazard of Figure 2, which
// Theorem 2 eliminates with a time-invariant partial order on
// transactions.
package deadlock

import (
	"fmt"
	"sort"

	"partialrollback/internal/graph"
	"partialrollback/internal/txn"
)

// Victim is one rollback decision: roll Txn back to lock state Target
// at cost Cost (the paper's state-index distance; see §3.1).
type Victim struct {
	Txn    txn.ID
	Target int   // lock state index to roll back to
	Cost   int64 // state-index distance lost
}

func (v Victim) String() string {
	return fmt.Sprintf("%v->state %d (cost %d)", v.Txn, v.Target, v.Cost)
}

// Info describes one detected deadlock.
type Info struct {
	// Requester is the transaction whose lock request closed the
	// cycle(s).
	Requester txn.ID
	// Cycles lists the simple cycles through Requester, each starting
	// at Requester.
	Cycles [][]txn.ID
	// Plan computes the rollback plan for a deadlock participant: the
	// latest lock state at which it would hold none of the cycle
	// entities it currently blocks (adjusted to a well-defined state
	// under the single-copy strategy), and the cost of rolling back to
	// it. ok is false if the transaction cannot be rolled back.
	Plan func(id txn.ID) (v Victim, ok bool)
	// Entry returns the transaction's entry sequence number (its
	// position in the Theorem 2 ordering; smaller means earlier).
	Entry func(id txn.ID) int64
	// Preemptions returns how many times the transaction has already
	// been rolled back (victim aging; may be nil, treated as zero).
	Preemptions func(id txn.ID) int64
}

func (in Info) preemptions(id txn.ID) int64 {
	if in.Preemptions == nil {
		return 0
	}
	return in.Preemptions(id)
}

// Participants returns the distinct transactions on any cycle, sorted.
func (in Info) Participants() []txn.ID {
	set := map[txn.ID]bool{}
	for _, c := range in.Cycles {
		for _, id := range c {
			set[id] = true
		}
	}
	out := make([]txn.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Policy selects the victim set for a deadlock. Implementations must
// return victims whose combined rollback breaks every cycle in Info.
type Policy interface {
	// Name identifies the policy in metrics and experiment rows.
	Name() string
	// Choose returns the victims to roll back.
	Choose(in Info) ([]Victim, error)
}

// maxExactCut bounds the exhaustive vertex-cut search; deadlock cycles
// involve few transactions, so this is generous.
const maxExactCut = 20

// chooseByCut picks a minimum-cost victim set restricted to allowed
// (nil means all participants), via exact search with greedy fallback.
func chooseByCut(in Info, allowed map[txn.ID]bool) ([]Victim, error) {
	plans := map[txn.ID]Victim{}
	inst := graph.CutInstance{Cost: map[int]int64{}}
	for _, c := range in.Cycles {
		cycle := make([]int, len(c))
		for i, id := range c {
			cycle[i] = int(id)
		}
		inst.Cycles = append(inst.Cycles, cycle)
	}
	for _, id := range in.Participants() {
		if allowed != nil && !allowed[id] {
			continue
		}
		v, ok := in.Plan(id)
		if !ok {
			continue
		}
		plans[id] = v
		inst.Cost[int(id)] = v.Cost
	}
	cut, _, ok := graph.MinCostCutExact(inst, maxExactCut)
	if !ok {
		cut, _, ok = graph.MinCostCutGreedy(inst)
	}
	if !ok {
		return nil, fmt.Errorf("deadlock: no rollback-capable victim set covers all cycles (requester %v)", in.Requester)
	}
	victims := make([]Victim, 0, len(cut))
	for _, v := range cut {
		victims = append(victims, plans[txn.ID(v)])
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Txn < victims[j].Txn })
	return victims, nil
}

// MinCost is the §3.1 cost-optimal policy: the cheapest victim set that
// breaks every cycle (for a single cycle, the single cheapest member —
// Figure 1's choice). It is vulnerable to potentially infinite mutual
// preemption (Figure 2).
type MinCost struct{}

// Name implements Policy.
func (MinCost) Name() string { return "min-cost" }

// Choose implements Policy.
func (MinCost) Choose(in Info) ([]Victim, error) { return chooseByCut(in, nil) }

// Greedy is MinCost with the greedy cut heuristic forced, for the E8
// exact-vs-greedy comparison.
type Greedy struct{}

// Name implements Policy.
func (Greedy) Name() string { return "greedy" }

// Choose implements Policy.
func (Greedy) Choose(in Info) ([]Victim, error) {
	plans := map[txn.ID]Victim{}
	inst := graph.CutInstance{Cost: map[int]int64{}}
	for _, c := range in.Cycles {
		cycle := make([]int, len(c))
		for i, id := range c {
			cycle[i] = int(id)
		}
		inst.Cycles = append(inst.Cycles, cycle)
	}
	for _, id := range in.Participants() {
		v, ok := in.Plan(id)
		if !ok {
			continue
		}
		plans[id] = v
		inst.Cost[int(id)] = v.Cost
	}
	cut, _, ok := graph.MinCostCutGreedy(inst)
	if !ok {
		return nil, fmt.Errorf("deadlock: greedy found no cover (requester %v)", in.Requester)
	}
	victims := make([]Victim, 0, len(cut))
	for _, v := range cut {
		victims = append(victims, plans[txn.ID(v)])
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Txn < victims[j].Txn })
	return victims, nil
}

// Requester always rolls back the transaction that caused the
// conflict; §3.2 observes this breaks every cycle at once. Like
// MinCost, it is NOT livelock-free: on symmetric workloads transactions
// can take turns self-preempting forever (Figure 2's phenomenon), so it
// suits single-resolution analysis rather than closed-loop execution;
// use OrderedMinCost there.
type Requester struct{}

// Name implements Policy.
func (Requester) Name() string { return "requester" }

// Choose implements Policy.
func (Requester) Choose(in Info) ([]Victim, error) {
	v, ok := in.Plan(in.Requester)
	if !ok {
		return nil, fmt.Errorf("deadlock: requester %v cannot be rolled back", in.Requester)
	}
	return []Victim{v}, nil
}

// OrderedMinCost is the Theorem 2 policy: a transaction T_i may be
// rolled back as a result of a conflict caused by T_j only if T_i
// entered the system strictly later than T_j (entry order is the
// time-invariant partial order ω). Among the permitted victim sets the
// cheapest cover is chosen. When no strictly-younger participant can
// cover the cycles — the requester is the youngest — the requester
// itself backs off (the wait-die degenerate case): the youngest
// self-preempting cannot sustain mutual preemption, because every other
// participant keeps its progress.
//
// The strictness matters: allowing an *older* requester to self-preempt
// while a younger victim was available creates exactly the symmetric
// ping-pong of Figure 2 (two transactions alternately rolling
// themselves back forever).
type OrderedMinCost struct{}

// Name implements Policy.
func (OrderedMinCost) Name() string { return "ordered-min-cost" }

// Choose implements Policy.
func (o OrderedMinCost) Choose(in Info) ([]Victim, error) {
	reqEntry := in.Entry(in.Requester)
	younger := map[txn.ID]bool{}
	for _, id := range in.Participants() {
		if id != in.Requester && in.Entry(id) > reqEntry {
			younger[id] = true
		}
	}
	if len(younger) > 0 {
		if victims, err := chooseByCut(in, younger); err == nil {
			return victims, nil
		}
	}
	// No strictly-younger victim set covers every cycle (e.g. some
	// cycle's other members are all older than the requester — possible
	// with shared locks and multi-cycle closures; the randomized soak
	// test found stable preemption rings when the requester simply
	// backed off here). The fallback therefore applies wound-wait's
	// liveness rule through detection: every remaining cycle loses its
	// *youngest* member. The globally oldest active transaction is never
	// anyone's youngest, so its progress is monotone and the system
	// cannot churn forever.
	remaining := in.Cycles
	var victims []Victim
	chosen := map[txn.ID]bool{}
	for len(remaining) > 0 {
		cycle := remaining[0]
		var best txn.ID
		found := false
		covered := false
		for _, id := range cycle {
			if chosen[id] {
				covered = true
				break
			}
			if _, ok := in.Plan(id); !ok {
				continue
			}
			if !found || in.Entry(id) > in.Entry(best) {
				best, found = id, true
			}
		}
		if !covered {
			if !found {
				return nil, fmt.Errorf("deadlock: ordered policy has no legal victim (requester %v)", in.Requester)
			}
			chosen[best] = true
			v, _ := in.Plan(best)
			victims = append(victims, v)
		}
		var kept [][]txn.ID
		for _, c := range remaining {
			hit := false
			for _, m := range c {
				if chosen[m] {
					hit = true
					break
				}
			}
			if !hit {
				kept = append(kept, c)
			}
		}
		remaining = kept
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Txn < victims[j].Txn })
	return victims, nil
}

// Oldest rolls back the participant with the latest entry time (the
// youngest), breaking ties by ID — the classic timestamp victim rule,
// restated as a partial-order policy. Included as an ablation baseline.
type Oldest struct{}

// Name implements Policy.
func (Oldest) Name() string { return "youngest-victim" }

// Choose implements Policy.
func (Oldest) Choose(in Info) ([]Victim, error) {
	// The youngest participant may not cover all cycles by itself when
	// several cycles exist; cover cycles greedily youngest-first.
	parts := in.Participants()
	sort.Slice(parts, func(i, j int) bool {
		ei, ej := in.Entry(parts[i]), in.Entry(parts[j])
		if ei != ej {
			return ei > ej // youngest first
		}
		return parts[i] < parts[j]
	})
	remaining := make([][]txn.ID, len(in.Cycles))
	copy(remaining, in.Cycles)
	var victims []Victim
	for _, id := range parts {
		if len(remaining) == 0 {
			break
		}
		covers := false
		var kept [][]txn.ID
		for _, c := range remaining {
			hit := false
			for _, m := range c {
				if m == id {
					hit = true
					break
				}
			}
			if hit {
				covers = true
			} else {
				kept = append(kept, c)
			}
		}
		if !covers {
			continue
		}
		v, ok := in.Plan(id)
		if !ok {
			continue
		}
		victims = append(victims, v)
		remaining = kept
	}
	if len(remaining) > 0 {
		return nil, fmt.Errorf("deadlock: youngest-victim could not cover all cycles (requester %v)", in.Requester)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Txn < victims[j].Txn })
	return victims, nil
}
