package deadlock

import (
	"reflect"
	"testing"

	"partialrollback/internal/txn"
)

// makeInfo builds an Info over fixed cycles with per-txn costs, entries
// and targets.
func makeInfo(requester txn.ID, cycles [][]txn.ID, costs map[txn.ID]int64, entries map[txn.ID]int64) Info {
	return Info{
		Requester: requester,
		Cycles:    cycles,
		Plan: func(id txn.ID) (Victim, bool) {
			c, ok := costs[id]
			if !ok {
				return Victim{}, false
			}
			return Victim{Txn: id, Target: 1, Cost: c}, true
		},
		Entry: func(id txn.ID) int64 { return entries[id] },
	}
}

func victims(t *testing.T, p Policy, in Info) []txn.ID {
	t.Helper()
	vs, err := p.Choose(in)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	out := make([]txn.ID, len(vs))
	for i, v := range vs {
		out[i] = v.Txn
	}
	return out
}

func TestParticipants(t *testing.T) {
	in := makeInfo(1, [][]txn.ID{{1, 3}, {1, 2, 3}}, nil, nil)
	if got := in.Participants(); !reflect.DeepEqual(got, []txn.ID{1, 2, 3}) {
		t.Errorf("participants = %v", got)
	}
}

func TestMinCostSingleCycle(t *testing.T) {
	// Figure 1's numbers: T2 cost 4, T3 cost 6, T4 cost 5.
	in := makeInfo(4,
		[][]txn.ID{{4, 3, 2}},
		map[txn.ID]int64{2: 4, 3: 6, 4: 5},
		map[txn.ID]int64{2: 2, 3: 3, 4: 4})
	if got := victims(t, MinCost{}, in); !reflect.DeepEqual(got, []txn.ID{2}) {
		t.Errorf("victims = %v, want [T2]", got)
	}
}

func TestMinCostMultiCyclePrefersSharedVertex(t *testing.T) {
	// Cycles {1,2} and {1,3}; costs: 1: 10, 2: 3, 3: 4. Cutting {2,3}
	// costs 7 < 10, so both go.
	in := makeInfo(1,
		[][]txn.ID{{1, 2}, {1, 3}},
		map[txn.ID]int64{1: 10, 2: 3, 3: 4},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3})
	if got := victims(t, MinCost{}, in); !reflect.DeepEqual(got, []txn.ID{2, 3}) {
		t.Errorf("victims = %v, want [T2 T3]", got)
	}
	// Make the shared vertex cheap: it wins.
	in2 := makeInfo(1,
		[][]txn.ID{{1, 2}, {1, 3}},
		map[txn.ID]int64{1: 5, 2: 3, 3: 4},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3})
	if got := victims(t, MinCost{}, in2); !reflect.DeepEqual(got, []txn.ID{1}) {
		t.Errorf("victims = %v, want [T1]", got)
	}
}

func TestRequesterPolicy(t *testing.T) {
	in := makeInfo(7,
		[][]txn.ID{{7, 8}, {7, 9}},
		map[txn.ID]int64{7: 100, 8: 1, 9: 1},
		map[txn.ID]int64{7: 1, 8: 2, 9: 3})
	if got := victims(t, Requester{}, in); !reflect.DeepEqual(got, []txn.ID{7}) {
		t.Errorf("victims = %v", got)
	}
	// Requester without a plan fails.
	in.Plan = func(txn.ID) (Victim, bool) { return Victim{}, false }
	if _, err := (Requester{}).Choose(in); err == nil {
		t.Error("want error")
	}
}

func TestOrderedMinCostPrefersYounger(t *testing.T) {
	// Requester 1 is oldest; both 2 and 3 are younger. Cheapest younger
	// cover is chosen; the requester must NOT self-preempt.
	in := makeInfo(1,
		[][]txn.ID{{1, 2, 3}},
		map[txn.ID]int64{1: 1, 2: 5, 3: 4},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3})
	if got := victims(t, OrderedMinCost{}, in); !reflect.DeepEqual(got, []txn.ID{3}) {
		t.Errorf("victims = %v, want [T3] (cheapest younger), even though requester costs 1", got)
	}
}

func TestOrderedMinCostFallsBackToRequester(t *testing.T) {
	// Requester 3 is the youngest: it must back off itself.
	in := makeInfo(3,
		[][]txn.ID{{3, 1, 2}},
		map[txn.ID]int64{1: 1, 2: 1, 3: 50},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3})
	if got := victims(t, OrderedMinCost{}, in); !reflect.DeepEqual(got, []txn.ID{3}) {
		t.Errorf("victims = %v, want [T3]", got)
	}
}

func TestOrderedRespectsTheorem2Relation(t *testing.T) {
	// Every victim must be strictly younger than the requester, or be
	// the requester itself.
	in := makeInfo(2,
		[][]txn.ID{{2, 1, 4}, {2, 3}},
		map[txn.ID]int64{1: 1, 2: 10, 3: 2, 4: 3},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3, 4: 4})
	got := victims(t, OrderedMinCost{}, in)
	for _, v := range got {
		if v != 2 && !(v == 3 || v == 4) {
			t.Errorf("victim %v is older than requester", v)
		}
	}
	// T1 (older, cheapest) must never be chosen.
	for _, v := range got {
		if v == 1 {
			t.Error("ordered policy chose an older victim")
		}
	}
}

func TestGreedyCoversAllCycles(t *testing.T) {
	in := makeInfo(1,
		[][]txn.ID{{1, 2}, {1, 3}, {1, 2, 3}},
		map[txn.ID]int64{1: 9, 2: 2, 3: 2},
		map[txn.ID]int64{1: 1, 2: 2, 3: 3})
	got := victims(t, Greedy{}, in)
	cover := map[txn.ID]bool{}
	for _, v := range got {
		cover[v] = true
	}
	for _, c := range in.Cycles {
		hit := false
		for _, m := range c {
			if cover[m] {
				hit = true
			}
		}
		if !hit {
			t.Errorf("cycle %v uncovered by %v", c, got)
		}
	}
}

func TestYoungestVictim(t *testing.T) {
	in := makeInfo(1,
		[][]txn.ID{{1, 2, 3}},
		map[txn.ID]int64{1: 1, 2: 1, 3: 1},
		map[txn.ID]int64{1: 10, 2: 30, 3: 20})
	if got := victims(t, Oldest{}, in); !reflect.DeepEqual(got, []txn.ID{2}) {
		t.Errorf("victims = %v, want [T2] (latest entry)", got)
	}
}

func TestYoungestVictimMultiCycle(t *testing.T) {
	in := makeInfo(1,
		[][]txn.ID{{1, 2}, {1, 3}},
		map[txn.ID]int64{1: 1, 2: 1, 3: 1},
		map[txn.ID]int64{1: 10, 2: 30, 3: 20})
	got := victims(t, Oldest{}, in)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("victims = %v, want [T2 T3]", got)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"min-cost":         MinCost{},
		"ordered-min-cost": OrderedMinCost{},
		"requester":        Requester{},
		"greedy":           Greedy{},
		"youngest-victim":  Oldest{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("%T name = %q", p, p.Name())
		}
	}
}

func TestNoCoverableVictims(t *testing.T) {
	in := makeInfo(1, [][]txn.ID{{1, 2}}, map[txn.ID]int64{}, map[txn.ID]int64{1: 1, 2: 2})
	if _, err := (MinCost{}).Choose(in); err == nil {
		t.Error("no plans: want error")
	}
	if _, err := (OrderedMinCost{}).Choose(in); err == nil {
		t.Error("ordered: want error")
	}
	if _, err := (Oldest{}).Choose(in); err == nil {
		t.Error("youngest: want error")
	}
}

func TestVictimString(t *testing.T) {
	v := Victim{Txn: 2, Target: 1, Cost: 4}
	if v.String() == "" {
		t.Error("victim string")
	}
}
