package experiments

import (
	"fmt"

	"partialrollback/internal/deadlock"
	"partialrollback/internal/figures"
)

// E1Figure1 reproduces Figure 1: the exclusive-lock deadlock with
// rollback costs 4/6/5 and victim T2.
func E1Figure1() (*figures.Figure1Result, *Table, error) {
	res, err := figures.RunFigure1()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E1",
		Title:  "Figure 1: optimal victim selection under exclusive locks",
		Header: []string{"txn", "rollback cost", "paper"},
		Rows: [][]string{
			{"T2", itoa(res.Costs[2]), "12-8=4"},
			{"T3", itoa(res.Costs[3]), "11-5=6"},
			{"T4", itoa(res.Costs[4]), "15-10=5"},
		},
		Notes: []string{
			fmt.Sprintf("pre-deadlock graph is forest: %v (Theorem 1)", res.ForestBefore),
			fmt.Sprintf("cycles closed by T4's request: %d (want 1)", len(res.Report.Cycles)),
			fmt.Sprintf("victim: T%d (paper: T2)", res.Victim),
			fmt.Sprintf("T1 released from waiting on T2: %v (Figure 1(b))", !res.T1Waiting),
			fmt.Sprintf("T3 now holds b: %v", res.T3HoldsB),
		},
	}
	return res, t, nil
}

// E2Figure2 reproduces Figure 2's potentially infinite mutual
// preemption and Theorem 2's cure, over the given number of rounds.
func E2Figure2(rounds int) (map[string]*figures.Figure2Result, *Table, error) {
	out := map[string]*figures.Figure2Result{}
	t := &Table{
		ID:     "E2",
		Title:  "Figure 2 / Theorem 2: mutual preemption vs ordered policy",
		Header: []string{"policy", "rounds", "A preempted", "A committed", "B commits"},
	}
	for _, p := range []deadlock.Policy{deadlock.MinCost{}, deadlock.OrderedMinCost{}} {
		res, err := figures.RunFigure2(p, rounds)
		if err != nil {
			return nil, nil, err
		}
		out[p.Name()] = res
		t.Rows = append(t.Rows, []string{
			p.Name(), itoa(int64(res.Rounds)), itoa(res.APreempted),
			fmt.Sprintf("%v", res.ACommitted), itoa(int64(res.BCommitted)),
		})
	}
	t.Notes = []string{
		"min-cost: A is preempted every round and never commits (potentially infinite mutual preemption)",
		"ordered-min-cost: the younger conflict causer is the only legal victim; A commits in round 0 (Theorem 2)",
	}
	return out, t, nil
}

// E3Figure3 reproduces the shared/exclusive scenarios of Figure 3.
func E3Figure3() (*Table, error) {
	a, err := figures.RunFigure3a()
	if err != nil {
		return nil, err
	}
	b, err := figures.RunFigure3b(deadlock.MinCost{})
	if err != nil {
		return nil, err
	}
	br, err := figures.RunFigure3b(deadlock.Requester{})
	if err != nil {
		return nil, err
	}
	c, err := figures.RunFigure3c()
	if err != nil {
		return nil, err
	}
	return &Table{
		ID:     "E3",
		Title:  "Figure 3: shared+exclusive locks, multi-cycle deadlocks",
		Header: []string{"scenario", "cycles", "victims", "paper fact"},
		Rows: [][]string{
			{"(a) S/X waits", "0", "-", fmt.Sprintf("DAG but not forest: forest=%v deadlock=%v", a.AForest, a.ADeadlock)},
			{"(b) min-cost", itoa(int64(b.BCycles)), fmt.Sprintf("%v", b.BVictims), "one non-requester (T2) on every cycle suffices"},
			{"(b) requester", itoa(int64(br.BCycles)), fmt.Sprintf("%v", br.BVictims), "requester always covers all cycles"},
			{"(c) min-cost", itoa(int64(c.CCycles)), fmt.Sprintf("%v", c.CVictims), "both shared holders must go if T1 does not"},
		},
	}, nil
}

// E4Figure4 reproduces Figure 4: well-defined states and the
// articulation-point characterization.
func E4Figure4() (*figures.Figure4Result, *Table, error) {
	res, err := figures.RunFigure4()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E4",
		Title:  "Figure 4 / Theorem 4: well-defined states of the single-copy strategy",
		Header: []string{"program", "well-defined lock states", "paper"},
		Rows: [][]string{
			{"T (scattered writes)", fmt.Sprintf("%v", res.WellDefinedT), "only trivial (0 and 6)"},
			{"T' (one write deleted)", fmt.Sprintf("%v", res.WellDefinedTPrime), "lock index 4 becomes well-defined"},
			{"T' (engine view)", fmt.Sprintf("%v", res.DynamicTPrime), "matches static analysis"},
		},
		Notes: []string{
			fmt.Sprintf("articulation points = well-defined states: %v (Corollary 1)", res.ArticulationMatches),
			fmt.Sprintf("rollback to state 4 released %v (paper: E and F)", res.RollbackReleases),
			fmt.Sprintf("restored state matches fresh prefix execution: %v", res.RestoredOK),
		},
	}
	return res, t, nil
}

// E5Figure5 reproduces Figure 5: write clustering and the three-phase
// structure maximize well-defined states.
func E5Figure5() (*figures.Figure5Result, *Table, error) {
	res, err := figures.RunFigure5()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E5",
		Title:  "Figure 5 / §5: transaction structure vs well-defined states",
		Header: []string{"structure", "well-defined (of 7)", "clustering index"},
		Rows: [][]string{
			{"scattered (Fig 4 T)", itoa(int64(res.ScatteredWellDefined)), itoa(int64(res.ScatteredClustering))},
			{"clustered (Fig 5 T2)", itoa(int64(res.ClusteredWellDefined)), itoa(int64(res.ClusteredClustering))},
			{"three-phase (§5)", itoa(int64(res.ThreePhaseWellDefined)), "0"},
		},
		Notes: []string{
			"clustering writes per entity leaves every lock state well-defined",
			fmt.Sprintf("three-phase recognized: %v", res.ThreePhaseIs3P),
		},
	}
	return res, t, nil
}
