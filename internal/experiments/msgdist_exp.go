package experiments

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/dist"
	"partialrollback/internal/sim"
)

// E15Row is one cell of the message-passing distributed sweep.
type E15Row struct {
	Sites    int
	Latency  int64
	Strategy core.Strategy
	Metrics  dist.MsgMetrics
}

// E15MessagePassing runs the fully distributed engine (per-site lock
// tables and concurrency graphs, explicit messages, site-ordered
// acquisition making every deadlock site-local per §3.3) across site
// counts and network latencies, for total vs partial rollback.
func E15MessagePassing(seed int64) ([]E15Row, *Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "§3.3 message-passing sites: site-ordered locking, per-site detection, partial rollback",
		Header: []string{"sites", "latency", "strategy", "deadlocks", "lost ops", "messages", "copy ships", "makespan"},
	}
	var rows []E15Row
	for _, sites := range []int{1, 2, 4, 8} {
		tp := dist.Topology{Sites: sites}
		w := dist.SiteOrder(sim.Generate(sim.GenConfig{
			Txns: 16, DBSize: 24, HotSet: 8, HotProb: 0.8,
			LocksPerTxn: 5, RewriteProb: 0.4, PadOps: 2,
			Shape: sim.Mixed, Seed: seed,
		}), tp)
		for _, latency := range []int64{1, 20} {
			for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
				res, err := dist.MsgRun(w, dist.MsgConfig{
					Topology: tp, Strategy: strat, Latency: latency,
				})
				if err != nil {
					return nil, nil, fmt.Errorf("E15 sites=%d: %w", sites, err)
				}
				m := res.Metrics
				rows = append(rows, E15Row{Sites: sites, Latency: latency, Strategy: strat, Metrics: m})
				t.Rows = append(t.Rows, []string{
					itoa(int64(sites)), itoa(latency), strat.String(),
					itoa(m.Deadlocks), itoa(m.LostOps),
					itoa(m.Total()), itoa(m.CopyShips), itoa(m.Makespan),
				})
			}
		}
	}
	t.Notes = []string{
		"site-ordered acquisition makes cross-site cycles impossible; every deadlock is detected and repaired at one site",
		"more sites = a finer a-priori order on the lock space, so deadlocks fall toward zero as sites grow — ordering doubles as partial avoidance, at the price of message traffic",
		"partial rollback keeps its (shrinking) lost-work advantage under full distribution; message volume is dominated by lock traffic, not rollbacks",
		"latency stretches makespan with the remote fraction of each transaction's lock set",
	}
	return rows, t, nil
}
