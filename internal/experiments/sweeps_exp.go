package experiments

import (
	"partialrollback/internal/avoidance"
	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/dist"
	"partialrollback/internal/sim"
	"partialrollback/internal/trace"
	"partialrollback/internal/txn"
)

// E9Row is one cell of the strategy-comparison sweep.
type E9Row struct {
	Txns     int
	Hot      bool
	Strategy core.Strategy
	Result   sim.Result
}

// E9Strategies runs the substituted evaluation: identical workloads
// under Total, MCS, and SDG, across concurrency and contention levels.
// The paper's qualitative claim — partial rollback loses substantially
// less progress than total restart — is what the LostOps/LostRatio
// columns quantify.
func E9Strategies(seed int64) ([]E9Row, *Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Lost progress: total restart vs partial rollback (MCS, SDG)",
		Header: []string{"txns", "contention", "strategy", "deadlocks", "rollbacks", "restarts", "lost ops", "lost %", "depth p50", "depth p95"},
	}
	var rows []E9Row
	for _, txns := range []int{4, 8, 16, 32} {
		for _, hot := range []bool{false, true} {
			cfg := sim.GenConfig{
				Txns: txns, DBSize: 24, LocksPerTxn: 5,
				RewriteProb: 0.4, PadOps: 3, Shape: sim.Mixed,
				Seed: seed + int64(txns),
			}
			label := "uniform"
			if hot {
				cfg.HotSet, cfg.HotProb = 6, 0.85
				label = "hot-set"
			}
			w := sim.Generate(cfg)
			for _, st := range []core.Strategy{core.Total, core.MCS, core.SDG} {
				rec := trace.NewRecorder(nil)
				r, err := sim.Run(w, sim.RunConfig{
					Strategy: st, Scheduler: sim.RoundRobin, Seed: seed,
					OnEvent: rec.Hook(),
				})
				if err != nil {
					return nil, nil, err
				}
				sum := trace.Summarize(rec.Records())
				rows = append(rows, E9Row{Txns: txns, Hot: hot, Strategy: st, Result: r})
				t.Rows = append(t.Rows, []string{
					itoa(int64(txns)), label, st.String(),
					itoa(r.Stats.Deadlocks), itoa(r.Stats.Rollbacks), itoa(r.Stats.Restarts),
					itoa(r.Stats.OpsLost), pct(r.LostRatio),
					itoa(sum.Percentile(50)), itoa(sum.Percentile(95)),
				})
			}
		}
	}
	t.Notes = []string{
		"identical workload and schedule per (txns, contention) triple; only the rollback strategy differs",
		"expected shape: lost ops Total >= SDG >= MCS; restarts only under Total",
	}
	return rows, t, nil
}

// E10Row is one cell of the transaction-structure sweep.
type E10Row struct {
	Shape        sim.WriteShape
	WellDefRatio float64
	// SDG and MCS are the single-copy and multi-copy runs of the same
	// workload and schedule; Overshoot is the extra progress SDG lost
	// because its rollbacks had to retreat past non-well-defined states
	// to reach a restorable one.
	SDG       sim.Result
	MCS       sim.Result
	Overshoot int64
}

// E10Structure quantifies §5: under the single-copy strategy, write
// clustering and the three-phase form raise the fraction of
// well-defined states, eliminating the rollback *overshoot* relative to
// the multi-copy strategy's minimal targets.
func E10Structure(seed int64) ([]E10Row, *Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "§5 structure: write placement vs single-copy (SDG) rollback overshoot",
		Header: []string{"shape", "well-defined %", "lost ops (MCS)", "lost ops (SDG)", "SDG overshoot", "SDG avg depth"},
	}
	var rows []E10Row
	for _, shape := range []sim.WriteShape{sim.Scattered, sim.Clustered, sim.ThreePhase} {
		w := sim.Generate(sim.GenConfig{
			Txns: 16, DBSize: 16, HotSet: 6, HotProb: 0.8,
			LocksPerTxn: 5, RewriteProb: 0.6, PadOps: 2,
			Shape: shape, Seed: seed,
		})
		// Static well-defined ratio over the workload's programs.
		var wd, states int
		for _, p := range w.Programs {
			a := txn.Analyze(p)
			wd += a.WellDefinedCount()
			states += a.NumLocks() + 1
		}
		ratio := float64(wd) / float64(states)
		rc := sim.RunConfig{
			Policy:    deadlock.OrderedMinCost{},
			Scheduler: sim.RoundRobin, Seed: seed,
		}
		rc.Strategy = core.SDG
		rs, err := sim.Run(w, rc)
		if err != nil {
			return nil, nil, err
		}
		rc.Strategy = core.MCS
		rm, err := sim.Run(w, rc)
		if err != nil {
			return nil, nil, err
		}
		row := E10Row{
			Shape: shape, WellDefRatio: ratio,
			SDG: rs, MCS: rm,
			Overshoot: rs.Stats.OpsLost - rm.Stats.OpsLost,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			shape.String(), pct(ratio),
			itoa(rm.Stats.OpsLost), itoa(rs.Stats.OpsLost),
			itoa(row.Overshoot), f1(rs.AvgRollbackDepth),
		})
	}
	t.Notes = []string{
		"scattered writes destroy interior states, so single-copy rollbacks overshoot the multi-copy minimum",
		"clustered and three-phase programs keep every lock state well-defined: SDG matches MCS with one copy per entity",
	}
	return rows, t, nil
}

// E11Row is one cell of the distributed sweep.
type E11Row struct {
	Sites    int
	Strategy core.Strategy
	Result   dist.Result
}

// E11Distributed runs §3.3's setting: wound-wait timestamp resolution
// with partial vs total rollback across site counts, accounting lost
// work and simulated messages.
func E11Distributed(seed int64) ([]E11Row, *Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "§3.3 distributed: wound-wait with partial rollback, message accounting",
		Header: []string{"sites", "strategy", "wounds", "lost ops", "lost %", "messages", "copy ships"},
	}
	var rows []E11Row
	w := sim.Generate(sim.GenConfig{
		Txns: 16, DBSize: 24, HotSet: 8, HotProb: 0.8,
		LocksPerTxn: 5, RewriteProb: 0.4, PadOps: 2,
		Shape: sim.Scattered, Seed: seed,
	})
	for _, sites := range []int{1, 2, 4, 8} {
		for _, st := range []core.Strategy{core.Total, core.MCS, core.SDG} {
			r, err := dist.Run(w, dist.Config{
				Topology:  dist.Topology{Sites: sites},
				Strategy:  st,
				Mode:      core.WoundWait,
				Scheduler: sim.RoundRobin,
				Seed:      seed,
			})
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, E11Row{Sites: sites, Strategy: st, Result: r})
			t.Rows = append(t.Rows, []string{
				itoa(int64(sites)), st.String(),
				itoa(r.Stats.Wounds), itoa(r.Stats.OpsLost), pct(r.Sim.LostRatio),
				itoa(r.Messages.Total()), itoa(r.Messages.CopyShips),
			})
		}
	}
	t.Notes = []string{
		"partial rollback keeps its lost-work advantage under timestamp (wound-wait) resolution",
		"the price is extra cross-site copy shipping, the paper's §3.3 caveat",
	}
	return rows, t, nil
}

// E12Row is one cell of the avoidance-vs-detection comparison.
type E12Row struct {
	Scheme    string
	Makespan  int64
	Waits     int64
	Deadlocks int64
	LostOps   int64
}

// E12Avoidance contrasts the intro's avoidance schemes (banker with
// declared claims; hierarchical lock ordering) with detection +
// partial rollback on the same exclusive-lock workload.
func E12Avoidance(seed int64) ([]E12Row, *Table, error) {
	w := sim.Generate(sim.GenConfig{
		Txns: 12, DBSize: 12, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 4, RewriteProb: 0.3, PadOps: 2,
		Shape: sim.Scattered, Seed: seed,
	})
	var rows []E12Row

	det, err := sim.Run(w, sim.RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, E12Row{
		Scheme: "detect+partial (MCS)", Makespan: det.Steps,
		Waits: det.Stats.Waits, Deadlocks: det.Stats.Deadlocks, LostOps: det.Stats.OpsLost,
	})

	bank, err := avoidance.RunBanker(w, 0)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, E12Row{
		Scheme: "banker (claims)", Makespan: bank.Makespan,
		Waits: bank.SafetyWaits + bank.ConflictWaits,
	})

	sorted := avoidance.SortLockOrder(w)
	tree, err := sim.Run(sorted, sim.RunConfig{
		Strategy: core.MCS, Policy: deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, E12Row{
		Scheme: "ordered locks (tree)", Makespan: tree.Steps,
		Waits: tree.Stats.Waits, Deadlocks: tree.Stats.Deadlocks, LostOps: tree.Stats.OpsLost,
	})

	t := &Table{
		ID:     "E12",
		Title:  "§1 baselines: avoidance (a-priori info) vs detection + partial rollback",
		Header: []string{"scheme", "makespan (steps)", "waits", "deadlocks", "lost ops"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, itoa(r.Makespan), itoa(r.Waits), itoa(r.Deadlocks), itoa(r.LostOps),
		})
	}
	t.Notes = []string{
		"avoidance schemes never roll back but require a-priori knowledge (claims or a global lock order)",
		"ordered locks must still wait; the banker additionally delays admissions for safety",
	}
	return rows, t, nil
}
