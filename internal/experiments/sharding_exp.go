package experiments

import (
	"fmt"
	"runtime"
	"time"

	"partialrollback/internal/core"
	rt "partialrollback/internal/runtime"
	"partialrollback/internal/sim"
)

// E16Row is one cell of the sharded-engine throughput sweep.
type E16Row struct {
	Shards     int
	Elapsed    time.Duration
	Throughput float64 // committed transactions per wall-clock second
	Stats      core.Stats
}

// E16Sharding drives one hotspot workload through the concurrent
// runtime (one goroutine per transaction) over 1, 2, 4 and 8 engine
// shards and reports wall-clock throughput next to the deadlock-removal
// cost counters. The single-shard row is the big-lock baseline every
// other row is measured against; lost ops stay comparable across rows
// because conflicting transactions are co-located on one shard, where
// partial rollback applies exactly as in the unsharded engine.
//
// Unlike E1-E15 this table measures wall-clock time, so absolute
// numbers are machine- and GOMAXPROCS-dependent; the shape (throughput
// growing with shards until the hot set serializes everything) is the
// reproducible claim.
func E16Sharding(seed int64) ([]E16Row, *Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "sharded engine: hotspot throughput and lost work vs shard count",
		Header: []string{"shards", "commits", "elapsed", "txn/s", "deadlocks", "rollbacks", "lost ops"},
	}
	const txns = 96
	var rows []E16Row
	for _, shards := range []int{1, 2, 4, 8} {
		w := sim.Generate(sim.GenConfig{
			Txns: txns, DBSize: 192, HotSet: 12, HotProb: 0.4,
			LocksPerTxn: 4, RewriteProb: 0.5, PadOps: 6,
			Shape: sim.Mixed, Seed: seed,
		})
		store := w.NewStore()
		start := time.Now()
		out, err := rt.Run(store, w.Programs, rt.Options{
			Strategy: core.MCS, Shards: shards,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("E16 shards=%d: %w", shards, err)
		}
		elapsed := time.Since(start)
		if err := out.System.CheckInvariants(); err != nil {
			return nil, nil, fmt.Errorf("E16 shards=%d: %w", shards, err)
		}
		if err := store.CheckConsistent(); err != nil {
			return nil, nil, fmt.Errorf("E16 shards=%d: %w", shards, err)
		}
		s := out.Stats
		if s.Commits != txns {
			return nil, nil, fmt.Errorf("E16 shards=%d: %d of %d commits", shards, s.Commits, txns)
		}
		row := E16Row{
			Shards:     shards,
			Elapsed:    elapsed,
			Throughput: float64(s.Commits) / elapsed.Seconds(),
			Stats:      s,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			itoa(int64(shards)), itoa(s.Commits),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", row.Throughput),
			itoa(s.Deadlocks), itoa(s.Rollbacks), itoa(s.OpsLost),
		})
	}
	t.Notes = []string{
		fmt.Sprintf("wall-clock table (GOMAXPROCS=%d): absolute txn/s is machine-dependent, the trend across shard counts is the claim", runtime.GOMAXPROCS(0)),
		"conflicting transactions are co-located per shard, so every deadlock stays shard-local and partial rollback applies unchanged — lost ops do not grow with shard count",
		"cross-shard claims queue for admission in registration order (§3.3's a-priori ordering at the shard boundary), trading some admission latency for lock-table parallelism",
	}
	return rows, t, nil
}
