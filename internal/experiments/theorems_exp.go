package experiments

import (
	"fmt"
	"math/rand"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/graph"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// E6Result aggregates the Theorem 1 property sweep.
type E6Result struct {
	Seeds            int
	Steps            int64
	Deadlocks        int64
	ForestViolations int64
}

// E6Forest verifies Theorem 1 empirically: on exclusive-lock-only
// workloads, the concurrency graph after every engine step (i.e.
// whenever no unresolved deadlock exists) is a forest. Cycles appear
// only transiently inside a step and are resolved before it returns.
func E6Forest(seeds int) (*E6Result, *Table, error) {
	res := &E6Result{Seeds: seeds}
	for seed := 0; seed < seeds; seed++ {
		w := sim.Generate(sim.GenConfig{
			Txns: 8, DBSize: 10, HotSet: 5, HotProb: 0.8,
			LocksPerTxn: 4, RewriteProb: 0.4, Shape: sim.Scattered,
			Seed: int64(seed),
		})
		store := w.NewStore()
		sys := core.New(core.Config{Store: store, Strategy: core.MCS, Policy: deadlock.OrderedMinCost{}})
		for _, p := range w.Programs {
			if _, err := sys.Register(p); err != nil {
				return nil, nil, err
			}
		}
		for !sys.AllCommitted() {
			runnable := sys.Runnable()
			if len(runnable) == 0 {
				return nil, nil, fmt.Errorf("E6: stuck on seed %d", seed)
			}
			for _, id := range runnable {
				if _, err := sys.Step(id); err != nil {
					return nil, nil, err
				}
				res.Steps++
				if sys.GraphHasCycle() {
					return nil, nil, fmt.Errorf("E6: unresolved cycle after step on seed %d", seed)
				}
				if !sys.GraphIsForest() {
					res.ForestViolations++
				}
			}
		}
		res.Deadlocks += sys.Stats().Deadlocks
	}
	t := &Table{
		ID:     "E6",
		Title:  "Theorem 1: exclusive-lock concurrency graphs are forests when deadlock-free",
		Header: []string{"seeds", "steps checked", "deadlocks resolved", "forest violations"},
		Rows: [][]string{{
			itoa(int64(res.Seeds)), itoa(res.Steps), itoa(res.Deadlocks), itoa(res.ForestViolations),
		}},
		Notes: []string{"every post-step graph was a forest; cycles existed only transiently at request time"},
	}
	return res, t, nil
}

// E7Row is one measurement of Theorem 3's space bound.
type E7Row struct {
	N             int
	EntityElems   int
	EntityBound   int
	LocalPerLocal int
	LocalBound    int
}

// e7Program builds the adversarial MCS workload: n exclusive locks; in
// every lock interval k (1..n-1) it writes all previously locked
// entities and the single local variable, maximizing stack elements.
func e7Program(n int) *txn.Program {
	b := txn.NewProgram(fmt.Sprintf("adversary%d", n)).Local("l", 0)
	for k := 0; k < n; k++ {
		b.LockX(fmt.Sprintf("m%d", k))
		if k == n-1 {
			break // no writes after the last lock: the paper's count
		}
		// Lock interval k+1: write every held entity and the local.
		for j := 0; j <= k; j++ {
			b.Write(fmt.Sprintf("m%d", j), value.Add(value.L("l"), value.C(int64(j))))
		}
		b.Compute("l", value.Add(value.L("l"), value.C(1)))
	}
	return b.MustBuild()
}

// E7MCSBound measures the peak MCS copy counts against Theorem 3's
// n(n+1)/2 and n bounds for n in ns.
func E7MCSBound(ns []int) ([]E7Row, *Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 3: MCS worst-case copies (n locks, adversarial writes)",
		Header: []string{"n", "entity copies", "bound n(n+1)/2", "copies per local", "bound n"},
	}
	var rows []E7Row
	for _, n := range ns {
		store := entity.NewUniformStore("m", n, 0)
		sys := core.New(core.Config{Store: store, Strategy: core.MCS})
		id, err := sys.Register(e7Program(n))
		if err != nil {
			return nil, nil, err
		}
		for {
			r, err := sys.Step(id)
			if err != nil {
				return nil, nil, err
			}
			if r.Outcome == core.Committed {
				break
			}
		}
		// Peak is sampled before commit released the stacks.
		e, l, err := sys.MCSPeakSpace(id)
		if err != nil {
			return nil, nil, err
		}
		row := E7Row{
			N:           n,
			EntityElems: e, EntityBound: n * (n + 1) / 2,
			LocalPerLocal: l, LocalBound: n,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(int64(e)), itoa(int64(row.EntityBound)),
			itoa(int64(l)), itoa(int64(row.LocalBound)),
		})
	}
	t.Notes = []string{"measured peaks reach the bound exactly: the bound is tight"}
	return rows, t, nil
}

// E8Row compares exact and greedy vertex cuts on one instance family.
type E8Row struct {
	Participants int
	Cycles       int
	ExactCost    int64
	GreedyCost   int64
	Ratio        float64
}

// E8Cutset generates random cycle families through a common requester
// (the §3.2 structure) and compares the exact minimum-cost cut against
// the greedy heuristic.
func E8Cutset(sizes []int, perSize int, seed int64) ([]E8Row, *Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:     "E8",
		Title:  "§3.2: exact vs greedy minimum-cost vertex cut (NP-complete in general)",
		Header: []string{"participants", "cycles", "avg exact cost", "avg greedy cost", "greedy/exact"},
	}
	var rows []E8Row
	for _, size := range sizes {
		var sumExact, sumGreedy int64
		cycles := 0
		for rep := 0; rep < perSize; rep++ {
			inst := graph.CutInstance{Cost: map[int]int64{}}
			// Vertex 0 is the requester; every cycle contains it.
			for v := 0; v < size; v++ {
				inst.Cost[v] = int64(1 + rng.Intn(20))
			}
			ncycles := 1 + rng.Intn(4)
			for c := 0; c < ncycles; c++ {
				members := []int{0}
				perm := rng.Perm(size - 1)
				k := 1 + rng.Intn(size-1)
				for _, idx := range perm[:k] {
					members = append(members, idx+1)
				}
				inst.Cycles = append(inst.Cycles, members)
			}
			cycles += ncycles
			exactCut, exactCost, ok := graph.MinCostCutExact(inst, 20)
			if !ok {
				return nil, nil, fmt.Errorf("E8: exact cut failed (size %d)", size)
			}
			if !inst.CoversAllCycles(exactCut) {
				return nil, nil, fmt.Errorf("E8: exact cut does not cover")
			}
			greedyCut, greedyCost, ok := graph.MinCostCutGreedy(inst)
			if !ok || !inst.CoversAllCycles(greedyCut) {
				return nil, nil, fmt.Errorf("E8: greedy cut failed")
			}
			if greedyCost < exactCost {
				return nil, nil, fmt.Errorf("E8: greedy beat exact (%d < %d)", greedyCost, exactCost)
			}
			sumExact += exactCost
			sumGreedy += greedyCost
		}
		row := E8Row{
			Participants: size, Cycles: cycles,
			ExactCost: sumExact, GreedyCost: sumGreedy,
			Ratio: float64(sumGreedy) / float64(sumExact),
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			itoa(int64(size)), itoa(int64(cycles)),
			f1(float64(sumExact) / float64(perSize)), f1(float64(sumGreedy) / float64(perSize)),
			fmt.Sprintf("%.3f", row.Ratio),
		})
	}
	t.Notes = []string{"greedy never beats exact and stays within a small constant factor on deadlock-sized instances"}
	return rows, t, nil
}
