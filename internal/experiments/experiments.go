// Package experiments implements the reproduction suite E1-E12 indexed
// in DESIGN.md §4. Each experiment returns a typed result plus a
// printable table (header + rows) so cmd/prbench, bench_test.go, and
// the test suite share one implementation. Paper-vs-measured for every
// experiment is recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries the paper-fact assertions checked by the run.
	Notes []string
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
