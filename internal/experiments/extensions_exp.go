package experiments

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/optimizer"
	"partialrollback/internal/sim"
	"partialrollback/internal/txn"
)

// E13Row is one cell of the bounded-extra-copies sweep.
type E13Row struct {
	Budget     int
	Allocator  string
	LostOps    int64
	Overshoot  int64 // vs the MCS run of the same workload
	PeakCopies int
}

// E13Hybrid answers the paper's closing question empirically: how much
// of the single-copy strategy's rollback overshoot does a bounded
// budget of extra copies recover, and does allocation strategy matter?
// The workload is E10's scattered-write case (the worst for SDG).
func E13Hybrid(seed int64) ([]E13Row, *Table, error) {
	w := sim.Generate(sim.GenConfig{
		Txns: 16, DBSize: 16, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 5, RewriteProb: 0.6, PadOps: 2,
		Shape: sim.Scattered, Seed: seed,
	})
	base := sim.RunConfig{
		Policy:    deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, Seed: seed,
	}
	// MCS reference: the minimal possible rollback loss.
	ref := base
	ref.Strategy = core.MCS
	mcsRun, err := sim.Run(w, ref)
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		ID:     "E13",
		Title:  "Extension: bounded extra copies (hybrid) — the paper's closing question",
		Header: []string{"budget", "allocator", "lost ops", "overshoot vs MCS", "peak extra copies"},
	}
	var rows []E13Row
	addRow := func(budget int, alloc string, r sim.Result, peak int) {
		row := E13Row{
			Budget: budget, Allocator: alloc,
			LostOps:    r.Stats.OpsLost,
			Overshoot:  r.Stats.OpsLost - mcsRun.Stats.OpsLost,
			PeakCopies: peak,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			itoa(int64(budget)), alloc, itoa(row.LostOps), itoa(row.Overshoot), itoa(int64(peak)),
		})
	}
	for _, budget := range []int{0, 1, 2, 4, 8} {
		for _, alloc := range []hybrid.Allocator{hybrid.MinGap{}, hybrid.Spaced{}} {
			rc := base
			rc.Strategy = core.Hybrid
			rc.HybridBudget = budget
			rc.HybridAllocator = alloc
			r, err := sim.Run(w, rc)
			if err != nil {
				return nil, nil, err
			}
			peak := 0
			// HybridStats is a strategy-specific inspection hook, not part
			// of the Engine surface; this experiment runs unsharded.
			hsys := r.System.(*core.System)
			for _, id := range hsys.IDs() {
				if _, p, err := hsys.HybridStats(id); err == nil && p > peak {
					peak = p
				}
			}
			addRow(budget, alloc.Name(), r, peak)
			if budget == 0 {
				break // allocators are equivalent at budget 0
			}
		}
	}
	t.Notes = []string{
		fmt.Sprintf("MCS reference loses %d ops (minimal targets, unbounded copies)", mcsRun.Stats.OpsLost),
		"budget 0 is pure SDG (overshoot, zero extra copies); once the budget covers the states victims actually target, overshoot vanishes at a fraction of MCS's n(n+1)/2 copies",
		"at this program size the two allocators nearly coincide; allocation matters more as transactions grow",
	}
	return rows, t, nil
}

// E14Row is one cell of the compile-time clustering comparison.
type E14Row struct {
	Variant      string
	WellDefRatio float64
	LostOps      int64
	MovedWrites  int
	KeptWrites   int
	SemanticsOK  bool
}

// E14Optimizer evaluates §5's anticipated compile-time optimization:
// rewrite scattered programs into (as close as possible to) three-phase
// form, verify semantic equivalence, and measure the effect on
// single-copy rollback.
func E14Optimizer(seed int64) ([]E14Row, *Table, error) {
	w := sim.Generate(sim.GenConfig{
		Txns: 16, DBSize: 16, HotSet: 6, HotProb: 0.8,
		LocksPerTxn: 5, RewriteProb: 0.6, PadOps: 2,
		Shape: sim.Scattered, Seed: seed,
	})
	optimized := sim.Workload{Name: w.Name + "+optimized", NewStore: w.NewStore}
	var moved, kept int
	semanticsOK := true
	for _, p := range w.Programs {
		res, err := optimizer.ClusterWrites(p)
		if err != nil {
			return nil, nil, err
		}
		moved += res.MovedWrites
		kept += res.KeptWrites
		ok, err := optimizer.Equivalent(p, res.Program, w.NewStore)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			semanticsOK = false
		}
		optimized.Programs = append(optimized.Programs, res.Program)
	}

	ratio := func(programs []*txn.Program) float64 {
		var wd, states int
		for _, p := range programs {
			a := txn.Analyze(p)
			wd += a.WellDefinedCount()
			states += a.NumLocks() + 1
		}
		return float64(wd) / float64(states)
	}
	rc := sim.RunConfig{
		Strategy: core.SDG, Policy: deadlock.OrderedMinCost{},
		Scheduler: sim.RoundRobin, Seed: seed,
	}
	before, err := sim.Run(w, rc)
	if err != nil {
		return nil, nil, err
	}
	after, err := sim.Run(optimized, rc)
	if err != nil {
		return nil, nil, err
	}

	rows := []E14Row{
		{Variant: "original (scattered)", WellDefRatio: ratio(w.Programs), LostOps: before.Stats.OpsLost},
		{Variant: "optimized (clustered)", WellDefRatio: ratio(optimized.Programs), LostOps: after.Stats.OpsLost,
			MovedWrites: moved, KeptWrites: kept, SemanticsOK: semanticsOK},
	}
	t := &Table{
		ID:     "E14",
		Title:  "Extension: compile-time write clustering (§5's anticipated optimization)",
		Header: []string{"variant", "well-defined %", "lost ops (SDG)", "writes moved", "writes kept", "semantics preserved"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Variant, pct(r.WellDefRatio), itoa(r.LostOps),
			itoa(int64(r.MovedWrites)), itoa(int64(r.KeptWrites)), fmt.Sprintf("%v", r.SemanticsOK || r.Variant == "original (scattered)"),
		})
	}
	t.Notes = []string{
		"the optimizer moves entity writes as late as data dependencies allow (toward three-phase form)",
		"every transformed program was verified to compute the same final values as the original run alone",
	}
	return rows, t, nil
}
