package experiments

import (
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/sim"
)

func TestE1(t *testing.T) {
	res, table, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != 2 {
		t.Errorf("victim T%d, want T2", res.Victim)
	}
	if len(table.Rows) != 3 {
		t.Errorf("rows = %d", len(table.Rows))
	}
}

func TestE2(t *testing.T) {
	out, _, err := E2Figure2(5)
	if err != nil {
		t.Fatal(err)
	}
	if out["min-cost"].ACommitted {
		t.Error("min-cost should starve A")
	}
	if !out["ordered-min-cost"].ACommitted {
		t.Error("ordered policy should let A commit")
	}
}

func TestE3toE5(t *testing.T) {
	if _, err := E3Figure3(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := E4Figure4(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := E5Figure5(); err != nil {
		t.Fatal(err)
	}
}

func TestE6(t *testing.T) {
	res, _, err := E6Forest(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForestViolations != 0 {
		t.Errorf("forest violations = %d, want 0 (Theorem 1)", res.ForestViolations)
	}
	if res.Deadlocks == 0 {
		t.Error("sweep should provoke at least one deadlock")
	}
}

func TestE7BoundIsTight(t *testing.T) {
	rows, _, err := E7MCSBound([]int{2, 3, 5, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.EntityElems != r.EntityBound {
			t.Errorf("n=%d: entity copies %d, bound %d (Theorem 3 tightness)", r.N, r.EntityElems, r.EntityBound)
		}
		if r.LocalPerLocal != r.LocalBound {
			t.Errorf("n=%d: local copies %d, bound %d", r.N, r.LocalPerLocal, r.LocalBound)
		}
	}
}

func TestE8(t *testing.T) {
	rows, _, err := E8Cutset([]int{3, 5, 8}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio < 1 {
			t.Errorf("greedy beat exact at size %d", r.Participants)
		}
	}
}

func TestE9ShapeHolds(t *testing.T) {
	rows, _, err := E9Strategies(123)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[core.Strategy]sim.Result{}
	for _, r := range rows {
		k := ""
		if r.Hot {
			k = "hot"
		}
		k += string(rune('0' + r.Txns))
		if byKey[k] == nil {
			byKey[k] = map[core.Strategy]sim.Result{}
		}
		byKey[k][r.Strategy] = r.Result
	}
	var totalLostTotal, totalLostMCS, totalLostSDG int64
	for _, m := range byKey {
		totalLostTotal += m[core.Total].Stats.OpsLost
		totalLostMCS += m[core.MCS].Stats.OpsLost
		totalLostSDG += m[core.SDG].Stats.OpsLost
		if m[core.MCS].Stats.Restarts > m[core.Total].Stats.Restarts {
			t.Error("MCS restarted more than Total")
		}
	}
	if totalLostMCS >= totalLostTotal {
		t.Errorf("MCS lost %d ops >= Total's %d: partial rollback shows no advantage", totalLostMCS, totalLostTotal)
	}
	if totalLostSDG >= totalLostTotal {
		t.Errorf("SDG lost %d ops >= Total's %d", totalLostSDG, totalLostTotal)
	}
	if totalLostMCS > totalLostSDG {
		t.Errorf("MCS (%d) should lose no more than SDG (%d): MCS targets are at least as shallow", totalLostMCS, totalLostSDG)
	}
}

func TestE10ShapeHolds(t *testing.T) {
	rows, _, err := E10Structure(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	scattered, clustered, threePhase := rows[0], rows[1], rows[2]
	if scattered.WellDefRatio >= clustered.WellDefRatio {
		t.Errorf("scattered well-defined ratio %.2f >= clustered %.2f", scattered.WellDefRatio, clustered.WellDefRatio)
	}
	if clustered.WellDefRatio != 1 || threePhase.WellDefRatio != 1 {
		t.Errorf("clustered/three-phase should keep all states well-defined: %.2f, %.2f",
			clustered.WellDefRatio, threePhase.WellDefRatio)
	}
	if scattered.Overshoot <= 0 {
		t.Errorf("scattered SDG overshoot = %d, want > 0", scattered.Overshoot)
	}
	if clustered.Overshoot != 0 {
		t.Errorf("clustered SDG overshoot = %d, want 0 (all states well-defined => SDG targets equal MCS)", clustered.Overshoot)
	}
	if threePhase.Overshoot != 0 {
		t.Errorf("three-phase SDG overshoot = %d, want 0", threePhase.Overshoot)
	}
}

func TestE11(t *testing.T) {
	rows, _, err := E11Distributed(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Result.Stats.Deadlocks != 0 && r.Result.Stats.Wounds == 0 {
			t.Errorf("sites=%d %v: deadlock detection fired without wounds under wound-wait", r.Sites, r.Strategy)
		}
	}
	// Partial rollback should not lose more than total under the same
	// wound pattern... wounds differ per strategy (different targets),
	// so compare aggregate lost ops.
	sum := map[core.Strategy]int64{}
	for _, r := range rows {
		sum[r.Strategy] += r.Result.Stats.OpsLost
	}
	if sum[core.MCS] >= sum[core.Total] {
		t.Errorf("distributed: MCS lost %d >= Total %d", sum[core.MCS], sum[core.Total])
	}
}

func TestE12(t *testing.T) {
	rows, _, err := E12Avoidance(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Scheme != "detect+partial (MCS)" && r.Deadlocks != 0 {
			t.Errorf("%s produced %d deadlocks; avoidance must have none", r.Scheme, r.Deadlocks)
		}
	}
}

func TestE13HybridRecoversOvershoot(t *testing.T) {
	rows, _, err := E13Hybrid(7)
	if err != nil {
		t.Fatal(err)
	}
	var budget0, maxBudgetMinGap *E13Row
	for i := range rows {
		r := &rows[i]
		if r.Budget == 0 {
			budget0 = r
		}
		if r.Budget == 8 && r.Allocator == "min-gap" {
			maxBudgetMinGap = r
		}
	}
	if budget0 == nil || maxBudgetMinGap == nil {
		t.Fatal("missing rows")
	}
	if budget0.Overshoot <= 0 {
		t.Errorf("budget 0 overshoot = %d, want > 0 on scattered workload", budget0.Overshoot)
	}
	if maxBudgetMinGap.Overshoot >= budget0.Overshoot {
		t.Errorf("budget 8 overshoot %d should be below budget 0's %d", maxBudgetMinGap.Overshoot, budget0.Overshoot)
	}
	if budget0.PeakCopies != 0 {
		t.Errorf("budget 0 used %d extra copies", budget0.PeakCopies)
	}
}

func TestE14OptimizerClusters(t *testing.T) {
	rows, _, err := E14Optimizer(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	orig, opt := rows[0], rows[1]
	if opt.WellDefRatio <= orig.WellDefRatio {
		t.Errorf("optimizer did not raise well-defined ratio: %.2f -> %.2f", orig.WellDefRatio, opt.WellDefRatio)
	}
	if !opt.SemanticsOK {
		t.Error("optimizer changed semantics")
	}
	if opt.MovedWrites == 0 {
		t.Error("no writes moved")
	}
}

func TestE15(t *testing.T) {
	rows, _, err := E15MessagePassing(7)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[core.Strategy]int64{}
	var msgs1, msgs8 int64
	for _, r := range rows {
		sum[r.Strategy] += r.Metrics.LostOps
		if r.Sites == 1 {
			msgs1 += r.Metrics.Total()
		}
		if r.Sites == 8 {
			msgs8 += r.Metrics.Total()
		}
	}
	if msgs1 != 0 {
		t.Errorf("single-site runs sent %d messages", msgs1)
	}
	if msgs8 == 0 {
		t.Error("eight-site runs sent no messages")
	}
	if sum[core.MCS] > sum[core.Total] {
		t.Errorf("distributed MCS lost %d > Total %d", sum[core.MCS], sum[core.Total])
	}
}

func TestE16ShardingSweep(t *testing.T) {
	rows, tab, err := E16Sharding(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	wantShards := []int{1, 2, 4, 8}
	for i, r := range rows {
		if r.Shards != wantShards[i] {
			t.Errorf("row %d shards = %d, want %d", i, r.Shards, wantShards[i])
		}
		if r.Stats.Commits != rows[0].Stats.Commits {
			t.Errorf("shards=%d commits %d != baseline %d", r.Shards, r.Stats.Commits, rows[0].Stats.Commits)
		}
		if r.Throughput <= 0 {
			t.Errorf("shards=%d nonpositive throughput", r.Shards)
		}
	}
}
