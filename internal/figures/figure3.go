package figures

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// Figure3Result captures the shared/exclusive-lock scenarios of §3.2.
// Asserted properties from the prose:
//
//	(a) with shared locks the deadlock-free concurrency graph is a DAG
//	    but not a forest (one waiter can wait for several holders);
//	(b) one exclusive request can close several cycles at once, all
//	    through the requester; rolling back either the requester or the
//	    single other transaction on every cycle removes all deadlocks;
//	(c) an exclusive request on an entity with two shared holders closes
//	    two cycles sharing only the requester: if the requester is not
//	    rolled back, *both* shared holders must be.
type Figure3Result struct {
	// Part (a).
	AForest   bool
	ADeadlock bool
	AArcs     []waitfor.Arc
	// Part (b).
	BCycles    int
	BVictims   []txn.ID
	BVictimSet string // "requester", "other", or "multi"
	// Part (c).
	CCycles  int
	CVictims []txn.ID
}

// RunFigure3a builds scenario (a): T1 X-holds a; T2 waits for a; T1 and
// T2 share c; T3's exclusive request on c waits for both. No deadlock,
// but the graph is not a forest.
func RunFigure3a() (*Figure3Result, error) {
	store := entity.NewStore(map[string]int64{"a": 0, "c": 0})
	sys := core.New(core.Config{Store: store, Strategy: core.MCS, Policy: deadlock.MinCost{}})

	t1 := sys.MustRegister(txn.NewProgram("T1").Local("acc", 0).LockX("a").LockS("c").MustBuild())
	t2 := sys.MustRegister(txn.NewProgram("T2").Local("acc", 0).LockS("c").LockS("a").MustBuild())
	t3 := sys.MustRegister(txn.NewProgram("T3").Local("acc", 0).LockX("c").MustBuild())

	if err := stepN(sys, t1, 2); err != nil { // T1 holds a (X), c (S)
		return nil, err
	}
	if err := stepN(sys, t2, 1); err != nil { // T2 holds c (S)
		return nil, err
	}
	if r, err := stepUntilBlocked(sys, t2, 5); err != nil { // T2 waits on a
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T2 expected plain block, got %v", r.Outcome)
	}
	if r, err := stepUntilBlocked(sys, t3, 5); err != nil { // T3 waits on c (T1 and T2)
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T3 expected plain block, got %v", r.Outcome)
	}
	res := &Figure3Result{
		AForest:   sys.GraphIsForest(),
		ADeadlock: sys.GraphHasCycle(),
		AArcs:     sys.Arcs(),
	}
	return res, nil
}

// RunFigure3b builds scenario (b): T1 and T3 share a; T2's exclusive
// request on a waits for both; T3 waits for c held exclusively by T1;
// T1's request for e (exclusively held by T2) then closes two cycles,
// {T1,T2} and {T1,T2,T3}, both containing T1 and T2.
func RunFigure3b(policy deadlock.Policy) (*Figure3Result, error) {
	store := entity.NewStore(map[string]int64{"a": 0, "c": 0, "e": 0})
	sys := core.New(core.Config{Store: store, Strategy: core.MCS, Policy: policy})

	t1 := sys.MustRegister(txn.NewProgram("T1").Local("acc", 0).
		LockS("a").LockX("c").LockX("e").MustBuild())
	t2 := sys.MustRegister(txn.NewProgram("T2").Local("acc", 0).
		LockX("e").LockX("a").MustBuild())
	t3 := sys.MustRegister(txn.NewProgram("T3").Local("acc", 0).
		LockS("a").LockS("c").MustBuild())

	if err := stepN(sys, t1, 2); err != nil { // T1 holds a(S), c(X)
		return nil, err
	}
	if err := stepN(sys, t3, 1); err != nil { // T3 holds a(S)
		return nil, err
	}
	if err := stepN(sys, t2, 1); err != nil { // T2 holds e(X)
		return nil, err
	}
	if r, err := stepUntilBlocked(sys, t2, 5); err != nil { // T2 waits on a -> {T1,T3}
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T2 expected plain block, got %v", r.Outcome)
	}
	if r, err := stepUntilBlocked(sys, t3, 5); err != nil { // T3 waits on c -> T1
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T3 expected plain block, got %v", r.Outcome)
	}
	r, err := stepUntilBlocked(sys, t1, 5) // T1 requests e -> deadlocks
	if err != nil {
		return nil, err
	}
	if r.Outcome != core.BlockedDeadlock {
		return nil, fmt.Errorf("T1 expected deadlock, got %v", r.Outcome)
	}
	res := &Figure3Result{BCycles: len(r.Deadlock.Cycles)}
	for _, v := range r.Deadlock.Victims {
		res.BVictims = append(res.BVictims, v.Txn)
	}
	switch {
	case len(res.BVictims) == 1 && res.BVictims[0] == t1:
		res.BVictimSet = "requester"
	case len(res.BVictims) == 1:
		res.BVictimSet = "other"
	default:
		res.BVictimSet = "multi"
	}
	return res, nil
}

// RunFigure3c builds scenario (c): T1 X-holds a and b; T2 and T3 each
// share f and wait for T1; T1's exclusive request on f closes two
// cycles sharing only T1. With T1's rollback made expensive, the
// min-cost policy must roll back both T2 and T3.
func RunFigure3c() (*Figure3Result, error) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0, "f": 0})
	sys := core.New(core.Config{Store: store, Strategy: core.MCS, Policy: deadlock.MinCost{}})

	// T1 pads heavily after locking a so its rollback cost (back to the
	// state before a, the first contested entity) dwarfs T2+T3's
	// combined.
	b1 := txn.NewProgram("T1").Local("acc", 0).LockX("a")
	padded(b1, 40)
	b1.LockX("b").LockX("f")
	t1 := sys.MustRegister(b1.MustBuild())

	t2 := sys.MustRegister(txn.NewProgram("T2").Local("acc", 0).
		LockS("f").LockS("a").MustBuild())
	t3 := sys.MustRegister(txn.NewProgram("T3").Local("acc", 0).
		LockS("f").LockS("b").MustBuild())

	if err := stepN(sys, t1, 42); err != nil { // T1 holds a, b
		return nil, err
	}
	if err := stepN(sys, t2, 1); err != nil { // T2 holds f(S)
		return nil, err
	}
	if err := stepN(sys, t3, 1); err != nil { // T3 holds f(S)
		return nil, err
	}
	if r, err := stepUntilBlocked(sys, t2, 5); err != nil { // T2 waits on a
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T2 expected plain block, got %v", r.Outcome)
	}
	if r, err := stepUntilBlocked(sys, t3, 5); err != nil { // T3 waits on b
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T3 expected plain block, got %v", r.Outcome)
	}
	r, err := stepUntilBlocked(sys, t1, 5) // T1 requests f -> two deadlocks
	if err != nil {
		return nil, err
	}
	if r.Outcome != core.BlockedDeadlock {
		return nil, fmt.Errorf("T1 expected deadlock, got %v", r.Outcome)
	}
	res := &Figure3Result{CCycles: len(r.Deadlock.Cycles)}
	for _, v := range r.Deadlock.Victims {
		res.CVictims = append(res.CVictims, v.Txn)
	}
	return res, nil
}
