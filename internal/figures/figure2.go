package figures

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
)

// Figure2Result demonstrates §3.1's potentially infinite mutual
// preemption (Figure 2) and its Theorem 2 cure.
//
// The scenario is an open system: a long-lived cheap transaction A
// repeatedly deadlocks with a stream of expensive transactions B_k.
// Under the unconstrained min-cost policy, A is always the cheaper
// victim and is preempted every round — it never commits, no matter how
// many rounds run. Under the entry-ordered policy of Theorem 2, the
// younger conflict-causer B_k is the only permissible victim, so A
// commits in the first round.
type Figure2Result struct {
	Policy       string
	Rounds       int
	APreempted   int64
	ACommitted   bool
	BCommitted   int
	ACommitRound int // round at which A committed, -1 if never
}

func fig2A() *txn.Program {
	return txn.NewProgram("A").Local("acc", 0).
		LockX("x").
		LockX("y").
		MustBuild()
}

func fig2B(k int) *txn.Program {
	b := txn.NewProgram(fmt.Sprintf("B%d", k)).Local("acc", 0).LockX("y")
	padded(b, 10)
	return b.LockX("x").MustBuild()
}

// RunFigure2 plays rounds rounds of the preemption scenario under the
// given policy and reports whether A ever commits and how often it was
// preempted.
func RunFigure2(policy deadlock.Policy, rounds int) (*Figure2Result, error) {
	store := entity.NewStore(map[string]int64{"x": 0, "y": 0})
	var preempted int64
	sys := core.New(core.Config{
		Store:    store,
		Strategy: core.MCS,
		Policy:   policy,
	})
	res := &Figure2Result{Policy: policy.Name(), Rounds: rounds, ACommitRound: -1}
	a, err := sys.Register(fig2A())
	if err != nil {
		return nil, err
	}
	var aRollbacksBefore int64
	for k := 0; k < rounds; k++ {
		if st, _ := sys.Status(a); st == core.StatusCommitted {
			break
		}
		bID, err := sys.Register(fig2B(k))
		if err != nil {
			return nil, err
		}
		// A locks x (it is at pc 0 either initially or after preemption).
		if err := stepN(sys, a, 1); err != nil {
			return nil, err
		}
		// B_k locks y.
		if err := stepN(sys, bID, 1); err != nil {
			return nil, err
		}
		// A requests y -> waits on B_k.
		if r, err := stepUntilBlocked(sys, a, 5); err != nil {
			return nil, err
		} else if r.Outcome != core.Blocked {
			return nil, fmt.Errorf("round %d: A expected plain block, got %v", k, r.Outcome)
		}
		// B_k pads then requests x -> deadlock.
		r, err := stepUntilBlocked(sys, bID, 20)
		if err != nil {
			return nil, err
		}
		if r.Outcome != core.BlockedDeadlock {
			return nil, fmt.Errorf("round %d: B expected deadlock, got %v", k, r.Outcome)
		}
		aStats := sys.TxnStatsOf(a)
		aWasVictim := aStats.Rollbacks > aRollbacksBefore
		if aWasVictim {
			preempted++
			aRollbacksBefore = aStats.Rollbacks
		}
		if aWasVictim {
			// A was preempted; B_k proceeds to commit while A has not
			// yet been rescheduled — the Figure 2 repetition.
			if err := stepToCommit(sys, bID, 100); err != nil {
				return nil, err
			}
		} else {
			// B_k was rolled back; A was granted y and runs to commit,
			// then B_k finishes against a free database.
			if err := stepToCommit(sys, a, 100); err != nil {
				return nil, err
			}
			res.ACommitRound = k
			if err := stepToCommit(sys, bID, 100); err != nil {
				return nil, err
			}
		}
		if st, _ := sys.Status(bID); st == core.StatusCommitted {
			res.BCommitted++
		}
	}
	st, _ := sys.Status(a)
	res.ACommitted = st == core.StatusCommitted
	res.APreempted = preempted
	return res, nil
}
