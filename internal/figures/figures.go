// Package figures reconstructs the paper's five figures as executable
// scenarios on the real engine. Figure 1's numbers survive in the text
// and are reproduced exactly; Figures 2-5 survive as narrative and are
// reconstructed to satisfy every property the prose asserts (see
// DESIGN.md §2). Each scenario returns a typed result consumed by both
// the test suite and cmd/prfigures.
package figures

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// stepN steps id n times, requiring every step to progress (grant or
// plain execution).
func stepN(sys *core.System, id txn.ID, n int) error {
	for i := 0; i < n; i++ {
		res, err := sys.Step(id)
		if err != nil {
			return err
		}
		if res.Outcome != core.Progressed && res.Outcome != core.Committed {
			return fmt.Errorf("figures: step %d of %v: unexpected outcome %v", i, id, res.Outcome)
		}
	}
	return nil
}

// stepUntilBlocked steps id until its lock request blocks (with or
// without deadlock), returning the blocking step's result.
func stepUntilBlocked(sys *core.System, id txn.ID, max int) (core.StepResult, error) {
	for i := 0; i < max; i++ {
		res, err := sys.Step(id)
		if err != nil {
			return res, err
		}
		switch res.Outcome {
		case core.Blocked, core.BlockedDeadlock:
			return res, nil
		case core.Progressed:
			continue
		default:
			return res, fmt.Errorf("figures: %v: unexpected outcome %v before blocking", id, res.Outcome)
		}
	}
	return core.StepResult{}, fmt.Errorf("figures: %v did not block within %d steps", id, max)
}

// stepToCommit steps id to completion.
func stepToCommit(sys *core.System, id txn.ID, max int) error {
	for i := 0; i < max; i++ {
		res, err := sys.Step(id)
		if err != nil {
			return err
		}
		if res.Outcome == core.Committed {
			return nil
		}
		if res.Outcome != core.Progressed {
			return fmt.Errorf("figures: %v: unexpected outcome %v before commit", id, res.Outcome)
		}
	}
	return fmt.Errorf("figures: %v did not commit within %d steps", id, max)
}

// padded appends n accumulator computes to b.
func padded(b *txn.Builder, n int) *txn.Builder {
	for i := 0; i < n; i++ {
		b.Compute("acc", value.Add(value.L("acc"), value.C(1)))
	}
	return b
}
