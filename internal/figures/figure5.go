package figures

import (
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Figure5Result reproduces §5's transaction-structure comparison: the
// same operations as Figure 4's T, reordered so writes to each entity
// cluster within one lock interval, yield far more well-defined states
// ("rollbacks need not proceed as often beyond the minimum extent
// necessary").
type Figure5Result struct {
	// ScatteredWellDefined and ClusteredWellDefined count well-defined
	// lock states (of 7) for the two orderings.
	ScatteredWellDefined int
	ClusteredWellDefined int
	// ScatteredClustering and ClusteredClustering are the clustering
	// indexes (total destroyed states; 0 = perfectly clustered).
	ScatteredClustering int
	ClusteredClustering int
	// ThreePhaseWellDefined counts well-defined states for the §5
	// three-phase variant (acquire, update, release).
	ThreePhaseWellDefined int
	ThreePhaseIs3P        bool
}

// Figure5Clustered is Figure 4's T with the same writes moved next to
// their entities' lock requests: every entity is written in exactly one
// lock interval, so no lock state is destroyed.
func Figure5Clustered() *txn.Program {
	b := txn.NewProgram("T2-clustered").
		Local("la", 0).Local("lb", 0).Local("ld", 0)
	b.LockX("A")
	b.Read("A", "la")
	b.Write("A", value.Add(value.L("la"), value.C(1)))
	b.Write("A", value.Add(value.L("la"), value.C(2)))
	b.LockX("B")
	b.Read("B", "lb")
	b.Write("B", value.Add(value.L("lb"), value.C(1)))
	b.Write("B", value.Add(value.L("lb"), value.C(2)))
	b.LockX("C")
	b.LockX("D")
	b.Read("D", "ld")
	b.Write("D", value.Add(value.L("ld"), value.C(1)))
	b.Write("D", value.Add(value.L("ld"), value.C(2)))
	b.LockX("E")
	b.LockX("F")
	return b.MustBuild()
}

// Figure5ThreePhase is the same work in §5's three-phase form: all six
// locks (with reads), a DeclareLastLock, then every write.
func Figure5ThreePhase() *txn.Program {
	b := txn.NewProgram("T2-threephase").
		Local("la", 0).Local("lb", 0).Local("ld", 0)
	b.LockX("A")
	b.Read("A", "la")
	b.LockX("B")
	b.Read("B", "lb")
	b.LockX("C")
	b.LockX("D")
	b.Read("D", "ld")
	b.LockX("E")
	b.LockX("F")
	b.DeclareLastLock()
	b.Write("A", value.Add(value.L("la"), value.C(1)))
	b.Write("A", value.Add(value.L("la"), value.C(2)))
	b.Write("B", value.Add(value.L("lb"), value.C(1)))
	b.Write("B", value.Add(value.L("lb"), value.C(2)))
	b.Write("D", value.Add(value.L("ld"), value.C(1)))
	b.Write("D", value.Add(value.L("ld"), value.C(2)))
	return b.MustBuild()
}

// RunFigure5 compares the three structures statically.
func RunFigure5() (*Figure5Result, error) {
	scattered := txn.Analyze(Figure4T(true))
	clustered := txn.Analyze(Figure5Clustered())
	threePhase := txn.Analyze(Figure5ThreePhase())
	return &Figure5Result{
		ScatteredWellDefined:  scattered.WellDefinedCount(),
		ClusteredWellDefined:  clustered.WellDefinedCount(),
		ScatteredClustering:   scattered.ClusteringIndex(),
		ClusteredClustering:   clustered.ClusteringIndex(),
		ThreePhaseWellDefined: threePhase.WellDefinedCount(),
		ThreePhaseIs3P:        txn.IsThreePhase(Figure5ThreePhase()),
	}, nil
}
