package figures

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
	"partialrollback/internal/waitfor"
)

// Figure1Result reproduces §3.1's worked example. Paper facts asserted:
//
//   - the concurrency graph before the final request is a forest;
//   - T4's request for c closes exactly one cycle {T4, T3, T2};
//   - rollback costs are T2: 12-8=4, T3: 11-5=6, T4: 15-10=5;
//   - the min-cost victim is T2, rolled back until it releases b;
//   - afterwards T1 no longer waits for T2 (Figure 1(b)).
type Figure1Result struct {
	// T1..T6 are the transaction IDs, indexed 1..6 (index 0 unused).
	T [7]txn.ID
	// ArcsBefore is the concurrency graph just before T4's request.
	ArcsBefore []waitfor.Arc
	// Report is the deadlock report for T4's request on c.
	Report *core.DeadlockReport
	// Costs are the candidate rollback costs by transaction index.
	Costs map[int]int64
	// Victim is the transaction index chosen (want 2).
	Victim int
	// ArcsAfter is the concurrency graph after resolution (Figure 1(b)).
	ArcsAfter []waitfor.Arc
	// T1Waiting and T3HoldsB capture the post-rollback facts.
	T1Waiting bool
	T3HoldsB  bool
	// ForestBefore is Theorem 1's check on the pre-deadlock graph.
	ForestBefore bool
	// Sys is the engine, for further inspection.
	Sys *core.System
}

// prefixProg builds a transaction that locks a private entity, pads to
// the desired state indices, and issues its contested requests at the
// paper's exact state numbers.
func fig1T1() *txn.Program {
	// Requests d at state index 3.
	b := txn.NewProgram("T1").Local("acc", 0).LockX("p1")
	padded(b, 2)
	return b.LockX("d").MustBuild()
}

func fig1T2() *txn.Program {
	// Locks b at state 8, d at state 10, requests e at state 12.
	b := txn.NewProgram("T2").Local("acc", 0).LockX("p2")
	padded(b, 7) // states 1..7; request b at state 8
	b.LockX("b")
	padded(b, 1) // state 10 next
	b.LockX("d")
	padded(b, 1)
	return b.LockX("e").MustBuild()
}

func fig1T3() *txn.Program {
	// Locks c at state 5, requests b at state 11.
	b := txn.NewProgram("T3").Local("acc", 0).LockX("p3")
	padded(b, 4)
	b.LockX("c")
	padded(b, 5)
	return b.LockX("b").MustBuild()
}

func fig1T4() *txn.Program {
	// Locks e at state 10, requests c at state 15.
	b := txn.NewProgram("T4").Local("acc", 0).LockX("p4")
	padded(b, 9)
	b.LockX("e")
	padded(b, 4)
	return b.LockX("c").MustBuild()
}

func fig1T5() *txn.Program {
	return txn.NewProgram("T5").Local("acc", 0).LockX("p5").
		Compute("acc", value.C(1)).LockX("h").MustBuild()
}

func fig1T6() *txn.Program {
	b := txn.NewProgram("T6").Local("acc", 0).LockX("h")
	return padded(b, 30).MustBuild()
}

// Figure1Store returns the entity store for the Figure 1 scenario.
func Figure1Store() *entity.Store {
	return entity.NewStore(map[string]int64{
		"b": 0, "c": 0, "d": 0, "e": 0, "h": 0,
		"p1": 0, "p2": 0, "p3": 0, "p4": 0, "p5": 0,
	})
}

// RunFigure1 executes the Figure 1 scenario under the multi-copy
// strategy with the pure min-cost policy and returns the observed
// facts.
func RunFigure1() (*Figure1Result, error) {
	sys := core.New(core.Config{
		Store:    Figure1Store(),
		Strategy: core.MCS,
		Policy:   deadlock.MinCost{},
	})
	res := &Figure1Result{Sys: sys, Costs: map[int]int64{}}
	progs := []*txn.Program{nil, fig1T1(), fig1T2(), fig1T3(), fig1T4(), fig1T5(), fig1T6()}
	for i := 1; i <= 6; i++ {
		id, err := sys.Register(progs[i])
		if err != nil {
			return nil, err
		}
		res.T[i] = id
	}
	// Build the Figure 1(a) configuration.
	if err := stepN(sys, res.T[2], 11); err != nil { // T2 holds p2, b, d
		return nil, err
	}
	if err := stepN(sys, res.T[3], 6); err != nil { // T3 holds p3, c
		return nil, err
	}
	if err := stepN(sys, res.T[4], 11); err != nil { // T4 holds p4, e
		return nil, err
	}
	if r, err := stepUntilBlocked(sys, res.T[1], 10); err != nil { // T1 waits on d
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T1 expected plain block, got %v", r.Outcome)
	}
	if r, err := stepUntilBlocked(sys, res.T[3], 10); err != nil { // T3 waits on b
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T3 expected plain block, got %v", r.Outcome)
	}
	if r, err := stepUntilBlocked(sys, res.T[2], 10); err != nil { // T2 waits on e
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T2 expected plain block, got %v", r.Outcome)
	}
	if err := stepN(sys, res.T[6], 1); err != nil { // T6 holds h
		return nil, err
	}
	if r, err := stepUntilBlocked(sys, res.T[5], 10); err != nil { // T5 waits on h
		return nil, err
	} else if r.Outcome != core.Blocked {
		return nil, fmt.Errorf("T5 expected plain block, got %v", r.Outcome)
	}

	res.ArcsBefore = sys.Arcs()
	res.ForestBefore = sys.GraphIsForest()

	// T4 requests c at state 15, closing the cycle.
	r, err := stepUntilBlocked(sys, res.T[4], 10)
	if err != nil {
		return nil, err
	}
	if r.Outcome != core.BlockedDeadlock || r.Deadlock == nil {
		return nil, fmt.Errorf("T4's request should deadlock, got %v", r.Outcome)
	}
	res.Report = r.Deadlock
	for i := 1; i <= 6; i++ {
		if v, ok := r.Deadlock.Candidates[res.T[i]]; ok {
			res.Costs[i] = v.Cost
		}
	}
	if len(r.Deadlock.Victims) == 1 {
		for i := 1; i <= 6; i++ {
			if res.T[i] == r.Deadlock.Victims[0].Txn {
				res.Victim = i
			}
		}
	}
	res.ArcsAfter = sys.Arcs()
	_, res.T1Waiting = sys.WaitingOn(res.T[1])
	res.T3HoldsB = sys.HoldsExclusive(res.T[3], "b")
	return res, nil
}
