package figures

import (
	"fmt"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/graph"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Figure4Result reproduces §4's state-dependency-graph example.
// Asserted properties from the prose:
//
//   - the six-lock transaction T with scattered writes has no
//     nontrivial well-defined states (only lock indexes 0 and 6);
//   - deleting one write operation yields T' whose lock state with
//     lock index 4 is well-defined;
//   - T' can be rolled back from its final state to lock state 4 by
//     simply releasing the locks it holds on entities E and F;
//   - the well-defined states correspond to articulation points of the
//     state-dependency graph (Corollary 1).
type Figure4Result struct {
	// WellDefinedT / WellDefinedTPrime are the statically well-defined
	// lock states of the two programs.
	WellDefinedT      []int
	WellDefinedTPrime []int
	// DynamicTPrime is the engine's view (single-copy strategy) of T''s
	// well-defined states just before commit; must equal the static
	// view.
	DynamicTPrime []int
	// ArticulationMatches reports that for both programs the
	// articulation points of the exported SDG plus the two trivial
	// endpoints equal the well-defined states.
	ArticulationMatches bool
	// RollbackReleases lists the entities released when T' is rolled
	// back from its final lock state to lock state 4 (want E and F).
	RollbackReleases []string
	// RestoredOK reports that after the rollback T''s surviving local
	// copies and locals match a fresh execution of the same prefix.
	RestoredOK bool
}

// Figure4T builds the paper's T (Figure 4(a) reconstruction): six
// exclusive locks A..F with writes scattered so that every interior
// lock state is destroyed:
//
//	A written at lock indexes 1 and 4  -> destroys states 1,2,3
//	D written at lock indexes 4 and 5  -> destroys state 4
//	B written at lock indexes 5 and 6  -> destroys state 5
//
// With the C<-K style write deleted (see Figure4TPrime), state 4
// becomes well-defined.
func Figure4T(includeDWrite bool) *txn.Program {
	name := "T"
	if !includeDWrite {
		name = "T-prime"
	}
	b := txn.NewProgram(name).
		Local("la", 0).Local("lb", 0).Local("ld", 0)
	b.LockX("A")
	// lock index 1
	b.Read("A", "la")
	b.Write("A", value.Add(value.L("la"), value.C(1)))
	b.LockX("B")
	// lock index 2
	b.Read("B", "lb")
	b.LockX("C")
	// lock index 3
	b.LockX("D")
	// lock index 4
	b.Read("D", "ld")
	b.Write("A", value.Add(value.L("la"), value.C(2)))
	b.Write("D", value.Add(value.L("ld"), value.C(1)))
	b.LockX("E")
	// lock index 5
	if includeDWrite {
		b.Write("D", value.Add(value.L("ld"), value.C(2)))
	}
	b.Write("B", value.Add(value.L("lb"), value.C(1)))
	b.LockX("F")
	// lock index 6
	b.Write("B", value.Add(value.L("lb"), value.C(2)))
	return b.MustBuild()
}

// Figure4Store returns a store for the Figure 4/5 entities.
func Figure4Store() *entity.Store {
	return entity.NewStore(map[string]int64{
		"A": 10, "B": 20, "C": 30, "D": 40, "E": 50, "F": 60,
	})
}

// articulationWellDefined checks Corollary 1 on a program: the interior
// well-defined states of the completed transaction are exactly the
// articulation points of its exported state-dependency graph.
func articulationWellDefined(p *txn.Program) (bool, error) {
	a := txn.Analyze(p)
	n := a.NumLocks()
	// Build the SDG the way internal/sdg exports it: chain plus write
	// interval edges {u-1, j}.
	g := graph.NewUndirected()
	for q := 0; q <= n; q++ {
		g.AddNode(q)
		if q > 0 {
			g.AddEdge(q-1, q)
		}
	}
	for _, idxs := range a.WriteLockIndexes {
		if len(idxs) > 1 {
			lo := idxs[0] - 1
			if lo < 0 {
				lo = 0
			}
			g.AddEdge(lo, idxs[len(idxs)-1])
		}
	}
	arts := map[int]bool{}
	for _, v := range g.ArticulationPoints() {
		arts[v] = true
	}
	wd := a.StaticWellDefined()
	for q := 1; q < n; q++ {
		if wd[q] != arts[q] {
			return false, fmt.Errorf("state %d: well-defined=%v articulation=%v", q, wd[q], arts[q])
		}
	}
	return true, nil
}

// RunFigure4 executes the scenario and collects all asserted facts.
func RunFigure4() (*Figure4Result, error) {
	progT := Figure4T(true)
	progTP := Figure4T(false)
	res := &Figure4Result{}

	aT := txn.Analyze(progT)
	aTP := txn.Analyze(progTP)
	for q, ok := range aT.StaticWellDefined() {
		if ok {
			res.WellDefinedT = append(res.WellDefinedT, q)
		}
	}
	for q, ok := range aTP.StaticWellDefined() {
		if ok {
			res.WellDefinedTPrime = append(res.WellDefinedTPrime, q)
		}
	}
	okT, err := articulationWellDefined(progT)
	if err != nil {
		return nil, fmt.Errorf("figure4 T: %w", err)
	}
	okTP, err := articulationWellDefined(progTP)
	if err != nil {
		return nil, fmt.Errorf("figure4 T': %w", err)
	}
	res.ArticulationMatches = okT && okTP

	// Dynamic check: run T' alone under the single-copy strategy up to
	// (but not including) Commit, then compare the engine's
	// well-defined states with the static analysis.
	sys := core.New(core.Config{Store: Figure4Store(), Strategy: core.SDG, Policy: deadlock.MinCost{}})
	id, err := sys.Register(progTP)
	if err != nil {
		return nil, err
	}
	if err := stepN(sys, id, len(progTP.Ops)-1); err != nil {
		return nil, err
	}
	res.DynamicTPrime, err = sys.WellDefinedStates(id)
	if err != nil {
		return nil, err
	}

	// Rollback check: force T' back from its final lock state to state
	// 4 and verify only E and F are released and the surviving state
	// matches a fresh re-execution of the prefix.
	heldBefore := sys.Held(id)
	if err := sys.ForceRollback(id, 4); err != nil {
		return nil, err
	}
	heldAfter := map[string]bool{}
	for _, e := range sys.Held(id) {
		heldAfter[e] = true
	}
	for _, e := range heldBefore {
		if !heldAfter[e] {
			res.RollbackReleases = append(res.RollbackReleases, e)
		}
	}

	// Fresh execution of the same prefix: step a new instance to the
	// same lock state (pc of lock request with lock index 4, i.e. the
	// request for E).
	sys2 := core.New(core.Config{Store: Figure4Store(), Strategy: core.SDG, Policy: deadlock.MinCost{}})
	id2, err := sys2.Register(Figure4T(false))
	if err != nil {
		return nil, err
	}
	reqE := aTP.Requests[4].OpIndex
	if err := stepN(sys2, id2, reqE); err != nil {
		return nil, err
	}
	l1, err := sys.Locals(id)
	if err != nil {
		return nil, err
	}
	l2, err := sys2.Locals(id2)
	if err != nil {
		return nil, err
	}
	res.RestoredOK = fmt.Sprint(l1) == fmt.Sprint(l2)
	for _, e := range sys2.Held(id2) {
		v1, ok1 := sys.LocalCopy(id, e)
		v2, ok2 := sys2.LocalCopy(id2, e)
		if ok1 != ok2 || v1 != v2 {
			res.RestoredOK = false
		}
	}
	return res, nil
}
