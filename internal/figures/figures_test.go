package figures

import (
	"reflect"
	"testing"

	"partialrollback/internal/deadlock"
	"partialrollback/internal/txn"
)

func TestFigure1(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ForestBefore {
		t.Error("pre-deadlock concurrency graph should be a forest (Theorem 1)")
	}
	if got := len(res.Report.Cycles); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	wantCosts := map[int]int64{2: 4, 3: 6, 4: 5}
	for i, want := range wantCosts {
		if got := res.Costs[i]; got != want {
			t.Errorf("cost of T%d = %d, want %d (paper: 12-8=4, 11-5=6, 15-10=5)", i, got, want)
		}
	}
	if res.Victim != 2 {
		t.Errorf("victim = T%d, want T2", res.Victim)
	}
	if res.T1Waiting {
		t.Error("T1 should no longer wait for T2 after the rollback (Figure 1(b))")
	}
	if !res.T3HoldsB {
		t.Error("T3 should hold b after T2's rollback")
	}
	for _, a := range res.ArcsAfter {
		if a.Waiter == res.T[1] {
			t.Errorf("T1 still waiting: %v", a)
		}
	}
}

func TestFigure2MinCostPreemptsForever(t *testing.T) {
	const rounds = 10
	res, err := RunFigure2(deadlock.MinCost{}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if res.ACommitted {
		t.Error("under min-cost, A should never commit (potentially infinite mutual preemption)")
	}
	if res.APreempted != rounds {
		t.Errorf("A preempted %d times, want %d", res.APreempted, rounds)
	}
	if res.BCommitted != rounds {
		t.Errorf("B commits = %d, want %d", res.BCommitted, rounds)
	}
}

func TestFigure2OrderedPolicyTerminates(t *testing.T) {
	res, err := RunFigure2(deadlock.OrderedMinCost{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ACommitted {
		t.Error("under the Theorem 2 ordered policy, A must commit")
	}
	if res.ACommitRound != 0 {
		t.Errorf("A committed in round %d, want 0", res.ACommitRound)
	}
	if res.APreempted != 0 {
		t.Errorf("A preempted %d times, want 0", res.APreempted)
	}
}

func TestFigure3a(t *testing.T) {
	res, err := RunFigure3a()
	if err != nil {
		t.Fatal(err)
	}
	if res.AForest {
		t.Error("shared-lock graph should not be a forest")
	}
	if res.ADeadlock {
		t.Error("scenario (a) has no deadlock")
	}
	if len(res.AArcs) != 3 {
		t.Errorf("arcs = %v, want 3 (T2->T1 over a; T3->T1 and T3->T2 over c)", res.AArcs)
	}
}

func TestFigure3b(t *testing.T) {
	res, err := RunFigure3b(deadlock.MinCost{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BCycles != 2 {
		t.Errorf("cycles = %d, want 2", res.BCycles)
	}
	if res.BVictimSet != "other" {
		t.Errorf("victim set = %q (%v), want single non-requester (T2)", res.BVictimSet, res.BVictims)
	}
}

func TestFigure3bRequesterPolicy(t *testing.T) {
	res, err := RunFigure3b(deadlock.Requester{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BCycles != 2 {
		t.Errorf("cycles = %d, want 2", res.BCycles)
	}
	if res.BVictimSet != "requester" {
		t.Errorf("victim set = %q, want requester", res.BVictimSet)
	}
}

func TestFigure3c(t *testing.T) {
	res, err := RunFigure3c()
	if err != nil {
		t.Fatal(err)
	}
	if res.CCycles != 2 {
		t.Errorf("cycles = %d, want 2", res.CCycles)
	}
	if len(res.CVictims) != 2 {
		t.Errorf("victims = %v, want both shared holders (T2 and T3)", res.CVictims)
	}
}

func TestFigure4(t *testing.T) {
	res, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 6}; !reflect.DeepEqual(res.WellDefinedT, want) {
		t.Errorf("T well-defined = %v, want %v (only trivial states)", res.WellDefinedT, want)
	}
	if want := []int{0, 4, 6}; !reflect.DeepEqual(res.WellDefinedTPrime, want) {
		t.Errorf("T' well-defined = %v, want %v (lock index 4 becomes well-defined)", res.WellDefinedTPrime, want)
	}
	if !reflect.DeepEqual(res.DynamicTPrime, res.WellDefinedTPrime) {
		t.Errorf("engine view %v != static view %v", res.DynamicTPrime, res.WellDefinedTPrime)
	}
	if !res.ArticulationMatches {
		t.Error("well-defined states must equal SDG articulation points (Corollary 1)")
	}
	if want := []string{"E", "F"}; !reflect.DeepEqual(res.RollbackReleases, want) {
		t.Errorf("rollback to state 4 released %v, want %v", res.RollbackReleases, want)
	}
	if !res.RestoredOK {
		t.Error("post-rollback state must match a fresh execution of the prefix")
	}
}

func TestFigure5(t *testing.T) {
	res, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	if res.ScatteredWellDefined != 2 {
		t.Errorf("scattered well-defined = %d, want 2", res.ScatteredWellDefined)
	}
	if res.ClusteredWellDefined != 7 {
		t.Errorf("clustered well-defined = %d, want 7", res.ClusteredWellDefined)
	}
	if res.ThreePhaseWellDefined != 7 {
		t.Errorf("three-phase well-defined = %d, want 7", res.ThreePhaseWellDefined)
	}
	if res.ScatteredClustering <= res.ClusteredClustering {
		t.Errorf("clustering index: scattered %d should exceed clustered %d",
			res.ScatteredClustering, res.ClusteredClustering)
	}
	if !res.ThreePhaseIs3P {
		t.Error("three-phase program not recognized by txn.IsThreePhase")
	}
	if !txn.IsThreePhase(Figure5ThreePhase()) {
		t.Error("IsThreePhase(Figure5ThreePhase()) = false")
	}
}
