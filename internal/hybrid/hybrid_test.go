package hybrid

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// scatteredProg destroys states 1..4 of 5: a@[1,3], b@[3,5].
func scatteredProg() *txn.Program {
	return txn.NewProgram("S").
		Local("x", 0).
		LockX("a"). // 0
		Write("a", value.C(1)).
		LockX("b"). // 1
		LockX("c"). // 2
		Write("a", value.C(2)).
		Write("b", value.C(1)).
		LockX("d"). // 3
		LockX("e"). // 4
		Write("b", value.C(2)).
		MustBuild()
}

func TestDestroyedStates(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	// a written at 1 and 3 -> destroys 1,2; b written at 3 and 5 ->
	// destroys 3,4.
	wd := a.StaticWellDefined()
	want := []bool{true, false, false, false, false, true}
	if !reflect.DeepEqual(wd, want) {
		t.Fatalf("well-defined = %v", wd)
	}
	if got := destroyedStates(a); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("destroyed = %v", got)
	}
}

func TestMinGapAllocator(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	// With budget 1, repairing a middle state (2 or 3) cuts the gap
	// 0..5 best.
	got := (MinGap{}).Choose(a, 1)
	if len(got) != 1 || (got[0] != 2 && got[0] != 3) {
		t.Errorf("min-gap budget 1 = %v", got)
	}
	// Budget >= 4 repairs everything.
	if got := (MinGap{}).Choose(a, 10); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("min-gap budget 10 = %v", got)
	}
	if got := (MinGap{}).Choose(a, 0); len(got) != 0 {
		t.Errorf("budget 0 = %v", got)
	}
}

func TestSpacedAllocator(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	got := (Spaced{}).Choose(a, 2)
	if len(got) == 0 || len(got) > 2 {
		t.Errorf("spaced = %v", got)
	}
	for _, q := range got {
		if q < 1 || q > 4 {
			t.Errorf("spaced picked non-destroyed state %d", q)
		}
	}
	if got := (Spaced{}).Choose(a, 99); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("spaced all = %v", got)
	}
}

func TestStateCheckpointLifecycle(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	st := New(a, 2, MinGap{})
	g := st.SDG()
	// Simulate execution: lock, write a, lock, lock, write a, write b...
	g.OnLock() // 1
	g.OnWrite("a")
	if st.Planned(1) {
		// fine either way; just exercise Planned
		_ = st
	}
	// Pretend the engine checkpoints state 2 and 3 when passing them.
	g.OnLock() // 2
	st.TakeCheckpoint(2, []int64{5}, []EntityCopy{{Ent: 0, Val: 1}, {Ent: 1, Val: 7}})
	g.OnLock() // 3
	g.OnWrite("a")
	g.OnWrite("b")
	st.TakeCheckpoint(3, []int64{6}, []EntityCopy{{Ent: 0, Val: 2}, {Ent: 1, Val: 1}})
	g.OnLock() // 4
	g.OnLock() // 5
	g.OnWrite("b")

	// States 1..4 destroyed, but 2 and 3 are checkpointed.
	if st.Restorable(1) {
		t.Error("1 should not be restorable")
	}
	for _, q := range []int{0, 2, 3, 5} {
		if !st.Restorable(q) {
			t.Errorf("%d should be restorable", q)
		}
	}
	if got := st.LatestRestorableAtOrBelow(4); got != 3 {
		t.Errorf("latest <= 4 = %d", got)
	}
	if got := st.LatestRestorableAtOrBelow(1); got != 0 {
		t.Errorf("latest <= 1 = %d", got)
	}

	// Rollback to checkpoint 3 drops later checkpoints and prunes the
	// sdg precisely: b's surviving write is at 3 only.
	if err := st.Rollback(3); err != nil {
		t.Fatal(err)
	}
	if g.LockIndex() != 3 {
		t.Error("lock index")
	}
	if u, ok := g.FirstWrite("b"); !ok || u != 3 {
		t.Errorf("b first write = %d %v", u, ok)
	}
	// With the b@5 write pruned, states... a@[1,3] destroys 1,2; b@3
	// single. Checkpoint at 2 survives.
	if !st.Restorable(2) {
		t.Error("checkpoint 2 must survive")
	}
	if st.Restorable(4) {
		t.Error("state 4 no longer exists")
	}
	cp, ok := st.Checkpoint(3)
	if !ok || cp.Locals[0] != 6 || cp.Copies[0].Val != 2 {
		t.Errorf("checkpoint 3 = %+v %v", cp, ok)
	}
	if st.CheckpointCount() != 2 {
		t.Errorf("count = %d", st.CheckpointCount())
	}
	if st.PeakCopies() == 0 {
		t.Error("peak copies not tracked")
	}

	if err := st.Rollback(1); err == nil {
		t.Error("rollback to unrestorable state must fail")
	}
}

func TestCheckpointIsolation(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	st := New(a, 1, nil)
	locals := []int64{1}
	copies := []EntityCopy{{Ent: 0, Val: 2}}
	st.TakeCheckpoint(1, locals, copies)
	locals[0] = 99
	copies[0].Val = 99
	cp, _ := st.Checkpoint(1)
	if cp.Locals[0] != 1 || cp.Copies[0].Val != 2 {
		t.Error("checkpoint aliases caller slices")
	}
}

func TestBudgetZeroIsPureSDG(t *testing.T) {
	a := txn.Analyze(scatteredProg())
	st := New(a, 0, MinGap{})
	g := st.SDG()
	for i := 0; i < 5; i++ {
		g.OnLock()
	}
	g.OnWrite("a")
	for q := 0; q <= 5; q++ {
		if st.Restorable(q) != g.WellDefined(q) {
			t.Errorf("budget 0 diverges from SDG at state %d", q)
		}
	}
}

// TestQuickTargetOrdering: for any write log and ideal target q, the
// strategies' realized rollback targets are ordered
// SDG <= Hybrid <= MCS(=q): more copies never force a deeper rollback.
func TestQuickTargetOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for rep := 0; rep < 300; rep++ {
		// Random synthetic program: n locks with random writes.
		b := txn.NewProgram("P").Local("l", 0)
		n := 2 + rng.Intn(6)
		for k := 0; k < n; k++ {
			b.LockX(fmt.Sprintf("e%d", k))
			for w := 0; w < rng.Intn(3); w++ {
				b.Write(fmt.Sprintf("e%d", rng.Intn(k+1)), value.C(int64(w)))
			}
			if rng.Intn(2) == 0 {
				b.Compute("l", value.Add(value.L("l"), value.C(1)))
			}
		}
		p := b.MustBuild()
		a := txn.Analyze(p)
		budget := rng.Intn(4)
		st := New(a, budget, MinGap{})
		g := st.SDG()
		// Simulate the run: locks + writes in program order, taking
		// checkpoints at planned states.
		li := 0
		for _, op := range p.Ops {
			switch op.Kind {
			case txn.OpLockX:
				if st.Planned(li) {
					st.TakeCheckpoint(li, []int64{0}, nil)
				}
				g.OnLock()
				li++
			case txn.OpWrite:
				g.OnWrite("e:" + op.Entity)
			case txn.OpCompute:
				g.OnWrite("l:" + op.Local)
			}
		}
		for q := 0; q <= n; q++ {
			sdgT := g.LatestWellDefinedAtOrBelow(q)
			hybT := st.LatestRestorableAtOrBelow(q)
			if !(sdgT <= hybT && hybT <= q) {
				t.Fatalf("rep %d q=%d: ordering violated: sdg=%d hybrid=%d", rep, q, sdgT, hybT)
			}
		}
	}
}
