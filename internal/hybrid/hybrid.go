// Package hybrid implements the extension the paper closes with: "the
// state-dependency graph implementation of partial rollback can easily
// be extended to allow more than one local copy to be kept for
// entities. The problem of determining how to allocate a bounded amount
// of extra storage to the entities in order to maximize the number of
// well-defined states ... remains another interesting question."
//
// The K-copy strategy keeps the single-copy machinery (internal/sdg)
// plus up to Budget *checkpoints*: full snapshots of the transaction's
// locals and entity copies taken at chosen lock states. A checkpointed
// state is restorable even when write intervals span it, so the
// rollback target can sit between "latest well-defined state" (budget
// 0, pure SDG) and "ideal state" (unbounded, pure MCS).
//
// Allocators decide which lock states to checkpoint, using the
// program's static analysis (programs are static in this model, so the
// destroyed-state set is known up front).
package hybrid

import (
	"fmt"
	"sort"

	"partialrollback/internal/intern"
	"partialrollback/internal/sdg"
	"partialrollback/internal/txn"
)

// EntityCopy is one checkpointed entity local copy, keyed by the
// entity's interned ID.
type EntityCopy struct {
	Ent intern.ID
	Val int64
}

// Checkpoint is a full restoration point for one lock state. It stores
// the engine's slot/ID representation directly — locals by slot index,
// entity copies by intern ID — so taking and restoring a checkpoint
// never touches entity or local names.
type Checkpoint struct {
	// Locals holds every local variable's value at the state, indexed
	// by the program's local slot.
	Locals []int64
	// Copies holds the local copy of every exclusively held entity at
	// the state.
	Copies []EntityCopy
}

// size returns the number of stored values (the "extra copies" the
// paper's budget counts).
func (c Checkpoint) size() int { return len(c.Locals) + len(c.Copies) }

// Allocator chooses which lock states (of 1..n-1; 0 and n are free) to
// checkpoint, given the program's analysis and a budget of checkpoints.
type Allocator interface {
	Name() string
	// Choose returns the lock states to checkpoint, at most budget of
	// them, sorted ascending.
	Choose(a *txn.Analysis, budget int) []int
}

// destroyedStates returns the statically destroyed interior lock
// states, ascending.
func destroyedStates(a *txn.Analysis) []int {
	wd := a.StaticWellDefined()
	var out []int
	for q := 1; q < len(wd)-1; q++ {
		if !wd[q] {
			out = append(out, q)
		}
	}
	return out
}

// Spaced picks evenly spaced destroyed states — the naive allocation.
type Spaced struct{}

// Name implements Allocator.
func (Spaced) Name() string { return "spaced" }

// Choose implements Allocator.
func (Spaced) Choose(a *txn.Analysis, budget int) []int {
	d := destroyedStates(a)
	if budget <= 0 || len(d) == 0 {
		return nil
	}
	if budget >= len(d) {
		return d
	}
	out := make([]int, 0, budget)
	for i := 0; i < budget; i++ {
		out = append(out, d[(i*len(d))/budget+(len(d)/budget)/2])
	}
	sort.Ints(out)
	return dedupe(out)
}

// MinGap greedily picks destroyed states to minimize the summed
// rollback overshoot: for each state s, the overshoot is the distance
// from s down to the nearest restorable state; MinGap repeatedly
// repairs the state whose repair reduces that sum most.
type MinGap struct{}

// Name implements Allocator.
func (MinGap) Name() string { return "min-gap" }

// Choose implements Allocator.
func (MinGap) Choose(a *txn.Analysis, budget int) []int {
	wd := a.StaticWellDefined()
	n := len(wd) - 1
	restorable := make([]bool, n+1)
	copy(restorable, wd)
	cost := func() int {
		sum := 0
		last := 0
		for q := 0; q <= n; q++ {
			if restorable[q] {
				last = q
			}
			sum += q - last
		}
		return sum
	}
	var chosen []int
	for len(chosen) < budget {
		base := cost()
		best, bestGain := -1, 0
		for q := 1; q < n; q++ {
			if restorable[q] {
				continue
			}
			restorable[q] = true
			if gain := base - cost(); gain > bestGain {
				best, bestGain = q, gain
			}
			restorable[q] = false
		}
		if best < 0 {
			break
		}
		restorable[best] = true
		chosen = append(chosen, best)
	}
	sort.Ints(chosen)
	return chosen
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// State is the per-transaction hybrid bookkeeping: an SDG plus planned
// and taken checkpoints.
type State struct {
	sdg         *sdg.Graph
	planned     map[int]bool
	checkpoints map[int]Checkpoint
	peakCopies  int
}

// New creates hybrid state for a program: the allocator plans
// checkpoint states from the static analysis within budget.
func New(a *txn.Analysis, budget int, alloc Allocator) *State {
	if alloc == nil {
		alloc = MinGap{}
	}
	planned := map[int]bool{}
	for _, q := range alloc.Choose(a, budget) {
		planned[q] = true
	}
	return &State{
		sdg:         sdg.New(),
		planned:     planned,
		checkpoints: map[int]Checkpoint{},
	}
}

// SDG exposes the underlying state-dependency graph.
func (s *State) SDG() *sdg.Graph { return s.sdg }

// Planned reports whether lock state q is scheduled for a checkpoint.
func (s *State) Planned(q int) bool { return s.planned[q] }

// TakeCheckpoint stores the snapshot for lock state q (called by the
// engine as the transaction passes through a planned state). Values are
// copied; the caller's slices are not retained.
func (s *State) TakeCheckpoint(q int, locals []int64, copies []EntityCopy) {
	cp := Checkpoint{
		Locals: append([]int64(nil), locals...),
		Copies: append([]EntityCopy(nil), copies...),
	}
	s.checkpoints[q] = cp
	total := 0
	for _, c := range s.checkpoints {
		total += c.size()
	}
	if total > s.peakCopies {
		s.peakCopies = total
	}
}

// Checkpoint returns the stored snapshot for q, if taken.
func (s *State) Checkpoint(q int) (Checkpoint, bool) {
	cp, ok := s.checkpoints[q]
	return cp, ok
}

// Restorable reports whether lock state q can be restored: either
// well-defined under the single-copy rules or checkpointed.
func (s *State) Restorable(q int) bool {
	if q < 0 || q > s.sdg.LockIndex() {
		return false
	}
	if _, ok := s.checkpoints[q]; ok {
		return true
	}
	return s.sdg.WellDefined(q)
}

// LatestRestorableAtOrBelow returns the largest restorable state <= q
// (state 0 is always restorable).
func (s *State) LatestRestorableAtOrBelow(q int) int {
	if q > s.sdg.LockIndex() {
		q = s.sdg.LockIndex()
	}
	for ; q > 0; q-- {
		if s.Restorable(q) {
			return q
		}
	}
	return 0
}

// Rollback restores the bookkeeping to restorable state q, dropping
// checkpoints above it.
func (s *State) Rollback(q int) error {
	if !s.Restorable(q) {
		return fmt.Errorf("hybrid: lock state %d is not restorable", q)
	}
	if err := s.sdg.ForceRollback(q); err != nil {
		return err
	}
	for k := range s.checkpoints {
		if k > q {
			delete(s.checkpoints, k)
		}
	}
	return nil
}

// PeakCopies returns the maximum number of extra stored values held at
// once — the paper's bounded storage.
func (s *State) PeakCopies() int { return s.peakCopies }

// CheckpointCount returns the number of live checkpoints.
func (s *State) CheckpointCount() int { return len(s.checkpoints) }
