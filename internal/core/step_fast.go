package core

// The striped engine's read-lock fast paths (Config.Stripes > 1). The
// two-tier protocol (DESIGN.md, "Intra-shard striping"):
//
//   - Tier A/B (this file): the stepping goroutine holds s.mu.RLock.
//     Operations that provably touch no other transaction's state — a
//     running transaction's reads, writes, computes, uncontended lock
//     grants and uncontended releases — complete here. Shared grants on
//     un-owned entities are a single CAS on the entity's word (tier A);
//     grants into owned-but-compatible or idle entities and uncontended
//     releases take only the entity's stripe mutex (tier B).
//
//   - Tier C (step.go, rollback.go): anything structural — waits,
//     deadlock detection and resolution, promotions, commit,
//     registration, abort, inspection — takes s.mu exclusively and runs
//     the original single-lock code verbatim. A fast path that cannot
//     complete bails with nothing mutated and the caller falls through
//     to tier C.
//
// Per-transaction state (pc, locals, slots, strategy trackers, stats)
// is mutated under RLock only by the transaction's own stepping
// goroutine: the engine requires at most one concurrent stepper per
// transaction (the runtime driver's goroutine-per-transaction model),
// so those fields never race. Cross-transaction state reached from
// here is either atomic (entity words, stripe acquire counters, the
// Steps/Grants counters), stripe-mutex-guarded (entries, held index),
// or internally synchronized (store, recorder, event sinks). Wait
// queues and the wait-for graph mutate only under the write lock, so
// reading "no waiters" under RLock is stable for the whole read-side
// critical section.
//
// With stripes <= 1 none of this runs and the engine is byte-identical
// to the classic single-mutex implementation (pinned by regression
// test).

import (
	"fmt"
	"sync/atomic"
	"time"

	"partialrollback/internal/history"
	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
)

// lockEngine takes the engine lock exclusively, reporting the blocked
// nanoseconds to the LockWait observer when configured.
func (s *System) lockEngine() {
	if s.cfg.LockWait == nil {
		s.mu.Lock()
		return
	}
	t0 := time.Now()
	s.mu.Lock()
	s.cfg.LockWait(int64(time.Since(t0)))
}

// rlockEngine is lockEngine for the read side.
func (s *System) rlockEngine() {
	if s.cfg.LockWait == nil {
		s.mu.RLock()
		return
	}
	t0 := time.Now()
	s.mu.RLock()
	s.cfg.LockWait(int64(time.Since(t0)))
}

// countFastStep/countFastGrant bump the shared counters from under the
// read lock. The exclusive path writes them plainly; the RWMutex orders
// the two regimes, so mixed plain/atomic access never races.
func (s *System) countFastStep()  { atomic.AddInt64(&s.stats.Steps, 1) }
func (s *System) countFastGrant() { atomic.AddInt64(&s.stats.Grants, 1) }

// stepFastBurst executes up to max operations of id under one read-lock
// acquisition. done reports a burst-terminal result (commit and
// conflict excluded — those bail); !done means the next operation needs
// the exclusive path and nothing about it was mutated (steps already
// taken are kept and counted).
func (s *System) stepFastBurst(id txn.ID, max int) (res StepResult, steps int, err error, done bool) {
	s.rlockEngine()
	defer s.mu.RUnlock()
	t, ok := s.txns[id]
	if !ok {
		return StepResult{}, 0, nil, false // exclusive path reports the error
	}
	for {
		res, handled, err := s.stepFast(t)
		if err != nil {
			return res, steps, err, true
		}
		if !handled {
			return res, steps, nil, false
		}
		if res.Outcome != AlreadyCommitted && res.Outcome != StillWaiting {
			steps++
		}
		if res.Outcome != Progressed || steps >= max {
			return res, steps, nil, true
		}
	}
}

// stepFast attempts t's next operation under the engine read lock.
// handled=false means the operation needs the exclusive path; in that
// case nothing was mutated.
func (s *System) stepFast(t *tstate) (StepResult, bool, error) {
	switch t.status {
	case StatusCommitted:
		return StepResult{Outcome: AlreadyCommitted}, true, nil
	case StatusWaiting:
		// Promotion happens under the write lock; polling here just
		// observes the (stable) waiting status without serializing.
		return StepResult{Outcome: StillWaiting}, true, nil
	}
	op := &t.prog.Ops[t.pc]
	switch op.Kind {
	case txn.OpRead:
		s.countFastStep()
		v, err := s.readEntity(t, t.opEnt[t.pc], op.Entity)
		if err != nil {
			return StepResult{}, true, err
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, true, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, true, nil
	case txn.OpWrite:
		s.countFastStep()
		v, err := s.evalExpr(t)
		if err != nil {
			return StepResult{}, true, err
		}
		if err := s.writeEntity(t, t.opEnt[t.pc], op.Entity, v); err != nil {
			return StepResult{}, true, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, true, nil
	case txn.OpCompute:
		s.countFastStep()
		v, err := s.evalExpr(t)
		if err != nil {
			return StepResult{}, true, err
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, true, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, true, nil
	case txn.OpDeclareLastLock:
		s.countFastStep()
		t.declaredLast = true
		if t.sdg != nil {
			t.sdg.StopMonitoring()
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, true, nil
	case txn.OpLockS:
		return s.fastLock(t, op, lock.Shared)
	case txn.OpLockX:
		return s.fastLock(t, op, lock.Exclusive)
	case txn.OpUnlock:
		return s.fastUnlock(t, op)
	default:
		// OpCommit (promotions, log ordering, graph removal) and unknown
		// kinds take the exclusive path.
		return StepResult{}, false, nil
	}
}

// fastLock attempts an uncontended grant. Any condition the fast
// protocol cannot prove harmless — hybrid checkpoint planning, a
// re-request of a held entity, out-of-sync lock-state records, or a
// conflict — bails to the exclusive path untouched.
func (s *System) fastLock(t *tstate, op *txn.Op, mode lock.Mode) (StepResult, bool, error) {
	if t.hyb != nil {
		return StepResult{}, false, nil // checkpoint planning needs scratch buffers
	}
	if len(t.lockStates) != t.lockIndex {
		return StepResult{}, false, nil // exclusive path reports the mismatch
	}
	ent := t.opEnt[t.pc]
	if t.findSlot(ent) != nil {
		return StepResult{}, false, nil // re-request: the table's own rules answer
	}
	fastWord := false
	if mode == lock.Shared {
		if s.locks.TryFastSharedID(ent) {
			fastWord = true
		} else if !s.locks.TryAcquireSharedOwnedID(t.id, ent) {
			return StepResult{}, false, nil
		}
	} else {
		if !s.locks.TryAcquireExclusiveIdleID(t.id, ent) {
			return StepResult{}, false, nil
		}
	}
	// Grant landed; everything after the commit point is infallible.
	s.countFastStep()
	t.lockStates = append(t.lockStates, lockStateRec{opIndex: t.pc, stateIndex: t.stateIndex})
	s.finishGrantFast(t, ent, op.Entity, mode, fastWord)
	return StepResult{Outcome: Progressed}, true, nil
}

// finishGrantFast is finishGrant for fast-path grants: the transaction
// was running (no wait bookkeeping to clear) and the entity provably
// had no queued waiters (idle, anonymous-shared, or compatible with an
// empty queue), so the refreshWaiters pass is skipped. fastWord marks a
// CAS-word grant, recorded on the slot so releases decrement the word
// instead of going through the table.
func (s *System) finishGrantFast(t *tstate, ent intern.ID, entityName string, mode lock.Mode, fastWord bool) {
	sl := lockSlot{ent: ent, mode: mode, heldAt: t.lockIndex, fast: fastWord}
	if mode == lock.Exclusive {
		sl.copy = s.store.MustGetID(ent)
		if t.mcs != nil {
			t.mcs.OnLockID(ent, true, sl.copy)
		}
	} else if t.mcs != nil {
		t.mcs.OnLockID(ent, false, 0)
	}
	t.slots = append(t.slots, sl)
	if t.sdg != nil {
		t.sdg.OnLock()
	}
	t.lockIndex++
	t.starveRounds = 0
	if s.recorder != nil {
		m := history.Read
		if mode == lock.Exclusive {
			m = history.Write
		}
		s.recorder.OnGrant(t.id, entityName, m)
	}
	s.advance(t)
	s.countFastGrant()
	s.emit(Event{Kind: EventGrant, Txn: t.id, Entity: entityName, Detail: mode.String()})
}

// fastUnlock attempts an uncontended shrinking-phase release: a
// CAS-word hold decrements the word; a table hold with an empty queue
// installs (exclusive) and releases under the stripe mutex. Queued
// waiters mean promotions, which belong to the exclusive path.
func (s *System) fastUnlock(t *tstate, op *txn.Op) (StepResult, bool, error) {
	if s.cfg.CommitLog != nil {
		return StepResult{}, false, nil // installs must append to the log in lock order
	}
	ent := t.opEnt[t.pc]
	sl := t.findSlot(ent)
	if sl == nil {
		return StepResult{}, false, nil // exclusive path reports the unheld unlock
	}
	if sl.fast {
		s.countFastStep()
		if s.recorder != nil {
			s.recorder.OnRelease(t.id, op.Entity)
		}
		t.dropSlot(ent)
		if t.mcs != nil {
			t.mcs.OnUnlockID(ent)
		}
		s.locks.DropFastSharedID(ent)
	} else {
		if s.locks.HasWaitersStriped(ent) {
			return StepResult{}, false, nil
		}
		s.countFastStep()
		mode, copyVal := sl.mode, sl.copy
		if mode == lock.Exclusive {
			if err := s.store.InstallID(ent, copyVal); err != nil {
				return StepResult{}, true, err
			}
		}
		if s.recorder != nil {
			s.recorder.OnRelease(t.id, op.Entity)
		}
		t.dropSlot(ent)
		if t.mcs != nil {
			t.mcs.OnUnlockID(ent)
		}
		if !s.locks.TryReleaseUncontendedID(t.id, ent) {
			return StepResult{}, true, fmt.Errorf("lock: %v released %q it does not hold", t.id, op.Entity)
		}
	}
	t.unlocked = true
	s.advance(t)
	s.emit(Event{Kind: EventUnlock, Txn: t.id, Entity: op.Entity})
	return StepResult{Outcome: Progressed}, true, nil
}

// migrateFastHolders converts ent's anonymous CAS-granted shared holds
// into ordinary table holders before a table operation that needs
// holder identities (any AcquireID on ent). Caller holds the engine
// write lock; no-op when ent has no fast holders.
func (s *System) migrateFastHolders(ent intern.ID) error {
	if s.locks.FastSharedCountID(ent) == 0 {
		return nil
	}
	s.migrateBuf = s.migrateBuf[:0]
	for _, t := range s.txns {
		if sl := t.findSlot(ent); sl != nil && sl.fast {
			sl.fast = false
			s.migrateBuf = append(s.migrateBuf, t.id)
		}
	}
	sortTxnIDs(s.migrateBuf)
	return s.locks.MigrateFastSharedID(ent, s.migrateBuf)
}

// sortTxnIDs sorts ascending. Insertion sort: the slice is one
// entity's holder set (a handful), and the table's order must be
// deterministic.
func sortTxnIDs(s []txn.ID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Stripes returns the configured stripe count (1 = classic single-lock
// engine).
func (s *System) Stripes() int { return s.cfg.Stripes }

// StripeAcquires returns cumulative per-stripe lock-acquire counts
// (nil for the classic engine).
func (s *System) StripeAcquires() []int64 {
	if !s.striped {
		return nil
	}
	return s.locks.StripeAcquires()
}
