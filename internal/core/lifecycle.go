package core

import (
	"errors"
	"fmt"

	"partialrollback/internal/txn"
)

// Transactions in a long-running service come and go; these hooks let a
// serving layer (internal/server) retire transaction state so the
// system does not accumulate every transaction it ever executed.

// ErrCommitted reports an Abort of a transaction that has already
// committed (the caller lost a race with the commit; the work is done).
var ErrCommitted = errors.New("core: transaction already committed")

// ErrShrinking reports an Abort of a transaction that has entered its
// shrinking phase. Such a transaction has installed no global values
// yet but can no longer be rolled back (§2 forbids rollback past an
// unlock); it also can never block again — no lock requests remain — so
// the caller should simply step it to commit.
var ErrShrinking = errors.New("core: transaction is unlocking and must run to commit")

// Abort rolls a transaction back to its initial state and removes it
// from the system, releasing every lock it holds and retracting any
// pending request. It is the serving layer's escape hatch for request
// deadlines, client disconnects, and shutdown drain. It fails with
// ErrCommitted for committed transactions and ErrShrinking for
// transactions past their first unlock.
func (s *System) Abort(id txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return err
	}
	switch {
	case t.status == StatusCommitted:
		return ErrCommitted
	case t.unlocked:
		return ErrShrinking
	}
	// A transaction that has issued at least one lock request has a
	// recorded initial lock state to roll back to; one that has not holds
	// nothing and (per the §4 validation rule: no writes before the
	// first lock request) has modified nothing.
	if len(t.lockStates) > 0 {
		if err := s.rollbackTo(t, 0); err != nil {
			return fmt.Errorf("core: abort %v: %w", id, err)
		}
	}
	delete(s.txns, id)
	s.unpinAll(t)
	s.wf.RemoveTxn(id)
	s.stats.Aborts++
	s.emit(Event{Kind: EventAbort, Txn: id, Detail: t.prog.Name})
	return nil
}

// Forget removes a committed transaction's bookkeeping. Serving layers
// call it after reporting the commit so the transaction table stays
// bounded under sustained traffic. It fails for transactions that have
// not committed.
func (s *System) Forget(id txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return err
	}
	if t.status != StatusCommitted {
		return fmt.Errorf("core: cannot forget %v: status %v", id, t.status)
	}
	delete(s.txns, id)
	return nil
}
