package core

import (
	"fmt"
	"sort"

	"partialrollback/internal/deadlock"
	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/sdg"
	"partialrollback/internal/txn"
)

// releaseAndRefresh releases t's lock on ent, rebuilds the wait-for
// arcs of the entity's remaining waiters against the new holder set,
// and applies any promoted grants.
func (s *System) releaseAndRefresh(t *tstate, ent intern.ID) error {
	grants, err := s.locks.ReleaseID(t.id, ent, s.grantsBuf[:0])
	s.grantsBuf = grants
	if err != nil {
		return err
	}
	s.refreshWaiters(ent)
	s.applyGrants(grants)
	return nil
}

// refreshWaiters rebuilds the wait-for arcs of every transaction still
// queued on ent so they point at the current conflicting holders.
func (s *System) refreshWaiters(ent intern.ID) {
	if !s.locks.HasWaiters(ent) {
		return
	}
	s.holdersBuf = s.locks.HoldersAppend(ent, s.holdersBuf[:0])
	s.queueBuf = s.locks.QueueAppend(ent, s.queueBuf[:0])
	for _, w := range s.queueBuf {
		s.wf.ClearEntityWaitsID(w.Txn, ent)
		for _, h := range s.holdersBuf {
			if h == w.Txn {
				continue
			}
			hm, _ := s.locks.ModeOfID(h, ent)
			if w.Mode == lock.Exclusive || hm == lock.Exclusive {
				s.wf.AddWaitID(w.Txn, h, ent)
			}
		}
	}
}

// contestedEntities maps each deadlock participant to the entities it
// holds that some cycle predecessor is waiting for — the entities whose
// release by that participant helps break a cycle.
func (s *System) contestedEntities(cycles [][]txn.ID) map[txn.ID]map[string]bool {
	out := map[txn.ID]map[string]bool{}
	for _, c := range cycles {
		for i := range c {
			waiter := c[i]
			holder := c[(i+1)%len(c)]
			for _, e := range s.wf.Label(waiter, holder) {
				if out[holder] == nil {
					out[holder] = map[string]bool{}
				}
				out[holder][e] = true
			}
		}
	}
	return out
}

// planRollback computes the §3.1 rollback plan for one deadlock
// participant: the latest lock state at which it holds none of its
// contested entities, adjusted to the latest well-defined state under
// the single-copy strategy or to the initial state under total
// restart, and the state-index cost of rolling back there.
func (s *System) planRollback(t *tstate, contested map[string]bool) (deadlock.Victim, bool) {
	if t.unlocked || t.declaredLast || t.status == StatusCommitted || len(contested) == 0 {
		return deadlock.Victim{}, false
	}
	target := t.lockIndex
	for e := range contested {
		ent, ok := s.names.Lookup(e)
		if !ok {
			continue
		}
		sl := t.findSlot(ent)
		if sl == nil {
			continue
		}
		if sl.heldAt < target {
			target = sl.heldAt
		}
	}
	if target == t.lockIndex {
		return deadlock.Victim{}, false // holds none of the contested entities
	}
	switch s.cfg.Strategy {
	case Total:
		target = 0
	case SDG:
		target = t.sdg.LatestWellDefinedAtOrBelow(target)
	case Hybrid:
		target = t.hyb.LatestRestorableAtOrBelow(target)
	}
	if target >= len(t.lockStates) {
		return deadlock.Victim{}, false
	}
	return deadlock.Victim{
		Txn:    t.id,
		Target: target,
		Cost:   t.stateIndex - t.lockStates[target].stateIndex,
	}, true
}

// resolveDeadlock handles §2 rule 3: the wait of requester on
// entityName closed the given cycles; pick victims per the configured
// policy and roll each back.
func (s *System) resolveDeadlock(requester *tstate, entityName string, cycles [][]txn.ID) (*DeadlockReport, error) {
	s.stats.Deadlocks++
	contested := s.contestedEntities(cycles)
	info := deadlock.Info{
		Requester: requester.id,
		Cycles:    cycles,
		Plan: func(id txn.ID) (deadlock.Victim, bool) {
			t, ok := s.txns[id]
			if !ok {
				return deadlock.Victim{}, false
			}
			return s.planRollback(t, contested[id])
		},
		Entry: func(id txn.ID) int64 {
			if t, ok := s.txns[id]; ok {
				return t.entry
			}
			return 0
		},
		Preemptions: func(id txn.ID) int64 {
			if t, ok := s.txns[id]; ok {
				return t.stats.Rollbacks
			}
			return 0
		},
	}
	report := &DeadlockReport{
		Requester:  requester.id,
		Entity:     entityName,
		Cycles:     cycles,
		Candidates: map[txn.ID]deadlock.Victim{},
	}
	for _, id := range info.Participants() {
		if v, ok := info.Plan(id); ok {
			report.Candidates[id] = v
		}
	}
	victims, err := s.policy.Choose(info)
	if err != nil {
		return nil, fmt.Errorf("core: deadlock policy %q: %w", s.policy.Name(), err)
	}
	report.Victims = victims
	s.stats.Victims += int64(len(victims))
	s.emit(Event{Kind: EventDeadlock, Txn: requester.id, Entity: entityName, Deadlock: report})
	for _, v := range victims {
		t, ok := s.txns[v.Txn]
		if !ok {
			return nil, fmt.Errorf("core: policy chose unknown victim %v", v.Txn)
		}
		if err := s.rollbackTo(t, v.Target); err != nil {
			return nil, err
		}
	}
	// The victims' releases must have broken every cycle; if the
	// requester still waits it must now wait safely.
	if requester.status == StatusWaiting {
		if left := s.wf.CyclesThrough(requester.id, 1); len(left) > 0 {
			return report, fmt.Errorf("core: policy %q left a cycle unbroken: %v", s.policy.Name(), left[0])
		}
	}
	if err := s.escalateStarvation(cycles); err != nil {
		return report, err
	}
	return report, nil
}

// escalateStarvation ages the waits of deadlock participants: a
// participant still waiting after StarvationLimit resolutions of
// deadlocks it was part of gets wound-wait treatment — every
// strictly-younger holder of its awaited entity is partially rolled
// back to release it. Minimal cycle-breaking alone can otherwise starve
// an old waiter indefinitely: each resolution frees only one of several
// holds (e.g. one of two shared locks) and the ring re-forms.
func (s *System) escalateStarvation(cycles [][]txn.ID) error {
	if s.cfg.StarvationLimit < 0 {
		return nil
	}
	seen := map[txn.ID]bool{}
	var starved []*tstate
	for _, c := range cycles {
		for _, id := range c {
			if seen[id] {
				continue
			}
			seen[id] = true
			t, ok := s.txns[id]
			if !ok || t.status != StatusWaiting {
				continue
			}
			t.starveRounds++
			if t.starveRounds >= s.cfg.StarvationLimit {
				starved = append(starved, t)
			}
		}
	}
	sort.Slice(starved, func(i, j int) bool { return starved[i].entry < starved[j].entry })
	for _, t := range starved {
		if t.status != StatusWaiting {
			continue // an earlier escalation unblocked it
		}
		entityName := t.waitEntity
		for _, h := range s.locks.Holders(entityName) {
			holder, ok := s.txns[h]
			if !ok || holder.entry <= t.entry {
				continue // only younger holders are wounded
			}
			plan, ok := s.planRollback(holder, map[string]bool{entityName: true})
			if !ok {
				continue
			}
			if err := s.rollbackTo(holder, plan.Target); err != nil {
				return err
			}
			s.stats.Escalations++
		}
		t.starveRounds = 0
	}
	return nil
}

// restoreSingleCopy applies the SDG restore rules: targets first
// written at or before q keep their single copy (well-definedness
// guarantees no later writes survive); others reset to pristine values
// (global value for entities, initial value for locals).
func (s *System) restoreSingleCopy(t *tstate, q int) error {
	for i := range t.slots {
		sl := &t.slots[i]
		if sl.mode != lock.Exclusive {
			continue
		}
		if t.sdg.RestoreActionFor("e:"+s.names.Name(sl.ent), q) == sdg.ResetPristine {
			sl.copy = s.store.MustGetID(sl.ent)
		}
	}
	for slot, name := range t.analysis.LocalNames {
		if t.sdg.RestoreActionFor("l:"+name, q) == sdg.ResetPristine {
			t.locals[slot] = t.analysis.InitLocals[slot]
		}
	}
	return nil
}

// rollbackTo rolls t back to lock state q (§2's rollback operation):
// retract its pending request if waiting, release every lock acquired
// at lock index >= q, restore local variables and local copies per the
// configured strategy, and reset the program counter and state index.
func (s *System) rollbackTo(t *tstate, q int) error {
	if t.status == StatusCommitted {
		return fmt.Errorf("core: rollback of committed %v", t.id)
	}
	if t.unlocked {
		return fmt.Errorf("core: rollback of %v after it began unlocking", t.id)
	}
	if q < 0 || q >= len(t.lockStates) {
		return fmt.Errorf("core: rollback of %v to lock state %d outside [0, %d)", t.id, q, len(t.lockStates))
	}
	rec := t.lockStates[q]
	fromState := t.stateIndex

	// Retract a pending lock request.
	if t.status == StatusWaiting {
		grants, _ := s.locks.RemoveWaiterID(t.id, t.waitEnt, s.grantsBuf[:0])
		s.grantsBuf = grants
		s.wf.RemoveAllWaitsBy(t.id)
		waited := t.waitEnt
		t.status = StatusRunning
		t.waitEntity = ""
		t.waitEnt = intern.None
		s.refreshWaiters(waited)
		s.applyGrants(grants)
	}

	// Release locks acquired at or after lock state q, in name order
	// (deterministic event streams). Global values were never modified
	// (updates are deferred to unlock/commit), so releasing restores
	// them per the paper's rollback step 1-2.
	s.releaseBuf = s.releaseBuf[:0]
	for i := range t.slots {
		if t.slots[i].heldAt >= q {
			s.releaseBuf = append(s.releaseBuf, nameEnt{name: s.names.Name(t.slots[i].ent), ent: t.slots[i].ent})
		}
	}
	sortNameEnts(s.releaseBuf)
	for _, ne := range s.releaseBuf {
		if s.recorder != nil {
			s.recorder.OnRetract(t.id, ne.name)
		}
		sl := t.findSlot(ne.ent)
		fast := sl != nil && sl.fast
		t.dropSlot(ne.ent)
		if fast {
			// Anonymous CAS-word hold: no table record, no waiters to
			// refresh, no grants to promote.
			s.locks.DropFastSharedID(ne.ent)
			continue
		}
		if err := s.releaseAndRefresh(t, ne.ent); err != nil {
			return err
		}
	}

	// Restore local variables and surviving local copies (steps 3-4).
	switch s.cfg.Strategy {
	case Total:
		if q != 0 {
			return fmt.Errorf("core: total strategy rollback target %d != 0", q)
		}
		copy(t.locals, t.analysis.InitLocals)
	case MCS:
		if t.mcs.LockIndex() != t.lockIndex {
			return fmt.Errorf("core: %v MCS lock index out of sync (%d != %d)", t.id, t.mcs.LockIndex(), t.lockIndex)
		}
		t.mcs.Rollback(q)
		t.locals = t.mcs.CopyLocalsInto(t.locals[:0])
		for i := range t.slots {
			sl := &t.slots[i]
			if sl.mode == lock.Exclusive {
				v, ok := t.mcs.EntityValueID(sl.ent)
				if !ok {
					return fmt.Errorf("core: %v MCS lost copy of %q", t.id, s.names.Name(sl.ent))
				}
				sl.copy = v
			}
		}
	case SDG:
		if err := s.restoreSingleCopy(t, q); err != nil {
			return err
		}
		if err := t.sdg.Rollback(q); err != nil {
			return fmt.Errorf("core: %v: %w", t.id, err)
		}
	case Hybrid:
		if cp, ok := t.hyb.Checkpoint(q); ok {
			copy(t.locals, cp.Locals)
			for i := range t.slots {
				sl := &t.slots[i]
				if sl.mode != lock.Exclusive {
					continue
				}
				found := false
				for _, c := range cp.Copies {
					if c.Ent == sl.ent {
						sl.copy = c.Val
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("core: %v checkpoint %d lacks copy of %q", t.id, q, s.names.Name(sl.ent))
				}
			}
		} else if err := s.restoreSingleCopy(t, q); err != nil {
			return err
		}
		if err := t.hyb.Rollback(q); err != nil {
			return fmt.Errorf("core: %v: %w", t.id, err)
		}
	}

	// Reset program counter and counters (step 5).
	lost := fromState - rec.stateIndex
	t.pc = rec.opIndex
	t.stateIndex = rec.stateIndex
	t.lockStates = t.lockStates[:q]
	t.lockIndex = q
	t.starveRounds = 0
	t.stats.Rollbacks++
	t.stats.OpsLost += lost
	s.stats.Rollbacks++
	s.stats.OpsLost += lost
	if q == 0 {
		t.stats.Restarts++
		s.stats.Restarts++
	}
	s.emit(Event{
		Kind: EventRollback, Txn: t.id,
		FromState: fromState, ToState: rec.stateIndex,
		Lost: lost, ToLockState: q,
	})
	return nil
}
