package core

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

func TestDebugSnapshot(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS})

	holder := s.MustRegister(txn.NewProgram("holder").
		Local("v", 0).
		LockX("a").Read("a", "v").Write("a", value.Add(value.L("v"), value.C(1))).
		LockS("b").
		MustBuild())
	waiter := s.MustRegister(txn.NewProgram("waiter").LockX("a").MustBuild())

	// holder: X(a), read, write, S(b) — four steps, two locks, state 4.
	for i := 0; i < 4; i++ {
		if res, err := s.Step(holder); err != nil || res.Outcome != Progressed {
			t.Fatalf("holder step %d = %v, %v", i, res.Outcome, err)
		}
	}
	if res, err := s.Step(waiter); err != nil || res.Outcome != Blocked {
		t.Fatalf("waiter step = %v, %v", res.Outcome, err)
	}

	snap := s.DebugSnapshot()
	if snap.Shard != 0 {
		t.Errorf("shard = %d, want 0", snap.Shard)
	}
	if len(snap.Txns) != 2 {
		t.Fatalf("txns = %d, want 2", len(snap.Txns))
	}
	// Sorted by ID: holder registered first.
	h, w := snap.Txns[0], snap.Txns[1]
	if h.ID != holder || h.Program != "holder" || h.Status != "running" {
		t.Errorf("holder snapshot = %+v", h)
	}
	if h.StateIndex != 4 || h.RestartCost != 4 {
		t.Errorf("holder state=%d restart-cost=%d, want 4/4", h.StateIndex, h.RestartCost)
	}
	if h.LockIndex != 2 || len(h.Held) != 2 {
		t.Errorf("holder lock-index=%d held=%v", h.LockIndex, h.Held)
	}
	modes := map[string]string{}
	for _, hl := range h.Held {
		modes[hl.Entity] = hl.Mode
	}
	if modes["a"] != "X" || modes["b"] != "S" {
		t.Errorf("held modes = %v, want a:X b:S", modes)
	}
	if w.Status != "waiting" || w.WaitingOn != "a" || len(w.Held) != 0 {
		t.Errorf("waiter snapshot = %+v", w)
	}
	if len(snap.Arcs) != 1 || snap.Arcs[0].Waiter != waiter || snap.Arcs[0].Holder != holder || snap.Arcs[0].Entity != "a" {
		t.Errorf("arcs = %+v", snap.Arcs)
	}
	if snap.Stats.Grants != 2 || snap.Stats.Waits != 1 {
		t.Errorf("stats = %+v, want 2 grants 1 wait", snap.Stats)
	}

	// Stats in the snapshot track the live system, and committed
	// transactions report their terminal status until forgotten.
	if _, err := s.Step(holder); err != nil { // commit releases locks
		t.Fatal(err)
	}
	snap = s.DebugSnapshot()
	for _, ts := range snap.Txns {
		if ts.ID == holder && ts.Status != "committed" {
			t.Errorf("holder status after commit = %q", ts.Status)
		}
	}
}
