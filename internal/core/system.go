// Package core implements the paper's contribution: a two-phase-locking
// concurrency control whose deadlock response is partial rollback
// (Fussell, Kedem & Silberschatz, SIGMOD 1981).
//
// A System executes registered transaction programs one atomic
// operation at a time (callers choose the interleaving; see
// internal/sim for deterministic drivers and internal/runtime for a
// goroutine-per-transaction driver). Lock requests follow §2's rules:
// grant when compatible, otherwise wait; when a wait would close a
// cycle in the concurrency graph, a victim-selection policy picks
// transactions to roll back and the system rolls each back just far
// enough to break every cycle — to the lock state preceding its lock on
// a contested entity (multi-copy strategy), to the latest *well-defined*
// such state (single-copy strategy), or to its initial state (total
// restart, the classical baseline the paper generalizes).
package core

import (
	"fmt"
	"sync"

	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/history"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/mcs"
	"partialrollback/internal/sdg"
	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// Strategy selects the rollback implementation (§4).
type Strategy int

// Rollback strategies.
const (
	// Total is the classical total-removal-and-restart baseline: the
	// victim is rolled back to its initial state. One local copy per
	// entity; no monitoring.
	Total Strategy = iota
	// MCS is the multi-lock copy strategy: value stacks allow rollback
	// to any lock state, at up to n(n+1)/2 entity copies (Theorem 3).
	MCS
	// SDG is the single-copy strategy guided by the state-dependency
	// graph: rollback only to well-defined lock states, with no more
	// storage than total restart requires.
	SDG
	// Hybrid is the paper's closing extension: SDG plus a bounded
	// number of checkpoints (extra copies) that make chosen lock states
	// restorable even when write intervals span them. Budget 0 behaves
	// exactly like SDG; an unbounded budget approaches MCS.
	Hybrid
)

func (s Strategy) String() string {
	switch s {
	case Total:
		return "total"
	case MCS:
		return "mcs"
	case SDG:
		return "sdg"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CommitWrite is one (entity, value) pair a committing or unlocking
// transaction installs into the global store — the unit the durability
// layer serializes into a redo log record. Under the paper's deferred
// update discipline (§4) these installs are the only global-state
// mutations the engine ever performs, so logging them is logging
// everything: no undo records exist because uncommitted work lives in
// per-transaction copies that die with the process, and partial
// rollback therefore never touches the log.
type CommitWrite struct {
	Ent  intern.ID
	Name string
	Val  int64
}

// CommitAck is a durability ticket returned by CommitLogger.LogCommit.
// Wait blocks until every write of the acknowledged commit is durable
// (or the log has failed) and must be called outside the engine mutex.
type CommitAck interface {
	Wait() error
}

// CommitLogger receives the engine's install stream. Both methods are
// invoked under the engine mutex, so they must only buffer and enqueue
// — never block on IO (the group-commit fsync happens on the logger's
// own flusher; callers block in CommitAck.Wait, outside the mutex).
//
// LogInstall records an early (shrinking-phase) unlock install; it
// carries no ticket and rides the next flush. Any transaction that can
// observe the installed value must first acquire the entity's lock,
// which happens-after this call under the same engine mutex, so its
// own commit ticket — which waits for the log tail — covers this
// record too.
//
// LogCommit records a committing transaction's whole write-set and
// returns the ticket its client acknowledgement must wait on. A
// read-only commit (empty writes) still gets a ticket: it waits for
// the current log tail, so a commit that observed another
// transaction's writes is never acknowledged before those writes are
// durable.
type CommitLogger interface {
	LogInstall(w CommitWrite)
	LogCommit(writes []CommitWrite) CommitAck
}

// ShardedCommitLogger is a CommitLogger that can hand out one
// independent logger per shard (internal/shard wires ForShard(k) into
// shard k's System so each shard appends to its own log file with its
// own group-commit queue).
type ShardedCommitLogger interface {
	CommitLogger
	ForShard(k int) CommitLogger
}

// Config configures a System.
type Config struct {
	// Store is the global database. Required.
	Store *entity.Store
	// Strategy selects the rollback implementation. Default Total.
	Strategy Strategy
	// Policy selects deadlock victims. Default deadlock.OrderedMinCost
	// (the Theorem 2 safe policy).
	Policy deadlock.Policy
	// RecordHistory enables the serializability recorder.
	RecordHistory bool
	// HistoryClock, when non-nil (and RecordHistory is set), makes the
	// recorder stamp episodes against this shared clock instead of a
	// private one. internal/shard gives every shard's System the same
	// clock so their histories merge onto one global timeline.
	HistoryClock *history.Clock
	// MaxCycles bounds cycle enumeration per detection. Default 64.
	MaxCycles int
	// Prevention replaces detection with a timestamp rule (§3.3
	// distributed operation). Default NoPrevention.
	Prevention Prevention
	// StarvationLimit escalates fairness: when a waiting transaction's
	// conflict survives this many deadlock resolutions it participated
	// in, every strictly-younger holder of its awaited entity is
	// wounded (partially rolled back to release it) — wound-wait applied
	// on demand. Without it, minimal cycle-breaking can starve an old
	// waiter forever while younger transactions re-form cycles around it
	// (found by the randomized soak test). 0 means the default (8);
	// negative disables escalation.
	StarvationLimit int
	// HybridBudget is the per-transaction checkpoint budget for the
	// Hybrid strategy (ignored otherwise). Zero means no checkpoints:
	// the strategy then behaves exactly like SDG.
	HybridBudget int
	// HybridAllocator chooses which lock states the Hybrid strategy
	// checkpoints. Default hybrid.MinGap.
	HybridAllocator hybrid.Allocator
	// CommitLog, when non-nil, receives every install for durable
	// logging (see CommitLogger). Nil keeps the engine memory-only with
	// a byte-identical commit path.
	CommitLog CommitLogger
	// OnEvent, when non-nil, receives every engine event. With Stripes
	// > 1 uncontended grant/unlock events are emitted from concurrently
	// stepping transactions, so the sink must be safe for concurrent
	// use (the observability collector, the exec notifier and the
	// server's session fan-out all are).
	OnEvent func(Event)
	// Stripes partitions the lock table and wait-for graph into this
	// many independently-synchronized stripes over the interned
	// entity-ID space and enables the uncontended fast paths: shared
	// locks grant with a single CAS on the entity's word, uncontended
	// exclusive grants and unlocks touch only one stripe's mutex, and
	// only conflicts, waits, deadlock handling, rollback and commit
	// take the engine's exclusive lock. 0 or 1 keeps the classic
	// single-lock engine, byte-identical to previous releases (pinned
	// by regression test).
	Stripes int
	// LockWait, when non-nil, observes the nanoseconds each engine-lock
	// acquisition on the step path blocked before entering the critical
	// section — the direct measure of how much the engine mutex itself
	// throttles throughput (rendered as pr_engine_lock_wait_ns).
	LockWait func(ns int64)
}

// Status is a transaction's execution status.
type Status int

// Transaction statuses.
const (
	StatusRunning Status = iota
	StatusWaiting
	StatusCommitted
)

func (st Status) String() string {
	switch st {
	case StatusRunning:
		return "running"
	case StatusWaiting:
		return "waiting"
	case StatusCommitted:
		return "committed"
	default:
		return fmt.Sprintf("Status(%d)", int(st))
	}
}

// lockStateRec snapshots the transaction state immediately before a
// lock request: the program counter of the request and the state index
// (atomic-operation count) at that point.
type lockStateRec struct {
	opIndex    int
	stateIndex int64
}

// lockSlot is one lock a transaction currently holds: the entity's
// intern ID, the mode, the lock index of its request, and (for
// exclusive holds) the transaction's local copy of the entity's value.
// The slot list replaces the former copies/heldAt/modes string maps: a
// handful of slots scanned linearly beats three map lookups per
// operation, and a grant appends one record with no allocation.
//
// fast marks a shared lock granted by the striped table's CAS word
// fast path: the lock table holds no record of it (the word just
// counts anonymous holders), so releases must decrement the word
// rather than go through the table, and the exclusive path migrates
// such slots into table holders before any conflicting request needs
// holder identities.
type lockSlot struct {
	ent    intern.ID
	mode   lock.Mode
	heldAt int
	copy   int64
	fast   bool
}

// tstate is the runtime state of one registered transaction.
type tstate struct {
	id       txn.ID
	prog     *txn.Program
	analysis *txn.Analysis
	// opEnt[i] is the interned entity of Ops[i] (intern.None when op i
	// has no entity operand). Read-only after Register.
	opEnt []intern.ID
	entry int64 // entry order (Theorem 2 partial order)

	status     Status
	pc         int
	stateIndex int64
	lockIndex  int

	// locals is indexed by the analysis' local slot (LocalSlot /
	// LocalNames); slots holds the held locks in grant order.
	locals []int64
	slots  []lockSlot

	lockStates []lockStateRec
	waitEntity string
	waitEnt    intern.ID

	// pinned holds the lock-set entity IDs pinned in the paged store at
	// Register (empty on the memory backend). Pins keep those pages
	// resident so every store access on the step fast paths — grants,
	// reads, installs are all against lock-set entities — is a buffer
	// hit; they are released at commit or abort. Partial rollback keeps
	// the transaction registered, so it keeps its pins.
	pinned []intern.ID

	unlocked     bool // entered shrinking phase; never rolled back again
	declaredLast bool
	// starveRounds counts deadlock resolutions this transaction's
	// current wait has survived; reset on grant and on rollback.
	starveRounds int

	mcs *mcs.Copies
	sdg *sdg.Graph
	hyb *hybrid.State

	stats TxnStats
}

// findSlot returns the slot for ent, or nil if not held.
func (t *tstate) findSlot(ent intern.ID) *lockSlot {
	for i := range t.slots {
		if t.slots[i].ent == ent {
			return &t.slots[i]
		}
	}
	return nil
}

// dropSlot removes ent's slot (order is not significant; name-sorted
// traversals sort on the fly).
func (t *tstate) dropSlot(ent intern.ID) {
	for i := range t.slots {
		if t.slots[i].ent == ent {
			t.slots[i] = t.slots[len(t.slots)-1]
			t.slots = t.slots[:len(t.slots)-1]
			return
		}
	}
}

// nameEnt pairs an entity's name with its intern ID for name-ordered
// release traversals (determinism requires name order, which is not ID
// order: "e10" < "e2" lexicographically).
type nameEnt struct {
	name string
	ent  intern.ID
}

// sortNameEnts sorts by name ascending. Insertion sort: the slices are
// one transaction's held set (a handful of elements) and this compiles
// without the closure allocation of sort.Slice.
func sortNameEnts(s []nameEnt) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].name < s[j-1].name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TxnStats accumulates per-transaction outcomes.
type TxnStats struct {
	// OpsExecuted counts atomic operations executed, including ones
	// later discarded by rollback.
	OpsExecuted int64
	// OpsLost counts operations discarded by rollbacks (the paper's
	// summed rollback cost).
	OpsLost int64
	// Rollbacks counts rollback events; Restarts counts those that went
	// all the way to the initial state.
	Rollbacks int64
	Restarts  int64
	// Waits counts lock requests that had to wait.
	Waits int64
}

// Stats accumulates system-wide outcomes.
type Stats struct {
	Steps     int64
	Grants    int64
	Waits     int64
	Deadlocks int64
	Rollbacks int64
	Restarts  int64
	OpsLost   int64
	Commits   int64
	// VictimsPerDeadlock accumulates victim-set sizes (for S/X
	// multi-cycle analysis).
	Victims int64
	// Wounds and Dies count prevention-mode rollbacks (§3.3).
	Wounds int64
	Dies   int64
	// Escalations counts starvation-limit wound-wait escalations.
	Escalations int64
	// Aborts counts transactions rolled back to their initial state and
	// removed by System.Abort (serving-layer deadlines, disconnects,
	// shutdown drain).
	Aborts int64
}

// waitGraph is the concurrency-graph surface the engine uses —
// implemented by *waitfor.Graph (single-lock engine) and
// *waitfor.Striped (striped engine, per-stripe edge sets merged into
// epoch-validated snapshots for detection).
type waitGraph interface {
	AddTxn(id txn.ID)
	RemoveTxn(id txn.ID)
	AddWaitID(waiter, holder txn.ID, ent intern.ID)
	ClearEntityWaitsID(waiter txn.ID, ent intern.ID)
	RemoveAllWaitsBy(waiter txn.ID)
	CyclesThrough(id txn.ID, limit int) [][]txn.ID
	WaiterCount(holder txn.ID) int
	Label(waiter, holder txn.ID) []string
	Arcs() []waitfor.Arc
	IsForest() bool
	HasCycle() bool
}

// System is the concurrency control. All methods are safe for
// concurrent use; operations are serialized internally, which models
// the paper's single database concurrency control monitoring all
// transactions. With Config.Stripes > 1 the serialization is
// two-tiered: structural operations (waits, deadlock handling,
// rollback, commit, registration, inspection) hold mu exclusively,
// while uncontended lock/step work runs under mu.RLock plus per-stripe
// synchronization inside the lock table — see step_fast.go.
type System struct {
	mu sync.RWMutex

	cfg      Config
	store    *entity.Store
	names    *intern.Table // the store's interner, shared with locks and wf
	locks    *lock.Table
	wf       waitGraph
	policy   deadlock.Policy
	recorder *history.Recorder
	// striped enables the read-lock fast paths (cfg.Stripes > 1).
	striped bool

	txns   map[txn.ID]*tstate
	nextID txn.ID
	entry  int64

	// Scratch buffers reused across operations (guarded by mu held
	// exclusively; fast paths never touch them). Callees never re-enter
	// the operation that owns a buffer, so each is in use by at most
	// one stack frame at a time.
	blockersBuf []txn.ID
	grantsBuf   []lock.GrantID
	holdersBuf  []txn.ID
	queueBuf    []lock.Waiter
	copiesBuf   []hybrid.EntityCopy
	releaseBuf  []nameEnt
	writesBuf   []CommitWrite
	migrateBuf  []txn.ID

	// stats fields written by fast paths (Steps, Grants) use atomic
	// adds there; everything else is guarded by mu held exclusively.
	stats Stats
}

// New creates a System. It panics if cfg.Store is nil (a programming
// error, not a runtime condition).
func New(cfg Config) *System {
	if cfg.Store == nil {
		panic("core: Config.Store is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = deadlock.OrderedMinCost{}
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 64
	}
	if cfg.StarvationLimit == 0 {
		cfg.StarvationLimit = 8
	}
	if cfg.Stripes < 1 {
		cfg.Stripes = 1
	}
	names := cfg.Store.Interner()
	s := &System{
		cfg:     cfg,
		store:   cfg.Store,
		names:   names,
		policy:  cfg.Policy,
		striped: cfg.Stripes > 1,
		txns:    map[txn.ID]*tstate{},
	}
	if s.striped {
		s.locks = lock.NewTableStriped(names, cfg.Stripes)
		s.locks.EnsureEntities(names.Len())
		s.wf = waitfor.NewStriped(names, cfg.Stripes)
	} else {
		s.locks = lock.NewTableInterned(names)
		s.wf = waitfor.NewInterned(names)
	}
	if cfg.RecordHistory {
		if cfg.HistoryClock != nil {
			s.recorder = history.NewSharedClockRecorder(cfg.HistoryClock)
		} else {
			s.recorder = history.NewRecorder()
		}
	}
	return s
}

// Register adds an execution instance of prog and returns its ID. The
// program must be valid (see txn.Validate); Register re-validates and
// returns an error otherwise.
func (s *System) Register(prog *txn.Program) (txn.ID, error) {
	a, err := txn.ValidateAnalyze(prog)
	if err != nil {
		return txn.None, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	opEnt := make([]intern.ID, len(prog.Ops))
	for i, o := range prog.Ops {
		opEnt[i] = intern.None
		if o.Entity != "" {
			opEnt[i] = s.names.Intern(o.Entity)
		}
	}
	if s.striped {
		// Cover every entity just interned (op entities can precede
		// their store definition check below) so the fast paths index
		// the word table without bounds surprises.
		s.locks.EnsureEntities(s.names.Len())
	}
	s.nextID++
	s.entry++
	id := s.nextID
	t := &tstate{
		id:       id,
		prog:     prog,
		analysis: a,
		opEnt:    opEnt,
		entry:    s.entry,
		status:   StatusRunning,
		locals:   make([]int64, len(a.InitLocals)),
		waitEnt:  intern.None,
	}
	copy(t.locals, a.InitLocals)
	switch s.cfg.Strategy {
	case MCS:
		t.mcs = mcs.NewSlots(s.names, a.LocalNames, a.InitLocals)
	case SDG:
		t.sdg = sdg.New()
	case Hybrid:
		budget := s.cfg.HybridBudget
		if budget < 0 {
			budget = 0
		}
		t.hyb = hybrid.New(t.analysis, budget, s.cfg.HybridAllocator)
		t.sdg = t.hyb.SDG()
	}
	// Verify every locked entity exists up front so execution cannot
	// fail mid-flight on an undefined entity. Checked per registration
	// (not per plan): the store's defined set can change via Restore.
	for _, e := range a.LockSet() {
		if !s.store.Exists(e) {
			return txn.None, fmt.Errorf("core: program %s locks undefined entity %q", prog.Name, e)
		}
	}
	// Paged backend: pin the lock set resident now, on the structural
	// path where IO is allowed, so no later step — including the Tier
	// A/B fast paths, which never take the exclusive engine lock —
	// faults a page in. Every engine store access (grant copies, shared
	// reads, installs) is against a lock-set entity, so pinning here
	// covers them all.
	if s.store.Paged() {
		lockSet := a.LockSet()
		t.pinned = make([]intern.ID, 0, len(lockSet))
		for _, e := range lockSet {
			ent := s.names.Intern(e)
			if err := s.store.PinID(ent); err != nil {
				s.unpinAll(t)
				return txn.None, fmt.Errorf("core: program %s pin %q: %w", prog.Name, e, err)
			}
			t.pinned = append(t.pinned, ent)
		}
	}
	s.txns[id] = t
	s.wf.AddTxn(id)
	s.emit(Event{Kind: EventRegister, Txn: id, Detail: prog.Name})
	return id, nil
}

// unpinAll releases every page pin t holds (no-op on the memory
// backend, where t.pinned is never populated). Called at commit and
// abort — the two points a transaction leaves the active set.
func (s *System) unpinAll(t *tstate) {
	for _, ent := range t.pinned {
		s.store.UnpinID(ent)
	}
	t.pinned = t.pinned[:0]
}

// MustRegister is Register that panics on error (fixtures and tests).
func (s *System) MustRegister(prog *txn.Program) txn.ID {
	id, err := s.Register(prog)
	if err != nil {
		panic(err)
	}
	return id
}

func (s *System) get(id txn.ID) (*tstate, error) {
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown transaction %v", id)
	}
	return t, nil
}

func (s *System) emit(e Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(e)
	}
}
