package core

import (
	"math/rand"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// fuzzProgram decodes a byte string into a transaction program over a
// small entity/local universe. Invalid constructions are filtered by
// the builder's validator; valid ones are executed.
func fuzzProgram(data []byte) (*txn.Program, bool) {
	b := txn.NewProgram("F").
		Local("l0", 1).Local("l1", 2)
	entities := []string{"a", "b", "c", "d"}
	locals := []string{"l0", "l1"}
	locked := map[string]bool{}
	didLock := false
	for i := 0; i+1 < len(data); i += 2 {
		op := data[i] % 6
		arg := int(data[i+1])
		ent := entities[arg%len(entities)]
		loc := locals[arg%len(locals)]
		switch op {
		case 0:
			if locked[ent] || didLock && false {
				continue
			}
			b.LockX(ent)
			locked[ent] = true
			didLock = true
		case 1:
			if locked[ent] {
				continue
			}
			b.LockS(ent)
			locked[ent] = true
			didLock = true
		case 2:
			if !locked[ent] {
				continue
			}
			b.Read(ent, loc)
		case 3:
			if !locked[ent] || !didLock {
				continue
			}
			b.Write(ent, value.Add(value.L("l0"), value.C(int64(arg))))
		case 4:
			if !didLock {
				continue
			}
			b.Compute(loc, value.Add(value.L(loc), value.C(1)))
		case 5:
			// Unlock only in a suffix (cheap two-phase approximation):
			// allow it, the validator rejects later locks.
			if !locked[ent] {
				continue
			}
			b.Unlock(ent)
			delete(locked, ent)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, false
	}
	return p, true
}

// FuzzProgramExecution builds programs from fuzz input and runs pairs
// of them to completion under every strategy, checking invariants and
// serializability. Write-locked entities written under LockS etc. are
// rejected by the validator; everything that validates must execute
// without engine errors.
func FuzzProgramExecution(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 1}, []byte{0, 1, 0, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 3, 0, 3, 1}, []byte{0, 2, 0, 1, 0, 0, 3, 2})
	f.Add([]byte{1, 0, 2, 0, 4, 1}, []byte{0, 0, 5, 0, 4, 0})
	f.Fuzz(func(t *testing.T, d1, d2 []byte) {
		p1, ok1 := fuzzProgram(d1)
		p2, ok2 := fuzzProgram(d2)
		if !ok1 || !ok2 {
			t.Skip()
		}
		p2 = p2.Clone()
		p2.Name = "F2"
		for _, strat := range []Strategy{Total, MCS, SDG, Hybrid} {
			store := entity.NewStore(map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4})
			s := New(Config{Store: store, Strategy: strat, RecordHistory: true})
			id1, err := s.Register(p1)
			if err != nil {
				t.Skip() // e.g. locks an entity the store lacks (impossible here)
			}
			id2, err := s.Register(p2)
			if err != nil {
				t.Skip()
			}
			rng := rand.New(rand.NewSource(int64(len(d1))*31 + int64(len(d2))))
			for steps := 0; !s.AllCommitted(); steps++ {
				if steps > 100000 {
					t.Fatalf("%v: no termination", strat)
				}
				runnable := s.Runnable()
				if len(runnable) == 0 {
					t.Fatalf("%v: stuck", strat)
				}
				id := runnable[rng.Intn(len(runnable))]
				if _, err := s.Step(id); err != nil {
					t.Fatalf("%v: step: %v", strat, err)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%v: %v", strat, err)
			}
			if _, err := s.Recorder().CheckSerializable(); err != nil {
				t.Fatalf("%v: %v", strat, err)
			}
			_ = id1
			_ = id2
		}
	})
}
