package core

import (
	"fmt"
	"sort"

	"partialrollback/internal/history"
	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// Status returns the execution status of id. Read lock only: status
// transitions happen under the write lock, never on the fast paths.
func (s *System) Status(id txn.ID) (Status, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.get(id)
	if err != nil {
		return 0, err
	}
	return t.status, nil
}

// Waiters returns how many transactions are blocked waiting on locks
// held by id; 0 for unknown or finished transactions. One mutex
// acquisition and no allocation, so it is cheap enough to probe from
// the step loop when sizing bursts adaptively.
func (s *System) Waiters(id txn.ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wf.WaiterCount(id)
}

// ProgramName returns the name of id's program.
func (s *System) ProgramName(id txn.ID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[id]; ok {
		return t.prog.Name
	}
	return ""
}

// Locals returns a copy of id's current local-variable values.
func (s *System) Locals(id txn.ID) (map[string]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(t.locals))
	for slot, name := range t.analysis.LocalNames {
		out[name] = t.locals[slot]
	}
	return out, nil
}

// LocalCopy returns id's current local copy of an exclusively held
// entity.
func (s *System) LocalCopy(id txn.ID, entityName string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return 0, false
	}
	ent, ok := s.names.Lookup(entityName)
	if !ok {
		return 0, false
	}
	sl := t.findSlot(ent)
	if sl == nil || sl.mode != lock.Exclusive {
		return 0, false
	}
	return sl.copy, true
}

// StateIndex returns id's current state index (atomic operations
// executed on the current attempt).
func (s *System) StateIndex(id txn.ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[id]; ok {
		return t.stateIndex
	}
	return 0
}

// LockIndex returns id's current lock index (lock requests granted).
func (s *System) LockIndex(id txn.ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[id]; ok {
		return t.lockIndex
	}
	return 0
}

// Held returns the entities id holds, sorted. Sourced from the
// transaction's own slots rather than the lock table so anonymous
// CAS-granted shared holds (striped engine) are included.
func (s *System) Held(id txn.ID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return nil
	}
	var out []string
	for i := range t.slots {
		out = append(out, s.names.Name(t.slots[i].ent))
	}
	sort.Strings(out)
	return out
}

// HoldsExclusive reports whether id holds an exclusive lock on
// entityName.
func (s *System) HoldsExclusive(id txn.ID, entityName string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.locks.ModeOf(id, entityName)
	return ok && m == lock.Exclusive
}

// WaitingOn returns the entity id is waiting for, if any.
func (s *System) WaitingOn(id txn.ID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok || t.status != StatusWaiting {
		return "", false
	}
	return t.waitEntity, true
}

// EntryOf returns id's entry sequence number (Theorem 2 ordering).
func (s *System) EntryOf(id txn.ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[id]; ok {
		return t.entry
	}
	return 0
}

// Runnable returns the IDs of transactions in StatusRunning, sorted.
func (s *System) Runnable() []txn.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []txn.ID
	for id, t := range s.txns {
		if t.status == StatusRunning {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllCommitted reports whether every registered transaction has
// committed.
func (s *System) AllCommitted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.txns {
		if t.status != StatusCommitted {
			return false
		}
	}
	return true
}

// IDs returns all registered transaction IDs, sorted.
func (s *System) IDs() []txn.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]txn.ID, 0, len(s.txns))
	for id := range s.txns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the system-wide counters.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TxnStatsOf returns a snapshot of id's counters.
func (s *System) TxnStatsOf(id txn.ID) TxnStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[id]; ok {
		return t.stats
	}
	return TxnStats{}
}

// Arcs returns the current concurrency-graph arcs.
func (s *System) Arcs() []waitfor.Arc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wf.Arcs()
}

// GraphIsForest reports Theorem 1's condition on the current
// concurrency graph.
func (s *System) GraphIsForest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wf.IsForest()
}

// GraphHasCycle reports whether the current concurrency graph contains
// a directed cycle (an unresolved deadlock; transient only, since the
// engine resolves deadlocks as it detects them).
func (s *System) GraphHasCycle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wf.HasCycle()
}

// Recorder returns the serializability recorder, or nil if history
// recording is disabled.
func (s *System) Recorder() *history.Recorder { return s.recorder }

// Strategy returns the configured rollback strategy.
func (s *System) Strategy() Strategy { return s.cfg.Strategy }

// PolicyName returns the configured victim policy's name.
func (s *System) PolicyName() string { return s.policy.Name() }

// WellDefinedStates returns id's currently well-defined lock states
// under the single-copy strategy. It errors for other strategies.
func (s *System) WellDefinedStates(id txn.ID) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return nil, err
	}
	if t.sdg == nil {
		return nil, fmt.Errorf("core: %v runs under %v, not sdg", id, s.cfg.Strategy)
	}
	return t.sdg.WellDefinedStates(), nil
}

// MCSPeakSpace returns id's peak MCS stack-element counts (entities,
// locals) for the Theorem 3 experiment. It errors for other strategies.
func (s *System) MCSPeakSpace(id txn.ID) (entityElems, localElems int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return 0, 0, err
	}
	if t.mcs == nil {
		return 0, 0, fmt.Errorf("core: %v runs under %v, not mcs", id, s.cfg.Strategy)
	}
	e, l := t.mcs.PeakSpace()
	return e, l, nil
}

// ForceRollback rolls id back to lock state q outside any deadlock —
// the raw §2 rollback operation, exposed for experiments and tests
// (e.g. reproducing Figure 4's "we could roll back T from S19 to S13 by
// simply releasing the locks held on E and F").
func (s *System) ForceRollback(id txn.ID, q int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return err
	}
	if s.cfg.Strategy == SDG && !t.sdg.WellDefined(q) {
		return fmt.Errorf("core: lock state %d of %v is not well-defined", q, id)
	}
	if s.cfg.Strategy == Hybrid && !t.hyb.Restorable(q) {
		return fmt.Errorf("core: lock state %d of %v is not restorable", q, id)
	}
	if s.cfg.Strategy == Total && q != 0 {
		return fmt.Errorf("core: total strategy can only roll back to state 0")
	}
	return s.rollbackTo(t, q)
}

// HybridStats returns the Hybrid strategy's live checkpoint count and
// peak extra-copy usage for id. It errors for other strategies.
func (s *System) HybridStats(id txn.ID) (checkpoints, peakCopies int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return 0, 0, err
	}
	if t.hyb == nil {
		return 0, 0, fmt.Errorf("core: %v runs under %v, not hybrid", id, s.cfg.Strategy)
	}
	return t.hyb.CheckpointCount(), t.hyb.PeakCopies(), nil
}

// CheckInvariants cross-checks internal consistency: the lock table's
// own invariants, agreement between the incremental concurrency graph
// and one rebuilt from the lock table, and per-transaction bookkeeping.
// Used heavily by tests.
func (s *System) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.locks.CheckInvariants(); err != nil {
		return err
	}
	ids := make([]txn.ID, 0, len(s.txns))
	for id := range s.txns {
		ids = append(ids, id)
	}
	rebuilt := waitfor.Rebuild(s.locks, ids)
	got := fmt.Sprint(s.wf.Arcs())
	want := fmt.Sprint(rebuilt.Arcs())
	if got != want {
		return fmt.Errorf("core: concurrency graph diverged:\n got %s\nwant %s", got, want)
	}
	for id, t := range s.txns {
		if t.status == StatusCommitted {
			continue
		}
		held := s.locks.HeldBy(id)
		tableSlots := 0
		for i := range t.slots {
			if !t.slots[i].fast {
				tableSlots++
			}
		}
		if len(held) != tableSlots {
			return fmt.Errorf("core: %v heldAt size %d != lock table %d", id, tableSlots, len(held))
		}
		for _, e := range held {
			ent, ok := s.names.Lookup(e)
			var sl *lockSlot
			if ok {
				sl = t.findSlot(ent)
			}
			if sl == nil || sl.fast {
				return fmt.Errorf("core: %v missing heldAt for %q", id, e)
			}
			if sl.heldAt < 0 || sl.heldAt >= t.lockIndex {
				return fmt.Errorf("core: %v heldAt[%q] = %d outside [0,%d)", id, e, sl.heldAt, t.lockIndex)
			}
			m, _ := s.locks.ModeOfID(id, ent)
			if sl.mode != m {
				return fmt.Errorf("core: %v mode cache stale for %q", id, e)
			}
		}
		wantRecs := t.lockIndex
		if t.status == StatusWaiting {
			wantRecs++
		}
		if len(t.lockStates) != wantRecs {
			return fmt.Errorf("core: %v has %d lock-state records, want %d", id, len(t.lockStates), wantRecs)
		}
		if t.mcs != nil && t.mcs.LockIndex() != t.lockIndex {
			return fmt.Errorf("core: %v MCS lock index %d != %d", id, t.mcs.LockIndex(), t.lockIndex)
		}
		if t.sdg != nil && t.sdg.LockIndex() != t.lockIndex {
			return fmt.Errorf("core: %v SDG lock index %d != %d", id, t.sdg.LockIndex(), t.lockIndex)
		}
	}
	if s.striped {
		// Every entity's anonymous fast-holder word must equal the number
		// of fast slots across live transactions.
		fastCounts := map[intern.ID]int{}
		for _, t := range s.txns {
			if t.status == StatusCommitted {
				continue
			}
			for i := range t.slots {
				if t.slots[i].fast {
					fastCounts[t.slots[i].ent]++
				}
			}
		}
		for e, n := 0, s.names.Len(); e < n; e++ {
			ent := intern.ID(e)
			if got, want := s.locks.FastSharedCountID(ent), fastCounts[ent]; got != want {
				return fmt.Errorf("core: entity %q fast-holder word %d != %d fast slots",
					s.names.Name(ent), got, want)
			}
		}
	}
	return nil
}

// PC returns id's current program counter (index of the next operation
// it will execute), or -1 for unknown transactions.
func (s *System) PC(id txn.ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return -1
	}
	return t.pc
}
