package core

import (
	"fmt"

	"partialrollback/internal/deadlock"
	"partialrollback/internal/txn"
)

// EventKind enumerates engine events.
type EventKind int

// Engine events.
const (
	EventRegister EventKind = iota
	EventGrant
	EventWait
	EventDeadlock
	EventRollback
	EventUnlock
	EventCommit
	// EventAbort: the transaction was rolled back to its initial state
	// and removed from the system (see System.Abort).
	EventAbort
	// EventAdmit: a sharded engine placed a transaction whose
	// registration had been queued behind a cross-shard conflict
	// (internal/shard); the transaction is now runnable on its shard.
	// Single-shard Systems never emit it.
	EventAdmit
)

func (k EventKind) String() string {
	switch k {
	case EventRegister:
		return "register"
	case EventGrant:
		return "grant"
	case EventWait:
		return "wait"
	case EventDeadlock:
		return "deadlock"
	case EventRollback:
		return "rollback"
	case EventUnlock:
		return "unlock"
	case EventCommit:
		return "commit"
	case EventAbort:
		return "abort"
	case EventAdmit:
		return "admit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one engine occurrence, delivered to Config.OnEvent.
type Event struct {
	Kind   EventKind
	Txn    txn.ID
	Entity string
	Detail string
	// Deadlock is set for EventDeadlock.
	Deadlock *DeadlockReport
	// From/To/Lost are set for EventRollback: state indexes before and
	// after, and the operations lost.
	FromState, ToState int64
	Lost               int64
	ToLockState        int
}

func (e Event) String() string {
	switch e.Kind {
	case EventRollback:
		return fmt.Sprintf("rollback %v to lock state %d (state %d -> %d, lost %d)",
			e.Txn, e.ToLockState, e.FromState, e.ToState, e.Lost)
	case EventDeadlock:
		return fmt.Sprintf("deadlock via %v: %v", e.Txn, e.Deadlock)
	case EventGrant, EventWait, EventUnlock:
		return fmt.Sprintf("%s %v %s", e.Kind, e.Txn, e.Entity)
	default:
		if e.Detail != "" {
			return fmt.Sprintf("%s %v (%s)", e.Kind, e.Txn, e.Detail)
		}
		return fmt.Sprintf("%s %v", e.Kind, e.Txn)
	}
}

// DeadlockReport describes one detected-and-resolved deadlock.
type DeadlockReport struct {
	// Requester caused the conflict whose wait closed the cycles.
	Requester txn.ID
	// Entity is the entity the requester asked for.
	Entity string
	// Cycles are the simple cycles through Requester (each starts at
	// Requester; member i waits for member i+1).
	Cycles [][]txn.ID
	// Candidates maps every cycle participant to its rollback plan,
	// letting callers inspect the §3.1 cost comparison (Figure 1's
	// 4 vs 6 vs 5).
	Candidates map[txn.ID]deadlock.Victim
	// Victims are the transactions actually rolled back.
	Victims []deadlock.Victim
}

func (r *DeadlockReport) String() string {
	return fmt.Sprintf("requester %v over %q, %d cycle(s), victims %v",
		r.Requester, r.Entity, len(r.Cycles), r.Victims)
}

// Outcome classifies the result of one Step.
type Outcome int

// Step outcomes.
const (
	// Progressed: one operation executed (possibly a lock grant).
	Progressed Outcome = iota
	// Blocked: the operation was a lock request that must wait; no
	// deadlock resulted.
	Blocked
	// BlockedDeadlock: the wait closed one or more cycles; victims were
	// rolled back (see StepResult.Deadlock). The stepping transaction
	// may itself be among the victims, and may or may not have ended up
	// granted.
	BlockedDeadlock
	// StillWaiting: the transaction is waiting for a lock; nothing
	// happened.
	StillWaiting
	// Committed: the transaction executed its Commit.
	Committed
	// AlreadyCommitted: the transaction had already committed; nothing
	// happened.
	AlreadyCommitted
	// SelfRolledBack: a prevention rule (wait-die) rolled the stepping
	// transaction itself back; it remains runnable from its reset
	// program counter.
	SelfRolledBack
)

func (o Outcome) String() string {
	switch o {
	case Progressed:
		return "progressed"
	case Blocked:
		return "blocked"
	case BlockedDeadlock:
		return "blocked-deadlock"
	case StillWaiting:
		return "still-waiting"
	case Committed:
		return "committed"
	case AlreadyCommitted:
		return "already-committed"
	case SelfRolledBack:
		return "self-rolled-back"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// StepResult reports what one Step did.
type StepResult struct {
	Outcome Outcome
	// Deadlock is non-nil when Outcome is BlockedDeadlock.
	Deadlock *DeadlockReport
	// Durable is non-nil when Outcome is Committed and a CommitLogger is
	// configured: the ticket to wait on (outside the engine mutex)
	// before acknowledging the commit to anyone.
	Durable CommitAck
}
