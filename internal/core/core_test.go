package core

import (
	"strings"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

func stepToCommit(t *testing.T, s *System, id txn.ID) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Outcome {
		case Committed:
			return
		case Progressed:
		default:
			t.Fatalf("%v: unexpected outcome %v", id, res.Outcome)
		}
	}
	t.Fatalf("%v did not commit", id)
}

func TestSingleTransactionLifecycle(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 10, "b": 20})
	s := New(Config{Store: store, Strategy: MCS, RecordHistory: true})
	p := txn.NewProgram("T").
		Local("x", 0).Local("y", 1).
		LockX("a").
		Read("a", "x").
		Compute("y", value.Add(value.L("x"), value.C(5))).
		Write("a", value.L("y")).
		LockS("b").
		Read("b", "x").
		Unlock("b").
		MustBuild()
	id := s.MustRegister(p)
	stepToCommit(t, s, id)
	if got := store.MustGet("a"); got != 15 {
		t.Errorf("a = %d, want 15", got)
	}
	if got := store.MustGet("b"); got != 20 {
		t.Errorf("b = %d", got)
	}
	st, _ := s.Status(id)
	if st != StatusCommitted {
		t.Error("status")
	}
	if _, err := s.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
	// Stepping a committed transaction is a no-op.
	res, err := s.Step(id)
	if err != nil || res.Outcome != AlreadyCommitted {
		t.Errorf("step after commit: %v %v", res.Outcome, err)
	}
}

func TestUnlockInstallsValueEarly(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 1})
	s := New(Config{Store: store, Strategy: Total})
	p := txn.NewProgram("T").
		Local("x", 0).
		LockX("a").
		Read("a", "x").
		Write("a", value.Add(value.L("x"), value.C(41))).
		Unlock("a").
		Compute("x", value.C(0)).
		MustBuild()
	id := s.MustRegister(p)
	// Step through the unlock (4 ops) but not commit.
	for i := 0; i < 4; i++ {
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.MustGet("a"); got != 42 {
		t.Errorf("a = %d after unlock, want 42 (installed before commit)", got)
	}
	stepToCommit(t, s, id)
}

func TestRegisterRejectsInvalidAndUnknownEntities(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store})
	bad := &txn.Program{Name: "bad", Locals: map[string]int64{}, Ops: []txn.Op{
		{Kind: txn.OpRead, Entity: "a", Local: "x"},
		{Kind: txn.OpCommit},
	}}
	if _, err := s.Register(bad); err == nil {
		t.Error("invalid program accepted")
	}
	ghost := txn.NewProgram("ghost").Local("x", 0).LockX("zz").MustBuild()
	if _, err := s.Register(ghost); err == nil || !strings.Contains(err.Error(), "undefined entity") {
		t.Errorf("want undefined-entity error, got %v", err)
	}
	if _, err := s.Step(999); err == nil {
		t.Error("step of unknown txn")
	}
}

func TestSharedReadersProceedTogether(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 7})
	s := New(Config{Store: store, Strategy: SDG})
	mk := func(name string) txn.ID {
		return s.MustRegister(txn.NewProgram(name).
			Local("x", 0).LockS("a").Read("a", "x").MustBuild())
	}
	r1, r2 := mk("R1"), mk("R2")
	for _, id := range []txn.ID{r1, r2} {
		res, err := s.Step(id)
		if err != nil || res.Outcome != Progressed {
			t.Fatalf("shared lock should grant: %v %v", res.Outcome, err)
		}
	}
	stepToCommit(t, s, r1)
	stepToCommit(t, s, r2)
}

func TestDeclareLastLockStopsMonitoring(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: SDG})
	p := txn.NewProgram("T").
		Local("x", 0).
		LockX("a").
		LockX("b").
		DeclareLastLock().
		Write("a", value.C(1)).
		Write("b", value.C(2)).
		Write("a", value.C(3)).
		MustBuild()
	id := s.MustRegister(p)
	for i := 0; i < 6; i++ { // through the writes
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := s.WellDefinedStates(id)
	if err != nil {
		t.Fatal(err)
	}
	// Post-declaration writes are untracked: all states stay
	// well-defined despite a@{2?,...} scattering.
	if len(wd) != 3 {
		t.Errorf("well-defined = %v, want all of 0,1,2", wd)
	}
	stepToCommit(t, s, id)
}

func TestForceRollbackGuards(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})

	// Total: only state 0.
	s := New(Config{Store: store, Strategy: Total})
	p := txn.NewProgram("T").Local("x", 0).LockX("a").LockX("b").MustBuild()
	id := s.MustRegister(p)
	if _, err := s.Step(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id); err != nil {
		t.Fatal(err)
	}
	if err := s.ForceRollback(id, 1); err == nil {
		t.Error("total strategy must reject q=1")
	}
	if err := s.ForceRollback(id, 0); err != nil {
		t.Error(err)
	}
	if got := s.LockIndex(id); got != 0 {
		t.Errorf("lock index = %d", got)
	}
	if held := s.Held(id); len(held) != 0 {
		t.Errorf("held = %v", held)
	}

	// SDG: must reject non-well-defined targets.
	s2 := New(Config{Store: store, Strategy: SDG})
	p2 := txn.NewProgram("T2").Local("x", 0).
		LockX("a").Write("a", value.C(1)).
		LockX("b").Write("a", value.C(2)). // destroys state 1
		MustBuild()
	id2 := s2.MustRegister(p2)
	for i := 0; i < 4; i++ {
		if _, err := s2.Step(id2); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.ForceRollback(id2, 1); err == nil {
		t.Error("state 1 is not well-defined; rollback must fail")
	}
	if err := s2.ForceRollback(id2, 0); err != nil {
		t.Error(err)
	}
}

func TestRollbackAfterUnlockForbidden(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: MCS})
	p := txn.NewProgram("T").Local("x", 0).
		LockX("a").Unlock("a").Compute("x", value.C(1)).MustBuild()
	id := s.MustRegister(p)
	for i := 0; i < 2; i++ { // through unlock
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ForceRollback(id, 0); err == nil {
		t.Error("rollback after unlocking must be rejected (paper assumption)")
	}
}

func TestWaitingVictimResumesCorrectly(t *testing.T) {
	// T2 is rolled back while *waiting*; its queued request must be
	// retracted and it must re-execute from the reset point.
	store := entity.NewStore(map[string]int64{"a": 5, "b": 6})
	s := New(Config{Store: store, Strategy: MCS})
	t1 := s.MustRegister(txn.NewProgram("T1").Local("x", 0).
		LockX("a").Read("a", "x").LockX("b").Read("b", "x").MustBuild())
	t2 := s.MustRegister(txn.NewProgram("T2").Local("x", 0).
		LockX("b").Read("b", "x").LockX("a").Read("a", "x").MustBuild())
	mustStep := func(id txn.ID, want Outcome) {
		t.Helper()
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != want {
			t.Fatalf("%v: outcome %v, want %v", id, res.Outcome, want)
		}
	}
	mustStep(t1, Progressed) // lock a
	mustStep(t2, Progressed) // lock b
	mustStep(t1, Progressed) // read a
	mustStep(t2, Progressed) // read b
	mustStep(t1, Blocked)    // wait b
	// T2 requests a -> deadlock; with ordered policy T2 (younger
	// requester, no younger participants) backs off.
	res, err := s.Step(t2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != BlockedDeadlock {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Deadlock.Victims[0].Txn != t2 {
		t.Fatalf("victim %v", res.Deadlock.Victims)
	}
	st, _ := s.Status(t2)
	if st != StatusRunning {
		t.Fatalf("victim status %v", st)
	}
	if _, waiting := s.WaitingOn(t2); waiting {
		t.Error("victim still queued")
	}
	// T1 must have been granted b by the rollback release.
	st1, _ := s.Status(t1)
	if st1 != StatusRunning {
		t.Error("T1 should be granted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	stepToCommit(t, s, t1)
	stepToCommit(t, s, t2)
	if store.MustGet("a") != 5 || store.MustGet("b") != 6 {
		t.Error("read-only programs must not change values")
	}
}

func TestEventStream(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	var kinds []EventKind
	s := New(Config{Store: store, OnEvent: func(e Event) {
		kinds = append(kinds, e.Kind)
		_ = e.String() // must not panic
	}})
	id := s.MustRegister(txn.NewProgram("T").Local("x", 0).
		LockX("a").Unlock("a").MustBuild())
	stepToCommit(t, s, id)
	want := []EventKind{EventRegister, EventGrant, EventUnlock, EventCommit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 100, "b": 200})
	s := New(Config{Store: store, Strategy: MCS})
	t1 := s.MustRegister(transferProg("T1", "a", "b", 10))
	t2 := s.MustRegister(transferProg("T2", "b", "a", 5))
	_ = t1
	_ = t2
	runAll(t, s)
	st := s.Stats()
	if st.Commits != 2 || st.Deadlocks == 0 || st.Rollbacks == 0 || st.OpsLost == 0 {
		t.Errorf("stats = %+v", st)
	}
	ts := s.TxnStatsOf(t2)
	if ts.OpsExecuted == 0 {
		t.Error("txn stats empty")
	}
}

func TestStringerCoverage(t *testing.T) {
	for _, s := range []interface{ String() string }{
		Total, MCS, SDG, Strategy(99),
		NoPrevention, WoundWait, WaitDie,
		StatusRunning, StatusWaiting, StatusCommitted, Status(99),
		Progressed, Blocked, BlockedDeadlock, StillWaiting, Committed,
		AlreadyCommitted, SelfRolledBack, Outcome(99),
		EventRegister, EventGrant, EventWait, EventDeadlock,
		EventRollback, EventUnlock, EventCommit, EventKind(99),
	} {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
}
