package core

import (
	"errors"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// transfer builds the canonical two-entity transfer program (a local
// copy of sim.TransferProgram; sim imports core and cannot be used
// here).
func transfer(name, from, to string, amount int64, padOps int) *txn.Program {
	b := txn.NewProgram(name).
		Local("x", 0).Local("y", 0).Local("pad", 0).
		LockX(from).
		Read(from, "x")
	for i := 0; i < padOps; i++ {
		b.Compute("pad", value.Add(value.L("pad"), value.C(1)))
	}
	return b.
		LockX(to).
		Read(to, "y").
		Write(from, value.Sub(value.L("x"), value.C(amount))).
		Write(to, value.Add(value.L("y"), value.C(amount))).
		MustBuild()
}

func lifecycleSystem(t *testing.T, strategy Strategy) *System {
	t.Helper()
	return New(Config{Store: entity.NewUniformStore("e", 8, 10), Strategy: strategy})
}

// stepUntil steps id until cond or the bound runs out.
func stepUntil(t *testing.T, s *System, id txn.ID, cond func(StepResult) bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		res, err := s.Step(id)
		if err != nil {
			t.Fatalf("step %v: %v", id, err)
		}
		if cond(res) {
			return
		}
	}
	t.Fatalf("%v: condition not reached in 1000 steps", id)
}

func TestAbortReleasesLocksAndUnblocksWaiter(t *testing.T) {
	for _, strategy := range []Strategy{Total, MCS, SDG, Hybrid} {
		t.Run(strategy.String(), func(t *testing.T) {
			s := lifecycleSystem(t, strategy)
			holder := s.MustRegister(transfer("holder", "e0", "e1", 1, 2))
			waiter := s.MustRegister(transfer("waiter", "e0", "e2", 1, 0))
			// Holder takes e0; waiter blocks on it.
			if _, err := s.Step(holder); err != nil {
				t.Fatal(err)
			}
			stepUntil(t, s, waiter, func(r StepResult) bool { return r.Outcome == Blocked })

			if err := s.Abort(holder); err != nil {
				t.Fatalf("abort: %v", err)
			}
			if _, err := s.Status(holder); err == nil {
				t.Error("aborted transaction still registered")
			}
			// The waiter must have been granted e0 by the release.
			if st, err := s.Status(waiter); err != nil || st != StatusRunning {
				t.Fatalf("waiter status %v err %v after abort", st, err)
			}
			stepUntil(t, s, waiter, func(r StepResult) bool { return r.Outcome == Committed })
			if got := s.Stats().Aborts; got != 1 {
				t.Errorf("aborts = %d, want 1", got)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The store must be untouched by the aborted transaction.
			if v := s.store.MustGet("e0"); v != 9 {
				t.Errorf("e0 = %d after waiter commit, want 9", v)
			}
		})
	}
}

func TestAbortBeforeFirstLock(t *testing.T) {
	s := lifecycleSystem(t, SDG)
	id := s.MustRegister(transfer("fresh", "e0", "e1", 1, 0))
	if err := s.Abort(id); err != nil {
		t.Fatalf("abort of unstarted transaction: %v", err)
	}
	if _, err := s.Status(id); err == nil {
		t.Error("aborted transaction still registered")
	}
}

func TestAbortWaitingTransaction(t *testing.T) {
	s := lifecycleSystem(t, MCS)
	holder := s.MustRegister(transfer("holder", "e0", "e1", 1, 0))
	waiter := s.MustRegister(transfer("waiter", "e0", "e2", 1, 0))
	if _, err := s.Step(holder); err != nil {
		t.Fatal(err)
	}
	stepUntil(t, s, waiter, func(r StepResult) bool { return r.Outcome == Blocked })
	if err := s.Abort(waiter); err != nil {
		t.Fatalf("abort waiting: %v", err)
	}
	stepUntil(t, s, holder, func(r StepResult) bool { return r.Outcome == Committed })
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortCommittedAndShrinking(t *testing.T) {
	s := lifecycleSystem(t, SDG)
	p := txn.NewProgram("shrink").
		Local("x", 0).
		LockX("e0").Read("e0", "x").
		Unlock("e0").
		Compute("x", value.Add(value.L("x"), value.C(1))).
		MustBuild()
	id := s.MustRegister(p)
	// Step past the unlock: Lock, Read, Unlock.
	for i := 0; i < 3; i++ {
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Abort(id); !errors.Is(err, ErrShrinking) {
		t.Errorf("abort in shrinking phase: got %v, want ErrShrinking", err)
	}
	stepUntil(t, s, id, func(r StepResult) bool { return r.Outcome == Committed })
	if err := s.Abort(id); !errors.Is(err, ErrCommitted) {
		t.Errorf("abort after commit: got %v, want ErrCommitted", err)
	}
}

func TestForget(t *testing.T) {
	s := lifecycleSystem(t, Total)
	id := s.MustRegister(transfer("t", "e0", "e1", 1, 0))
	if err := s.Forget(id); err == nil {
		t.Error("forget of running transaction should fail")
	}
	stepUntil(t, s, id, func(r StepResult) bool { return r.Outcome == Committed })
	if err := s.Forget(id); err != nil {
		t.Fatalf("forget: %v", err)
	}
	if _, err := s.Status(id); err == nil {
		t.Error("forgotten transaction still registered")
	}
	if err := s.Forget(id); err == nil {
		t.Error("double forget should fail")
	}
	// AllCommitted must remain true with the table emptied.
	if !s.AllCommitted() {
		t.Error("AllCommitted false after forget")
	}
}

func TestAbortEventEmitted(t *testing.T) {
	var events []EventKind
	store := entity.NewUniformStore("e", 4, 0)
	s := New(Config{Store: store, OnEvent: func(e Event) { events = append(events, e.Kind) }})
	id := s.MustRegister(transfer("t", "e0", "e1", 1, 0))
	if _, err := s.Step(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(id); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range events {
		if k == EventAbort {
			found = true
		}
	}
	if !found {
		t.Errorf("no EventAbort in %v", events)
	}
	if EventAbort.String() != "abort" {
		t.Errorf("EventAbort.String() = %q", EventAbort.String())
	}
}
