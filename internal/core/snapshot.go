package core

import (
	"sort"

	"partialrollback/internal/txn"
	"partialrollback/internal/waitfor"
)

// HeldLock describes one lock a transaction currently holds.
type HeldLock struct {
	Entity string `json:"entity"`
	// Mode is "S" or "X".
	Mode string `json:"mode"`
	// Index is the lock index at which the lock was acquired (the lock
	// state preceding its request).
	Index int `json:"index"`
}

// TxnSnapshot is one active (or committed but not yet forgotten)
// transaction's point-in-time state, as served by the observability
// layer's /debug/txns endpoint.
type TxnSnapshot struct {
	ID         txn.ID     `json:"txn"`
	Program    string     `json:"program"`
	Status     string     `json:"status"`
	Entry      int64      `json:"entry"`
	PC         int        `json:"pc"`
	StateIndex int64      `json:"stateIndex"`
	LockIndex  int        `json:"lockIndex"`
	Held       []HeldLock `json:"held,omitempty"`
	// WaitingOn is the entity the transaction waits for, when waiting.
	WaitingOn string `json:"waitingOn,omitempty"`
	// RestartCost is the paper's rollback-cost metric evaluated at the
	// initial state: the atomic operations that would be lost if the
	// transaction were rolled back to state 0 right now (= StateIndex).
	RestartCost int64 `json:"restartCost"`
	// Unlocked reports the shrinking phase (never rolled back again).
	Unlocked bool     `json:"unlocked,omitempty"`
	Stats    TxnStats `json:"stats"`
}

// WaitArc is one wait-for relationship in a snapshot, in the internal
// waiter -> holder orientation (the paper draws holder -> waiter;
// renderers flip it and say so).
type WaitArc struct {
	Waiter txn.ID `json:"waiter"`
	Holder txn.ID `json:"holder"`
	Entity string `json:"entity"`
}

// DebugSnapshot is a consistent point-in-time view of one engine (one
// System, or one shard of a sharded engine): its active transaction
// table, wait-for arcs, and counter snapshot. It is what the
// observability subsystem's inspector endpoints serve.
type DebugSnapshot struct {
	// Shard is the shard index the snapshot was taken from (0 for an
	// unsharded System).
	Shard int           `json:"shard"`
	Txns  []TxnSnapshot `json:"txns"`
	Arcs  []WaitArc     `json:"arcs"`
	Stats Stats         `json:"stats"`
}

// Snapshotter is implemented by engines that can produce a single
// consistent debug snapshot (the unsharded System).
type Snapshotter interface {
	DebugSnapshot() DebugSnapshot
}

// ShardSnapshotter is implemented by engines composed of several
// sub-engines (internal/shard); each element covers one shard, with
// transaction IDs remapped into the global namespace.
type ShardSnapshotter interface {
	DebugSnapshots() []DebugSnapshot
}

// Quiescer is implemented by engines that can briefly exclude all
// mutation: fn runs while every internal engine mutex is held, so no
// step, commit, install, or commit-log append can interleave anywhere
// in the engine. The checkpoint subsystem uses it to capture a
// commit-consistent entity snapshot together with the WAL sequence
// frontier — under the paper's deferred-update discipline (§4) the
// store only ever holds committed-or-unlocked values, so a snapshot
// taken here is transaction-consistent without quiescing the workload
// itself. fn must be fast (copy slices, read counters) and must not
// call back into the engine.
type Quiescer interface {
	Quiesce(fn func())
}

var _ Snapshotter = (*System)(nil)
var _ Quiescer = (*System)(nil)

// Quiesce runs fn under the engine mutex. See Quiescer.
func (s *System) Quiesce(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// DebugSnapshot returns a consistent point-in-time view of the system:
// every registered transaction with its held and awaited locks, the
// wait-for arcs, and the counter snapshot — all taken under one
// acquisition of the engine mutex.
func (s *System) DebugSnapshot() DebugSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := DebugSnapshot{Stats: s.stats}
	for id, t := range s.txns {
		ts := TxnSnapshot{
			ID:          id,
			Program:     t.prog.Name,
			Status:      t.status.String(),
			Entry:       t.entry,
			PC:          t.pc,
			StateIndex:  t.stateIndex,
			LockIndex:   t.lockIndex,
			RestartCost: t.stateIndex,
			Unlocked:    t.unlocked,
			Stats:       t.stats,
		}
		// Sourced from the transaction's slots (not the lock table) so
		// anonymous CAS-granted shared holds are included.
		for i := range t.slots {
			sl := &t.slots[i]
			ts.Held = append(ts.Held, HeldLock{Entity: s.names.Name(sl.ent), Mode: sl.mode.String(), Index: sl.heldAt})
		}
		sort.Slice(ts.Held, func(i, j int) bool { return ts.Held[i].Entity < ts.Held[j].Entity })
		if t.status == StatusWaiting {
			ts.WaitingOn = t.waitEntity
		}
		snap.Txns = append(snap.Txns, ts)
	}
	sort.Slice(snap.Txns, func(i, j int) bool { return snap.Txns[i].ID < snap.Txns[j].ID })
	for _, a := range s.wf.Arcs() {
		snap.Arcs = append(snap.Arcs, arcSnapshot(a))
	}
	return snap
}

func arcSnapshot(a waitfor.Arc) WaitArc {
	return WaitArc{Waiter: a.Waiter, Holder: a.Holder, Entity: a.Entity}
}
