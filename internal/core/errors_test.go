package core

import (
	"strings"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

func TestAccessorErrorPaths(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: Total})
	id := s.MustRegister(txn.NewProgram("T").Local("x", 0).LockX("a").MustBuild())

	if _, err := s.WellDefinedStates(id); err == nil {
		t.Error("WellDefinedStates under Total must error")
	}
	if _, _, err := s.MCSPeakSpace(id); err == nil {
		t.Error("MCSPeakSpace under Total must error")
	}
	if _, _, err := s.HybridStats(id); err == nil {
		t.Error("HybridStats under Total must error")
	}
	if _, err := s.Status(999); err == nil {
		t.Error("Status of unknown txn")
	}
	if _, err := s.Locals(999); err == nil {
		t.Error("Locals of unknown txn")
	}
	if s.PC(999) != -1 {
		t.Error("PC of unknown txn")
	}
	if s.ProgramName(999) != "" || s.StateIndex(999) != 0 || s.LockIndex(999) != 0 || s.EntryOf(999) != 0 {
		t.Error("zero values for unknown txn")
	}
	if _, ok := s.LocalCopy(999, "a"); ok {
		t.Error("LocalCopy of unknown txn")
	}
	if err := s.ForceRollback(999, 0); err == nil {
		t.Error("ForceRollback of unknown txn")
	}
	if err := s.ForceRollback(id, 0); err == nil {
		t.Error("rollback with no lock states must error")
	}
}

func TestForceRollbackOutOfRange(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: MCS})
	id := s.MustRegister(txn.NewProgram("T").Local("x", 0).LockX("a").MustBuild())
	if _, err := s.Step(id); err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{-1, 1, 5} {
		if err := s.ForceRollback(id, q); err == nil {
			t.Errorf("ForceRollback(%d) accepted", q)
		}
	}
}

func TestRollbackOfCommittedRejected(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: MCS})
	id := s.MustRegister(txn.NewProgram("T").Local("x", 0).LockX("a").MustBuild())
	stepToCommit(t, s, id)
	if err := s.ForceRollback(id, 0); err == nil ||
		!strings.Contains(err.Error(), "committed") {
		t.Errorf("rollback of committed: %v", err)
	}
}

func TestDivideByZeroSurfacesAsStepError(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: SDG})
	id := s.MustRegister(txn.NewProgram("T").Local("x", 0).
		LockX("a").
		Compute("x", value.Div(value.C(1), value.L("x"))). // 1/0
		MustBuild())
	if _, err := s.Step(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id); err == nil {
		t.Error("runtime expression error must surface from Step")
	}
}

func TestNewPanicsWithoutStore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without Store must panic")
		}
	}()
	New(Config{})
}

func TestRegisterAfterOthersCommitted(t *testing.T) {
	// Open-system usage: registering fresh transactions after earlier
	// ones committed keeps entry order monotone.
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Strategy: MCS})
	id1 := s.MustRegister(txn.NewProgram("T1").Local("x", 0).LockX("a").MustBuild())
	stepToCommit(t, s, id1)
	id2 := s.MustRegister(txn.NewProgram("T2").Local("x", 0).LockX("a").MustBuild())
	if s.EntryOf(id2) <= s.EntryOf(id1) {
		t.Error("entry order must be monotone")
	}
	stepToCommit(t, s, id2)
	if !s.AllCommitted() {
		t.Error("all committed")
	}
}
