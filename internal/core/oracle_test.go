package core

import (
	"fmt"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// runSerially executes programs one after another, alone, on store —
// the ground truth any serializable concurrent execution must match for
// some order.
func runSerially(t *testing.T, store *entity.Store, programs []*txn.Program) {
	t.Helper()
	s := New(Config{Store: store, Strategy: Total})
	for _, p := range programs {
		id := s.MustRegister(p)
		stepToCommit(t, s, id)
	}
}

// prefixRollbackProgram is a program whose values depend on everything
// executed so far, so incorrect state restoration shows up in the final
// database.
func chainProgram(name string, entities []string, bump int64) *txn.Program {
	b := txn.NewProgram(name).Local("acc", 0).Local("v", 0)
	for _, e := range entities {
		b.LockX(e).
			Read(e, "v").
			Compute("acc", value.Add(value.L("acc"), value.L("v")))
	}
	for _, e := range entities {
		// Each entity's new value depends on the whole accumulated sum.
		b.Write(e, value.Add(value.L("v"), value.Add(value.Mod(value.L("acc"), value.C(97)), value.C(bump))))
	}
	return b.MustBuild()
}

// TestSerialEquivalenceOracle: for every strategy, a concurrent
// deadlocking execution must leave the database exactly as the
// history's equivalent serial order would.
func TestSerialEquivalenceOracle(t *testing.T) {
	entities := []string{"a", "b", "c", "d"}
	mkStore := func() *entity.Store {
		return entity.NewStore(map[string]int64{"a": 11, "b": 23, "c": 5, "d": 8})
	}
	programs := []*txn.Program{
		chainProgram("P1", []string{"a", "b", "c"}, 1),
		chainProgram("P2", []string{"c", "b", "a"}, 2),
		chainProgram("P3", []string{"b", "d", "a"}, 3),
		chainProgram("P4", []string{"d", "c"}, 4),
	}
	for _, strat := range []Strategy{Total, MCS, SDG, Hybrid} {
		t.Run(strat.String(), func(t *testing.T) {
			store := mkStore()
			s := New(Config{Store: store, Strategy: strat, RecordHistory: true})
			ids := make([]txn.ID, len(programs))
			progByID := map[txn.ID]*txn.Program{}
			for i, p := range programs {
				ids[i] = s.MustRegister(p)
				progByID[ids[i]] = p
			}
			runAll(t, s)
			if s.Stats().Deadlocks == 0 {
				t.Log("warning: no deadlocks provoked")
			}
			order, err := s.Recorder().SerialOrder()
			if err != nil {
				t.Fatal(err)
			}
			oracle := mkStore()
			var serialProgs []*txn.Program
			for _, id := range order {
				serialProgs = append(serialProgs, progByID[id].Clone())
			}
			runSerially(t, oracle, serialProgs)
			for _, e := range entities {
				got := store.MustGet(e)
				want := oracle.MustGet(e)
				if got != want {
					t.Errorf("%s: entity %q = %d, serial oracle %d (order %v)", strat, e, got, want, order)
				}
			}
		})
	}
}

// TestDeterminism: the engine is a pure function of (programs, step
// sequence): repeating a run gives identical stats and database.
func TestDeterminism(t *testing.T) {
	run := func() (Stats, map[string]int64) {
		store := entity.NewStore(map[string]int64{"a": 1, "b": 2, "c": 3})
		s := New(Config{Store: store, Strategy: MCS})
		for i, order := range [][]string{{"a", "b", "c"}, {"c", "a", "b"}, {"b", "c", "a"}} {
			s.MustRegister(chainProgram(fmt.Sprintf("P%d", i), order, int64(i)))
		}
		for !s.AllCommitted() {
			for _, id := range s.IDs() {
				if _, err := s.Step(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s.Stats(), store.Snapshot()
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	if fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Errorf("final states differ: %v vs %v", m1, m2)
	}
}

// TestRollbackRestoresPrefixState: forcing a rollback to any reachable
// state leaves the transaction exactly as a fresh execution of the
// prefix, for both partial strategies.
func TestRollbackRestoresPrefixState(t *testing.T) {
	prog := chainProgram("P", []string{"a", "b", "c", "d"}, 7)
	mkStore := func() *entity.Store {
		return entity.NewStore(map[string]int64{"a": 3, "b": 1, "c": 4, "d": 1})
	}
	analysis := txn.Analyze(prog)
	for _, strat := range []Strategy{MCS, SDG, Hybrid} {
		// q = NumLocks is the current state, not a rollback target.
		for q := 0; q < analysis.NumLocks(); q++ {
			// Run the whole program except Commit, roll back to q.
			s := New(Config{Store: mkStore(), Strategy: strat})
			id := s.MustRegister(prog)
			for i := 0; i < len(prog.Ops)-1; i++ {
				if _, err := s.Step(id); err != nil {
					t.Fatal(err)
				}
			}
			err := s.ForceRollback(id, q)
			if err != nil {
				if strat == SDG || strat == Hybrid {
					continue // unrestorable target: correctly refused
				}
				t.Fatalf("%v q=%d: %v", strat, q, err)
			}
			// Fresh prefix execution: step a new instance up to the
			// (q+1)-th lock request.
			s2 := New(Config{Store: mkStore(), Strategy: strat})
			id2 := s2.MustRegister(prog.Clone())
			var stopAt int
			if q < analysis.NumLocks() {
				stopAt = analysis.Requests[q].OpIndex
			} else {
				stopAt = len(prog.Ops) - 1
			}
			for i := 0; i < stopAt; i++ {
				if _, err := s2.Step(id2); err != nil {
					t.Fatal(err)
				}
			}
			l1, _ := s.Locals(id)
			l2, _ := s2.Locals(id2)
			if fmt.Sprint(l1) != fmt.Sprint(l2) {
				t.Errorf("%v q=%d: locals %v, prefix %v", strat, q, l1, l2)
			}
			if fmt.Sprint(s.Held(id)) != fmt.Sprint(s2.Held(id2)) {
				t.Errorf("%v q=%d: held %v, prefix %v", strat, q, s.Held(id), s2.Held(id2))
			}
			for _, e := range s2.Held(id2) {
				v1, ok1 := s.LocalCopy(id, e)
				v2, ok2 := s2.LocalCopy(id2, e)
				if ok1 != ok2 || v1 != v2 {
					t.Errorf("%v q=%d: copy of %q = %d/%v, prefix %d/%v", strat, q, e, v1, ok1, v2, ok2)
				}
			}
			if s.StateIndex(id) != s2.StateIndex(id2) {
				t.Errorf("%v q=%d: state index %d, prefix %d", strat, q, s.StateIndex(id), s2.StateIndex(id2))
			}
			// Resuming after the rollback completes identically to an
			// uninterrupted run.
			stepToCommit(t, s, id)
			s3 := New(Config{Store: mkStore(), Strategy: strat})
			id3 := s3.MustRegister(prog.Clone())
			stepToCommit(t, s3, id3)
			// Compare final stores via fresh snapshots... stores differ
			// per system; rebuild from systems' stores.
		}
	}
}

// TestRollbackThenCommitMatchesCleanRun: after an arbitrary mid-flight
// partial rollback, finishing the transaction installs exactly the
// values of an uninterrupted execution.
func TestRollbackThenCommitMatchesCleanRun(t *testing.T) {
	prog := chainProgram("P", []string{"a", "b", "c"}, 9)
	init := map[string]int64{"a": 2, "b": 7, "c": 1}
	clean := entity.NewStore(init)
	sClean := New(Config{Store: clean, Strategy: MCS})
	stepToCommit(t, sClean, sClean.MustRegister(prog.Clone()))

	for q := 0; q <= 3; q++ {
		for stopFrac := 1; stopFrac <= 3; stopFrac++ {
			store := entity.NewStore(init)
			s := New(Config{Store: store, Strategy: MCS})
			id := s.MustRegister(prog.Clone())
			stop := (len(prog.Ops) - 1) * stopFrac / 3
			for i := 0; i < stop; i++ {
				if _, err := s.Step(id); err != nil {
					t.Fatal(err)
				}
			}
			if q <= s.LockIndex(id) && s.LockIndex(id) > 0 && q < s.LockIndex(id) {
				if err := s.ForceRollback(id, q); err != nil {
					t.Fatalf("q=%d stop=%d: %v", q, stop, err)
				}
			}
			stepToCommit(t, s, id)
			for e, want := range clean.Snapshot() {
				if got := store.MustGet(e); got != want {
					t.Errorf("q=%d stop=%d: %q = %d, want %d", q, stop, e, got, want)
				}
			}
		}
	}
}
