package core

import (
	"fmt"

	"partialrollback/internal/history"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Step executes the next atomic operation of transaction id. Waiting
// and committed transactions are reported as such without effect.
func (s *System) Step(id txn.ID) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return StepResult{}, err
	}
	switch t.status {
	case StatusCommitted:
		return StepResult{Outcome: AlreadyCommitted}, nil
	case StatusWaiting:
		return StepResult{Outcome: StillWaiting}, nil
	}
	s.stats.Steps++
	op := t.prog.Ops[t.pc]
	switch op.Kind {
	case txn.OpLockS, txn.OpLockX:
		return s.stepLock(t, op)
	case txn.OpRead:
		v, err := s.readEntity(t, op.Entity)
		if err != nil {
			return StepResult{}, err
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpWrite:
		v, err := op.Expr.Eval(value.MapEnv(t.locals))
		if err != nil {
			return StepResult{}, fmt.Errorf("core: %v op %d: %w", t.id, t.pc, err)
		}
		if err := s.writeEntity(t, op.Entity, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpCompute:
		v, err := op.Expr.Eval(value.MapEnv(t.locals))
		if err != nil {
			return StepResult{}, fmt.Errorf("core: %v op %d: %w", t.id, t.pc, err)
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpUnlock:
		if err := s.unlockEntity(t, op.Entity); err != nil {
			return StepResult{}, err
		}
		t.unlocked = true
		s.advance(t)
		s.emit(Event{Kind: EventUnlock, Txn: t.id, Entity: op.Entity})
		return StepResult{Outcome: Progressed}, nil
	case txn.OpDeclareLastLock:
		t.declaredLast = true
		if t.sdg != nil {
			t.sdg.StopMonitoring()
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpCommit:
		if err := s.commit(t); err != nil {
			return StepResult{}, err
		}
		return StepResult{Outcome: Committed}, nil
	default:
		return StepResult{}, fmt.Errorf("core: %v op %d: unknown kind %v", t.id, t.pc, op.Kind)
	}
}

// advance counts one executed atomic operation.
func (s *System) advance(t *tstate) {
	t.pc++
	t.stateIndex++
	t.stats.OpsExecuted++
}

// stepLock handles a lock-request operation for a running transaction.
func (s *System) stepLock(t *tstate, op txn.Op) (StepResult, error) {
	mode := lock.Shared
	if op.Kind == txn.OpLockX {
		mode = lock.Exclusive
	}
	// Record the lock state immediately preceding this request, unless
	// it is already recorded (cannot happen for a running transaction:
	// a retried request only re-executes after rollback truncated the
	// record).
	if len(t.lockStates) != t.lockIndex {
		return StepResult{}, fmt.Errorf("core: %v lock-state records out of sync (%d != %d)",
			t.id, len(t.lockStates), t.lockIndex)
	}
	t.lockStates = append(t.lockStates, lockStateRec{opIndex: t.pc, stateIndex: t.stateIndex})
	if t.hyb != nil && t.hyb.Planned(t.lockIndex) {
		// The state immediately preceding this request is a planned
		// checkpoint: snapshot locals and entity copies now, before the
		// request can be granted.
		t.hyb.TakeCheckpoint(t.lockIndex, t.locals, t.copies)
	}

	granted, blockers, err := s.locks.Acquire(t.id, op.Entity, mode)
	if err != nil {
		return StepResult{}, err
	}
	if granted {
		s.finishGrant(t, op.Entity, mode)
		return StepResult{Outcome: Progressed}, nil
	}

	// Wait response (§2 rule 2).
	t.status = StatusWaiting
	t.waitEntity = op.Entity
	t.stats.Waits++
	s.stats.Waits++
	for _, b := range blockers {
		s.wf.AddWait(t.id, b, op.Entity)
	}
	s.emit(Event{Kind: EventWait, Txn: t.id, Entity: op.Entity})

	if s.cfg.Prevention != NoPrevention {
		res, err := s.preventConflict(t, op.Entity, blockers)
		if err != nil || t.status != StatusWaiting {
			return res, err
		}
		// Safety net: shared-lock grants can jump timestamp checks, so
		// a cycle can still form in rare interleavings; fall through to
		// detection if one did.
		if len(s.wf.CyclesThrough(t.id, 1)) == 0 {
			return res, nil
		}
	}

	cycles := s.wf.CyclesThrough(t.id, s.cfg.MaxCycles)
	if len(cycles) == 0 {
		return StepResult{Outcome: Blocked}, nil
	}
	report, err := s.resolveDeadlock(t, op.Entity, cycles)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{Outcome: BlockedDeadlock, Deadlock: report}, nil
}

// finishGrant completes a granted lock request for t: bookkeeping,
// local-copy creation for exclusive locks, strategy hooks, and the
// program-counter advance past the request op. Used both for immediate
// grants and for promotions of queued waiters.
func (s *System) finishGrant(t *tstate, entityName string, mode lock.Mode) {
	t.heldAt[entityName] = t.lockIndex
	t.modes[entityName] = mode
	if mode == lock.Exclusive {
		gv := s.store.MustGet(entityName)
		t.copies[entityName] = gv
		if t.mcs != nil {
			t.mcs.OnLock(entityName, true, gv)
		}
	} else if t.mcs != nil {
		t.mcs.OnLock(entityName, false, 0)
	}
	if t.sdg != nil {
		t.sdg.OnLock()
	}
	t.lockIndex++
	t.starveRounds = 0
	if t.status == StatusWaiting {
		t.status = StatusRunning
		t.waitEntity = ""
		s.wf.RemoveAllWaitsBy(t.id)
	}
	if s.recorder != nil {
		m := history.Read
		if mode == lock.Exclusive {
			m = history.Write
		}
		s.recorder.OnGrant(t.id, entityName, m)
	}
	s.advance(t)
	s.stats.Grants++
	// A shared grant can jump past queued exclusive waiters; those
	// waiters now wait on this holder too, so their arcs are rebuilt.
	s.refreshWaiters(entityName)
	s.emit(Event{Kind: EventGrant, Txn: t.id, Entity: entityName, Detail: mode.String()})
}

// applyGrants processes lock promotions produced by releases.
func (s *System) applyGrants(grants []lock.Grant) {
	for _, g := range grants {
		t, ok := s.txns[g.Txn]
		if !ok {
			continue
		}
		s.finishGrant(t, g.Entity, g.Mode)
	}
}

// readEntity returns the value t observes for a locked entity: its
// local copy for exclusive holds, the (stable) global value for shared
// holds.
func (s *System) readEntity(t *tstate, entityName string) (int64, error) {
	mode, held := t.modes[entityName]
	if !held {
		return 0, fmt.Errorf("core: %v read of unheld entity %q", t.id, entityName)
	}
	if mode == lock.Exclusive {
		return t.copies[entityName], nil
	}
	return s.store.MustGet(entityName), nil
}

// writeEntity updates t's local copy of an exclusively held entity.
func (s *System) writeEntity(t *tstate, entityName string, v int64) error {
	if m, held := t.modes[entityName]; !held || m != lock.Exclusive {
		return fmt.Errorf("core: %v write to entity %q without exclusive lock", t.id, entityName)
	}
	t.copies[entityName] = v
	if t.mcs != nil {
		if err := t.mcs.WriteEntity(entityName, v); err != nil {
			return err
		}
	}
	if t.sdg != nil {
		t.sdg.OnWrite("e:" + entityName)
	}
	return nil
}

// assignLocal updates a local variable (Read destination or Compute).
func (s *System) assignLocal(t *tstate, local string, v int64) error {
	if _, ok := t.locals[local]; !ok {
		return fmt.Errorf("core: %v assignment to undeclared local %q", t.id, local)
	}
	t.locals[local] = v
	if t.mcs != nil {
		if err := t.mcs.WriteLocal(local, v); err != nil {
			return err
		}
	}
	if t.sdg != nil {
		t.sdg.OnWrite("l:" + local)
	}
	return nil
}

// unlockEntity releases one entity during the shrinking phase,
// installing the local copy as the new global value for exclusive
// holds.
func (s *System) unlockEntity(t *tstate, entityName string) error {
	mode, held := t.modes[entityName]
	if !held {
		return fmt.Errorf("core: %v unlock of unheld entity %q", t.id, entityName)
	}
	if mode == lock.Exclusive {
		if err := s.store.Install(entityName, t.copies[entityName]); err != nil {
			return err
		}
	}
	if s.recorder != nil {
		s.recorder.OnRelease(t.id, entityName)
	}
	delete(t.copies, entityName)
	delete(t.heldAt, entityName)
	delete(t.modes, entityName)
	if t.mcs != nil {
		t.mcs.OnUnlock(entityName)
	}
	return s.releaseAndRefresh(t, entityName)
}

// commit terminates t: installs all exclusive local copies, releases
// every lock, and removes t from the concurrency graph.
func (s *System) commit(t *tstate) error {
	for _, entityName := range s.locks.HeldBy(t.id) {
		if t.modes[entityName] == lock.Exclusive {
			if err := s.store.Install(entityName, t.copies[entityName]); err != nil {
				return err
			}
		}
		if s.recorder != nil {
			s.recorder.OnRelease(t.id, entityName)
		}
		if err := s.releaseAndRefresh(t, entityName); err != nil {
			return err
		}
	}
	t.copies = map[string]int64{}
	t.heldAt = map[string]int{}
	t.modes = map[string]lock.Mode{}
	t.status = StatusCommitted
	t.pc = len(t.prog.Ops)
	s.wf.RemoveTxn(t.id)
	if s.recorder != nil {
		s.recorder.OnCommit(t.id)
	}
	s.stats.Commits++
	s.emit(Event{Kind: EventCommit, Txn: t.id})
	return nil
}
