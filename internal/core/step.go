package core

import (
	"fmt"

	"partialrollback/internal/history"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/intern"
	"partialrollback/internal/lock"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// Step executes the next atomic operation of transaction id. Waiting
// and committed transactions are reported as such without effect.
//
// Concurrency: different transactions may always be stepped
// concurrently. With Config.Stripes > 1 the engine additionally
// requires at most one concurrent stepper per transaction (the
// goroutine-per-transaction model of internal/runtime) — uncontended
// operations then run under a shared engine lock, mutating only the
// stepping transaction's own state.
func (s *System) Step(id txn.ID) (StepResult, error) {
	if s.striped {
		if res, _, err, done := s.stepFastBurst(id, 1); done {
			return res, err
		}
	}
	s.lockEngine()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return StepResult{}, err
	}
	return s.stepLocked(t)
}

// StepBurst executes up to max consecutive atomic operations of
// transaction id under a single mutex acquisition, stopping early the
// moment a step does anything other than progress: commit, block (with
// or without a deadlock), rollback of the stepping transaction itself,
// or a no-op poll of a waiting/committed transaction. It returns the
// last step's result plus the number of operations the engine actually
// attempted (polls of waiting or committed transactions count zero).
//
// Conflict resolution stays operation-granular: every lock request
// inside the burst goes through exactly the same grant/wait/detect
// logic as Step, and a wait ends the burst immediately, so the set of
// reachable schedules is unchanged — a burst merely runs a sequence of
// steps other transactions would not have been scheduled between.
// StepBurst(id, 1) is byte-identical to Step(id) (pinned by a
// regression test in internal/sim).
func (s *System) StepBurst(id txn.ID, max int) (StepResult, int, error) {
	if max < 1 {
		max = 1
	}
	steps := 0
	if s.striped {
		// Run the fast-path prefix of the burst under the shared lock;
		// fall through to the exclusive path only when an operation
		// needs it (conflict, commit, promotion).
		res, n, err, done := s.stepFastBurst(id, max)
		steps = n
		if done {
			return res, steps, err
		}
	}
	s.lockEngine()
	defer s.mu.Unlock()
	t, err := s.get(id)
	if err != nil {
		return StepResult{}, steps, err
	}
	for {
		res, err := s.stepLocked(t)
		if err != nil {
			return res, steps, err
		}
		if res.Outcome != AlreadyCommitted && res.Outcome != StillWaiting {
			steps++
		}
		if res.Outcome != Progressed || steps >= max {
			return res, steps, nil
		}
	}
}

// stepLocked executes t's next atomic operation. Caller holds s.mu.
func (s *System) stepLocked(t *tstate) (StepResult, error) {
	switch t.status {
	case StatusCommitted:
		return StepResult{Outcome: AlreadyCommitted}, nil
	case StatusWaiting:
		return StepResult{Outcome: StillWaiting}, nil
	}
	s.stats.Steps++
	op := &t.prog.Ops[t.pc]
	switch op.Kind {
	case txn.OpLockS, txn.OpLockX:
		return s.stepLock(t, op)
	case txn.OpRead:
		v, err := s.readEntity(t, t.opEnt[t.pc], op.Entity)
		if err != nil {
			return StepResult{}, err
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpWrite:
		v, err := s.evalExpr(t)
		if err != nil {
			return StepResult{}, err
		}
		if err := s.writeEntity(t, t.opEnt[t.pc], op.Entity, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpCompute:
		v, err := s.evalExpr(t)
		if err != nil {
			return StepResult{}, err
		}
		if err := s.assignLocal(t, op.Local, v); err != nil {
			return StepResult{}, err
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpUnlock:
		if err := s.unlockEntity(t, t.opEnt[t.pc], op.Entity); err != nil {
			return StepResult{}, err
		}
		t.unlocked = true
		s.advance(t)
		s.emit(Event{Kind: EventUnlock, Txn: t.id, Entity: op.Entity})
		return StepResult{Outcome: Progressed}, nil
	case txn.OpDeclareLastLock:
		t.declaredLast = true
		if t.sdg != nil {
			t.sdg.StopMonitoring()
		}
		s.advance(t)
		return StepResult{Outcome: Progressed}, nil
	case txn.OpCommit:
		ack, err := s.commit(t)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Outcome: Committed, Durable: ack}, nil
	default:
		return StepResult{}, fmt.Errorf("core: %v op %d: unknown kind %v", t.id, t.pc, op.Kind)
	}
}

// advance counts one executed atomic operation.
func (s *System) advance(t *tstate) {
	t.pc++
	t.stateIndex++
	t.stats.OpsExecuted++
}

// evalExpr evaluates the current op's expression against the
// transaction's slot-indexed locals (no per-eval Env allocation).
func (s *System) evalExpr(t *tstate) (int64, error) {
	v, err := value.EvalSlots(t.prog.Ops[t.pc].Expr, t.analysis.LocalSlot, t.locals)
	if err != nil {
		return 0, fmt.Errorf("core: %v op %d: %w", t.id, t.pc, err)
	}
	return v, nil
}

// stepLock handles a lock-request operation for a running transaction.
func (s *System) stepLock(t *tstate, op *txn.Op) (StepResult, error) {
	ent := t.opEnt[t.pc]
	mode := lock.Shared
	if op.Kind == txn.OpLockX {
		mode = lock.Exclusive
	}
	// Record the lock state immediately preceding this request, unless
	// it is already recorded (cannot happen for a running transaction:
	// a retried request only re-executes after rollback truncated the
	// record).
	if len(t.lockStates) != t.lockIndex {
		return StepResult{}, fmt.Errorf("core: %v lock-state records out of sync (%d != %d)",
			t.id, len(t.lockStates), t.lockIndex)
	}
	t.lockStates = append(t.lockStates, lockStateRec{opIndex: t.pc, stateIndex: t.stateIndex})
	if t.hyb != nil && t.hyb.Planned(t.lockIndex) {
		// The state immediately preceding this request is a planned
		// checkpoint: snapshot locals and entity copies now, before the
		// request can be granted.
		s.copiesBuf = s.copiesBuf[:0]
		for i := range t.slots {
			if t.slots[i].mode == lock.Exclusive {
				s.copiesBuf = append(s.copiesBuf, hybrid.EntityCopy{Ent: t.slots[i].ent, Val: t.slots[i].copy})
			}
		}
		t.hyb.TakeCheckpoint(t.lockIndex, t.locals, s.copiesBuf)
	}

	if s.striped {
		// Anonymous CAS-granted shared holders are invisible to the
		// table; give them identities before the table evaluates this
		// request (conflict answers and wait-for arcs need them).
		if err := s.migrateFastHolders(ent); err != nil {
			return StepResult{}, err
		}
	}

	granted, blockers, err := s.locks.AcquireID(t.id, ent, mode, s.blockersBuf[:0])
	s.blockersBuf = blockers
	if err != nil {
		return StepResult{}, err
	}
	if granted {
		s.finishGrant(t, ent, op.Entity, mode)
		return StepResult{Outcome: Progressed}, nil
	}

	// Wait response (§2 rule 2).
	t.status = StatusWaiting
	t.waitEntity = op.Entity
	t.waitEnt = ent
	t.stats.Waits++
	s.stats.Waits++
	for _, b := range blockers {
		s.wf.AddWaitID(t.id, b, ent)
	}
	s.emit(Event{Kind: EventWait, Txn: t.id, Entity: op.Entity})

	if s.cfg.Prevention != NoPrevention {
		res, err := s.preventConflict(t, op.Entity, blockers)
		if err != nil || t.status != StatusWaiting {
			return res, err
		}
		// Safety net: shared-lock grants can jump timestamp checks, so
		// a cycle can still form in rare interleavings; fall through to
		// detection if one did.
		if len(s.wf.CyclesThrough(t.id, 1)) == 0 {
			return res, nil
		}
	}

	cycles := s.wf.CyclesThrough(t.id, s.cfg.MaxCycles)
	if len(cycles) == 0 {
		return StepResult{Outcome: Blocked}, nil
	}
	report, err := s.resolveDeadlock(t, op.Entity, cycles)
	if err != nil {
		return StepResult{}, err
	}
	return StepResult{Outcome: BlockedDeadlock, Deadlock: report}, nil
}

// finishGrant completes a granted lock request for t: bookkeeping,
// local-copy creation for exclusive locks, strategy hooks, and the
// program-counter advance past the request op. Used both for immediate
// grants and for promotions of queued waiters.
func (s *System) finishGrant(t *tstate, ent intern.ID, entityName string, mode lock.Mode) {
	sl := lockSlot{ent: ent, mode: mode, heldAt: t.lockIndex}
	if mode == lock.Exclusive {
		sl.copy = s.store.MustGetID(ent)
		if t.mcs != nil {
			t.mcs.OnLockID(ent, true, sl.copy)
		}
	} else if t.mcs != nil {
		t.mcs.OnLockID(ent, false, 0)
	}
	t.slots = append(t.slots, sl)
	if t.sdg != nil {
		t.sdg.OnLock()
	}
	t.lockIndex++
	t.starveRounds = 0
	if t.status == StatusWaiting {
		t.status = StatusRunning
		t.waitEntity = ""
		t.waitEnt = intern.None
		s.wf.RemoveAllWaitsBy(t.id)
	}
	if s.recorder != nil {
		m := history.Read
		if mode == lock.Exclusive {
			m = history.Write
		}
		s.recorder.OnGrant(t.id, entityName, m)
	}
	s.advance(t)
	s.stats.Grants++
	// A shared grant can jump past queued exclusive waiters; those
	// waiters now wait on this holder too, so their arcs are rebuilt.
	s.refreshWaiters(ent)
	s.emit(Event{Kind: EventGrant, Txn: t.id, Entity: entityName, Detail: mode.String()})
}

// applyGrants processes lock promotions produced by releases. The
// grants slice is usually s.grantsBuf; no callee appends to it.
func (s *System) applyGrants(grants []lock.GrantID) {
	for _, g := range grants {
		t, ok := s.txns[g.Txn]
		if !ok {
			continue
		}
		s.finishGrant(t, g.Ent, s.names.Name(g.Ent), g.Mode)
	}
}

// readEntity returns the value t observes for a locked entity: its
// local copy for exclusive holds, the (stable) global value for shared
// holds.
func (s *System) readEntity(t *tstate, ent intern.ID, entityName string) (int64, error) {
	sl := t.findSlot(ent)
	if sl == nil {
		return 0, fmt.Errorf("core: %v read of unheld entity %q", t.id, entityName)
	}
	if sl.mode == lock.Exclusive {
		return sl.copy, nil
	}
	return s.store.MustGetID(ent), nil
}

// writeEntity updates t's local copy of an exclusively held entity.
func (s *System) writeEntity(t *tstate, ent intern.ID, entityName string, v int64) error {
	sl := t.findSlot(ent)
	if sl == nil || sl.mode != lock.Exclusive {
		return fmt.Errorf("core: %v write to entity %q without exclusive lock", t.id, entityName)
	}
	sl.copy = v
	if t.mcs != nil {
		if err := t.mcs.WriteEntityID(ent, v); err != nil {
			return err
		}
	}
	if t.sdg != nil {
		t.sdg.OnWrite(t.analysis.OpTarget[t.pc])
	}
	return nil
}

// assignLocal updates a local variable (Read destination or Compute).
func (s *System) assignLocal(t *tstate, localName string, v int64) error {
	slot := t.analysis.OpLocalSlot[t.pc]
	if slot < 0 {
		return fmt.Errorf("core: %v assignment to undeclared local %q", t.id, localName)
	}
	t.locals[slot] = v
	if t.mcs != nil {
		if err := t.mcs.WriteLocalSlot(slot, v); err != nil {
			return err
		}
	}
	if t.sdg != nil {
		t.sdg.OnWrite(t.analysis.OpTarget[t.pc])
	}
	return nil
}

// unlockEntity releases one entity during the shrinking phase,
// installing the local copy as the new global value for exclusive
// holds.
func (s *System) unlockEntity(t *tstate, ent intern.ID, entityName string) error {
	sl := t.findSlot(ent)
	if sl == nil {
		return fmt.Errorf("core: %v unlock of unheld entity %q", t.id, entityName)
	}
	if sl.fast {
		// Anonymous CAS-word hold (always shared): no install, no queue,
		// no promotions — decrement the word and drop the slot.
		if s.recorder != nil {
			s.recorder.OnRelease(t.id, entityName)
		}
		t.dropSlot(ent)
		if t.mcs != nil {
			t.mcs.OnUnlockID(ent)
		}
		s.locks.DropFastSharedID(ent)
		return nil
	}
	if sl.mode == lock.Exclusive {
		if err := s.store.InstallID(ent, sl.copy); err != nil {
			return err
		}
		if s.cfg.CommitLog != nil {
			s.cfg.CommitLog.LogInstall(CommitWrite{Ent: ent, Name: entityName, Val: sl.copy})
		}
	}
	if s.recorder != nil {
		s.recorder.OnRelease(t.id, entityName)
	}
	t.dropSlot(ent)
	if t.mcs != nil {
		t.mcs.OnUnlockID(ent)
	}
	return s.releaseAndRefresh(t, ent)
}

// commit terminates t: installs all exclusive local copies, releases
// every lock (in name order, for deterministic event streams), and
// removes t from the concurrency graph. With a commit log configured
// it hands the write-set to the logger and returns the durability
// ticket the caller's acknowledgement must wait on (outside the engine
// mutex); LogCommit runs before any later commit on this engine can,
// so log order respects per-entity install order.
func (s *System) commit(t *tstate) (CommitAck, error) {
	s.releaseBuf = s.releaseBuf[:0]
	for i := range t.slots {
		s.releaseBuf = append(s.releaseBuf, nameEnt{name: s.names.Name(t.slots[i].ent), ent: t.slots[i].ent})
	}
	sortNameEnts(s.releaseBuf)
	logged := s.cfg.CommitLog != nil
	if logged {
		s.writesBuf = s.writesBuf[:0]
	}
	for _, ne := range s.releaseBuf {
		sl := t.findSlot(ne.ent)
		if sl.mode == lock.Exclusive {
			if err := s.store.InstallID(ne.ent, sl.copy); err != nil {
				return nil, err
			}
			if logged {
				s.writesBuf = append(s.writesBuf, CommitWrite{Ent: ne.ent, Name: ne.name, Val: sl.copy})
			}
		}
		if s.recorder != nil {
			s.recorder.OnRelease(t.id, ne.name)
		}
		if sl.fast {
			s.locks.DropFastSharedID(ne.ent)
			continue
		}
		if err := s.releaseAndRefresh(t, ne.ent); err != nil {
			return nil, err
		}
	}
	var ack CommitAck
	if logged {
		ack = s.cfg.CommitLog.LogCommit(s.writesBuf)
	}
	t.slots = t.slots[:0]
	t.status = StatusCommitted
	t.pc = len(t.prog.Ops)
	s.unpinAll(t)
	s.wf.RemoveTxn(t.id)
	if s.recorder != nil {
		s.recorder.OnCommit(t.id)
	}
	s.stats.Commits++
	s.emit(Event{Kind: EventCommit, Txn: t.id})
	return ack, nil
}
