package core

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// TestStripedStepsZeroAlloc pins the tentpole property on the striped
// read-lock fast path: a striped engine stepping the steady-state
// compute/read/write stream of a lock-holding transaction must allocate
// nothing — the Tier A path (engine read lock, inline op execution,
// atomic stats) adds no allocations over the classic stepper.
func TestStripedStepsZeroAlloc(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 1})
	s := New(Config{Store: store, Stripes: 8})
	b := txn.NewProgram("hot").Local("x", 0).LockX("a").Read("a", "x")
	for i := 0; i < 600; i++ {
		b.Compute("x", value.Add(value.L("x"), value.C(1)))
		b.Write("a", value.L("x"))
	}
	prog := b.MustBuild()
	id := s.MustRegister(prog)
	for i := 0; i < 2; i++ {
		if res, err := s.Step(id); err != nil || res.Outcome != Progressed {
			t.Fatalf("setup step %d: %+v, %v", i, res, err)
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		res, err := s.Step(id)
		if err != nil || res.Outcome != Progressed {
			t.Fatalf("step: %+v, %v", res, err)
		}
	}); n != 0 {
		t.Fatalf("striped compute/write step allocates %v per run, want 0", n)
	}
}

// BenchmarkStripedUncontendedTxn is BenchmarkUncontendedTxn on a
// striped engine: register -> X-grant (idle-exclusive stripe path) ->
// read/compute/write (read-lock fast steps) -> commit -> forget.
// Register and commit still take the engine write lock, so the single-
// threaded delta against the classic engine is the price of the RWMutex
// and the fast-path dispatch.
func BenchmarkStripedUncontendedTxn(b *testing.B) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store, Stripes: 8})
	prog := benchProgram("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Register(prog)
		if err != nil {
			b.Fatal(err)
		}
		for {
			res, err := s.Step(id)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome == Committed {
				break
			}
		}
		if err := s.Forget(id); err != nil {
			b.Fatal(err)
		}
	}
}
