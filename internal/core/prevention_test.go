package core

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// twoLockProg locks a then b with padding so rollback costs are
// nonzero.
func twoLockProg(name, first, second string, pad int) *txn.Program {
	b := txn.NewProgram(name).Local("x", 0).LockX(first).Read(first, "x")
	for i := 0; i < pad; i++ {
		b.Compute("x", value.Add(value.L("x"), value.C(1)))
	}
	return b.LockX(second).MustBuild()
}

func TestWoundWaitOlderWoundsYounger(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS, Prevention: WoundWait})
	older := s.MustRegister(twoLockProg("older", "a", "b", 2))
	younger := s.MustRegister(twoLockProg("younger", "b", "a", 2))

	// younger takes b; older takes a; older then requests b -> it is
	// older than the holder, so the holder is wounded (rolled back to
	// release b) and older's queued request is promoted.
	step := func(id txn.ID, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := s.Step(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(younger, 1)          // lock b
	step(older, 4)            // lock a, read, pads
	res, err := s.Step(older) // request b -> wound younger
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Progressed {
		t.Fatalf("older should be granted after wounding, got %v", res.Outcome)
	}
	if s.Stats().Wounds != 1 {
		t.Errorf("wounds = %d", s.Stats().Wounds)
	}
	if st, _ := s.Status(younger); st != StatusRunning {
		t.Errorf("wounded younger should be running from its reset pc, got %v", st)
	}
	if got := s.Held(younger); len(got) != 0 {
		t.Errorf("younger still holds %v", got)
	}
	runAll(t, s)
}

func TestWoundWaitYoungerWaits(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS, Prevention: WoundWait})
	older := s.MustRegister(twoLockProg("older", "b", "a", 2))
	younger := s.MustRegister(twoLockProg("younger", "a", "b", 2))
	if _, err := s.Step(older); err != nil { // older locks b
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // younger locks a, pads
		if _, err := s.Step(younger); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Step(younger) // younger requests b held by older
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatalf("younger must wait for the older holder, got %v", res.Outcome)
	}
	if s.Stats().Wounds != 0 {
		t.Error("no wound expected")
	}
	runAll(t, s)
}

func TestWaitDieYoungerDies(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS, Prevention: WaitDie})
	older := s.MustRegister(twoLockProg("older", "b", "a", 2))
	younger := s.MustRegister(twoLockProg("younger", "a", "b", 2))
	if _, err := s.Step(older); err != nil { // older locks b
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Step(younger); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Step(younger) // younger requests b -> dies
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SelfRolledBack {
		t.Fatalf("younger should die, got %v", res.Outcome)
	}
	if s.Stats().Dies != 1 {
		t.Errorf("dies = %d", s.Stats().Dies)
	}
	if got := s.LockIndex(younger); got != 0 {
		t.Errorf("wait-die must restart from scratch, lock index %d", got)
	}
	runAll(t, s)
}

func TestWaitDieOlderWaits(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS, Prevention: WaitDie})
	older := s.MustRegister(twoLockProg("older", "a", "b", 2))
	younger := s.MustRegister(twoLockProg("younger", "b", "a", 2))
	if _, err := s.Step(younger); err != nil { // younger locks b
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Step(older); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Step(older) // older requests b held by younger -> waits
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatalf("older should wait, got %v", res.Outcome)
	}
	runAll(t, s)
}

func TestWoundWaitSkipsUnwoundableHolders(t *testing.T) {
	// A holder in its shrinking phase cannot be wounded; the older
	// requester waits instead (safe: the holder never requests again).
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s2 := New(Config{Store: store, Strategy: MCS, Prevention: WoundWait})
	old2 := s2.MustRegister(twoLockProg("older", "a", "b", 0))
	young2 := s2.MustRegister(txn.NewProgram("younger").Local("x", 0).
		LockX("b").LockX("a").Unlock("a").Unlock("b").MustBuild())
	if _, err := s2.Step(young2); err != nil { // lock b
		t.Fatal(err)
	}
	if _, err := s2.Step(young2); err != nil { // lock a
		t.Fatal(err)
	}
	if _, err := s2.Step(young2); err != nil { // unlock a -> shrinking
		t.Fatal(err)
	}
	if _, err := s2.Step(old2); err != nil { // older locks... a is free now
		t.Fatal(err)
	}
	if _, err := s2.Step(old2); err != nil { // read a
		t.Fatal(err)
	}
	res, err := s2.Step(old2) // requests b held by shrinking younger
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatalf("must wait for unwoundable holder, got %v", res.Outcome)
	}
	if s2.Stats().Wounds != 0 {
		t.Error("shrinking-phase holder must not be wounded")
	}
	runAll(t, s2)
}

func TestHybridCheckpointsTakenAtPlannedStates(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0, "c": 0})
	s := New(Config{Store: store, Strategy: Hybrid, HybridBudget: 4})
	// Scattered writes destroy interior states, so the allocator plans
	// checkpoints.
	p := txn.NewProgram("H").Local("x", 0).
		LockX("a").Read("a", "x").
		Write("a", value.Add(value.L("x"), value.C(1))).
		LockX("b").
		Write("a", value.Add(value.L("x"), value.C(1))). // destroys state 1
		LockX("c").
		Write("b", value.Add(value.L("x"), value.C(1))).
		MustBuild()
	id := s.MustRegister(p)
	for i := 0; i < len(p.Ops)-1; i++ {
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
	cps, peak, err := s.HybridStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if cps == 0 || peak == 0 {
		t.Errorf("checkpoints=%d peak=%d; planned states not checkpointed", cps, peak)
	}
	// State 1 is destroyed but checkpointed: ForceRollback must accept.
	if err := s.ForceRollback(id, 1); err != nil {
		t.Errorf("checkpointed state rejected: %v", err)
	}
}
