package core

import (
	"fmt"

	"partialrollback/internal/txn"
)

// Prevention selects a timestamp-based conflict response applied
// *instead of* plain waiting, as used by distributed systems that
// cannot maintain a global concurrency graph (§3.3). The paper observes
// these mechanisms "in no way invalidate the advantages of rolling a
// transaction back to the latest possible state in which the conflict
// necessitating the rollback no longer exists": under WoundWait the
// wounded holder is rolled back partially per the configured strategy
// rather than restarted.
type Prevention int

// Prevention modes.
const (
	// NoPrevention uses detection + victim selection (the centralized
	// scheme of §3.1/3.2).
	NoPrevention Prevention = iota
	// WoundWait: an older requester wounds younger conflicting holders
	// (they are rolled back far enough to release the entity); a
	// younger requester waits. Deadlock-free by construction.
	WoundWait
	// WaitDie: an older requester waits; a younger requester dies (is
	// rolled back to its initial state, the classical restart). Kept
	// total regardless of strategy, as the classical baseline.
	WaitDie
)

func (p Prevention) String() string {
	switch p {
	case WoundWait:
		return "wound-wait"
	case WaitDie:
		return "wait-die"
	default:
		return "detect"
	}
}

// preventConflict applies the configured prevention mode after t's
// request for entityName blocked on the given holders. It returns the
// step outcome to report.
func (s *System) preventConflict(t *tstate, entityName string, blockers []txn.ID) (StepResult, error) {
	switch s.cfg.Prevention {
	case WoundWait:
		return s.woundWait(t, entityName, blockers)
	case WaitDie:
		return s.waitDie(t, entityName, blockers)
	default:
		return StepResult{}, fmt.Errorf("core: preventConflict called without prevention mode")
	}
}

// woundWait wounds every conflicting holder younger than t, rolling it
// back just far enough to release entityName (strategy-adjusted).
// Holders that can no longer be rolled back (shrinking phase or
// declared last lock) are waited for instead — they can never join a
// cycle, so the wait is safe.
func (s *System) woundWait(t *tstate, entityName string, blockers []txn.ID) (StepResult, error) {
	wounded := false
	for _, b := range blockers {
		h, ok := s.txns[b]
		if !ok || h.entry < t.entry {
			continue // older holder: wait for it
		}
		plan, ok := s.planRollback(h, map[string]bool{entityName: true})
		if !ok {
			continue // unwoundable (shrinking/declared); safe to wait
		}
		if err := s.rollbackTo(h, plan.Target); err != nil {
			return StepResult{}, err
		}
		s.stats.Wounds++
		wounded = true
	}
	if t.status == StatusRunning {
		// The wounds released the entity and our queued request was
		// promoted.
		return StepResult{Outcome: Progressed}, nil
	}
	if wounded {
		return StepResult{Outcome: Blocked}, nil
	}
	return StepResult{Outcome: Blocked}, nil
}

// waitDie lets t wait only if it is older than every conflicting
// holder; otherwise t dies: it is rolled back to its initial state (and
// will re-run from scratch when next scheduled).
func (s *System) waitDie(t *tstate, entityName string, blockers []txn.ID) (StepResult, error) {
	_ = entityName
	die := false
	for _, b := range blockers {
		if h, ok := s.txns[b]; ok && h.entry < t.entry {
			die = true
			break
		}
	}
	if !die {
		return StepResult{Outcome: Blocked}, nil
	}
	if len(t.lockStates) == 0 {
		return StepResult{}, fmt.Errorf("core: wait-die victim %v has no lock states", t.id)
	}
	if err := s.rollbackTo(t, 0); err != nil {
		return StepResult{}, err
	}
	s.stats.Dies++
	return StepResult{Outcome: SelfRolledBack}, nil
}
