package core

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// TestSharedGrantRefreshesWaiterArcs is the regression test for the
// arc-staleness bug: when a shared grant jumps past a queued exclusive
// waiter, the waiter's concurrency-graph arcs must be extended to the
// new holder, or later cycle detection misses deadlocks.
func TestSharedGrantRefreshesWaiterArcs(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0})
	s := New(Config{Store: store, Strategy: MCS})
	s1 := s.MustRegister(txn.NewProgram("S1").Local("x", 0).
		LockS("a").Read("a", "x").Compute("x", value.C(1)).Compute("x", value.C(2)).MustBuild())
	xw := s.MustRegister(txn.NewProgram("XW").Local("x", 0).
		LockX("a").MustBuild())
	s2 := s.MustRegister(txn.NewProgram("S2").Local("x", 0).
		LockS("a").Read("a", "x").MustBuild())

	mustOutcome := func(id txn.ID, want Outcome) {
		t.Helper()
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != want {
			t.Fatalf("%v: outcome %v, want %v", id, res.Outcome, want)
		}
	}
	mustOutcome(s1, Progressed) // S1 holds a (shared)
	mustOutcome(xw, Blocked)    // XW queues behind the shared hold
	mustOutcome(s2, Progressed) // S2's shared grant jumps the queue
	// XW must now wait on BOTH shared holders.
	arcs := s.Arcs()
	holders := map[txn.ID]bool{}
	for _, a := range arcs {
		if a.Waiter == xw {
			holders[a.Holder] = true
		}
	}
	if !holders[s1] || !holders[s2] {
		t.Fatalf("XW's arcs = %v; must include both shared holders", arcs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain everyone; XW gets a once both readers finish.
	runAll(t, s)
}

// TestMultiCycleSharedDeadlockResolved reproduces the Figure 3(c) shape
// inside a full closed run: an exclusive request on a doubly-shared
// entity closes two cycles; the engine must clear both and finish.
func TestMultiCycleSharedDeadlockResolved(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "b": 0, "f": 0})
	s := New(Config{Store: store, Strategy: SDG, RecordHistory: true})
	t1 := s.MustRegister(txn.NewProgram("T1").Local("x", 0).
		LockX("a").LockX("b").LockX("f").Read("f", "x").MustBuild())
	t2 := s.MustRegister(txn.NewProgram("T2").Local("x", 0).
		LockS("f").Read("f", "x").LockS("a").MustBuild())
	t3 := s.MustRegister(txn.NewProgram("T3").Local("x", 0).
		LockS("f").Read("f", "x").LockS("b").MustBuild())
	_ = t1
	_ = t2
	_ = t3
	runAll(t, s)
	if s.Stats().Deadlocks == 0 {
		t.Error("expected a multi-cycle deadlock")
	}
	if _, err := s.Recorder().CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestSharedReadersSeeStableValue: a shared holder's reads are
// unaffected by a writer queued behind it.
func TestSharedReadersSeeStableValue(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 7})
	s := New(Config{Store: store, Strategy: Total})
	reader := s.MustRegister(txn.NewProgram("R").Local("x", 0).Local("y", 0).
		LockS("a").Read("a", "x").Compute("y", value.C(0)).Read("a", "y").MustBuild())
	writer := s.MustRegister(txn.NewProgram("W").Local("v", 0).
		LockX("a").Write("a", value.C(99)).MustBuild())
	if _, err := s.Step(reader); err != nil { // S lock
		t.Fatal(err)
	}
	if res, _ := s.Step(writer); res.Outcome != Blocked {
		t.Fatal("writer should queue")
	}
	stepToCommit(t, s, reader)
	locals, _ := s.Locals(reader)
	if locals["x"] != 7 || locals["y"] != 7 {
		t.Errorf("reader saw %v; the global value must be stable while shared-held", locals)
	}
	stepToCommit(t, s, writer)
	if store.MustGet("a") != 99 {
		t.Error("writer's value not installed")
	}
}

// TestVictimWithSharedLockReleased: rolling back a victim that holds
// the contested entity under a *shared* lock must release that shared
// hold (Figure 3(c)'s both-shared-holders case, unit level).
func TestVictimWithSharedLockReleased(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 0, "f": 0})
	s := New(Config{Store: store, Strategy: MCS})
	t1 := s.MustRegister(txn.NewProgram("T1").Local("x", 0).
		LockX("a").LockX("f").MustBuild())
	t2 := s.MustRegister(txn.NewProgram("T2").Local("x", 0).
		LockS("f").LockS("a").MustBuild())
	mustStep := func(id txn.ID) StepResult {
		t.Helper()
		res, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mustStep(t1)                                     // X a
	mustStep(t2)                                     // S f
	if res := mustStep(t2); res.Outcome != Blocked { // S a vs X holder
		t.Fatalf("T2 should wait, got %v", res.Outcome)
	}
	res := mustStep(t1) // X f vs S holder -> cycle
	if res.Outcome != BlockedDeadlock {
		t.Fatalf("expected deadlock, got %v", res.Outcome)
	}
	// The ordered policy victimizes T2 (younger); its shared f must be
	// gone and T1 must hold f now.
	if got := s.Held(t2); len(got) != 0 {
		t.Errorf("victim still holds %v", got)
	}
	if !s.HoldsExclusive(t1, "f") {
		t.Error("requester should have been granted f")
	}
	runAll(t, s)
}
