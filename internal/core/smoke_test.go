package core

import (
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// runAll steps transactions round-robin until all commit, failing on
// errors or lack of progress.
func runAll(t *testing.T, s *System) {
	t.Helper()
	for iter := 0; iter < 100000; iter++ {
		if s.AllCommitted() {
			return
		}
		progressed := false
		for _, id := range s.IDs() {
			res, err := s.Step(id)
			if err != nil {
				t.Fatalf("step %v: %v", id, err)
			}
			if res.Outcome != StillWaiting && res.Outcome != AlreadyCommitted {
				progressed = true
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("invariants after step %v: %v", id, err)
			}
		}
		if !progressed {
			t.Fatalf("no progress; stuck")
		}
	}
	t.Fatalf("did not terminate")
}

func transferProg(name, from, to string, amount int64) *txn.Program {
	return txn.NewProgram(name).
		Local("x", 0).Local("y", 0).
		LockX(from).
		Read(from, "x").
		LockX(to).
		Read(to, "y").
		Write(from, value.Sub(value.L("x"), value.C(amount))).
		Write(to, value.Add(value.L("y"), value.C(amount))).
		MustBuild()
}

func TestSmokeDeadlockEveryStrategy(t *testing.T) {
	for _, strat := range []Strategy{Total, MCS, SDG, Hybrid} {
		t.Run(strat.String(), func(t *testing.T) {
			store := entity.NewStore(map[string]int64{"a": 100, "b": 200})
			store.AddConstraint(entity.SumConstraint("total", 300, "a", "b"))
			s := New(Config{Store: store, Strategy: strat, RecordHistory: true})
			t1 := s.MustRegister(transferProg("T1", "a", "b", 10))
			t2 := s.MustRegister(transferProg("T2", "b", "a", 5))
			_ = t1
			_ = t2
			runAll(t, s)
			if err := store.CheckConsistent(); err != nil {
				t.Fatal(err)
			}
			if got := store.MustGet("a"); got != 95 {
				t.Errorf("a = %d, want 95", got)
			}
			if got := store.MustGet("b"); got != 205 {
				t.Errorf("b = %d, want 205", got)
			}
			if s.Stats().Deadlocks == 0 {
				t.Errorf("expected at least one deadlock under round-robin interleaving")
			}
			if _, err := s.Recorder().CheckSerializable(); err != nil {
				t.Errorf("serializability: %v", err)
			}
		})
	}
}
