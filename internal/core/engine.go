package core

import (
	"partialrollback/internal/history"
	"partialrollback/internal/txn"
)

// Engine is the concurrency-control surface the drivers actually use:
// internal/exec.StepToCommit, internal/runtime, internal/server and
// internal/sim all program against it. *System implements it directly
// (the single big-lock engine of §2); internal/shard implements it over
// N partitioned Systems (the §3.3 per-site architecture). Extracting the
// interface is what lets the same binaries run single-shard or sharded.
type Engine interface {
	// Register adds an execution instance of prog and returns its ID.
	Register(prog *txn.Program) (txn.ID, error)
	// Step executes the next atomic operation of id (see System.Step).
	Step(id txn.ID) (StepResult, error)
	// StepBurst executes up to max consecutive atomic operations of id
	// under one engine-lock acquisition, stopping early on anything
	// other than plain progress (see System.StepBurst). It returns the
	// last step's result and the number of operations attempted.
	// StepBurst(id, 1) is equivalent to Step(id).
	StepBurst(id txn.ID, max int) (StepResult, int, error)
	// Status returns id's execution status.
	Status(id txn.ID) (Status, error)
	// Abort rolls id back to its initial state and removes it; fails
	// with ErrCommitted / ErrShrinking as documented on System.Abort.
	Abort(id txn.ID) error
	// Forget removes a committed transaction's bookkeeping.
	Forget(id txn.ID) error
	// Locals returns a copy of id's current local-variable values.
	Locals(id txn.ID) (map[string]int64, error)
	// TxnStatsOf returns a snapshot of id's counters.
	TxnStatsOf(id txn.ID) TxnStats
	// Waiters returns how many transactions are currently blocked
	// waiting on locks held by id; 0 for unknown, queued, or finished
	// transactions. Drivers use it as a cheap contention probe when
	// sizing step bursts adaptively.
	Waiters(id txn.ID) int
	// Runnable returns the IDs of transactions in StatusRunning, sorted.
	Runnable() []txn.ID
	// IDs returns all registered transaction IDs, sorted.
	IDs() []txn.ID
	// AllCommitted reports whether every registered transaction has
	// committed.
	AllCommitted() bool
	// Stats returns a snapshot of the engine-wide counters.
	Stats() Stats
	// Recorder returns the serializability recorder, or nil if history
	// recording is disabled. Sharded engines return a merged view.
	Recorder() *history.Recorder
	// CheckInvariants cross-checks internal consistency.
	CheckInvariants() error
}

// Engine is implemented by *System; this assertion keeps the interface
// honest as either side evolves.
var _ Engine = (*System)(nil)
