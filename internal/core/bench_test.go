package core

import (
	"strconv"
	"testing"

	"partialrollback/internal/entity"
	"partialrollback/internal/txn"
	"partialrollback/internal/value"
)

// TestComputeReadWriteStepsZeroAlloc pins the tentpole property on the
// engine's op-execution path: once a transaction holds its locks,
// stepping read/compute/write operations allocates nothing — locals
// live in a slot-indexed slice, expressions are pre-compiled, and the
// eval stack is reused.
func TestComputeReadWriteStepsZeroAlloc(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 1})
	s := New(Config{Store: store})
	b := txn.NewProgram("hot").Local("x", 0).LockX("a").Read("a", "x")
	for i := 0; i < 600; i++ {
		b.Compute("x", value.Add(value.L("x"), value.C(1)))
		b.Write("a", value.L("x"))
	}
	prog := b.MustBuild()
	id := s.MustRegister(prog)
	// Execute the lock grant and first read so the steady state begins.
	for i := 0; i < 2; i++ {
		if res, err := s.Step(id); err != nil || res.Outcome != Progressed {
			t.Fatalf("setup step %d: %+v, %v", i, res, err)
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		res, err := s.Step(id)
		if err != nil || res.Outcome != Progressed {
			t.Fatalf("step: %+v, %v", res, err)
		}
	}); n != 0 {
		t.Fatalf("compute/write step allocates %v per run, want 0", n)
	}
}

// benchProgram is the hotspot-style transaction the throughput
// benchmarks run: lock, read, compute, write, commit.
func benchProgram(ent string) *txn.Program {
	return txn.NewProgram("bench-" + ent).
		Local("x", 0).
		LockX(ent).
		Read(ent, "x").
		Compute("x", value.Add(value.L("x"), value.C(1))).
		Write(ent, value.L("x")).
		MustBuild()
}

// BenchmarkUncontendedTxn measures one full register -> lock -> read ->
// compute -> write -> commit -> forget cycle with no contention — the
// engine-level grant/release hot path.
func BenchmarkUncontendedTxn(b *testing.B) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store})
	prog := benchProgram("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Register(prog)
		if err != nil {
			b.Fatal(err)
		}
		for {
			res, err := s.Step(id)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome == Committed {
				break
			}
		}
		if err := s.Forget(id); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepBurstZeroAlloc pins the same property on the burst path: a
// StepBurst call over the steady-state compute/write stream must not
// allocate beyond what the per-step path does — the burst loop itself
// is just a counter around stepLocked.
func TestStepBurstZeroAlloc(t *testing.T) {
	store := entity.NewStore(map[string]int64{"a": 1})
	s := New(Config{Store: store})
	b := txn.NewProgram("hot").Local("x", 0).LockX("a").Read("a", "x")
	for i := 0; i < 20000; i++ {
		b.Compute("x", value.Add(value.L("x"), value.C(1)))
		b.Write("a", value.L("x"))
	}
	prog := b.MustBuild()
	id := s.MustRegister(prog)
	for i := 0; i < 2; i++ {
		if res, err := s.Step(id); err != nil || res.Outcome != Progressed {
			t.Fatalf("setup step %d: %+v, %v", i, res, err)
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		res, steps, err := s.StepBurst(id, 64)
		if err != nil || res.Outcome != Progressed || steps != 64 {
			t.Fatalf("burst: %+v, %d, %v", res, steps, err)
		}
	}); n != 0 {
		t.Fatalf("StepBurst allocates %v per run, want 0", n)
	}
}

// BenchmarkStepBurst measures the burst-scheduling win in isolation:
// one transaction stepping a long compute/write stream under a single
// mutex acquisition per burst. Sub-benchmarks sweep the burst size so
// the per-acquisition amortisation is visible (burst=1 is the old
// one-lock-per-step cost).
func BenchmarkStepBurst(b *testing.B) {
	for _, burst := range []int{1, 4, 16, 64} {
		b.Run("burst="+strconv.Itoa(burst), func(b *testing.B) {
			store := entity.NewStore(map[string]int64{"a": 1})
			s := New(Config{Store: store})
			pb := txn.NewProgram("hot").Local("x", 0).LockX("a").Read("a", "x")
			for i := 0; i < 4096; i++ {
				pb.Compute("x", value.Add(value.L("x"), value.C(1)))
				pb.Write("a", value.L("x"))
			}
			prog := pb.MustBuild()
			id := s.MustRegister(prog)
			b.ReportAllocs()
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				res, n, err := s.StepBurst(id, burst)
				if err != nil {
					b.Fatal(err)
				}
				steps += n
				if res.Outcome == Committed {
					// Recycle: amortised over ~8k steps per program.
					if err := s.Forget(id); err != nil {
						b.Fatal(err)
					}
					id = s.MustRegister(prog)
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkContendedWait measures the no-deadlock wait check: a second
// transaction requests an entity an exclusive holder pins, blocks, is
// polled once, and is then aborted. Covers AcquireID's blocker path,
// wait-for arc maintenance, and the incremental cycle check.
func BenchmarkContendedWait(b *testing.B) {
	store := entity.NewStore(map[string]int64{"a": 0})
	s := New(Config{Store: store})
	holderProg := txn.NewProgram("holder").
		Local("x", 0).
		LockX("a").
		Read("a", "x").
		Write("a", value.L("x")).
		MustBuild()
	holder := s.MustRegister(holderProg)
	if res, err := s.Step(holder); err != nil || res.Outcome != Progressed {
		b.Fatalf("holder lock: %+v, %v", res, err)
	}
	waiterProg := benchProgram("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Register(waiterProg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Step(id)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != Blocked {
			b.Fatalf("outcome %v, want Blocked", res.Outcome)
		}
		if res, err = s.Step(id); err != nil || res.Outcome != StillWaiting {
			b.Fatalf("poll: %+v, %v", res, err)
		}
		if err := s.Abort(id); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCommitStepZeroAlloc pins the memory-only commit path: with no
// CommitLogger configured, the commit step (install writes, release
// locks, retire the transaction) must not allocate — the durability
// hook must cost nothing when disabled. Each run commits a distinct
// pre-stepped transaction on its own entity.
func TestCommitStepZeroAlloc(t *testing.T) {
	const runs = 300
	initial := make(map[string]int64, runs+1)
	for i := 0; i <= runs; i++ {
		initial["e"+strconv.Itoa(i)] = 0
	}
	store := entity.NewStore(initial)
	s := New(Config{Store: store})
	ids := make([]txn.ID, 0, runs+1)
	for i := 0; i <= runs; i++ {
		ent := "e" + strconv.Itoa(i)
		prog := txn.NewProgram("commit-" + ent).
			Local("x", 0).
			LockX(ent).
			Read(ent, "x").
			Write(ent, value.Add(value.L("x"), value.C(1))).
			MustBuild()
		id := s.MustRegister(prog)
		// Step to the brink of commit: lock, read, write.
		for j := 0; j < 3; j++ {
			if res, err := s.Step(id); err != nil || res.Outcome != Progressed {
				t.Fatalf("setup step %d/%d: %+v, %v", i, j, res, err)
			}
		}
		ids = append(ids, id)
	}
	next := 0
	if n := testing.AllocsPerRun(runs, func() {
		res, err := s.Step(ids[next])
		next++
		if err != nil || res.Outcome != Committed {
			t.Fatalf("commit step: %+v, %v", res, err)
		}
	}); n != 0 {
		t.Fatalf("memory-only commit step allocates %v per run, want 0", n)
	}
}
