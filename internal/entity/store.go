// Package entity implements the global database: a set of named
// entities, each holding an integer value, plus consistency constraints
// used by tests to check that concurrency control preserves integrity.
//
// In the paper's model (§2, §4) the global value of an entity never
// changes while a transaction holds it locked: writers update a local
// copy, and the final value is installed when the entity is unlocked
// (or the transaction commits). The store therefore only sees
// installed, committed-or-unlocked values; rollback never needs to
// touch it.
//
// The store is also the interning point: defining an entity assigns it
// a dense intern.ID, and everything below the facade/wire/obs boundary
// (lock table, wait-for graph, per-transaction state) indexes by that
// ID instead of hashing the name. Values live in a slice indexed by ID,
// so the hot-path reads and installs are a bounds check and an array
// access under the lock.
package entity

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"partialrollback/internal/intern"
	"partialrollback/internal/page"
)

// Store is the global entity map. It is safe for concurrent use.
//
// Values live in one of two backends. The default (and historical)
// backend is two dense slices indexed by intern.ID — every access is a
// bounds check and an array read under the lock. The paged backend
// (NewPagedStore) replaces the slices with a page.Pool: a heap file
// plus a bounded buffer pool, so the entity space can outgrow RAM. The
// interning contract is identical either way — IDs are dense,
// append-only, and shared with the lock table and wait-for graph — so
// everything above this type is oblivious to the backend. Heap-file IO
// errors on the read path panic (like reads of undefined entities):
// the heap is this process's spill area and losing it mid-run is not a
// recoverable condition — durability lives in the WAL, not here.
type Store struct {
	mu          sync.RWMutex
	names       *intern.Table
	vals        []int64 // indexed by intern.ID (memory backend)
	defined     []bool  // indexed by intern.ID (memory backend)
	nDefined    int
	width       int // paged backend: 1 + highest ID ever defined
	pool        *page.Pool
	constraints []Constraint
	installHook func(name string, v int64)
}

// PagedConfig configures the paged (beyond-RAM) backend.
type PagedConfig struct {
	// Path is the heap file location. It is truncated on open: the heap
	// is a spill area, rebuilt from checkpoint + WAL by the durability
	// layer, never a source of truth.
	Path string
	// PageSize in bytes (default 4096) and PoolPages frames (default
	// 64) bound the pool's memory at roughly PageSize*PoolPages plus
	// the concurrently pinned working set.
	PageSize  int
	PoolPages int
	// OnMiss, when non-nil, observes each read-miss latency in
	// nanoseconds (wired to the obs histogram by prserver).
	OnMiss func(ns int64)
}

// Constraint is a named predicate over a snapshot of the database,
// defining (part of) the set of consistent states.
type Constraint struct {
	Name  string
	Check func(snapshot map[string]int64) error
}

// NewStore creates a store with the given initial values.
func NewStore(initial map[string]int64) *Store {
	s := &Store{names: intern.NewTable()}
	// Deterministic ID assignment: define in sorted-name order.
	keys := make([]string, 0, len(initial))
	for k := range initial {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Define(k, initial[k])
	}
	return s
}

// NewUniformStore creates a store with n entities named by prefix and
// index ("e0".."e{n-1}" for prefix "e"), all holding init.
func NewUniformStore(prefix string, n int, init int64) *Store {
	s := &Store{
		names:   intern.NewTable(),
		vals:    make([]int64, 0, n),
		defined: make([]bool, 0, n),
	}
	defineUniform(s, prefix, n, init)
	return s
}

// defineUniform defines prefix0..prefix{n-1}, formatting names into one
// reused buffer — multi-million-entity stores are too big for a
// fmt.Sprintf per name.
func defineUniform(s *Store, prefix string, n int, init int64) {
	buf := make([]byte, 0, len(prefix)+20)
	for i := 0; i < n; i++ {
		buf = append(buf[:0], prefix...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		s.Define(string(buf), init)
	}
}

// NewPagedStore creates a store over the paged backend with the given
// initial values. The caller owns the heap file path and should Close
// the store on shutdown (Close flushes and releases the heap file).
func NewPagedStore(initial map[string]int64, cfg PagedConfig) (*Store, error) {
	pool, err := page.Open(cfg.Path, page.Options{
		PageSize:  cfg.PageSize,
		PoolPages: cfg.PoolPages,
		OnMiss:    cfg.OnMiss,
	})
	if err != nil {
		return nil, err
	}
	s := &Store{names: intern.NewTable(), pool: pool}
	keys := make([]string, 0, len(initial))
	for k := range initial {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Define(k, initial[k])
	}
	return s, nil
}

// NewUniformPagedStore is NewUniformStore over the paged backend.
func NewUniformPagedStore(prefix string, n int, init int64, cfg PagedConfig) (*Store, error) {
	pool, err := page.Open(cfg.Path, page.Options{
		PageSize:  cfg.PageSize,
		PoolPages: cfg.PoolPages,
		OnMiss:    cfg.OnMiss,
	})
	if err != nil {
		return nil, err
	}
	s := &Store{names: intern.NewTable(), pool: pool}
	defineUniform(s, prefix, n, init)
	return s, nil
}

// Paged reports whether this store runs over the paged backend.
func (s *Store) Paged() bool { return s.pool != nil }

// PoolStats returns the paged backend's counters (zero if memory-backed).
func (s *Store) PoolStats() page.Stats {
	if s.pool == nil {
		return page.Stats{}
	}
	return s.pool.Stats()
}

// PinID faults the entity's page resident and holds it there until
// UnpinID; a no-op on the memory backend. The engine pins a
// transaction's whole lock set at registration (the structural path,
// where IO is allowed) so the step fast paths never fault.
func (s *Store) PinID(id intern.ID) error {
	if s.pool == nil {
		return nil
	}
	return s.pool.Pin(uint32(id))
}

// UnpinID releases one PinID; a no-op on the memory backend.
func (s *Store) UnpinID(id intern.ID) {
	if s.pool != nil {
		s.pool.Unpin(uint32(id))
	}
}

// Flush writes all dirty pages to the heap file (no-op if memory-backed).
func (s *Store) Flush() error {
	if s.pool == nil {
		return nil
	}
	return s.pool.FlushAll()
}

// Close flushes and closes the paged backend (no-op if memory-backed).
func (s *Store) Close() error {
	if s.pool == nil {
		return nil
	}
	return s.pool.Close()
}

// Interner exposes the store's name↔ID table. The lock table, wait-for
// graph and transaction state share it so every layer agrees on IDs.
func (s *Store) Interner() *intern.Table { return s.names }

// IDOf returns the intern ID for a defined entity name.
func (s *Store) IDOf(name string) (intern.ID, bool) {
	id, ok := s.names.Lookup(name)
	if !ok {
		return intern.None, false
	}
	if _, ok := s.GetID(id); !ok {
		return intern.None, false
	}
	return id, true
}

// NameOf resolves an intern ID back to the entity name (boundary use:
// events, snapshots, wire responses).
func (s *Store) NameOf(id intern.ID) string { return s.names.Name(id) }

// Get returns the global value of name. Unknown entities read as zero
// with ok=false.
func (s *Store) Get(name string) (int64, bool) {
	id, ok := s.names.Lookup(name)
	if !ok {
		return 0, false
	}
	return s.GetID(id)
}

// GetID is Get by intern ID — the hot-path read.
func (s *Store) GetID(id intern.ID) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pool != nil {
		if int(id) >= s.width {
			return 0, false
		}
		v, ok, err := s.pool.Read(uint32(id))
		if err != nil {
			panic(fmt.Sprintf("entity: paged read of %q: %v", s.names.Name(id), err))
		}
		return v, ok
	}
	if int(id) >= len(s.defined) || !s.defined[id] {
		return 0, false
	}
	return s.vals[id], true
}

// MustGet returns the global value of name, panicking if absent. The
// concurrency control only reads entities that exist (lock requests
// create them implicitly via Define or fail validation upstream).
func (s *Store) MustGet(name string) int64 {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("entity: undefined entity %q", name))
	}
	return v
}

// MustGetID is MustGet by intern ID.
func (s *Store) MustGetID(id intern.ID) int64 {
	v, ok := s.GetID(id)
	if !ok {
		panic(fmt.Sprintf("entity: undefined entity %q", s.names.Name(id)))
	}
	return v
}

// Define creates or overwrites an entity outside any transaction
// (setup only), interning its name, and returns the entity's ID.
func (s *Store) Define(name string, v int64) intern.ID {
	id := s.names.Intern(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool != nil {
		fresh, err := s.pool.Define(uint32(id), v)
		if err != nil {
			panic(fmt.Sprintf("entity: paged define of %q: %v", name, err))
		}
		if fresh {
			s.nDefined++
		}
		if int(id) >= s.width {
			s.width = int(id) + 1
		}
		return id
	}
	for int(id) >= len(s.vals) {
		s.vals = append(s.vals, 0)
		s.defined = append(s.defined, false)
	}
	if !s.defined[id] {
		s.defined[id] = true
		s.nDefined++
	}
	s.vals[id] = v
	return id
}

// Exists reports whether name is defined.
func (s *Store) Exists(name string) bool {
	_, ok := s.Get(name)
	return ok
}

// Install sets the global value of name; called by the concurrency
// control when an exclusively locked entity is unlocked or its
// transaction commits. The install hook, if set, observes the write
// before it becomes visible (write-ahead logging).
func (s *Store) Install(name string, v int64) error {
	id, ok := s.names.Lookup(name)
	if !ok {
		return fmt.Errorf("entity: install to undefined entity %q", name)
	}
	return s.InstallID(id, v)
}

// InstallID is Install by intern ID — the hot-path write.
func (s *Store) InstallID(id intern.ID, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool != nil {
		// Defined check first (the hook must only observe installs that
		// will succeed), then hook, then write — same write-ahead
		// ordering as the memory path. The read faults the page in, so
		// the write is a guaranteed hit.
		if int(id) >= s.width {
			return fmt.Errorf("entity: install to undefined entity %q", s.names.Name(id))
		}
		_, def, err := s.pool.Read(uint32(id))
		if err != nil {
			panic(fmt.Sprintf("entity: paged install of %q: %v", s.names.Name(id), err))
		}
		if !def {
			return fmt.Errorf("entity: install to undefined entity %q", s.names.Name(id))
		}
		if s.installHook != nil {
			s.installHook(s.names.Name(id), v)
		}
		if _, err := s.pool.Write(uint32(id), v); err != nil {
			panic(fmt.Sprintf("entity: paged install of %q: %v", s.names.Name(id), err))
		}
		return nil
	}
	if int(id) >= len(s.defined) || !s.defined[id] {
		return fmt.Errorf("entity: install to undefined entity %q", s.names.Name(id))
	}
	if s.installHook != nil {
		s.installHook(s.names.Name(id), v)
	}
	s.vals[id] = v
	return nil
}

// SetInstallHook registers a callback invoked under the store lock
// before every Install takes effect. Used by internal/wal to log
// installations durably ahead of visibility. Pass nil to clear.
func (s *Store) SetInstallHook(h func(name string, v int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installHook = h
}

// Snapshot returns a copy of all values.
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, s.nDefined)
	if s.pool != nil {
		vals, defined := s.snapshotPagedLocked(nil, nil)
		for id, def := range defined {
			if def {
				out[s.names.Name(intern.ID(id))] = vals[id]
			}
		}
		return out
	}
	for id, def := range s.defined {
		if def {
			out[s.names.Name(intern.ID(id))] = s.vals[id]
		}
	}
	return out
}

// snapshotPagedLocked scans the paged backend into vals/defined (grown
// as needed). Caller holds at least s.mu.RLock; a consistent snapshot
// additionally needs writers excluded (the checkpoint path runs under
// the engine quiesce).
func (s *Store) snapshotPagedLocked(vals []int64, defined []bool) ([]int64, []bool) {
	if cap(vals) < s.width {
		vals = make([]int64, s.width)
	} else {
		vals = vals[:s.width]
	}
	if cap(defined) < s.width {
		defined = make([]bool, s.width)
	} else {
		defined = defined[:s.width]
	}
	if err := s.pool.SnapshotRange(s.width, vals, defined); err != nil {
		panic(fmt.Sprintf("entity: paged snapshot: %v", err))
	}
	return vals, defined
}

// SnapshotSlices copies the dense value and defined slices into the
// caller's buffers (grown as needed) and returns them along with the
// defined-entity count — the checkpoint writer's fast alternative to
// Snapshot: one read-lock hold covering two memcpys, no per-entity
// allocation. Index i holds the value of intern.ID(i); names can be
// resolved after the call via NameOf, because the intern table is
// append-only and IDs stay valid once the lock is released.
func (s *Store) SnapshotSlices(vals []int64, defined []bool) ([]int64, []bool, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pool != nil {
		vals, defined = s.snapshotPagedLocked(vals, defined)
		return vals, defined, s.nDefined
	}
	vals = append(vals[:0], s.vals...)
	defined = append(defined[:0], s.defined...)
	return vals, defined, s.nDefined
}

// Restore replaces the entire contents with snap (setup/test helper).
// Names absent from snap become undefined; their intern IDs remain
// reserved (IDs are never reused).
func (s *Store) Restore(snap map[string]int64) {
	s.mu.Lock()
	if s.pool != nil {
		for id := 0; id < s.width; id++ {
			if _, err := s.pool.Undefine(uint32(id)); err != nil {
				panic(fmt.Sprintf("entity: paged restore: %v", err))
			}
		}
	}
	for i := range s.defined {
		s.defined[i] = false
	}
	s.nDefined = 0
	s.mu.Unlock()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Define(k, snap[k])
	}
}

// Names returns all entity names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, s.nDefined)
	if s.pool != nil {
		_, defined := s.snapshotPagedLocked(nil, nil)
		for id, def := range defined {
			if def {
				out = append(out, s.names.Name(intern.ID(id)))
			}
		}
		sort.Strings(out)
		return out
	}
	for id, def := range s.defined {
		if def {
			out = append(out, s.names.Name(intern.ID(id)))
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of entities.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nDefined
}

// AddConstraint registers a consistency constraint.
func (s *Store) AddConstraint(c Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.constraints = append(s.constraints, c)
}

// CheckConsistent evaluates all constraints against the current state
// and returns the first violation, if any.
func (s *Store) CheckConsistent() error {
	snap := s.Snapshot()
	s.mu.RLock()
	cs := append([]Constraint(nil), s.constraints...)
	s.mu.RUnlock()
	for _, c := range cs {
		if err := c.Check(snap); err != nil {
			return fmt.Errorf("entity: constraint %q violated: %w", c.Name, err)
		}
	}
	return nil
}

// SumConstraint returns a constraint asserting that the listed entities
// always sum to want — the canonical bank-transfer invariant.
func SumConstraint(name string, want int64, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			var sum int64
			for _, e := range entities {
				v, ok := snap[e]
				if !ok {
					return fmt.Errorf("entity %q missing", e)
				}
				sum += v
			}
			if sum != want {
				return fmt.Errorf("sum = %d, want %d", sum, want)
			}
			return nil
		},
	}
}

// NonNegativeConstraint returns a constraint asserting the listed
// entities never go negative.
func NonNegativeConstraint(name string, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			for _, e := range entities {
				if v := snap[e]; v < 0 {
					return fmt.Errorf("entity %q = %d (negative)", e, v)
				}
			}
			return nil
		},
	}
}
