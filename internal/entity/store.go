// Package entity implements the global database: a set of named
// entities, each holding an integer value, plus consistency constraints
// used by tests to check that concurrency control preserves integrity.
//
// In the paper's model (§2, §4) the global value of an entity never
// changes while a transaction holds it locked: writers update a local
// copy, and the final value is installed when the entity is unlocked
// (or the transaction commits). The store therefore only sees
// installed, committed-or-unlocked values; rollback never needs to
// touch it.
package entity

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the global entity map. It is safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	vals        map[string]int64
	constraints []Constraint
	installHook func(name string, v int64)
}

// Constraint is a named predicate over a snapshot of the database,
// defining (part of) the set of consistent states.
type Constraint struct {
	Name  string
	Check func(snapshot map[string]int64) error
}

// NewStore creates a store with the given initial values.
func NewStore(initial map[string]int64) *Store {
	vals := make(map[string]int64, len(initial))
	for k, v := range initial {
		vals[k] = v
	}
	return &Store{vals: vals}
}

// NewUniformStore creates a store with n entities named by prefix and
// index ("e0".."e{n-1}" for prefix "e"), all holding init.
func NewUniformStore(prefix string, n int, init int64) *Store {
	vals := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		vals[fmt.Sprintf("%s%d", prefix, i)] = init
	}
	return &Store{vals: vals}
}

// Get returns the global value of name. Unknown entities read as zero
// with ok=false.
func (s *Store) Get(name string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vals[name]
	return v, ok
}

// MustGet returns the global value of name, panicking if absent. The
// concurrency control only reads entities that exist (lock requests
// create them implicitly via Define or fail validation upstream).
func (s *Store) MustGet(name string) int64 {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("entity: undefined entity %q", name))
	}
	return v
}

// Define creates or overwrites an entity outside any transaction
// (setup only).
func (s *Store) Define(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[name] = v
}

// Exists reports whether name is defined.
func (s *Store) Exists(name string) bool {
	_, ok := s.Get(name)
	return ok
}

// Install sets the global value of name; called by the concurrency
// control when an exclusively locked entity is unlocked or its
// transaction commits. The install hook, if set, observes the write
// before it becomes visible (write-ahead logging).
func (s *Store) Install(name string, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vals[name]; !ok {
		return fmt.Errorf("entity: install to undefined entity %q", name)
	}
	if s.installHook != nil {
		s.installHook(name, v)
	}
	s.vals[name] = v
	return nil
}

// SetInstallHook registers a callback invoked under the store lock
// before every Install takes effect. Used by internal/wal to log
// installations durably ahead of visibility. Pass nil to clear.
func (s *Store) SetInstallHook(h func(name string, v int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installHook = h
}

// Snapshot returns a copy of all values.
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// Restore replaces the entire contents with snap (setup/test helper).
func (s *Store) Restore(snap map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = make(map[string]int64, len(snap))
	for k, v := range snap {
		s.vals[k] = v
	}
}

// Names returns all entity names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of entities.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vals)
}

// AddConstraint registers a consistency constraint.
func (s *Store) AddConstraint(c Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.constraints = append(s.constraints, c)
}

// CheckConsistent evaluates all constraints against the current state
// and returns the first violation, if any.
func (s *Store) CheckConsistent() error {
	snap := s.Snapshot()
	s.mu.RLock()
	cs := append([]Constraint(nil), s.constraints...)
	s.mu.RUnlock()
	for _, c := range cs {
		if err := c.Check(snap); err != nil {
			return fmt.Errorf("entity: constraint %q violated: %w", c.Name, err)
		}
	}
	return nil
}

// SumConstraint returns a constraint asserting that the listed entities
// always sum to want — the canonical bank-transfer invariant.
func SumConstraint(name string, want int64, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			var sum int64
			for _, e := range entities {
				v, ok := snap[e]
				if !ok {
					return fmt.Errorf("entity %q missing", e)
				}
				sum += v
			}
			if sum != want {
				return fmt.Errorf("sum = %d, want %d", sum, want)
			}
			return nil
		},
	}
}

// NonNegativeConstraint returns a constraint asserting the listed
// entities never go negative.
func NonNegativeConstraint(name string, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			for _, e := range entities {
				if v := snap[e]; v < 0 {
					return fmt.Errorf("entity %q = %d (negative)", e, v)
				}
			}
			return nil
		},
	}
}
