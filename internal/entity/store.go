// Package entity implements the global database: a set of named
// entities, each holding an integer value, plus consistency constraints
// used by tests to check that concurrency control preserves integrity.
//
// In the paper's model (§2, §4) the global value of an entity never
// changes while a transaction holds it locked: writers update a local
// copy, and the final value is installed when the entity is unlocked
// (or the transaction commits). The store therefore only sees
// installed, committed-or-unlocked values; rollback never needs to
// touch it.
//
// The store is also the interning point: defining an entity assigns it
// a dense intern.ID, and everything below the facade/wire/obs boundary
// (lock table, wait-for graph, per-transaction state) indexes by that
// ID instead of hashing the name. Values live in a slice indexed by ID,
// so the hot-path reads and installs are a bounds check and an array
// access under the lock.
package entity

import (
	"fmt"
	"sort"
	"sync"

	"partialrollback/internal/intern"
)

// Store is the global entity map. It is safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	names       *intern.Table
	vals        []int64 // indexed by intern.ID
	defined     []bool  // indexed by intern.ID
	nDefined    int
	constraints []Constraint
	installHook func(name string, v int64)
}

// Constraint is a named predicate over a snapshot of the database,
// defining (part of) the set of consistent states.
type Constraint struct {
	Name  string
	Check func(snapshot map[string]int64) error
}

// NewStore creates a store with the given initial values.
func NewStore(initial map[string]int64) *Store {
	s := &Store{names: intern.NewTable()}
	// Deterministic ID assignment: define in sorted-name order.
	keys := make([]string, 0, len(initial))
	for k := range initial {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Define(k, initial[k])
	}
	return s
}

// NewUniformStore creates a store with n entities named by prefix and
// index ("e0".."e{n-1}" for prefix "e"), all holding init.
func NewUniformStore(prefix string, n int, init int64) *Store {
	s := &Store{names: intern.NewTable()}
	for i := 0; i < n; i++ {
		s.Define(fmt.Sprintf("%s%d", prefix, i), init)
	}
	return s
}

// Interner exposes the store's name↔ID table. The lock table, wait-for
// graph and transaction state share it so every layer agrees on IDs.
func (s *Store) Interner() *intern.Table { return s.names }

// IDOf returns the intern ID for a defined entity name.
func (s *Store) IDOf(name string) (intern.ID, bool) {
	id, ok := s.names.Lookup(name)
	if !ok {
		return intern.None, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.defined) || !s.defined[id] {
		return intern.None, false
	}
	return id, true
}

// NameOf resolves an intern ID back to the entity name (boundary use:
// events, snapshots, wire responses).
func (s *Store) NameOf(id intern.ID) string { return s.names.Name(id) }

// Get returns the global value of name. Unknown entities read as zero
// with ok=false.
func (s *Store) Get(name string) (int64, bool) {
	id, ok := s.names.Lookup(name)
	if !ok {
		return 0, false
	}
	return s.GetID(id)
}

// GetID is Get by intern ID — the hot-path read.
func (s *Store) GetID(id intern.ID) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.defined) || !s.defined[id] {
		return 0, false
	}
	return s.vals[id], true
}

// MustGet returns the global value of name, panicking if absent. The
// concurrency control only reads entities that exist (lock requests
// create them implicitly via Define or fail validation upstream).
func (s *Store) MustGet(name string) int64 {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("entity: undefined entity %q", name))
	}
	return v
}

// MustGetID is MustGet by intern ID.
func (s *Store) MustGetID(id intern.ID) int64 {
	v, ok := s.GetID(id)
	if !ok {
		panic(fmt.Sprintf("entity: undefined entity %q", s.names.Name(id)))
	}
	return v
}

// Define creates or overwrites an entity outside any transaction
// (setup only), interning its name, and returns the entity's ID.
func (s *Store) Define(name string, v int64) intern.ID {
	id := s.names.Intern(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	for int(id) >= len(s.vals) {
		s.vals = append(s.vals, 0)
		s.defined = append(s.defined, false)
	}
	if !s.defined[id] {
		s.defined[id] = true
		s.nDefined++
	}
	s.vals[id] = v
	return id
}

// Exists reports whether name is defined.
func (s *Store) Exists(name string) bool {
	_, ok := s.Get(name)
	return ok
}

// Install sets the global value of name; called by the concurrency
// control when an exclusively locked entity is unlocked or its
// transaction commits. The install hook, if set, observes the write
// before it becomes visible (write-ahead logging).
func (s *Store) Install(name string, v int64) error {
	id, ok := s.names.Lookup(name)
	if !ok {
		return fmt.Errorf("entity: install to undefined entity %q", name)
	}
	return s.InstallID(id, v)
}

// InstallID is Install by intern ID — the hot-path write.
func (s *Store) InstallID(id intern.ID, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.defined) || !s.defined[id] {
		return fmt.Errorf("entity: install to undefined entity %q", s.names.Name(id))
	}
	if s.installHook != nil {
		s.installHook(s.names.Name(id), v)
	}
	s.vals[id] = v
	return nil
}

// SetInstallHook registers a callback invoked under the store lock
// before every Install takes effect. Used by internal/wal to log
// installations durably ahead of visibility. Pass nil to clear.
func (s *Store) SetInstallHook(h func(name string, v int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installHook = h
}

// Snapshot returns a copy of all values.
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, s.nDefined)
	for id, def := range s.defined {
		if def {
			out[s.names.Name(intern.ID(id))] = s.vals[id]
		}
	}
	return out
}

// SnapshotSlices copies the dense value and defined slices into the
// caller's buffers (grown as needed) and returns them along with the
// defined-entity count — the checkpoint writer's fast alternative to
// Snapshot: one read-lock hold covering two memcpys, no per-entity
// allocation. Index i holds the value of intern.ID(i); names can be
// resolved after the call via NameOf, because the intern table is
// append-only and IDs stay valid once the lock is released.
func (s *Store) SnapshotSlices(vals []int64, defined []bool) ([]int64, []bool, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vals = append(vals[:0], s.vals...)
	defined = append(defined[:0], s.defined...)
	return vals, defined, s.nDefined
}

// Restore replaces the entire contents with snap (setup/test helper).
// Names absent from snap become undefined; their intern IDs remain
// reserved (IDs are never reused).
func (s *Store) Restore(snap map[string]int64) {
	s.mu.Lock()
	for i := range s.defined {
		s.defined[i] = false
	}
	s.nDefined = 0
	s.mu.Unlock()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Define(k, snap[k])
	}
}

// Names returns all entity names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, s.nDefined)
	for id, def := range s.defined {
		if def {
			out = append(out, s.names.Name(intern.ID(id)))
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of entities.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nDefined
}

// AddConstraint registers a consistency constraint.
func (s *Store) AddConstraint(c Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.constraints = append(s.constraints, c)
}

// CheckConsistent evaluates all constraints against the current state
// and returns the first violation, if any.
func (s *Store) CheckConsistent() error {
	snap := s.Snapshot()
	s.mu.RLock()
	cs := append([]Constraint(nil), s.constraints...)
	s.mu.RUnlock()
	for _, c := range cs {
		if err := c.Check(snap); err != nil {
			return fmt.Errorf("entity: constraint %q violated: %w", c.Name, err)
		}
	}
	return nil
}

// SumConstraint returns a constraint asserting that the listed entities
// always sum to want — the canonical bank-transfer invariant.
func SumConstraint(name string, want int64, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			var sum int64
			for _, e := range entities {
				v, ok := snap[e]
				if !ok {
					return fmt.Errorf("entity %q missing", e)
				}
				sum += v
			}
			if sum != want {
				return fmt.Errorf("sum = %d, want %d", sum, want)
			}
			return nil
		},
	}
}

// NonNegativeConstraint returns a constraint asserting the listed
// entities never go negative.
func NonNegativeConstraint(name string, entities ...string) Constraint {
	return Constraint{
		Name: name,
		Check: func(snap map[string]int64) error {
			for _, e := range entities {
				if v := snap[e]; v < 0 {
					return fmt.Errorf("entity %q = %d (negative)", e, v)
				}
			}
			return nil
		},
	}
}
