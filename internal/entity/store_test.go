package entity

import (
	"strings"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := NewStore(map[string]int64{"a": 1, "b": 2})
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("missing entity should not exist")
	}
	if s.MustGet("b") != 2 {
		t.Error("MustGet")
	}
	if err := s.Install("a", 10); err != nil {
		t.Fatal(err)
	}
	if s.MustGet("a") != 10 {
		t.Error("install did not take")
	}
	if err := s.Install("nope", 1); err == nil {
		t.Error("install to undefined entity must fail")
	}
	s.Define("c", 3)
	if !s.Exists("c") || s.Len() != 3 {
		t.Error("define")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("names = %v", names)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet of undefined should panic")
		}
	}()
	NewStore(nil).MustGet("ghost")
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore(map[string]int64{"a": 1})
	snap := s.Snapshot()
	s.Define("a", 99)
	s.Define("b", 2)
	s.Restore(snap)
	if s.MustGet("a") != 1 || s.Exists("b") {
		t.Error("restore did not reset state")
	}
	// Snapshot is a copy.
	snap["a"] = 7
	if s.MustGet("a") != 1 {
		t.Error("snapshot aliases store")
	}
}

func TestUniformStore(t *testing.T) {
	s := NewUniformStore("e", 4, 9)
	if s.Len() != 4 || s.MustGet("e0") != 9 || s.MustGet("e3") != 9 {
		t.Error("uniform store")
	}
}

func TestSumConstraint(t *testing.T) {
	s := NewStore(map[string]int64{"a": 5, "b": 5})
	s.AddConstraint(SumConstraint("sum", 10, "a", "b"))
	if err := s.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if err := s.Install("a", 6); err != nil {
		t.Fatal(err)
	}
	err := s.CheckConsistent()
	if err == nil || !strings.Contains(err.Error(), "sum") {
		t.Errorf("want sum violation, got %v", err)
	}
	s2 := NewStore(map[string]int64{"a": 1})
	s2.AddConstraint(SumConstraint("sum", 1, "a", "gone"))
	if err := s2.CheckConsistent(); err == nil {
		t.Error("constraint over missing entity should fail")
	}
}

func TestNonNegativeConstraint(t *testing.T) {
	s := NewStore(map[string]int64{"a": 0})
	s.AddConstraint(NonNegativeConstraint("nn", "a"))
	if err := s.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	_ = s.Install("a", -1)
	if err := s.CheckConsistent(); err == nil {
		t.Error("want negative violation")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewUniformStore("e", 8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := s.Names()[g]
			for i := 0; i < 100; i++ {
				_ = s.Install(name, int64(i))
				_ = s.MustGet(name)
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	for _, n := range s.Names() {
		if s.MustGet(n) != 99 {
			t.Errorf("%s = %d", n, s.MustGet(n))
		}
	}
}

func TestInternedIDAPI(t *testing.T) {
	s := NewUniformStore("e", 4, 7)
	id, ok := s.IDOf("e2")
	if !ok {
		t.Fatal("IDOf(e2) not found")
	}
	if got := s.NameOf(id); got != "e2" {
		t.Fatalf("NameOf round-trip = %q, want e2", got)
	}
	if v, ok := s.GetID(id); !ok || v != 7 {
		t.Fatalf("GetID = %d,%v, want 7,true", v, ok)
	}
	if err := s.InstallID(id, 42); err != nil {
		t.Fatal(err)
	}
	if s.MustGet("e2") != 42 {
		t.Fatalf("string view sees %d after InstallID, want 42", s.MustGet("e2"))
	}
	if s.MustGetID(id) != 42 {
		t.Fatalf("MustGetID = %d, want 42", s.MustGetID(id))
	}
	if _, ok := s.IDOf("nope"); ok {
		t.Fatal("IDOf found an undefined entity")
	}
	// NewStore assigns IDs in sorted-name order, deterministically.
	m := NewStore(map[string]int64{"b": 1, "a": 2, "c": 3})
	for i, name := range []string{"a", "b", "c"} {
		id, ok := m.IDOf(name)
		if !ok || int(id) != i {
			t.Fatalf("IDOf(%s) = %d,%v, want %d,true", name, id, ok, i)
		}
	}
	// Restore undefines missing names but keeps the interner intact.
	m.Restore(map[string]int64{"a": 9})
	if _, ok := m.IDOf("b"); ok {
		t.Fatal("b still defined after Restore without it")
	}
	if m.MustGet("a") != 9 || m.Len() != 1 {
		t.Fatalf("after Restore: a=%d len=%d, want 9,1", m.MustGet("a"), m.Len())
	}
}
