package entity

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func newTestPagedStore(t *testing.T, n int, init int64) *Store {
	t.Helper()
	s, err := NewUniformPagedStore("e", n, init, PagedConfig{
		Path:      filepath.Join(t.TempDir(), "heap.dat"),
		PageSize:  128, // 15 slots/page: tiny, so n entities span many pages
		PoolPages: 2,
	})
	if err != nil {
		t.Fatalf("NewUniformPagedStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestPagedStoreMatchesMemoryStore drives both backends through the
// same operation sequence and compares every observable surface.
func TestPagedStoreMatchesMemoryStore(t *testing.T) {
	const n = 100 // ~7 pages through a 2-frame pool: constant eviction
	mem := NewUniformStore("e", n, 10)
	paged := newTestPagedStore(t, n, 10)

	if !paged.Paged() || mem.Paged() {
		t.Fatal("Paged() backend flags wrong")
	}
	ops := []struct {
		name string
		v    int64
	}{
		{"e3", 77}, {"e99", -5}, {"e0", 1 << 40}, {"e3", 78}, {"e50", 0},
	}
	for _, op := range ops {
		if err := mem.Install(op.name, op.v); err != nil {
			t.Fatal(err)
		}
		if err := paged.Install(op.name, op.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Install("nope", 1); err == nil {
		t.Fatal("mem install to undefined succeeded")
	}
	if err := paged.Install("nope", 1); err == nil {
		t.Fatal("paged install to undefined succeeded")
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e%d", i)
		mv, mok := mem.Get(name)
		pv, pok := paged.Get(name)
		if mv != pv || mok != pok {
			t.Fatalf("Get(%s): mem %d,%v paged %d,%v", name, mv, mok, pv, pok)
		}
	}
	if !reflect.DeepEqual(mem.Snapshot(), paged.Snapshot()) {
		t.Fatal("snapshots differ")
	}
	if !reflect.DeepEqual(mem.Names(), paged.Names()) {
		t.Fatal("names differ")
	}
	if mem.Len() != paged.Len() {
		t.Fatalf("Len: mem %d paged %d", mem.Len(), paged.Len())
	}
	mv, md, mn := mem.SnapshotSlices(nil, nil)
	pv, pd, pn := paged.SnapshotSlices(nil, nil)
	if !reflect.DeepEqual(mv, pv) || !reflect.DeepEqual(md, pd) || mn != pn {
		t.Fatal("SnapshotSlices differ")
	}
	if st := paged.PoolStats(); st.Evictions == 0 {
		t.Fatalf("working set 7x pool but no evictions: %+v", st)
	}

	// Restore round-trips on both.
	snap := map[string]int64{"e1": 11, "e2": 22}
	mem.Restore(snap)
	paged.Restore(snap)
	if !reflect.DeepEqual(mem.Snapshot(), paged.Snapshot()) {
		t.Fatal("snapshots differ after Restore")
	}
	if mem.Len() != 2 || paged.Len() != 2 {
		t.Fatalf("Len after restore: mem %d paged %d", mem.Len(), paged.Len())
	}
	if _, ok := paged.IDOf("e3"); ok {
		t.Fatal("undefined-after-restore entity still resolves")
	}
}

func TestPagedInstallHookOrdering(t *testing.T) {
	s := newTestPagedStore(t, 30, 0)
	var hooked []string
	s.SetInstallHook(func(name string, v int64) {
		// Runs under the store lock — no store calls from here (same
		// contract the WAL hook honors).
		hooked = append(hooked, fmt.Sprintf("%s=%d", name, v))
	})
	if err := s.Install("e5", 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Install("zzz-undefined", 1); err == nil {
		t.Fatal("install to undefined succeeded")
	}
	if len(hooked) != 1 || hooked[0] != "e5=42" {
		t.Fatalf("hook log = %v (undefined installs must not reach the hook)", hooked)
	}
}

func TestPagedPinUnpin(t *testing.T) {
	s := newTestPagedStore(t, 100, 0)
	id, ok := s.IDOf("e0")
	if !ok {
		t.Fatal("e0 undefined")
	}
	if err := s.PinID(id); err != nil {
		t.Fatalf("PinID: %v", err)
	}
	if got := s.PoolStats().PinnedPages; got != 1 {
		t.Fatalf("PinnedPages = %d", got)
	}
	s.UnpinID(id)
	if got := s.PoolStats().PinnedPages; got != 0 {
		t.Fatalf("PinnedPages after unpin = %d", got)
	}

	// Memory stores accept pin/unpin as no-ops.
	mem := NewUniformStore("e", 4, 0)
	if err := mem.PinID(0); err != nil {
		t.Fatal(err)
	}
	mem.UnpinID(0)
}

func TestUniformStoreNamesUnchanged(t *testing.T) {
	// The strconv rewrite must produce the exact historical names.
	s := NewUniformStore("acct", 12, 5)
	for i := 0; i < 12; i++ {
		want := fmt.Sprintf("acct%d", i)
		if !s.Exists(want) {
			t.Fatalf("missing %s", want)
		}
	}
	if s.Len() != 12 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func BenchmarkNewUniformStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewUniformStore("e", 100000, 0)
	}
}
