package sim

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/txn"
)

// runSerialOrder replays the programs sequentially in the given order
// on a fresh store and returns the final snapshot.
func runSerialOrder(t *testing.T, w Workload, order []txn.ID) map[string]int64 {
	t.Helper()
	store := w.NewStore()
	s := core.New(core.Config{Store: store, Strategy: core.Total})
	// IDs are assigned 1..n in registration order.
	for _, id := range order {
		p := w.Programs[int(id)-1].Clone()
		nid, err := s.Register(p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			res, err := s.Step(nid)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == core.Committed {
				break
			}
			if res.Outcome != core.Progressed {
				t.Fatalf("serial replay blocked: %v", res.Outcome)
			}
		}
	}
	return store.Snapshot()
}

// TestPropertySerializableAcrossMatrix is the central randomized
// correctness sweep: random workloads, every strategy, several
// policies, both schedulers — each run must terminate, keep engine
// invariants, be conflict-serializable, and leave the database in the
// state of its own equivalent serial order.
func TestPropertySerializableAcrossMatrix(t *testing.T) {
	// Only the ordering-based policies are livelock-free (Theorem 2);
	// MinCost and Requester can preempt forever on symmetric workloads
	// (demonstrated by experiment E2), so closed-loop runs use these.
	policies := []deadlock.Policy{
		deadlock.OrderedMinCost{},
		deadlock.Oldest{},
	}
	shapes := []WriteShape{Scattered, Clustered, ThreePhase, Mixed}
	seeds := []int64{1, 2, 3}
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG, core.Hybrid} {
		for pi, pol := range policies {
			for si, shape := range shapes {
				seed := seeds[(pi+si)%len(seeds)]
				name := fmt.Sprintf("%v/%s/%s/seed%d", strat, pol.Name(), shape, seed)
				t.Run(name, func(t *testing.T) {
					w := Generate(GenConfig{
						Txns: 8, DBSize: 10, HotSet: 5, HotProb: 0.75,
						LocksPerTxn: 4, SharedProb: 0.25, RewriteProb: 0.5,
						PadOps: 2, Shape: shape, Seed: seed,
					})
					r, err := Run(w, RunConfig{
						Strategy: strat, Policy: pol,
						Scheduler: Scheduler(si % 2), Seed: seed,
						RecordHistory: true, CheckInvariants: true,
						MaxSteps: 500000,
					})
					if err != nil {
						t.Fatal(err)
					}
					if r.Committed != 8 {
						t.Fatalf("committed %d", r.Committed)
					}
					order, err := r.System.Recorder().SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					// Recompute the final state from scratch serially.
					want := runSerialOrder(t, w, order)
					snap := snapshotOf(t, r)
					for e, wantV := range want {
						if snap[e] != wantV {
							t.Errorf("entity %q = %d, serial oracle %d", e, snap[e], wantV)
						}
					}
				})
			}
		}
	}
}

// snapshotOf extracts the final database of a finished run.
func snapshotOf(t *testing.T, r Result) map[string]int64 {
	t.Helper()
	if r.Store == nil {
		t.Fatal("run result lacks store")
	}
	return r.Store.Snapshot()
}

// TestWaitDiePreventionTerminates: the wait-die rule may self-roll-back
// repeatedly but always terminates (timestamps persist, so the oldest
// always wins).
func TestPreventionModes(t *testing.T) {
	for _, prev := range []core.Prevention{core.WoundWait, core.WaitDie} {
		t.Run(prev.String(), func(t *testing.T) {
			w := Generate(GenConfig{
				Txns: 8, DBSize: 10, HotSet: 5, HotProb: 0.8,
				LocksPerTxn: 4, RewriteProb: 0.3, Shape: Mixed, Seed: 17,
			})
			r, err := Run(w, RunConfig{
				Strategy: core.MCS, Prevention: prev,
				Scheduler: RoundRobin, RecordHistory: true,
				CheckInvariants: true, MaxSteps: 500000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.System.Recorder().CheckSerializable(); err != nil {
				t.Error(err)
			}
			st := r.Stats
			switch prev {
			case core.WoundWait:
				if st.Wounds == 0 {
					t.Error("expected wounds under contention")
				}
			case core.WaitDie:
				if st.Dies == 0 {
					t.Error("expected dies under contention")
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := GenConfig{Txns: 6, DBSize: 12, LocksPerTxn: 4, Shape: Mixed, Seed: 5, SharedProb: 0.3, RewriteProb: 0.4}
	w1 := Generate(cfg)
	w2 := Generate(cfg)
	if len(w1.Programs) != len(w2.Programs) {
		t.Fatal("program counts differ")
	}
	for i := range w1.Programs {
		if w1.Programs[i].String() != w2.Programs[i].String() {
			t.Errorf("program %d differs between identical seeds", i)
		}
	}
	w3 := Generate(GenConfig{Txns: 6, DBSize: 12, LocksPerTxn: 4, Shape: Mixed, Seed: 6, SharedProb: 0.3, RewriteProb: 0.4})
	same := true
	for i := range w1.Programs {
		if w1.Programs[i].String() != w3.Programs[i].String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds generated identical workloads")
	}
}

func TestGeneratedProgramsValid(t *testing.T) {
	for _, shape := range []WriteShape{Scattered, Clustered, ThreePhase, Mixed} {
		w := Generate(GenConfig{Txns: 10, DBSize: 8, LocksPerTxn: 5, SharedProb: 0.4, RewriteProb: 0.7, Shape: shape, Seed: 3})
		for _, p := range w.Programs {
			if err := txn.Validate(p); err != nil {
				t.Errorf("%s: %v", shape, err)
			}
		}
	}
}

func TestThreePhaseShapeIsThreePhase(t *testing.T) {
	w := Generate(GenConfig{Txns: 5, DBSize: 8, LocksPerTxn: 4, Shape: ThreePhase, Seed: 1})
	for _, p := range w.Programs {
		if !txn.IsThreePhase(p) {
			t.Errorf("%s not three-phase:\n%s", p.Name, p)
		}
	}
}

func TestBankingWorkloadInvariant(t *testing.T) {
	w := BankingWorkload(6, 20, 500, 2)
	for _, strat := range []core.Strategy{core.Total, core.SDG} {
		r, err := Run(w, RunConfig{Strategy: strat, Scheduler: RandomPick, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r.Committed != 20 {
			t.Errorf("committed %d", r.Committed)
		}
	}
}

// TestLongHaulRandomSweep is the wide-net soak: many seeds, random
// schedulers, every strategy, full invariant and oracle checking.
// Skipped under -short.
func TestLongHaulRandomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long haul")
	}
	for seed := int64(100); seed < 160; seed++ {
		for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG, core.Hybrid} {
			w := Generate(GenConfig{
				Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
				LocksPerTxn: 5, SharedProb: 0.3, RewriteProb: 0.6,
				PadOps: 1, Shape: Mixed, Seed: seed,
			})
			r, err := Run(w, RunConfig{
				Strategy: strat, Scheduler: RandomPick, Seed: seed * 7,
				RecordHistory: true, MaxSteps: 2_000_000,
				HybridBudget: 2,
			})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, strat, err)
			}
			order, err := r.System.Recorder().SerialOrder()
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, strat, err)
			}
			want := runSerialOrder(t, w, order)
			snap := r.Store.Snapshot()
			for e, wv := range want {
				if snap[e] != wv {
					t.Fatalf("seed %d %v: entity %q = %d, oracle %d", seed, strat, e, snap[e], wv)
				}
			}
		}
	}
}
