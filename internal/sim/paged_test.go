package sim

import (
	"fmt"
	"path/filepath"
	"testing"

	"partialrollback/internal/core"
	"partialrollback/internal/entity"
)

// pagedVariant returns w with its store swapped for a paged backend
// whose pool is much smaller than the working set, so the run faults
// and evicts constantly.
func pagedVariant(t *testing.T, w Workload, poolPages int) Workload {
	t.Helper()
	memNew := w.NewStore
	dir := t.TempDir()
	n := 0
	w.NewStore = func() *entity.Store {
		mem := memNew()
		n++
		// Constraints attached inside the workload's NewStore don't
		// survive the Snapshot copy; the byte-identity comparison below
		// is entity-exact, which subsumes them for this test.
		s, err := entity.NewPagedStore(mem.Snapshot(), entity.PagedConfig{
			Path:      filepath.Join(dir, fmt.Sprintf("heap%d.dat", n)),
			PageSize:  128, // 15 slots/page
			PoolPages: poolPages,
		})
		if err != nil {
			t.Fatalf("NewPagedStore: %v", err)
		}
		return s
	}
	return w
}

// TestPagedStoreSequentialRegression pins the backend-equivalence
// guarantee: on a seeded deterministic workload, an engine running
// over the paged store — with a pool far smaller than the entity set,
// so pages evict throughout the run — must reproduce the memory
// backend byte-for-byte: same event stream, same stats, same final
// database, same serial order. This is the `-store mem` identity pin
// from the other side: both backends implement one store contract.
func TestPagedStoreSequentialRegression(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS} {
		for _, stripes := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/stripes%d", strat, stripes), func(t *testing.T) {
				gen := GenConfig{
					Txns: 12, DBSize: 60, HotSet: 8, HotProb: 0.7,
					LocksPerTxn: 4, SharedProb: 0.3, RewriteProb: 0.5,
					PadOps: 2, Shape: Mixed, Seed: 37,
				}
				rc := RunConfig{
					Strategy: strat, Scheduler: RoundRobin, Seed: 37,
					RecordHistory: true, CheckInvariants: true,
					Stripes: stripes,
				}
				// DBSize 60 over 15-slot pages = 4 pages through a
				// 2-frame pool.
				mem := Generate(gen)
				paged := pagedVariant(t, Generate(gen), 2)

				rm, em := collectEvents(t, mem, rc)
				rp, ep := collectEvents(t, paged, rc)

				if rm.Stats != rp.Stats {
					t.Errorf("stats diverge:\n mem   %+v\n paged %+v", rm.Stats, rp.Stats)
				}
				if rm.Steps != rp.Steps {
					t.Errorf("steps diverge: mem %d, paged %d", rm.Steps, rp.Steps)
				}
				if len(em) != len(ep) {
					t.Fatalf("event counts diverge: mem %d, paged %d", len(em), len(ep))
				}
				for i := range em {
					if em[i] != ep[i] {
						t.Fatalf("event %d diverges:\n mem   %s\n paged %s", i, em[i], ep[i])
					}
				}
				sm := snapshotOf(t, rm)
				sp := snapshotOf(t, rp)
				if len(sm) != len(sp) {
					t.Fatalf("snapshot sizes diverge: mem %d, paged %d", len(sm), len(sp))
				}
				for e, v := range sm {
					if sp[e] != v {
						t.Errorf("entity %q = %d paged, %d mem", e, sp[e], v)
					}
				}
				om, err := rm.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				op, err := rp.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(om) != fmt.Sprint(op) {
					t.Errorf("serial orders diverge: mem %v, paged %v", om, op)
				}
			})
		}
	}
}
