package sim

import (
	"fmt"
	"math/rand"

	"partialrollback/internal/core"
	"partialrollback/internal/deadlock"
	"partialrollback/internal/entity"
	"partialrollback/internal/hybrid"
	"partialrollback/internal/shard"
	"partialrollback/internal/txn"
)

// Scheduler selects which runnable transaction steps next.
type Scheduler int

// Schedulers.
const (
	// RoundRobin steps transactions in ID order, one operation each per
	// sweep — maximally interleaved and fully deterministic.
	RoundRobin Scheduler = iota
	// RandomPick steps a uniformly random runnable transaction each
	// tick, seeded for reproducibility.
	RandomPick
)

func (s Scheduler) String() string {
	if s == RandomPick {
		return "random"
	}
	return "round-robin"
}

// RunConfig configures one deterministic run of a workload.
type RunConfig struct {
	Strategy  core.Strategy
	Policy    deadlock.Policy // nil: deadlock.OrderedMinCost
	Scheduler Scheduler
	// Seed drives the RandomPick scheduler.
	Seed int64
	// MaxSteps bounds total engine steps (0: 10M) to catch livelock.
	MaxSteps int64
	// RecordHistory enables the serializability recorder (slower).
	RecordHistory bool
	// Prevention optionally enables a §3.3 timestamp rule instead of
	// detection.
	Prevention core.Prevention
	// HybridBudget / HybridAllocator configure the Hybrid strategy.
	HybridBudget    int
	HybridAllocator hybrid.Allocator
	// StarvationLimit forwards to core.Config.StarvationLimit.
	StarvationLimit int
	// CheckInvariants runs the engine's full cross-check after every
	// step (tests only; very slow).
	CheckInvariants bool
	// OnEvent forwards engine events.
	OnEvent func(core.Event)
	// Shards selects the engine: 0 steps a single core.System directly
	// (the original unsharded path), >= 1 routes the run through a
	// shard.Engine with that many partitions. Shards=1 is semantically
	// identical to Shards=0 (one shard, identity ID mapping); the
	// regression tests pin that equivalence.
	Shards int
	// Burst selects the stepping call: 0 uses Engine.Step (the original
	// one-op-per-call path), >= 1 uses Engine.StepBurst with that bound.
	// Burst=1 is semantically identical to Burst=0 (one operation per
	// engine acquisition); the regression tests pin that equivalence.
	// Larger bursts run each scheduled transaction up to Burst
	// consecutive operations per tick, so schedules coarsen but every
	// conflict still resolves at operation granularity. Burst < 0
	// mirrors exec.BurstAdaptive: each transaction's burst is sized from
	// its observed contention (waiters present, blocking, or rollback
	// collapse it to 1; full uncontended bursts double it back up to
	// exec.AdaptiveMaxBurst), deterministically per transaction.
	Burst int
	// Stripes forwards to core.Config.Stripes: > 1 stripes each engine's
	// lock table and enables its uncontended fast paths. Sequential
	// drivers see identical results at any stripe count (pinned by
	// regression test); the knob exists here so the deterministic suites
	// can cross-check the striped engine against the classic one.
	Stripes int
}

// adaptiveMaxBurst mirrors exec.AdaptiveMaxBurst (kept local: exec's
// tests drive sim, so sim cannot import exec).
const adaptiveMaxBurst = 64

// Result summarizes one run.
type Result struct {
	Workload  string
	Strategy  core.Strategy
	Policy    string
	Scheduler string

	Stats     core.Stats
	Committed int
	// Steps is the number of scheduler ticks the run took (makespan).
	Steps int64
	// UsefulOps is the operations that survived into commits
	// (OpsExecuted summed minus OpsLost).
	UsefulOps int64
	// TotalOps is all executed operations including discarded ones.
	TotalOps int64
	// LostRatio is OpsLost / TotalOps.
	LostRatio float64
	// AvgRollbackDepth is OpsLost per rollback.
	AvgRollbackDepth float64
	// System is the finished engine, for further inspection.
	System core.Engine
	// Store is the database the run executed against.
	Store *entity.Store
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s: commits=%d deadlocks=%d rollbacks=%d restarts=%d lost=%d (%.1f%%) avg-depth=%.1f",
		r.Strategy, r.Policy, r.Committed, r.Stats.Deadlocks, r.Stats.Rollbacks,
		r.Stats.Restarts, r.Stats.OpsLost, 100*r.LostRatio, r.AvgRollbackDepth)
}

// Run executes the workload to completion under the given
// configuration and returns metrics. Identical inputs produce identical
// results.
func Run(w Workload, rc RunConfig) (Result, error) {
	policy := rc.Policy
	if policy == nil {
		policy = deadlock.OrderedMinCost{}
	}
	maxSteps := rc.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}
	store := w.NewStore()
	cfg := core.Config{
		Store:           store,
		Strategy:        rc.Strategy,
		Policy:          policy,
		Prevention:      rc.Prevention,
		HybridBudget:    rc.HybridBudget,
		HybridAllocator: rc.HybridAllocator,
		StarvationLimit: rc.StarvationLimit,
		RecordHistory:   rc.RecordHistory,
		OnEvent:         rc.OnEvent,
		Stripes:         rc.Stripes,
	}
	var sys core.Engine
	if rc.Shards >= 1 {
		sys = shard.New(rc.Shards, cfg)
	} else {
		sys = core.New(cfg)
	}
	ids := make([]txn.ID, 0, len(w.Programs))
	for _, p := range w.Programs {
		id, err := sys.Register(p)
		if err != nil {
			return Result{}, err
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(rc.Seed))
	var steps int64
	// Per-transaction adaptive burst state (Burst < 0): the same policy
	// exec.StepToCommitBurst applies, replayed deterministically here so
	// the property tests can exercise adaptive mode under every
	// scheduler.
	var aburst map[txn.ID]int
	if rc.Burst < 0 {
		aburst = make(map[txn.ID]int, len(w.Programs))
	}
	stepOne := func(id txn.ID) error {
		if rc.Burst < 0 {
			b, ok := aburst[id]
			if !ok {
				b = adaptiveMaxBurst
			}
			if sys.Waiters(id) > 0 {
				b = 1
			}
			res, n, err := sys.StepBurst(id, b)
			if n < 1 {
				n = 1 // zero-step polls still advance the livelock budget
			}
			steps += int64(n)
			if err != nil {
				return err
			}
			switch res.Outcome {
			case core.Progressed:
				if n >= b && b < adaptiveMaxBurst {
					b *= 2
					if b > adaptiveMaxBurst {
						b = adaptiveMaxBurst
					}
				}
			case core.Committed, core.AlreadyCommitted:
				// terminal; the burst size no longer matters
			default: // blocked or rolled back: contended
				b = 1
			}
			aburst[id] = b
			return nil
		}
		if rc.Burst >= 1 {
			_, n, err := sys.StepBurst(id, rc.Burst)
			if n < 1 {
				n = 1 // zero-step polls still advance the livelock budget
			}
			steps += int64(n)
			return err
		}
		_, err := sys.Step(id)
		steps++
		return err
	}
	for !sys.AllCommitted() {
		if steps >= maxSteps {
			return Result{}, fmt.Errorf("sim: exceeded %d steps on %s (%v/%s)", maxSteps, w.Name, rc.Strategy, policy.Name())
		}
		runnable := sys.Runnable()
		if len(runnable) == 0 {
			return Result{}, fmt.Errorf("sim: no runnable transactions but not all committed on %s", w.Name)
		}
		switch rc.Scheduler {
		case RandomPick:
			id := runnable[rng.Intn(len(runnable))]
			if err := stepOne(id); err != nil {
				return Result{}, err
			}
			if rc.CheckInvariants {
				if err := sys.CheckInvariants(); err != nil {
					return Result{}, err
				}
			}
		default: // RoundRobin
			for _, id := range runnable {
				if err := stepOne(id); err != nil {
					return Result{}, err
				}
				if rc.CheckInvariants {
					if err := sys.CheckInvariants(); err != nil {
						return Result{}, err
					}
				}
			}
		}
	}
	if err := store.CheckConsistent(); err != nil {
		return Result{}, fmt.Errorf("sim: %s left inconsistent state: %w", w.Name, err)
	}
	stats := sys.Stats()
	var totalOps int64
	for _, id := range ids {
		totalOps += sys.TxnStatsOf(id).OpsExecuted
	}
	res := Result{
		Workload:  w.Name,
		Steps:     steps,
		Store:     store,
		Strategy:  rc.Strategy,
		Policy:    policy.Name(),
		Scheduler: rc.Scheduler.String(),
		Stats:     stats,
		Committed: int(stats.Commits),
		TotalOps:  totalOps,
		UsefulOps: totalOps - stats.OpsLost,
		System:    sys,
	}
	if totalOps > 0 {
		res.LostRatio = float64(stats.OpsLost) / float64(totalOps)
	}
	if stats.Rollbacks > 0 {
		res.AvgRollbackDepth = float64(stats.OpsLost) / float64(stats.Rollbacks)
	}
	return res, nil
}

// CompareStrategies runs the same workload under every strategy with
// the same scheduler seed and returns the results keyed by strategy —
// the core comparison of experiment E9.
func CompareStrategies(w Workload, rc RunConfig) (map[core.Strategy]Result, error) {
	out := map[core.Strategy]Result{}
	for _, st := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		rc := rc
		rc.Strategy = st
		res, err := Run(w, rc)
		if err != nil {
			return nil, err
		}
		out[st] = res
	}
	return out, nil
}
