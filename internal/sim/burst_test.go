package sim

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
)

// TestBurstOneIsStepRegression pins the Burst=1 equivalence guarantee
// at full fidelity: on a seeded workload, driving the engine through
// StepBurst(id, 1) must reproduce the Step-at-a-time stepper
// byte-for-byte — same event stream, same step count, same stats, same
// final database, same serial order. This is the contract that lets
// exec.StepToCommitBurst treat burst=1 as the classic loop.
func TestBurstOneIsStepRegression(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		for _, sched := range []Scheduler{RoundRobin, RandomPick} {
			for _, shards := range []int{0, 3} {
				t.Run(fmt.Sprintf("%v/%s/shards%d", strat, sched, shards), func(t *testing.T) {
					gen := GenConfig{
						Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
						LocksPerTxn: 4, SharedProb: 0.2, RewriteProb: 0.5,
						PadOps: 2, Shape: Mixed, Seed: 41,
					}
					base := RunConfig{
						Strategy: strat, Scheduler: sched, Seed: 41,
						Shards: shards, RecordHistory: true,
					}
					stepCfg := base
					stepCfg.Burst = 0 // original Step path
					burstCfg := base
					burstCfg.Burst = 1

					rs, es := collectEvents(t, Generate(gen), stepCfg)
					rb, eb := collectEvents(t, Generate(gen), burstCfg)

					if rs.Stats != rb.Stats {
						t.Errorf("stats diverge:\n step    %+v\n burst=1 %+v", rs.Stats, rb.Stats)
					}
					if rs.Steps != rb.Steps {
						t.Errorf("steps diverge: step %d, burst=1 %d", rs.Steps, rb.Steps)
					}
					if len(es) != len(eb) {
						t.Fatalf("event counts diverge: step %d, burst=1 %d", len(es), len(eb))
					}
					for i := range es {
						if es[i] != eb[i] {
							t.Fatalf("event %d diverges:\n step    %s\n burst=1 %s", i, es[i], eb[i])
						}
					}
					ss := snapshotOf(t, rs)
					sb := snapshotOf(t, rb)
					for e, v := range ss {
						if sb[e] != v {
							t.Errorf("entity %q = %d under burst=1, %d under step", e, sb[e], v)
						}
					}
					os, err := rs.System.Recorder().SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					ob, err := rb.System.Recorder().SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(os) != fmt.Sprint(ob) {
						t.Errorf("serial orders diverge: step %v, burst=1 %v", os, ob)
					}
				})
			}
		}
	}
}

// TestBurstPropertySerializable is the bursty twin of the central
// randomized sweep: random workloads at every burst level (including
// far past program length, and the adaptive mode Burst=-1) under every
// rollback strategy, unsharded and sharded, must terminate, keep
// engine invariants, stay conflict-serializable, and leave the
// database in the state of their own equivalent serial order. That the
// adaptive runs terminate within the step budget is also the
// no-starvation check: a blocked transaction whose burst collapsed to
// 1 must still be scheduled through to commit.
func TestBurstPropertySerializable(t *testing.T) {
	for _, burst := range []int{-1, 2, 4, 16, 64} {
		for _, shards := range []int{0, 3} {
			for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
				name := fmt.Sprintf("burst%d/shards%d/%v", burst, shards, strat)
				t.Run(name, func(t *testing.T) {
					seed := int64(7 + burst)
					w := Generate(GenConfig{
						Txns: 10, DBSize: 14, HotSet: 6, HotProb: 0.7,
						LocksPerTxn: 4, SharedProb: 0.25, RewriteProb: 0.5,
						PadOps: 2, Shape: Mixed, Seed: seed,
					})
					r, err := Run(w, RunConfig{
						Strategy: strat, Scheduler: Scheduler(int(seed) % 2),
						Seed: seed, Shards: shards, Burst: burst,
						RecordHistory: true, CheckInvariants: true,
						MaxSteps: 500000,
					})
					if err != nil {
						t.Fatal(err)
					}
					if r.Committed != 10 {
						t.Fatalf("committed %d", r.Committed)
					}
					order, err := r.System.Recorder().SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					want := runSerialOrder(t, w, order)
					snap := snapshotOf(t, r)
					for e, wantV := range want {
						if snap[e] != wantV {
							t.Errorf("entity %q = %d, serial oracle %d", e, snap[e], wantV)
						}
					}
				})
			}
		}
	}
}
