package sim

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
)

// collectEvents runs a workload and returns the result plus the full
// event stream rendered as strings.
func collectEvents(t *testing.T, w Workload, rc RunConfig) (Result, []string) {
	t.Helper()
	var events []string
	rc.OnEvent = func(e core.Event) { events = append(events, e.String()) }
	r, err := Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	return r, events
}

// TestSingleShardIsUnshardedRegression pins the Shards=1 equivalence
// guarantee at full fidelity: on a seeded workload the one-shard engine
// must reproduce the unsharded stepper byte-for-byte — same event
// stream, same step count, same stats, same final database, same serial
// order.
func TestSingleShardIsUnshardedRegression(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		for _, sched := range []Scheduler{RoundRobin, RandomPick} {
			t.Run(fmt.Sprintf("%v/%s", strat, sched), func(t *testing.T) {
				gen := GenConfig{
					Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
					LocksPerTxn: 4, SharedProb: 0.2, RewriteProb: 0.5,
					PadOps: 2, Shape: Mixed, Seed: 23,
				}
				base := RunConfig{
					Strategy: strat, Scheduler: sched, Seed: 23,
					RecordHistory: true,
				}
				flat := base
				flat.Shards = 0 // original direct core.System path
				one := base
				one.Shards = 1

				rf, ef := collectEvents(t, Generate(gen), flat)
				r1, e1 := collectEvents(t, Generate(gen), one)

				if rf.Stats != r1.Stats {
					t.Errorf("stats diverge:\n unsharded %+v\n 1-shard   %+v", rf.Stats, r1.Stats)
				}
				if rf.Steps != r1.Steps {
					t.Errorf("steps diverge: unsharded %d, 1-shard %d", rf.Steps, r1.Steps)
				}
				if len(ef) != len(e1) {
					t.Fatalf("event counts diverge: unsharded %d, 1-shard %d", len(ef), len(e1))
				}
				for i := range ef {
					if ef[i] != e1[i] {
						t.Fatalf("event %d diverges:\n unsharded %s\n 1-shard   %s", i, ef[i], e1[i])
					}
				}
				sf := snapshotOf(t, rf)
				s1 := snapshotOf(t, r1)
				for e, v := range sf {
					if s1[e] != v {
						t.Errorf("entity %q = %d on 1-shard, %d unsharded", e, s1[e], v)
					}
				}
				of, err := rf.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				o1, err := r1.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(of) != fmt.Sprint(o1) {
					t.Errorf("serial orders diverge: unsharded %v, 1-shard %v", of, o1)
				}
			})
		}
	}
}

// TestShardPropertySerializable is the sharded twin of the central
// randomized sweep: random workloads over 2..4 shards under every
// rollback strategy must terminate, keep engine invariants, stay
// conflict-serializable, and leave the database in the state of their
// own equivalent serial order.
func TestShardPropertySerializable(t *testing.T) {
	for _, shards := range []int{2, 3, 4} {
		for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
			for _, seed := range []int64{1, 5, 9} {
				name := fmt.Sprintf("shards%d/%v/seed%d", shards, strat, seed)
				t.Run(name, func(t *testing.T) {
					w := Generate(GenConfig{
						Txns: 10, DBSize: 14, HotSet: 6, HotProb: 0.7,
						LocksPerTxn: 4, SharedProb: 0.25, RewriteProb: 0.5,
						PadOps: 2, Shape: Mixed, Seed: seed,
					})
					r, err := Run(w, RunConfig{
						Strategy: strat, Scheduler: Scheduler(int(seed) % 2),
						Seed: seed, Shards: shards,
						RecordHistory: true, CheckInvariants: true,
						MaxSteps: 500000,
					})
					if err != nil {
						t.Fatal(err)
					}
					if r.Committed != 10 {
						t.Fatalf("committed %d", r.Committed)
					}
					order, err := r.System.Recorder().SerialOrder()
					if err != nil {
						t.Fatal(err)
					}
					want := runSerialOrder(t, w, order)
					snap := snapshotOf(t, r)
					for e, wantV := range want {
						if snap[e] != wantV {
							t.Errorf("entity %q = %d, serial oracle %d", e, snap[e], wantV)
						}
					}
				})
			}
		}
	}
}
