package sim

import (
	"fmt"
	"testing"

	"partialrollback/internal/core"
)

// TestStripedSequentialRegression pins the striping equivalence
// guarantee under the deterministic drivers: on a seeded workload the
// striped engine must reproduce the classic single-mutex stepper
// byte-for-byte — same event stream, same step count, same stats, same
// final database, same serial order — at every stripe count.
//
// Stripes=1 is the stronger pin: it must take zero new code on the hot
// path (core.New builds the classic table and wait-for graph), so any
// divergence there means the striped build leaked into the default
// configuration. Stripes>1 exercises the read-lock fast path
// (CAS shared grants, idle exclusive grants, uncontended releases) and
// pins that it is a pure execution-strategy change, invisible to
// results.
func TestStripedSequentialRegression(t *testing.T) {
	for _, strat := range []core.Strategy{core.Total, core.MCS, core.SDG} {
		for _, stripes := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%v/stripes%d", strat, stripes), func(t *testing.T) {
				gen := GenConfig{
					Txns: 10, DBSize: 12, HotSet: 6, HotProb: 0.8,
					LocksPerTxn: 4, SharedProb: 0.3, RewriteProb: 0.5,
					PadOps: 2, Shape: Mixed, Seed: 29,
				}
				base := RunConfig{
					Strategy: strat, Scheduler: RoundRobin, Seed: 29,
					RecordHistory: true, CheckInvariants: true,
				}
				classic := base
				classic.Stripes = 0 // original single-mutex engine
				striped := base
				striped.Stripes = stripes

				rc, ec := collectEvents(t, Generate(gen), classic)
				rs, es := collectEvents(t, Generate(gen), striped)

				if rc.Stats != rs.Stats {
					t.Errorf("stats diverge:\n classic %+v\n striped %+v", rc.Stats, rs.Stats)
				}
				if rc.Steps != rs.Steps {
					t.Errorf("steps diverge: classic %d, striped %d", rc.Steps, rs.Steps)
				}
				if len(ec) != len(es) {
					t.Fatalf("event counts diverge: classic %d, striped %d", len(ec), len(es))
				}
				for i := range ec {
					if ec[i] != es[i] {
						t.Fatalf("event %d diverges:\n classic %s\n striped %s", i, ec[i], es[i])
					}
				}
				sc := snapshotOf(t, rc)
				ss := snapshotOf(t, rs)
				for e, v := range sc {
					if ss[e] != v {
						t.Errorf("entity %q = %d striped, %d classic", e, ss[e], v)
					}
				}
				oc, err := rc.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				os, err := rs.System.Recorder().SerialOrder()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(oc) != fmt.Sprint(os) {
					t.Errorf("serial orders diverge: classic %v, striped %v", oc, os)
				}
			})
		}
	}
}

// TestStripedShardedSequentialRegression composes the two partitioning
// axes: a sharded engine whose shards are internally striped must still
// reproduce the flat engine's results exactly under the deterministic
// scheduler.
func TestStripedShardedSequentialRegression(t *testing.T) {
	gen := GenConfig{
		Txns: 12, DBSize: 16, HotSet: 6, HotProb: 0.7,
		LocksPerTxn: 4, SharedProb: 0.25, RewriteProb: 0.5,
		PadOps: 2, Shape: Mixed, Seed: 31,
	}
	base := RunConfig{
		Strategy: core.MCS, Scheduler: RoundRobin, Seed: 31,
		RecordHistory: true, Shards: 1,
	}
	classic := base
	striped := base
	striped.Stripes = 4

	rc, ec := collectEvents(t, Generate(gen), classic)
	rs, es := collectEvents(t, Generate(gen), striped)
	if rc.Stats != rs.Stats {
		t.Errorf("stats diverge:\n classic %+v\n striped %+v", rc.Stats, rs.Stats)
	}
	if len(ec) != len(es) {
		t.Fatalf("event counts diverge: classic %d, striped %d", len(ec), len(es))
	}
	for i := range ec {
		if ec[i] != es[i] {
			t.Fatalf("event %d diverges:\n classic %s\n striped %s", i, ec[i], es[i])
		}
	}
}
